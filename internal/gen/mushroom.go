package gen

import (
	"math/rand"

	"github.com/probdata/pfcim/internal/itemset"
)

// MushroomConfig parameterizes the Mushroom-like generator. The real UCI
// Mushroom dataset (8124 transactions, 119 item values, every transaction
// exactly 23 items — one value per categorical attribute) is not available
// offline, so this generator reproduces its structural properties instead:
// fixed-length dense transactions, a two-class latent structure
// (edible/poisonous) that induces long, heavily overlapping closed
// patterns, and a skewed per-attribute value distribution.
type MushroomConfig struct {
	NumTrans      int // default 8124
	NumAttributes int // default 23 (one item per attribute per transaction)
	ValuesPerAttr int // average distinct values per attribute, default 5 (≈ 119 items total)
	// NumClasses is the number of latent clusters ("species"); each has its
	// own typical value per attribute. More classes produce more distinct
	// long closed patterns. Default 8.
	NumClasses int
	// NumMirrors is the number of attributes that are deterministic
	// functions of another attribute (the real dataset has several, e.g.
	// the constant veil-type and the ring/veil dependencies). Mirrors
	// create exact support ties, which is what gives closed itemsets their
	// compression power on this dataset. Default NumAttributes/3.
	NumMirrors int
	// NumConstants is the number of attributes with a single value across
	// all transactions (like the real dataset's veil-type). Each constant
	// item doubles the frequent-itemset count while leaving the closed
	// count unchanged. Default 2.
	NumConstants int
	// MirrorNoise is the probability that a mirror attribute deviates from
	// its deterministic map. A small positive value creates the *near*-tied
	// item pairs that make frequent-non-closed probabilities non-trivial —
	// the regime in which the Monte-Carlo estimator actually runs.
	// Default 0.02; set negative for exact mirrors.
	MirrorNoise float64
	// NumNearConstants is the number of attributes that take a single value
	// in all but NearConstantExceptions transactions (the real dataset's
	// gill-attachment and veil-color are ≈97% one value). Near-constant
	// items give almost every itemset several non-negligible extension
	// events, which is what makes the frequent-non-closed DNF genuinely
	// multi-clause. Default 2.
	NumNearConstants int
	// NearConstantExceptions is the absolute number of rows in which each
	// near-constant attribute deviates; keeping it an absolute count (not a
	// fraction) keeps the extension-event probabilities scale-independent.
	// Default 4.
	NearConstantExceptions int
	// ClassCoherence is the mean probability that an attribute takes its
	// class-typical value rather than a random one; the per-attribute
	// coherence is spread around this mean. High coherence yields the long
	// heavily-overlapping closed itemsets Mushroom is known for.
	// Default 0.8.
	ClassCoherence float64
	Seed           int64
}

func (c MushroomConfig) withDefaults() MushroomConfig {
	if c.NumTrans == 0 {
		c.NumTrans = 8124
	}
	if c.NumAttributes == 0 {
		c.NumAttributes = 23
	}
	if c.ValuesPerAttr == 0 {
		c.ValuesPerAttr = 5
	}
	if c.NumClasses == 0 {
		c.NumClasses = 8
	}
	if c.ClassCoherence == 0 {
		c.ClassCoherence = 0.8
	}
	if c.NumMirrors == 0 {
		c.NumMirrors = c.NumAttributes / 3
	}
	if c.NumConstants == 0 {
		c.NumConstants = 2
	}
	if c.MirrorNoise == 0 {
		c.MirrorNoise = 0.02
	}
	if c.MirrorNoise < 0 {
		c.MirrorNoise = 0
	}
	if c.NumNearConstants == 0 {
		c.NumNearConstants = 2
	}
	if c.NearConstantExceptions == 0 {
		c.NearConstantExceptions = 4
	}
	if c.NumConstants+c.NumNearConstants+c.NumMirrors >= c.NumAttributes {
		c.NumMirrors = c.NumAttributes - c.NumConstants - c.NumNearConstants - 1
		if c.NumMirrors < 0 {
			c.NumMirrors = 0
			c.NumNearConstants = 0
			c.NumConstants = c.NumAttributes - 1
		}
	}
	return c
}

// MushroomLike returns the default-shaped dataset scaled by the given
// factor (scale = 1 ≈ the real dataset's 8124 transactions).
func MushroomLike(scale float64, seed int64) []itemset.Itemset {
	cfg := MushroomConfig{Seed: seed}.withDefaults()
	cfg.NumTrans = int(float64(cfg.NumTrans) * scale)
	if cfg.NumTrans < 1 {
		cfg.NumTrans = 1
	}
	return Mushroom(cfg)
}

// Mushroom generates the dense categorical dataset described by cfg. Items
// are numbered attribute-major: attribute k's values occupy a contiguous
// id range, so every transaction has exactly NumAttributes items drawn from
// disjoint ranges — the same encoding as the classical itemset version of
// the UCI dataset.
func Mushroom(cfg MushroomConfig) []itemset.Itemset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Per-attribute value counts: average ValuesPerAttr, at least 2.
	valueCounts := make([]int, cfg.NumAttributes)
	offsets := make([]int, cfg.NumAttributes)
	next := 0
	for k := range valueCounts {
		v := cfg.ValuesPerAttr + rng.Intn(5) - 2
		if v < 2 {
			v = 2
		}
		valueCounts[k] = v
		offsets[k] = next
		next += v
	}

	// Latent classes with class-typical values per attribute. Classes share
	// values for many attributes (values are drawn from a small pool), so
	// frequent patterns of different lengths overlap as in the real data.
	typical := make([][]int, cfg.NumClasses)
	for c := range typical {
		typical[c] = make([]int, cfg.NumAttributes)
		for k, v := range valueCounts {
			// Bias towards low value ids so classes collide on common
			// values; occasionally pick a class-specific one.
			if rng.Float64() < 0.6 {
				typical[c][k] = rng.Intn(2)
			} else {
				typical[c][k] = rng.Intn(v)
			}
		}
	}
	// Class weights (skewed) and per-attribute coherence around the mean.
	classWeights := make([]float64, cfg.NumClasses)
	for c := range classWeights {
		classWeights[c] = 1 / float64(c+1)
	}
	coherence := make([]float64, cfg.NumAttributes)
	for k := range coherence {
		coherence[k] = cfg.ClassCoherence + (rng.Float64()-0.5)*0.3
		if coherence[k] > 0.98 {
			coherence[k] = 0.98
		}
		if coherence[k] < 0.4 {
			coherence[k] = 0.4
		}
	}
	// Skewed fallback weights (Zipf-like) per attribute.
	fallback := make([][]float64, cfg.NumAttributes)
	for k, v := range valueCounts {
		w := make([]float64, v)
		for j := range w {
			w[j] = 1 / float64(j+1)
		}
		fallback[k] = w
	}

	// Attribute layout: [0, NumConstants) are constant, then the
	// near-constant attributes, then the free attributes, and the last
	// NumMirrors attributes are deterministic functions of a random free
	// ("source") attribute via a fixed value map.
	firstNearConst := cfg.NumConstants
	firstFree := cfg.NumConstants + cfg.NumNearConstants
	firstMirror := cfg.NumAttributes - cfg.NumMirrors

	// Pick the exception rows of each near-constant attribute up front so
	// each attribute deviates in exactly NearConstantExceptions rows.
	exception := make([]map[int]bool, cfg.NumAttributes)
	for k := firstNearConst; k < firstFree; k++ {
		exception[k] = map[int]bool{}
		for len(exception[k]) < cfg.NearConstantExceptions && len(exception[k]) < cfg.NumTrans {
			exception[k][rng.Intn(cfg.NumTrans)] = true
		}
	}
	mirrorSrc := make([]int, cfg.NumAttributes)
	mirrorMap := make([][]int, cfg.NumAttributes)
	for k := firstMirror; k < cfg.NumAttributes; k++ {
		src := firstFree + rng.Intn(firstMirror-firstFree)
		mirrorSrc[k] = src
		m := make([]int, valueCounts[src])
		for v := range m {
			m[v] = v % valueCounts[k]
		}
		mirrorMap[k] = m
	}

	out := make([]itemset.Itemset, cfg.NumTrans)
	values := make([]int, cfg.NumAttributes)
	for i := range out {
		class := weightedPick(rng, classWeights)
		for k := 0; k < firstNearConst; k++ {
			values[k] = 0
		}
		for k := firstNearConst; k < firstFree; k++ {
			if exception[k][i] {
				values[k] = 1 + rng.Intn(valueCounts[k]-1)
			} else {
				values[k] = 0
			}
		}
		for k := firstFree; k < firstMirror; k++ {
			if rng.Float64() < coherence[k] {
				values[k] = typical[class][k]
			} else {
				values[k] = weightedPick(rng, fallback[k])
			}
		}
		for k := firstMirror; k < cfg.NumAttributes; k++ {
			if cfg.MirrorNoise > 0 && rng.Float64() < cfg.MirrorNoise {
				values[k] = rng.Intn(valueCounts[k])
			} else {
				values[k] = mirrorMap[k][values[mirrorSrc[k]]]
			}
		}
		items := make([]itemset.Item, cfg.NumAttributes)
		for k, v := range values {
			items[k] = itemset.Item(offsets[k] + v)
		}
		out[i] = itemset.New(items...)
	}
	return out
}
