package exact

import (
	"sort"

	"github.com/probdata/pfcim/internal/itemset"
)

// HMine implements H-mine (Pei et al. [20]): frequent itemset mining over a
// hyper-structure that keeps the transactions in one flat array and mines
// by moving per-item hyper-links instead of materializing projected
// databases. The paper cites it as the basis of the UH-mine algorithm for
// uncertain data (implemented in internal/pfim); here it doubles as a third
// independent exact miner cross-checked against Apriori and FP-growth.
func HMine(d Dataset, minSup int) []Pattern {
	if minSup < 1 {
		minSup = 1
	}
	// Keep only globally frequent items, each transaction sorted by item.
	counts := map[itemset.Item]int{}
	for _, t := range d {
		for _, it := range t {
			counts[it]++
		}
	}
	trans := make([][]itemset.Item, 0, len(d))
	for _, t := range d {
		row := make([]itemset.Item, 0, len(t))
		for _, it := range t {
			if counts[it] >= minSup {
				row = append(row, it)
			}
		}
		if len(row) > 0 {
			trans = append(trans, row)
		}
	}

	// A link is one occurrence of the head item inside a transaction: the
	// projected suffix is everything after pos.
	type link struct {
		tid, pos int
	}

	var out []Pattern
	// mine processes the projections rooted at `links` (transactions whose
	// suffix begins at the prefix's last item) with the given prefix.
	var mine func(prefix itemset.Itemset, links []link)
	mine = func(prefix itemset.Itemset, links []link) {
		// Count items in the suffixes and collect per-item hyper-links.
		headers := map[itemset.Item][]link{}
		for _, l := range links {
			row := trans[l.tid]
			for p := l.pos + 1; p < len(row); p++ {
				headers[row[p]] = append(headers[row[p]], link{tid: l.tid, pos: p})
			}
		}
		items := make([]itemset.Item, 0, len(headers))
		for it, ls := range headers {
			if len(ls) >= minSup {
				items = append(items, it)
			}
		}
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		for _, it := range items {
			pat := prefix.Extend(it)
			out = append(out, Pattern{Items: pat, Support: len(headers[it])})
			mine(pat, headers[it])
		}
	}

	// Level 1 from the full database: one virtual link in front of every
	// transaction.
	roots := make([]link, len(trans))
	for tid := range trans {
		roots[tid] = link{tid: tid, pos: -1}
	}
	mine(nil, roots)
	SortPatterns(out)
	return out
}
