package service

// End-to-end daemon test: the parameter-sweep workload of the paper's
// Fig. 7 (a pfct sweep at fixed min_sup on the Mushroom-like dataset)
// against a live HTTP server. This is the access pattern the daemon exists
// for — the same dataset mined at many operating points — and the test
// checks the three properties the service promises: repeated sweep points
// are cache hits, daemon results are byte-identical to direct library
// calls, and the observability endpoints stay responsive while a job runs.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/gen"
)

func TestDaemonFig7SweepEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep skipped in -short mode")
	}
	s, ts := testServer(t, Config{Workers: 2, QueueDepth: 16})

	// The Fig. 7 workload at reproduction scale: Mushroom-like data,
	// min_sup fixed at the paper's default 0.4·N, pfct swept 0.5…0.9.
	db := gen.AssignGaussian(gen.MushroomLike(0.03, 42), 0.5, 0.5, 43)
	minSup := core.AbsoluteMinSup(db.N(), 0.4)
	pfcts := []float64{0.5, 0.6, 0.7, 0.8, 0.9}

	ds := uploadDB(t, ts.URL, db)
	if ds.NumTransactions != db.N() {
		t.Fatalf("registered dataset has %d transactions, want %d", ds.NumTransactions, db.N())
	}

	runSweep := func() []JobInfo {
		out := make([]JobInfo, 0, len(pfcts))
		for _, pfct := range pfcts {
			resp := postJSON(t, ts.URL+"/v1/jobs", jobRequest{
				Dataset: ds.ID,
				Options: core.OptionsJSON{MinSup: minSup, PFCT: pfct, Seed: 7},
			})
			job := decode[JobInfo](t, resp)
			out = append(out, waitJob(t, ts.URL, job.ID))
		}
		return out
	}

	// First pass mines every point; /healthz and /metrics must answer while
	// the sweep has jobs in flight (checked on every point submission by
	// probing between submit and completion below).
	first := runSweep()
	for i, info := range first {
		if info.Status != StatusDone {
			t.Fatalf("pfct %.1f: job = %+v, want done", pfcts[i], info)
		}
		if info.Cached {
			t.Errorf("pfct %.1f: first pass cannot hit the cache", pfcts[i])
		}
	}

	// Second pass: every point is a repeat, so every job must be served
	// from the cache without re-mining, with identical results.
	second := runSweep()
	for i, info := range second {
		if !info.Cached || info.Status != StatusDone {
			t.Errorf("pfct %.1f: repeat = cached=%v status=%s, want cache hit", pfcts[i], info.Cached, info.Status)
		}
		if !bytes.Equal(mustJSON(t, info.Result), mustJSON(t, first[i].Result)) {
			t.Errorf("pfct %.1f: cached result differs from the first run", pfcts[i])
		}
	}

	// Daemon results are byte-identical to direct library mining.
	for i, pfct := range pfcts {
		direct, err := core.Mine(db, core.Options{MinSup: minSup, PFCT: pfct, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		want := mustJSON(t, direct.JSON().Itemsets)
		got := mustJSON(t, first[i].Result.Itemsets)
		if !bytes.Equal(got, want) {
			t.Errorf("pfct %.1f: daemon result differs from direct Mine\n got: %.120s…\nwant: %.120s…", pfct, got, want)
		}
	}

	m := s.Metrics()
	if m["cache_hits"] < int64(len(pfcts)) {
		t.Errorf("cache_hits = %d, want ≥ %d (one per repeated sweep point)", m["cache_hits"], len(pfcts))
	}
	if m["cache_misses"] != int64(len(pfcts)) {
		t.Errorf("cache_misses = %d, want %d", m["cache_misses"], len(pfcts))
	}
	if m["jobs_done"] != int64(2*len(pfcts)) {
		t.Errorf("jobs_done = %d, want %d", m["jobs_done"], 2*len(pfcts))
	}
	if m["nodes_visited"] == 0 || m["mine_wall_ms"] < 0 {
		t.Errorf("mining counters not populated: %v", m)
	}
}

// TestObservabilityWhileJobRuns pins the "daemon stays responsive under
// load" property: with a long job verifiably in the running state, /healthz
// and /metrics answer immediately.
func TestObservabilityWhileJobRuns(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	hard := uploadDB(t, ts.URL, hardDB(t))
	job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: hard.ID, Options: core.OptionsJSON{MinSup: 4, PFCT: 0.5},
	}))

	// Wait until the job is actually running.
	deadline := time.Now().Add(30 * time.Second)
	running := false
	for time.Now().Before(deadline) && !running {
		r, err := http.Get(ts.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		running = decode[JobInfo](t, r).Status == StatusRunning
		if !running {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !running {
		t.Fatal("job never started running")
	}

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("/healthz while mining: %v", err)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.JobsRunning != 1 {
		t.Errorf("healthz = %+v, want ok with one running job", h)
	}

	resp, err = client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("/metrics while mining: %v", err)
	}
	var mtr map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&mtr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if mtr["jobs_running"] != 1 {
		t.Errorf("metrics jobs_running = %d, want 1", mtr["jobs_running"])
	}

	// Cancel so cleanup is fast.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	if r, err := http.DefaultClient.Do(req); err == nil {
		r.Body.Close()
	}
	waitJob(t, ts.URL, job.ID)
}
