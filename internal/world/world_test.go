package world

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

func TestEnumerateProbabilitiesSumToOne(t *testing.T) {
	db := uncertain.PaperExample()
	total := 0.0
	count := 0
	if err := Enumerate(db, func(w World) {
		total += w.Prob
		count++
	}); err != nil {
		t.Fatal(err)
	}
	if count != 16 {
		t.Errorf("enumerated %d worlds, want 16", count)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("world probabilities sum to %v", total)
	}
}

func TestTableIIIWorldProbabilities(t *testing.T) {
	// The paper's PW5 (T1,T2,T3 present, T4 absent) has probability
	// 0.9·0.6·0.7·(1−0.9) = 0.0378.
	db := uncertain.PaperExample()
	var got float64
	if err := Enumerate(db, func(w World) {
		if w.Mask == 0b0111 {
			got = w.Prob
		}
	}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.0378) > 1e-12 {
		t.Errorf("Pr(PW{T1,T2,T3}) = %v, want 0.0378", got)
	}
}

func TestEnumerateLimit(t *testing.T) {
	trans := make([]uncertain.Transaction, MaxTransactions+1)
	for i := range trans {
		trans[i] = uncertain.Transaction{Items: itemset.FromInts(1), Prob: 0.5}
	}
	db := uncertain.MustNewDB(trans)
	if err := Enumerate(db, func(World) {}); err == nil {
		t.Error("Enumerate should refuse oversized databases")
	}
}

func TestSupportAndClosedInWorld(t *testing.T) {
	db := uncertain.PaperExample()
	abc := itemset.FromInts(0, 1, 2)
	abcd := itemset.FromInts(0, 1, 2, 3)
	all := World{Mask: 0b1111}
	if got := SupportIn(db, all, abc); got != 4 {
		t.Errorf("sup(abc) in full world = %d", got)
	}
	if got := SupportIn(db, all, abcd); got != 2 {
		t.Errorf("sup(abcd) in full world = %d", got)
	}
	if !IsClosedIn(db, all, abc) || !IsClosedIn(db, all, abcd) {
		t.Error("abc and abcd are closed in the full world")
	}
	if IsClosedIn(db, all, itemset.FromInts(0, 1)) {
		t.Error("ab is not closed in the full world (abc ties it)")
	}
	// In the world {T1, T4}, abc is not closed: abcd has the same support.
	t1t4 := World{Mask: 0b1001}
	if IsClosedIn(db, t1t4, abc) {
		t.Error("abc should not be closed in {T1,T4}")
	}
	if !IsFrequentClosedIn(db, t1t4, abcd, 2) {
		t.Error("abcd should be frequent closed in {T1,T4} at min_sup 2")
	}
	// Absent itemset is not closed (Theorem 3.1 convention).
	empty := World{Mask: 0}
	if IsClosedIn(db, empty, abc) {
		t.Error("an itemset absent from the world cannot be closed")
	}
}

func TestFreqProbMatchesPoissonBinomial(t *testing.T) {
	// Pr_F from world enumeration must equal the Poisson-binomial tail over
	// the containing transactions — on random small databases.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 7, 5)
		items := db.Items()
		if len(items) == 0 {
			return true
		}
		x := itemset.Itemset{items[rng.Intn(len(items))]}
		if rng.Intn(2) == 0 && len(items) > 1 {
			x = itemset.Union(x, itemset.Itemset{items[rng.Intn(len(items))]})
		}
		minSup := rng.Intn(3) + 1
		exact, err := FreqProb(db, x, minSup)
		if err != nil {
			return false
		}
		var probs []float64
		for i := 0; i < db.N(); i++ {
			if itemset.IsSubset(x, db.Transaction(i).Items) {
				probs = append(probs, db.Transaction(i).Prob)
			}
		}
		return math.Abs(exact-poibin.Tail(probs, minSup)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperProbabilities(t *testing.T) {
	db := uncertain.PaperExample()
	abc := itemset.FromInts(0, 1, 2)
	abcd := itemset.FromInts(0, 1, 2, 3)

	fp, err := FreqProb(db, abc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fp-0.9726) > 1e-10 {
		t.Errorf("Pr_F(abc) = %v, want 0.9726", fp)
	}
	fcp, err := FreqClosedProb(db, abc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fcp-0.8754) > 1e-10 {
		t.Errorf("Pr_FC(abc) = %v, want 0.8754", fcp)
	}
	fcp2, err := FreqClosedProb(db, abcd, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fcp2-0.81) > 1e-10 {
		t.Errorf("Pr_FC(abcd) = %v, want 0.81", fcp2)
	}
	// All other probabilistic frequent itemsets have Pr_FC = 0 (the paper's
	// Example 1.2: "frequent closed probabilities of 13 other probabilistic
	// frequent itemsets are 0").
	for _, x := range []itemset.Itemset{
		itemset.FromInts(0), itemset.FromInts(0, 1), itemset.FromInts(1, 2),
		itemset.FromInts(0, 3), itemset.FromInts(1, 2, 3),
	} {
		p, err := FreqClosedProb(db, x, 2)
		if err != nil {
			t.Fatal(err)
		}
		if p > 1e-12 {
			t.Errorf("Pr_FC(%v) = %v, want 0", x, p)
		}
	}
}

func TestClosedProbVsFreqClosedProbAtMinSup1(t *testing.T) {
	// Definition: computing closed probability is the min_sup = 1 special
	// case of frequent closed probability.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 6, 4)
		items := db.Items()
		if len(items) == 0 {
			return true
		}
		x := itemset.Itemset{items[rng.Intn(len(items))]}
		cp, err1 := ClosedProb(db, x)
		fcp, err2 := FreqClosedProb(db, x, 1)
		return err1 == nil && err2 == nil && math.Abs(cp-fcp) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMineExactPaperExample(t *testing.T) {
	db := uncertain.PaperExample()
	res, err := MineExact(db, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("MineExact found %d itemsets, want 2: %v", len(res), res)
	}
}

func TestFrequentClosedInFullWorld(t *testing.T) {
	db := uncertain.PaperExample()
	fcis, err := FrequentClosedIn(db, World{Mask: 0b1111}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fcis) != 2 {
		t.Fatalf("full world has %d FCIs, want 2 ({abc},{abcd}): %v", len(fcis), fcis)
	}
}

// randomDB builds a database with ≤ maxN transactions over ≤ maxItems
// items.
func randomDB(rng *rand.Rand, maxN, maxItems int) *uncertain.DB {
	n := rng.Intn(maxN) + 1
	trans := make([]uncertain.Transaction, 0, n)
	for i := 0; i < n; i++ {
		var items []itemset.Item
		for j := 0; j < maxItems; j++ {
			if rng.Float64() < 0.5 {
				items = append(items, itemset.Item(j))
			}
		}
		if len(items) == 0 {
			items = []itemset.Item{itemset.Item(rng.Intn(maxItems))}
		}
		trans = append(trans, uncertain.Transaction{
			Items: itemset.New(items...),
			Prob:  rng.Float64()*0.98 + 0.01,
		})
	}
	return uncertain.MustNewDB(trans)
}
