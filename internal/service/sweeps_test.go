package service

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/sweep"
	"github.com/probdata/pfcim/internal/uncertain"
)

// TestStrictRequestDecoding pins the request-validation contract of the two
// submission endpoints: unknown or mistyped fields are rejected with a
// structured 400 naming the offending field, instead of being silently
// dropped by the decoder.
func TestStrictRequestDecoding(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())

	cases := []struct {
		name      string
		path      string
		body      string
		status    int
		wantField string
	}{
		{
			name:   "jobs valid",
			path:   "/v1/jobs",
			body:   `{"dataset": "` + ds.ID + `", "options": {"min_sup": 2, "pfct": 0.8}}`,
			status: http.StatusAccepted,
		},
		{
			name:      "jobs unknown top-level field",
			path:      "/v1/jobs",
			body:      `{"dataset": "` + ds.ID + `", "options": {"min_sup": 2, "pfct": 0.8}, "timeout": 5}`,
			status:    http.StatusBadRequest,
			wantField: "timeout",
		},
		{
			name:      "jobs misspelled option",
			path:      "/v1/jobs",
			body:      `{"dataset": "` + ds.ID + `", "options": {"minsup": 2, "pfct": 0.8}}`,
			status:    http.StatusBadRequest,
			wantField: "minsup",
		},
		{
			name:      "jobs mistyped option",
			path:      "/v1/jobs",
			body:      `{"dataset": "` + ds.ID + `", "options": {"min_sup": "two", "pfct": 0.8}}`,
			status:    http.StatusBadRequest,
			wantField: "options.min_sup",
		},
		{
			name:   "sweeps valid",
			path:   "/v1/sweeps",
			body:   `{"dataset": "` + ds.ID + `", "options": {"min_sup": 2, "pfct": 0.8}, "points": [{"pfct": 0.5}]}`,
			status: http.StatusAccepted,
		},
		{
			name:      "sweeps unknown point field",
			path:      "/v1/sweeps",
			body:      `{"dataset": "` + ds.ID + `", "options": {"min_sup": 2, "pfct": 0.8}, "points": [{"pfcts": 0.5}]}`,
			status:    http.StatusBadRequest,
			wantField: "pfcts",
		},
		{
			name:      "sweeps unknown top-level field",
			path:      "/v1/sweeps",
			body:      `{"dataset": "` + ds.ID + `", "points": [{"pfct": 0.5}], "grid": true}`,
			status:    http.StatusBadRequest,
			wantField: "grid",
		},
		{
			name:   "sweeps no points",
			path:   "/v1/sweeps",
			body:   `{"dataset": "` + ds.ID + `", "options": {"min_sup": 2, "pfct": 0.8}, "points": []}`,
			status: http.StatusBadRequest,
		},
		{
			name:   "sweeps invalid point names its index",
			path:   "/v1/sweeps",
			body:   `{"dataset": "` + ds.ID + `", "options": {"min_sup": 2, "pfct": 0.8}, "points": [{"pfct": 0.5}, {"pfct": 1.5}]}`,
			status: http.StatusBadRequest,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if tc.status != http.StatusBadRequest {
				resp.Body.Close()
				return
			}
			er := decode[errorResponse](t, resp)
			if er.Error == "" {
				t.Error("400 without error message")
			}
			if er.Field != tc.wantField {
				t.Errorf("field = %q, want %q (error: %s)", er.Field, tc.wantField, er.Error)
			}
			if tc.name == "sweeps invalid point names its index" && !strings.Contains(er.Error, "point 1") {
				t.Errorf("error does not name the bad point: %s", er.Error)
			}
		})
	}
}

// TestSweepEndpoint drives POST /v1/sweeps end to end on the paper's
// Table II example: a 3-point pfct sweep costs one enumeration, every
// point matches an independent direct Mine byte for byte, the per-point
// results populate the single-job cache, and an all-cached repeat sweep
// completes synchronously.
func TestSweepEndpoint(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	db := uncertain.PaperExample()
	ds := uploadDB(t, ts.URL, db)

	req := sweepRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8, Seed: 1},
		Points:  []sweep.PointJSON{{PFCT: 0.5}, {PFCT: 0.8}, {PFCT: 0.9}},
	}
	info := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/sweeps", req))
	if info.Kind != JobKindSweep {
		t.Errorf("kind = %q, want %q", info.Kind, JobKindSweep)
	}
	info = waitJob(t, ts.URL, info.ID)
	if info.Status != StatusDone || info.Sweep == nil {
		t.Fatalf("sweep job = %+v, want done with a sweep result", info)
	}
	sw := info.Sweep
	if len(sw.Points) != 3 || sw.Stats.FullEnumerations != 1 {
		t.Fatalf("sweep stats = %+v over %d points, want 3 points from 1 enumeration",
			sw.Stats, len(sw.Points))
	}
	for i, pfct := range []float64{0.5, 0.8, 0.9} {
		opts, err := core.OptionsJSON{MinSup: 2, PFCT: pfct, Seed: 1}.Options()
		if err != nil {
			t.Fatal(err)
		}
		direct, err := core.Mine(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := mustJSON(t, sw.Points[i].Itemsets)
		want := mustJSON(t, direct.JSON().Itemsets)
		if !bytes.Equal(got, want) {
			t.Errorf("pfct %v: sweep point differs from direct Mine\n got: %s\nwant: %s", pfct, got, want)
		}
	}
	// Table II ground truth: at pfct 0.8, abcd survives with Pr_FC = 0.81.
	var prABCD float64
	for _, it := range sw.Points[1].Itemsets {
		if len(it.Items) == 4 {
			prABCD = it.Prob
		}
	}
	if prABCD < 0.8099 || prABCD > 0.8101 {
		t.Errorf("Pr_FC(abcd) at pfct 0.8 = %v, want 0.81", prABCD)
	}

	// The sweep populated the per-point cache: a single job at one of the
	// swept points is a cache hit with the identical result.
	job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.9, Seed: 1},
	}))
	if !job.Cached || job.Status != StatusDone {
		t.Errorf("single job after sweep = cached=%v status=%s, want cache hit", job.Cached, job.Status)
	} else if !bytes.Equal(mustJSON(t, job.Result.Itemsets), mustJSON(t, sw.Points[2].Itemsets)) {
		t.Error("cached single-job result differs from the sweep point that produced it")
	}

	// A repeat sweep is fully cached: done synchronously, every point
	// flagged Cached, no new enumeration.
	repeat := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/sweeps", req))
	if repeat.Status != StatusDone || !repeat.Cached || repeat.Sweep == nil {
		t.Fatalf("repeat sweep = %+v, want synchronous cache-served completion", repeat)
	}
	for i, pr := range repeat.Sweep.Points {
		if !pr.Cached {
			t.Errorf("repeat sweep point %d not flagged cached", i)
		}
		if !bytes.Equal(mustJSON(t, pr.Itemsets), mustJSON(t, sw.Points[i].Itemsets)) {
			t.Errorf("repeat sweep point %d differs from the original", i)
		}
	}
	if repeat.Sweep.Stats.FullEnumerations != 0 {
		t.Errorf("repeat sweep ran %d enumerations, want 0", repeat.Sweep.Stats.FullEnumerations)
	}

	m := s.Metrics()
	if m["sweeps_done"] != 2 {
		t.Errorf("sweeps_done = %d, want 2", m["sweeps_done"])
	}
	if m["sweep_enumerations"] != 1 {
		t.Errorf("sweep_enumerations = %d, want 1 across both sweeps", m["sweep_enumerations"])
	}
	if m["sweep_points_cached"] != 3 {
		t.Errorf("sweep_points_cached = %d, want 3 (the whole repeat grid)", m["sweep_points_cached"])
	}
	if m["sweep_points_computed"] != 3 {
		t.Errorf("sweep_points_computed = %d, want 3 (the first grid)", m["sweep_points_computed"])
	}
}

// TestSweepConsumesJobCache checks the other cache direction: points
// already mined by single jobs are not re-mined by a later sweep.
func TestSweepConsumesJobCache(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())

	job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.5, Seed: 1},
	}))
	job = waitJob(t, ts.URL, job.ID)
	if job.Status != StatusDone {
		t.Fatalf("seed job = %+v", job)
	}

	info := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/sweeps", sweepRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8, Seed: 1},
		Points:  []sweep.PointJSON{{PFCT: 0.5}, {PFCT: 0.8}},
	}))
	info = waitJob(t, ts.URL, info.ID)
	if info.Status != StatusDone || info.Sweep == nil {
		t.Fatalf("sweep = %+v", info)
	}
	if !info.Sweep.Points[0].Cached {
		t.Error("point mined by the earlier job was not served from the cache")
	}
	if info.Sweep.Points[1].Cached {
		t.Error("never-mined point cannot be a cache hit")
	}
	if !bytes.Equal(mustJSON(t, info.Sweep.Points[0].Itemsets), mustJSON(t, job.Result.Itemsets)) {
		t.Error("cached sweep point differs from the job that produced it")
	}
}
