package obs

import (
	"bufio"
	"fmt"
	"io"
)

// WriteChromeTrace renders every retained detailed span as Chrome
// trace-event JSON (the "JSON array format" of the trace-event spec):
// complete ("X") events with microsecond timestamps, one trace thread per
// mining worker, the enumeration depth in args. The output loads directly
// into chrome://tracing or https://ui.perfetto.dev.
//
// Spans are emitted per worker in ring order (oldest retained first);
// viewers order by timestamp themselves, so no global sort is needed.
// Call only after the observed work has completed.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer has no trace")
	}
	t.mu.Lock()
	recs := make([]*Recorder, len(t.recs))
	copy(recs, t.recs)
	t.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	for _, r := range recs {
		emit := func(sp Span) error {
			if !first {
				if _, err := bw.WriteString(",\n"); err != nil {
					return err
				}
			}
			first = false
			_, err := fmt.Fprintf(bw,
				`{"name":%q,"cat":"mpfci","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"depth":%d}}`,
				sp.Phase.String(), float64(sp.Start)/1e3, float64(sp.Dur)/1e3, sp.Worker, sp.Depth)
			return err
		}
		// Ring order: once the ring wrapped, the oldest retained span sits
		// at the overwrite cursor.
		if len(r.spans) == cap(r.spans) && r.dropped > 0 {
			for i := r.next; i < len(r.spans); i++ {
				if err := emit(r.spans[i]); err != nil {
					return err
				}
			}
			for i := 0; i < r.next; i++ {
				if err := emit(r.spans[i]); err != nil {
					return err
				}
			}
		} else {
			for _, sp := range r.spans {
				if err := emit(sp); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
