package core

import (
	"encoding/json"
	"math"
	"os"
	"reflect"
	"testing"

	"github.com/probdata/pfcim/internal/gen"
	"github.com/probdata/pfcim/internal/uncertain"
)

func TestCanonicalKeyIgnoresExecutionKnobs(t *testing.T) {
	base := Options{MinSup: 2, PFCT: 0.8}
	k0, err := base.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	variants := []Options{
		{MinSup: 2, PFCT: 0.8, Parallelism: 8},
		{MinSup: 2, PFCT: 0.8, SplitDepth: 7},
		{MinSup: 2, PFCT: 0.8, TailMemoEntries: -1},
		{MinSup: 2, PFCT: 0.8, TailMemoEntries: 128},
		{MinSup: 2, PFCT: 0.8, Trace: os.Stderr},
		{MinSup: 2, PFCT: 0.8, Epsilon: 0.1, Delta: 0.1}, // explicit defaults
	}
	for _, v := range variants {
		k, err := v.CanonicalKey()
		if err != nil {
			t.Fatal(err)
		}
		if k != k0 {
			t.Errorf("CanonicalKey(%+v) = %q, want %q", v, k, k0)
		}
	}
	diff := []Options{
		{MinSup: 3, PFCT: 0.8},
		{MinSup: 2, PFCT: 0.7},
		{MinSup: 2, PFCT: 0.8, Seed: 1},
		{MinSup: 2, PFCT: 0.8, Epsilon: 0.05},
		{MinSup: 2, PFCT: 0.8, DisableCH: true},
		{MinSup: 2, PFCT: 0.8, Search: BFS},
		{MinSup: 2, PFCT: 0.8, MaxExactClauses: 3},
	}
	for _, v := range diff {
		k, err := v.CanonicalKey()
		if err != nil {
			t.Fatal(err)
		}
		if k == k0 {
			t.Errorf("CanonicalKey(%+v) should differ from the base key", v)
		}
	}
}

func TestCanonicalKeyRejectsInvalid(t *testing.T) {
	if _, err := (Options{MinSup: 0, PFCT: 0.8}).CanonicalKey(); err == nil {
		t.Error("MinSup 0 should be rejected")
	}
	if _, err := (Options{MinSup: 2, PFCT: 1.5}).CanonicalKey(); err == nil {
		t.Error("PFCT 1.5 should be rejected")
	}
}

func TestOptionsJSONRoundTrip(t *testing.T) {
	o := Options{
		MinSup: 3, PFCT: 0.6, Epsilon: 0.05, Delta: 0.2, Seed: 7,
		DisableSubset: true, Search: BFS, MaxExactClauses: -1,
		MaxPairClauses: 8, Parallelism: 4, SplitDepth: 2, TailMemoEntries: -1,
	}
	blob, err := json.Marshal(o.JSON())
	if err != nil {
		t.Fatal(err)
	}
	var oj OptionsJSON
	if err := json.Unmarshal(blob, &oj); err != nil {
		t.Fatal(err)
	}
	back, err := oj.Options()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, o) {
		t.Errorf("round trip = %+v, want %+v", back, o)
	}
}

func TestOptionsJSONUnknownSearch(t *testing.T) {
	if _, err := (OptionsJSON{MinSup: 2, PFCT: 0.8, Search: "IDDFS"}).Options(); err == nil {
		t.Error("unknown search framework should be rejected")
	}
	for _, s := range []string{"dfs", "BFS", " bfs ", ""} {
		if _, err := (OptionsJSON{MinSup: 2, PFCT: 0.8, Search: s}).Options(); err != nil {
			t.Errorf("search %q should parse: %v", s, err)
		}
	}
}

func TestResultJSONPaperExample(t *testing.T) {
	res, err := Mine(uncertain.PaperExample(), Options{MinSup: 2, PFCT: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	rj := res.JSON()
	if len(rj.Itemsets) != 2 {
		t.Fatalf("got %d itemsets, want 2", len(rj.Itemsets))
	}
	abcd := rj.Itemsets[1]
	if !reflect.DeepEqual(abcd.Items, []int{0, 1, 2, 3}) {
		t.Errorf("second itemset = %v, want [0 1 2 3]", abcd.Items)
	}
	if math.Abs(abcd.Prob-0.81) > 1e-9 {
		t.Errorf("Pr_FC(abcd) = %v, want 0.81", abcd.Prob)
	}
	if abcd.Method == "" || abcd.FreqProb < abcd.Prob {
		t.Errorf("wire form lost fields: %+v", abcd)
	}
	// The wire form is pure data: it must survive a JSON round trip intact.
	blob, err := json.Marshal(rj)
	if err != nil {
		t.Fatal(err)
	}
	var back ResultJSON
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rj) {
		t.Error("ResultJSON did not survive a JSON round trip")
	}
}

// TestTailMemoEntriesOption checks the memory knob never changes results:
// disabled and tightly capped memos mine the same itemsets as the default,
// and the disabled run records no memo traffic.
func TestTailMemoEntriesOption(t *testing.T) {
	db := gen.AssignGaussian(gen.MushroomLike(0.03, 42), 0.5, 0.5, 43)
	base := Options{MinSup: 40, PFCT: 0.5, Seed: 11}
	want, err := Mine(db, base)
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.TailMemoHits == 0 {
		t.Fatal("workload never hits the memo; the comparison below would be vacuous")
	}
	for _, entries := range []int{-1, 1, 16} {
		o := base
		o.TailMemoEntries = entries
		got, err := Mine(db, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Itemsets, want.Itemsets) {
			t.Errorf("TailMemoEntries=%d changed the mined itemsets", entries)
		}
		if entries < 0 && got.Stats.TailMemoHits != 0 {
			t.Errorf("disabled memo recorded %d hits", got.Stats.TailMemoHits)
		}
		if entries < 0 {
			sum := want.Stats.TailEvaluations + want.Stats.TailMemoHits
			if got.Stats.TailEvaluations != sum {
				t.Errorf("disabled memo: TailEvaluations = %d, want every lookup computed (%d)",
					got.Stats.TailEvaluations, sum)
			}
		}
	}
}
