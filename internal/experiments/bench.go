package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"github.com/probdata/pfcim/internal/core"
)

// BenchPoint is one benchmark measurement: the workload identity, the
// testing.Benchmark timings, and the mining statistics of a single
// representative run (the statistics are deterministic per configuration,
// so one run characterizes all iterations).
type BenchPoint struct {
	Name        string     `json:"name"`
	Dataset     string     `json:"dataset"`
	RelMinSup   float64    `json:"rel_min_sup"`
	PFCT        float64    `json:"pfct"`
	Parallelism int        `json:"parallelism"`
	NsPerOp     int64      `json:"ns_per_op"`
	AllocsPerOp int64      `json:"allocs_per_op"`
	BytesPerOp  int64      `json:"bytes_per_op"`
	Itemsets    int        `json:"itemsets"`
	Stats       core.Stats `json:"stats"`
}

// benchConfigs are the Fig. 5 / Fig. 7 operating points the bench runner
// measures: the Fig. 5 running-time comparison at its hardest default point
// on both datasets (serial and at GOMAXPROCS workers), and the Fig. 7 pfct
// sweep endpoints on Mushroom, where bound pruning is weakest (0.5) and
// strongest (0.9).
func (s *Suite) benchConfigs() []BenchPoint {
	procs := runtime.GOMAXPROCS(0)
	cfgs := []BenchPoint{
		{Name: "fig5-mushroom", Dataset: s.Mushroom.Name, RelMinSup: 0.2, PFCT: s.Cfg.PFCT, Parallelism: 1},
		{Name: "fig5-mushroom-parallel", Dataset: s.Mushroom.Name, RelMinSup: 0.2, PFCT: s.Cfg.PFCT, Parallelism: procs},
		{Name: "fig5-quest", Dataset: s.Quest.Name, RelMinSup: 0.4, PFCT: s.Cfg.PFCT, Parallelism: 1},
		{Name: "fig7-mushroom-pfct0.5", Dataset: s.Mushroom.Name, RelMinSup: 0.4, PFCT: 0.5, Parallelism: 1},
		{Name: "fig7-mushroom-pfct0.9", Dataset: s.Mushroom.Name, RelMinSup: 0.4, PFCT: 0.9, Parallelism: 1},
	}
	return cfgs
}

// RunBench measures every benchmark configuration with testing.Benchmark
// and writes the points as an indented JSON array to w (the BENCH_*.json
// format the repository tracks across optimization work).
func (s *Suite) RunBench(w io.Writer) error {
	var points []BenchPoint
	for _, cfg := range s.benchConfigs() {
		ds := s.Mushroom
		if cfg.Dataset == s.Quest.Name {
			ds = s.Quest
		}
		opts := s.baseOptions(ds.DB, cfg.RelMinSup)
		opts.PFCT = cfg.PFCT
		opts.Parallelism = cfg.Parallelism

		res, err := core.Mine(ds.DB, opts)
		if err != nil {
			return fmt.Errorf("bench %s: %w", cfg.Name, err)
		}
		cfg.Itemsets = len(res.Itemsets)
		cfg.Stats = res.Stats

		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Mine(ds.DB, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		cfg.NsPerOp = br.NsPerOp()
		cfg.AllocsPerOp = br.AllocsPerOp()
		cfg.BytesPerOp = br.AllocedBytesPerOp()
		points = append(points, cfg)
		fmt.Fprintf(s.Cfg.Out, "bench %-24s %12d ns/op %8d allocs/op  itemsets=%d tails=%d memo-hits=%d\n",
			cfg.Name, cfg.NsPerOp, cfg.AllocsPerOp, cfg.Itemsets, cfg.Stats.TailEvaluations, cfg.Stats.TailMemoHits)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(points)
}
