package bitset

import "math/bits"

// AndBatch intersects parent with every source, storing parent ∩ srcs[i]
// into dsts[i] and |parent ∩ srcs[i]| into counts[i]. It is the batched
// sibling-evaluation kernel (DESIGN §13): when all operands are dense the
// intersections run as a column sweep — each parent word is loaded once and
// ANDed against the corresponding word of every source — instead of one
// full pass over the parent per sibling. Results are identical to
// len(srcs) individual AndInto calls, including representation choice.
//
// dsts must not alias parent, the sources, or each other; all sets share
// the parent's capacity. len(dsts) == len(counts) == len(srcs).
func AndBatch(dsts []*Bitset, counts []int, parent *Bitset, srcs []*Bitset) {
	if len(dsts) != len(srcs) || len(counts) != len(srcs) {
		panic("bitset: AndBatch length mismatch")
	}
	sweep := !parent.sparse
	if sweep {
		for _, s := range srcs {
			if s.sparse {
				sweep = false
				break
			}
		}
	}
	if !sweep {
		// Sparse operands intersect in time linear in their id lists; a
		// column sweep buys nothing there.
		for i := range srcs {
			counts[i] = AndInto(dsts[i], parent, srcs[i])
		}
		return
	}
	nw := len(parent.words)
	for i, d := range dsts {
		if d.n != parent.n || srcs[i].n != parent.n {
			panic("bitset: AndBatch capacity mismatch")
		}
		d.ensureWords(nw)
		d.sparse = false
		counts[i] = 0
	}
	for wi := 0; wi < nw; wi++ {
		pw := parent.words[wi]
		if pw == 0 {
			for _, d := range dsts {
				d.words[wi] = 0
			}
			continue
		}
		for si, src := range srcs {
			w := pw & src.words[wi]
			dsts[si].words[wi] = w
			counts[si] += bits.OnesCount64(w)
		}
	}
}
