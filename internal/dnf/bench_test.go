package dnf

import (
	"math/rand"

	"github.com/probdata/pfcim/internal/poibin"
	"testing"

	"github.com/probdata/pfcim/internal/bitset"
)

// These benchmarks quantify the design trade-off behind
// core.Options.MaxExactClauses: inclusion–exclusion is exponential in the
// clause count but exact; Karp–Luby is linear in the sample budget. The
// crossover motivates the default cutoff of 10 clauses.

// benchSystem builds a system with exactly m clauses over a 60-tuple base.
func benchSystem(m int) *System {
	rng := rand.New(rand.NewSource(3))
	n := 60
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = rng.Float64()*0.9 + 0.05
	}
	base := bitset.New(n)
	base.SetAll()
	clauses := make([]*bitset.Bitset, m)
	for ci := range clauses {
		b := base.Clone()
		base.ForEach(func(tid int) bool {
			if rng.Float64() < 0.3 {
				b.Clear(tid)
			}
			return true
		})
		clauses[ci] = b
	}
	s, err := NewSystem(base, probs, 20, clauses)
	if err != nil {
		panic(err)
	}
	return s
}

func BenchmarkExactUnionM8(b *testing.B) {
	s := benchSystem(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExactUnion(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactUnionM14(b *testing.B) {
	s := benchSystem(14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExactUnion(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeSumsM14(b *testing.B) {
	s := benchSystem(14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ComputeSums()
	}
}

func BenchmarkKarpLubyM14Eps01(b *testing.B) {
	s := benchSystem(14)
	sums := s.ComputeSums()
	n := SampleSize(14, 0.1, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.KarpLuby(poibin.NewSM64(uint64(i)), sums.Clause, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnionBoundsM14(b *testing.B) {
	s := benchSystem(14)
	sums := s.ComputeSums()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnionBounds(sums)
	}
}
