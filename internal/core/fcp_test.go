package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
	"github.com/probdata/pfcim/internal/world"
)

func TestExactFCPPaperExample(t *testing.T) {
	db := uncertain.PaperExample()
	abc := itemset.FromInts(0, 1, 2)
	got, err := ExactFCP(db, abc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8754) > 1e-9 {
		t.Errorf("ExactFCP(abc) = %v, want 0.8754", got)
	}
	abcd := itemset.FromInts(0, 1, 2, 3)
	got, err = ExactFCP(db, abcd, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.81) > 1e-9 {
		t.Errorf("ExactFCP(abcd) = %v, want 0.81", got)
	}
	// Non-closed itemsets have Pr_FC = 0 (count ties make them dead).
	for _, x := range []itemset.Itemset{itemset.FromInts(0), itemset.FromInts(0, 1)} {
		got, err = ExactFCP(db, x, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("ExactFCP(%v) = %v, want 0", x, got)
		}
	}
	// Unsatisfiable support threshold.
	got, err = ExactFCP(db, abc, 5)
	if err != nil || got != 0 {
		t.Errorf("ExactFCP at minSup 5 = %v, %v; want 0", got, err)
	}
}

func TestExactFCPAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		db := randomDB(rng, 8, 5)
		items := db.Items()
		var x itemset.Itemset
		for _, it := range items {
			if rng.Intn(2) == 0 {
				x = append(x, it)
			}
		}
		if len(x) == 0 {
			x = itemset.Itemset{items[0]}
		}
		minSup := rng.Intn(3) + 1
		want, err := world.FreqClosedProb(db, x, minSup)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExactFCP(db, x, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: ExactFCP(%v, ms=%d) = %v, oracle %v", trial, x, minSup, got, want)
		}
	}
}

func TestEstimateFCPCloseToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 25; trial++ {
		db := randomDB(rng, 8, 5)
		items := db.Items()
		x := itemset.Itemset{items[rng.Intn(len(items))]}
		minSup := rng.Intn(2) + 1
		exact, err := ExactFCP(db, x, minSup)
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateFCP(db, x, minSup, 0.05, 0.05, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-exact) > 0.05 {
			t.Errorf("trial %d: EstimateFCP(%v) = %v, exact %v", trial, x, est, exact)
		}
	}
}

func TestClauseCount(t *testing.T) {
	db := uncertain.PaperExample()
	// {a b c}: one extension event (d).
	m, err := ClauseCount(db, itemset.FromInts(0, 1, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 {
		t.Errorf("ClauseCount(abc) = %d, want 1", m)
	}
	// {a b c d}: no other items.
	m, err = ClauseCount(db, itemset.FromInts(0, 1, 2, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	if m != 0 {
		t.Errorf("ClauseCount(abcd) = %d, want 0", m)
	}
	// Dead itemsets report 0.
	m, err = ClauseCount(db, itemset.FromInts(0), 2)
	if err != nil || m != 0 {
		t.Errorf("ClauseCount(a) = %d, %v; want 0 (dead)", m, err)
	}
	active, err := SamplerActiveItemset(db, itemset.FromInts(0, 1, 2), 2)
	if err != nil || !active {
		t.Errorf("abc should be sampler-active: %v, %v", active, err)
	}
}
