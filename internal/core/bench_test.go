package core

import (
	"testing"

	"github.com/probdata/pfcim/internal/gen"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// Ablation benchmarks for the design choices DESIGN.md calls out:
// the exact-union cutoff, the pairwise-bound clause cap, parallelism, and
// the two Monte-Carlo estimators (clause-coverage vs whole-world).

func benchDB() *uncertain.DB {
	data := gen.MushroomLike(0.08, 7)
	return gen.AssignGaussian(data, 0.5, 0.5, 8)
}

func benchMine(b *testing.B, mod func(*Options)) {
	db := benchDB()
	o := Options{MinSup: AbsoluteMinSup(db.N(), 0.2), PFCT: 0.8, Seed: 1}
	mod(&o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(db, o); err != nil {
			b.Fatal(err)
		}
	}
}

// Exact-union cutoff ablation: resolve surviving candidates by
// inclusion–exclusion (engineering default) vs always sampling (the
// paper's cost model).
func BenchmarkCheckingExactUnion(b *testing.B) {
	benchMine(b, func(o *Options) { o.MaxExactClauses = 10 })
}

func BenchmarkCheckingAlwaysSample(b *testing.B) {
	benchMine(b, func(o *Options) { o.MaxExactClauses = -1 })
}

// Pairwise-bound cap ablation.
func BenchmarkPairClausesCap4(b *testing.B) {
	benchMine(b, func(o *Options) { o.MaxPairClauses = 4; o.MaxExactClauses = -1 })
}

func BenchmarkPairClausesCap16(b *testing.B) {
	benchMine(b, func(o *Options) { o.MaxPairClauses = 16; o.MaxExactClauses = -1 })
}

// Parallel first-level mining.
func BenchmarkParallelism1(b *testing.B) {
	benchMine(b, func(o *Options) { o.Parallelism = 1 })
}

func BenchmarkParallelism4(b *testing.B) {
	benchMine(b, func(o *Options) { o.Parallelism = 4 })
}

// Estimator comparison on a single itemset: the Karp–Luby clause-coverage
// sampler inside Mine vs the naive whole-world sampler at a comparable
// target accuracy (ε = 0.1, δ = 0.1).
func BenchmarkEstimatorWorldSampler(b *testing.B) {
	db := uncertain.PaperExample()
	ws := NewWorldSampler(db, 1)
	abc := itemset.FromInts(0, 1, 2)
	n := EstimateSamples(0.1, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.FreqClosedProb(abc, 2, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimatorKarpLubyPath(b *testing.B) {
	db := uncertain.PaperExample()
	o := Options{MinSup: 2, PFCT: 0.8, Seed: 1, DisableBounds: true, MaxExactClauses: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(db, o); err != nil {
			b.Fatal(err)
		}
	}
}
