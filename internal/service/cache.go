package service

import (
	"container/list"
	"sync"

	"github.com/probdata/pfcim/internal/core"
)

// resultCache is an LRU map from (dataset id, canonical options key) to a
// finished mining result. Caching is sound because mining is deterministic
// per (database content, canonical options) — see DESIGN §8.3: results,
// probabilities, and all scheduling-independent statistics are
// byte-identical across runs, parallelism settings, and memo budgets — so a
// cached entry is indistinguishable from re-mining.
// With a durable store attached the cache becomes its read/write-through
// front: a finished result is snapshotted to disk as it enters the LRU, and
// a miss consults the store before reporting failure, promoting disk hits —
// so a restarted daemon (or an entry the LRU evicted) still answers as a
// cache hit instead of re-mining.
type resultCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	persist *persister // nil without -store-dir
}

type cacheEntry struct {
	key string
	res core.ResultJSON
}

// cacheKey joins the two key halves. The canonical options key contains no
// newline, so the separator is unambiguous.
func cacheKey(datasetID, optionsKey string) string {
	return datasetID + "\n" + optionsKey
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached result for key, promoting it to most recent. On an
// LRU miss with a store attached, the stored snapshot is read through and
// promoted — indistinguishable from a memory hit to callers, which is the
// point: restored results count as cache hits, not re-mines.
func (c *resultCache) get(key string) (core.ResultJSON, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()
	if c.persist == nil {
		return core.ResultJSON{}, false
	}
	res, ok := c.persist.loadResult(key)
	if !ok {
		return core.ResultJSON{}, false
	}
	c.putMem(key, res)
	return res, true
}

// put stores a result, evicting the least recently used entry beyond the
// capacity, and snapshots it to the durable store when one is attached. A
// zero or negative capacity disables the in-memory tier but not the store:
// durability does not depend on the LRU budget.
func (c *resultCache) put(key string, res core.ResultJSON) {
	c.putMem(key, res)
	if c.persist != nil {
		c.persist.saveResult(key, res)
	}
}

func (c *resultCache) putMem(key string, res core.ResultJSON) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
