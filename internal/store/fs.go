package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FS is the slice of filesystem behaviour the store needs, factored out so
// tests can inject faults (errors, short writes, torn renames) at any point
// of the write protocol. The production implementation is osFS; FaultFS
// wraps any FS and fails the Nth mutating operation. Every durability claim
// in this package is pinned by a property test that drives the store
// through FaultFS and asserts the on-disk state recovers cleanly.
type FS interface {
	MkdirAll(dir string) error
	ReadDir(dir string) ([]string, error) // entry names, files only
	ReadFile(path string) ([]byte, error)
	Create(path string) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	// SyncDir fsyncs the directory so a completed rename survives power
	// loss. On filesystems without directory handles it may be a no-op.
	SyncDir(dir string) error
}

// File is the writable handle Create returns: written, synced, closed —
// in that order — by the atomic-write protocol.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OS returns the production filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems refuse to fsync directories (EINVAL); the rename
		// is still atomic, only its persistence across power loss weakens.
		if errors.Is(err, os.ErrInvalid) {
			return nil
		}
		return err
	}
	return nil
}

// ErrInjected is the error every FaultFS failure returns (wrapped with the
// operation that failed), so tests can tell injected faults from real ones.
var ErrInjected = errors.New("store: injected fault")

// FaultMode selects how FaultFS fails the target operation.
type FaultMode int

const (
	// FaultError fails the Nth mutating op with ErrInjected; later ops
	// proceed normally (a transient fault — the caller's cleanup runs).
	FaultError FaultMode = iota
	// FaultCrash fails the Nth and every later mutating op, modeling the
	// process dying mid-protocol: not even cleanup runs.
	FaultCrash
	// FaultShortWrite writes only the first half of the Nth write's bytes
	// before failing, then behaves like FaultCrash — modeling a torn page
	// hitting disk as the process dies.
	FaultShortWrite
	// FaultTornRename copies only a prefix of the source to the destination
	// on the Nth rename (then crashes), modeling a filesystem whose rename
	// is not atomic across power loss. The destination is corrupt; the
	// store must quarantine it, never serve it.
	FaultTornRename
)

// FaultFS wraps an FS and fails the Nth mutating operation (1-based)
// according to Mode. Reads never fail: the injection models write-path
// faults; recovery reopens the directory with a clean FS anyway.
type FaultFS struct {
	Inner FS
	Mode  FaultMode

	mu      sync.Mutex
	n       int  // ops until the fault fires (counts down)
	crashed bool // FaultCrash/FaultShortWrite/FaultTornRename tripped
	fired   bool
}

// NewFaultFS arms a fault at the nth mutating operation.
func NewFaultFS(inner FS, mode FaultMode, n int) *FaultFS {
	return &FaultFS{Inner: inner, Mode: mode, n: n}
}

// Fired reports whether the armed fault triggered.
func (f *FaultFS) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// step consumes one mutating operation and reports whether it must fail.
func (f *FaultFS) step() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return true
	}
	f.n--
	if f.n > 0 {
		return false
	}
	if f.n < 0 {
		return false // FaultError already fired; later ops succeed
	}
	f.fired = true
	if f.Mode != FaultError {
		f.crashed = true
	}
	return true
}

func (f *FaultFS) fail(op string) error { return fmt.Errorf("%w: %s", ErrInjected, op) }

func (f *FaultFS) MkdirAll(dir string) error {
	if f.step() {
		return f.fail("mkdir " + dir)
	}
	return f.Inner.MkdirAll(dir)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.Inner.ReadDir(dir) }
func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.Inner.ReadFile(path) }

func (f *FaultFS) Create(path string) (File, error) {
	if f.step() {
		return nil, f.fail("create " + path)
	}
	file, err := f.Inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, path: path}, nil
}

func (f *FaultFS) Rename(oldPath, newPath string) error {
	if f.step() {
		if f.Mode == FaultTornRename {
			// Model a non-atomic rename torn by power loss: the destination
			// materializes with a prefix of the source, the source survives.
			if data, err := f.Inner.ReadFile(oldPath); err == nil {
				if dst, err := f.Inner.Create(newPath); err == nil {
					dst.Write(data[:len(data)/2])
					dst.Sync()
					dst.Close()
				}
			}
		}
		return f.fail("rename " + oldPath)
	}
	return f.Inner.Rename(oldPath, newPath)
}

func (f *FaultFS) Remove(path string) error {
	if f.step() {
		return f.fail("remove " + path)
	}
	return f.Inner.Remove(path)
}

func (f *FaultFS) SyncDir(dir string) error {
	if f.step() {
		return f.fail("syncdir " + dir)
	}
	return f.Inner.SyncDir(dir)
}

// faultFile threads the write/sync/close ops of one file through the
// injection counter.
type faultFile struct {
	fs   *FaultFS
	f    File
	path string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.fs.step() {
		if ff.fs.Mode == FaultShortWrite && len(p) > 0 {
			n, _ := ff.f.Write(p[:len(p)/2])
			return n, ff.fs.fail("short write " + ff.path)
		}
		return 0, ff.fs.fail("write " + ff.path)
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if ff.fs.step() {
		return ff.fs.fail("sync " + ff.path)
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	if ff.fs.step() {
		ff.f.Close() // release the descriptor either way
		return ff.fs.fail("close " + ff.path)
	}
	return ff.f.Close()
}

// join is filepath.Join under a short local name (the store builds many
// paths).
func join(parts ...string) string { return filepath.Join(parts...) }
