package service

// Sweep jobs: POST /v1/sweeps decomposes a parameter grid into per-point
// cache entries. Each grid point's canonical options form the same cache
// key a single POST /v1/jobs at those options would use, so sweeps consume
// results cached by earlier jobs (and earlier sweeps) and populate the
// cache for later ones. Only the points missing from the cache reach the
// sweep engine, which in turn runs one full enumeration per MinSup group
// and derives the rest (see internal/sweep).

import (
	"fmt"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/sweep"
)

// sweepSlot is one grid point of a sweep job: its engine form, its result
// cache key, and — when the submit-time cache lookup hit — the cached
// result that spares the engine the point.
type sweepSlot struct {
	point  sweep.Point
	key    string
	cached *core.ResultJSON
}

// SubmitSweep validates every grid point, consults the result cache per
// point, and either completes the sweep immediately (every point cached) or
// enqueues a job that mines only the missing points.
func (m *Manager) SubmitSweep(ds *Dataset, oj core.OptionsJSON, pts []sweep.PointJSON, timeout time.Duration) (JobInfo, error) {
	if len(pts) == 0 {
		return JobInfo{}, fmt.Errorf("service: sweep needs at least one point")
	}
	opts, err := oj.Options()
	if err != nil {
		return JobInfo{}, err
	}
	// Sweeps always mine in-process — the inline sharded arithmetic is
	// byte-identical to the distributed evaluator, so the per-point cache
	// entries they produce stay interchangeable with single jobs mined over
	// the workers.
	if err := m.applyShards(&opts); err != nil {
		return JobInfo{}, err
	}
	if opts.TailMemoEntries == 0 {
		opts.TailMemoEntries = m.tailMemo
	}
	slots := make([]sweepSlot, len(pts))
	for i, pj := range pts {
		p := pj.Point()
		canon, err := p.Apply(opts).Canonical()
		if err != nil {
			return JobInfo{}, fmt.Errorf("service: sweep point %d: %w", i, err)
		}
		key, err := canon.CanonicalKey()
		if err != nil {
			return JobInfo{}, fmt.Errorf("service: sweep point %d: %w", i, err)
		}
		slots[i] = sweepSlot{point: p, key: cacheKey(ds.ID, key)}
	}
	if timeout <= 0 || (m.maxJobTime > 0 && timeout > m.maxJobTime) {
		timeout = m.maxJobTime
	}

	j := &job{
		kind:      JobKindSweep,
		dataset:   ds.ID,
		db:        ds.DB(),
		options:   oj,
		opts:      opts,
		slots:     slots,
		timeout:   timeout,
		submitted: time.Now(),
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobInfo{}, ErrShuttingDown
	}
	m.seq++
	j.id = fmt.Sprintf("j%d", m.seq)
	if m.traceJobs {
		j.traceID = j.id
	}

	missing := 0
	for i := range j.slots {
		lookupStart := time.Now()
		res, ok := m.cache.get(j.slots[i].key)
		m.metrics.sweepCache.Observe(time.Since(lookupStart))
		if ok {
			r := res
			j.slots[i].cached = &r
			m.metrics.CacheHits.Add(1)
		} else {
			m.metrics.CacheMisses.Add(1)
			missing++
		}
	}
	m.metrics.SweepPointsCached.Add(int64(len(j.slots) - missing))

	if missing == 0 {
		j.status = StatusDone
		j.cached = true
		j.sweepRes = m.assembleSweep(j, nil)
		j.finished = time.Now()
		m.metrics.JobsDone.Add(1)
		m.metrics.SweepsDone.Add(1)
		m.addLocked(j)
		m.log.Info("sweep served from cache", "job", j.id, "dataset", j.dataset,
			"points", len(j.slots))
		return j.snapshot(), nil
	}

	j.status = StatusQueued
	select {
	case m.queue <- j:
	default:
		return JobInfo{}, ErrQueueFull
	}
	m.metrics.JobsQueued.Add(1)
	m.addLocked(j)
	m.log.Info("sweep queued", "job", j.id, "dataset", j.dataset,
		"points", len(j.slots), "cached", len(j.slots)-missing)
	return j.snapshot(), nil
}

// missingPoints lists the grid points the submit-time cache lookup missed,
// in request order.
func missingPoints(j *job) []sweep.Point {
	var out []sweep.Point
	for _, s := range j.slots {
		if s.cached == nil {
			out = append(out, s.point)
		}
	}
	return out
}

// assembleSweep merges cached per-point results with the engine's (res is
// nil when every point was cached), caches every freshly computed point
// under its single-job key, and returns the wire form in request order.
func (m *Manager) assembleSweep(j *job, res *sweep.Result) *sweep.ResultJSON {
	out := &sweep.ResultJSON{Points: make([]sweep.PointResultJSON, len(j.slots))}
	var engine []sweep.PointResultJSON
	if res != nil {
		rj := res.JSON()
		engine = rj.Points
		out.Stats = rj.Stats
	}
	k := 0
	for i, s := range j.slots {
		if s.cached != nil {
			out.Points[i] = sweep.PointResultJSON{
				Point:    s.point.JSON(),
				Options:  s.cached.Options,
				Cached:   true,
				Itemsets: s.cached.Itemsets,
				Stats:    s.cached.Stats,
			}
			continue
		}
		m.cache.put(s.key, res.Points[k].CoreJSON())
		out.Points[i] = engine[k]
		k++
	}
	out.Stats.Points = len(j.slots)
	return out
}
