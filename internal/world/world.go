// Package world implements exact possible-world semantics for small
// uncertain databases by exhaustive enumeration of the 2ⁿ worlds. It is the
// ground-truth oracle: every probability the fast miner computes is checked
// against this package in the tests, and the paper's Tables I–III and
// Example 1.2 are reproduced with it.
package world

import (
	"fmt"
	"sort"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// MaxTransactions bounds enumeration; beyond this the 2ⁿ loop is hopeless.
const MaxTransactions = 26

// World is one possible world: the subset of tuples that exist, as a
// bitmask over transaction ids, together with its probability.
type World struct {
	Mask uint32
	Prob float64
}

// Enumerate calls fn for every possible world of db. It returns an error if
// db has more than MaxTransactions tuples.
func Enumerate(db *uncertain.DB, fn func(w World)) error {
	n := db.N()
	if n > MaxTransactions {
		return fmt.Errorf("world: %d transactions exceed enumeration limit %d", n, MaxTransactions)
	}
	probs := db.Probs()
	for mask := uint32(0); mask < 1<<uint(n); mask++ {
		p := 1.0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				p *= probs[i]
			} else {
				p *= 1 - probs[i]
			}
		}
		fn(World{Mask: mask, Prob: p})
	}
	return nil
}

// SupportIn returns sup_w(X): the number of present transactions whose
// itemset contains X.
func SupportIn(db *uncertain.DB, w World, x itemset.Itemset) int {
	c := 0
	for i := 0; i < db.N(); i++ {
		if w.Mask&(1<<uint(i)) == 0 {
			continue
		}
		if itemset.IsSubset(x, db.Transaction(i).Items) {
			c++
		}
	}
	return c
}

// IsClosedIn reports whether X is a closed itemset in world w: X appears at
// least once and no proper superset has the same support. Following the
// paper's Theorem 3.1 convention, an itemset that does not appear in the
// world is NOT closed.
func IsClosedIn(db *uncertain.DB, w World, x itemset.Itemset) bool {
	sup := SupportIn(db, w, x)
	if sup == 0 {
		return false
	}
	// It suffices to test single-item extensions: if any superset ties the
	// support, some single extension does too.
	for _, e := range db.Items() {
		if x.Contains(e) {
			continue
		}
		if SupportIn(db, w, x.Add(e)) == sup {
			return false
		}
	}
	return true
}

// IsFrequentClosedIn reports whether X is a frequent closed itemset in w.
func IsFrequentClosedIn(db *uncertain.DB, w World, x itemset.Itemset, minSup int) bool {
	sup := SupportIn(db, w, x)
	if sup < minSup || sup == 0 {
		return false
	}
	for _, e := range db.Items() {
		if x.Contains(e) {
			continue
		}
		if SupportIn(db, w, x.Add(e)) == sup {
			return false
		}
	}
	return true
}

// FreqProb returns the exact frequent probability Pr_F(X) = Pr[sup(X) ≥ minSup].
func FreqProb(db *uncertain.DB, x itemset.Itemset, minSup int) (float64, error) {
	total := 0.0
	err := Enumerate(db, func(w World) {
		if SupportIn(db, w, x) >= minSup {
			total += w.Prob
		}
	})
	return total, err
}

// ClosedProb returns the exact closed probability Pr_C(X) (Definition 3.6).
func ClosedProb(db *uncertain.DB, x itemset.Itemset) (float64, error) {
	total := 0.0
	err := Enumerate(db, func(w World) {
		if IsClosedIn(db, w, x) {
			total += w.Prob
		}
	})
	return total, err
}

// FreqClosedProb returns the exact frequent closed probability Pr_FC(X)
// (Definition 3.7).
func FreqClosedProb(db *uncertain.DB, x itemset.Itemset, minSup int) (float64, error) {
	total := 0.0
	err := Enumerate(db, func(w World) {
		if IsFrequentClosedIn(db, w, x, minSup) {
			total += w.Prob
		}
	})
	return total, err
}

// Result pairs an itemset with its exact frequent closed probability.
type Result struct {
	Items itemset.Itemset
	Prob  float64
}

// MineExact returns every probabilistic frequent closed itemset of db
// (Pr_FC(X) > pfct) by enumerating all non-empty itemsets over the item
// universe and all possible worlds. Usable only for tiny databases.
func MineExact(db *uncertain.DB, minSup int, pfct float64) ([]Result, error) {
	items := db.Items()
	if len(items) > 20 {
		return nil, fmt.Errorf("world: %d items exceed exact mining limit 20", len(items))
	}
	var out []Result
	for mask := 1; mask < 1<<uint(len(items)); mask++ {
		var x itemset.Itemset
		for i, it := range items {
			if mask&(1<<uint(i)) != 0 {
				x = append(x, it)
			}
		}
		p, err := FreqClosedProb(db, x, minSup)
		if err != nil {
			return nil, err
		}
		if p > pfct {
			out = append(out, Result{Items: x.Clone(), Prob: p})
		}
	}
	sort.Slice(out, func(i, j int) bool { return itemset.Compare(out[i].Items, out[j].Items) < 0 })
	return out, nil
}

// FrequentClosedIn returns the set of frequent closed itemsets of a single
// world, as Table III's last column lists them.
func FrequentClosedIn(db *uncertain.DB, w World, minSup int) ([]itemset.Itemset, error) {
	items := db.Items()
	if len(items) > 20 {
		return nil, fmt.Errorf("world: %d items exceed enumeration limit 20", len(items))
	}
	var out []itemset.Itemset
	for mask := 1; mask < 1<<uint(len(items)); mask++ {
		var x itemset.Itemset
		for i, it := range items {
			if mask&(1<<uint(i)) != 0 {
				x = append(x, it)
			}
		}
		if IsFrequentClosedIn(db, w, x, minSup) {
			out = append(out, x.Clone())
		}
	}
	return out, nil
}
