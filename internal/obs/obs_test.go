package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilFastPath: every Recorder method must be a no-op on a nil receiver
// — this is the disabled path the miner takes when Options.Tracer is unset.
func TestNilFastPath(t *testing.T) {
	var r *Recorder
	if got := r.Now(); got != 0 {
		t.Fatalf("nil Recorder.Now() = %d, want 0", got)
	}
	r.Span(PhaseBoundCheck, 3, 0) // must not panic
	r.Node(2, 0, 42)
	var tr *Tracer
	if tr.Recorder(0) != nil {
		t.Fatal("nil Tracer.Recorder must return nil")
	}
	tr.AddMineWall(100)
	if tr.Profile() != nil {
		t.Fatal("nil Tracer.Profile must return nil")
	}
}

// TestAggregation: phase and depth aggregates must reflect exactly what was
// recorded, and Node must attribute selfNS (not the full span) to expand.
func TestAggregation(t *testing.T) {
	tr := New()
	r := tr.Recorder(0)

	start := r.Now()
	time.Sleep(2 * time.Millisecond)
	r.Span(PhaseCandidates, 0, start)

	nodeStart := r.Now()
	time.Sleep(time.Millisecond)
	r.Node(3, nodeStart, 500) // self time deliberately smaller than the span

	tr.AddMineWall(10_000_000)
	p := tr.Profile()
	if p.TotalNS != 10_000_000 {
		t.Fatalf("TotalNS = %d", p.TotalNS)
	}
	if ns := p.PhaseWallNS("candidates"); ns < int64(time.Millisecond) {
		t.Fatalf("candidates wall %dns, want ≥ 1ms", ns)
	}
	if ns := p.PhaseWallNS("expand"); ns != 500 {
		t.Fatalf("expand self time = %dns, want exactly the 500ns attributed", ns)
	}
	if len(p.Depths) != 1 || p.Depths[0].Depth != 3 || p.Depths[0].Nodes != 1 || p.Depths[0].WallNS != 500 {
		t.Fatalf("depth profile = %+v", p.Depths)
	}
	if len(p.Workers) != 1 || p.Workers[0].Spans != 2 {
		t.Fatalf("worker profile = %+v", p.Workers)
	}
	if _, err := json.Marshal(p); err != nil {
		t.Fatalf("profile must serialize: %v", err)
	}
}

// TestRingOverwrite: a full ring keeps the most recent spans and counts the
// evictions; aggregates stay exact.
func TestRingOverwrite(t *testing.T) {
	tr := NewWithCapacity(4)
	r := tr.Recorder(0)
	for i := 0; i < 10; i++ {
		r.Span(PhaseSample, i, r.Now())
	}
	p := tr.Profile()
	if p.SpansDropped != 6 {
		t.Fatalf("SpansDropped = %d, want 6", p.SpansDropped)
	}
	if c := p.Phases[PhaseSample].Count; c != 10 {
		t.Fatalf("aggregate count = %d, want 10 despite ring eviction", c)
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	// The 4 retained spans are depths 6..9, emitted oldest-first.
	out := sb.String()
	if strings.Count(out, `"ph":"X"`) != 4 {
		t.Fatalf("chrome trace should hold 4 events:\n%s", out)
	}
	if !strings.Contains(out, `"args":{"depth":6}`) || strings.Contains(out, `"args":{"depth":5}`) {
		t.Fatalf("ring should retain the most recent spans:\n%s", out)
	}
}

// TestChromeTraceIsJSON: the exporter's output must parse as a JSON array
// of events with the fields the trace viewers require.
func TestChromeTraceIsJSON(t *testing.T) {
	tr := New()
	r0, r1 := tr.Recorder(0), tr.Recorder(1)
	r0.Span(PhaseCandidates, 0, r0.Now())
	r1.Node(2, r1.Now(), 10)
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, sb.String())
	}
	var spans, names int
	for _, ev := range events {
		if ev["ph"] == "M" {
			if ev["name"] != "thread_name" {
				t.Fatalf("unexpected metadata event: %v", ev)
			}
			names++
			continue
		}
		spans++
		for _, k := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
	}
	if spans != 2 || names != 2 {
		t.Fatalf("got %d spans and %d thread names, want 2 and 2", spans, names)
	}
}

// TestHistogram: bucket boundaries are inclusive upper bounds and the
// snapshot is cumulative, matching Prometheus le semantics.
func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // ≤ 1ms
	h.Observe(time.Millisecond)       // ≤ 1ms (inclusive)
	h.Observe(5 * time.Millisecond)   // ≤ 10ms
	h.Observe(time.Second)            // +Inf
	snap := h.Snapshot()
	if want := []int64{2, 3, 3}; snap.Cumulative[0] != want[0] || snap.Cumulative[1] != want[1] || snap.Cumulative[2] != want[2] {
		t.Fatalf("cumulative = %v, want %v", snap.Cumulative, want)
	}
	if snap.Count != 4 {
		t.Fatalf("count = %d, want 4", snap.Count)
	}
	if snap.SumSeconds < 1.0065 || snap.SumSeconds > 1.0066 {
		t.Fatalf("sum = %v", snap.SumSeconds)
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines; run under
// -race this is the data-race check, and the final count must be exact.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(JobBuckets)
	const goroutines, per = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}

// TestTracerConcurrentRecorders: distinct workers may record concurrently
// on one tracer (the parallel miner does); -race validates isolation.
func TestTracerConcurrentRecorders(t *testing.T) {
	tr := New()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := tr.Recorder(w)
			for i := 0; i < 500; i++ {
				r.Node(i%6, r.Now(), int64(i))
				r.Span(PhaseBoundCheck, i%6, r.Now())
			}
		}(w)
	}
	wg.Wait()
	p := tr.Profile()
	if len(p.Workers) != workers {
		t.Fatalf("got %d worker profiles, want %d", len(p.Workers), workers)
	}
	if c := p.Phases[PhaseBoundCheck].Count; c != workers*500 {
		t.Fatalf("bound-check count = %d, want %d", c, workers*500)
	}
}

// TestImportBatchMergesRemoteSpans: a remote batch lands as a labeled
// worker with its own per-phase breakdown, shifted by the import offset,
// and is excluded from the global phase aggregates (that exclusion is what
// keeps phase sums ≈ wall time when RPC waits are already covered by the
// coordinator's own bound-check spans — DESIGN §16).
func TestImportBatchMergesRemoteSpans(t *testing.T) {
	tr := New()
	r := tr.Recorder(0)
	r.Span(PhaseBoundCheck, 1, r.Now())
	localBound := tr.Profile().PhaseWallNS("bound-check")

	batch := SpanBatch{BusyNS: 500, Spans: []SpanWire{
		{StartNS: 10, DurNS: 100, Phase: uint8(PhaseBoundCheck), Depth: 2},
		{StartNS: 120, DurNS: 50, Phase: uint8(PhaseBoundCheck), Depth: 3},
	}}
	tr.ImportBatch("w1:9101", 1000, batch)

	p := tr.Profile()
	if got := p.PhaseWallNS("bound-check"); got != localBound {
		t.Errorf("global bound-check = %d, want unchanged %d (remote time must not fold in)", got, localBound)
	}
	wp := p.RemoteWorker("w1:9101")
	if wp == nil {
		t.Fatalf("no remote worker profile: %+v", p.Workers)
	}
	if wp.Worker != -1 || wp.BusyNS != 150 || wp.Spans != 2 {
		t.Errorf("remote profile = %+v, want worker -1, busy 150, spans 2", wp)
	}
	if len(wp.Phases) != 1 || wp.Phases[0].Phase != "bound-check" || wp.Phases[0].WallNS != 150 {
		t.Errorf("remote phases = %+v", wp.Phases)
	}

	// The Chrome export shifts the spans onto the importer's timeline and
	// names the remote thread by its label.
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"name":"w1:9101"`) {
		t.Errorf("chrome trace lacks the remote thread name:\n%s", out)
	}
	if !strings.Contains(out, `"ts":1.010`) { // (1000+10) ns → 1.010 µs
		t.Errorf("remote span not shifted by the offset:\n%s", out)
	}
}

// TestImportBatchRingOverflow: imported spans obey the same ring bound as
// local recorders — the aggregate stays exact, the overflow is counted.
func TestImportBatchRingOverflow(t *testing.T) {
	tr := NewWithCapacity(4)
	spans := make([]SpanWire, 10)
	for i := range spans {
		spans[i] = SpanWire{StartNS: int64(i), DurNS: 1, Phase: uint8(PhaseBoundCheck), Depth: int16(i)}
	}
	tr.ImportBatch("w", 0, SpanBatch{Spans: spans})
	p := tr.Profile()
	if p.SpansDropped != 6 {
		t.Errorf("dropped = %d, want 6", p.SpansDropped)
	}
	wp := p.RemoteWorker("w")
	if wp == nil || wp.Spans != 10 || wp.BusyNS != 10 {
		t.Errorf("aggregates must be exact despite the ring bound: %+v", wp)
	}
	// An out-of-range phase from a future producer is skipped, not a panic.
	tr.ImportBatch("w", 0, SpanBatch{Spans: []SpanWire{{Phase: 200, DurNS: 5}}})
	if got := tr.Profile().RemoteWorker("w").Spans; got != 10 {
		t.Errorf("unknown phase should be ignored, spans = %d", got)
	}
}

// TestImportBatchConcurrent: parallel RPC completions import into one
// tracer while local recorders write; -race validates the locking.
func TestImportBatchConcurrent(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", g%3)
			for i := 0; i < 200; i++ {
				tr.ImportBatch(label, int64(i), SpanBatch{Spans: []SpanWire{
					{StartNS: 0, DurNS: 1, Phase: uint8(PhaseBoundCheck)},
				}})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := tr.Recorder(0)
		for i := 0; i < 500; i++ {
			r.Span(PhaseExpand, 1, r.Now())
		}
	}()
	wg.Wait()
	p := tr.Profile()
	var remoteSpans int64
	for _, wp := range p.Workers {
		if wp.Label != "" {
			remoteSpans += wp.Spans
		}
	}
	if remoteSpans != 8*200 {
		t.Errorf("remote spans = %d, want %d", remoteSpans, 8*200)
	}
}

// TestWireSpansRoundTrip: a producer-side tracer drains to a batch that an
// importer reconstructs faithfully.
func TestWireSpansRoundTrip(t *testing.T) {
	prod := New()
	r := prod.Recorder(0)
	r.Span(PhaseBoundCheck, 2, r.Now())
	b := prod.WireSpans()
	if len(b.Spans) != 1 || b.BusyNS <= 0 {
		t.Fatalf("batch = %+v", b)
	}
	if b.Spans[0].Depth != 2 || Phase(b.Spans[0].Phase) != PhaseBoundCheck {
		t.Fatalf("span = %+v", b.Spans[0])
	}
	cons := New()
	cons.ImportBatch("x", 0, b)
	if wp := cons.Profile().RemoteWorker("x"); wp == nil || wp.Spans != 1 {
		t.Fatalf("round trip lost the span: %+v", cons.Profile().Workers)
	}
}
