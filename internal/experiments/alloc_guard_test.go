package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/probdata/pfcim/internal/core"
)

// allocBaselinePath is the committed allocs/op baseline the CI bench-smoke
// step guards against. Regenerate it (after a deliberate allocation-profile
// change) with:
//
//	PFCIM_ALLOC_GUARD=write go test ./internal/experiments/ -run TestAllocRegressionGuard
const allocBaselinePath = "testdata/alloc_baseline.json"

// allocGuardTolerance is the accepted relative regression before the guard
// fails: measured > baseline × 1.2.
const allocGuardTolerance = 1.2

// TestAllocRegressionGuard mines the two Fig. 5 scenarios once each (the
// bench smoke) and compares their steady-state allocation counts against
// the committed baseline. Gated behind PFCIM_ALLOC_GUARD so the default
// `go test ./...` stays fast; CI runs it explicitly.
func TestAllocRegressionGuard(t *testing.T) {
	mode := os.Getenv("PFCIM_ALLOC_GUARD")
	if mode == "" {
		t.Skip("set PFCIM_ALLOC_GUARD=1 to run (or =write to regenerate the baseline)")
	}
	suite := NewSuite(Config{})
	scenarios := []struct {
		name string
		ds   Dataset
		rel  float64
	}{
		{"fig5-mushroom", suite.Mushroom, 0.2},
		{"fig5-quest", suite.Quest, 0.4},
	}
	measured := map[string]float64{}
	for _, sc := range scenarios {
		opts := suite.baseOptions(sc.ds.DB, sc.rel)
		// Warm once so lazily-built process state (none today) is excluded,
		// and so a mining error surfaces as a test failure, not a panic
		// inside AllocsPerRun.
		if _, err := core.Mine(sc.ds.DB, opts); err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		measured[sc.name] = testing.AllocsPerRun(3, func() {
			if _, err := core.Mine(sc.ds.DB, opts); err != nil {
				panic(err)
			}
		})
		t.Logf("%-16s %10.0f allocs/op", sc.name, measured[sc.name])
	}

	if mode == "write" {
		buf, err := json.MarshalIndent(measured, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(allocBaselinePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(allocBaselinePath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", allocBaselinePath)
		return
	}

	raw, err := os.ReadFile(allocBaselinePath)
	if err != nil {
		t.Fatalf("no baseline (%v); regenerate with PFCIM_ALLOC_GUARD=write", err)
	}
	baseline := map[string]float64{}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatal(err)
	}
	for name, got := range measured {
		base, ok := baseline[name]
		if !ok {
			t.Errorf("%s: no baseline entry; regenerate with PFCIM_ALLOC_GUARD=write", name)
			continue
		}
		if got > base*allocGuardTolerance {
			t.Errorf("%s: %0.f allocs/op, baseline %.0f (+%.0f%% exceeds the %d%% guard)",
				name, got, base, 100*(got/base-1), int(100*(allocGuardTolerance-1)))
		} else if got < base/allocGuardTolerance {
			t.Logf("%s: improved to %.0f allocs/op from %.0f — consider refreshing the baseline", name, got, base)
		}
	}
}
