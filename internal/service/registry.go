// Package service implements pfcimd, the long-lived mining daemon: a
// content-hashed dataset registry, an async job queue running the MPFCI
// miner on a bounded worker pool, a result cache keyed by (dataset hash,
// canonical options), and an observability surface (/healthz, /metrics,
// structured logs). See DESIGN.md §9 for the architecture and the
// determinism argument that makes the cache sound.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/probdata/pfcim/internal/uncertain"
)

// Dataset is one registered uncertain database. ID is derived from the
// content hash, so registering the same data twice (regardless of source —
// upload or path) yields the same Dataset.
type Dataset struct {
	// ID is the first 16 hex digits of the SHA-256 of the canonical text
	// serialization — enough that a collision needs ~2^32 distinct datasets
	// in one daemon, far beyond any registry this process can hold.
	ID string
	// Stats are the Table VIII-style characteristics, computed once at
	// registration and reported to clients.
	Stats uncertain.Stats
	// RegisteredAt is the first registration time.
	RegisteredAt time.Time

	db *uncertain.DB
}

// DB returns the registered database. The registry retains ownership; the
// database is immutable after construction, so concurrent mining jobs share
// it without copying — that sharing is the point of the daemon.
func (d *Dataset) DB() *uncertain.DB { return d.db }

// Registry is the thread-safe dataset store.
type Registry struct {
	mu   sync.RWMutex
	byID map[string]*Dataset
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*Dataset)}
}

// hashDB content-hashes a database via its canonical text serialization
// (sorted items, %g probabilities — see uncertain.Write), so equal
// databases hash equal regardless of how they were delivered.
func hashDB(db *uncertain.DB) (string, error) {
	h := sha256.New()
	if err := uncertain.Write(h, db); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil))[:16], nil
}

// Register adds db under its content hash and returns the Dataset plus
// whether it was newly added (false: the same content was already
// registered, and the existing record is returned).
func (r *Registry) Register(db *uncertain.DB) (*Dataset, bool, error) {
	id, err := hashDB(db)
	if err != nil {
		return nil, false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.byID[id]; ok {
		return d, false, nil
	}
	d := &Dataset{ID: id, Stats: db.Stats(), RegisteredAt: time.Now(), db: db}
	r.byID[id] = d
	return d, true, nil
}

// RegisterText parses the text interchange format from rd and registers the
// result.
func (r *Registry) RegisterText(rd io.Reader) (*Dataset, bool, error) {
	db, err := uncertain.Read(rd)
	if err != nil {
		return nil, false, err
	}
	return r.Register(db)
}

// RegisterPath loads the text interchange format from a local file and
// registers the result. The HTTP layer only routes here when the daemon was
// started with path loading enabled.
func (r *Registry) RegisterPath(path string) (*Dataset, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("service: load dataset: %w", err)
	}
	defer f.Close()
	return r.RegisterText(f)
}

// Get returns the dataset with the given id.
func (r *Registry) Get(id string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byID[id]
	return d, ok
}

// List returns every registered dataset, ordered by id.
func (r *Registry) List() []*Dataset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Dataset, 0, len(r.byID))
	for _, d := range r.byID {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}
