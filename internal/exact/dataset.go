// Package exact implements classical frequent-pattern mining over exact
// (certain) transaction data: Apriori, FP-growth, and a depth-first closed-
// itemset miner. The paper's compression-quality experiment (Fig. 10)
// compares the sizes of these result sets against their probabilistic
// counterparts; the miners are also general-purpose and independently
// tested against each other.
package exact

import (
	"sort"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// Dataset is an exact transaction database: one itemset per transaction.
type Dataset []itemset.Itemset

// FromUncertain strips the probabilities from an uncertain database,
// yielding the "exact version" of the data the paper mines with FP-growth
// and Closet+.
func FromUncertain(db *uncertain.DB) Dataset {
	out := make(Dataset, db.N())
	for i := 0; i < db.N(); i++ {
		out[i] = db.Transaction(i).Items.Clone()
	}
	return out
}

// Items returns the sorted universe of items.
func (d Dataset) Items() itemset.Itemset {
	seen := map[itemset.Item]struct{}{}
	for _, t := range d {
		for _, it := range t {
			seen[it] = struct{}{}
		}
	}
	items := make(itemset.Itemset, 0, len(seen))
	for it := range seen {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	return items
}

// Support returns the number of transactions containing x.
func (d Dataset) Support(x itemset.Itemset) int {
	c := 0
	for _, t := range d {
		if itemset.IsSubset(x, t) {
			c++
		}
	}
	return c
}

// Tidsets builds the vertical representation: item → bitset of transaction
// ids containing it.
func (d Dataset) Tidsets() map[itemset.Item]*bitset.Bitset {
	out := map[itemset.Item]*bitset.Bitset{}
	for tid, t := range d {
		for _, it := range t {
			b, ok := out[it]
			if !ok {
				b = bitset.New(len(d))
				out[it] = b
			}
			b.Set(tid)
		}
	}
	return out
}

// Pattern is a mined itemset with its exact support.
type Pattern struct {
	Items   itemset.Itemset
	Support int
}

// SortPatterns orders patterns lexicographically, for comparisons and
// deterministic output.
func SortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		return itemset.Compare(ps[i].Items, ps[j].Items) < 0
	})
}

// PatternsEqual reports whether two sorted pattern lists are identical in
// both itemsets and supports.
func PatternsEqual(a, b []Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Support != b[i].Support || !itemset.Equal(a[i].Items, b[i].Items) {
			return false
		}
	}
	return true
}
