package core

import (
	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
)

// bfsNode is one itemset of the current level in the breadth-first
// framework.
type bfsNode struct {
	items itemset.Itemset
	tids  *bitset.Bitset
	cnt   int
	prF   float64
	pos   int // candidate position of the last item (for prefix extension)
}

// mineBFS is the level-wise MPFCI-BFS framework: every probabilistically
// frequent itemset of level k is fully evaluated before level k+1 is
// generated. Superset and subset pruning do not apply — their triggering
// conditions relate a node to its DFS prefix path, which level-wise
// enumeration never materializes — so only Chernoff-Hoeffding pruning and
// the Lemma 4.4 bounds are available, exactly as in the paper's
// experimental comparison (Fig. 12).
func (m *miner) mineBFS() error {
	level := make([]bfsNode, 0, len(m.cands))
	for pos, c := range m.cands {
		level = append(level, bfsNode{
			items: itemset.Itemset{c.item},
			tids:  c.tids.Clone(),
			cnt:   c.cnt,
			prF:   c.prF,
			pos:   pos,
		})
	}
	for len(level) > 0 {
		var next []bfsNode
		for _, node := range level {
			if m.ctx != nil {
				if err := m.ctx.Err(); err != nil {
					return err
				}
			}
			m.stats.NodesVisited++
			ev, err := m.evaluate(node.items, node.tids, node.cnt, node.prF)
			if err != nil {
				return err
			}
			if ev.accepted {
				m.results = append(m.results, ResultItem{
					Items:    node.items.Clone(),
					Prob:     ev.prob,
					Lower:    ev.lower,
					Upper:    ev.upper,
					FreqProb: node.prF,
					Method:   ev.method,
				})
			}
			for pos := node.pos + 1; pos < len(m.cands); pos++ {
				c := m.cands[pos]
				child := bitset.And(node.tids, c.tids)
				cc := child.Count()
				if cc < m.opts.MinSup {
					continue
				}
				probs := m.probsOf(child)
				if !m.opts.DisableCH {
					if poibin.TailUpperBound(probs, m.opts.MinSup) <= m.opts.PFCT {
						m.stats.CHPruned++
						continue
					}
				}
				m.stats.TailEvaluations++
				prF := poibin.Tail(probs, m.opts.MinSup)
				if prF <= m.opts.PFCT {
					m.stats.FreqPruned++
					continue
				}
				next = append(next, bfsNode{
					items: node.items.Extend(c.item),
					tids:  child,
					cnt:   cc,
					prF:   prF,
					pos:   pos,
				})
			}
		}
		level = next
	}
	return nil
}
