package core

import (
	"container/heap"
	"context"
	"sort"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

// MineTopK returns the k itemsets with the highest frequent closed
// probability at the given minimum support, without a user-supplied pfct:
// the threshold rises dynamically to the current k-th best probability, so
// all of MPFCI's prunings keep their bite once the heap fills. Results are
// sorted by descending probability (ties lexicographically).
//
// Ranking uses each itemset's estimated Pr_FC; candidates resolved by the
// Lemma 4.4 bounds carry the bound midpoint, so orderings between itemsets
// whose probability intervals overlap are best-effort (exact for the
// common case of well-separated probabilities).
func MineTopK(db *uncertain.DB, minSup, k int, opts Options) ([]ResultItem, error) {
	return MineTopKContext(context.Background(), db, minSup, k, opts)
}

// MineTopKContext is MineTopK with cancellation: once ctx is done the run
// aborts with ctx.Err() at the next enumeration-tree node.
func MineTopKContext(ctx context.Context, db *uncertain.DB, minSup, k int, opts Options) ([]ResultItem, error) {
	opts.MinSup = minSup
	// Seed threshold: accept anything with non-trivial probability until k
	// results exist.
	const floor = 1e-9
	opts.PFCT = floor
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, nil
	}
	idx := db.Index()
	m := &miner{
		opts:     opts,
		db:       db,
		probs:    db.Probs(),
		allItems: idx.Items,
		itemTids: idx.Tidsets,
		ctx:      ctx,
	}
	m.buildCandidates()

	h := &resultHeap{}
	heap.Init(h)
	threshold := func() float64 {
		if h.Len() < k {
			return floor
		}
		return (*h)[0].Prob
	}

	var rec func(x itemset.Itemset, tids *bitset.Bitset, count int, prF float64, startPos int) error
	rec = func(x itemset.Itemset, tids *bitset.Bitset, count int, prF float64, startPos int) error {
		if m.ctx != nil {
			if err := m.ctx.Err(); err != nil {
				return err
			}
		}
		m.stats.NodesVisited++
		// Superset pruning is threshold-independent. The child tidset is a
		// subset of tids, so count equality is exactly tids ⊆ tids(e).
		if !m.opts.DisableSuperset {
			last := x.Last()
			for _, c := range m.cands {
				if c.item >= last {
					break
				}
				if x.Contains(c.item) {
					continue
				}
				if bitset.IsSubset(tids, c.tids) {
					m.stats.SupersetPruned++
					return nil
				}
			}
		}
		depth := len(x)
		exts := m.extBuf(depth)
		selfDead := false
		var err error
		for pos := startPos; pos < len(m.cands); pos++ {
			c := m.cands[pos]
			buf := m.getBuf()
			cc := bitset.AndInto(buf, tids, c.tids)
			if cc < m.opts.MinSup {
				m.putBuf(buf)
				exts = append(exts, extension{item: c.item, cnt: cc})
				continue
			}
			recX := extension{item: c.item, tids: buf, cnt: cc}
			childProbs := m.probsOf(buf)
			// Anything that cannot beat the current k-th best is out:
			// Pr_FC ≤ Pr_F, and the threshold only rises.
			if poibin.TailUpperBound(childProbs, m.opts.MinSup) <= threshold() {
				m.stats.CHPruned++
				exts = append(exts, recX)
				continue
			}
			childPrF := m.tailOf(buf, childProbs, x, c.item)
			recX.prF, recX.hasPrF = childPrF, true
			exts = append(exts, recX)
			if childPrF <= threshold() {
				m.stats.FreqPruned++
				continue
			}
			if !m.opts.DisableSubset && cc == count {
				selfDead = true
				m.stats.SubsetPruned++
				err = rec(x.Extend(c.item), buf, cc, childPrF, pos+1)
				break
			}
			if err = rec(x.Extend(c.item), buf, cc, childPrF, pos+1); err != nil {
				break
			}
		}
		if err != nil || selfDead {
			m.releaseExts(depth, exts)
			return err
		}
		// Evaluate against the current threshold.
		m.opts.PFCT = threshold()
		ev, err := m.evaluate(x, tids, count, prF, exts)
		m.releaseExts(depth, exts)
		if err != nil {
			return err
		}
		if ev.accepted {
			heap.Push(h, ResultItem{
				Items:    x.Clone(),
				Prob:     ev.prob,
				Lower:    ev.lower,
				Upper:    ev.upper,
				FreqProb: prF,
				Method:   ev.method,
			})
			if h.Len() > k {
				heap.Pop(h)
			}
		}
		return nil
	}
	for pos := 0; pos < len(m.cands); pos++ {
		c := m.cands[pos]
		if c.prF <= threshold() {
			continue
		}
		if err := rec(itemset.Itemset{c.item}, c.tids.Clone(), c.cnt, c.prF, pos+1); err != nil {
			return nil, err
		}
	}

	out := make([]ResultItem, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(ResultItem)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return itemset.Compare(out[i].Items, out[j].Items) < 0
	})
	return out, nil
}

// resultHeap is a min-heap on Prob, so the root is the k-th best.
type resultHeap []ResultItem

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Prob < h[j].Prob }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(ResultItem)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
