// Sensorstream demonstrates the streaming side of the library: a rolling
// window over an uncertain sensor feed with incrementally maintained
// probabilistic frequent items (tracked per-item tails) and incremental
// closed-itemset mining — each round re-evaluates only the enumeration
// subtrees the slid-in/out readings touch and reports what changed, the
// "continuous monitoring" deployment the paper's traffic scenario implies.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	pfcim "github.com/probdata/pfcim"
)

func main() {
	const windowSize = 400
	minSup := windowSize / 5

	w, err := pfcim.NewWindow(windowSize)
	if err != nil {
		log.Fatal(err)
	}
	// Maintained tails: every arrival folds its probability into each of its
	// items' truncated PMFs, every eviction deconvolves it back out, so the
	// per-report frequent-items query reads Pr[sup ≥ minSup] in O(1) per item.
	if err := w.TrackTails(minSup); err != nil {
		log.Fatal(err)
	}
	// Incremental closed-itemset mining over the same window: results are
	// byte-identical to from-scratch mining of each snapshot, but unchanged
	// subtrees replay from the previous round's recording.
	miner, err := pfcim.NewWindowMiner(w, pfcim.Options{MinSup: minSup, PFCT: 0.8, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(21))

	// The feed drifts: the dominant event pattern changes every 600
	// readings, and sensor confidence varies per reading.
	patterns := [][]int{
		{0, 10, 20}, // regime A
		{1, 11, 20}, // regime B
		{2, 12, 21}, // regime C
	}

	for step := 1; step <= 1800; step++ {
		regime := (step - 1) / 600
		items := append([]int(nil), patterns[regime]...)
		// Background noise items.
		if rng.Float64() < 0.5 {
			items = append(items, 30+rng.Intn(5))
		}
		// Occasional dropped pattern element.
		if rng.Float64() < 0.2 {
			items = items[1:]
		}
		conf := 0.6 + 0.35*rng.Float64()
		// Push through the miner so subtree invalidation sees every change.
		if err := miner.Push(pfcim.Transaction{Items: pfcim.NewItemset(items...), Prob: conf}); err != nil {
			log.Fatal(err)
		}

		// Report at regime boundaries and at the end.
		if step%600 == 0 {
			fmt.Printf("after %d readings (window %d, min_sup %d):\n", step, w.Len(), minSup)
			freq, err := w.FrequentItemsContext(ctx, pfcim.StreamOptions{MinSup: minSup, PFT: 0.9})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  probabilistic frequent items (pft=0.9):")
			for _, f := range freq {
				fmt.Printf(" %d(%.2f)", f.Item, f.FreqProb)
			}
			fmt.Println()

			// Incremental closed-itemset mining round.
			res, diff, err := pfcim.MineWindowContext(ctx, miner)
			if err != nil {
				log.Fatal(err)
			}
			longest := pfcim.ResultItem{}
			for _, r := range res.Itemsets {
				if r.Items.Len() > longest.Items.Len() {
					longest = r
				}
			}
			fmt.Printf("  %d probabilistic frequent closed itemsets; longest: %v (Pr_FC=%.2f)\n",
				len(res.Itemsets), longest.Items, longest.Prob)
			fmt.Printf("  round diff: +%d added, -%d removed, ~%d changed, %d unchanged (%d subtrees reused)\n\n",
				len(diff.Added), len(diff.Removed), len(diff.Changed), diff.Unchanged,
				res.Stats.SubtreesReused)
		}
	}
	ts := w.TailStats()
	fmt.Printf("tail maintenance: %d incremental updates, %d deconvolutions, %d rebuild fallbacks.\n",
		ts.Updates, ts.Deconvolved, ts.Rebuilds)
	fmt.Println("note how each regime's pattern items dominate their window and fade after the drift.")
}
