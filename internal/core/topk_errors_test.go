package core

import (
	"testing"

	"github.com/probdata/pfcim/internal/uncertain"
)

// TestMineTopKErrorPaths pins the thin edges of the top-k API: negative k,
// an empty database, invalid option combinations (which are rejected even
// when k asks for nothing — validation runs first), and the pfct domain
// edges of the underlying threshold miner.
func TestMineTopKErrorPaths(t *testing.T) {
	db := uncertain.PaperExample()

	// Negative k behaves like k=0: nothing, no error.
	if got, err := MineTopK(db, 2, -3, Options{Seed: 1}); err != nil || got != nil {
		t.Errorf("k=-3: got %v, %v; want nil, nil", got, err)
	}

	// Invalid options are rejected before the k short-circuit.
	if _, err := MineTopK(db, 2, 0, Options{Epsilon: 2}); err == nil {
		t.Error("Epsilon=2 should fail even with k=0")
	}
	if _, err := MineTopK(db, 0, 3, Options{}); err == nil {
		t.Error("minSup=0 should fail")
	}

	// A database with zero transactions is valid input and mines to nothing.
	empty, err := uncertain.NewDB(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := MineTopK(empty, 1, 5, Options{Seed: 1}); err != nil || len(got) != 0 {
		t.Errorf("empty database: got %v, %v; want empty, nil", got, err)
	}
	if res, err := Mine(empty, Options{MinSup: 1, PFCT: 0.5}); err != nil || len(res.Itemsets) != 0 {
		t.Errorf("Mine on empty database: got %+v, %v; want empty, nil", res, err)
	}

	// The threshold miner's pfct domain is the open interval (0,1).
	for _, pfct := range []float64{0, 1, -0.1, 1.1} {
		if _, err := Mine(db, Options{MinSup: 2, PFCT: pfct}); err == nil {
			t.Errorf("Mine with pfct=%v should fail", pfct)
		}
	}

	// k exceeding the result universe returns everything, prefix-consistent
	// with smaller k.
	all, err := MineTopK(db, 2, 1000, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	three, err := MineTopK(db, 2, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(three) > 3 || len(all) < len(three) {
		t.Fatalf("k=1000 returned %d, k=3 returned %d", len(all), len(three))
	}
	for i := range three {
		if !itemsEqualTopK(all[i].Items, three[i].Items) {
			t.Fatalf("top-3 is not a prefix of top-1000 at %d: %v vs %v", i, all[i].Items, three[i].Items)
		}
	}
}

func itemsEqualTopK(a, b interface{ Key() string }) bool { return a.Key() == b.Key() }
