package crosscheck

import (
	"testing"
)

// FuzzMine drives the whole differential and metamorphic harness from four
// fuzzed scalars: the case seed plus the shape and size selectors. Every
// database the fuzzer reaches stays within the possible-world oracle, so
// any counterexample it finds is a real miner bug, not a flaky estimate.
//
// Reproduce a failing input with
//
//	go test ./internal/crosscheck -run FuzzMine/<hash>
func FuzzMine(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed%4), uint8(8), uint8(6))
	}
	f.Add(int64(1012), uint8(0), uint8(8), uint8(6))   // crossed-sandwich regression family
	f.Add(int64(424242), uint8(3), uint8(1), uint8(1)) // smallest possible database
	f.Fuzz(func(t *testing.T, seed int64, shapeSel, transSel, itemsSel uint8) {
		c := Case{
			Shape:    Shapes[int(shapeSel)%len(Shapes)],
			Seed:     seed,
			MaxTrans: 1 + int(transSel)%DiffMaxTrans,
			MaxItems: 1 + int(itemsSel)%DiffMaxItems,
		}
		if err := RunDifferential(c); err != nil {
			t.Fatal(err)
		}
		// The same small case must also satisfy every oracle-free invariant.
		db, opts := c.Build()
		if err := Invariants(db, opts); err != nil {
			t.Fatalf("crosscheck: %v: %v", c, err)
		}
	})
}
