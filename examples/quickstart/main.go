// Quickstart walks through the paper's running example end to end: build
// the Table II uncertain database, inspect frequent probabilities, and mine
// the probabilistic frequent closed itemsets, verifying the Example 1.2
// numbers against exhaustive possible-world enumeration.
package main

import (
	"fmt"
	"log"

	pfcim "github.com/probdata/pfcim"
)

func main() {
	// Table II: four sensor readings, each existing with some probability.
	// Items: a=0 (location), b=1 (weather), c=2 (time window), d=3 (speed).
	db := pfcim.MustNewDatabase([]pfcim.Transaction{
		{Items: pfcim.NewItemset(0, 1, 2, 3), Prob: 0.9}, // T1
		{Items: pfcim.NewItemset(0, 1, 2), Prob: 0.6},    // T2
		{Items: pfcim.NewItemset(0, 1, 2), Prob: 0.7},    // T3
		{Items: pfcim.NewItemset(0, 1, 2, 3), Prob: 0.9}, // T4
	})
	const minSup = 2
	const pfct = 0.8

	// All 15 probabilistic frequent itemsets share two frequent
	// probabilities and cannot be told apart; that's the motivation for
	// closed mining.
	pfis, err := pfcim.MineFrequent(db, pfcim.FrequentOptions{MinSup: minSup, PFT: pfct})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probabilistic frequent itemsets (pft=%.1f): %d\n", pfct, len(pfis))
	for _, p := range pfis {
		fmt.Printf("  %-10s Pr_F=%.4f\n", p.Items, p.FreqProb)
	}

	// The closed mining result compresses them to two itemsets.
	res, err := pfcim.Mine(db, pfcim.Options{MinSup: minSup, PFCT: pfct, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprobabilistic frequent closed itemsets (pfct=%.1f): %d\n", pfct, len(res.Itemsets))
	for _, r := range res.Itemsets {
		// Cross-check against the exact possible-world computation.
		exact, err := pfcim.FreqClosedProb(db, r.Items, minSup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s Pr_FC=%.4f (exact %.4f)  Pr_F=%.4f\n", r.Items, r.Prob, exact, r.FreqProb)
	}
}
