package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/probdata/pfcim/internal/exact"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
	"github.com/probdata/pfcim/internal/world"
)

func randomDB(rng *rand.Rand, maxN, maxItems int) *uncertain.DB {
	n := rng.Intn(maxN) + 1
	trans := make([]uncertain.Transaction, 0, n)
	for i := 0; i < n; i++ {
		var items []itemset.Item
		for j := 0; j < maxItems; j++ {
			if rng.Float64() < 0.55 {
				items = append(items, itemset.Item(j))
			}
		}
		if len(items) == 0 {
			items = []itemset.Item{itemset.Item(rng.Intn(maxItems))}
		}
		trans = append(trans, uncertain.Transaction{
			Items: itemset.New(items...),
			Prob:  rng.Float64()*0.98 + 0.01,
		})
	}
	return uncertain.MustNewDB(trans)
}

// sameItemsets compares result itemsets against oracle results.
func sameItemsets(got []ResultItem, want []world.Result) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if !itemset.Equal(got[i].Items, want[i].Items) {
			return false
		}
	}
	return true
}

// TestRandomOracle cross-checks the full miner against exhaustive
// enumeration on many random small databases, for every variant.
func TestRandomOracle(t *testing.T) {
	variants := []struct {
		name   string
		modify func(*Options)
	}{
		{"MPFCI", func(*Options) {}},
		{"NoCH", func(o *Options) { o.DisableCH = true }},
		{"NoSuper", func(o *Options) { o.DisableSuperset = true }},
		{"NoSub", func(o *Options) { o.DisableSubset = true }},
		{"NoBound", func(o *Options) { o.DisableBounds = true }},
		{"BFS", func(o *Options) { o.Search = BFS }},
		{"AllOff", func(o *Options) {
			o.DisableCH = true
			o.DisableSuperset = true
			o.DisableSubset = true
			o.DisableBounds = true
		}},
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		db := randomDB(rng, 8, 5)
		minSup := rng.Intn(3) + 1
		pfct := []float64{0.3, 0.5, 0.8}[rng.Intn(3)]
		want, err := world.MineExact(db, minSup, pfct)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range variants {
			opts := Options{MinSup: minSup, PFCT: pfct, Seed: int64(trial)}
			v.modify(&opts)
			got, err := Mine(db, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !sameItemsets(got.Itemsets, want) {
				t.Fatalf("trial %d variant %s (ms=%d pfct=%v): got %v, oracle %v",
					trial, v.name, minSup, pfct, got.Itemsets, want)
			}
			for i, r := range got.Itemsets {
				if r.Method == MethodBoundAccepted {
					// Bound-accepted results report the bound midpoint and
					// guarantee only the interval.
					if want[i].Prob < r.Lower-1e-6 || want[i].Prob > r.Upper+1e-6 {
						t.Fatalf("trial %d variant %s: %v oracle prob %v outside bounds [%v,%v]",
							trial, v.name, r.Items, want[i].Prob, r.Lower, r.Upper)
					}
					continue
				}
				if math.Abs(r.Prob-want[i].Prob) > 0.03 {
					t.Fatalf("trial %d variant %s: %v prob %v, oracle %v",
						trial, v.name, r.Items, r.Prob, want[i].Prob)
				}
			}
		}
	}
}

// TestRandomOracleSamplingOnly forces the Monte-Carlo checking path
// (no exact unions, no bound short-circuits) and verifies the result set
// is still correct within the sampler's guarantees on thresholds that are
// not razor-thin.
func TestRandomOracleSamplingOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	mismatches := 0
	trials := 25
	for trial := 0; trial < trials; trial++ {
		db := randomDB(rng, 8, 5)
		minSup := rng.Intn(2) + 1
		const pfct = 0.5
		want, err := world.MineExact(db, minSup, pfct)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			MinSup: minSup, PFCT: pfct, Seed: int64(trial),
			DisableBounds: true, MaxExactClauses: -1,
			Epsilon: 0.05, Delta: 0.05,
		}
		got, err := Mine(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !sameItemsets(got.Itemsets, want) {
			// A sampled decision may flip for itemsets whose Pr_FC sits
			// within ε of the threshold; count rather than fail outright,
			// but any itemset decided wrongly *far* from the threshold is a
			// hard failure.
			mismatches++
			wantItems := make([]ResultItem, len(want))
			for i, w := range want {
				wantItems[i] = ResultItem{Items: w.Items}
			}
			for _, x := range symmetricDiff(got.Itemsets, wantItems) {
				p, _ := world.FreqClosedProb(db, x, minSup)
				if math.Abs(p-pfct) > 0.1 {
					t.Fatalf("trial %d: sampled decision on %v (exact Pr_FC=%v) far from threshold %v",
						trial, x, p, pfct)
				}
			}
		}
	}
	if mismatches > trials/3 {
		t.Errorf("sampling-only mining disagreed with the oracle on %d/%d trials", mismatches, trials)
	}
}

// TestBoundsSandwichExact verifies that for accepted results, the reported
// [Lower, Upper] interval contains the exact frequent closed probability.
func TestBoundsSandwichExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, 8, 5)
		minSup := rng.Intn(2) + 1
		got, err := Mine(db, Options{MinSup: minSup, PFCT: 0.4, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got.Itemsets {
			exact, err := world.FreqClosedProb(db, r.Items, minSup)
			if err != nil {
				t.Fatal(err)
			}
			if exact < r.Lower-1e-6 || exact > r.Upper+1e-6 {
				t.Errorf("trial %d: %v exact Pr_FC %v outside [%v, %v] (method %v)",
					trial, r.Items, exact, r.Lower, r.Upper, r.Method)
			}
			if r.Prob > r.FreqProb+1e-9 {
				t.Errorf("%v: Pr_FC %v exceeds Pr_F %v", r.Items, r.Prob, r.FreqProb)
			}
		}
	}
}

// TestPrunedImpliesZero: every itemset cut by superset/subset pruning must
// have zero frequent closed probability. We verify indirectly — itemsets
// NOT in the result set at pfct→0⁺ must have Pr_FC ≈ 0 when they are
// probabilistic frequent.
func TestPrunedImpliesZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		db := randomDB(rng, 7, 4)
		const minSup = 1
		const pfct = 0.01
		got, err := Mine(db, Options{MinSup: minSup, PFCT: pfct, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		inResult := map[string]bool{}
		for _, r := range got.Itemsets {
			inResult[r.Items.Key()] = true
		}
		items := db.Items()
		for mask := 1; mask < 1<<uint(len(items)); mask++ {
			var x itemset.Itemset
			for i, it := range items {
				if mask&(1<<uint(i)) != 0 {
					x = append(x, it)
				}
			}
			if inResult[x.Key()] {
				continue
			}
			exact, err := world.FreqClosedProb(db, x, minSup)
			if err != nil {
				t.Fatal(err)
			}
			if exact > pfct+0.05 {
				t.Fatalf("trial %d: %v with exact Pr_FC %v missing from result", trial, x, exact)
			}
			x = nil
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	db := uncertain.PaperExample()
	bad := []Options{
		{MinSup: 0, PFCT: 0.5},
		{MinSup: 2, PFCT: 0},
		{MinSup: 2, PFCT: 1},
		{MinSup: 2, PFCT: -0.5},
		{MinSup: 2, PFCT: 0.5, Epsilon: 2},
		{MinSup: 2, PFCT: 0.5, Epsilon: -0.1},
		{MinSup: 2, PFCT: 0.5, Delta: -1},
		{MinSup: 2, PFCT: 0.5, Delta: 1.5},
		{MinSup: -1, PFCT: 0.5},
	}
	for i, o := range bad {
		if _, err := Mine(db, o); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
}

func TestAbsoluteMinSup(t *testing.T) {
	cases := []struct {
		n    int
		rel  float64
		want int
	}{
		{100, 0.4, 40},
		{101, 0.4, 40},
		{10, 0.05, 1},
		{4, 0.5, 2},
		{1000, 0.0001, 1},
	}
	for _, tc := range cases {
		if got := AbsoluteMinSup(tc.n, tc.rel); got != tc.want {
			t.Errorf("AbsoluteMinSup(%d, %v) = %d, want %d", tc.n, tc.rel, got, tc.want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := randomDB(rng, 12, 6)
	opts := Options{MinSup: 2, PFCT: 0.5, Seed: 77, MaxExactClauses: -1, DisableBounds: true}
	a, err := Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Itemsets) != len(b.Itemsets) {
		t.Fatalf("same seed, different result sizes: %d vs %d", len(a.Itemsets), len(b.Itemsets))
	}
	for i := range a.Itemsets {
		if a.Itemsets[i].Prob != b.Itemsets[i].Prob {
			t.Errorf("same seed, different estimates at %d: %v vs %v", i, a.Itemsets[i].Prob, b.Itemsets[i].Prob)
		}
	}
}

func TestNaiveAgreesWithMine(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		db := randomDB(rng, 8, 5)
		opts := Options{MinSup: 2, PFCT: 0.7, Seed: int64(trial)}
		a, err := Mine(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NaiveMine(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Itemsets) != len(b.Itemsets) {
			// The naive path samples; tolerate only threshold-adjacent
			// disagreements.
			for _, r := range symmetricDiff(a.Itemsets, b.Itemsets) {
				exact, _ := world.FreqClosedProb(db, r, 2)
				if math.Abs(exact-0.7) > 0.1 {
					t.Fatalf("trial %d: naive and MPFCI disagree on %v (exact %v)", trial, r, exact)
				}
			}
			continue
		}
		for i := range a.Itemsets {
			if !itemset.Equal(a.Itemsets[i].Items, b.Itemsets[i].Items) {
				t.Fatalf("trial %d: result %d differs: %v vs %v", trial, i, a.Itemsets[i].Items, b.Itemsets[i].Items)
			}
		}
	}
}

func symmetricDiff(a, b []ResultItem) []itemset.Itemset {
	am := map[string]itemset.Itemset{}
	bm := map[string]itemset.Itemset{}
	for _, r := range a {
		am[r.Items.Key()] = r.Items
	}
	for _, r := range b {
		bm[r.Items.Key()] = r.Items
	}
	var out []itemset.Itemset
	for k, v := range am {
		if _, ok := bm[k]; !ok {
			out = append(out, v)
		}
	}
	for k, v := range bm {
		if _, ok := am[k]; !ok {
			out = append(out, v)
		}
	}
	return out
}

// TestVariantEquivalenceProperty: all pruning variants and both frameworks
// return the same itemsets on random inputs (pruning affects speed, never
// the result).
func TestVariantEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 9, 5)
		minSup := rng.Intn(3) + 1
		base := Options{MinSup: minSup, PFCT: 0.6, Seed: seed}
		ref, err := Mine(db, base)
		if err != nil {
			return false
		}
		for _, mod := range []func(*Options){
			func(o *Options) { o.DisableCH = true },
			func(o *Options) { o.DisableSuperset = true },
			func(o *Options) { o.DisableSubset = true },
			func(o *Options) { o.Search = BFS },
		} {
			o := base
			mod(&o)
			got, err := Mine(db, o)
			if err != nil || len(got.Itemsets) != len(ref.Itemsets) {
				return false
			}
			for i := range got.Itemsets {
				if !itemset.Equal(got.Itemsets[i].Items, ref.Itemsets[i].Items) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	db := uncertain.PaperExample()
	res, err := Mine(db, Options{MinSup: 2, PFCT: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.CandidateItems != 4 {
		t.Errorf("candidates = %d, want 4", s.CandidateItems)
	}
	if s.NodesVisited == 0 {
		t.Error("no nodes visited")
	}
	if s.Evaluated == 0 {
		t.Error("nothing evaluated")
	}
	// Subset pruning fires on this example ({a}.count == {ab}.count).
	if s.SubsetPruned == 0 {
		t.Error("subset pruning should fire on the paper example")
	}
}

func TestResultSortedLexicographically(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db := randomDB(rng, 10, 6)
	res, err := Mine(db, Options{MinSup: 1, PFCT: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Itemsets); i++ {
		if itemset.Compare(res.Itemsets[i-1].Items, res.Itemsets[i].Items) >= 0 {
			t.Fatalf("results not sorted at %d: %v then %v", i, res.Itemsets[i-1].Items, res.Itemsets[i].Items)
		}
	}
}

func TestSearchString(t *testing.T) {
	if DFS.String() != "DFS" || BFS.String() != "BFS" {
		t.Error("Search.String wrong")
	}
	for m, want := range map[Method]string{
		MethodExact: "exact", MethodSampled: "sampled",
		MethodBoundAccepted: "bound-accepted", MethodNoClauses: "no-clauses",
		MethodBoundRejected: "bound-rejected",
		Method(99):          "unknown",
	} {
		if m.String() != want {
			t.Errorf("Method(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestMineContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	db := randomDB(rng, 16, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineContext(ctx, db, Options{MinSup: 1, PFCT: 0.1, Seed: 1}); err == nil {
		t.Error("cancelled context should abort DFS mining")
	}
	bfsOpts := Options{MinSup: 1, PFCT: 0.1, Seed: 1, Search: BFS}
	if _, err := MineContext(ctx, db, bfsOpts); err == nil {
		t.Error("cancelled context should abort BFS mining")
	}
	parOpts := Options{MinSup: 1, PFCT: 0.1, Seed: 1, Parallelism: 3}
	if _, err := MineContext(ctx, db, parOpts); err == nil {
		t.Error("cancelled context should abort parallel mining")
	}
	// A live context behaves exactly like Mine.
	got, err := MineContext(context.Background(), db, Options{MinSup: 2, PFCT: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Mine(db, Options{MinSup: 2, PFCT: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Itemsets) != len(want.Itemsets) {
		t.Errorf("context run found %d itemsets, plain run %d", len(got.Itemsets), len(want.Itemsets))
	}
}

// TestCertainDataReducesToExactClosed: with every tuple probability 1 the
// possible-world distribution is a point mass, so MPFCI at any pfct < 1
// must return exactly the classical frequent closed itemsets, each with
// Pr_FC = 1.
func TestCertainDataReducesToExactClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(20) + 2
		var data []itemset.Itemset
		trans := make([]uncertain.Transaction, 0, n)
		for i := 0; i < n; i++ {
			var items []itemset.Item
			for j := 0; j < 8; j++ {
				if rng.Float64() < 0.5 {
					items = append(items, itemset.Item(j))
				}
			}
			if len(items) == 0 {
				items = []itemset.Item{itemset.Item(rng.Intn(8))}
			}
			is := itemset.New(items...)
			data = append(data, is)
			trans = append(trans, uncertain.Transaction{Items: is, Prob: 1})
		}
		db := uncertain.MustNewDB(trans)
		minSup := rng.Intn(n/2) + 1

		got, err := Mine(db, Options{MinSup: minSup, PFCT: 0.9, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := exact.MineClosed(exact.Dataset(data), minSup)
		if len(got.Itemsets) != len(want) {
			t.Fatalf("trial %d (n=%d ms=%d): MPFCI found %d itemsets, exact closed miner %d\nmpfci=%v\nexact=%v",
				trial, n, minSup, len(got.Itemsets), len(want), got.Itemsets, want)
		}
		for i := range want {
			if !itemset.Equal(got.Itemsets[i].Items, want[i].Items) {
				t.Fatalf("trial %d: itemset %d: %v vs %v", trial, i, got.Itemsets[i].Items, want[i].Items)
			}
			if math.Abs(got.Itemsets[i].Prob-1) > 1e-9 {
				t.Errorf("trial %d: %v has Pr_FC %v on certain data, want 1",
					trial, got.Itemsets[i].Items, got.Itemsets[i].Prob)
			}
		}
	}
}

// TestMidScaleAgainstWorldSampler cross-checks the miner on databases too
// large for exhaustive world enumeration: every mined probability must
// agree with the independent whole-world Monte-Carlo estimator, which
// shares no code with the evaluation pipeline (no clause systems, no
// bounds, no Karp-Luby).
func TestMidScaleAgainstWorldSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 5; trial++ {
		db := randomDB(rng, 40, 7)
		if db.N() < 10 {
			continue
		}
		minSup := db.N() / 4
		if minSup < 1 {
			minSup = 1
		}
		res, err := Mine(db, Options{MinSup: minSup, PFCT: 0.3, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		ws := NewWorldSampler(db, int64(trial)+500)
		for _, r := range res.Itemsets {
			est, err := ws.FreqClosedProb(r.Items, minSup, 40000)
			if err != nil {
				t.Fatal(err)
			}
			// Bound-accepted results guarantee only their interval.
			if est >= r.Lower-0.02 && est <= r.Upper+0.02 {
				continue
			}
			if math.Abs(est-r.Prob) > 0.03 {
				t.Errorf("trial %d: %v mined Pr_FC=%v [%v,%v], world-sampled %v",
					trial, r.Items, r.Prob, r.Lower, r.Upper, est)
			}
		}
	}
}
