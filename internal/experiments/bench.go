package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/gen"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/stream"
	"github.com/probdata/pfcim/internal/sweep"
	"github.com/probdata/pfcim/internal/uncertain"
)

// BenchPoint is one benchmark measurement: the workload identity, the
// testing.Benchmark timings, and the mining statistics of a single
// representative run (the statistics are deterministic per configuration,
// so one run characterizes all iterations).
type BenchPoint struct {
	Name        string     `json:"name"`
	Dataset     string     `json:"dataset"`
	RelMinSup   float64    `json:"rel_min_sup"`
	PFCT        float64    `json:"pfct"`
	Parallelism int        `json:"parallelism"`
	Shards      int        `json:"shards,omitempty"`
	SplitDepth  int        `json:"split_depth,omitempty"`
	NsPerOp     int64      `json:"ns_per_op"`
	AllocsPerOp int64      `json:"allocs_per_op"`
	BytesPerOp  int64      `json:"bytes_per_op"`
	Itemsets    int        `json:"itemsets"`
	Stats       core.Stats `json:"stats"`

	// Sweep-benchmark fields: the full-grid measurements comparing the
	// sweep engine against independent per-point mining.
	Points            int     `json:"points,omitempty"`
	FullEnumerations  int     `json:"full_enumerations,omitempty"`
	SpeedupVsPerPoint float64 `json:"speedup_vs_perpoint,omitempty"`

	// Stream-benchmark fields: the sliding-window measurements comparing
	// incremental delta mining against a from-scratch re-mine per round.
	// Stats holds per-round sums for these points; TailEvalRatio is
	// re-mine tails ÷ incremental tails (set on the incremental point).
	Rounds        int     `json:"rounds,omitempty"`
	TailEvalRatio float64 `json:"tail_eval_ratio,omitempty"`
}

// benchConfigs are the Fig. 5 / Fig. 7 operating points the bench runner
// measures: the Fig. 5 running-time comparison at its hardest default point
// on both datasets (serial and at GOMAXPROCS workers), and the Fig. 7 pfct
// sweep endpoints on Mushroom, where bound pruning is weakest (0.5) and
// strongest (0.9).
func (s *Suite) benchConfigs() []BenchPoint {
	// The parallel point must actually exercise the scheduler: on a
	// single-CPU box GOMAXPROCS is 1 and Parallelism 1 degenerates to the
	// serial path (no tasks spawned), so clamp to at least two workers —
	// results are byte-identical at any parallelism, only scheduling
	// differs.
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		procs = 2
	}
	cfgs := []BenchPoint{
		{Name: "fig5-mushroom", Dataset: s.Mushroom.Name, RelMinSup: 0.2, PFCT: s.Cfg.PFCT, Parallelism: 1},
		{Name: "fig5-mushroom-parallel", Dataset: s.Mushroom.Name, RelMinSup: 0.2, PFCT: s.Cfg.PFCT, Parallelism: procs},
		{Name: "fig5-quest", Dataset: s.Quest.Name, RelMinSup: 0.4, PFCT: s.Cfg.PFCT, Parallelism: 1},
		// The Fig. 5 Mushroom point mined with 4-way sharded tail/clause
		// arithmetic (inline fold — byte-identical to the distributed
		// evaluator, DESIGN §14), tracking the sharding overhead on one box.
		{Name: "dist-mushroom", Dataset: s.Mushroom.Name, RelMinSup: 0.2, PFCT: s.Cfg.PFCT, Parallelism: 1, Shards: 4},
		{Name: "fig7-mushroom-pfct0.5", Dataset: s.Mushroom.Name, RelMinSup: 0.4, PFCT: 0.5, Parallelism: 1},
		{Name: "fig7-mushroom-pfct0.9", Dataset: s.Mushroom.Name, RelMinSup: 0.4, PFCT: 0.9, Parallelism: 1},
	}
	return cfgs
}

// RunBench measures every benchmark configuration with testing.Benchmark
// and writes the points as an indented JSON array to w (the BENCH_*.json
// format the repository tracks across optimization work).
func (s *Suite) RunBench(w io.Writer) error {
	var points []BenchPoint
	for _, cfg := range s.benchConfigs() {
		ds := s.Mushroom
		if cfg.Dataset == s.Quest.Name {
			ds = s.Quest
		}
		opts := s.baseOptions(ds.DB, cfg.RelMinSup)
		opts.PFCT = cfg.PFCT
		opts.Parallelism = cfg.Parallelism
		opts.Shards = cfg.Shards

		res, err := core.Mine(ds.DB, opts)
		if err != nil {
			return fmt.Errorf("bench %s: %w", cfg.Name, err)
		}
		cfg.Itemsets = len(res.Itemsets)
		cfg.Stats = res.Stats
		// Record the normalized execution settings the run actually used,
		// not the requested ones (SplitDepth in particular is defaulted
		// inside Mine).
		cfg.Parallelism = res.Options.Parallelism
		cfg.SplitDepth = res.Options.SplitDepth

		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Mine(ds.DB, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		cfg.NsPerOp = br.NsPerOp()
		cfg.AllocsPerOp = br.AllocsPerOp()
		cfg.BytesPerOp = br.AllocedBytesPerOp()
		points = append(points, cfg)
		fmt.Fprintf(s.Cfg.Out, "bench %-24s %12d ns/op %8d allocs/op  itemsets=%d tails=%d memo-hits=%d\n",
			cfg.Name, cfg.NsPerOp, cfg.AllocsPerOp, cfg.Itemsets, cfg.Stats.TailEvaluations, cfg.Stats.TailMemoHits)
	}
	sweepPoints, err := s.benchFig7Sweep()
	if err != nil {
		return err
	}
	points = append(points, sweepPoints...)
	streamPoints, err := s.benchIncremental()
	if err != nil {
		return err
	}
	points = append(points, streamPoints...)
	if s.Cfg.BenchLarge {
		large, err := s.benchLargeQuest()
		if err != nil {
			return err
		}
		points = append(points, large)
	}
	points = append(points, s.benchKernels()...)

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(points)
}

// benchFig7Sweep measures the full Fig. 7 pfct grid on Mushroom two ways:
// once through the sweep engine (one enumeration at pfct 0.5 plus four
// Evaluator-derived points) and once as five independent core.Mine runs —
// the shared-computation speedup the BENCH_*.json series tracks.
func (s *Suite) benchFig7Sweep() ([]BenchPoint, error) {
	grid := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	ds := s.Mushroom
	base := s.baseOptions(ds.DB, ds.DefaultMinSup)
	pts := make([]sweep.Point, len(grid))
	for i, p := range grid {
		pts[i] = sweep.Point{MinSup: base.MinSup, PFCT: p, Epsilon: base.Epsilon, Delta: base.Delta}
	}
	ctx := context.Background()

	res, err := sweep.Mine(ctx, ds.DB, pts, base)
	if err != nil {
		return nil, fmt.Errorf("bench fig7-sweep: %w", err)
	}
	nItems := 0
	for _, pr := range res.Points {
		nItems += len(pr.Itemsets)
	}

	perPoint := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range pts {
				if _, err := core.Mine(ds.DB, p.Apply(base)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	engine := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sweep.Mine(ctx, ds.DB, pts, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	speedup := float64(perPoint.NsPerOp()) / float64(engine.NsPerOp())

	out := []BenchPoint{
		{
			Name: "fig7-sweep-perpoint", Dataset: ds.Name,
			RelMinSup: ds.DefaultMinSup, PFCT: grid[0], Parallelism: 1,
			NsPerOp: perPoint.NsPerOp(), AllocsPerOp: perPoint.AllocsPerOp(),
			BytesPerOp: perPoint.AllocedBytesPerOp(),
			Itemsets:   nItems, Points: len(grid), FullEnumerations: len(grid),
		},
		{
			Name: "fig7-sweep-engine", Dataset: ds.Name,
			RelMinSup: ds.DefaultMinSup, PFCT: grid[0], Parallelism: 1,
			NsPerOp: engine.NsPerOp(), AllocsPerOp: engine.AllocsPerOp(),
			BytesPerOp: engine.AllocedBytesPerOp(),
			Itemsets:   nItems, Points: len(grid),
			FullEnumerations:  res.Stats.FullEnumerations,
			SpeedupVsPerPoint: speedup,
		},
	}
	for _, p := range out {
		fmt.Fprintf(s.Cfg.Out, "bench %-24s %12d ns/op %8d allocs/op  points=%d enumerations=%d\n",
			p.Name, p.NsPerOp, p.AllocsPerOp, p.Points, p.FullEnumerations)
	}
	fmt.Fprintf(s.Cfg.Out, "fig7 sweep-engine speedup over per-point mining: %.2fx\n", speedup)
	return out, nil
}

// benchIncremental drives the continuous-monitoring deployment over a
// sliding Mushroom window and mines every reporting round two ways:
// incrementally through the stream delta engine, and from scratch on each
// snapshot. The window holds half the transactions; reports tick faster
// than data arrives (a seeded schedule pushes 0, 1, or 2 transactions per
// tick, 60% quiet — the dashboard-polling regime pfcimd's @latest jobs
// serve), and the re-miner pays a full enumeration on every tick because it
// has no change knowledge, while the delta engine splices quiet rounds
// entirely from the reuse cache and re-evaluates only touched subtrees on
// changed ones. Rounds are byte-identical per DESIGN §15 (the crosscheck
// StreamEquivalence invariant pins it); the BENCH series tracks the work
// avoided — total Poisson-binomial tail evaluations and wall-clock across
// the whole slide, with the re-mine ÷ incremental tail ratio on the
// incremental point.
func (s *Suite) benchIncremental() ([]BenchPoint, error) {
	const relMinSup = 0.3
	ds := s.Mushroom
	trans := ds.DB.Transactions()
	window := len(trans) / 2
	if window < 2 {
		window = 2
	}
	opts := s.baseOptions(ds.DB, relMinSup)
	opts.MinSup = core.AbsoluteMinSup(window, relMinSup)

	// The arrival schedule: pushes per reporting tick after the window
	// fills, seeded so both variants replay the identical feed.
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 7))
	bursts := []int{0, 0, 0, 1, 2}
	var schedule []int
	for left := len(trans) - window; left > 0; {
		k := bursts[rng.Intn(len(bursts))]
		if k > left {
			k = left
		}
		schedule = append(schedule, k)
		left -= k
	}

	type slideStats struct {
		rounds   int
		itemsets int // last round's result size
		stats    core.Stats
	}
	sum := func(acc *core.Stats, st core.Stats) {
		acc.NodesVisited += st.NodesVisited
		acc.TailEvaluations += st.TailEvaluations
		acc.TailMemoHits += st.TailMemoHits
		acc.Evaluated += st.Evaluated
		acc.SubtreesReused += st.SubtreesReused
		acc.SplicedResults += st.SplicedResults
	}

	// slide replays the schedule: fill the window, then one mine per tick.
	slide := func(push func(uncertain.Transaction) error, mine func() (*core.Result, error)) (slideStats, error) {
		var out slideStats
		next := 0
		for ; next < window; next++ {
			if err := push(trans[next]); err != nil {
				return out, err
			}
		}
		for _, k := range schedule {
			for ; k > 0; k-- {
				if err := push(trans[next]); err != nil {
					return out, err
				}
				next++
			}
			res, err := mine()
			if err != nil {
				return out, err
			}
			out.rounds++
			out.itemsets = len(res.Itemsets)
			sum(&out.stats, res.Stats)
		}
		return out, nil
	}
	incremental := func() (slideStats, error) {
		w, err := stream.NewWindow(window)
		if err != nil {
			return slideStats{}, err
		}
		m, err := stream.NewMiner(w, opts)
		if err != nil {
			return slideStats{}, err
		}
		return slide(m.Push, func() (*core.Result, error) {
			res, _, err := m.MineContext(context.Background())
			return res, err
		})
	}
	scratch := func() (slideStats, error) {
		w, err := stream.NewWindow(window)
		if err != nil {
			return slideStats{}, err
		}
		return slide(
			func(t uncertain.Transaction) error { _, _, err := w.Push(t); return err },
			func() (*core.Result, error) {
				snap, err := w.Snapshot()
				if err != nil {
					return nil, err
				}
				return core.Mine(snap, opts)
			})
	}

	inc, err := incremental()
	if err != nil {
		return nil, fmt.Errorf("bench stream-incremental: %w", err)
	}
	rem, err := scratch()
	if err != nil {
		return nil, fmt.Errorf("bench stream-remine: %w", err)
	}
	if inc.itemsets != rem.itemsets || inc.rounds != rem.rounds {
		return nil, fmt.Errorf("bench stream: incremental and re-mine slides disagree (%d/%d itemsets, %d/%d rounds)",
			inc.itemsets, rem.itemsets, inc.rounds, rem.rounds)
	}
	ratio := float64(rem.stats.TailEvaluations) / float64(inc.stats.TailEvaluations)

	bench := func(f func() (slideStats, error)) (testing.BenchmarkResult, error) {
		var ferr error
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f(); err != nil {
					ferr = err
					b.Fatal(err)
				}
			}
		})
		return br, ferr
	}
	brInc, err := bench(incremental)
	if err != nil {
		return nil, fmt.Errorf("bench stream-incremental: %w", err)
	}
	brRem, err := bench(scratch)
	if err != nil {
		return nil, fmt.Errorf("bench stream-remine: %w", err)
	}

	mk := func(name string, br testing.BenchmarkResult, st slideStats) BenchPoint {
		return BenchPoint{
			Name: name, Dataset: ds.Name,
			RelMinSup: relMinSup, PFCT: opts.PFCT, Parallelism: 1,
			NsPerOp: br.NsPerOp(), AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp: br.AllocedBytesPerOp(),
			Itemsets:   st.itemsets, Stats: st.stats, Rounds: st.rounds,
		}
	}
	pInc := mk("stream-mushroom-incremental", brInc, inc)
	pInc.TailEvalRatio = ratio
	pRem := mk("stream-mushroom-remine", brRem, rem)
	out := []BenchPoint{pRem, pInc}
	for _, p := range out {
		fmt.Fprintf(s.Cfg.Out, "bench %-24s %12d ns/op %8d allocs/op  rounds=%d tails=%d reused=%d\n",
			p.Name, p.NsPerOp, p.AllocsPerOp, p.Rounds, p.Stats.TailEvaluations, p.Stats.SubtreesReused)
	}
	fmt.Fprintf(s.Cfg.Out, "stream incremental tail-evaluation saving over re-mine: %.2fx across %d rounds\n",
		ratio, inc.rounds)
	return out, nil
}

// benchLargeQuest generates the million-transaction sparse Quest dataset
// (T10I4D1MP2K under the paper's mean-.8/var-.1 Gaussian regime) and
// measures one full mining run at relative min_sup 0.01. The workload is
// the antithesis of Mushroom: per-item tidsets are ~0.5% dense (the auto
// representation compacts them), and frequent-item support distributions
// are long enough that the divide-and-conquer tail kernel engages.
func (s *Suite) benchLargeQuest() (BenchPoint, error) {
	data := gen.Quest(gen.QuestT10I4D1MP2K(1, s.Cfg.Seed+5))
	db := gen.AssignGaussian(data, 0.8, 0.1, s.Cfg.Seed+6)
	cfg := BenchPoint{
		Name: "quest-1m", Dataset: "T10I4D1MP2K",
		RelMinSup: 0.01, PFCT: s.Cfg.PFCT, Parallelism: 1,
	}
	opts := s.baseOptions(db, cfg.RelMinSup)
	opts.PFCT = cfg.PFCT
	opts.Parallelism = cfg.Parallelism

	res, err := core.Mine(db, opts)
	if err != nil {
		return BenchPoint{}, fmt.Errorf("bench %s: %w", cfg.Name, err)
	}
	cfg.Itemsets = len(res.Itemsets)
	cfg.Stats = res.Stats
	cfg.Parallelism = res.Options.Parallelism
	cfg.SplitDepth = res.Options.SplitDepth

	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Mine(db, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	cfg.NsPerOp = br.NsPerOp()
	cfg.AllocsPerOp = br.AllocsPerOp()
	cfg.BytesPerOp = br.AllocedBytesPerOp()
	fmt.Fprintf(s.Cfg.Out, "bench %-24s %12d ns/op %8d allocs/op  itemsets=%d tails=%d memo-hits=%d\n",
		cfg.Name, cfg.NsPerOp, cfg.AllocsPerOp, cfg.Itemsets, cfg.Stats.TailEvaluations, cfg.Stats.TailMemoHits)
	return cfg, nil
}

// benchKernels measures the overhauled kernels in isolation, outside any
// mining run: the dynamic-programming vs divide-and-conquer
// Poisson-binomial tail on an 8192-probability vector, the batched
// 16-sibling column-sweep intersection vs sixteen independent AndInto
// calls, and AND+popcount over dense vs compressed representations of the
// same ~0.4%-dense 2²⁰-bit sets. Steady-state allocations should be zero
// for all six (the alloc-guard test asserts it for the library paths).
func (s *Suite) benchKernels() []BenchPoint {
	rng := rand.New(rand.NewSource(s.Cfg.Seed))
	const n = 8192
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = rng.Float64()
	}
	k := n / 2
	var sc poibin.Scratch
	sc.TailKernel(probs, k, poibin.KernelDP) // warm the scratch arena
	sc.TailKernel(probs, k, poibin.KernelConv)

	bench := func(f func()) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f()
			}
		})
	}
	mk := func(name string, r testing.BenchmarkResult) BenchPoint {
		return BenchPoint{
			Name: name, Dataset: "synthetic",
			NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		}
	}

	tailDP := bench(func() { sc.TailKernel(probs, k, poibin.KernelDP) })
	tailConv := bench(func() { sc.TailKernel(probs, k, poibin.KernelConv) })

	parent := bitset.New(n)
	srcs := make([]*bitset.Bitset, 16)
	dsts := make([]*bitset.Bitset, 16)
	counts := make([]int, 16)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			parent.Set(i)
		}
	}
	for j := range srcs {
		srcs[j] = bitset.New(n)
		dsts[j] = bitset.New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				srcs[j].Set(i)
			}
		}
	}
	batch := bench(func() { bitset.AndBatch(dsts, counts, parent, srcs) })
	serial := bench(func() {
		for j := range srcs {
			counts[j] = bitset.AndInto(dsts[j], parent, srcs[j])
		}
	})

	const big = 1 << 20
	mkset := func() *bitset.Bitset {
		b := bitset.New(big)
		for i := 0; i < big; i++ {
			if rng.Float64() < 0.004 {
				b.Set(i)
			}
		}
		return b
	}
	dx, dy := mkset(), mkset()
	sx, sy := dx.Compacted(), dy.Compacted()
	var sink int
	andDense := bench(func() { sink = bitset.AndCount(dx, dy) })
	andCompressed := bench(func() { sink = bitset.AndCount(sx, sy) })
	_ = sink

	out := []BenchPoint{
		mk("kernel-tail-dp", tailDP),
		mk("kernel-tail-conv", tailConv),
		mk("kernel-and-batch16", batch),
		mk("kernel-and-serial16", serial),
		mk("kernel-and-dense", andDense),
		mk("kernel-and-compressed", andCompressed),
	}
	for _, p := range out {
		fmt.Fprintf(s.Cfg.Out, "bench %-24s %12d ns/op %8d allocs/op\n", p.Name, p.NsPerOp, p.AllocsPerOp)
	}
	return out
}
