package poibin

import (
	"math"
	"math/rand"
	"testing"
)

// TestPMFTruncMatchesDP pins the shard-composability anchor: a single
// full-length truncated PMF's absorbing bin is bit-identical to the
// sequential DP tail, so one shard covering the whole database reproduces
// the unsharded computation exactly.
func TestPMFTruncMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s Scratch
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		for _, k := range []int{1, 2, n / 2, n, n + 3} {
			if k < 1 {
				k = 1
			}
			want := s.TailKernel(probs, k, KernelDP)
			v := s.PMFTrunc(probs, k)
			got := TailOfPMF(v, k)
			s.ReleasePMF(v)
			if got != want {
				t.Fatalf("n=%d k=%d: PMFTrunc tail %v != DP tail %v (diff %g)",
					n, k, got, want, got-want)
			}
		}
	}
}

// TestPMFTruncEdgeCases covers the degenerate inputs a shard worker can
// legally receive: empty probability slices (a shard with no matching
// transactions), k = 0 (everything absorbed), and certain/near-certain
// tuples.
func TestPMFTruncEdgeCases(t *testing.T) {
	var s Scratch

	v := s.PMFTrunc(nil, 5)
	if len(v) != 1 || v[0] != 1 {
		t.Fatalf("empty probs: PMF = %v, want [1]", v)
	}
	if got := TailOfPMF(v, 5); got != 0 {
		t.Fatalf("empty probs: Pr[S>=5] = %v, want 0", got)
	}
	s.ReleasePMF(v)

	v = s.PMFTrunc([]float64{0.3, 0.7}, 0)
	if len(v) != 1 || v[0] != 1 {
		t.Fatalf("k=0: PMF = %v, want absorbing [1]", v)
	}
	if got := TailOfPMF(v, 0); got != 1 {
		t.Fatalf("k=0: Pr[S>=0] = %v, want 1", got)
	}
	s.ReleasePMF(v)

	v = s.PMFTrunc([]float64{1, 1, 1}, 2)
	if got := TailOfPMF(v, 2); got != 1 {
		t.Fatalf("all-certain: Pr[S>=2] = %v, want 1", got)
	}
	s.ReleasePMF(v)
}

// TestConvolvePMFSplitFold checks that splitting a probability vector at an
// arbitrary boundary, building per-part truncated PMFs, and convolving them
// reproduces the full tail (within convolution-order tolerance), and that
// repeating the identical fold is bit-for-bit deterministic — the property
// that makes the sharded tail a canonical value.
func TestConvolvePMFSplitFold(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var s Scratch
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(80)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		k := 1 + rng.Intn(n)
		cut := rng.Intn(n + 1)

		fold := func() float64 {
			a := s.PMFTrunc(probs[:cut], k)
			b := s.PMFTrunc(probs[cut:], k)
			m := s.ConvolvePMF(a, b, k)
			got := TailOfPMF(m, k)
			s.ReleasePMF(a)
			s.ReleasePMF(b)
			s.ReleasePMF(m)
			return got
		}
		got := fold()
		want := s.TailKernel(probs, k, KernelDP)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("n=%d k=%d cut=%d: folded tail %v, DP %v", n, k, cut, got, want)
		}
		if again := fold(); again != got {
			t.Fatalf("n=%d k=%d cut=%d: fold not deterministic: %v then %v", n, k, cut, got, again)
		}
	}
}

// TestConvolvePMFIdentity: convolving with the empty-product PMF [1] must
// leave every coefficient bit-exact, so shards with no matching
// transactions are true no-ops in the fold.
func TestConvolvePMFIdentity(t *testing.T) {
	var s Scratch
	probs := []float64{0.2, 0.9, 0.5, 0.7}
	k := 3
	v := s.PMFTrunc(probs, k)
	one := s.PMFTrunc(nil, k)
	m := s.ConvolvePMF(v, one, k)
	if len(m) != len(v) {
		t.Fatalf("identity merge changed length: %d != %d", len(m), len(v))
	}
	for i := range v {
		if m[i] != v[i] {
			t.Fatalf("identity merge changed coefficient %d: %v != %v", i, m[i], v[i])
		}
	}
	s.ReleasePMF(v)
	s.ReleasePMF(one)
	s.ReleasePMF(m)
}
