package obs

import (
	"sort"
	"time"
)

// Remote span import (DESIGN.md §16): a shard worker runs its kernel calls
// under its own short-lived tracer and ships the recorded spans back in the
// RPC response; the coordinator folds them into the owning job's tracer,
// attributed to the worker by label and shifted onto the coordinator's
// clock. Import is additive observability only — it reads nothing the
// mining computation writes, so results stay byte-identical whether remote
// tracing is on or off.

// SpanWire is the wire form of one remote span. Timestamps are nanoseconds
// relative to the batch epoch (the worker's handler start), so the producer
// needs no synchronized clock — the importer maps them onto the local
// timeline with the offset it derives from the RPC round trip.
type SpanWire struct {
	StartNS int64 `json:"s"`
	DurNS   int64 `json:"d"`
	Phase   uint8 `json:"p"`
	Depth   int16 `json:"de,omitempty"`
}

// SpanBatch is one RPC's worth of remote spans plus the producer's busy
// time (the handler wall clock covering every span), which the importer
// uses to estimate the clock offset: with a round trip of rtt and a remote
// busy time of busy, the symmetric-network model places the remote epoch at
// send + (rtt − busy)/2 on the local timeline.
type SpanBatch struct {
	BusyNS int64      `json:"busy_ns"`
	Spans  []SpanWire `json:"spans,omitempty"`
}

// Empty reports whether the batch carries no spans.
func (b SpanBatch) Empty() bool { return len(b.Spans) == 0 }

// WireSpans drains the tracer's recorded spans into a batch, in ring order,
// with timestamps kept relative to the tracer's epoch. Intended for the
// producing side (one short-lived tracer per RPC); call after the observed
// work completed.
func (t *Tracer) WireSpans() SpanBatch {
	if t == nil {
		return SpanBatch{}
	}
	t.mu.Lock()
	recs := make([]*Recorder, len(t.recs))
	copy(recs, t.recs)
	t.mu.Unlock()
	var b SpanBatch
	for _, r := range recs {
		for _, sp := range r.ordered() {
			b.Spans = append(b.Spans, SpanWire{StartNS: sp.Start, DurNS: sp.Dur, Phase: uint8(sp.Phase), Depth: sp.Depth})
		}
	}
	b.BusyNS = int64(time.Since(t.epoch))
	return b
}

// ordered returns the ring's retained spans oldest-first.
func (r *Recorder) ordered() []Span {
	if len(r.spans) == cap(r.spans) && r.dropped > 0 {
		out := make([]Span, 0, len(r.spans))
		out = append(out, r.spans[r.next:]...)
		out = append(out, r.spans[:r.next]...)
		return out
	}
	return r.spans
}

// Now returns nanoseconds since the tracer's epoch; 0 on a nil tracer. The
// shard client reads it around each RPC attempt to place remote spans on
// the job timeline.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// ImportBatch merges a remote span batch into the tracer under the given
// worker label, shifting every span by offsetNS (the batch epoch expressed
// on this tracer's timeline). Safe for concurrent use — remote batches
// arrive from parallel RPC goroutines while local recorders are still
// writing — and bounded like local recorders: each label owns a ring of the
// tracer's capacity, overflowing into the dropped counter. Phase and depth
// aggregates stay exact regardless. Nil-safe.
func (t *Tracer) ImportBatch(label string, offsetNS int64, b SpanBatch) {
	if t == nil || b.Empty() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.remote[label]
	if r == nil {
		if t.remote == nil {
			t.remote = map[string]*Recorder{}
		}
		r = &Recorder{t: t, label: label}
		if t.ringCap > 0 {
			r.spans = make([]Span, 0, t.ringCap)
		}
		t.remote[label] = r
	}
	for _, sp := range b.Spans {
		p := Phase(sp.Phase)
		if p >= NumPhases {
			continue // future producer: don't let an unknown phase index out of range
		}
		r.ring(p, int(sp.Depth), offsetNS+sp.StartNS, sp.DurNS)
		r.phaseNS[p] += sp.DurNS
		r.phaseCount[p]++
	}
}

// remoteRecorders returns the imported recorders in stable label order.
// Caller holds t.mu.
func (t *Tracer) remoteRecorders() []*Recorder {
	if len(t.remote) == 0 {
		return nil
	}
	labels := make([]string, 0, len(t.remote))
	for l := range t.remote {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]*Recorder, len(labels))
	for i, l := range labels {
		out[i] = t.remote[l]
	}
	return out
}
