package crosscheck

import (
	"testing"

	"github.com/probdata/pfcim/internal/core"
)

// TestRegressionDenseSeed1012 pins the first bug this harness caught:
// intersecting the first-order union interval with the pairwise de Caen /
// Kwerel interval could produce an empty intersection a few ulps wide, and
// the bound-accepted ResultItem then reported Lower > Upper (the dense
// seed-1012 database surfaced {a c f g h} with Lower two ulps above Upper).
// reconcileBounds in internal/core now collapses a crossed intersection to
// its midpoint; this test mines the original database and asserts every
// sandwich is ordered, on both the direct path and the sweep Evaluator
// replay path (which shared the bug).
func TestRegressionDenseSeed1012(t *testing.T) {
	c := Case{Shape: ShapeDense, Seed: 1012, MaxTrans: InvariantMaxTrans, MaxItems: InvariantMaxItems}
	db, opts := c.Build()
	res, err := core.Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ri := range res.Itemsets {
		if ri.Lower > ri.Prob || ri.Prob > ri.Upper {
			t.Errorf("itemset %v (method=%v): crossed sandwich Lower=%b Prob=%b Upper=%b",
				ri.Items, ri.Method, ri.Lower, ri.Prob, ri.Upper)
		}
	}
	if err := RunInvariants(c); err != nil {
		t.Error(err)
	}
}
