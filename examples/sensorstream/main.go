// Sensorstream demonstrates the streaming side of the library: a rolling
// window over an uncertain sensor feed, with incrementally maintained
// probabilistic frequent items and periodic full closed-itemset mining of
// the window snapshot — the "continuous monitoring" deployment the paper's
// traffic scenario implies.
package main

import (
	"fmt"
	"log"
	"math/rand"

	pfcim "github.com/probdata/pfcim"
)

func main() {
	const windowSize = 400
	w, err := pfcim.NewStreamWindow(windowSize)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))

	// The feed drifts: the dominant event pattern changes every 600
	// readings, and sensor confidence varies per reading.
	patterns := [][]int{
		{0, 10, 20}, // regime A
		{1, 11, 20}, // regime B
		{2, 12, 21}, // regime C
	}
	minSup := windowSize / 5

	for step := 1; step <= 1800; step++ {
		regime := (step - 1) / 600
		items := append([]int(nil), patterns[regime]...)
		// Background noise items.
		if rng.Float64() < 0.5 {
			items = append(items, 30+rng.Intn(5))
		}
		// Occasional dropped pattern element.
		if rng.Float64() < 0.2 {
			items = items[1:]
		}
		conf := 0.6 + 0.35*rng.Float64()
		if _, _, err := w.Push(pfcim.Transaction{Items: pfcim.NewItemset(items...), Prob: conf}); err != nil {
			log.Fatal(err)
		}

		// Report at regime boundaries and at the end.
		if step%600 == 0 {
			fmt.Printf("after %d readings (window %d, min_sup %d):\n", step, w.Len(), minSup)
			freq, err := w.FrequentItems(pfcim.StreamOptions{MinSup: minSup, PFT: 0.9})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  probabilistic frequent items (pft=0.9):")
			for _, f := range freq {
				fmt.Printf(" %d(%.2f)", f.Item, f.FreqProb)
			}
			fmt.Println()

			// Full closed-itemset mining of the live window.
			db, err := w.Snapshot()
			if err != nil {
				log.Fatal(err)
			}
			res, err := pfcim.Mine(db, pfcim.Options{MinSup: minSup, PFCT: 0.8, Seed: int64(step)})
			if err != nil {
				log.Fatal(err)
			}
			longest := pfcim.ResultItem{}
			for _, r := range res.Itemsets {
				if r.Items.Len() > longest.Items.Len() {
					longest = r
				}
			}
			fmt.Printf("  %d probabilistic frequent closed itemsets; longest: %v (Pr_FC=%.2f)\n\n",
				len(res.Itemsets), longest.Items, longest.Prob)
		}
	}
	fmt.Println("note how each regime's pattern items dominate their window and fade after the drift.")
}
