package obs

import (
	"bufio"
	"fmt"
	"io"
)

// WriteChromeTrace renders every retained detailed span as Chrome
// trace-event JSON (the "JSON array format" of the trace-event spec):
// complete ("X") events with microsecond timestamps, one trace thread per
// mining worker (plus one per imported remote shard worker, named by its
// label via thread_name metadata), the enumeration depth in args. The
// output loads directly into chrome://tracing or https://ui.perfetto.dev.
//
// Spans are emitted per worker in ring order (oldest retained first);
// viewers order by timestamp themselves, so no global sort is needed.
// Call only after the observed work has completed.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer has no trace")
	}
	t.mu.Lock()
	recs := make([]*Recorder, len(t.recs))
	copy(recs, t.recs)
	remotes := t.remoteRecorders()
	t.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	sep := func() error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		return nil
	}
	emitRec := func(r *Recorder, tid int) error {
		for _, sp := range r.ordered() {
			if err := sep(); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(bw,
				`{"name":%q,"cat":"mpfci","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"depth":%d}}`,
				sp.Phase.String(), float64(sp.Start)/1e3, float64(sp.Dur)/1e3, tid, sp.Depth); err != nil {
				return err
			}
		}
		return nil
	}
	name := func(tid int, label string) error {
		if err := sep(); err != nil {
			return err
		}
		_, err := fmt.Fprintf(bw,
			`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, tid, label)
		return err
	}
	for _, r := range recs {
		if err := name(int(r.worker), fmt.Sprintf("worker %d", r.worker)); err != nil {
			return err
		}
		if err := emitRec(r, int(r.worker)); err != nil {
			return err
		}
	}
	// Remote shard workers land on threads after the local ones, named by
	// their import label (typically the worker address).
	for i, r := range remotes {
		tid := len(recs) + i
		if err := name(tid, r.label); err != nil {
			return err
		}
		if err := emitRec(r, tid); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
