// Package bitset provides a dense, fixed-capacity bit set used throughout
// the miner as a transaction-id set (tidset). Operations that dominate the
// mining inner loops — intersection, population count, and iteration — are
// implemented over 64-bit words with math/bits intrinsics.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a set of non-negative integers in [0, Len()). The zero value is
// an empty set of capacity zero; use New to create one with room for n bits.
type Bitset struct {
	words []uint64
	n     int
}

// New returns a Bitset able to hold bits 0..n-1, all clear.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a Bitset of capacity n with the given bits set.
func FromIndices(n int, idx ...int) *Bitset {
	b := New(n)
	for _, i := range idx {
		b.Set(i)
	}
	return b
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (b *Bitset) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set.
func (b *Bitset) Test(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.n))
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of b.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// CopyFrom overwrites b with the contents of src. The two sets must have
// the same capacity.
func (b *Bitset) CopyFrom(src *Bitset) {
	if b.n != src.n {
		panic("bitset: CopyFrom capacity mismatch")
	}
	copy(b.words, src.words)
}

// AndInto stores x ∩ y into dst and returns the resulting population count.
// All three sets must share the same capacity; dst may alias x or y.
func AndInto(dst, x, y *Bitset) int {
	if dst.n != x.n || x.n != y.n {
		panic("bitset: AndInto capacity mismatch")
	}
	c := 0
	for i := range dst.words {
		w := x.words[i] & y.words[i]
		dst.words[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// AndCountAtLeast reports whether |x ∩ y| ≥ k without materializing the
// intersection, scanning words only until the verdict is certain: it
// returns true as soon as the running count reaches k, and false as soon
// as the bits remaining cannot close the gap. For the special case
// k = Count(x) — "does y cover x?", the miner's superset-pruning and
// closure tests — IsSubset is strictly better (it exits on the first
// uncovered word); use AndCountAtLeast for thresholds below a full cover,
// e.g. minimum-support checks that don't need the intersection itself.
func AndCountAtLeast(x, y *Bitset, k int) bool {
	if x.n != y.n {
		panic("bitset: AndCountAtLeast capacity mismatch")
	}
	if k <= 0 {
		return true
	}
	c := 0
	remaining := len(x.words) * wordBits
	for i := range x.words {
		remaining -= wordBits
		c += bits.OnesCount64(x.words[i] & y.words[i])
		if c >= k {
			return true
		}
		if c+remaining < k {
			return false
		}
	}
	return false
}

// And returns a new set x ∩ y.
func And(x, y *Bitset) *Bitset {
	dst := New(x.n)
	AndInto(dst, x, y)
	return dst
}

// AndCount returns |x ∩ y| without allocating.
func AndCount(x, y *Bitset) int {
	if x.n != y.n {
		panic("bitset: AndCount capacity mismatch")
	}
	c := 0
	for i := range x.words {
		c += bits.OnesCount64(x.words[i] & y.words[i])
	}
	return c
}

// Or returns a new set x ∪ y.
func Or(x, y *Bitset) *Bitset {
	if x.n != y.n {
		panic("bitset: Or capacity mismatch")
	}
	dst := New(x.n)
	for i := range dst.words {
		dst.words[i] = x.words[i] | y.words[i]
	}
	return dst
}

// AndNot returns a new set x \ y.
func AndNot(x, y *Bitset) *Bitset {
	if x.n != y.n {
		panic("bitset: AndNot capacity mismatch")
	}
	dst := New(x.n)
	for i := range dst.words {
		dst.words[i] = x.words[i] &^ y.words[i]
	}
	return dst
}

// IsSubset reports whether every bit of x is also set in y.
func IsSubset(x, y *Bitset) bool {
	if x.n != y.n {
		panic("bitset: IsSubset capacity mismatch")
	}
	for i := range x.words {
		if x.words[i]&^y.words[i] != 0 {
			return false
		}
	}
	return true
}

// Hash returns a 64-bit FNV-1a digest of the set's contents. Two sets with
// equal contents (and capacity) hash identically; use Equal to confirm a
// match. The miner keys its Poisson-binomial memo on this.
func (b *Bitset) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range b.words {
		h = (h ^ w) * prime64
	}
	return h
}

// Equal reports whether x and y contain exactly the same bits.
func Equal(x, y *Bitset) bool {
	if x.n != y.n {
		return false
	}
	for i := range x.words {
		if x.words[i] != y.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order. Iteration stops
// early if fn returns false.
func (b *Bitset) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the set bits in ascending order.
func (b *Bitset) Indices() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// SetAll sets every bit in [0, Len()).
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// Reset clears every bit.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// trim clears the unused high bits of the final word so that Count and
// word-level comparisons stay correct.
func (b *Bitset) trim() {
	if r := b.n % wordBits; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(r)) - 1
	}
}

// String renders the set as {i1, i2, …} for debugging.
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(i int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
