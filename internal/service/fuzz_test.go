package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzJobsRequest throws arbitrary bytes at POST /v1/jobs on a daemon with
// an empty dataset registry and pins the intake contract: the handler never
// panics, never accepts (no dataset exists, so nothing can reach the mining
// queue), and always answers 400 (body rejected by strict decoding) or 404
// (body decoded, dataset unknown) with a well-formed JSON error object.
//
// Reproduce a failing input with
//
//	go test ./internal/service -run FuzzJobsRequest/<hash>
func FuzzJobsRequest(f *testing.F) {
	f.Add([]byte(`{"dataset": "sha256:abc", "options": {"min_sup": 2, "pfct": 0.8}}`))
	f.Add([]byte(`{"dataset": "", "options": {"min_sup": 1, "pfct": 0.5}, "timeout_ms": 100}`))
	f.Add([]byte(`{"datset": "typo-field"}`))
	f.Add([]byte(`{"dataset": 42}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"dataset": "x", "options": {"min_sup": 2, "pfct": 0.8}, "timeout_ms": -1}`))
	s, err := New(Config{Workers: 1, QueueDepth: 1, Logger: quietLogger()})
	if err != nil {
		f.Fatalf("New: %v", err)
	}
	handler := s.Handler()
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != 400 && rec.Code != 404 {
			t.Fatalf("POST /v1/jobs with no registered datasets returned %d (body %q), want 400 or 404",
				rec.Code, truncate(body))
		}
		var er errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
			t.Fatalf("status %d carried a non-JSON error body %q: %v", rec.Code, rec.Body.String(), err)
		}
		if er.Error == "" {
			t.Fatalf("status %d carried an empty error message (body %q)", rec.Code, rec.Body.String())
		}
	})
}

func truncate(b []byte) []byte {
	if len(b) > 200 {
		return b[:200]
	}
	return b
}
