package exact

import (
	"testing"

	"github.com/probdata/pfcim/internal/gen"
)

// Miner comparison on the dense Mushroom-like workload: FP-growth should
// dominate Apriori, and the closed miner should beat both on output size.

func benchDataset() Dataset {
	return Dataset(gen.MushroomLike(0.08, 7))
}

func BenchmarkAprioriMushroom(b *testing.B) {
	d := benchDataset()
	ms := len(d) * 3 / 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Apriori(d, ms); len(got) == 0 {
			b.Fatal("no patterns")
		}
	}
}

func BenchmarkFPGrowthMushroom(b *testing.B) {
	d := benchDataset()
	ms := len(d) * 3 / 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := FPGrowth(d, ms); len(got) == 0 {
			b.Fatal("no patterns")
		}
	}
}

func BenchmarkMineClosedMushroom(b *testing.B) {
	d := benchDataset()
	ms := len(d) * 3 / 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := MineClosed(d, ms); len(got) == 0 {
			b.Fatal("no patterns")
		}
	}
}
