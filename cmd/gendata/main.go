// Command gendata generates the uncertain datasets the experiments use and
// writes them in the text interchange format read by cmd/mpfci.
//
// Usage:
//
//	gendata -kind mushroom|quest|quest1m|example [-scale 0.1] [-mean 0.5]
//	        [-var 0.5] [-seed 42] [-o data.txt]
//
// "mushroom" is the dense categorical Mushroom-like dataset, "quest" the
// IBM-Quest T20I10D30KP40 synthetic dataset, "quest1m" the sparse
// million-transaction T10I4D1MP2K stress dataset, and "example" the
// 4-tuple running example of the paper's Table II.
package main

import (
	"flag"
	"fmt"
	"os"

	pfcim "github.com/probdata/pfcim"
)

func main() {
	var (
		kind     = flag.String("kind", "mushroom", "dataset: mushroom, quest, quest1m, example")
		scale    = flag.Float64("scale", 0.1, "dataset scale (1 = paper size)")
		mean     = flag.Float64("mean", 0.5, "Gaussian mean of tuple probabilities")
		variance = flag.Float64("var", 0.5, "Gaussian variance of tuple probabilities")
		seed     = flag.Int64("seed", 42, "generator seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var db *pfcim.Database
	switch *kind {
	case "mushroom":
		data := pfcim.GenerateMushroomLike(*scale, *seed)
		db = pfcim.AssignGaussian(data, *mean, *variance, *seed+1)
	case "quest":
		data := pfcim.GenerateQuest(pfcim.QuestT20I10D30KP40(*scale, *seed))
		db = pfcim.AssignGaussian(data, *mean, *variance, *seed+1)
	case "quest1m":
		data := pfcim.GenerateQuest(pfcim.QuestT10I4D1MP2K(*scale, *seed))
		db = pfcim.AssignGaussian(data, *mean, *variance, *seed+1)
	case "example":
		db = pfcim.PaperExample()
	default:
		fmt.Fprintf(os.Stderr, "gendata: unknown -kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := pfcim.WriteDatabase(w, db); err != nil {
		fatal(err)
	}
	st := db.Stats()
	fmt.Fprintf(os.Stderr, "gendata: wrote %d transactions, %d items, avg length %.2f, mean prob %.2f\n",
		st.NumTransactions, st.NumItems, st.AvgLength, st.MeanProb)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gendata:", err)
	os.Exit(1)
}
