package uncertain

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/probdata/pfcim/internal/itemset"
)

func TestNewDBValidation(t *testing.T) {
	ok := []Transaction{{Items: itemset.FromInts(1), Prob: 0.5}}
	if _, err := NewDB(ok); err != nil {
		t.Fatalf("valid db rejected: %v", err)
	}
	bad := [][]Transaction{
		{{Items: itemset.FromInts(1), Prob: 0}},
		{{Items: itemset.FromInts(1), Prob: -0.1}},
		{{Items: itemset.FromInts(1), Prob: 1.5}},
		{{Items: nil, Prob: 0.5}},
	}
	for i, trans := range bad {
		if _, err := NewDB(trans); err == nil {
			t.Errorf("case %d: invalid db accepted", i)
		}
	}
}

func TestDBIsolation(t *testing.T) {
	items := itemset.FromInts(1, 2)
	db := MustNewDB([]Transaction{{Items: items, Prob: 0.5}})
	items[0] = 99
	if db.Transaction(0).Items[0] != 1 {
		t.Error("NewDB shares the caller's itemset backing array")
	}
	got := db.Items()
	got[0] = 42
	if db.Items()[0] != 1 {
		t.Error("Items() exposes internal state")
	}
}

func TestCountsAndSupports(t *testing.T) {
	db := PaperExample()
	a, d := itemset.FromInts(0), itemset.FromInts(3)
	abc := itemset.FromInts(0, 1, 2)
	abcd := itemset.FromInts(0, 1, 2, 3)
	if got := db.Count(a); got != 4 {
		t.Errorf("count(a) = %d, want 4", got)
	}
	if got := db.Count(d); got != 2 {
		t.Errorf("count(d) = %d, want 2", got)
	}
	if got := db.Count(abcd); got != 2 {
		t.Errorf("count(abcd) = %d, want 2 (paper's Definition 4.2 example)", got)
	}
	if got := db.ExpectedSupport(abc); math.Abs(got-3.1) > 1e-12 {
		t.Errorf("expSup(abc) = %v, want 3.1", got)
	}
	if got := db.ExpectedSupport(abcd); math.Abs(got-1.8) > 1e-12 {
		t.Errorf("expSup(abcd) = %v, want 1.8", got)
	}
}

func TestTidsetAndIndex(t *testing.T) {
	db := PaperExample()
	idx := db.Index()
	d := itemset.Item(3)
	ts := idx.Tidsets[d]
	if got := ts.Indices(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("tidset(d) = %v, want [0 3]", got)
	}
	abcd := itemset.FromInts(0, 1, 2, 3)
	if !equalInts(idx.TidsetOf(abcd).Indices(), []int{0, 3}) {
		t.Errorf("TidsetOf(abcd) = %v", idx.TidsetOf(abcd).Indices())
	}
	if !equalInts(db.Tidset(abcd).Indices(), []int{0, 3}) {
		t.Errorf("Tidset(abcd) = %v", db.Tidset(abcd).Indices())
	}
	// Unknown item → empty tidset.
	if idx.TidsetOf(itemset.FromInts(99)).Any() {
		t.Error("tidset of unknown item should be empty")
	}
	// Empty itemset → all transactions.
	if got := idx.TidsetOf(nil).Count(); got != 4 {
		t.Errorf("TidsetOf(∅) has %d tids, want 4", got)
	}
	probs := idx.ProbsOf(ts)
	if len(probs) != 2 || probs[0] != 0.9 || probs[1] != 0.9 {
		t.Errorf("ProbsOf = %v", probs)
	}
}

func TestStats(t *testing.T) {
	db := PaperExample()
	st := db.Stats()
	if st.NumTransactions != 4 || st.NumItems != 4 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.AvgLength-3.5) > 1e-12 || st.MaxLength != 4 {
		t.Errorf("lengths = %+v", st)
	}
	if math.Abs(st.MeanProb-0.775) > 1e-12 {
		t.Errorf("mean prob = %v, want 0.775", st.MeanProb)
	}
}

func TestCertain(t *testing.T) {
	db := MustNewDB([]Transaction{{Items: itemset.FromInts(1), Prob: 1}})
	if !db.Certain() {
		t.Error("all-prob-1 db should be certain")
	}
	if PaperExample().Certain() {
		t.Error("paper example is not certain")
	}
}

func TestIORoundtrip(t *testing.T) {
	db := PaperExample()
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != db.N() {
		t.Fatalf("roundtrip size %d, want %d", back.N(), db.N())
	}
	for i := 0; i < db.N(); i++ {
		a, b := db.Transaction(i), back.Transaction(i)
		if !itemset.Equal(a.Items, b.Items) || a.Prob != b.Prob {
			t.Errorf("transaction %d: %v/%v vs %v/%v", i, a.Items, a.Prob, b.Items, b.Prob)
		}
	}
}

func TestReadFormat(t *testing.T) {
	in := `
# a comment
1 2 3 : 0.5

7
5 4 : 1.0
`
	db, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.N() != 3 {
		t.Fatalf("parsed %d transactions, want 3", db.N())
	}
	if db.Transaction(1).Prob != 1 {
		t.Error("missing probability should default to 1")
	}
	if !itemset.Equal(db.Transaction(2).Items, itemset.FromInts(4, 5)) {
		t.Errorf("transaction items not sorted: %v", db.Transaction(2).Items)
	}
	for _, bad := range []string{"1 2 : zebra", "1 2 : 1.5", ": 0.5", "-1 : 0.5", "x y"} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("line %q should fail to parse", bad)
		}
	}
}

func TestPaperExampleExtended(t *testing.T) {
	db := PaperExampleExtended()
	if db.N() != 6 {
		t.Fatalf("extended example has %d tuples, want 6", db.N())
	}
	if got := db.Transaction(4).Prob; got != 0.4 {
		t.Errorf("T5 prob = %v, want 0.4", got)
	}
	if got := db.Count(itemset.FromInts(0)); got != 6 {
		t.Errorf("count(a) = %d, want 6", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
