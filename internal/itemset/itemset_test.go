package itemset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedupes(t *testing.T) {
	s := New(5, 1, 3, 1, 5, 2)
	want := Itemset{1, 2, 3, 5}
	if !Equal(s, want) {
		t.Errorf("New = %v, want %v", s, want)
	}
	if New().Len() != 0 {
		t.Error("New() should be empty")
	}
}

func TestContains(t *testing.T) {
	s := FromInts(1, 3, 5)
	for _, tc := range []struct {
		x    Item
		want bool
	}{{0, false}, {1, true}, {2, false}, {3, true}, {5, true}, {6, false}} {
		if got := s.Contains(tc.x); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestExtend(t *testing.T) {
	s := FromInts(1, 3)
	e := s.Extend(7)
	if !Equal(e, FromInts(1, 3, 7)) {
		t.Errorf("Extend = %v", e)
	}
	defer func() {
		if recover() == nil {
			t.Error("Extend with non-greater item should panic")
		}
	}()
	s.Extend(2)
}

func TestAddRemove(t *testing.T) {
	s := FromInts(2, 4)
	if got := s.Add(3); !Equal(got, FromInts(2, 3, 4)) {
		t.Errorf("Add middle = %v", got)
	}
	if got := s.Add(2); !Equal(got, s) {
		t.Errorf("Add existing = %v", got)
	}
	if got := s.Remove(2); !Equal(got, FromInts(4)) {
		t.Errorf("Remove = %v", got)
	}
	if got := s.Remove(99); !Equal(got, s) {
		t.Errorf("Remove missing = %v", got)
	}
}

func TestSubsetPrefix(t *testing.T) {
	if !IsSubset(FromInts(1, 3), FromInts(1, 2, 3)) {
		t.Error("IsSubset false negative")
	}
	if IsSubset(FromInts(1, 4), FromInts(1, 2, 3)) {
		t.Error("IsSubset false positive")
	}
	if !IsSubset(nil, FromInts(1)) {
		t.Error("empty set must be subset of everything")
	}
	if IsProperSubset(FromInts(1, 2), FromInts(1, 2)) {
		t.Error("IsProperSubset of equal sets")
	}
	if !HasPrefix(FromInts(1, 2, 3), FromInts(1, 2)) {
		t.Error("HasPrefix false negative")
	}
	if HasPrefix(FromInts(1, 3, 4), FromInts(1, 2)) {
		t.Error("HasPrefix false positive")
	}
	if !HasPrefix(FromInts(1), nil) {
		t.Error("empty prefix should match")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Itemset
		want int
	}{
		{FromInts(1), FromInts(2), -1},
		{FromInts(2), FromInts(1), 1},
		{FromInts(1, 2), FromInts(1, 2), 0},
		{FromInts(1), FromInts(1, 2), -1},
		{FromInts(1, 3), FromInts(1, 2, 9), 1},
	}
	for _, tc := range cases {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestKeyRoundtrip(t *testing.T) {
	for _, s := range []Itemset{nil, FromInts(0), FromInts(3, 1, 4, 15)} {
		got, err := ParseKey(s.Key())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", s.Key(), err)
		}
		if !Equal(got, s) {
			t.Errorf("roundtrip of %v gave %v", s, got)
		}
	}
	if _, err := ParseKey("1 x"); err == nil {
		t.Error("ParseKey should fail on garbage")
	}
}

func TestString(t *testing.T) {
	if got := FromInts(0, 2, 26).String(); got != "{a c 26}" {
		t.Errorf("String = %q", got)
	}
	if got := Itemset(nil).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestLastPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Last of empty set should panic")
		}
	}()
	Itemset(nil).Last()
}

// reference set-algebra via maps.
func toMap(s Itemset) map[Item]bool {
	m := map[Item]bool{}
	for _, it := range s {
		m[it] = true
	}
	return m
}

func sorted(s Itemset) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

func randomItemset(rng *rand.Rand) Itemset {
	n := rng.Intn(12)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item(rng.Intn(20))
	}
	return New(items...)
}

func TestPropertyAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomItemset(rng)
		b := randomItemset(rng)
		u, i, d := Union(a, b), Intersect(a, b), Diff(a, b)
		if !sorted(u) || !sorted(i) || !sorted(d) {
			return false
		}
		ma, mb := toMap(a), toMap(b)
		for it := Item(0); it < 20; it++ {
			if u.Contains(it) != (ma[it] || mb[it]) {
				return false
			}
			if i.Contains(it) != (ma[it] && mb[it]) {
				return false
			}
			if d.Contains(it) != (ma[it] && !mb[it]) {
				return false
			}
		}
		// |A| + |B| = |A∪B| + |A∩B|
		if a.Len()+b.Len() != u.Len()+i.Len() {
			return false
		}
		// Subset coherence.
		if !IsSubset(i, a) || !IsSubset(i, b) || !IsSubset(a, u) || !IsSubset(d, a) {
			return false
		}
		// Compare is a total order consistent with equality.
		if (Compare(a, b) == 0) != Equal(a, b) {
			return false
		}
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromInts(1, 2, 3)
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares backing array")
	}
	if Itemset(nil).Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}
