package shard

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

func TestLayoutBounds(t *testing.T) {
	for _, tc := range []struct{ n, total int }{
		{1, 4}, {2, 4}, {3, 7}, {4, 4}, {5, 3}, {2, 1},
	} {
		l := Layout{N: tc.n, Total: tc.total}
		prev := 0
		for i := 0; i < tc.n; i++ {
			lo, hi := l.Bounds(i)
			if lo != prev {
				t.Errorf("layout %+v shard %d: lo=%d, want %d (contiguous)", l, i, lo, prev)
			}
			if hi < lo {
				t.Errorf("layout %+v shard %d: hi=%d < lo=%d", l, i, hi, lo)
			}
			if hi != l.End(i) {
				t.Errorf("layout %+v shard %d: End=%d, Bounds hi=%d", l, i, l.End(i), hi)
			}
			prev = hi
		}
		if prev != tc.total {
			t.Errorf("layout %+v: shards cover [0,%d), want [0,%d)", l, prev, tc.total)
		}
		if l.End(tc.n) != tc.total || l.End(tc.n+3) != tc.total {
			t.Errorf("layout %+v: End beyond N must clamp to Total", l)
		}
	}
}

func TestRingDeterministicAndSpreading(t *testing.T) {
	workers := []string{"w1:8081", "w2:8082", "w3:8083"}
	r1, err := NewRing(workers)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"w3:8083", "w1:8081", "w2:8082"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for shard := 0; shard < 64; shard++ {
		a := r1.Pick("mushroom", shard)
		if b := r2.Pick("mushroom", shard); a != b {
			t.Fatalf("ring not order-independent: shard %d → %s vs %s", shard, a, b)
		}
		seen[a]++
	}
	if len(seen) != len(workers) {
		t.Errorf("64 shards landed on %d of %d workers: %v", len(seen), len(workers), seen)
	}
	if _, err := NewRing(nil); err == nil {
		t.Error("empty worker list must be rejected")
	}
}

func testDB(t *testing.T) *uncertain.DB {
	t.Helper()
	db, err := uncertain.NewDB([]uncertain.Transaction{
		{Items: itemset.FromInts(0, 1), Prob: 0.9},
		{Items: itemset.FromInts(0, 1, 2), Prob: 0.7},
		{Items: itemset.FromInts(1, 2), Prob: 0.5},
		{Items: itemset.FromInts(0, 2), Prob: 0.8},
		{Items: itemset.FromInts(0, 1, 2), Prob: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestEvaluatorAgainstDirect: a shard evaluator's tail PMF and clause factor
// must equal computing the same quantities directly on the slice.
func TestEvaluatorAgainstDirect(t *testing.T) {
	db := testDB(t)
	l := Layout{N: 2, Total: db.N()}
	for i := 0; i < l.N; i++ {
		ev, err := NewEvaluator(db, l, i)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := l.Bounds(i)
		x := itemset.FromInts(0)
		ext := itemset.Item(1)

		// Direct: gather probs of {0,1} within [lo,hi) in ascending order.
		var probs []float64
		var f float64 = 1
		for tid := lo; tid < hi; tid++ {
			items := db.Transaction(tid).Items
			if items.Contains(0) && items.Contains(1) {
				probs = append(probs, db.Prob(tid))
			} else if items.Contains(0) {
				f *= 1 - db.Prob(tid)
			}
		}
		var s poibin.Scratch
		want := s.PMFTrunc(probs, 2)
		got := ev.TailPMF(x, ext, 2)
		if len(got) != len(want) {
			t.Fatalf("shard %d: PMF length %d, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("shard %d: PMF[%d] = %v, want %v", i, j, got[j], want[j])
			}
		}
		s.ReleasePMF(want)

		if gf := ev.ClauseFactor(x, ext); gf != f {
			t.Fatalf("shard %d: clause factor %v, want %v", i, gf, f)
		}

		// Memo: a repeated call serves the identical vector and counts a hit.
		if again := ev.TailPMF(x, ext, 2); &again[0] != &got[0] {
			t.Fatalf("shard %d: repeated TailPMF did not hit the memo", i)
		}
		if ev.MemoHits != 1 || ev.Evals != 1 {
			t.Fatalf("shard %d: evals=%d hits=%d, want 1/1", i, ev.Evals, ev.MemoHits)
		}
	}
}

// TestTailPartsMatchesWhole: folding the per-shard PMFs of a full coverage
// reproduces the whole-vector tail within tolerance.
func TestTailPartsMatchesWhole(t *testing.T) {
	probs := []float64{0.9, 0.7, 0.5, 0.8, 0.3, 0.6, 0.2}
	k := 3
	var s poibin.Scratch
	want := s.TailKernel(probs, k, poibin.KernelDP)
	for _, n := range []int{1, 2, 3, 7} {
		l := Layout{N: n, Total: len(probs)}
		parts := make([][]float64, n)
		for i := range parts {
			lo, hi := l.Bounds(i)
			parts[i] = s.PMFTrunc(probs[lo:hi], k)
		}
		got := TailParts(&s, parts, k)
		for _, p := range parts {
			s.ReleasePMF(p)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("n=%d: folded tail %v, whole %v", n, got, want)
		}
	}
}

func TestFoldFactors(t *testing.T) {
	if got, neg := FoldFactors([]float64{0.5, 0.5}); neg || got != 0.25 {
		t.Errorf("FoldFactors(0.5,0.5) = %v,%v", got, neg)
	}
	if _, neg := FoldFactors([]float64{0.5, 1e-16}); !neg {
		t.Error("sub-eps shard factor must be negligible")
	}
	if got, neg := FoldFactors(nil); neg || got != 1 {
		t.Errorf("empty fold = %v,%v, want 1,false", got, neg)
	}
}

// TestWorkerClientRoundTrip places a dataset on two httptest workers and
// checks that remote evaluation returns exactly the local evaluator's
// values (JSON round-trips float64 bit-exactly).
func TestWorkerClientRoundTrip(t *testing.T) {
	db := testDB(t)
	srv1 := httptest.NewServer(NewWorker(nil))
	defer srv1.Close()
	srv2 := httptest.NewServer(NewWorker(nil))
	defer srv2.Close()

	c, err := NewClient([]string{srv1.URL, srv2.URL}, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const shards = 2
	if err := c.Place(ctx, "t", db, shards); err != nil {
		t.Fatal(err)
	}
	if !c.Placed("t") {
		t.Fatal("placement not recorded")
	}

	sess, err := c.Kernel(ctx, nil, "t")
	if err != nil {
		t.Fatal(err)
	}
	x := itemset.FromInts(0)
	parts, ok := sess.TailPMFs(x, 1, 2)
	if !ok || len(parts) != shards {
		t.Fatalf("TailPMFs ok=%v len=%d", ok, len(parts))
	}
	factors, ok := sess.ClauseFactors(x, 1)
	if !ok || len(factors) != shards {
		t.Fatalf("ClauseFactors ok=%v len=%d", ok, len(factors))
	}
	l := Layout{N: shards, Total: db.N()}
	for i := 0; i < shards; i++ {
		ev, err := NewEvaluator(db, l, i)
		if err != nil {
			t.Fatal(err)
		}
		want := ev.TailPMF(x, 1, 2)
		if len(parts[i]) != len(want) {
			t.Fatalf("shard %d: wire PMF length %d, want %d", i, len(parts[i]), len(want))
		}
		for j := range want {
			if parts[i][j] != want[j] {
				t.Fatalf("shard %d: wire PMF[%d] = %v, local %v (not bit-exact)", i, j, parts[i][j], want[j])
			}
		}
		if wf := ev.ClauseFactor(x, 1); factors[i] != wf {
			t.Fatalf("shard %d: wire factor %v, local %v", i, factors[i], wf)
		}
	}

	// Health probes see both workers up.
	up := c.CheckHealth(ctx)
	for addr, ok := range up {
		if !ok {
			t.Errorf("worker %s reported down", addr)
		}
	}
}

// TestSessionFailsJobOnDeadWorker: killing a worker makes the session
// decline (ok = false) and cancel the job context with the structured
// RPCError — the coordinator-side half of the mid-job worker-loss bugfix.
func TestSessionFailsJobOnDeadWorker(t *testing.T) {
	db := testDB(t)
	srv1 := httptest.NewServer(NewWorker(nil))
	defer srv1.Close()
	srv2 := httptest.NewServer(NewWorker(nil))

	c, err := NewClient([]string{srv1.URL, srv2.URL}, 500*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Place(context.Background(), "t", db, 2); err != nil {
		t.Fatal(err)
	}

	jobCtx, fail := context.WithCancelCause(context.Background())
	sess, err := c.Kernel(jobCtx, fail, "t")
	if err != nil {
		t.Fatal(err)
	}
	// Kill the worker that owns shard 0 (consistent hashing may have put
	// both shards on either server).
	c.mu.Lock()
	owner := c.placed["t"].workers[0]
	c.mu.Unlock()
	if owner == srv1.URL {
		srv1.Close()
	} else {
		srv2.Close()
	}

	done := make(chan bool, 1)
	go func() {
		_, ok := sess.TailPMFs(itemset.FromInts(0), 1, 2)
		done <- ok
	}()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("session reported success with a dead worker")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session hung on dead worker")
	}
	select {
	case <-jobCtx.Done():
	case <-time.After(time.Second):
		t.Fatal("job context not cancelled after shard failure")
	}
	var rpcErr *RPCError
	if cause := context.Cause(jobCtx); !errors.As(cause, &rpcErr) {
		t.Fatalf("job cause = %v, want *RPCError", cause)
	} else if rpcErr.Op != OpPMF {
		t.Errorf("RPCError op = %q, want %q", rpcErr.Op, OpPMF)
	}
}

// TestPlaceHashMismatchSurfaces: the coordinator verifies the worker-echoed
// content hash, so a worker holding a different slice is an error, not a
// silent wrong answer.
func TestRenderSliceHash(t *testing.T) {
	db := testDB(t)
	l := Layout{N: 2, Total: db.N()}
	text, h1, err := RenderSlice(Slice(db, l, 0))
	if err != nil {
		t.Fatal(err)
	}
	if text == "" || len(h1) != 16 {
		t.Fatalf("render: text=%q hash=%q", text, h1)
	}
	_, h2, err := RenderSlice(Slice(db, l, 1))
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("different slices must hash differently")
	}
	h3, err := HashSlice(Slice(db, l, 0))
	if err != nil {
		t.Fatal(err)
	}
	if h3 != h1 {
		t.Error("HashSlice disagrees with RenderSlice")
	}
}

// TestEvaluatorMemoNeverChangesValues: memoized and fresh evaluators agree
// bit-for-bit on every quantity.
func TestEvaluatorMemoNeverChangesValues(t *testing.T) {
	db := testDB(t)
	l := Layout{N: 2, Total: db.N()}
	warm, err := NewEvaluator(db, l, 0)
	if err != nil {
		t.Fatal(err)
	}
	queries := []struct {
		x itemset.Itemset
		e itemset.Item
		k int
	}{
		{nil, 0, 2}, {nil, 1, 2}, {itemset.FromInts(0), 1, 2}, {itemset.FromInts(0), 1, 3},
	}
	for round := 0; round < 2; round++ {
		for _, q := range queries {
			fresh, err := NewEvaluator(db, l, 0)
			if err != nil {
				t.Fatal(err)
			}
			a := warm.TailPMF(q.x, q.e, q.k)
			b := fresh.TailPMF(q.x, q.e, q.k)
			if len(a) != len(b) {
				t.Fatalf("round %d %v+%d@%d: lengths differ", round, q.x, q.e, q.k)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("round %d %v+%d@%d: memoized %v != fresh %v", round, q.x, q.e, q.k, a[j], b[j])
				}
			}
		}
	}
}

// TestSessionTracedEvalImportsWorkerSpans: a session with a tracer set must
// return exactly the untraced values (tracing is observability only) while
// the job tracer accumulates one bound-check span per shard eval,
// attributed to the owning worker's address.
func TestSessionTracedEvalImportsWorkerSpans(t *testing.T) {
	db := testDB(t)
	srv1 := httptest.NewServer(NewWorker(nil))
	defer srv1.Close()
	srv2 := httptest.NewServer(NewWorker(nil))
	defer srv2.Close()

	c, err := NewClient([]string{srv1.URL, srv2.URL}, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const shards = 2
	if err := c.Place(ctx, "t", db, shards); err != nil {
		t.Fatal(err)
	}

	sess, err := c.Kernel(ctx, nil, "t")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	sess.SetTracer(tr)

	x := itemset.FromInts(0)
	parts, ok := sess.TailPMFs(x, 1, 2)
	if !ok {
		t.Fatal("traced TailPMFs failed")
	}
	factors, ok := sess.ClauseFactors(x, 1)
	if !ok {
		t.Fatal("traced ClauseFactors failed")
	}

	// Byte-identity against the local evaluator, exactly as the untraced
	// round-trip test checks.
	l := Layout{N: shards, Total: db.N()}
	for i := 0; i < shards; i++ {
		ev, err := NewEvaluator(db, l, i)
		if err != nil {
			t.Fatal(err)
		}
		want := ev.TailPMF(x, 1, 2)
		for j := range want {
			if parts[i][j] != want[j] {
				t.Fatalf("shard %d: traced PMF[%d] = %v, local %v", i, j, parts[i][j], want[j])
			}
		}
		if wf := ev.ClauseFactor(x, 1); factors[i] != wf {
			t.Fatalf("shard %d: traced factor %v, local %v", i, factors[i], wf)
		}
	}

	// 2 ops × 2 shards = 4 remote spans, all bound-check, attributed to the
	// placement's worker addresses (the ring may have put both shards on
	// one worker).
	p := tr.Profile()
	var remoteSpans int64
	seen := map[string]bool{}
	for _, w := range p.Workers {
		if w.Label == "" {
			continue
		}
		seen[w.Label] = true
		remoteSpans += w.Spans
		for _, ph := range w.Phases {
			if ph.Phase != obs.PhaseBoundCheck.String() {
				t.Errorf("remote worker %s recorded phase %s, want %s", w.Label, ph.Phase, obs.PhaseBoundCheck)
			}
		}
		if w.Worker != -1 {
			t.Errorf("remote worker %s has Worker=%d, want -1", w.Label, w.Worker)
		}
	}
	if remoteSpans != 4 {
		t.Errorf("remote spans = %d, want 4", remoteSpans)
	}
	owners := map[string]bool{}
	c.mu.Lock()
	for _, addr := range c.placed["t"].workers {
		owners[addr] = true
	}
	c.mu.Unlock()
	if len(seen) != len(owners) {
		t.Errorf("traced workers %v, placement owners %v", seen, owners)
	}
	for addr := range owners {
		if !seen[addr] {
			t.Errorf("placement owner %s missing from trace", addr)
		}
	}
}

// TestTraceIDHeaderReachesWorker: a trace ID installed on the job context
// must arrive as the X-Pfcim-Trace header on every RPC of that job.
func TestTraceIDHeaderReachesWorker(t *testing.T) {
	db := testDB(t)
	var mu sync.Mutex
	var headers []string
	w := NewWorker(nil)
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headers = append(headers, r.Header.Get(TraceHeader))
		mu.Unlock()
		w.ServeHTTP(rw, r)
	}))
	defer srv.Close()

	c, err := NewClient([]string{srv.URL}, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithTraceID(context.Background(), "job-42")
	if got := TraceIDFrom(ctx); got != "job-42" {
		t.Fatalf("TraceIDFrom = %q, want job-42", got)
	}
	if err := c.Place(ctx, "t", db, 1); err != nil {
		t.Fatal(err)
	}
	sess, err := c.Kernel(ctx, nil, "t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sess.TailPMFs(itemset.FromInts(0), 1, 2); !ok {
		t.Fatal("TailPMFs failed")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(headers) < 2 { // 1 place + 1 eval at minimum
		t.Fatalf("saw %d RPCs, want ≥ 2", len(headers))
	}
	for i, h := range headers {
		if h != "job-42" {
			t.Errorf("RPC %d carried trace header %q, want job-42", i, h)
		}
	}
}

// removalObserver records WorkerRemoved notifications.
type removalObserver struct {
	noopObserver
	mu      sync.Mutex
	removed []string
}

func (o *removalObserver) WorkerRemoved(addr string) {
	o.mu.Lock()
	o.removed = append(o.removed, addr)
	o.mu.Unlock()
}

// TestRemoveWorker: removal shrinks the ring, notifies the observer so the
// metric series retire, keeps future placements off the removed address,
// and refuses to empty the ring.
func TestRemoveWorker(t *testing.T) {
	db := testDB(t)
	srv := httptest.NewServer(NewWorker(nil))
	defer srv.Close()

	o := &removalObserver{}
	c, err := NewClient([]string{srv.URL, "w2:9102", "w3:9103"}, time.Second, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveWorker("nope:1"); err == nil {
		t.Error("removing an unknown worker must fail")
	}
	if err := c.RemoveWorker("w2:9102"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveWorker("w3:9103"); err != nil {
		t.Fatal(err)
	}
	if got := c.Workers(); len(got) != 1 || got[0] != srv.URL {
		t.Fatalf("Workers() = %v, want [%s]", got, srv.URL)
	}
	if err := c.RemoveWorker(srv.URL); err == nil {
		t.Error("removing the last worker must fail")
	}

	o.mu.Lock()
	removed := append([]string(nil), o.removed...)
	o.mu.Unlock()
	if len(removed) != 2 || removed[0] != "w2:9102" || removed[1] != "w3:9103" {
		t.Errorf("observer saw removals %v, want [w2:9102 w3:9103]", removed)
	}

	// New placements route every shard to the one surviving worker, and
	// health checks no longer probe the removed addresses.
	if err := c.Place(context.Background(), "t", db, 3); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	for i, addr := range c.placed["t"].workers {
		if addr != srv.URL {
			t.Errorf("shard %d placed on %s after removal, want %s", i, addr, srv.URL)
		}
	}
	c.mu.Unlock()
	up := c.CheckHealth(context.Background())
	if len(up) != 1 || !up[srv.URL] {
		t.Errorf("CheckHealth = %v, want only %s up", up, srv.URL)
	}
}
