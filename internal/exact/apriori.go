package exact

import (
	"sort"

	"github.com/probdata/pfcim/internal/itemset"
)

// Apriori mines all frequent itemsets with support ≥ minSup using the
// classical level-wise candidate-generation algorithm of Agrawal & Srikant.
// It serves as the reference implementation the faster miners are tested
// against.
func Apriori(d Dataset, minSup int) []Pattern {
	if minSup < 1 {
		minSup = 1
	}
	var out []Pattern

	// L1.
	counts := map[itemset.Item]int{}
	for _, t := range d {
		for _, it := range t {
			counts[it]++
		}
	}
	var level []itemset.Itemset
	for it, c := range counts {
		if c >= minSup {
			level = append(level, itemset.Itemset{it})
			out = append(out, Pattern{Items: itemset.Itemset{it}, Support: c})
		}
	}
	sort.Slice(level, func(i, j int) bool { return level[i][0] < level[j][0] })

	for len(level) > 0 {
		cands := aprioriGen(level)
		if len(cands) == 0 {
			break
		}
		supp := make([]int, len(cands))
		for _, t := range d {
			for ci, c := range cands {
				if itemset.IsSubset(c, t) {
					supp[ci]++
				}
			}
		}
		var next []itemset.Itemset
		for ci, c := range cands {
			if supp[ci] >= minSup {
				next = append(next, c)
				out = append(out, Pattern{Items: c, Support: supp[ci]})
			}
		}
		level = next
	}
	SortPatterns(out)
	return out
}

// aprioriGen joins the frequent k-itemsets sharing a (k−1)-prefix and
// prunes candidates with an infrequent subset.
func aprioriGen(level []itemset.Itemset) []itemset.Itemset {
	freq := map[string]bool{}
	for _, s := range level {
		freq[s.Key()] = true
	}
	var cands []itemset.Itemset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			k := len(a)
			if !itemset.Equal(a[:k-1], b[:k-1]) {
				// level is lexicographically sorted, so once prefixes
				// diverge no later j matches either.
				break
			}
			var cand itemset.Itemset
			if a[k-1] < b[k-1] {
				cand = a.Extend(b[k-1])
			} else {
				cand = b.Extend(a[k-1])
			}
			if hasInfrequentSubset(cand, freq) {
				continue
			}
			cands = append(cands, cand)
		}
	}
	return cands
}

func hasInfrequentSubset(cand itemset.Itemset, freq map[string]bool) bool {
	for _, drop := range cand {
		if !freq[cand.Remove(drop).Key()] {
			return true
		}
	}
	return false
}
