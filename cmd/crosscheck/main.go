// Command crosscheck soaks the MPFCI stack against its oracles for a wall-
// clock budget: seeded random databases (internal/crosscheck shapes) are
// mined and cross-checked — differentially against exact possible-world
// enumeration when small enough, and against the oracle-free metamorphic
// invariants on larger databases — until the budget expires or a
// counterexample is found.
//
// Usage:
//
//	crosscheck [-seconds 60] [-seed 1] [-shape dense|sparse|correlated|degenerate]
//
// On failure it prints the (shape, seed) pair, which reproduces the exact
// case via crosscheck.RunDifferential / RunInvariants, and exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/probdata/pfcim/internal/crosscheck"
)

func main() {
	var (
		seconds = flag.Int("seconds", 60, "wall-clock soak budget")
		seed    = flag.Int64("seed", 1, "base seed; case i of shape s uses seed base+i")
		shape   = flag.String("shape", "", "restrict to one shape (default: rotate all)")
	)
	flag.Parse()

	shapes := crosscheck.Shapes
	if *shape != "" {
		sh, err := crosscheck.ParseShape(*shape)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		shapes = []crosscheck.Shape{sh}
	}

	deadline := time.Now().Add(time.Duration(*seconds) * time.Second)
	var differential, invariants, sharded, streamed int
	for i := int64(0); time.Now().Before(deadline); i++ {
		for _, sh := range shapes {
			// The rotation interleaves the four checkers: every eighth case
			// runs the (heavier) metamorphic invariants on a database beyond
			// the oracle's reach, every eighth (offset 3) runs the shard-
			// composability equivalence, every eighth (offset 5) slides the
			// case through a window checking incremental ≡ from-scratch, and
			// the rest are differential.
			c := crosscheck.Case{Shape: sh, Seed: *seed + i}
			var err error
			switch {
			case i%8 == 7:
				c.MaxTrans, c.MaxItems = crosscheck.InvariantMaxTrans, crosscheck.InvariantMaxItems
				err = crosscheck.RunInvariants(c)
				invariants++
			case i%8 == 3:
				err = crosscheck.RunShardEquivalence(c)
				sharded++
			case i%8 == 5:
				err = crosscheck.RunStreamEquivalence(c)
				streamed++
			default:
				err = crosscheck.RunDifferential(c)
				differential++
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "FAIL after %d differential + %d invariant + %d shard + %d stream cases:\n%v\n",
					differential, invariants, sharded, streamed, err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("crosscheck: OK — %d differential, %d invariant, %d shard and %d stream cases across %v in %ds\n",
		differential, invariants, sharded, streamed, shapes, *seconds)
}
