// Package uncertain implements the tuple-uncertainty transaction database
// model of the paper: each transaction T_i carries an itemset and an
// existence probability p_i, and transactions exist independently. The
// package provides the vertical (item → tidset) index the miners run on,
// dataset characteristics (Table VIII), and a plain-text interchange format.
package uncertain

import (
	"fmt"
	"sort"
	"sync"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
)

// Transaction is one uncertain tuple <tid, itemset, probability>.
type Transaction struct {
	Items itemset.Itemset
	Prob  float64
}

// DB is an uncertain transaction database (the paper's UTD). Construct one
// with NewDB; the vertical index is built lazily by Index.
type DB struct {
	trans []Transaction
	items itemset.Itemset // sorted universe of items that occur

	indexOnce sync.Once
	index     *Index
}

// NewDB validates and stores the given transactions. Probabilities must lie
// in (0, 1]; a zero-probability tuple can never appear in any world and is
// rejected rather than silently kept.
func NewDB(trans []Transaction) (*DB, error) {
	universe := map[itemset.Item]struct{}{}
	for i, t := range trans {
		if t.Prob <= 0 || t.Prob > 1 {
			return nil, fmt.Errorf("uncertain: transaction %d has probability %v outside (0,1]", i, t.Prob)
		}
		if len(t.Items) == 0 {
			return nil, fmt.Errorf("uncertain: transaction %d is empty", i)
		}
		for _, it := range t.Items {
			universe[it] = struct{}{}
		}
	}
	items := make(itemset.Itemset, 0, len(universe))
	for it := range universe {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	cp := make([]Transaction, len(trans))
	for i, t := range trans {
		cp[i] = Transaction{Items: t.Items.Clone(), Prob: t.Prob}
	}
	return &DB{trans: cp, items: items}, nil
}

// MustNewDB is NewDB that panics on error, for tests and fixtures.
func MustNewDB(trans []Transaction) *DB {
	db, err := NewDB(trans)
	if err != nil {
		panic(err)
	}
	return db
}

// N returns the number of transactions.
func (db *DB) N() int { return len(db.trans) }

// Transaction returns tuple i.
func (db *DB) Transaction(i int) Transaction { return db.trans[i] }

// Prob returns the existence probability of tuple i.
func (db *DB) Prob(i int) float64 { return db.trans[i].Prob }

// Items returns the sorted universe of items occurring in the database.
func (db *DB) Items() itemset.Itemset { return db.items.Clone() }

// Probs returns the existence probabilities indexed by tid.
func (db *DB) Probs() []float64 {
	out := make([]float64, len(db.trans))
	for i, t := range db.trans {
		out[i] = t.Prob
	}
	return out
}

// Tidset returns the set of transaction ids whose itemset contains X
// (transactions that *possibly* contain X). |Tidset(X)| is the paper's
// X.count (Definition 4.2).
func (db *DB) Tidset(x itemset.Itemset) *bitset.Bitset {
	b := bitset.New(len(db.trans))
	for i, t := range db.trans {
		if itemset.IsSubset(x, t.Items) {
			b.Set(i)
		}
	}
	return b
}

// Count returns the paper's X.count: the number of transactions containing X.
func (db *DB) Count(x itemset.Itemset) int {
	c := 0
	for _, t := range db.trans {
		if itemset.IsSubset(x, t.Items) {
			c++
		}
	}
	return c
}

// ExpectedSupport returns Σ_{T ⊇ X} p_T, the expected-support model's
// estimate of sup(X).
func (db *DB) ExpectedSupport(x itemset.Itemset) float64 {
	s := 0.0
	for _, t := range db.trans {
		if itemset.IsSubset(x, t.Items) {
			s += t.Prob
		}
	}
	return s
}

// Index is the vertical representation: one tidset per item, in the order
// of Items(). Every miner in this repository works from an Index.
type Index struct {
	DB       *DB
	Items    itemset.Itemset // sorted universe
	Tidsets  map[itemset.Item]*bitset.Bitset
	ItemPos  map[itemset.Item]int // position of each item in Items
	AllTrans *bitset.Bitset       // tidset of the empty itemset (all tids)
}

// Index returns the vertical index, building it on first use. The index is
// immutable once built (miners clone tidsets before intersecting), so one
// instance is shared by every concurrent run over the same DB — repeated
// mining of one dataset (sweeps, daemon jobs) pays for index construction
// once.
func (db *DB) Index() *Index {
	db.indexOnce.Do(func() { db.index = db.buildIndex() })
	return db.index
}

func (db *DB) buildIndex() *Index {
	idx := &Index{
		DB:      db,
		Items:   db.Items(),
		Tidsets: make(map[itemset.Item]*bitset.Bitset, len(db.items)),
		ItemPos: make(map[itemset.Item]int, len(db.items)),
	}
	n := len(db.trans)
	for pos, it := range idx.Items {
		idx.ItemPos[it] = pos
	}
	// Two passes: count each item's occurrences, then build its tidset
	// directly in its final representation — sparse id lists for
	// low-density items, dense words otherwise. On a high-n sparse
	// database (e.g. the 10⁶-transaction Quest preset) this avoids ever
	// materializing |items|·n/8 bytes of mostly-empty words.
	counts := make([]int, len(idx.Items))
	for _, t := range db.trans {
		for _, it := range t.Items {
			counts[idx.ItemPos[it]]++
		}
	}
	sparseIDs := make(map[itemset.Item][]uint32)
	for pos, it := range idx.Items {
		if bitset.ShouldCompact(counts[pos], n) {
			sparseIDs[it] = make([]uint32, 0, counts[pos])
		} else {
			idx.Tidsets[it] = bitset.New(n)
		}
	}
	for tid, t := range db.trans {
		for _, it := range t.Items {
			if ids, ok := sparseIDs[it]; ok {
				if len(ids) == 0 || ids[len(ids)-1] != uint32(tid) {
					sparseIDs[it] = append(ids, uint32(tid))
				}
				continue
			}
			idx.Tidsets[it].Set(tid)
		}
	}
	for it, ids := range sparseIDs {
		idx.Tidsets[it] = bitset.NewSparse(n, ids)
	}
	idx.AllTrans = bitset.New(n)
	idx.AllTrans.SetAll()
	return idx
}

// TidsetOf intersects the per-item tidsets to produce the tidset of an
// arbitrary itemset. The empty itemset maps to all transactions.
func (ix *Index) TidsetOf(x itemset.Itemset) *bitset.Bitset {
	out := ix.AllTrans.Clone()
	for _, it := range x {
		ts, ok := ix.Tidsets[it]
		if !ok {
			out.Reset()
			return out
		}
		bitset.AndInto(out, out, ts)
	}
	return out
}

// ProbsOf returns the existence probabilities of the transactions in ts, in
// ascending tid order. sup(X) is the Poisson-binomial sum of Bernoulli
// draws with these parameters.
func (ix *Index) ProbsOf(ts *bitset.Bitset) []float64 {
	out := make([]float64, 0, ts.Count())
	ts.ForEach(func(tid int) bool {
		out = append(out, ix.DB.trans[tid].Prob)
		return true
	})
	return out
}

// Stats summarizes a database in the shape of the paper's Table VIII.
type Stats struct {
	NumTransactions int
	NumItems        int
	AvgLength       float64
	MaxLength       int
	MeanProb        float64
}

// Stats computes dataset characteristics.
func (db *DB) Stats() Stats {
	s := Stats{NumTransactions: len(db.trans), NumItems: len(db.items)}
	totalLen := 0
	totalProb := 0.0
	for _, t := range db.trans {
		l := len(t.Items)
		totalLen += l
		if l > s.MaxLength {
			s.MaxLength = l
		}
		totalProb += t.Prob
	}
	if len(db.trans) > 0 {
		s.AvgLength = float64(totalLen) / float64(len(db.trans))
		s.MeanProb = totalProb / float64(len(db.trans))
	}
	return s
}

// PaperExample returns the uncertain database of the paper's Table II
// (items a=0, b=1, c=2, d=3). It is the running example and the canonical
// test oracle: with min_sup = 2, Pr_FC({a b c}) = 0.8754 and
// Pr_FC({a b c d}) = 0.81.
func PaperExample() *DB {
	a, b, c, d := itemset.Item(0), itemset.Item(1), itemset.Item(2), itemset.Item(3)
	return MustNewDB([]Transaction{
		{Items: itemset.New(a, b, c, d), Prob: 0.9}, // T1
		{Items: itemset.New(a, b, c), Prob: 0.6},    // T2
		{Items: itemset.New(a, b, c), Prob: 0.7},    // T3
		{Items: itemset.New(a, b, c, d), Prob: 0.9}, // T4
	})
}

// PaperExampleExtended returns the paper's Table IV database (Table II plus
// T5 = {a b} p=0.4 and T6 = {a} p=0.4), used to contrast the probabilistic-
// support definition of related work with the paper's semantics.
func PaperExampleExtended() *DB {
	a, b := itemset.Item(0), itemset.Item(1)
	base := PaperExample()
	trans := append(base.transactions(),
		Transaction{Items: itemset.New(a, b), Prob: 0.4},
		Transaction{Items: itemset.New(a), Prob: 0.4},
	)
	return MustNewDB(trans)
}

func (db *DB) transactions() []Transaction {
	out := make([]Transaction, len(db.trans))
	copy(out, db.trans)
	return out
}

// Transactions returns a copy of all tuples.
func (db *DB) Transactions() []Transaction { return db.transactions() }

// Certain reports whether every tuple has probability exactly 1, i.e. the
// database is an ordinary exact transaction database.
func (db *DB) Certain() bool {
	for _, t := range db.trans {
		if t.Prob != 1 {
			return false
		}
	}
	return true
}
