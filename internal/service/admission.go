package service

import (
	"math"
	"sync"
	"time"
)

// TenantHeader names the request header that attributes a submission to a
// tenant for quota accounting. Absent or empty means the shared default
// tenant — quotas still apply, so an anonymous flood cannot starve the pool.
const TenantHeader = "X-Pfcim-Tenant"

const defaultTenant = "default"

// maxTenantBuckets bounds the tenant table so unbounded tenant-name
// cardinality (malicious or buggy clients minting fresh names per request)
// cannot grow memory without limit. Full (= idle) buckets are evicted
// first; evicting one only forgets that the tenant was idle, which is the
// state a brand-new bucket starts in anyway, so eviction never grants or
// steals tokens.
const maxTenantBuckets = 4096

// admission is the per-tenant token-bucket gate in front of the job queue:
// each tenant accrues rate tokens per second up to burst, and a submission
// spends one. It shapes sustained load per tenant; the bounded queue depth
// behind it still caps the daemon's total backlog.
type admission struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	now     func() time.Time // test seam
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// newAdmission builds the gate; rate ≤ 0 disables quotas (nil gate).
func newAdmission(rate float64, burst int) *admission {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		// A burst below the rate would shed inside the first second even at
		// the allowed pace; default to one second's worth, minimum 1.
		burst = int(math.Max(1, math.Ceil(rate)))
	}
	return &admission{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*tokenBucket),
		now:     time.Now,
	}
}

// allow spends one token from tenant's bucket. When the bucket is empty it
// reports how long until the next token accrues, so the 429 can carry a
// meaningful retry hint.
func (a *admission) allow(tenant string) (ok bool, retryAfter time.Duration) {
	if tenant == "" {
		tenant = defaultTenant
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	b := a.buckets[tenant]
	if b == nil {
		if len(a.buckets) >= maxTenantBuckets {
			a.evictIdleLocked(now)
		}
		b = &tokenBucket{tokens: a.burst, last: now}
		a.buckets[tenant] = b
	}
	b.tokens = math.Min(a.burst, b.tokens+now.Sub(b.last).Seconds()*a.rate)
	b.last = now
	if b.tokens < 1 {
		return false, time.Duration((1 - b.tokens) / a.rate * float64(time.Second))
	}
	b.tokens--
	return true, 0
}

// evictIdleLocked drops buckets that have refilled to (near) full — idle
// tenants whose state a fresh bucket reproduces — and, if every tenant is
// somehow active at the cap, the stalest bucket as a last resort.
func (a *admission) evictIdleLocked(now time.Time) {
	var stalest string
	var stalestAt time.Time
	for name, b := range a.buckets {
		idle := math.Min(a.burst, b.tokens+now.Sub(b.last).Seconds()*a.rate) >= a.burst-1e-9
		if idle {
			delete(a.buckets, name)
			continue
		}
		if stalest == "" || b.last.Before(stalestAt) {
			stalest, stalestAt = name, b.last
		}
	}
	if len(a.buckets) >= maxTenantBuckets && stalest != "" {
		delete(a.buckets, stalest)
	}
}

// tenants returns the number of tracked tenant buckets.
func (a *admission) tenants() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.buckets)
}
