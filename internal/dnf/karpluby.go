package dnf

import (
	"fmt"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/poibin"
)

// KarpLuby estimates Pr(C_1 ∪ … ∪ C_m) by coverage sampling (the
// ApproxFCP sampler of the paper's Fig. 2): each sample draws a clause C_i
// with probability Pr(C_i)/Z, then a possible world conditioned on C_i, and
// scores iff i is the smallest index of a clause the world satisfies. The
// estimate is Z · hits / N.
//
// A world conditioned on C_i forces Base\B_i absent and draws the tids of
// B_i from the Poisson-binomial law conditioned on "≥ MinSup present"
// (poibin.CondSampler). Because every present tid then lies inside B_i,
// clause C_j is satisfied by the sample exactly when the present set is a
// subset of B_j, which keeps the per-sample check to m bitset subset tests.
//
// clauseProbs must be the exact Pr(C_i) values (e.g. Sums.Clause). The
// estimator is unbiased; with nSamples = SampleSize(m, ε, δ) it is an
// (ε, δ) additive approximation.
func (s *System) KarpLuby(rng *poibin.SM64, clauseProbs []float64, nSamples int) (float64, error) {
	m := len(s.Clauses)
	if len(clauseProbs) != m {
		return 0, fmt.Errorf("dnf: KarpLuby got %d clause probs for %d clauses", len(clauseProbs), m)
	}
	if m == 0 || nSamples <= 0 {
		return 0, nil
	}
	z := 0.0
	for _, p := range clauseProbs {
		z += p
	}
	if z == 0 {
		return 0, nil
	}

	// Allocate each clause its multinomial share of the sample budget up
	// front so that one conditional sampler per clause serves all of that
	// clause's draws.
	counts := multinomial(rng, nSamples, clauseProbs, z)

	hits := 0
	present := bitset.New(s.Base.Len())
	words := present.DenseWords()
	for i, ni := range counts {
		if ni == 0 {
			continue
		}
		bi := s.Clauses[i]
		tids := bi.Indices()
		probs := make([]float64, len(tids))
		for t, tid := range tids {
			probs[t] = s.Probs[tid]
		}
		cs, err := poibin.NewCondSampler(probs, s.MinSup)
		if err != nil {
			// Pr(C_i) > 0 guarantees the constraint is satisfiable; a
			// failure here indicates an inconsistent clause system.
			return 0, fmt.Errorf("dnf: clause %d: %w", i, err)
		}
		for k := 0; k < ni; k++ {
			for w := range words {
				words[w] = 0
			}
			cs.SampleWords(rng, tids, words)
			if s.minSatisfied(present, clauseProbs) == i {
				hits++
			}
		}
	}
	est := z * float64(hits) / float64(nSamples)
	if est > 1 {
		est = 1
	}
	return est, nil
}

// minSatisfied returns the smallest clause index whose event holds for the
// sampled present-set, or -1 if none does (impossible for a correctly
// conditioned sample, but handled defensively). Clauses with zero
// probability can never be satisfied and are skipped.
func (s *System) minSatisfied(present *bitset.Bitset, clauseProbs []float64) int {
	for j, bj := range s.Clauses {
		if clauseProbs[j] == 0 {
			continue
		}
		if bitset.IsSubset(present, bj) {
			return j
		}
	}
	return -1
}

// multinomial splits n samples across clauses proportionally to
// clauseProbs/z by drawing each sample's clause index independently.
func multinomial(rng *poibin.SM64, n int, clauseProbs []float64, z float64) []int {
	cum := make([]float64, len(clauseProbs))
	acc := 0.0
	for i, p := range clauseProbs {
		acc += p / z
		cum[i] = acc
	}
	counts := make([]int, len(clauseProbs))
	for k := 0; k < n; k++ {
		u := rng.Float64()
		// Binary search over the cumulative weights.
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		counts[lo]++
	}
	return counts
}
