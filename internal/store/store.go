// Package store is pfcimd's durable tier: a disk-backed, content-addressed
// store for dataset lineages and mined results. Everything it holds is
// immutable-by-key (datasets and results are content-addressed; lineage
// records are replaced atomically), every file is a self-validating
// checksummed segment (see segment.go), and every write follows the
// temp-fsync-rename protocol, so the store is crash-safe by construction:
// a SIGKILL at any instant leaves each entry either fully applied or
// cleanly absent. The fault-injection property test and FuzzStoreOpen pin
// those claims. Caching mined results on disk is sound for the same reason
// the in-memory cache is: mining is deterministic per (dataset content,
// canonical options) — DESIGN §8.3 — so a restored result is
// byte-identical to re-mining.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	manifestName = "MANIFEST.seg"
	manifestKey  = "pfcim-store"
	// schemaVersion is the directory-layout version recorded in the
	// manifest payload; the segment header versions the file format.
	schemaVersion = 1

	dirDatasets = "datasets"
	dirLineages = "lineages"
	dirResults  = "results"
)

// manifestPayload is the manifest segment's JSON body.
type manifestPayload struct {
	Schema int `json:"schema"`
}

// Store is one open store directory. All methods are safe for concurrent
// use.
type Store struct {
	fs     FS
	dir    string
	tmpSeq atomic.Int64 // unique temp-file names under concurrent writes

	mu          sync.Mutex
	datasets    map[string]string // dataset id → file name
	lineages    map[string]string // lineage root → file name
	results     map[string]string // result cache key → file name
	quarantined []string          // files moved aside by Recover
}

// Open opens (creating if absent) the store at dir, validating every
// committed segment. Any invalid segment fails Open with a structured
// *CorruptError or *VersionError — strict mode never guesses. Stray temp
// files from interrupted writes are removed; they are expected crash
// artifacts, not corruption.
func Open(dir string) (*Store, error) { return OpenFS(OS(), dir, true) }

// Recover opens the store tolerantly: invalid segments are moved aside to
// "<name>.corrupt" — never served, never deleted — and recorded in
// Quarantined. The daemon opens its store this way so one damaged entry
// costs that entry, not startup.
func Recover(dir string) (*Store, error) { return OpenFS(OS(), dir, false) }

// OpenFS is Open/Recover over an explicit filesystem (the test seam).
func OpenFS(fs FS, dir string, strict bool) (*Store, error) {
	s := &Store{
		fs:       fs,
		dir:      dir,
		datasets: map[string]string{},
		lineages: map[string]string{},
		results:  map[string]string{},
	}
	for _, d := range []string{dir, join(dir, dirDatasets), join(dir, dirLineages), join(dir, dirResults)} {
		if err := fs.MkdirAll(d); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	// Sweep interrupted manifest writes in the root (scanDir handles the
	// kind subdirectories).
	if names, err := fs.ReadDir(dir); err == nil {
		for _, name := range names {
			if strings.HasSuffix(name, tmpSuffix) {
				fs.Remove(join(dir, name))
			}
		}
	}
	if err := s.openManifest(strict); err != nil {
		return nil, err
	}
	for _, sub := range []struct {
		dir  string
		kind Kind
		idx  map[string]string
	}{
		{dirDatasets, KindDataset, s.datasets},
		{dirLineages, KindLineage, s.lineages},
		{dirResults, KindResult, s.results},
	} {
		if err := s.scanDir(sub.dir, sub.kind, sub.idx, strict); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// openManifest validates (or initializes) the store marker. A directory
// with segments but no manifest is rejected in strict mode: it means the
// commit point of initialization was never reached or the marker was lost,
// either way the layout is unaccounted for.
func (s *Store) openManifest(strict bool) error {
	path := join(s.dir, manifestName)
	data, err := s.fs.ReadFile(path)
	switch {
	case err == nil:
		kind, key, payload, derr := decodeSegment(path, data)
		if derr == nil && (kind != KindManifest || key != manifestKey) {
			derr = &CorruptError{Path: path, Reason: fmt.Sprintf("manifest has kind %s key %q", kind, key)}
		}
		var m manifestPayload
		if derr == nil {
			if jerr := json.Unmarshal(payload, &m); jerr != nil {
				derr = &CorruptError{Path: path, Reason: "manifest payload is not valid JSON"}
			} else if m.Schema != schemaVersion {
				derr = &VersionError{Path: path, Version: uint32(m.Schema)}
			}
		}
		if derr == nil {
			return nil
		}
		if strict {
			return derr
		}
		if qerr := s.quarantine(s.dir, manifestName); qerr != nil {
			return qerr
		}
		return s.writeManifest()
	default:
		// No manifest. An empty store initializes; a populated one without
		// its marker is suspicious in strict mode.
		if strict {
			for _, sub := range []string{dirDatasets, dirLineages, dirResults} {
				names, _ := s.fs.ReadDir(join(s.dir, sub))
				for _, name := range names {
					if strings.HasSuffix(name, ".seg") {
						return &CorruptError{Path: path, Reason: fmt.Sprintf("manifest missing but %s/%s exists", sub, name)}
					}
				}
			}
		}
		return s.writeManifest()
	}
}

func (s *Store) writeManifest() error {
	payload, err := json.Marshal(manifestPayload{Schema: schemaVersion})
	if err != nil {
		return err
	}
	return s.write(s.dir, manifestName, KindManifest, manifestKey, payload)
}

// scanDir sweeps temp files, validates every segment, and indexes keys.
func (s *Store) scanDir(sub string, kind Kind, idx map[string]string, strict bool) error {
	dir := join(s.dir, sub)
	names, err := s.fs.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: open %s: %w", dir, err)
	}
	sort.Strings(names)
	for _, name := range names {
		path := join(dir, name)
		if strings.HasSuffix(name, tmpSuffix) {
			// An interrupted write's temp file: the entry was never
			// committed, so removing it is the correct recovery.
			s.fs.Remove(path)
			continue
		}
		if !strings.HasSuffix(name, ".seg") {
			continue // quarantined .corrupt files and foreign debris
		}
		gotKind, key, _, err := readSegment(s.fs, path)
		if err == nil && gotKind != kind {
			err = &CorruptError{Path: path, Reason: fmt.Sprintf("segment kind %s in the %s directory", gotKind, sub)}
		}
		if err == nil {
			if prev, dup := idx[key]; dup {
				err = &CorruptError{Path: path, Reason: fmt.Sprintf("key %q already held by %s", key, prev)}
			}
		}
		if err != nil {
			if strict {
				return err
			}
			if qerr := s.quarantine(dir, name); qerr != nil {
				return qerr
			}
			continue
		}
		idx[key] = name
	}
	return nil
}

// quarantine moves a damaged file aside so it is never served but stays
// available for forensics.
func (s *Store) quarantine(dir, name string) error {
	path := join(dir, name)
	if err := s.fs.Rename(path, path+".corrupt"); err != nil {
		return fmt.Errorf("store: quarantine %s: %w", path, err)
	}
	s.mu.Lock()
	s.quarantined = append(s.quarantined, path)
	s.mu.Unlock()
	return nil
}

// write persists one segment under a collision-free temp name.
func (s *Store) write(dir, name string, kind Kind, key string, payload []byte) error {
	data := encodeSegment(kind, key, payload)
	final := join(dir, name)
	tmp := fmt.Sprintf("%s.%d%s", final, s.tmpSeq.Add(1), tmpSuffix)
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: write %s: %w", final, err)
	}
	cleanup := func(err error) error {
		s.fs.Remove(tmp) // best effort; Open sweeps stray temps anyway
		return fmt.Errorf("store: write %s: %w", final, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return cleanup(err)
	}
	if err := s.fs.SyncDir(dir); err != nil {
		return fmt.Errorf("store: write %s: %w", final, err)
	}
	return nil
}

// get reads and re-validates one indexed entry. Validation happens on
// every read, not just at Open: an entry that rots after startup is
// rejected, never served.
func (s *Store) get(sub string, kind Kind, idx map[string]string, key string) ([]byte, bool, error) {
	s.mu.Lock()
	name, ok := idx[key]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	path := join(s.dir, sub, name)
	gotKind, gotKey, payload, err := readSegment(s.fs, path)
	if err != nil {
		return nil, false, err
	}
	if gotKind != kind || gotKey != key {
		return nil, false, &CorruptError{Path: path,
			Reason: fmt.Sprintf("segment holds (%s, %q), index expected (%s, %q)", gotKind, gotKey, kind, key)}
	}
	return payload, true, nil
}

func (s *Store) put(sub string, kind Kind, idx map[string]string, key, name string, payload []byte) error {
	if err := s.write(join(s.dir, sub), name, kind, key, payload); err != nil {
		return err
	}
	s.mu.Lock()
	idx[key] = name
	s.mu.Unlock()
	return nil
}

// PutDataset stores one dataset version's canonical text serialization
// under its content hash. Rewriting an existing id is idempotent (the
// content is the same by definition of the key).
func (s *Store) PutDataset(id string, text []byte) error {
	return s.put(dirDatasets, KindDataset, s.datasets, id, id+".seg", text)
}

// GetDataset returns the dataset version's serialized form.
func (s *Store) GetDataset(id string) ([]byte, bool, error) {
	return s.get(dirDatasets, KindDataset, s.datasets, id)
}

// PutLineage atomically replaces the lineage record for root. The lineage
// record is the commit point of registration and append: a dataset segment
// not referenced by any lineage record is invisible to restore, so the
// two-step write (dataset, then lineage) is all-or-nothing at this write.
func (s *Store) PutLineage(root string, record []byte) error {
	return s.put(dirLineages, KindLineage, s.lineages, root, root+".seg", record)
}

// GetLineage returns one lineage record.
func (s *Store) GetLineage(root string) ([]byte, bool, error) {
	return s.get(dirLineages, KindLineage, s.lineages, root)
}

// Lineages returns every lineage record, keyed by root, in one read pass.
func (s *Store) Lineages() (map[string][]byte, error) {
	s.mu.Lock()
	roots := make([]string, 0, len(s.lineages))
	for root := range s.lineages {
		roots = append(roots, root)
	}
	s.mu.Unlock()
	sort.Strings(roots)
	out := make(map[string][]byte, len(roots))
	for _, root := range roots {
		rec, ok, err := s.GetLineage(root)
		if err != nil {
			return nil, err
		}
		if ok {
			out[root] = rec
		}
	}
	return out, nil
}

// resultName derives a result segment's file name from its cache key (the
// key itself holds spaces and a newline, so it cannot be a file name). The
// binding is advisory: the authoritative key is the one inside the
// checksummed segment.
func resultName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16]) + ".seg"
}

// PutResult stores one mined result's wire form under its cache key
// (dataset id + canonical options key).
func (s *Store) PutResult(key string, payload []byte) error {
	return s.put(dirResults, KindResult, s.results, key, resultName(key), payload)
}

// GetResult returns the stored result for key, re-validating the segment.
func (s *Store) GetResult(key string) ([]byte, bool, error) {
	return s.get(dirResults, KindResult, s.results, key)
}

// ResultKeys lists every stored result key in sorted order.
func (s *Store) ResultKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.results))
	for k := range s.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DatasetIDs lists every stored dataset id in sorted order.
func (s *Store) DatasetIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.datasets))
	for id := range s.datasets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Quarantined lists the files Recover moved aside (empty after a strict
// Open by definition).
func (s *Store) Quarantined() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.quarantined...)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Counts reports how many entries of each kind the store holds.
func (s *Store) Counts() (datasets, lineages, results int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.datasets), len(s.lineages), len(s.results)
}
