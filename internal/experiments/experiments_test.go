package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

// tinySuite builds a suite small enough that the whole experiment matrix
// runs in a couple of seconds.
func tinySuite(buf *bytes.Buffer) *Suite {
	return NewSuite(Config{
		MushroomScale: 0.015, // ~122 transactions
		QuestScale:    0.003,
		Seed:          1,
		Budget:        2 * time.Second,
		Quick:         true,
		Out:           buf,
	})
}

func TestSuiteDefaults(t *testing.T) {
	s := NewSuite(Config{Out: nil})
	if s.Cfg.PFCT != 0.8 || s.Cfg.Epsilon != 0.1 || s.Cfg.Delta != 0.1 {
		t.Errorf("defaults wrong: %+v", s.Cfg)
	}
	if s.Mushroom.DB.N() == 0 || s.Quest.DB.N() == 0 {
		t.Error("datasets not generated")
	}
	if s.Mushroom.DefaultMinSup != 0.4 || s.Quest.DefaultMinSup != 0.3 {
		t.Error("paper default min_sups wrong")
	}
}

func TestExample1Output(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf)
	if err := s.Example1(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table II", "Table III", "PW16",
		"{a b c}", "{a b c d}", "0.8754", "0.8100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Example1 output missing %q\n%s", want, out)
		}
	}
}

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf)
	if err := s.Table7(); err != nil {
		t.Fatal(err)
	}
	if err := s.Table8(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MPFCI-NoBound", "BFS", "Mushroom-like", "T20I10D30KP40"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables output missing %q", want)
		}
	}
}

func TestFig5Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	var buf bytes.Buffer
	s := tinySuite(&buf)
	if err := s.Fig5(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Naive") {
		t.Error("Fig5 output missing Naive column")
	}
}

func TestFig10And11Run(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	var buf bytes.Buffer
	s := tinySuite(&buf)
	if err := s.Fig10(); err != nil {
		t.Fatal(err)
	}
	if err := s.Fig11(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"PFCI/PFI", "precision", "recall"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf)
	if err := s.Run("table7"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run("nonsense"); err == nil {
		t.Error("unknown experiment name should fail")
	}
}

func TestSeriesRunnerBudget(t *testing.T) {
	sr := newSeriesRunner(time.Millisecond)
	cell, err := sr.run("s", func() (time.Duration, error) { return 5 * time.Millisecond, nil })
	if err != nil || cell == ">budget" {
		t.Fatalf("first run should execute: %q, %v", cell, err)
	}
	cell, err = sr.run("s", func() (time.Duration, error) {
		t.Fatal("second run should have been skipped")
		return 0, nil
	})
	if err != nil || cell != ">budget" {
		t.Fatalf("second run should be skipped: %q, %v", cell, err)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond:  "500µs",
		2500 * time.Microsecond: "2.5ms",
		1500 * time.Millisecond: "1.50s",
	}
	for d, want := range cases {
		if got := formatDuration(d); got != want {
			t.Errorf("formatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestExtraRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	var buf bytes.Buffer
	s := tinySuite(&buf)
	if err := s.Run("extra"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"parallel DFS scaling", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("extra output missing %q", want)
		}
	}
}

func TestFig4Trace(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf)
	if err := s.Run("fig4"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"visit {a}", "subset-absorb", "superset-prune", "fcp: 0.8754"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 output missing %q\n%s", want, out)
		}
	}
}

// TestExample1Golden locks the full example1 output — Tables II and III
// with all world probabilities, and the Example 1.2 result — against a
// golden file. Regenerate with:
//
//	go run ./cmd/experiments -exp example1 > internal/experiments/testdata/example1.golden
func TestExample1Golden(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(Config{Seed: 42, Out: &buf})
	if err := s.Example1(); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/example1.golden")
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("example1 output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want)
	}
}
