package core

// Wire forms of Options and Result plus option canonicalization — the
// substrate the pfcimd service (internal/service) builds its HTTP API and
// result cache on. Canonicalization answers "do two option structs request
// the same mining result?"; the JSON forms exist because Options carries an
// io.Writer (Trace) and Result carries internal types, neither of which
// belongs on the wire.

import (
	"fmt"
	"strings"

	"github.com/probdata/pfcim/internal/poibin"
)

// Canonical returns the canonical form of o: validation and defaulting
// applied (exactly as Mine would), and every field that cannot change the
// mined result — Trace, Tracer, Parallelism, SplitDepth, TailMemoEntries,
// Tidsets, all pure execution knobs per DESIGN §8.3 — cleared to the zero
// value. (TailKernel stays: forcing the convolution kernel can change
// results within tolerance, so it is result-affecting.) Two option structs
// with equal canonical forms produce byte-identical result sets, so the
// canonical form (or CanonicalKey, its string rendering) is a sound cache
// key.
func (o Options) Canonical() (Options, error) {
	c, err := o.normalize()
	if err != nil {
		return Options{}, err
	}
	c.Trace = nil
	c.Tracer = nil
	c.Parallelism = 0
	c.SplitDepth = 0
	c.TailMemoEntries = 0
	c.Tidsets = TidsetsAuto
	c.ShardKernel = nil
	return c, nil
}

// CanonicalKey renders the canonical form as a deterministic string listing
// every result-affecting option, suitable as a map key.
func (o Options) CanonicalKey() (string, error) {
	c, err := o.Canonical()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("minsup=%d pfct=%g eps=%g delta=%g seed=%d noch=%t nosuper=%t nosub=%t nobound=%t search=%s maxexact=%d maxpair=%d tailkern=%s shards=%d",
		c.MinSup, c.PFCT, c.Epsilon, c.Delta, c.Seed,
		c.DisableCH, c.DisableSuperset, c.DisableSubset, c.DisableBounds,
		c.Search, c.MaxExactClauses, c.MaxPairClauses, c.TailKernel, c.Shards), nil
}

// OptionsJSON is the wire form of Options: every field except the process-
// local Trace writer and Tracer recorder, with Search as a string. The zero
// value of every field means "use the default", mirroring Options itself,
// so a client may send only min_sup and pfct. (pfcimd attaches its own
// per-job Tracer server-side and serves the profile at
// GET /v1/jobs/{id}/trace.)
type OptionsJSON struct {
	MinSup          int     `json:"min_sup"`
	PFCT            float64 `json:"pfct"`
	Epsilon         float64 `json:"epsilon,omitempty"`
	Delta           float64 `json:"delta,omitempty"`
	Seed            int64   `json:"seed,omitempty"`
	DisableCH       bool    `json:"disable_ch,omitempty"`
	DisableSuperset bool    `json:"disable_superset,omitempty"`
	DisableSubset   bool    `json:"disable_subset,omitempty"`
	DisableBounds   bool    `json:"disable_bounds,omitempty"`
	Search          string  `json:"search,omitempty"`
	MaxExactClauses int     `json:"max_exact_clauses,omitempty"`
	MaxPairClauses  int     `json:"max_pair_clauses,omitempty"`
	Parallelism     int     `json:"parallelism,omitempty"`
	SplitDepth      int     `json:"split_depth,omitempty"`
	TailMemoEntries int     `json:"tail_memo_entries,omitempty"`
	Tidsets         string  `json:"tidsets,omitempty"`
	TailKernel      string  `json:"tail_kernel,omitempty"`
	Shards          int     `json:"shards,omitempty"`
}

// JSON converts o to its wire form (Trace and Tracer are dropped).
func (o Options) JSON() OptionsJSON {
	search := ""
	if o.Search == BFS {
		search = "BFS"
	}
	tidsets := ""
	if o.Tidsets != TidsetsAuto {
		tidsets = o.Tidsets.String()
	}
	tailKernel := ""
	if o.TailKernel != poibin.KernelAuto {
		tailKernel = o.TailKernel.String()
	}
	return OptionsJSON{
		MinSup:          o.MinSup,
		PFCT:            o.PFCT,
		Epsilon:         o.Epsilon,
		Delta:           o.Delta,
		Seed:            o.Seed,
		DisableCH:       o.DisableCH,
		DisableSuperset: o.DisableSuperset,
		DisableSubset:   o.DisableSubset,
		DisableBounds:   o.DisableBounds,
		Search:          search,
		MaxExactClauses: o.MaxExactClauses,
		MaxPairClauses:  o.MaxPairClauses,
		Parallelism:     o.Parallelism,
		SplitDepth:      o.SplitDepth,
		TailMemoEntries: o.TailMemoEntries,
		Tidsets:         tidsets,
		TailKernel:      tailKernel,
		Shards:          o.Shards,
	}
}

// Options converts the wire form back; an unknown Search string is an
// error. Validation of the numeric fields is left to Mine's normalization.
func (oj OptionsJSON) Options() (Options, error) {
	var search Search
	switch strings.ToUpper(strings.TrimSpace(oj.Search)) {
	case "", "DFS":
		search = DFS
	case "BFS":
		search = BFS
	default:
		return Options{}, fmt.Errorf("core: unknown search framework %q (want \"DFS\" or \"BFS\")", oj.Search)
	}
	var tidsets TidsetMode
	switch strings.ToLower(strings.TrimSpace(oj.Tidsets)) {
	case "", "auto":
		tidsets = TidsetsAuto
	case "dense":
		tidsets = TidsetsDense
	case "compressed":
		tidsets = TidsetsCompressed
	default:
		return Options{}, fmt.Errorf("core: unknown tidset mode %q (want \"auto\", \"dense\" or \"compressed\")", oj.Tidsets)
	}
	var tailKernel poibin.Kernel
	switch strings.ToLower(strings.TrimSpace(oj.TailKernel)) {
	case "", "auto":
		tailKernel = poibin.KernelAuto
	case "dp":
		tailKernel = poibin.KernelDP
	case "conv":
		tailKernel = poibin.KernelConv
	default:
		return Options{}, fmt.Errorf("core: unknown tail kernel %q (want \"auto\", \"dp\" or \"conv\")", oj.TailKernel)
	}
	return Options{
		MinSup:          oj.MinSup,
		PFCT:            oj.PFCT,
		Epsilon:         oj.Epsilon,
		Delta:           oj.Delta,
		Seed:            oj.Seed,
		DisableCH:       oj.DisableCH,
		DisableSuperset: oj.DisableSuperset,
		DisableSubset:   oj.DisableSubset,
		DisableBounds:   oj.DisableBounds,
		Search:          search,
		MaxExactClauses: oj.MaxExactClauses,
		MaxPairClauses:  oj.MaxPairClauses,
		Parallelism:     oj.Parallelism,
		SplitDepth:      oj.SplitDepth,
		TailMemoEntries: oj.TailMemoEntries,
		Tidsets:         tidsets,
		TailKernel:      tailKernel,
		Shards:          oj.Shards,
	}, nil
}

// ResultItemJSON is the wire form of one mined itemset.
type ResultItemJSON struct {
	Items    []int   `json:"items"`
	Prob     float64 `json:"prob"`
	Lower    float64 `json:"lower"`
	Upper    float64 `json:"upper"`
	FreqProb float64 `json:"freq_prob"`
	Method   string  `json:"method"`
}

// ResultJSON is the wire form of a full mining result. Result.Profile is
// deliberately excluded: the wire form must be deterministic per (database,
// canonical options) to be cacheable, and wall-time profiles never are —
// the daemon serves them separately per job.
type ResultJSON struct {
	Itemsets []ResultItemJSON `json:"itemsets"`
	Stats    Stats            `json:"stats"`
	Options  OptionsJSON      `json:"options"`
}

// JSON converts the result to its wire form. Itemsets appear in the
// result's (lexicographic) order, so the wire form is deterministic per
// (database, canonical options).
func (r *Result) JSON() ResultJSON {
	items := make([]ResultItemJSON, len(r.Itemsets))
	for i, ri := range r.Itemsets {
		items[i] = ri.JSON()
	}
	return ResultJSON{Itemsets: items, Stats: r.Stats, Options: r.Options.JSON()}
}

// JSON converts one mined itemset to its wire form.
func (ri ResultItem) JSON() ResultItemJSON {
	ints := make([]int, len(ri.Items))
	for j, it := range ri.Items {
		ints[j] = int(it)
	}
	return ResultItemJSON{
		Items:    ints,
		Prob:     ri.Prob,
		Lower:    ri.Lower,
		Upper:    ri.Upper,
		FreqProb: ri.FreqProb,
		Method:   ri.Method.String(),
	}
}
