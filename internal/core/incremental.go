package core

import (
	"context"
	"fmt"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// Incremental mining (DESIGN §15): re-mining a window that changed by a few
// transactions repeats almost all of the previous enumeration. A node X is
// *unaffected* by a delta batch when no added or evicted transaction
// contains X — then the set of window transactions holding X is unchanged,
// and everything the subtree under X computes is a function of exactly
// those transactions, read in their (preserved) arrival order: the child
// tidsets and counts, the Poisson-binomial fold order, the extension-event
// clauses and absence products of the checking cascade (all restricted to
// tids(X)), the Lemma 4.1/4.2/4.3 prune decisions, and the per-node RNG
// seeds (content-derived, rng.go). The candidate list itself may gain or
// lose items between rounds, but never in a way an unaffected subtree can
// observe: a dropped candidate's extensions were already freq-pruned last
// round (Pr_F(X+e) ≤ Pr_F({e}) ≤ pfct by anti-monotonicity), and any
// candidate that would superset-prune an unaffected X this round had
// Pr_F > pfct last round too (tids(c) ⊇ tids(X) forces it). So replaying an
// unaffected subtree's recorded emissions is bit-identical to re-running
// it — MineIncremental returns byte-identical Itemsets to a from-scratch
// Mine of the same snapshot, which the crosscheck StreamEquivalence
// invariant pins.
//
// The cache stores one entry per enumeration node keyed by the itemset's
// canonical key: the node's own emitted ResultItem (if accepted) plus the
// keys of the children it descended into. A splice walks the link structure,
// re-emits every stored item, and migrates the subtree's entries into the
// current round so granular reuse survives arbitrarily many rounds. Final
// result order is re-sorted by itemset.Compare after every mine, so replay
// order never matters.

// ReuseCache carries per-node subtree emissions from one incremental mine
// to the next. It is single-goroutine state (incremental runs force the
// serial DFS path); create one per live window with NewReuseCache.
type ReuseCache struct {
	prev map[string]*reuseEntry // validated by the last successful mine
	cur  map[string]*reuseEntry // being recorded by the current mine

	// Candidate-phase decisions, keyed by item. The phase computes one
	// Poisson-binomial tail per sufficiently-supported item every round —
	// the fixed per-round floor of a from-scratch mine — but an unaffected
	// item's tidset holds the same transactions read in the same arrival
	// order, so its count, Chernoff-Hoeffding bound, exact Pr_F, and the
	// resulting keep/prune decision all replay bit-identically.
	candPrev map[itemset.Item]candEntry
	candCur  map[itemset.Item]candEntry

	affected func(itemset.Itemset) bool
	frames   []reuseFrame
	stack    []string // splice walk scratch
}

// Candidate-phase outcomes recorded for replay.
const (
	candKept       = iota // survived: cnt and prF are valid
	candCHPruned          // cut by the Chernoff-Hoeffding bound
	candFreqPruned        // cut by exact Pr_F ≤ pfct
)

// candEntry is one item's recorded candidate-phase decision.
type candEntry struct {
	outcome int
	cnt     int
	prF     float64
}

// reuseEntry is the recorded state of one enumeration node: its own
// accepted result (nil when the node emitted nothing) and the keys of the
// child nodes it descended into.
type reuseEntry struct {
	own      *ResultItem
	children []string
}

// reuseFrame is one open node during recording.
type reuseFrame struct {
	key      string
	children []string
}

// NewReuseCache returns an empty cache; the first mine through it records
// every node and reuses nothing.
func NewReuseCache() *ReuseCache {
	return &ReuseCache{
		prev:     map[string]*reuseEntry{},
		cur:      map[string]*reuseEntry{},
		candPrev: map[itemset.Item]candEntry{},
		candCur:  map[itemset.Item]candEntry{},
	}
}

// Reset drops all recorded state: the next mine runs fully from scratch.
// Call after a failed or cancelled mine — recording stops at the error
// point, so the partial round must not seed the next one.
func (r *ReuseCache) Reset() {
	r.prev = map[string]*reuseEntry{}
	r.cur = map[string]*reuseEntry{}
	r.candPrev = map[itemset.Item]candEntry{}
	r.candCur = map[itemset.Item]candEntry{}
	r.frames = r.frames[:0]
}

// advance promotes the just-recorded round to be the reuse source of the
// next one.
func (r *ReuseCache) advance() {
	r.prev = r.cur
	r.cur = make(map[string]*reuseEntry, len(r.prev))
	r.candPrev = r.candCur
	r.candCur = make(map[itemset.Item]candEntry, len(r.candPrev))
	r.frames = r.frames[:0]
}

// candidateReuse replays item e's recorded candidate-phase decision when e
// is unaffected by the delta batch. The second return reports whether a
// recorded decision applied.
func (r *ReuseCache) candidateReuse(e itemset.Item, scratch itemset.Itemset) (candEntry, bool) {
	ce, ok := r.candPrev[e]
	if !ok {
		return candEntry{}, false
	}
	scratch[0] = e
	if r.affected == nil || r.affected(scratch) {
		// nil means "everything changed" (recording-only round).
		return candEntry{}, false
	}
	r.candCur[e] = ce
	return ce, true
}

// recordCandidate records item e's candidate-phase decision for the next
// round.
func (r *ReuseCache) recordCandidate(e itemset.Item, ce candEntry) {
	r.candCur[e] = ce
}

// linkChild registers key as a child of the node currently being recorded.
func (r *ReuseCache) linkChild(key string) {
	if n := len(r.frames); n > 0 {
		r.frames[n-1].children = append(r.frames[n-1].children, key)
	}
}

// splice re-emits the cached subtree rooted at key into the miner's result
// set and migrates its entries into the current round.
func (r *ReuseCache) splice(m *miner, key string) {
	m.stats.SubtreesReused++
	r.stack = append(r.stack[:0], key)
	for len(r.stack) > 0 {
		k := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		e := r.prev[k]
		r.cur[k] = e
		if e.own != nil {
			ri := *e.own
			ri.Items = ri.Items.Clone()
			m.results = append(m.results, ri)
			m.stats.SplicedResults++
		}
		r.stack = append(r.stack, e.children...)
	}
}

// probFCReuse wraps one enumeration node of an incremental run: splice the
// recorded subtree when the node is unaffected and was seen last round,
// otherwise run the node body and record what it emits.
func (m *miner) probFCReuse(x itemset.Itemset, tids *bitset.Bitset, count int, prF float64, startPos int) error {
	if m.ctx != nil {
		// The node body checks cancellation on entry, but a spliced node
		// never reaches it — keep per-node cancellation granularity even on
		// all-cache rounds.
		if err := m.ctx.Err(); err != nil {
			return err
		}
	}
	r := m.reuse
	key := x.Key()
	if r.affected == nil || !r.affected(x) {
		if _, ok := r.prev[key]; ok {
			r.linkChild(key)
			r.splice(m, key)
			return nil
		}
	}
	r.linkChild(key)
	r.frames = append(r.frames, reuseFrame{key: key})
	resStart := len(m.results)
	err := m.probFCNode(x, tids, count, prF, startPos)
	frame := r.frames[len(r.frames)-1]
	r.frames = r.frames[:len(r.frames)-1]
	if err != nil {
		// Abandoned mid-node: the caller resets the cache, so nothing to
		// record.
		return err
	}
	entry := &reuseEntry{children: frame.children}
	if n := len(m.results); n > resStart {
		// The node's own result, if accepted, is the last append of its
		// subtree (children emit during the extension loop, the node itself
		// after evaluate).
		if last := &m.results[n-1]; itemset.Equal(last.Items, x) {
			ri := *last
			ri.Items = ri.Items.Clone()
			entry.own = &ri
		}
	}
	r.cur[key] = entry
	return nil
}

// MineIncremental is MineContext with subtree reuse: unaffected enumeration
// subtrees — those no changed transaction participates in, per the affected
// callback — are spliced from the cache instead of re-mined, and everything
// mined this round is recorded for the next. Results are byte-identical to
// MineContext on the same database; Stats reflect the work actually done
// (SubtreesReused / SplicedResults count the shortcuts, and the remaining
// counters shrink accordingly).
//
// affected must return true for any itemset contained in at least one
// transaction added or removed since the cache's last successful round; nil
// means "everything changed" for recording-only rounds. The run is forced
// onto the serial DFS path (execution knobs never change results, DESIGN
// §8.3, so this is invisible in the output); BFS search is rejected. On
// error the cache is Reset — the next round mines from scratch.
func MineIncremental(ctx context.Context, db *uncertain.DB, opts Options, cache *ReuseCache, affected func(itemset.Itemset) bool) (*Result, error) {
	if cache == nil {
		return MineContext(ctx, db, opts)
	}
	if opts.Search == BFS {
		return nil, fmt.Errorf("core: incremental mining requires DFS search")
	}
	opts.Parallelism = 1
	cache.affected = affected
	cache.frames = cache.frames[:0]
	res, _, err := mineWithReuse(ctx, db, opts, cache)
	cache.affected = nil
	if err != nil {
		cache.Reset()
		return nil, err
	}
	cache.advance()
	return res, nil
}
