package service

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/shard"
)

// metrics is the daemon's counter set, served by /metrics. The counters are
// expvar vars created per Server rather than published to the global expvar
// registry, so multiple servers (tests, embedding) never collide on
// registration. The handler content-negotiates: Prometheus text exposition
// for scrapers that ask for text/plain, expvar-shaped JSON otherwise.
type metrics struct {
	JobsQueued   expvar.Int // jobs accepted into the queue
	JobsRunning  expvar.Int // jobs currently executing (gauge)
	JobsDone     expvar.Int // jobs finished successfully (cache hits included)
	JobsFailed   expvar.Int // jobs finished with an error, timeout, or panic
	JobsCanceled expvar.Int // jobs canceled by DELETE
	SlowJobs     expvar.Int // jobs that exceeded the slow-job threshold

	CacheHits   expvar.Int // submissions served from the result cache
	CacheMisses expvar.Int // submissions that had to mine

	SweepsDone          expvar.Int // sweep jobs finished successfully
	SweepPointsCached   expvar.Int // sweep grid points answered from the cache at submit
	SweepPointsComputed expvar.Int // sweep grid points the engine had to produce
	SweepEnumerations   expvar.Int // full enumerations sweep jobs actually ran

	DatasetsRegistered expvar.Int // distinct datasets ever registered
	DatasetsAppended   expvar.Int // dataset versions created by append
	WatchedMines       expvar.Int // @latest jobs mined through the incremental engine

	// Distributed-path counters, fed by the shard.Client through the
	// Observer interface the metrics struct implements.
	ShardRetries         expvar.Int // shard RPC attempts that were retried after a failure
	ShardTailEvaluations expvar.Int // worker-side per-shard tail computations
	ShardTailMemoHits    expvar.Int // worker-side per-shard tail memo hits
	ShardPlacements      expvar.Int // dataset shard placements completed

	// Durable-store counters (all zero without -store-dir).
	StoreDatasetsPersisted expvar.Int // dataset versions written through to the store
	StoreLineagesPersisted expvar.Int // lineage records written through to the store
	StoreResultsPersisted  expvar.Int // finished results snapshotted to the store
	StoreRestoredDatasets  expvar.Int // dataset versions restored at startup
	StoreRestoredResults   expvar.Int // results served from disk by cache read-through
	StoreQuarantined       expvar.Int // segments quarantined by recovery at startup
	StoreErrors            expvar.Int // store reads/writes that failed or failed validation

	// Admission-control counters: submissions rejected before touching the
	// queue or the pool.
	JobsShedQueueFull expvar.Int // submissions shed because the queue was full
	JobsShedQuota     expvar.Int // submissions shed by a tenant's token quota

	MineWallMillis expvar.Int // cumulative wall time spent mining

	// Cumulative core.Stats counters across every finished job — the
	// daemon-level view of Fig. 6–9's per-run statistics. Every field of
	// core.Stats is mirrored here; keep the two lists in lockstep.
	NodesVisited    expvar.Int
	CandidateItems  expvar.Int
	CHPruned        expvar.Int
	FreqPruned      expvar.Int
	SupersetPruned  expvar.Int
	SubsetPruned    expvar.Int
	BoundRejected   expvar.Int
	BoundAccepted   expvar.Int
	ExactUnions     expvar.Int
	Sampled         expvar.Int
	SamplesDrawn    expvar.Int
	Evaluated       expvar.Int
	TailEvaluations expvar.Int
	TailMemoHits    expvar.Int
	ClauseEvaluated expvar.Int
	SubtreesReused  expvar.Int
	SplicedResults  expvar.Int
	TasksSpawned    expvar.Int
	TasksStolen     expvar.Int

	// Latency histograms (Prometheus exposition only; the JSON view stays
	// flat counters for backward compatibility).
	jobWall    *obs.Histogram // job wall time, submission kinds pooled
	queueWait  *obs.Histogram // queued → started
	cacheGet   *obs.Histogram // result-cache lookup latency at submit
	sweepCache *obs.Histogram // per-point cache probes at sweep submit
	shardRPC   *obs.Histogram // per-shard RPC attempt latency

	// Per-worker health state, rendered as labeled worker_up and
	// last-probe-age gauges. Removing a worker from the ring deletes its
	// entry so the series disappear instead of freezing at a stale 1.
	workerMu sync.Mutex
	workerUp map[string]workerHealth

	// Per-watched-job round telemetry, labeled by (lineage, options).
	watchMu sync.Mutex
	watch   map[string]*watchMetrics
}

// workerHealth is one shard worker's last probe verdict and when it landed.
type workerHealth struct {
	up      bool
	probeAt time.Time
}

func newMetrics() *metrics {
	return &metrics{
		jobWall:    obs.NewHistogram(obs.JobBuckets),
		queueWait:  obs.NewHistogram(obs.JobBuckets),
		cacheGet:   obs.NewHistogram(obs.LookupBuckets),
		sweepCache: obs.NewHistogram(obs.LookupBuckets),
		shardRPC:   obs.NewHistogram(obs.RPCBuckets),
		workerUp:   map[string]workerHealth{},
		watch:      map[string]*watchMetrics{},
	}
}

// The metrics struct is the shard client's Observer: operational signals
// from the distributed path land directly in the daemon's counter set.
var _ shard.Observer = (*metrics)(nil)

func (m *metrics) ShardRPC(d time.Duration) { m.shardRPC.Observe(d) }
func (m *metrics) ShardRetry()              { m.ShardRetries.Add(1) }

func (m *metrics) WorkerUp(addr string, up bool) {
	m.workerMu.Lock()
	m.workerUp[addr] = workerHealth{up: up, probeAt: time.Now()}
	m.workerMu.Unlock()
}

// WorkerRemoved retires the address's health series: a removed worker must
// drop out of the exposition rather than scrape forever as a stale 1.
func (m *metrics) WorkerRemoved(addr string) {
	m.workerMu.Lock()
	delete(m.workerUp, addr)
	m.workerMu.Unlock()
}

func (m *metrics) ShardEvalStats(evals, memoHits int64) {
	m.ShardTailEvaluations.Add(evals)
	m.ShardTailMemoHits.Add(memoHits)
}

func (m *metrics) PlacementDone(string, int) { m.ShardPlacements.Add(1) }

// workerUpSnapshot returns the health states in address order.
func (m *metrics) workerUpSnapshot() (addrs []string, up map[string]workerHealth) {
	m.workerMu.Lock()
	defer m.workerMu.Unlock()
	up = make(map[string]workerHealth, len(m.workerUp))
	for a, v := range m.workerUp {
		addrs = append(addrs, a)
		up[a] = v
	}
	sort.Strings(addrs)
	return addrs, up
}

// watchMetrics is one watched (lineage, options) stream's round telemetry.
// Counter fields are guarded by the owning metrics' watchMu; the histograms
// are internally atomic.
type watchMetrics struct {
	rounds    int64
	added     int64
	removed   int64
	changed   int64
	unchanged int64
	roundWall *obs.Histogram // incremental round wall time
	reuse     *obs.Histogram // per-round splice reuse ratio in [0, 1]
}

// watchRoundObs is one incremental round's telemetry as reported by a
// watched job after MineContext returns.
type watchRoundObs struct {
	Wall                               time.Duration
	Added, Removed, Changed, Unchanged int64
	ReuseRatio                         float64 // spliced results / round results; 0 for an empty round
}

// observeWatchRound folds one round into the labeled per-stream series.
func (m *metrics) observeWatchRound(label string, r watchRoundObs) {
	m.watchMu.Lock()
	w := m.watch[label]
	if w == nil {
		w = &watchMetrics{
			roundWall: obs.NewHistogram(obs.JobBuckets),
			reuse:     obs.NewHistogram(obs.RatioBuckets),
		}
		m.watch[label] = w
	}
	w.rounds++
	w.added += r.Added
	w.removed += r.Removed
	w.changed += r.Changed
	w.unchanged += r.Unchanged
	m.watchMu.Unlock()
	w.roundWall.Observe(r.Wall)
	w.reuse.ObserveValue(r.ReuseRatio)
}

// watchSnapshot returns the watch labels in order plus their series.
func (m *metrics) watchSnapshot() (labels []string, ws map[string]watchMetrics) {
	m.watchMu.Lock()
	defer m.watchMu.Unlock()
	ws = make(map[string]watchMetrics, len(m.watch))
	for l, w := range m.watch {
		labels = append(labels, l)
		ws[l] = *w
	}
	sort.Strings(labels)
	return labels, ws
}

// addStats accumulates one finished job's mining statistics — the full
// core.Stats counter set, so /metrics exposes every pruning, bounding, and
// scheduling counter the miner tracks.
func (m *metrics) addStats(s core.Stats) {
	m.NodesVisited.Add(int64(s.NodesVisited))
	m.CandidateItems.Add(int64(s.CandidateItems))
	m.CHPruned.Add(int64(s.CHPruned))
	m.FreqPruned.Add(int64(s.FreqPruned))
	m.SupersetPruned.Add(int64(s.SupersetPruned))
	m.SubsetPruned.Add(int64(s.SubsetPruned))
	m.BoundRejected.Add(int64(s.BoundRejected))
	m.BoundAccepted.Add(int64(s.BoundAccepted))
	m.ExactUnions.Add(int64(s.ExactUnions))
	m.Sampled.Add(int64(s.Sampled))
	m.SamplesDrawn.Add(int64(s.SamplesDrawn))
	m.Evaluated.Add(int64(s.Evaluated))
	m.TailEvaluations.Add(int64(s.TailEvaluations))
	m.TailMemoHits.Add(int64(s.TailMemoHits))
	m.ClauseEvaluated.Add(int64(s.ClauseEvaluated))
	m.SubtreesReused.Add(int64(s.SubtreesReused))
	m.SplicedResults.Add(int64(s.SplicedResults))
	m.TasksSpawned.Add(int64(s.TasksSpawned))
	m.TasksStolen.Add(int64(s.TasksStolen))
}

// metricVar is one counter's serving metadata: the flat JSON name, whether
// it is a gauge (everything else is a monotonic Prometheus counter), and
// the HELP line.
type metricVar struct {
	Name  string
	Var   *expvar.Int
	Gauge bool
	Help  string
}

// vars lists every counter with its exported name, in serving order.
func (m *metrics) vars() []metricVar {
	return []metricVar{
		{"jobs_queued", &m.JobsQueued, false, "Jobs accepted into the queue."},
		{"jobs_running", &m.JobsRunning, true, "Jobs currently executing."},
		{"jobs_done", &m.JobsDone, false, "Jobs finished successfully, cache hits included."},
		{"jobs_failed", &m.JobsFailed, false, "Jobs finished with an error, timeout, or panic."},
		{"jobs_canceled", &m.JobsCanceled, false, "Jobs canceled by DELETE."},
		{"slow_jobs", &m.SlowJobs, false, "Jobs whose wall time exceeded the slow-job threshold."},
		{"cache_hits", &m.CacheHits, false, "Submissions served from the result cache."},
		{"cache_misses", &m.CacheMisses, false, "Submissions that had to mine."},
		{"sweeps_done", &m.SweepsDone, false, "Sweep jobs finished successfully."},
		{"sweep_points_cached", &m.SweepPointsCached, false, "Sweep grid points answered from the cache at submit."},
		{"sweep_points_computed", &m.SweepPointsComputed, false, "Sweep grid points the engine had to produce."},
		{"sweep_enumerations", &m.SweepEnumerations, false, "Full enumerations sweep jobs actually ran."},
		{"datasets_registered", &m.DatasetsRegistered, false, "Distinct datasets ever registered."},
		{"datasets_appended", &m.DatasetsAppended, false, "Dataset versions created by append."},
		{"watched_mines", &m.WatchedMines, false, "@latest jobs mined through the incremental engine."},
		{"shard_retries", &m.ShardRetries, false, "Shard RPC attempts retried after a failure."},
		{"shard_tail_evaluations", &m.ShardTailEvaluations, false, "Worker-side per-shard tail computations."},
		{"shard_tail_memo_hits", &m.ShardTailMemoHits, false, "Worker-side per-shard tail memo hits."},
		{"shard_placements", &m.ShardPlacements, false, "Dataset shard placements completed."},
		{"store_datasets_persisted", &m.StoreDatasetsPersisted, false, "Dataset versions written through to the durable store."},
		{"store_lineages_persisted", &m.StoreLineagesPersisted, false, "Lineage records written through to the durable store."},
		{"store_results_persisted", &m.StoreResultsPersisted, false, "Finished results snapshotted to the durable store."},
		{"store_restored_datasets", &m.StoreRestoredDatasets, false, "Dataset versions restored from the store at startup."},
		{"store_restored_results", &m.StoreRestoredResults, false, "Results served from disk by cache read-through."},
		{"store_quarantined", &m.StoreQuarantined, false, "Store segments quarantined by recovery at startup."},
		{"store_errors", &m.StoreErrors, false, "Store operations that failed or failed validation."},
		{"jobs_shed_queue_full", &m.JobsShedQueueFull, false, "Submissions shed because the job queue was full."},
		{"jobs_shed_quota", &m.JobsShedQuota, false, "Submissions shed by a tenant's token quota."},
		{"mine_wall_ms", &m.MineWallMillis, false, "Cumulative wall time spent mining, in milliseconds."},
		{"nodes_visited", &m.NodesVisited, false, "Enumeration-tree nodes visited."},
		{"candidate_items", &m.CandidateItems, false, "Single items that survived the candidate phase."},
		{"ch_pruned", &m.CHPruned, false, "Subtrees pruned by the Chernoff-Hoeffding bound (Lemma 4.1)."},
		{"freq_pruned", &m.FreqPruned, false, "Subtrees pruned as probabilistically infrequent."},
		{"superset_pruned", &m.SupersetPruned, false, "Nodes pruned by the superset condition (Lemma 4.2)."},
		{"subset_pruned", &m.SubsetPruned, false, "Subtrees pruned by the subset condition (Lemma 4.3)."},
		{"bound_rejected", &m.BoundRejected, false, "Candidates rejected by the Pr_FC bounds (Lemma 4.4)."},
		{"bound_accepted", &m.BoundAccepted, false, "Candidates accepted by the Pr_FC bounds (Lemma 4.4)."},
		{"exact_unions", &m.ExactUnions, false, "Extension-event unions resolved by exact inclusion-exclusion."},
		{"sampled", &m.Sampled, false, "Extension-event unions resolved by the Karp-Luby sampler."},
		{"samples_drawn", &m.SamplesDrawn, false, "Monte-Carlo samples drawn across all sampled unions."},
		{"evaluated", &m.Evaluated, false, "Candidates that entered the checking cascade."},
		{"tail_evaluations", &m.TailEvaluations, false, "Poisson-binomial tail computations performed."},
		{"tail_memo_hits", &m.TailMemoHits, false, "Poisson-binomial tails answered from the memo."},
		{"clause_evaluated", &m.ClauseEvaluated, false, "Extension-event clauses (and clause pairs) evaluated."},
		{"subtrees_reused", &m.SubtreesReused, false, "Enumeration subtrees replayed from the incremental reuse cache."},
		{"spliced_results", &m.SplicedResults, false, "Result items emitted by incremental cache replay."},
		{"tasks_spawned", &m.TasksSpawned, false, "Subtree tasks handed to the work-stealing pool."},
		{"tasks_stolen", &m.TasksStolen, false, "Subtree tasks stolen from another worker's deque."},
	}
}

// snapshot returns the current counter values by name.
func (m *metrics) snapshot() map[string]int64 {
	out := make(map[string]int64)
	for _, v := range m.vars() {
		out[v.Name] = v.Var.Value()
	}
	return out
}

// serveHTTP content-negotiates the metrics view: clients that accept
// text/plain (Prometheus scrapers send "text/plain;version=0.0.4" first)
// get the exposition format; everything else gets the original flat JSON,
// so existing dashboards keep working.
func (m *metrics) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r.Header.Get("Accept")) {
		m.servePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m.snapshot())
}

// wantsPrometheus reports whether the Accept header asks for the text
// exposition format. JSON stays the default: only a text/plain,
// OpenMetrics, or text/* preference outranking any JSON preference
// switches. Media ranges are weighted by their q parameter (q=0 excludes a
// range); at equal q a more specific range beats a wildcard, and at equal
// q and specificity the earlier-listed range wins — so the pre-q behavior
// ("application/json listed first wins") is preserved.
func wantsPrometheus(accept string) bool {
	bestQ, bestSpec := -1.0, -1
	prom := false
	for _, part := range strings.Split(accept, ",") {
		fields := strings.Split(part, ";")
		mt := strings.ToLower(strings.TrimSpace(fields[0]))
		q := 1.0
		for _, p := range fields[1:] {
			if v, ok := strings.CutPrefix(strings.TrimSpace(p), "q="); ok {
				if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
					q = f
				}
			}
		}
		if q <= 0 {
			continue
		}
		var isProm bool
		var spec int
		switch mt {
		case "text/plain", "application/openmetrics-text":
			isProm, spec = true, 2
		case "application/json":
			isProm, spec = false, 2
		case "text/*":
			isProm, spec = true, 1
		case "*/*":
			isProm, spec = false, 0 // full wildcard keeps the JSON default
		default:
			continue
		}
		if q > bestQ || (q == bestQ && spec > bestSpec) {
			bestQ, bestSpec, prom = q, spec, isProm
		}
	}
	return prom
}

// servePrometheus renders every counter, gauge, and histogram in the
// Prometheus text exposition format 0.0.4, under the pfcimd_ namespace.
// Monotonic counters get the conventional _total suffix.
func (m *metrics) servePrometheus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	for _, v := range m.vars() {
		name, kind := "pfcimd_"+v.Name, "gauge"
		if !v.Gauge {
			name, kind = name+"_total", "counter"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, v.Help, name, kind, name, v.Var.Value())
	}
	writeHistogram(&b, "pfcimd_job_wall_seconds", "Job wall time from start to completion.", m.jobWall)
	writeHistogram(&b, "pfcimd_job_queue_wait_seconds", "Time jobs spent queued before a worker picked them up.", m.queueWait)
	writeHistogram(&b, "pfcimd_cache_lookup_seconds", "Result-cache lookup latency at job submit.", m.cacheGet)
	writeHistogram(&b, "pfcimd_sweep_point_lookup_seconds", "Per-point result-cache probe latency at sweep submit.", m.sweepCache)
	writeHistogram(&b, "pfcimd_shard_rpc_seconds", "Shard RPC attempt latency, placement and evaluation pooled.", m.shardRPC)
	if addrs, up := m.workerUpSnapshot(); len(addrs) > 0 {
		fmt.Fprintf(&b, "# HELP pfcimd_shard_worker_up Last health-check verdict per shard worker (1 up, 0 down).\n")
		fmt.Fprintf(&b, "# TYPE pfcimd_shard_worker_up gauge\n")
		for _, addr := range addrs {
			v := 0
			if up[addr].up {
				v = 1
			}
			fmt.Fprintf(&b, "pfcimd_shard_worker_up{worker=%q} %d\n", addr, v)
		}
		now := time.Now()
		fmt.Fprintf(&b, "# HELP pfcimd_shard_worker_last_probe_age_seconds Seconds since the worker's last health probe landed.\n")
		fmt.Fprintf(&b, "# TYPE pfcimd_shard_worker_last_probe_age_seconds gauge\n")
		for _, addr := range addrs {
			fmt.Fprintf(&b, "pfcimd_shard_worker_last_probe_age_seconds{worker=%q} %g\n",
				addr, now.Sub(up[addr].probeAt).Seconds())
		}
	}
	m.writeWatchSeries(&b)
	w.Write([]byte(b.String()))
}

// writeWatchSeries renders the per-watched-stream round telemetry:
// labeled diff counters plus labeled round-wall and reuse-ratio
// histograms, one watch="<lineage>@<options-hash>" label per stream.
func (m *metrics) writeWatchSeries(b *strings.Builder) {
	labels, ws := m.watchSnapshot()
	if len(labels) == 0 {
		return
	}
	counter := func(name, help string, get func(watchMetrics) int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, l := range labels {
			fmt.Fprintf(b, "%s{watch=%q} %d\n", name, l, get(ws[l]))
		}
	}
	counter("pfcimd_watch_rounds_total", "Incremental rounds mined per watched (lineage, options) stream.",
		func(w watchMetrics) int64 { return w.rounds })
	counter("pfcimd_watch_diff_added_total", "Result itemsets added across a stream's incremental rounds.",
		func(w watchMetrics) int64 { return w.added })
	counter("pfcimd_watch_diff_removed_total", "Result itemsets removed across a stream's incremental rounds.",
		func(w watchMetrics) int64 { return w.removed })
	counter("pfcimd_watch_diff_changed_total", "Result itemsets whose probability or support changed across rounds.",
		func(w watchMetrics) int64 { return w.changed })
	counter("pfcimd_watch_diff_unchanged_total", "Result itemsets carried over unchanged across rounds.",
		func(w watchMetrics) int64 { return w.unchanged })
	hist := func(name, help string, get func(watchMetrics) *obs.Histogram) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for _, l := range labels {
			snap := get(ws[l]).Snapshot()
			for i, bound := range snap.Bounds {
				fmt.Fprintf(b, "%s_bucket{watch=%q,le=%q} %d\n", name, l, formatBound(bound), snap.Cumulative[i])
			}
			fmt.Fprintf(b, "%s_bucket{watch=%q,le=\"+Inf\"} %d\n", name, l, snap.Count)
			fmt.Fprintf(b, "%s_sum{watch=%q} %g\n", name, l, snap.SumSeconds)
			fmt.Fprintf(b, "%s_count{watch=%q} %d\n", name, l, snap.Count)
		}
	}
	hist("pfcimd_watch_round_seconds", "Wall time of one incremental mining round.",
		func(w watchMetrics) *obs.Histogram { return w.roundWall })
	hist("pfcimd_watch_reuse_ratio", "Share of a round's result items spliced from the reuse cache.",
		func(w watchMetrics) *obs.Histogram { return w.reuse })
}

// writeHistogram renders one fixed-bucket histogram: cumulative _bucket
// series with le labels (inclusive upper bounds, +Inf last), then _sum and
// _count.
func writeHistogram(b *strings.Builder, name, help string, h *obs.Histogram) {
	snap := h.Snapshot()
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, bound := range snap.Bounds {
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatBound(bound), snap.Cumulative[i])
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
	fmt.Fprintf(b, "%s_sum %g\n", name, snap.SumSeconds)
	fmt.Fprintf(b, "%s_count %d\n", name, snap.Count)
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest decimal that round-trips.
func formatBound(v float64) string {
	return fmt.Sprintf("%g", v)
}
