package bitset

import (
	"math/rand"
	"testing"
)

// The kernels on the mining hot path must be allocation-free in steady
// state: AndBatch into preallocated destinations, and AND+popcount in
// every representation pairing. testing.AllocsPerRun asserts it directly,
// mirroring the allocs/op regression guard in internal/experiments.

func TestAndBatchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, k = 4096, 16
	parent := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			parent.Set(i)
		}
	}
	srcs := make([]*Bitset, k)
	dsts := make([]*Bitset, k)
	counts := make([]int, k)
	for j := range srcs {
		srcs[j] = New(n)
		dsts[j] = New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				srcs[j].Set(i)
			}
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		AndBatch(dsts, counts, parent, srcs)
	}); allocs != 0 {
		t.Errorf("AndBatch allocates %.1f objects per run, want 0", allocs)
	}
}

func TestAndCountAllocFreeAcrossForms(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 1 << 17
	dx, sx := randSet(rng, n, 0.005)
	dy, sy := randSet(rng, n, 0.005)
	var sink int
	cases := []struct {
		name string
		x, y *Bitset
	}{
		{"dense-dense", dx, dy},
		{"sparse-sparse", sx, sy},
		{"sparse-dense", sx, dy},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(100, func() {
			sink = AndCount(c.x, c.y)
		}); allocs != 0 {
			t.Errorf("AndCount %s allocates %.1f objects per run, want 0", c.name, allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			if AndCountAtLeast(c.x, c.y, sink) {
				sink++
			}
		}); allocs != 0 {
			t.Errorf("AndCountAtLeast %s allocates %.1f objects per run, want 0", c.name, allocs)
		}
	}
	_ = sink
}
