package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gendata")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build failed: %v\n%s", err, out)
	}
	return bin
}

func TestGendataKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	bin := buildBinary(t)
	for _, kind := range []string{"example", "mushroom", "quest"} {
		out := filepath.Join(t.TempDir(), kind+".txt")
		cmd := exec.Command(bin, "-kind", kind, "-scale", "0.005", "-o", out)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("gendata -kind %s failed: %v\n%s", kind, err, msg)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Count(string(data), "\n")
		if lines == 0 {
			t.Errorf("kind %s produced no transactions", kind)
		}
		if !strings.Contains(string(data), " : ") {
			t.Errorf("kind %s output lacks probabilities", kind)
		}
	}
}

func TestGendataExampleContent(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-kind", "example").Output()
	if err != nil {
		t.Fatal(err)
	}
	want := "0 1 2 3 : 0.9\n0 1 2 : 0.6\n0 1 2 : 0.7\n0 1 2 3 : 0.9\n"
	if string(out) != want {
		t.Errorf("example output = %q, want %q", out, want)
	}
}

func TestGendataUnknownKind(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	bin := buildBinary(t)
	if err := exec.Command(bin, "-kind", "nonsense").Run(); err == nil {
		t.Error("unknown kind should exit non-zero")
	}
}
