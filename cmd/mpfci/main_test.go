package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles the CLI once per test binary.
func buildBinary(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "mpfci")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build failed: %v\n%s", err, out)
	}
	return bin
}

// writeExample writes the paper's Table II database in the text format.
func writeExample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "example.txt")
	data := `0 1 2 3 : 0.9
0 1 2 : 0.6
0 1 2 : 0.7
0 1 2 3 : 0.9
`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	bin := buildBinary(t)
	data := writeExample(t)

	out, err := exec.Command(bin, "-minsup-abs", "2", "-pfct", "0.8", "-stats", data).CombinedOutput()
	if err != nil {
		t.Fatalf("mpfci failed: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"# 2 probabilistic frequent closed itemsets",
		"PFCI {a b c}\tPr_FC=0.8754",
		"PFCI {a b c d}\tPr_FC=0.8100",
		"# stats:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestCLIJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	bin := buildBinary(t)
	data := writeExample(t)

	out, err := exec.Command(bin, "-minsup-abs", "2", "-pfct", "0.8", "-json", data).Output()
	if err != nil {
		t.Fatalf("mpfci -json failed: %v", err)
	}
	// The JSON document starts after the "# ..." header line.
	idx := strings.Index(string(out), "{")
	if idx < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	var parsed struct {
		Count    int `json:"count"`
		Itemsets []struct {
			Items []int   `json:"items"`
			Prob  float64 `json:"freq_closed_prob"`
		} `json:"itemsets"`
	}
	if err := json.Unmarshal(out[idx:], &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if parsed.Count != 2 || len(parsed.Itemsets) != 2 {
		t.Fatalf("JSON count = %d, want 2", parsed.Count)
	}
	if parsed.Itemsets[0].Prob < 0.87 || parsed.Itemsets[0].Prob > 0.88 {
		t.Errorf("first itemset prob = %v", parsed.Itemsets[0].Prob)
	}
}

func TestCLIBadInput(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	bin := buildBinary(t)
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("1 2 : banana\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(bin, path).Run(); err == nil {
		t.Error("bad input should make the CLI exit non-zero")
	}
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("missing file argument should exit non-zero")
	}
}
