package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/probdata/pfcim/internal/gen"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// TestParallelMatchesSerial: the parallel DFS must return the same itemset
// set as the serial run, with probabilities that agree wherever the
// evaluation is deterministic (everything except re-seeded sampling).
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		db := randomDB(rng, 14, 7)
		serial := Options{MinSup: 2, PFCT: 0.5, Seed: 9}
		parallel := serial
		parallel.Parallelism = 4
		a, err := Mine(db, serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Mine(db, parallel)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Itemsets) != len(b.Itemsets) {
			t.Fatalf("trial %d: serial %d itemsets, parallel %d", trial, len(a.Itemsets), len(b.Itemsets))
		}
		for i := range a.Itemsets {
			if !itemset.Equal(a.Itemsets[i].Items, b.Itemsets[i].Items) {
				t.Fatalf("trial %d: itemset %d differs: %v vs %v", trial, i, a.Itemsets[i].Items, b.Itemsets[i].Items)
			}
			if math.Abs(a.Itemsets[i].Prob-b.Itemsets[i].Prob) > 0.05 {
				t.Fatalf("trial %d: %v probability drifted: %v vs %v",
					trial, a.Itemsets[i].Items, a.Itemsets[i].Prob, b.Itemsets[i].Prob)
			}
		}
		// Per-node statistics must be preserved by the merge.
		if a.Stats.NodesVisited != b.Stats.NodesVisited {
			t.Fatalf("trial %d: node counts differ: %d vs %d", trial, a.Stats.NodesVisited, b.Stats.NodesVisited)
		}
	}
}

// TestParallelDeterministic: two parallel runs with the same seed produce
// byte-identical results regardless of scheduling.
func TestParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	db := randomDB(rng, 16, 7)
	opts := Options{MinSup: 2, PFCT: 0.5, Seed: 13, Parallelism: 4, MaxExactClauses: -1, DisableBounds: true}
	a, err := Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Itemsets) != len(b.Itemsets) {
		t.Fatalf("non-deterministic result size: %d vs %d", len(a.Itemsets), len(b.Itemsets))
	}
	for i := range a.Itemsets {
		if a.Itemsets[i].Prob != b.Itemsets[i].Prob {
			t.Fatalf("non-deterministic estimate for %v: %v vs %v",
				a.Itemsets[i].Items, a.Itemsets[i].Prob, b.Itemsets[i].Prob)
		}
	}
}

// TestParallelismInvariantResults: Mine must return byte-identical
// Result.Itemsets — including Monte-Carlo-sampled probabilities — for every
// Parallelism setting, because each node derives its sampler seed from
// (Seed, itemset), never from scheduling. The workload is a Mushroom-like
// dense database with bounds disabled and exact unions off, so every
// evaluation goes through the sampler; SplitDepth 1..3 additionally varies
// how aggressively the scheduler splits subtrees.
func TestParallelismInvariantResults(t *testing.T) {
	raw := gen.MushroomLike(0.03, 42)
	db := gen.AssignGaussian(raw, 0.5, 0.5, 43)
	base := Options{
		MinSup:          AbsoluteMinSup(db.N(), 0.2),
		PFCT:            0.3,
		Seed:            7,
		MaxExactClauses: -1,
		DisableBounds:   true,
	}
	ref, err := Mine(db, base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.Sampled == 0 {
		t.Fatal("workload has no sampled evaluations; the test would not exercise RNG determinism")
	}
	for _, par := range []int{1, 2, 8} {
		for _, split := range []int{1, 2, 3} {
			opts := base
			opts.Parallelism = par
			opts.SplitDepth = split
			got, err := Mine(db, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Itemsets) != len(ref.Itemsets) {
				t.Fatalf("par=%d split=%d: %d itemsets, want %d", par, split, len(got.Itemsets), len(ref.Itemsets))
			}
			for i := range ref.Itemsets {
				w, g := ref.Itemsets[i], got.Itemsets[i]
				if !itemset.Equal(w.Items, g.Items) || w.Prob != g.Prob ||
					w.Lower != g.Lower || w.Upper != g.Upper ||
					w.FreqProb != g.FreqProb || w.Method != g.Method {
					t.Fatalf("par=%d split=%d: itemset %d differs:\n got %+v\nwant %+v", par, split, i, g, w)
				}
			}
			// Everything except the scheduling counters and the memo split
			// must merge back to the serial statistics.
			gs, ws := got.Stats, ref.Stats
			gs.TasksSpawned, gs.TasksStolen = 0, 0
			ws.TasksSpawned, ws.TasksStolen = 0, 0
			gs.TailEvaluations, gs.TailMemoHits = gs.TailEvaluations+gs.TailMemoHits, 0
			ws.TailEvaluations, ws.TailMemoHits = ws.TailEvaluations+ws.TailMemoHits, 0
			if gs != ws {
				t.Fatalf("par=%d split=%d: stats differ:\n got %+v\nwant %+v", par, split, gs, ws)
			}
		}
	}
}

// TestMineCancelParallel: canceling a parallel mine mid-run must return
// promptly with the context error and leak no worker goroutines — the
// property pfcimd's DELETE /v1/jobs relies on.
func TestMineCancelParallel(t *testing.T) {
	raw := gen.MushroomLike(0.03, 42)
	db := gen.AssignGaussian(raw, 0.5, 0.5, 43)
	opts := Options{
		MinSup:      4, // low support: a run that takes seconds uncanceled
		PFCT:        0.5,
		Seed:        7,
		Parallelism: 4,
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var (
		res *Result
		err error
	)
	go func() {
		defer close(done)
		res, err = MineContext(ctx, db, opts)
	}()
	time.Sleep(20 * time.Millisecond) // let workers get into the tree
	cancel()
	start := time.Now()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled parallel mine did not return")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("cancellation took %v; workers should abort at the next node", waited)
	}
	if err == nil {
		t.Fatalf("canceled mine returned %d itemsets and no error", len(res.Itemsets))
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("canceled mine should return a nil result, got %d itemsets", len(res.Itemsets))
	}
	// All pool goroutines must exit. Give the runtime a moment to reap.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before cancel, %d after", before, runtime.NumGoroutine())
}

func TestParallelPaperExample(t *testing.T) {
	db := uncertain.PaperExample()
	res, err := Mine(db, Options{MinSup: 2, PFCT: 0.8, Seed: 1, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Itemsets) != 2 {
		t.Fatalf("parallel run on the paper example found %d itemsets", len(res.Itemsets))
	}
	if math.Abs(res.Itemsets[0].Prob-0.8754) > 1e-9 {
		t.Errorf("Pr_FC(abc) = %v", res.Itemsets[0].Prob)
	}
}
