package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	dataset := []byte("3 4\n0:0.5 1:0.7\n2:0.4\n1:1\n")
	lineage := []byte(`{"root":"abc","versions":["abc"]}`)
	result := []byte(`{"itemsets":[],"stats":{}}`)
	key := "abc\nminsup=2 tau=0.9"

	if err := s.PutDataset("abc", dataset); err != nil {
		t.Fatalf("PutDataset: %v", err)
	}
	if err := s.PutLineage("abc", lineage); err != nil {
		t.Fatalf("PutLineage: %v", err)
	}
	if err := s.PutResult(key, result); err != nil {
		t.Fatalf("PutResult: %v", err)
	}

	check := func(s *Store, label string) {
		t.Helper()
		got, ok, err := s.GetDataset("abc")
		if err != nil || !ok || !bytes.Equal(got, dataset) {
			t.Fatalf("%s GetDataset = (%q, %v, %v)", label, got, ok, err)
		}
		got, ok, err = s.GetLineage("abc")
		if err != nil || !ok || !bytes.Equal(got, lineage) {
			t.Fatalf("%s GetLineage = (%q, %v, %v)", label, got, ok, err)
		}
		got, ok, err = s.GetResult(key)
		if err != nil || !ok || !bytes.Equal(got, result) {
			t.Fatalf("%s GetResult = (%q, %v, %v)", label, got, ok, err)
		}
		if d, l, r := s.Counts(); d != 1 || l != 1 || r != 1 {
			t.Fatalf("%s Counts = (%d, %d, %d), want (1, 1, 1)", label, d, l, r)
		}
	}
	check(s, "fresh")

	// A second open must restore the exact same contents from disk.
	check(mustOpen(t, dir), "reopened")

	// Misses are (nil, false, nil), not errors.
	if _, ok, err := s.GetResult("no such key"); ok || err != nil {
		t.Fatalf("miss = (ok=%v, err=%v)", ok, err)
	}
}

func TestLineageOverwriteIsAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.PutLineage("root", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutLineage("root", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := mustOpen(t, dir).GetLineage("root")
	if err != nil || !ok || string(got) != "v2" {
		t.Fatalf("GetLineage after overwrite = (%q, %v, %v)", got, ok, err)
	}
}

func TestLineagesListsAll(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	want := map[string][]byte{"a": []byte("ra"), "b": []byte("rb"), "c": []byte("rc")}
	for root, rec := range want {
		if err := s.PutLineage(root, rec); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Lineages()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Lineages returned %d records, want %d", len(got), len(want))
	}
	for root, rec := range want {
		if !bytes.Equal(got[root], rec) {
			t.Fatalf("Lineages[%q] = %q, want %q", root, got[root], rec)
		}
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir) // initialize layout
	stray := filepath.Join(dir, dirResults, "deadbeef.seg.7.tmp")
	if err := os.WriteFile(stray, []byte("half a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("temp file survived reopen: stat err = %v", err)
	}
	if _, _, r := s.Counts(); r != 0 {
		t.Fatalf("stray temp was indexed: %d results", r)
	}
}

func TestStrictOpenRejectsCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.PutResult("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, dirResults, resultName("k"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40 // flip one bit mid-file
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("strict Open on bit-flipped segment: err = %v, want *CorruptError", err)
	}

	// Recover quarantines the damaged file and serves the rest.
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if q := rec.Quarantined(); len(q) != 1 || q[0] != path {
		t.Fatalf("Quarantined = %v, want [%s]", q, path)
	}
	if _, ok, err := rec.GetResult("k"); ok || err != nil {
		t.Fatalf("quarantined entry served: (ok=%v, err=%v)", ok, err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The quarantined bytes must still be intact for forensics.
	kept, err := os.ReadFile(path + ".corrupt")
	if err != nil || !bytes.Equal(kept, data) {
		t.Fatalf("quarantine altered the evidence: %v", err)
	}
}

func TestStrictOpenRejectsMissingManifest(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.PutDataset("abc", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir)
	var ce *CorruptError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "manifest missing") {
		t.Fatalf("Open without manifest: %v", err)
	}
}

func TestOpenRejectsFutureVersion(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.PutResult("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, dirResults, resultName("k"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[7] = 99 // bump the version field; the checksum no longer matters —
	// version is checked before the footer so future formats are not "corrupt"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Version != 99 {
		t.Fatalf("Open on future version: %v", err)
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.PutResult("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Copy the segment under a second name: two files now claim key "k".
	src := filepath.Join(dir, dirResults, resultName("k"))
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, dirResults, "zzduplicate.seg"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	var ce *CorruptError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "already held") {
		t.Fatalf("Open with duplicate key: %v", err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Quarantined()) != 1 {
		t.Fatalf("Quarantined = %v, want exactly the duplicate", rec.Quarantined())
	}
	if got, ok, err := rec.GetResult("k"); err != nil || !ok || string(got) != "payload" {
		t.Fatalf("original entry lost: (%q, %v, %v)", got, ok, err)
	}
}

func TestSegmentRejectsTrailingBytes(t *testing.T) {
	data := encodeSegment(KindResult, "k", []byte("p"))
	data = append(data, 0)
	_, _, _, err := decodeSegment("x", data)
	var ce *CorruptError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "trailing") {
		t.Fatalf("decode with trailing byte: %v", err)
	}
}

func TestSegmentRejectsOversizedLengths(t *testing.T) {
	data := encodeSegment(KindResult, "k", []byte("p"))
	for _, tc := range []struct {
		name   string
		mutate func([]byte)
	}{
		{"huge key length", func(b []byte) { b[9], b[10], b[11], b[12] = 0xff, 0xff, 0xff, 0xff }},
		{"huge payload length", func(b []byte) { b[14], b[15] = 0xff, 0xff }},
	} {
		mut := append([]byte(nil), data...)
		tc.mutate(mut)
		_, _, _, err := decodeSegment("x", mut)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: err = %v, want *CorruptError", tc.name, err)
		}
	}
}

func TestConcurrentPutsSameKey(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	payload := []byte("deterministic bytes")
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- s.PutResult("k", payload) }()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent PutResult: %v", err)
		}
	}
	got, ok, err := mustOpen(t, dir).GetResult("k")
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("after concurrent puts: (%q, %v, %v)", got, ok, err)
	}
	// No temp debris left behind.
	names, err := os.ReadDir(filepath.Join(dir, dirResults))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range names {
		if strings.Contains(e.Name(), tmpSuffix) {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindManifest: "manifest", KindDataset: "dataset",
		KindLineage: "lineage", KindResult: "result", Kind(9): "kind(9)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", byte(k), got, want)
		}
	}
}

func TestResultNameIsStable(t *testing.T) {
	if a, b := resultName("k"), resultName("k"); a != b {
		t.Fatalf("resultName not deterministic: %s vs %s", a, b)
	}
	if a, b := resultName("k"), resultName("k2"); a == b {
		t.Fatalf("resultName collides for distinct keys")
	}
	if !strings.HasSuffix(resultName("k"), ".seg") {
		t.Fatalf("resultName lacks .seg suffix: %s", resultName("k"))
	}
}

func TestErrorStrings(t *testing.T) {
	ce := &CorruptError{Path: "p", Reason: "r"}
	if !strings.Contains(ce.Error(), "p") || !strings.Contains(ce.Error(), "r") {
		t.Fatalf("CorruptError.Error() = %q", ce.Error())
	}
	if (&CorruptError{Reason: "r"}).Error() == "" {
		t.Fatal("pathless CorruptError has empty message")
	}
	ve := &VersionError{Path: "p", Version: 9}
	if !strings.Contains(ve.Error(), "9") {
		t.Fatalf("VersionError.Error() = %q", ve.Error())
	}
	if fmt.Sprintf("%v", ErrInjected) == "" {
		t.Fatal("ErrInjected has empty message")
	}
}
