// Command loadgen is a replayable traffic generator for pfcimd: it drives
// a seeded mixed workload — fresh submits, cache-hit replays, parameter
// sweeps, dataset appends, watched (@latest) jobs, metrics and trace
// scrapes — against a live daemon or coordinator deployment, and writes a
// BENCH-form latency/SLO report (p50/p95/p99 per endpoint class, error and
// saturation counters) as BENCH_7.json.
//
// Usage:
//
//	loadgen -target http://localhost:8080 -duration 30s -concurrency 4 \
//	        -seed 1 -out BENCH_7.json
//
// The operation sequence is deterministic given (seed, concurrency): each
// worker goroutine draws from its own rand.Source(seed + index), so two
// runs against equivalent deployments replay the same request mix. The
// daemon is left warm: datasets are content-addressed, so re-runs reuse
// them, and the result cache keeps whatever the run minted.
//
// The durability scenario (-restart-cmd) kills and restarts the daemon
// mid-run via a shell command and keeps generating through the outage:
// observations during the outage land in "outage-"-prefixed classes, job
// polls orphaned by the restart count as outage rather than errors, and
// the summary gains post_recovery_errors and outage_ms — a clean recovery
// from -store-dir reports post_recovery_errors: 0 (CI writes this report
// as BENCH_8.json):
//
//	loadgen -target http://127.0.0.1:18080 -duration 20s \
//	        -restart-cmd './kill-and-restart.sh' -out BENCH_8.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		target      = flag.String("target", "http://localhost:8080", "base URL of the pfcimd daemon or coordinator")
		duration    = flag.Duration("duration", 30*time.Second, "load duration")
		concurrency = flag.Int("concurrency", 4, "generator goroutines")
		seed        = flag.Int64("seed", 1, "workload seed (same seed = same request sequence)")
		jobTimeout  = flag.Duration("job-timeout", 30*time.Second, "per-job wait bound before abandoning the poll")
		out         = flag.String("out", "BENCH_7.json", "report path (- for stdout)")
		restartCmd  = flag.String("restart-cmd", "", "shell command that kills and restarts the daemon mid-run (durability scenario)")
		restartAt   = flag.Duration("restart-after", 0, "when into the run to fire -restart-cmd (0 = halfway)")
		recoveryTO  = flag.Duration("recovery-timeout", 60*time.Second, "how long to wait for /healthz after -restart-cmd")
	)
	flag.Parse()

	report, err := runLoad(loadConfig{
		Target:          *target,
		Duration:        *duration,
		Concurrency:     *concurrency,
		Seed:            *seed,
		JobTimeout:      *jobTimeout,
		RestartCmd:      *restartCmd,
		RestartAfter:    *restartAt,
		RecoveryTimeout: *recoveryTO,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
		return 0
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	total := report[len(report)-1]
	fmt.Printf("loadgen: %d requests (%.1f/s), %d errors, %d saturated, %d jobs done, %d failed → %s\n",
		total.Requests, total.PerSecond, total.Errors, total.Saturated, total.JobsDone, total.JobsFailed, *out)
	if total.PostRecoveryErrors != nil {
		fmt.Printf("loadgen: restart scenario: outage %.0f ms, post-recovery errors %d\n",
			total.OutageMillis, *total.PostRecoveryErrors)
		if *total.PostRecoveryErrors > 0 {
			return 1
		}
	}
	return 0
}
