package experiments

import (
	"fmt"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/obs"
)

// Profile runs the two workloads with the phase tracer on and prints where
// mining wall time goes: per phase of the Bounding–Pruning–Checking cascade,
// per enumeration depth, and — for the parallel run — per worker, so
// work-stealing imbalance is visible as a busy-time spread. This is the
// human-readable view of the same data mpfci -trace exports as a Chrome
// trace and pfcimd serves at GET /v1/jobs/{id}/trace.
func (s *Suite) Profile() error {
	if err := s.profileRun(s.Mushroom, 0); err != nil {
		return err
	}
	return s.profileRun(s.Quest, 4)
}

func (s *Suite) profileRun(ds Dataset, parallelism int) error {
	opts := s.baseOptions(ds.DB, ds.DefaultMinSup)
	opts.Parallelism = parallelism
	opts.Tracer = obs.New()

	start := time.Now()
	res, err := core.Mine(ds.DB, opts)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	mode := "serial"
	if parallelism > 1 {
		mode = fmt.Sprintf("%d workers", parallelism)
	}
	fmt.Fprintf(s.Cfg.Out, "\nProfile (%s, %s): min_sup=%.2f, %d PFCIs in %s\n",
		ds.Name, mode, ds.DefaultMinSup, len(res.Itemsets), formatDuration(wall))

	p := res.Profile
	// Phase/depth shares are relative to the attributed busy time: in a
	// serial run that is the wall clock, in a parallel run the workers'
	// summed busy time (≈ parallelism × wall), keeping shares ≤ 100%.
	var busy int64
	for _, ph := range p.Phases {
		busy += ph.WallNS
	}
	total := float64(max64(p.TotalNS, busy))
	if total == 0 {
		total = 1 // empty run; shares print as 0
	}
	t := newTable(s.Cfg.Out)
	t.row("phase", "wall", "share", "count")
	for _, ph := range p.Phases {
		if ph.Count == 0 {
			continue
		}
		t.row(ph.Phase, formatDuration(time.Duration(ph.WallNS)),
			fmt.Sprintf("%.1f%%", 100*float64(ph.WallNS)/total), fmt.Sprintf("%d", ph.Count))
	}
	t.flush()

	t = newTable(s.Cfg.Out)
	t.row("depth", "expand wall", "share", "nodes")
	for _, d := range p.Depths {
		t.row(fmt.Sprintf("%d", d.Depth), formatDuration(time.Duration(d.WallNS)),
			fmt.Sprintf("%.1f%%", 100*float64(d.WallNS)/total), fmt.Sprintf("%d", d.Nodes))
	}
	t.flush()

	if len(p.Workers) > 1 {
		// Per-worker utilization is busy time over wall clock: a balanced
		// work-stealing run shows every pool worker near 100%.
		wall := float64(p.TotalNS)
		if wall == 0 {
			wall = 1
		}
		t = newTable(s.Cfg.Out)
		t.row("worker", "busy", "util", "spans")
		for _, w := range p.Workers {
			t.row(fmt.Sprintf("%d", w.Worker), formatDuration(time.Duration(w.BusyNS)),
				fmt.Sprintf("%.1f%%", 100*float64(w.BusyNS)/wall), fmt.Sprintf("%d", w.Spans))
		}
		t.flush()
	}
	if p.SpansDropped > 0 {
		fmt.Fprintf(s.Cfg.Out, "(%d detailed spans dropped from the ring; aggregates are exact)\n", p.SpansDropped)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
