package bitset

// Sparse-container operations (DESIGN §13). The sparse form stores member
// ids as a sorted []uint32 — profitable below one member per 64-bit word.
// Every routine here must produce results logically identical to the dense
// code path, and when a routine computes floats downstream (it never does
// directly, but iteration order feeds probability products), iteration is
// strictly ascending, matching dense word order.

import (
	"math/bits"
	"sort"
)

// NewSparse returns a sparse Bitset of capacity n whose members are ids,
// taking ownership of the slice. The ids must be strictly ascending and in
// [0, n).
func NewSparse(n int, ids []uint32) *Bitset {
	if n < 0 {
		panic("bitset: negative size")
	}
	for i, id := range ids {
		if int(id) >= n || (i > 0 && ids[i-1] >= id) {
			panic("bitset: NewSparse ids must be strictly ascending and in [0, n)")
		}
	}
	return &Bitset{ids: ids, n: n, sparse: true}
}

// IsSparse reports which representation is live.
func (b *Bitset) IsSparse() bool { return b.sparse }

// ShouldCompact reports whether a tidset with the given population count
// benefits from the sparse form: fewer members than dense words (so the
// id array is at most half the dense footprint and linear scans touch
// less memory), on a capacity large enough for the difference to matter.
func ShouldCompact(count, n int) bool {
	return n >= 1024 && count < n/wordBits
}

// Compacted returns a copy of b in sparse form.
func (b *Bitset) Compacted() *Bitset {
	ids := make([]uint32, 0, b.Count())
	b.ForEach(func(i int) bool {
		ids = append(ids, uint32(i))
		return true
	})
	return &Bitset{ids: ids, n: b.n, sparse: true}
}

// Materialized returns a copy of b in dense form.
func (b *Bitset) Materialized() *Bitset {
	dst := New(b.n)
	b.writeWordsTo(dst.words)
	return dst
}

// writeWordsTo renders b's contents into the given dense word slice (which
// must be ceil(n/64) long).
func (b *Bitset) writeWordsTo(words []uint64) {
	if !b.sparse {
		copy(words, b.words)
		return
	}
	for i := range words {
		words[i] = 0
	}
	for _, id := range b.ids {
		words[id/wordBits] |= 1 << (id % wordBits)
	}
}

func (b *Bitset) sparseTest(id uint32) bool {
	i := sort.Search(len(b.ids), func(j int) bool { return b.ids[j] >= id })
	return i < len(b.ids) && b.ids[i] == id
}

func (b *Bitset) sparseSet(id uint32) {
	i := sort.Search(len(b.ids), func(j int) bool { return b.ids[j] >= id })
	if i < len(b.ids) && b.ids[i] == id {
		return
	}
	b.ids = append(b.ids, 0)
	copy(b.ids[i+1:], b.ids[i:])
	b.ids[i] = id
}

func (b *Bitset) sparseClear(id uint32) {
	i := sort.Search(len(b.ids), func(j int) bool { return b.ids[j] >= id })
	if i < len(b.ids) && b.ids[i] == id {
		b.ids = append(b.ids[:i], b.ids[i+1:]...)
	}
}

// resultIDs prepares the id slice an intersection-style op writes into.
// When dst's id storage aliases one of the operands the in-place write is
// safe (the write index never overtakes the read indexes), and the aliased
// slice is always big enough; otherwise reuse dst's capacity or grow.
func (dst *Bitset) resultIDs(need int, a, b []uint32) []uint32 {
	res := dst.ids
	if aliasIDs(res, a) || aliasIDs(res, b) {
		return res[:cap(res)]
	}
	if cap(res) < need {
		return make([]uint32, need)
	}
	return res[:cap(res)]
}

func aliasIDs(x, y []uint32) bool {
	return cap(x) > 0 && cap(y) > 0 && &x[:cap(x)][0] == &y[:cap(y)][0]
}

// andIntoSparse handles AndInto when at least one operand is sparse. The
// result is sparse: it is contained in the sparse operand, so it is at
// least as compressible.
func andIntoSparse(dst, x, y *Bitset) int {
	switch {
	case x.sparse && y.sparse:
		return andSS(dst, x.ids, y.ids)
	case x.sparse:
		return andSD(dst, x.ids, y.words)
	default:
		return andSD(dst, y.ids, x.words)
	}
}

// andSS intersects two sorted id slices into dst.
func andSS(dst *Bitset, a, b []uint32) int {
	need := len(a)
	if len(b) < need {
		need = len(b)
	}
	res := dst.resultIDs(need, a, b)
	i, j, out := 0, 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i], b[j]
		switch {
		case ai == bj:
			res[out] = ai
			out++
			i++
			j++
		case ai < bj:
			i++
		default:
			j++
		}
	}
	dst.ids = res[:out]
	dst.sparse = true
	return out
}

// andSD filters a sorted id slice by a dense word array into dst.
func andSD(dst *Bitset, ids []uint32, words []uint64) int {
	res := dst.resultIDs(len(ids), ids, nil)
	out := 0
	for _, id := range ids {
		if words[id/wordBits]&(1<<(id%wordBits)) != 0 {
			res[out] = id
			out++
		}
	}
	dst.ids = res[:out]
	dst.sparse = true
	return out
}

func andCountSparse(x, y *Bitset) int {
	switch {
	case x.sparse && y.sparse:
		a, b := x.ids, y.ids
		i, j, c := 0, 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] == b[j]:
				c++
				i++
				j++
			case a[i] < b[j]:
				i++
			default:
				j++
			}
		}
		return c
	case x.sparse:
		return countSD(x.ids, y.words)
	default:
		return countSD(y.ids, x.words)
	}
}

func countSD(ids []uint32, words []uint64) int {
	c := 0
	for _, id := range ids {
		if words[id/wordBits]&(1<<(id%wordBits)) != 0 {
			c++
		}
	}
	return c
}

func andCountAtLeastSparse(x, y *Bitset, k int) bool {
	switch {
	case x.sparse && y.sparse:
		a, b := x.ids, y.ids
		i, j, c := 0, 0, 0
		for i < len(a) && j < len(b) {
			rem := len(a) - i
			if r2 := len(b) - j; r2 < rem {
				rem = r2
			}
			if c+rem < k {
				return false
			}
			switch {
			case a[i] == b[j]:
				c++
				if c >= k {
					return true
				}
				i++
				j++
			case a[i] < b[j]:
				i++
			default:
				j++
			}
		}
		return false
	case x.sparse:
		return countAtLeastSD(x.ids, y.words, k)
	default:
		return countAtLeastSD(y.ids, x.words, k)
	}
}

func countAtLeastSD(ids []uint32, words []uint64, k int) bool {
	c := 0
	for i, id := range ids {
		if c+(len(ids)-i) < k {
			return false
		}
		if words[id/wordBits]&(1<<(id%wordBits)) != 0 {
			c++
			if c >= k {
				return true
			}
		}
	}
	return false
}

func andNotSparse(x, y *Bitset) *Bitset {
	if x.sparse {
		ids := make([]uint32, 0, len(x.ids))
		if y.sparse {
			i, j := 0, 0
			for i < len(x.ids) {
				for j < len(y.ids) && y.ids[j] < x.ids[i] {
					j++
				}
				if j >= len(y.ids) || y.ids[j] != x.ids[i] {
					ids = append(ids, x.ids[i])
				}
				i++
			}
		} else {
			for _, id := range x.ids {
				if y.words[id/wordBits]&(1<<(id%wordBits)) == 0 {
					ids = append(ids, id)
				}
			}
		}
		return &Bitset{ids: ids, n: x.n, sparse: true}
	}
	// x dense, y sparse: copy x and clear y's members.
	dst := New(x.n)
	copy(dst.words, x.words)
	for _, id := range y.ids {
		dst.words[id/wordBits] &^= 1 << (id % wordBits)
	}
	return dst
}

func isSubsetSparse(x, y *Bitset) bool {
	if x.sparse {
		if y.sparse {
			i, j := 0, 0
			for i < len(x.ids) {
				for j < len(y.ids) && y.ids[j] < x.ids[i] {
					j++
				}
				if j >= len(y.ids) || y.ids[j] != x.ids[i] {
					return false
				}
				i++
				j++
			}
			return true
		}
		for _, id := range x.ids {
			if y.words[id/wordBits]&(1<<(id%wordBits)) == 0 {
				return false
			}
		}
		return true
	}
	// x dense, y sparse: every set word of x must be covered by y's ids.
	cur := wordCursor{ids: y.ids}
	for wi, w := range x.words {
		if w == 0 {
			continue
		}
		if w&^cur.wordAt(wi) != 0 {
			return false
		}
	}
	return true
}

func equalSparse(x, y *Bitset) bool {
	if x.sparse && y.sparse {
		if len(x.ids) != len(y.ids) {
			return false
		}
		for i, id := range x.ids {
			if y.ids[i] != id {
				return false
			}
		}
		return true
	}
	s, d := x, y
	if !s.sparse {
		s, d = y, x
	}
	cur := wordCursor{ids: s.ids}
	for wi, w := range d.words {
		if w != cur.wordAt(wi) {
			return false
		}
	}
	return true
}

// wordCursor renders a sorted id slice as dense words on demand. wordAt
// must be called with non-decreasing word indices; it consumes ids as it
// advances.
type wordCursor struct {
	ids []uint32
	pos int
}

func (c *wordCursor) wordAt(wi int) uint64 {
	for c.pos < len(c.ids) && int(c.ids[c.pos]/wordBits) < wi {
		c.pos++
	}
	var w uint64
	for c.pos < len(c.ids) && int(c.ids[c.pos]/wordBits) == wi {
		w |= 1 << (c.ids[c.pos] % wordBits)
		c.pos++
	}
	return w
}

// sparseHash replays the dense FNV-1a word stream without materializing it:
// a run of z zero words multiplies the digest by prime^z (since
// (h ^ 0)·prime = h·prime), computed by binary exponentiation.
func (b *Bitset) sparseHash() uint64 {
	h := uint64(fnvOffset64)
	nw := (b.n + wordBits - 1) / wordBits
	next := 0 // next dense word index to account for
	i := 0
	for i < len(b.ids) {
		wi := int(b.ids[i] / wordBits)
		h = hashZeroRun(h, wi-next)
		var w uint64
		for i < len(b.ids) && int(b.ids[i]/wordBits) == wi {
			w |= 1 << (b.ids[i] % wordBits)
			i++
		}
		h = (h ^ w) * fnvPrime64
		next = wi + 1
	}
	return hashZeroRun(h, nw-next)
}

func hashZeroRun(h uint64, run int) uint64 {
	p := uint64(fnvPrime64)
	for e := uint(run); e > 0; e >>= 1 {
		if e&1 == 1 {
			h *= p
		}
		p *= p
	}
	return h
}

// ForEachDiff calls fn for every bit of x \ y in ascending order without
// materializing the difference — the allocation-free replacement for
// AndNot(x, y).ForEach(...) on the evaluation hot path. Iteration stops
// early if fn returns false.
func ForEachDiff(x, y *Bitset, fn func(i int) bool) {
	if x.n != y.n {
		panic("bitset: ForEachDiff capacity mismatch")
	}
	if x.sparse {
		if y.sparse {
			j := 0
			for _, id := range x.ids {
				for j < len(y.ids) && y.ids[j] < id {
					j++
				}
				if j < len(y.ids) && y.ids[j] == id {
					continue
				}
				if !fn(int(id)) {
					return
				}
			}
			return
		}
		for _, id := range x.ids {
			if y.words[id/wordBits]&(1<<(id%wordBits)) == 0 {
				if !fn(int(id)) {
					return
				}
			}
		}
		return
	}
	if y.sparse {
		cur := wordCursor{ids: y.ids}
		for wi, w := range x.words {
			w &^= cur.wordAt(wi)
			for w != 0 {
				tz := bits.TrailingZeros64(w)
				if !fn(wi*wordBits + tz) {
					return
				}
				w &= w - 1
			}
		}
		return
	}
	for wi, w := range x.words {
		w &^= y.words[wi]
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &= w - 1
		}
	}
}
