package pfim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
	"github.com/probdata/pfcim/internal/world"
)

// TestTopDownEqualsBottomUp: the two strategies of [22] must return
// identical result sets with identical probabilities.
func TestTopDownEqualsBottomUp(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 9, 5)
		minSup := rng.Intn(3) + 1
		pft := []float64{0.3, 0.6, 0.8}[rng.Intn(3)]
		opts := Options{MinSup: minSup, PFT: pft}
		a := Mine(db, opts)
		b := MineTopDown(db, opts)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !itemset.Equal(a[i].Items, b[i].Items) {
				return false
			}
			if math.Abs(a[i].FreqProb-b[i].FreqProb) > 1e-9 {
				return false
			}
			if a[i].Count != b[i].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTopDownPaperExample(t *testing.T) {
	db := uncertain.PaperExample()
	res := MineTopDown(db, Options{MinSup: 2, PFT: 0.8})
	if len(res) != 15 {
		t.Fatalf("top-down found %d PFIs, want 15", len(res))
	}
}

func TestMaximalFrequent(t *testing.T) {
	db := uncertain.PaperExample()
	maxes := MaximalFrequent(db, Options{MinSup: 2, PFT: 0.8})
	// All 15 PFIs are subsets of abcd, so abcd is the single maximal PFI.
	if len(maxes) != 1 || !itemset.Equal(maxes[0], itemset.FromInts(0, 1, 2, 3)) {
		t.Fatalf("maximal PFIs = %v, want [{a b c d}]", maxes)
	}
}

func TestMaximalCoverProperty(t *testing.T) {
	// Every PFI is a subset of some maximal PFI; no maximal PFI is a
	// proper subset of another.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		db := randomDB(rng, 10, 6)
		opts := Options{MinSup: 2, PFT: 0.5}
		all := Mine(db, opts)
		maxes := MaximalFrequent(db, opts)
		for _, p := range all {
			found := false
			for _, m := range maxes {
				if itemset.IsSubset(p.Items, m) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("PFI %v not covered by any maximal itemset %v", p.Items, maxes)
			}
		}
		for i, a := range maxes {
			for j, b := range maxes {
				if i != j && itemset.IsProperSubset(a, b) {
					t.Fatalf("maximal itemset %v is a subset of %v", a, b)
				}
			}
		}
	}
}

func TestProbabilisticSupport(t *testing.T) {
	db := uncertain.PaperExample()
	abc := itemset.FromInts(0, 1, 2)
	// Pr[sup(abc) ≥ s] for s = 0..4 over probs {.9,.6,.7,.9}.
	// psup at pft=0.9 must satisfy Pr[sup ≥ psup] ≥ 0.9.
	for _, pft := range []float64{0.5, 0.8, 0.9, 0.99} {
		psup := ProbabilisticSupport(db, abc, pft)
		got, err := world.FreqProb(db, abc, psup)
		if err != nil {
			t.Fatal(err)
		}
		if got < pft {
			t.Errorf("pft=%v: Pr[sup ≥ psup=%d] = %v < pft", pft, psup, got)
		}
		above, err := world.FreqProb(db, abc, psup+1)
		if err != nil {
			t.Fatal(err)
		}
		if above >= pft {
			t.Errorf("pft=%v: psup=%d not maximal (Pr[sup ≥ %d] = %v)", pft, psup, psup+1, above)
		}
	}
	// Itemset missing from the database: psup = 0.
	if got := ProbabilisticSupport(db, itemset.FromInts(9), 0.5); got != 0 {
		t.Errorf("psup of absent itemset = %d", got)
	}
}

// TestProbSupportModelInstability reproduces the paper's §II critique on
// the Table IV database: under the probabilistic-support definition of
// related work the result set CHANGES when pft moves from 0.9 to 0.8 even
// though the relevant frequent probabilities (≈ 0.99) already satisfy both
// thresholds — while the paper's definition returns the same two itemsets
// at every threshold.
func TestProbSupportModelInstability(t *testing.T) {
	db := uncertain.PaperExampleExtended()
	const minSup = 2

	at09 := MineProbSupportClosed(db, minSup, 0.9)
	at08 := MineProbSupportClosed(db, minSup, 0.8)
	if sameSets(at09, at08) {
		t.Errorf("expected the probabilistic-support result set to change between pft 0.9 (%v) and 0.8 (%v)", at09, at08)
	}

	// The paper's semantics: {abc} and {abcd} are the only itemsets with
	// non-trivial frequent closed probability, regardless of threshold.
	abc := itemset.FromInts(0, 1, 2)
	abcd := itemset.FromInts(0, 1, 2, 3)
	pABC, err := world.FreqClosedProb(db, abc, minSup)
	if err != nil {
		t.Fatal(err)
	}
	pABCD, err := world.FreqClosedProb(db, abcd, minSup)
	if err != nil {
		t.Fatal(err)
	}
	if pABC < 0.8 || pABCD < 0.8 {
		t.Errorf("Pr_FC(abc)=%v, Pr_FC(abcd)=%v; both should stay above 0.8 on Table IV", pABC, pABCD)
	}
	// And the itemsets the competing model returns that ours does not have
	// low true frequent closed probability (the paper quotes 0.4 for {a}
	// and {ab}).
	for _, r := range append(append([]ProbSupportItemset{}, at09...), at08...) {
		if itemset.Equal(r.Items, abc) || itemset.Equal(r.Items, abcd) {
			continue
		}
		p, err := world.FreqClosedProb(db, r.Items, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if p > 0.6 {
			t.Errorf("competing-model result %v has Pr_FC=%v; expected it to be low", r.Items, p)
		}
	}
}

func sameSets(a, b []ProbSupportItemset) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !itemset.Equal(a[i].Items, b[i].Items) {
			return false
		}
	}
	return true
}

// TestProbSupportClosedBasic sanity-checks the model on the paper example:
// results must have psup ≥ minSup and every superset strictly lower psup.
func TestProbSupportClosedBasic(t *testing.T) {
	db := uncertain.PaperExample()
	res := MineProbSupportClosed(db, 2, 0.8)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	items := db.Items()
	for _, r := range res {
		if r.PSup < 2 {
			t.Errorf("%v psup %d below minSup", r.Items, r.PSup)
		}
		if got := ProbabilisticSupport(db, r.Items, 0.8); got != r.PSup {
			t.Errorf("%v psup mismatch: %d vs %d", r.Items, r.PSup, got)
		}
		for _, e := range items {
			if r.Items.Contains(e) {
				continue
			}
			if sup := ProbabilisticSupport(db, r.Items.Add(e), 0.8); sup >= r.PSup {
				t.Errorf("%v not closed under the model: %v has psup %d ≥ %d", r.Items, r.Items.Add(e), sup, r.PSup)
			}
		}
	}
}
