// Package pfim mines probabilistic frequent itemsets (Definition 3.5):
// itemsets X with Pr{sup(X) ≥ min_sup} > pft. Its result set is identical
// to the TODIS algorithm of related work [22] (any exact miner of
// Definition 3.5 returns the same set), and it plays two roles in the
// reproduction: the PFI counts of the compression experiment (Fig. 10) and
// the enumeration front end of the Naive baseline (Fig. 5). The package
// also provides the expected-support U-Apriori model as a comparison point.
package pfim

import (
	"fmt"
	"sort"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

// Options configures the probabilistic frequent itemset miner.
type Options struct {
	// MinSup is the absolute minimum support.
	MinSup int
	// PFT is the probabilistic frequent threshold (the paper's pft).
	PFT float64
	// DisableCH disables the Chernoff-Hoeffding filter in front of the
	// exact dynamic-programming check.
	DisableCH bool
}

// Canonical validates o, applies the defaults Mine would (MinSup 0 defaults
// to 1), and clears DisableCH — an execution knob that cannot change the
// mined result, because the Chernoff-Hoeffding filter only rejects itemsets
// the exact check rejects too. Mirrors core.Options.Canonical: two option
// structs with equal canonical forms produce identical result sets.
func (o Options) Canonical() (Options, error) {
	if o.MinSup < 0 {
		return o, fmt.Errorf("pfim: MinSup must be ≥ 1, got %d", o.MinSup)
	}
	if o.MinSup == 0 {
		o.MinSup = 1
	}
	if o.PFT < 0 || o.PFT >= 1 {
		return o, fmt.Errorf("pfim: PFT must be in [0, 1), got %v", o.PFT)
	}
	o.DisableCH = false
	return o, nil
}

// Itemset is one probabilistic frequent itemset with its exact frequent
// probability and expected support.
type Itemset struct {
	Items           itemset.Itemset
	FreqProb        float64
	Count           int
	ExpectedSupport float64
}

// Mine returns every probabilistic frequent itemset of db, sorted
// lexicographically. The frequent probability is anti-monotone, so a
// depth-first enumeration with subtree pruning at Pr_F ≤ pft is complete.
func Mine(db *uncertain.DB, opts Options) []Itemset {
	if opts.MinSup < 1 {
		opts.MinSup = 1
	}
	idx := db.Index()
	probs := db.Probs()

	type cand struct {
		item itemset.Item
		tids *bitset.Bitset
	}
	var cands []cand
	var out []Itemset

	probsOf := func(b *bitset.Bitset) []float64 {
		ps := make([]float64, 0, b.Count())
		b.ForEach(func(tid int) bool {
			ps = append(ps, probs[tid])
			return true
		})
		return ps
	}
	check := func(b *bitset.Bitset) (float64, bool) {
		if b.Count() < opts.MinSup {
			return 0, false
		}
		ps := probsOf(b)
		if !opts.DisableCH && poibin.TailUpperBound(ps, opts.MinSup) <= opts.PFT {
			return 0, false
		}
		prF := poibin.Tail(ps, opts.MinSup)
		return prF, prF > opts.PFT
	}

	for _, it := range idx.Items {
		if _, ok := check(idx.Tidsets[it]); ok {
			cands = append(cands, cand{item: it, tids: idx.Tidsets[it]})
		}
	}

	var rec func(x itemset.Itemset, tids *bitset.Bitset, prF float64, startPos int)
	rec = func(x itemset.Itemset, tids *bitset.Bitset, prF float64, startPos int) {
		exp := 0.0
		tids.ForEach(func(tid int) bool {
			exp += probs[tid]
			return true
		})
		out = append(out, Itemset{Items: x.Clone(), FreqProb: prF, Count: tids.Count(), ExpectedSupport: exp})
		for pos := startPos; pos < len(cands); pos++ {
			child := bitset.And(tids, cands[pos].tids)
			if childPrF, ok := check(child); ok {
				rec(x.Extend(cands[pos].item), child, childPrF, pos+1)
			}
		}
	}
	for pos, c := range cands {
		ps := probsOf(c.tids)
		rec(itemset.Itemset{c.item}, c.tids.Clone(), poibin.Tail(ps, opts.MinSup), pos+1)
	}
	sort.Slice(out, func(i, j int) bool { return itemset.Compare(out[i].Items, out[j].Items) < 0 })
	return out
}

// Count returns the number of probabilistic frequent itemsets without
// materializing them or their exact frequent probabilities. Itemsets whose
// membership is settled by the analytic tail bounds — the Chernoff-
// Hoeffding upper bound for rejection (Lemma 4.1) and its Hoeffding lower-
// bound counterpart for acceptance, in the spirit of the approximation-
// accelerated exact mining of related work [23] — never run the exact
// dynamic program; only the gap cases do. The count is exact.
func Count(db *uncertain.DB, opts Options) int {
	if opts.MinSup < 1 {
		opts.MinSup = 1
	}
	idx := db.Index()
	probs := db.Probs()

	probsOf := func(b *bitset.Bitset) []float64 {
		ps := make([]float64, 0, b.Count())
		b.ForEach(func(tid int) bool {
			ps = append(ps, probs[tid])
			return true
		})
		return ps
	}
	isPF := func(b *bitset.Bitset) bool {
		if b.Count() < opts.MinSup {
			return false
		}
		ps := probsOf(b)
		if poibin.TailUpperBound(ps, opts.MinSup) <= opts.PFT {
			return false
		}
		if poibin.TailLowerBound(ps, opts.MinSup) > opts.PFT {
			return true
		}
		return poibin.Tail(ps, opts.MinSup) > opts.PFT
	}

	type cand struct {
		item itemset.Item
		tids *bitset.Bitset
	}
	var cands []cand
	for _, it := range idx.Items {
		if isPF(idx.Tidsets[it]) {
			cands = append(cands, cand{item: it, tids: idx.Tidsets[it]})
		}
	}
	count := 0
	var rec func(tids *bitset.Bitset, startPos int)
	rec = func(tids *bitset.Bitset, startPos int) {
		count++
		for pos := startPos; pos < len(cands); pos++ {
			child := bitset.And(tids, cands[pos].tids)
			if isPF(child) {
				rec(child, pos+1)
			}
		}
	}
	for pos, c := range cands {
		rec(c.tids.Clone(), pos+1)
	}
	return count
}

// ExpectedSupportMine returns all itemsets whose *expected* support is
// ≥ minExpSup — the expected-support model of Chui et al.'s U-Apriori [9].
// Expected support is anti-monotone, so the same DFS applies.
func ExpectedSupportMine(db *uncertain.DB, minExpSup float64) []Itemset {
	idx := db.Index()
	probs := db.Probs()

	expOf := func(b *bitset.Bitset) float64 {
		e := 0.0
		b.ForEach(func(tid int) bool {
			e += probs[tid]
			return true
		})
		return e
	}

	type cand struct {
		item itemset.Item
		tids *bitset.Bitset
	}
	var cands []cand
	for _, it := range idx.Items {
		if expOf(idx.Tidsets[it]) >= minExpSup {
			cands = append(cands, cand{item: it, tids: idx.Tidsets[it]})
		}
	}
	var out []Itemset
	var rec func(x itemset.Itemset, tids *bitset.Bitset, exp float64, startPos int)
	rec = func(x itemset.Itemset, tids *bitset.Bitset, exp float64, startPos int) {
		out = append(out, Itemset{Items: x.Clone(), Count: tids.Count(), ExpectedSupport: exp})
		for pos := startPos; pos < len(cands); pos++ {
			child := bitset.And(tids, cands[pos].tids)
			if e := expOf(child); e >= minExpSup {
				rec(x.Extend(cands[pos].item), child, e, pos+1)
			}
		}
	}
	for pos, c := range cands {
		rec(itemset.Itemset{c.item}, c.tids.Clone(), expOf(c.tids), pos+1)
	}
	sort.Slice(out, func(i, j int) bool { return itemset.Compare(out[i].Items, out[j].Items) < 0 })
	return out
}
