package poibin

import (
	"math"
	"math/rand"
	"testing"
)

// drawProb mirrors the tail-DP fuzz palette: generic probabilities mixed
// with certain tuples (p = 1) and near-zero clamps (p → 0) — the regimes
// where deconvolution is respectively exact-by-shift and best-conditioned,
// and where update must still track the DP bit for bit.
func drawProb(rng *rand.Rand) float64 {
	switch rng.Intn(10) {
	case 0:
		return 1
	case 1:
		return 1e-12 + 1e-12*rng.Float64()
	case 2:
		return 0.999 + 0.000999*rng.Float64()
	default:
		return 0.05 + 0.9*rng.Float64()
	}
}

// TestUpdatePMFMatchesPMFTrunc grows a PMF one tuple at a time and requires
// exact (==, not ≈) agreement with a from-scratch PMFTrunc at every prefix:
// UpdatePMF is the leafPMF recurrence replayed incrementally, so any drift
// is a bug, not rounding.
func TestUpdatePMFMatchesPMFTrunc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := &Scratch{}
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(30)
		k := rng.Intn(n + 3) // includes k = 0 and k > n
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = drawProb(rng)
		}
		v := NewPMF()
		for i := 0; i < n; i++ {
			v = UpdatePMF(v, probs[i], k)
			want := s.PMFTrunc(probs[:i+1], k)
			if len(v) != len(want) {
				t.Fatalf("trial %d prefix %d k=%d: length %d, want %d", trial, i+1, k, len(v), len(want))
			}
			for c := range want {
				if v[c] != want[c] {
					t.Fatalf("trial %d prefix %d k=%d cell %d: got %v want %v (p=%v)",
						trial, i+1, k, c, v[c], want[c], probs[i])
				}
			}
			s.ReleasePMF(want)
		}
	}
}

// TestDeconvolveFuzz removes a random tuple from 20k random truncated PMFs
// and checks the result against a from-scratch DP over the remaining
// tuples. Deconvolve may refuse (ok=false → caller rebuilds), but when it
// answers it must be right; and in the regimes where it is exact by
// construction (p = 1 on exact vectors, any removal with k = 0) it must not
// refuse.
func TestDeconvolveFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := &Scratch{}
	accepted, refused := 0, 0
	for trial := 0; trial < 20000; trial++ {
		n := 1 + rng.Intn(40)
		k := rng.Intn(14) // includes k = 0 and k ≥ n
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = drawProb(rng)
		}
		full := s.PMFTrunc(probs, k)
		v := append([]float64(nil), full...)
		s.ReleasePMF(full)

		ri := rng.Intn(n)
		p := probs[ri]
		rest := make([]float64, 0, n-1)
		rest = append(rest, probs[:ri]...)
		rest = append(rest, probs[ri+1:]...)

		w, ok := Deconvolve(v, n, p, k)
		if !ok {
			refused++
			// Regimes that must never refuse: trivial k, and exact vectors
			// (n ≤ k) where one recurrence direction is well-pivoted.
			if k <= 0 {
				t.Fatalf("trial %d: refused k=%d removal", trial, k)
			}
			if n <= k && (p == 1 || p <= 0.5) {
				t.Fatalf("trial %d: refused exact-vector removal n=%d k=%d p=%v", trial, n, k, p)
			}
			continue
		}
		accepted++
		want := s.PMFTrunc(rest, k)
		if len(w) != len(want) {
			t.Fatalf("trial %d n=%d k=%d p=%v: length %d, want %d", trial, n, k, p, len(w), len(want))
		}
		for c := range want {
			if d := math.Abs(w[c] - want[c]); d > 1e-9 {
				t.Fatalf("trial %d n=%d k=%d p=%v cell %d: got %v want %v (diff %g)",
					trial, n, k, p, c, w[c], want[c], d)
			}
		}
		s.ReleasePMF(want)
	}
	if accepted == 0 {
		t.Fatal("deconvolution never accepted — fallback-only defeats the incremental path")
	}
	t.Logf("accepted %d, refused %d (%.1f%% incremental)",
		accepted, refused, 100*float64(accepted)/float64(accepted+refused))
}

// TestDeconvolveCertainTupleTruncated pins the information-loss case: with
// n > k the absorbing bin has merged Pr[S = k] and Pr[S ≥ k+1], so removing
// a certain tuple cannot be answered from the truncated vector alone.
func TestDeconvolveCertainTupleTruncated(t *testing.T) {
	s := &Scratch{}
	probs := []float64{1, 0.5, 0.5, 0.5}
	k := 2
	full := s.PMFTrunc(probs, k)
	v := append([]float64(nil), full...)
	s.ReleasePMF(full)
	if _, ok := Deconvolve(v, len(probs), 1, k); ok {
		t.Fatal("certain-tuple removal from an absorbing vector must refuse")
	}
}

// TestDeconvolveRoundtrip folds a tuple in and back out: the roundtrip must
// accept and land within tolerance of the starting vector.
func TestDeconvolveRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(20)
		k := 1 + rng.Intn(8)
		v := NewPMF()
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = 0.05 + 0.6*rng.Float64()
			v = UpdatePMF(v, probs[i], k)
		}
		p := 0.05 + 0.4*rng.Float64()
		grown := UpdatePMF(append([]float64(nil), v...), p, k)
		back, ok := Deconvolve(grown, n+1, p, k)
		if !ok {
			t.Fatalf("trial %d: roundtrip refused (n=%d k=%d p=%v)", trial, n, k, p)
		}
		for c := range v {
			if d := math.Abs(back[c] - v[c]); d > 1e-9 {
				t.Fatalf("trial %d cell %d: got %v want %v", trial, c, back[c], v[c])
			}
		}
	}
}
