package pfcim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"strings"
	"testing"

	pfcim "github.com/probdata/pfcim"
)

func ExampleMine() {
	db := pfcim.PaperExample()
	res, err := pfcim.Mine(db, pfcim.Options{MinSup: 2, PFCT: 0.8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Itemsets {
		fmt.Printf("%v Pr_FC=%.4f\n", r.Items, r.Prob)
	}
	// Output:
	// {a b c} Pr_FC=0.8754
	// {a b c d} Pr_FC=0.8100
}

func ExampleMineFrequent() {
	db := pfcim.PaperExample()
	pfis, err := pfcim.MineFrequent(db, pfcim.FrequentOptions{MinSup: 2, PFT: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(pfis), "probabilistic frequent itemsets")
	// Output:
	// 15 probabilistic frequent itemsets
}

func ExampleAbsoluteMinSup() {
	fmt.Println(pfcim.AbsoluteMinSup(1000, 0.4))
	// Output:
	// 400
}

func TestFacadeRoundtrip(t *testing.T) {
	db := pfcim.MustNewDatabase([]pfcim.Transaction{
		{Items: pfcim.NewItemset(3, 1, 2), Prob: 0.5},
		{Items: pfcim.NewItemset(1, 2), Prob: 1.0},
	})
	var buf bytes.Buffer
	if err := pfcim.WriteDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := pfcim.ReadDatabase(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 {
		t.Fatalf("roundtrip lost transactions: %d", back.N())
	}
}

func TestFacadeExactMiners(t *testing.T) {
	db := pfcim.PaperExample()
	d := pfcim.ExactData(db)
	fi := pfcim.MineFrequentExact(d, 2)
	fci := pfcim.MineClosedExact(d, 2)
	if len(fi) != 15 || len(fci) != 2 {
		t.Errorf("FI=%d (want 15), FCI=%d (want 2)", len(fi), len(fci))
	}
}

func TestFacadeOracles(t *testing.T) {
	db := pfcim.PaperExample()
	abc := pfcim.NewItemset(0, 1, 2)
	fp, err := pfcim.FreqProb(db, abc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fp-0.9726) > 1e-9 {
		t.Errorf("FreqProb = %v", fp)
	}
	fcp, err := pfcim.FreqClosedProb(db, abc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fcp-0.8754) > 1e-9 {
		t.Errorf("FreqClosedProb = %v", fcp)
	}
}

func TestFacadeGenerators(t *testing.T) {
	data := pfcim.GenerateMushroomLike(0.01, 1)
	if len(data) == 0 {
		t.Fatal("no mushroom data")
	}
	qd := pfcim.GenerateQuest(pfcim.QuestT20I10D30KP40(0.005, 2))
	if len(qd) != 150 {
		t.Fatalf("quest scale 0.005 gave %d transactions", len(qd))
	}
	db := pfcim.AssignGaussian(qd, 0.8, 0.1, 3)
	if db.N() != len(qd) {
		t.Fatal("AssignGaussian dropped transactions")
	}
}

// TestEndToEnd mines a generated uncertain dataset through the public API
// and sanity-checks the result against the probabilistic frequent set.
func TestEndToEnd(t *testing.T) {
	data := pfcim.GenerateMushroomLike(0.03, 5)
	db := pfcim.AssignGaussian(data, 0.7, 0.2, 6)
	ms := pfcim.AbsoluteMinSup(db.N(), 0.3)

	res, err := pfcim.Mine(db, pfcim.Options{MinSup: ms, PFCT: 0.8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pfis, err := pfcim.MineFrequent(db, pfcim.FrequentOptions{MinSup: ms, PFT: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	pfiKeys := map[string]float64{}
	for _, p := range pfis {
		pfiKeys[p.Items.Key()] = p.FreqProb
	}
	if len(res.Itemsets) == 0 {
		t.Fatal("no results — dataset or thresholds degenerate")
	}
	if len(res.Itemsets) > len(pfis) {
		t.Fatalf("PFCI (%d) cannot outnumber PFI (%d)", len(res.Itemsets), len(pfis))
	}
	for _, r := range res.Itemsets {
		prF, ok := pfiKeys[r.Items.Key()]
		if !ok {
			t.Fatalf("result %v is not probabilistically frequent", r.Items)
		}
		if r.Prob > prF+1e-9 {
			t.Fatalf("result %v: Pr_FC %v > Pr_F %v", r.Items, r.Prob, prF)
		}
	}
	// The BFS framework must agree on the itemset set.
	bfs, err := pfcim.Mine(db, pfcim.Options{MinSup: ms, PFCT: 0.8, Seed: 7, Search: pfcim.BFS})
	if err != nil {
		t.Fatal(err)
	}
	if len(bfs.Itemsets) != len(res.Itemsets) {
		t.Fatalf("BFS found %d itemsets, DFS %d", len(bfs.Itemsets), len(res.Itemsets))
	}
}

func TestFacadeExtendedAPI(t *testing.T) {
	db := pfcim.PaperExample()
	opts := pfcim.FrequentOptions{MinSup: 2, PFT: 0.8}

	td, err := pfcim.MineFrequentTopDown(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := pfcim.MineFrequent(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(td) != len(bu) {
		t.Errorf("top-down found %d PFIs, bottom-up %d", len(td), len(bu))
	}
	if got, err := pfcim.CountFrequent(db, opts); err != nil || got != len(bu) {
		t.Errorf("CountFrequent = %d (err %v), want %d", got, err, len(bu))
	}
	maxes, err := pfcim.MaximalFrequent(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(maxes) != 1 {
		t.Errorf("MaximalFrequent = %v", maxes)
	}
	// Uniform validation: every FrequentOptions consumer rejects bad
	// thresholds with an error instead of mining garbage.
	if _, err := pfcim.MineFrequent(db, pfcim.FrequentOptions{MinSup: -1, PFT: 0.5}); err == nil {
		t.Error("MineFrequent accepted negative MinSup")
	}
	if _, err := pfcim.MineFrequentTopDown(db, pfcim.FrequentOptions{MinSup: 2, PFT: 1.2}); err == nil {
		t.Error("MineFrequentTopDown accepted PFT > 1")
	}
	if _, err := pfcim.MaximalFrequent(db, pfcim.FrequentOptions{MinSup: 2, PFT: -0.1}); err == nil {
		t.Error("MaximalFrequent accepted negative PFT")
	}
	if _, err := pfcim.CountFrequent(db, pfcim.FrequentOptions{MinSup: 2, PFT: 1}); err == nil {
		t.Error("CountFrequent accepted PFT = 1 (no itemset can exceed it)")
	}
	if canon, err := pfcim.CanonicalFrequentOptions(pfcim.FrequentOptions{PFT: 0.3, DisableCH: true}); err != nil || canon.MinSup != 1 || canon.DisableCH {
		t.Errorf("CanonicalFrequentOptions = %+v err %v, want MinSup 1, DisableCH cleared", canon, err)
	}
	uf := pfcim.UFGrowth(db, 2.0)
	es := pfcim.MineExpectedSupport(db, 2.0)
	if len(uf) != len(es) {
		t.Errorf("UFGrowth %d vs ExpectedSupport %d", len(uf), len(es))
	}
	if psup := pfcim.ProbabilisticSupport(db, pfcim.NewItemset(0, 1, 2), 0.8); psup < 2 {
		t.Errorf("ProbabilisticSupport = %d", psup)
	}
	if got := pfcim.MineProbSupportClosed(db, 2, 0.8); len(got) == 0 {
		t.Error("MineProbSupportClosed returned nothing")
	}
	if ext := pfcim.PaperExampleExtended(); ext.N() != 6 {
		t.Errorf("extended example has %d tuples", ext.N())
	}

	abc := pfcim.NewItemset(0, 1, 2)
	exact, err := pfcim.ExactFreqClosedProb(db, abc, 2)
	if err != nil || math.Abs(exact-0.8754) > 1e-9 {
		t.Errorf("ExactFreqClosedProb = %v, %v", exact, err)
	}
	est, err := pfcim.EstimateFreqClosedProb(db, abc, 2, 0.05, 0.05, 3)
	if err != nil || math.Abs(est-0.8754) > 0.05 {
		t.Errorf("EstimateFreqClosedProb = %v, %v", est, err)
	}
	ws := pfcim.NewWorldSampler(db, 4)
	got, err := ws.FreqClosedProb(abc, 2, 50000)
	if err != nil || math.Abs(got-0.8754) > 0.02 {
		t.Errorf("WorldSampler = %v, %v", got, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pfcim.MineContext(ctx, db, pfcim.Options{MinSup: 2, PFCT: 0.8}); err == nil {
		t.Error("cancelled MineContext should fail")
	}
}

func TestFacadeParallelMine(t *testing.T) {
	data := pfcim.GenerateMushroomLike(0.03, 5)
	db := pfcim.AssignGaussian(data, 0.7, 0.2, 6)
	ms := pfcim.AbsoluteMinSup(db.N(), 0.3)
	serial, err := pfcim.Mine(db, pfcim.Options{MinSup: ms, PFCT: 0.8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	par, err := pfcim.Mine(db, pfcim.Options{MinSup: ms, PFCT: 0.8, Seed: 7, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Itemsets) != len(par.Itemsets) {
		t.Errorf("parallel result differs: %d vs %d", len(par.Itemsets), len(serial.Itemsets))
	}
}

func TestFacadeMineSweep(t *testing.T) {
	db := pfcim.PaperExample()
	base := pfcim.Options{MinSup: 2, PFCT: 0.8, Seed: 1}
	points := []pfcim.SweepPoint{{PFCT: 0.5}, {PFCT: 0.8}, {PFCT: 0.9}}
	res, err := pfcim.MineSweep(context.Background(), db, points, base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FullEnumerations != 1 {
		t.Errorf("FullEnumerations = %d, want 1 for a pure pfct sweep", res.Stats.FullEnumerations)
	}
	for i, pr := range res.Points {
		direct, err := pfcim.Mine(db, pr.Options)
		if err != nil {
			t.Fatal(err)
		}
		got := mustJSONBytes(t, pr.CoreJSON().Itemsets)
		want := mustJSONBytes(t, direct.JSON().Itemsets)
		if !bytes.Equal(got, want) {
			t.Errorf("point %d: sweep itemsets differ from independent Mine", i)
		}
	}
}

func TestFacadeMineTopKContext(t *testing.T) {
	db := pfcim.PaperExample()
	top, err := pfcim.MineTopKContext(context.Background(), db, 2, 1, pfcim.Options{Seed: 1})
	if err != nil || len(top) != 1 {
		t.Fatalf("MineTopKContext = %v, %v", top, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pfcim.MineTopKContext(ctx, db, 2, 1, pfcim.Options{Seed: 1}); err == nil {
		t.Error("cancelled MineTopKContext should fail")
	}
}

func mustJSONBytes(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFacadeWindowMiner(t *testing.T) {
	w, err := pfcim.NewWindow(8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := pfcim.NewWindowMiner(w, pfcim.Options{MinSup: 2, PFCT: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range pfcim.PaperExample().Transactions() {
		if err := m.Push(tr); err != nil {
			t.Fatal(err)
		}
	}
	res, diff, err := pfcim.MineWindowContext(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Itemsets) != 2 || len(diff.Added) != 2 {
		t.Fatalf("Table II window mine: %d itemsets, diff %+v", len(res.Itemsets), diff)
	}
	// Round two without pushes: full reuse, empty diff.
	res2, diff2, err := pfcim.MineWindowContext(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if !diff2.Empty() || diff2.Unchanged != 2 || res2.Stats.SubtreesReused == 0 {
		t.Fatalf("no-change round: diff %+v stats %+v", diff2, res2.Stats)
	}
	// The unbounded window is append-only.
	u := pfcim.NewUnboundedWindow()
	for i := 0; i < 50; i++ {
		if _, evicted, err := u.Push(pfcim.Transaction{Items: pfcim.NewItemset(i % 3), Prob: 0.5}); err != nil || evicted {
			t.Fatalf("unbounded push %d: evicted=%v err=%v", i, evicted, err)
		}
	}
	if u.Len() != 50 {
		t.Fatalf("unbounded Len = %d", u.Len())
	}
}
