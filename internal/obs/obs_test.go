package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilFastPath: every Recorder method must be a no-op on a nil receiver
// — this is the disabled path the miner takes when Options.Tracer is unset.
func TestNilFastPath(t *testing.T) {
	var r *Recorder
	if got := r.Now(); got != 0 {
		t.Fatalf("nil Recorder.Now() = %d, want 0", got)
	}
	r.Span(PhaseBoundCheck, 3, 0) // must not panic
	r.Node(2, 0, 42)
	var tr *Tracer
	if tr.Recorder(0) != nil {
		t.Fatal("nil Tracer.Recorder must return nil")
	}
	tr.AddMineWall(100)
	if tr.Profile() != nil {
		t.Fatal("nil Tracer.Profile must return nil")
	}
}

// TestAggregation: phase and depth aggregates must reflect exactly what was
// recorded, and Node must attribute selfNS (not the full span) to expand.
func TestAggregation(t *testing.T) {
	tr := New()
	r := tr.Recorder(0)

	start := r.Now()
	time.Sleep(2 * time.Millisecond)
	r.Span(PhaseCandidates, 0, start)

	nodeStart := r.Now()
	time.Sleep(time.Millisecond)
	r.Node(3, nodeStart, 500) // self time deliberately smaller than the span

	tr.AddMineWall(10_000_000)
	p := tr.Profile()
	if p.TotalNS != 10_000_000 {
		t.Fatalf("TotalNS = %d", p.TotalNS)
	}
	if ns := p.PhaseWallNS("candidates"); ns < int64(time.Millisecond) {
		t.Fatalf("candidates wall %dns, want ≥ 1ms", ns)
	}
	if ns := p.PhaseWallNS("expand"); ns != 500 {
		t.Fatalf("expand self time = %dns, want exactly the 500ns attributed", ns)
	}
	if len(p.Depths) != 1 || p.Depths[0].Depth != 3 || p.Depths[0].Nodes != 1 || p.Depths[0].WallNS != 500 {
		t.Fatalf("depth profile = %+v", p.Depths)
	}
	if len(p.Workers) != 1 || p.Workers[0].Spans != 2 {
		t.Fatalf("worker profile = %+v", p.Workers)
	}
	if _, err := json.Marshal(p); err != nil {
		t.Fatalf("profile must serialize: %v", err)
	}
}

// TestRingOverwrite: a full ring keeps the most recent spans and counts the
// evictions; aggregates stay exact.
func TestRingOverwrite(t *testing.T) {
	tr := NewWithCapacity(4)
	r := tr.Recorder(0)
	for i := 0; i < 10; i++ {
		r.Span(PhaseSample, i, r.Now())
	}
	p := tr.Profile()
	if p.SpansDropped != 6 {
		t.Fatalf("SpansDropped = %d, want 6", p.SpansDropped)
	}
	if c := p.Phases[PhaseSample].Count; c != 10 {
		t.Fatalf("aggregate count = %d, want 10 despite ring eviction", c)
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	// The 4 retained spans are depths 6..9, emitted oldest-first.
	out := sb.String()
	if strings.Count(out, `"ph":"X"`) != 4 {
		t.Fatalf("chrome trace should hold 4 events:\n%s", out)
	}
	if !strings.Contains(out, `"args":{"depth":6}`) || strings.Contains(out, `"args":{"depth":5}`) {
		t.Fatalf("ring should retain the most recent spans:\n%s", out)
	}
}

// TestChromeTraceIsJSON: the exporter's output must parse as a JSON array
// of events with the fields the trace viewers require.
func TestChromeTraceIsJSON(t *testing.T) {
	tr := New()
	r0, r1 := tr.Recorder(0), tr.Recorder(1)
	r0.Span(PhaseCandidates, 0, r0.Now())
	r1.Node(2, r1.Now(), 10)
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for _, ev := range events {
		for _, k := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
	}
}

// TestHistogram: bucket boundaries are inclusive upper bounds and the
// snapshot is cumulative, matching Prometheus le semantics.
func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // ≤ 1ms
	h.Observe(time.Millisecond)       // ≤ 1ms (inclusive)
	h.Observe(5 * time.Millisecond)   // ≤ 10ms
	h.Observe(time.Second)            // +Inf
	snap := h.Snapshot()
	if want := []int64{2, 3, 3}; snap.Cumulative[0] != want[0] || snap.Cumulative[1] != want[1] || snap.Cumulative[2] != want[2] {
		t.Fatalf("cumulative = %v, want %v", snap.Cumulative, want)
	}
	if snap.Count != 4 {
		t.Fatalf("count = %d, want 4", snap.Count)
	}
	if snap.SumSeconds < 1.0065 || snap.SumSeconds > 1.0066 {
		t.Fatalf("sum = %v", snap.SumSeconds)
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines; run under
// -race this is the data-race check, and the final count must be exact.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(JobBuckets)
	const goroutines, per = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}

// TestTracerConcurrentRecorders: distinct workers may record concurrently
// on one tracer (the parallel miner does); -race validates isolation.
func TestTracerConcurrentRecorders(t *testing.T) {
	tr := New()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := tr.Recorder(w)
			for i := 0; i < 500; i++ {
				r.Node(i%6, r.Now(), int64(i))
				r.Span(PhaseBoundCheck, i%6, r.Now())
			}
		}(w)
	}
	wg.Wait()
	p := tr.Profile()
	if len(p.Workers) != workers {
		t.Fatalf("got %d worker profiles, want %d", len(p.Workers), workers)
	}
	if c := p.Phases[PhaseBoundCheck].Count; c != workers*500 {
		t.Fatalf("bound-check count = %d, want %d", c, workers*500)
	}
}
