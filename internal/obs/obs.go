// Package obs is the low-overhead observability substrate shared by the
// miner and the pfcimd daemon: a span recorder that attributes wall time to
// the phases of the paper's Bounding–Pruning–Checking cascade, the profile
// aggregation attached to mining results, a Chrome trace-event exporter,
// and the fixed-bucket latency histograms the daemon's Prometheus endpoint
// serves.
//
// Design constraints (DESIGN.md §11):
//
//   - Tracing must never perturb results. The recorder only reads the
//     monotonic clock and writes into tracer-owned memory; no mining state
//     is touched, so results are byte-identical with tracing on or off.
//   - The disabled path must be free. Every Recorder method is defined on a
//     nil receiver and returns immediately, so an untraced run pays one nil
//     check per call site — no interface dispatch, no allocation.
//   - The enabled path must be cheap and allocation-free in steady state.
//     Each worker owns a private Recorder (single writer, no locks) with a
//     preallocated span ring; when the ring fills, the oldest detailed
//     spans are overwritten but the aggregate profile keeps counting, so a
//     long run degrades to "recent window + exact totals" rather than
//     growing without bound.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Phase identifies where mining wall time went, mapped to the paper's
// algorithm structure (§IV): the candidate phase of Fig. 1, the ProbFC
// enumeration of Fig. 3, and the three stages of the §IV.B checking
// cascade.
type Phase uint8

const (
	// PhaseCandidates is the single-item candidate construction with
	// Chernoff-Hoeffding pruning (Fig. 1 phase 1, Lemma 4.1).
	PhaseCandidates Phase = iota
	// PhaseExpand is enumeration-tree node expansion: extension probing,
	// tidset intersection, and the Lemma 4.1–4.3 pruning decisions. Span
	// durations cover the whole subtree (so traces nest); only the node's
	// self time — net of children and checking — enters the aggregate.
	PhaseExpand
	// PhaseBoundCheck is the checking cascade up to the Lemma 4.4 verdict:
	// clause construction, the clause system, and the first-order plus
	// pairwise union bounds.
	PhaseBoundCheck
	// PhaseExactUnion is the exact inclusion–exclusion resolution of the
	// extension-event union.
	PhaseExactUnion
	// PhaseSample is the ApproxFCP Karp–Luby Monte-Carlo estimator.
	PhaseSample

	// NumPhases is the number of distinct phases.
	NumPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseCandidates:
		return "candidates"
	case PhaseExpand:
		return "expand"
	case PhaseBoundCheck:
		return "bound-check"
	case PhaseExactUnion:
		return "exact-union"
	case PhaseSample:
		return "sampling"
	}
	return fmt.Sprintf("phase-%d", uint8(p))
}

// Span is one completed timed region. Start is nanoseconds since the
// tracer's epoch (monotonic), Dur its length; Depth is the enumeration
// depth (|X|) or 0 where not applicable, Worker the recorder's worker id.
type Span struct {
	Start  int64
	Dur    int64
	Phase  Phase
	Depth  int16
	Worker int16
}

// defaultRingSpans bounds each worker's detailed-span ring (≈24 B/span →
// ~400 KiB per worker at the default). Aggregates are exact regardless.
const defaultRingSpans = 1 << 14

// Tracer owns one observed region of work — typically one mining run, or
// one daemon job (a sweep job's tracer spans all its enumerations and
// replays). It hands out per-worker Recorders and merges them into a
// Profile. Recorder creation is synchronized; recording itself is
// lock-free (one writer per Recorder).
type Tracer struct {
	epoch    time.Time
	ringCap  int
	mu       sync.Mutex
	recs     []*Recorder
	remote   map[string]*Recorder // imported remote batches, keyed by worker label
	totalNS  int64                // mine wall time accumulated via AddMineWall
	mineRuns int64
}

// New returns a Tracer with the default per-worker span-ring capacity.
func New() *Tracer { return NewWithCapacity(defaultRingSpans) }

// NewWithCapacity bounds each worker's detailed-span ring to ringSpans
// spans; 0 keeps aggregate profiling only (no Chrome trace detail).
func NewWithCapacity(ringSpans int) *Tracer {
	if ringSpans < 0 {
		ringSpans = 0
	}
	return &Tracer{epoch: time.Now(), ringCap: ringSpans}
}

// Recorder returns the recorder of the given worker id (0 = the serial
// miner / main goroutine), creating it on first use. The same id always
// returns the same recorder, so sequential phases of one goroutine share a
// ring. Safe for concurrent use; the returned Recorder is single-writer.
func (t *Tracer) Recorder(worker int) *Recorder {
	if t == nil || worker < 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.recs) <= worker {
		r := &Recorder{t: t, worker: int16(len(t.recs))}
		if t.ringCap > 0 {
			r.spans = make([]Span, 0, t.ringCap)
		}
		t.recs = append(t.recs, r)
	}
	return t.recs[worker]
}

// AddMineWall accounts one mining run's total wall time; Profile reports
// the sum as TotalNS so per-phase shares have a denominator.
func (t *Tracer) AddMineWall(ns int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.totalNS += ns
	t.mineRuns++
	t.mu.Unlock()
}

// Recorder is one worker's private span sink. All methods are nil-safe:
// calling them on a nil *Recorder is the disabled fast path and does
// nothing. A Recorder must only be written by one goroutine at a time;
// reading (Profile, WriteChromeTrace) is only valid after the observed
// work has completed.
type Recorder struct {
	t      *Tracer
	worker int16
	label  string // non-empty for imported remote recorders

	phaseNS    [NumPhases]int64
	phaseCount [NumPhases]int64
	depthNS    []int64 // PhaseExpand self time per enumeration depth
	depthCount []int64

	spans   []Span // ring of the most recent detailed spans
	next    int    // overwrite cursor once len == cap
	dropped int64  // spans evicted from the ring
}

// Now returns nanoseconds since the tracer's epoch (monotonic), or 0 on
// the nil fast path. Span starts and self-time segment boundaries read it.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.t.epoch))
}

// Span records a region of phase p that started at start (a prior Now
// value) and ends now, both in the detailed ring and the aggregate.
func (r *Recorder) Span(p Phase, depth int, start int64) {
	if r == nil {
		return
	}
	end := int64(time.Since(r.t.epoch))
	r.ring(p, depth, start, end-start)
	r.phaseNS[p] += end - start
	r.phaseCount[p]++
}

// Node records one enumeration-tree node: the detailed span covers
// [start, now] — the full subtree, so Chrome traces nest into a flame
// graph — while only selfNS (the node's own expansion work, net of inline
// children and of the checking cascade) enters the expand-phase and
// per-depth aggregates, keeping phase totals additive.
func (r *Recorder) Node(depth int, start, selfNS int64) {
	if r == nil {
		return
	}
	end := int64(time.Since(r.t.epoch))
	r.ring(PhaseExpand, depth, start, end-start)
	r.phaseNS[PhaseExpand] += selfNS
	r.phaseCount[PhaseExpand]++
	for len(r.depthNS) <= depth {
		r.depthNS = append(r.depthNS, 0)
		r.depthCount = append(r.depthCount, 0)
	}
	r.depthNS[depth] += selfNS
	r.depthCount[depth]++
}

func (r *Recorder) ring(p Phase, depth int, start, dur int64) {
	sp := Span{Start: start, Dur: dur, Phase: p, Depth: int16(depth), Worker: r.worker}
	switch {
	case len(r.spans) < cap(r.spans):
		r.spans = append(r.spans, sp)
	case cap(r.spans) > 0:
		r.spans[r.next] = sp
		r.next = (r.next + 1) % cap(r.spans)
		r.dropped++
	default:
		r.dropped++
	}
}

// PhaseProfile is the aggregate of one phase.
type PhaseProfile struct {
	Phase string `json:"phase"`
	// WallNS is the total self time attributed to the phase. Phases
	// partition a worker's busy time, so in a serial run the phase sums
	// approach TotalNS.
	WallNS int64 `json:"wall_ns"`
	Count  int64 `json:"count"`
}

// DepthProfile is the expand-phase aggregate of one enumeration depth —
// the per-level cost shape of the DFS (depth 1 = single items).
type DepthProfile struct {
	Depth  int   `json:"depth"`
	WallNS int64 `json:"wall_ns"`
	Nodes  int64 `json:"nodes"`
}

// WorkerProfile is one worker's share of the attributed time; comparing
// BusyNS across workers makes work-stealing imbalance visible. Remote shard
// workers carry their address in Label (Worker is -1) plus their own
// per-phase breakdown — their busy time is deliberately NOT folded into the
// profile's global phase aggregates, because the coordinator's bound-check
// spans already cover the RPC waits those remote spans sit inside
// (DESIGN §16: that exclusion is what keeps phase sums ≈ wall time).
type WorkerProfile struct {
	Worker int    `json:"worker"`
	Label  string `json:"label,omitempty"`
	BusyNS int64  `json:"busy_ns"`
	Spans  int64  `json:"spans"`
	// Phases is the per-phase breakdown of a remote worker's spans; empty
	// for local workers (their time is in Profile.Phases).
	Phases []PhaseProfile `json:"phases,omitempty"`
}

// Profile is the merged wall-time attribution of everything the tracer
// observed. It is attached to core.Result (tracer-enabled runs) and served
// by pfcimd's GET /v1/jobs/{id}/trace.
type Profile struct {
	// TotalNS is the summed wall time of the mining runs observed (via
	// AddMineWall); 0 when the tracer never saw a full run.
	TotalNS int64           `json:"total_ns"`
	Phases  []PhaseProfile  `json:"phases"`
	Depths  []DepthProfile  `json:"depths,omitempty"`
	Workers []WorkerProfile `json:"workers,omitempty"`
	// SpansDropped counts detailed spans evicted from the rings; aggregates
	// above are exact regardless.
	SpansDropped int64 `json:"spans_dropped,omitempty"`
}

// PhaseWallNS returns the attributed wall time of the named phase.
func (p *Profile) PhaseWallNS(name string) int64 {
	for _, ph := range p.Phases {
		if ph.Phase == name {
			return ph.WallNS
		}
	}
	return 0
}

// Profile merges every recorder into one Profile. Call it only after the
// observed work has completed (the miner's pool join provides the
// happens-before edge).
func (t *Tracer) Profile() *Profile {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	recs := make([]*Recorder, len(t.recs))
	copy(recs, t.recs)
	remotes := t.remoteRecorders()
	p := &Profile{TotalNS: t.totalNS}
	t.mu.Unlock()

	var phaseNS, phaseCount [NumPhases]int64
	var depthNS, depthCount []int64
	for _, r := range recs {
		var busy, spans int64
		for ph := Phase(0); ph < NumPhases; ph++ {
			phaseNS[ph] += r.phaseNS[ph]
			phaseCount[ph] += r.phaseCount[ph]
			busy += r.phaseNS[ph]
			spans += r.phaseCount[ph]
		}
		for d, ns := range r.depthNS {
			for len(depthNS) <= d {
				depthNS = append(depthNS, 0)
				depthCount = append(depthCount, 0)
			}
			depthNS[d] += ns
			depthCount[d] += r.depthCount[d]
		}
		p.SpansDropped += r.dropped
		p.Workers = append(p.Workers, WorkerProfile{Worker: int(r.worker), BusyNS: busy, Spans: spans})
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		p.Phases = append(p.Phases, PhaseProfile{Phase: ph.String(), WallNS: phaseNS[ph], Count: phaseCount[ph]})
	}
	for d := range depthNS {
		if depthCount[d] == 0 {
			continue
		}
		p.Depths = append(p.Depths, DepthProfile{Depth: d, WallNS: depthNS[d], Nodes: depthCount[d]})
	}
	// Remote workers: labeled, with their own phase breakdown, excluded
	// from the global phase sums (see WorkerProfile).
	for _, r := range remotes {
		wp := WorkerProfile{Worker: -1, Label: r.label}
		for ph := Phase(0); ph < NumPhases; ph++ {
			if r.phaseCount[ph] == 0 {
				continue
			}
			wp.BusyNS += r.phaseNS[ph]
			wp.Spans += r.phaseCount[ph]
			wp.Phases = append(wp.Phases, PhaseProfile{Phase: ph.String(), WallNS: r.phaseNS[ph], Count: r.phaseCount[ph]})
		}
		p.SpansDropped += r.dropped
		p.Workers = append(p.Workers, wp)
	}
	return p
}

// RemoteWorker returns the labeled remote worker's profile entry, or nil.
func (p *Profile) RemoteWorker(label string) *WorkerProfile {
	for i := range p.Workers {
		if p.Workers[i].Label == label {
			return &p.Workers[i]
		}
	}
	return nil
}
