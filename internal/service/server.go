package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/shard"
	"github.com/probdata/pfcim/internal/store"
	"github.com/probdata/pfcim/internal/sweep"
	"github.com/probdata/pfcim/internal/uncertain"
)

// Config tunes one daemon instance. The zero value is serviceable: defaults
// are applied by New.
type Config struct {
	// Workers is the mining worker pool size. Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker; a full
	// queue rejects submissions with 503. Default 64.
	QueueDepth int
	// CacheSize bounds the result cache (entries); ≤ -1 disables caching,
	// 0 means the default 128.
	CacheSize int
	// MaxJobTime caps every job's wall time; 0 means no deadline. A job may
	// request a shorter timeout, never a longer one.
	MaxJobTime time.Duration
	// TailMemoEntries is applied to jobs that leave Options.TailMemoEntries
	// at 0, bounding per-job memory across the pool (see core.Options).
	TailMemoEntries int
	// MaxUploadBytes bounds dataset upload bodies. Default 256 MiB.
	MaxUploadBytes int64
	// AllowPathLoad enables registering datasets from server-local paths
	// ({"path": ...} bodies). Off by default: with it on, any client can
	// read any file the daemon can, so it is for trusted setups only.
	AllowPathLoad bool
	// SlowJobThreshold, when positive, logs a warning (and bumps the
	// slow_jobs counter) for every job whose wall time exceeds it.
	SlowJobThreshold time.Duration
	// DisableJobTracing turns off the per-job phase tracer; jobs then skip
	// the span-recording code paths entirely and GET /v1/jobs/{id}/trace
	// returns 404. Tracing never changes results, so this exists only to
	// shave the last percent of overhead on latency-critical deployments.
	DisableJobTracing bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles expose internals, so opt in per deployment.
	EnablePprof bool
	// Shards is the default core.Options.Shards applied to jobs (and sweep
	// points) that leave the field at 0. ≥ 2 partitions every tail
	// computation by transaction range; without ShardWorkers the partition
	// arithmetic runs in-process, which changes results only at the
	// floating-point regrouping level (≪ 1e-9) and gives distinct cache
	// keys per layout.
	Shards int
	// ShardWorkers lists shard worker base addresses (host:port or full
	// URLs). Non-empty runs the daemon as a coordinator: registered
	// datasets are range-partitioned onto the workers over the consistent-
	// hash ring, and sharded jobs evaluate per-shard tails over RPC.
	// Shards < 2 is raised to max(2, len(ShardWorkers)).
	ShardWorkers []string
	// ShardRPCTimeout bounds each shard RPC attempt. Default 5s.
	ShardRPCTimeout time.Duration
	// ShardHealthInterval is the period of the background worker health
	// probe loop. Default 10s.
	ShardHealthInterval time.Duration
	// StoreDir, when set, makes the daemon durable: dataset lineages are
	// written through to a disk store before being acknowledged, finished
	// results are snapshotted on write, and startup restores both — prior
	// results then serve as cache hits and lineages resume at their
	// recorded version. Empty keeps the daemon fully in-memory.
	StoreDir string
	// QuotaRate, when positive, admits at most this many job/sweep
	// submissions per second per tenant (X-Pfcim-Tenant header; absent maps
	// to a shared default tenant). Excess submissions are shed with a
	// structured 429. Zero disables per-tenant quotas.
	QuotaRate float64
	// QuotaBurst is the token-bucket depth behind QuotaRate; 0 derives one
	// second's worth of tokens (minimum 1).
	QuotaBurst int
	// Logger receives structured logs. Default: slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 256 << 20
	}
	if len(c.ShardWorkers) > 0 && c.Shards < 2 {
		c.Shards = len(c.ShardWorkers)
		if c.Shards < 2 {
			c.Shards = 2
		}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the pfcimd daemon core: registry + job manager + cache +
// metrics behind an http.Handler. Create with New, serve Handler(), and
// call Drain on shutdown.
type Server struct {
	cfg       Config
	log       *slog.Logger
	registry  *Registry
	jobs      *Manager
	cache     *resultCache
	metrics   *metrics
	store     *store.Store // nil without StoreDir
	persist   *persister   // nil without StoreDir
	quota     *admission   // nil without QuotaRate
	started   time.Time
	mux       *http.ServeMux
	handler   http.Handler       // mux behind the request-ID middleware
	reqSeq    atomic.Int64       // request-ID sequence
	shards    *shard.Client      // nil unless ShardWorkers were configured
	shardStop context.CancelFunc // stops the worker health loop
}

// New builds a Server and starts its worker pool. With a StoreDir it opens
// (tolerantly — damaged segments are quarantined, not fatal) and restores
// the durable store first, so the returned server already serves every
// recorded lineage and snapshotted result.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		registry: NewRegistry(),
		cache:    newResultCache(cfg.CacheSize),
		metrics:  newMetrics(),
		quota:    newAdmission(cfg.QuotaRate, cfg.QuotaBurst),
		started:  time.Now(),
		mux:      http.NewServeMux(),
	}
	if cfg.StoreDir != "" {
		st, err := store.Recover(cfg.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("service: open durable store: %w", err)
		}
		s.store = st
		s.persist = &persister{st: st, log: s.log, mtr: s.metrics}
		s.registry.persist = s.persist
		s.cache.persist = s.persist
		if q := st.Quarantined(); len(q) > 0 {
			s.metrics.StoreQuarantined.Add(int64(len(q)))
			s.log.Warn("durable store quarantined damaged segments", "files", q)
		}
		restored, err := s.registry.restore(s.persist)
		if err != nil {
			return nil, fmt.Errorf("service: restore durable store: %w", err)
		}
		_, _, results := st.Counts()
		s.log.Info("durable store restored", "dir", cfg.StoreDir,
			"datasets", restored, "results", results)
	}
	if len(cfg.ShardWorkers) > 0 {
		client, err := shard.NewClient(cfg.ShardWorkers, cfg.ShardRPCTimeout, s.metrics)
		if err != nil {
			return nil, fmt.Errorf("service: shard client: %w", err)
		}
		s.shards = client
		hctx, stop := context.WithCancel(context.Background())
		s.shardStop = stop
		go func() {
			client.CheckHealth(hctx) // prime the worker_up gauges
			client.HealthLoop(hctx, cfg.ShardHealthInterval)
		}()
	}
	s.jobs = newManager(cfg, s.cache, s.metrics, s.log, s.shards)

	s.mux.HandleFunc("POST /v1/datasets", s.handleRegisterDataset)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("GET /v1/datasets/{id}", s.handleGetDataset)
	s.mux.HandleFunc("POST /v1/datasets/{id}/append", s.handleAppendDataset)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.metrics.serveHTTP)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.handler = s.withRequestID(s.mux)
	return s, nil
}

// Handler returns the daemon's HTTP handler (request-ID middleware
// included: every response carries X-Request-Id and every handler log line
// the matching request_id attribute).
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the dataset registry (cmd/pfcimd preloads datasets
// through it).
func (s *Server) Registry() *Registry { return s.registry }

// Jobs exposes the job manager.
func (s *Server) Jobs() *Manager { return s.jobs }

// Metrics returns a snapshot of every daemon counter.
func (s *Server) Metrics() map[string]int64 { return s.metrics.snapshot() }

// Drain gracefully shuts the worker pool down: intake stops, queued jobs
// are canceled, running jobs finish (until ctx expires, at which point they
// are canceled and awaited). The shard-worker health loop stops first.
func (s *Server) Drain(ctx context.Context) error {
	if s.shardStop != nil {
		s.shardStop()
	}
	return s.jobs.Drain(ctx)
}

// placeShards ships a freshly registered dataset's range partition to the
// shard workers; a no-op on a non-coordinator. A dataset with fewer
// transactions than shards is left unplaced — jobs against it mine
// in-process with the byte-identical inline partition arithmetic.
func (s *Server) placeShards(ctx context.Context, ds *Dataset) error {
	if s.shards == nil || s.shards.Placed(ds.ID) {
		return nil
	}
	if ds.DB().N() < s.cfg.Shards {
		s.log.Warn("dataset smaller than shard count; its jobs mine in-process",
			"dataset", ds.ID, "transactions", ds.DB().N(), "shards", s.cfg.Shards)
		return nil
	}
	if err := s.shards.Place(ctx, ds.ID, ds.DB(), s.cfg.Shards); err != nil {
		return fmt.Errorf("service: shard placement failed: %w", err)
	}
	s.log.Info("dataset placed on shard workers", "dataset", ds.ID, "shards", s.cfg.Shards)
	return nil
}

// --- wire types ---

// DatasetInfo is the wire form of a registered dataset version. Lineage is
// the root version's id (== ID for a freshly registered dataset), Version
// this version's 1-based position, LatestVersion the lineage's newest —
// when Version < LatestVersion, this version has been superseded by
// appends (it stays addressable and minable forever).
type DatasetInfo struct {
	ID              string    `json:"id"`
	Lineage         string    `json:"lineage"`
	Version         int       `json:"version"`
	LatestVersion   int       `json:"latest_version"`
	Immutable       bool      `json:"immutable,omitempty"`
	NumTransactions int       `json:"num_transactions"`
	NumItems        int       `json:"num_items"`
	AvgLength       float64   `json:"avg_length"`
	MaxLength       int       `json:"max_length"`
	MeanProb        float64   `json:"mean_prob"`
	RegisteredAt    time.Time `json:"registered_at"`
}

func (s *Server) datasetInfo(d *Dataset) DatasetInfo {
	return DatasetInfo{
		ID:              d.ID,
		Lineage:         d.Lineage,
		Version:         d.Version,
		LatestVersion:   s.registry.LatestVersion(d.Lineage),
		Immutable:       d.Immutable,
		NumTransactions: d.Stats.NumTransactions,
		NumItems:        d.Stats.NumItems,
		AvgLength:       d.Stats.AvgLength,
		MaxLength:       d.Stats.MaxLength,
		MeanProb:        d.Stats.MeanProb,
		RegisteredAt:    d.RegisteredAt,
	}
}

// jobRequest is the POST /v1/jobs body.
type jobRequest struct {
	Dataset   string           `json:"dataset"`
	Options   core.OptionsJSON `json:"options"`
	TimeoutMS int64            `json:"timeout_ms,omitempty"`
}

// sweepRequest is the POST /v1/sweeps body: a base option set plus the grid
// points, each overriding only the thresholds it sets.
type sweepRequest struct {
	Dataset   string            `json:"dataset"`
	Options   core.OptionsJSON  `json:"options"`
	Points    []sweep.PointJSON `json:"points"`
	TimeoutMS int64             `json:"timeout_ms,omitempty"`
}

// errorResponse is every error body; Field is set when the error is
// attributable to one request field (e.g. an unknown or mistyped one).
// Load-shed rejections (429) additionally carry the machine-readable
// Reason ("quota" or "queue_full"), the tenant that was throttled, and a
// retry hint mirroring the Retry-After header.
type errorResponse struct {
	Error        string `json:"error"`
	Field        string `json:"field,omitempty"`
	Reason       string `json:"reason,omitempty"`
	Tenant       string `json:"tenant,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// badFieldError carries the name of the request field that caused a 400.
type badFieldError struct {
	field string
	err   error
}

func (e *badFieldError) Error() string { return e.err.Error() }
func (e *badFieldError) Unwrap() error { return e.err }

// decodeStrict decodes a JSON request body rejecting unknown fields, so a
// misspelled option fails loudly instead of silently falling back to a
// default. Unknown-field and type errors name the offending field in the
// structured response.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	if err == nil {
		return nil
	}
	const marker = `json: unknown field "`
	if msg := err.Error(); strings.HasPrefix(msg, marker) {
		field := strings.TrimSuffix(strings.TrimPrefix(msg, marker), `"`)
		return &badFieldError{field: field,
			err: fmt.Errorf("service: unknown field %q in request body", field)}
	}
	var ute *json.UnmarshalTypeError
	if errors.As(err, &ute) && ute.Field != "" {
		return &badFieldError{field: ute.Field,
			err: fmt.Errorf("service: field %q: cannot decode %s into %s", ute.Field, ute.Value, ute.Type)}
	}
	return fmt.Errorf("service: bad JSON body: %w", err)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("response encode failed", "error", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	resp := errorResponse{Error: err.Error()}
	var bf *badFieldError
	if errors.As(err, &bf) {
		resp.Field = bf.field
	}
	s.writeJSON(w, status, resp)
}

// --- dataset handlers ---

// handleRegisterDataset accepts either the text interchange format (any
// non-JSON content type) or, when path loading is enabled, a JSON body
// {"path": "/file/on/the/server"}. Registration is idempotent: the same
// content returns the same id with 200 instead of 201. ?immutable=true
// closes the new lineage to appends (ignored when the content already
// exists — the first registration's choice sticks).
func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	immutable := r.URL.Query().Get("immutable") == "true"
	var (
		ds    *Dataset
		fresh bool
		err   error
	)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req struct {
			Path string `json:"path"`
		}
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad JSON body: %w", err))
			return
		}
		if req.Path == "" {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: JSON registration requires \"path\""))
			return
		}
		if !s.cfg.AllowPathLoad {
			s.writeError(w, http.StatusForbidden, fmt.Errorf("service: path loading is disabled (start pfcimd with -allow-path-load)"))
			return
		}
		ds, fresh, err = s.registry.RegisterPath(req.Path, immutable)
	} else {
		ds, fresh, err = s.registry.RegisterText(body, immutable)
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if fresh {
		status = http.StatusCreated
		s.metrics.DatasetsRegistered.Add(1)
		s.log.Info("dataset registered", "dataset", ds.ID,
			"transactions", ds.Stats.NumTransactions, "items", ds.Stats.NumItems,
			"immutable", ds.Immutable)
	}
	// On a coordinator, registration includes placement: the dataset is not
	// usable for distributed jobs until every worker holds (and has hash-
	// verified) its slice. Re-registering retries a failed placement.
	if err := s.placeShards(r.Context(), ds); err != nil {
		s.writeError(w, http.StatusBadGateway, err)
		return
	}
	s.writeJSON(w, status, s.datasetInfo(ds))
}

// handleAppendDataset creates the next version of the dataset's lineage:
// the current latest version's transactions plus the posted batch, content-
// hashed into a new addressable (and independently minable) version. The
// body is the text interchange format, or {"path": ...} when path loading
// is enabled. The path {id} accepts the same references as job submission
// ("id", "id@latest", "id@N" — the append always extends the lineage's
// latest version regardless of which one was named). Appending the same
// batch twice is idempotent (200, not 201); appending to an immutable
// dataset is a 409.
func (s *Server) handleAppendDataset(w http.ResponseWriter, r *http.Request) {
	ref := r.PathValue("id")
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	var (
		ds    *Dataset
		fresh bool
		err   error
	)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req struct {
			Path string `json:"path"`
		}
		if err := decodeStrict(body, &req); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Path == "" {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: JSON append requires \"path\""))
			return
		}
		if !s.cfg.AllowPathLoad {
			s.writeError(w, http.StatusForbidden, fmt.Errorf("service: path loading is disabled (start pfcimd with -allow-path-load)"))
			return
		}
		ds, fresh, err = s.registry.AppendPath(ref, req.Path)
	} else {
		ds, fresh, err = s.registry.AppendText(ref, body)
	}
	switch {
	case err == nil:
	case errors.Is(err, ErrImmutable):
		s.writeError(w, http.StatusConflict, err)
		return
	case errors.Is(err, ErrNoSuchDataset), errors.Is(err, ErrNoSuchVersion):
		s.writeError(w, http.StatusNotFound, err)
		return
	default:
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if fresh {
		status = http.StatusCreated
		s.metrics.DatasetsRegistered.Add(1)
		s.metrics.DatasetsAppended.Add(1)
		s.log.Info("dataset appended", "dataset", ds.ID, "lineage", ds.Lineage,
			"version", ds.Version, "transactions", ds.Stats.NumTransactions)
	}
	if err := s.placeShards(r.Context(), ds); err != nil {
		s.writeError(w, http.StatusBadGateway, err)
		return
	}
	s.writeJSON(w, status, s.datasetInfo(ds))
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	list := s.registry.List()
	out := make([]DatasetInfo, len(list))
	for i, d := range list {
		out[i] = s.datasetInfo(d)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	d, err := s.registry.Resolve(r.PathValue("id"))
	if err != nil {
		s.writeError(w, s.resolveStatus(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, s.datasetInfo(d))
}

// resolveStatus maps a Registry.Resolve error to its HTTP status: unknown
// ids and versions are 404, a malformed selector is 400.
func (s *Server) resolveStatus(err error) int {
	if errors.Is(err, ErrNoSuchDataset) || errors.Is(err, ErrNoSuchVersion) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// --- job handlers ---

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	var req jobRequest
	if err := decodeStrict(io.LimitReader(r.Body, 1<<20), &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ds, err := s.registry.Resolve(req.Dataset)
	if err != nil {
		s.writeError(w, s.resolveStatus(err), err)
		return
	}
	info, err := s.jobs.Submit(ds, req.Dataset, req.Options, time.Duration(req.TimeoutMS)*time.Millisecond)
	if err == nil {
		// The correlation line: request_id (logger) ↔ job id ↔ trace id, so
		// client logs, daemon logs, and worker logs join on either key.
		s.rlog(r).Info("job submitted", "job", info.ID, "trace", info.TraceID,
			"dataset", info.Dataset, "cached", info.Cached)
	}
	s.writeSubmitResult(w, info, err)
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	var req sweepRequest
	if err := decodeStrict(io.LimitReader(r.Body, 1<<20), &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Sweeps resolve references like jobs but always pin the resolved
	// version: a sweep is a batch exploration, not a live watch.
	ds, err := s.registry.Resolve(req.Dataset)
	if err != nil {
		s.writeError(w, s.resolveStatus(err), err)
		return
	}
	info, err := s.jobs.SubmitSweep(ds, req.Options, req.Points, time.Duration(req.TimeoutMS)*time.Millisecond)
	if err == nil {
		s.rlog(r).Info("sweep submitted", "job", info.ID, "trace", info.TraceID,
			"dataset", info.Dataset, "points", len(req.Points))
	}
	s.writeSubmitResult(w, info, err)
}

// writeSubmitResult maps a submission outcome to the HTTP response shared
// by jobs and sweeps: 202 queued, 200 cache hit, 429 shed (queue full — a
// structured, retryable rejection distinct from the 503 a shutting-down
// daemon returns), 400 invalid.
func (s *Server) writeSubmitResult(w http.ResponseWriter, info JobInfo, err error) {
	switch {
	case err == nil:
	case err == ErrQueueFull:
		s.metrics.JobsShedQueueFull.Add(1)
		s.writeShed(w, errorResponse{
			Error:        err.Error(),
			Reason:       "queue_full",
			RetryAfterMS: 1000, // no per-job ETA; one second is the honest generic hint
		})
		return
	case err == ErrShuttingDown:
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if info.Status.Terminal() { // cache hit: already done
		status = http.StatusOK
	}
	s.writeJSON(w, status, info)
}

// writeShed renders one structured 429 with its Retry-After header
// (rounded up to whole seconds, the header's resolution).
func (s *Server) writeShed(w http.ResponseWriter, resp errorResponse) {
	retrySec := (resp.RetryAfterMS + 999) / 1000
	if retrySec < 1 {
		retrySec = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retrySec))
	s.writeJSON(w, http.StatusTooManyRequests, resp)
}

// admit applies the per-tenant quota to one submission; on rejection it has
// already written the 429 and the caller must return.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if s.quota == nil {
		return true
	}
	tenant := r.Header.Get(TenantHeader)
	ok, retryAfter := s.quota.allow(tenant)
	if ok {
		return true
	}
	if tenant == "" {
		tenant = defaultTenant
	}
	s.metrics.JobsShedQuota.Add(1)
	s.rlog(r).Warn("submission shed by quota", "tenant", tenant,
		"retry_after_ms", retryAfter.Milliseconds())
	s.writeShed(w, errorResponse{
		Error:        fmt.Sprintf("service: tenant %q exceeded its submission quota (%g/s)", tenant, s.cfg.QuotaRate),
		Reason:       "quota",
		Tenant:       tenant,
		RetryAfterMS: retryAfter.Milliseconds(),
	})
	return false
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	list := s.jobs.List()
	// Job listings elide results; fetch a single job for its itemsets.
	for i := range list {
		list[i].Result = nil
		list[i].Sweep = nil
	}
	s.writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	info, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

// handleJobTrace serves the finished job's phase profile: per-phase and
// per-depth wall-time attribution plus per-worker busy time, as recorded by
// the job's tracer.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	p, err := s.jobs.Trace(r.PathValue("id"))
	switch {
	case err == nil:
	case errors.Is(err, ErrJobNotFinished):
		s.writeError(w, http.StatusConflict, err)
		return
	default:
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	info, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

// --- observability ---

// healthResponse is the /healthz body; status is always "ok" while the
// process serves requests — the endpoint exists so orchestrators can tell
// "serving" from "gone", and carries a little load snapshot for humans.
type healthResponse struct {
	Status      string `json:"status"`
	UptimeMS    int64  `json:"uptime_ms"`
	Datasets    int    `json:"datasets"`
	JobsRunning int64  `json:"jobs_running"`
	CacheLen    int    `json:"cache_len"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, healthResponse{
		Status:      "ok",
		UptimeMS:    time.Since(s.started).Milliseconds(),
		Datasets:    s.registry.Len(),
		JobsRunning: s.jobs.Running(),
		CacheLen:    s.cache.len(),
	})
}

// PreloadPath registers a dataset from a server-local file at startup
// (cmd/pfcimd's -preload), including shard placement on a coordinator.
func (s *Server) PreloadPath(path string) (DatasetInfo, error) {
	ds, fresh, err := s.registry.RegisterPath(path, false)
	if err != nil {
		return DatasetInfo{}, err
	}
	if fresh {
		s.metrics.DatasetsRegistered.Add(1)
	}
	if err := s.placeShards(context.Background(), ds); err != nil {
		return DatasetInfo{}, err
	}
	return s.datasetInfo(ds), nil
}

// RegisterDB registers an in-process database, including shard placement
// on a coordinator.
func (s *Server) RegisterDB(db *uncertain.DB) (DatasetInfo, error) {
	ds, fresh, err := s.registry.Register(db, false)
	if err != nil {
		return DatasetInfo{}, err
	}
	if fresh {
		s.metrics.DatasetsRegistered.Add(1)
	}
	if err := s.placeShards(context.Background(), ds); err != nil {
		return DatasetInfo{}, err
	}
	return s.datasetInfo(ds), nil
}
