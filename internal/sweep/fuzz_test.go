package sweep

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/uncertain"
)

// FuzzSweepPlan feeds arbitrary JSON grids through the sweep planner and
// pins its contracts: Groups never panics, and on success it is an exact
// partition of the point indices. Small valid grids are additionally mined
// on the Table II database and every point compared byte-for-byte against
// an independent core.Mine — the bound-replay shortcut must be invisible.
//
// Reproduce a failing input with
//
//	go test ./internal/sweep -run FuzzSweepPlan/<hash>
func FuzzSweepPlan(f *testing.F) {
	f.Add([]byte(`[{"pfct": 0.8}, {"pfct": 0.5}]`))
	f.Add([]byte(`[{"pfct": 0.9, "min_sup": 2}, {"pfct": 0.3, "min_sup": 3}, {"pfct": 0.3}]`))
	f.Add([]byte(`[{"min_sup": 1}, {"min_sup": 4}, {"pfct": 0.1, "min_sup": 1}]`))
	f.Add([]byte(`[{"pfct": -3}, {"pfct": 2}]`))
	f.Add([]byte(`[]`))
	base := core.Options{MinSup: 2, PFCT: 0.8, Seed: 7}
	f.Fuzz(func(t *testing.T, data []byte) {
		var pjs []PointJSON
		if err := json.Unmarshal(data, &pjs); err != nil {
			return
		}
		points := make([]Point, len(pjs))
		for i, pj := range pjs {
			points[i] = pj.Point()
		}
		groups, err := Groups(points, base)
		if err != nil {
			return // invalid grid: rejected, not panicked
		}
		seen := make(map[int]bool)
		for _, g := range groups {
			for _, idx := range g {
				if idx < 0 || idx >= len(points) {
					t.Fatalf("Groups emitted out-of-range index %d for %d points", idx, len(points))
				}
				if seen[idx] {
					t.Fatalf("Groups emitted index %d twice", idx)
				}
				seen[idx] = true
			}
		}
		if len(seen) != len(points) {
			t.Fatalf("Groups covered %d of %d points", len(seen), len(points))
		}

		if len(points) == 0 || len(points) > 4 {
			return
		}
		db := uncertain.PaperExample()
		sres, err := Mine(context.Background(), db, points, base)
		if err != nil {
			return // e.g. a point's thresholds fail mine-time validation
		}
		for i, pr := range sres.Points {
			ind, err := core.Mine(db, pr.Point.Apply(base))
			if err != nil {
				t.Fatalf("point %d: sweep accepted a grid independent Mine rejects: %v", i, err)
			}
			if len(pr.Itemsets) != len(ind.Itemsets) ||
				(len(pr.Itemsets) > 0 && !reflect.DeepEqual(pr.Itemsets, ind.Itemsets)) {
				t.Fatalf("point %d (pfct=%g min_sup=%d derived=%t): sweep result differs from independent Mine",
					i, pr.Point.PFCT, pr.Point.MinSup, pr.Derived)
			}
		}
	})
}
