package bitset

// Pool is a slab allocator for same-capacity Bitsets — the miner's tidset
// arena (DESIGN §13). Bitset structs and their dense word storage are
// carved from slabs of poolSlabSets sets at a time, so a mining run
// performs O(visited/64) tidset allocations instead of one per
// intersection; returned sets go on a freelist and are handed out again
// with undefined contents.
//
// Lifetime rules: Get returns a set whose contents are undefined — it is
// valid only as a destination (AndInto, AndBatch, CopyFrom). Put parks a
// set for reuse in any order; sets retained beyond the expansion that
// produced them (memo entries, results) are simply never Put. A Pool is not
// safe for concurrent use; each miner worker owns one.
type Pool struct {
	n      int
	nwords int
	free   []*Bitset
	words  []uint64 // remainder of the current word slab
	sets   []Bitset // remainder of the current struct slab
}

const poolSlabSets = 64

// NewPool returns a pool of dense-capable Bitsets of capacity n bits.
func NewPool(n int) *Pool {
	if n < 0 {
		panic("bitset: negative pool size")
	}
	return &Pool{n: n, nwords: (n + wordBits - 1) / wordBits}
}

// Get returns a Bitset of the pool's capacity with undefined contents.
func (p *Pool) Get() *Bitset {
	if k := len(p.free); k > 0 {
		b := p.free[k-1]
		p.free = p.free[:k-1]
		return b
	}
	if len(p.sets) == 0 {
		p.sets = make([]Bitset, poolSlabSets)
	}
	b := &p.sets[0]
	p.sets = p.sets[1:]
	if len(p.words) < p.nwords {
		p.words = make([]uint64, p.nwords*poolSlabSets)
	}
	b.words = p.words[:p.nwords:p.nwords]
	p.words = p.words[p.nwords:]
	b.n = p.n
	return b
}

// Put parks b for reuse. Sets of a different capacity (or nil) are dropped
// rather than pooled, so callers may hand back any tidset they own without
// tracking provenance.
func (p *Pool) Put(b *Bitset) {
	if b == nil || b.n != p.n {
		return
	}
	p.free = append(p.free, b)
}
