package service

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/stream"
	"github.com/probdata/pfcim/internal/uncertain"
)

// Watched mines (DESIGN §15): a job submitted against "id@latest" follows
// the lineage instead of pinning a version. The daemon keeps one watcher per
// (lineage, canonical options) pair — a stream.Miner over an unbounded
// window holding the lineage's transactions pushed so far. Each watched job
// syncs the watcher to the target version by pushing the suffix the watcher
// has not seen (sound because lineages are append-only: version N's
// transactions are a prefix of version N+1's), then mines incrementally.
// The result is byte-identical to a from-scratch mine of the version
// (DESIGN §15's splice-identity argument), so it lands in the result cache
// under the version's own (hash, options) key like any pinned job — and the
// job additionally reports the changed-itemsets diff against the watcher's
// previous round.
type watcher struct {
	mu    sync.Mutex
	miner *stream.Miner
	n     int // transactions pushed so far (== length of the last synced version)
}

// watchSet owns the daemon's watchers, keyed by lineage root + canonical
// options key. onRound (may be nil) receives every successful round's
// telemetry under the stream's metric label.
type watchSet struct {
	mu      sync.Mutex
	m       map[string]*watcher
	onRound func(label string, ri stream.RoundInfo)
}

func newWatchSet(onRound func(label string, ri stream.RoundInfo)) *watchSet {
	return &watchSet{m: make(map[string]*watcher), onRound: onRound}
}

// watchLabel is the stream's metric label: the lineage id plus a short
// stable hash of the canonical options key — readable, bounded-cardinality
// (one series set per distinct watched configuration), and collision-safe
// enough for a label (the full key still keys the watcher map).
func watchLabel(lineageID, optKey string) string {
	h := fnv.New32a()
	h.Write([]byte(optKey))
	return fmt.Sprintf("%s@%08x", lineageID, h.Sum32())
}

// get returns the watcher for (lineage, optKey), creating it on first use.
// opts must already carry the daemon defaults; the first submission's
// execution knobs win (they cannot change results — DESIGN §8.3). The
// creating submission's Tracer is deliberately stripped: rounds record into
// the tracer of the job that runs them (threaded through mine), never into
// the first submitter's.
func (ws *watchSet) get(lineageID, optKey string, opts core.Options) (*watcher, error) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	key := lineageID + "\n" + optKey
	if w, ok := ws.m[key]; ok {
		return w, nil
	}
	opts.Tracer = nil
	miner, err := stream.NewMiner(stream.NewUnboundedWindow(), opts)
	if err != nil {
		return nil, err
	}
	if ws.onRound != nil {
		label := watchLabel(lineageID, optKey)
		fn := ws.onRound
		miner.SetOnRound(func(ri stream.RoundInfo) { fn(label, ri) })
	}
	w := &watcher{miner: miner}
	ws.m[key] = w
	return w, nil
}

// mine syncs the watcher to target's transactions and mines incrementally,
// returning the result and the diff against the watcher's previous round.
// tr (may be nil) receives the round's phase spans — each round records
// into the tracer of the job that runs it. A watcher ahead of the target
// (the job raced an append and resolved an older snapshot than the watcher
// has already consumed) falls back to a plain from-scratch mine with a nil
// diff — results stay exchangeable, only the incremental saving and the
// diff are lost for that one job. The watcher's lock serializes watched
// mines per (lineage, options).
func (w *watcher) mine(ctx context.Context, target *uncertain.DB, opts core.Options, tr *obs.Tracer) (*core.Result, *stream.DiffJSON, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	trans := target.Transactions()
	if w.n > len(trans) {
		res, err := core.MineContext(ctx, target, opts)
		return res, nil, err
	}
	for _, t := range trans[w.n:] {
		if err := w.miner.Push(t); err != nil {
			// Cannot happen: target passed NewDB validation, which is
			// strictly stricter than Push's. Fail the job rather than panic.
			return nil, nil, err
		}
		w.n++
	}
	res, diff, err := w.miner.MineTraced(ctx, tr)
	if err != nil {
		// The miner reset its reuse cache internally; the watcher stays
		// synced (pushes are recorded) and the next round mines from
		// scratch into a fresh recording.
		return nil, nil, err
	}
	dj := diff.JSON()
	return res, &dj, nil
}
