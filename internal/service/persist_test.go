package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/probdata/pfcim/internal/uncertain"
)

// drainNow shuts a test server's pool down mid-test so a successor can own
// the same store directory (testServer's cleanup will re-Drain harmlessly).
func drainNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func submitAndWait(t *testing.T, baseURL, dataset string, minSup int) JobInfo {
	t.Helper()
	resp := postJSON(t, baseURL+"/v1/jobs", map[string]any{
		"dataset": dataset,
		"options": map[string]any{"min_sup": minSup, "pfct": 0.5},
	})
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	return waitJob(t, baseURL, decode[JobInfo](t, resp).ID)
}

// TestStoreRestoreServesCacheHits is the in-process version of the kill-
// restart e2e: a second daemon on the same store directory must list the
// first's datasets at their recorded versions and serve its mined results
// as byte-identical cache hits without re-mining.
func TestStoreRestoreServesCacheHits(t *testing.T) {
	dir := t.TempDir()

	sA, tsA := testServer(t, Config{Workers: 2, StoreDir: dir})
	root := uploadDB(t, tsA.URL, uncertain.PaperExample())
	jobA := submitAndWait(t, tsA.URL, root.ID, 2)
	if jobA.Status != StatusDone || jobA.Cached {
		t.Fatalf("first mine: %+v", jobA)
	}
	// Grow the lineage to version 2 so restore has a chain to resume.
	resp, err := http.Post(tsA.URL+"/v1/datasets/"+root.ID+"/append", "text/plain",
		bytes.NewReader([]byte("0 1 2 3 : 0.9\n")))
	if err != nil {
		t.Fatal(err)
	}
	v2 := decode[DatasetInfo](t, resp)
	if v2.Version != 2 {
		t.Fatalf("append: %+v", v2)
	}
	if got := sA.Metrics(); got["store_datasets_persisted"] != 2 || got["store_results_persisted"] != 1 {
		t.Fatalf("write-through metrics: %+v", got)
	}
	drainNow(t, sA)
	tsA.Close()

	sB, tsB := testServer(t, Config{Workers: 2, StoreDir: dir})
	// The lineage resumed at its recorded version.
	dsResp, err := http.Get(tsB.URL + "/v1/datasets/" + root.ID + "@latest")
	if err != nil {
		t.Fatal(err)
	}
	latest := decode[DatasetInfo](t, dsResp)
	if latest.ID != v2.ID || latest.Version != 2 || latest.LatestVersion != 2 || latest.Lineage != root.ID {
		t.Fatalf("restored @latest: %+v", latest)
	}
	// The prior result serves as a cache hit: 200 (terminal at submit),
	// cached, zero mining wall time, byte-identical result.
	jobB := submitAndWait(t, tsB.URL, root.ID, 2)
	if jobB.Status != StatusDone || !jobB.Cached {
		t.Fatalf("restored submit not a cache hit: %+v", jobB)
	}
	wantRes, _ := json.Marshal(jobA.Result)
	gotRes, _ := json.Marshal(jobB.Result)
	if !bytes.Equal(wantRes, gotRes) {
		t.Fatalf("restored result differs:\n%s\nvs\n%s", gotRes, wantRes)
	}
	m := sB.Metrics()
	if m["cache_hits"] != 1 || m["store_restored_results"] != 1 {
		t.Fatalf("restore metrics: %+v", m)
	}
	if m["mine_wall_ms"] != 0 || m["cache_misses"] != 0 {
		t.Fatalf("restored daemon re-mined: %+v", m)
	}
	if m["store_restored_datasets"] != 2 {
		t.Fatalf("store_restored_datasets = %d, want 2", m["store_restored_datasets"])
	}

	// Appends resume where the lineage left off — version 3, not a reset.
	resp, err = http.Post(tsB.URL+"/v1/datasets/"+root.ID+"/append", "text/plain",
		bytes.NewReader([]byte("1 2 4 : 0.8\n")))
	if err != nil {
		t.Fatal(err)
	}
	v3 := decode[DatasetInfo](t, resp)
	if v3.Version != 3 || v3.Lineage != root.ID {
		t.Fatalf("append after restore: %+v", v3)
	}
}

// TestStoreImmutabilitySurvivesRestart pins that the immutable flag rides
// the lineage record: appends to a frozen lineage still 409 after restart.
func TestStoreImmutabilitySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	sA, tsA := testServer(t, Config{StoreDir: dir})
	var buf bytes.Buffer
	if err := uncertain.Write(&buf, uncertain.PaperExample()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tsA.URL+"/v1/datasets?immutable=true", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	frozen := decode[DatasetInfo](t, resp)
	if !frozen.Immutable {
		t.Fatalf("registration not immutable: %+v", frozen)
	}
	drainNow(t, sA)
	tsA.Close()

	_, tsB := testServer(t, Config{StoreDir: dir})
	resp, err = http.Post(tsB.URL+"/v1/datasets/"+frozen.ID+"/append", "text/plain",
		bytes.NewReader([]byte("0 1 : 0.5\n")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("append to restored immutable lineage: status %d, want 409", resp.StatusCode)
	}
}

// TestStoreReadThroughOutlivesLRU pins that durability is independent of
// the LRU budget: with a one-entry cache, an evicted result still answers
// as a cache hit via store read-through.
func TestStoreReadThroughOutlivesLRU(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2, CacheSize: 1, StoreDir: t.TempDir()})
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())
	first := submitAndWait(t, ts.URL, ds.ID, 2)
	second := submitAndWait(t, ts.URL, ds.ID, 3) // evicts the min_sup=2 entry
	if first.Cached || second.Cached {
		t.Fatalf("fresh mines reported cached: %+v / %+v", first, second)
	}
	again := submitAndWait(t, ts.URL, ds.ID, 2)
	if !again.Cached {
		t.Fatalf("evicted result did not read through: %+v", again)
	}
	w1, _ := json.Marshal(first.Result)
	w2, _ := json.Marshal(again.Result)
	if !bytes.Equal(w1, w2) {
		t.Fatalf("read-through result differs")
	}
	if m := s.Metrics(); m["store_restored_results"] != 1 {
		t.Fatalf("store_restored_results = %d, want 1", m["store_restored_results"])
	}
}

// TestStoreQuarantineDegradesToReMine pins the recovery path: a result
// segment damaged on disk is quarantined at the next startup (counted, not
// fatal), and the affected submission simply re-mines.
func TestStoreQuarantineDegradesToReMine(t *testing.T) {
	dir := t.TempDir()
	sA, tsA := testServer(t, Config{Workers: 2, StoreDir: dir})
	ds := uploadDB(t, tsA.URL, uncertain.PaperExample())
	if j := submitAndWait(t, tsA.URL, ds.ID, 2); j.Status != StatusDone {
		t.Fatalf("mine: %+v", j)
	}
	drainNow(t, sA)
	tsA.Close()

	// Flip one bit in every stored result segment.
	seen := 0
	entries, err := os.ReadDir(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		path := filepath.Join(dir, "results", e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x10
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		seen++
	}
	if seen == 0 {
		t.Fatal("no result segments were persisted")
	}

	sB, tsB := testServer(t, Config{Workers: 2, StoreDir: dir})
	if q := sB.Metrics()["store_quarantined"]; q != int64(seen) {
		t.Fatalf("store_quarantined = %d, want %d", q, seen)
	}
	j := submitAndWait(t, tsB.URL, ds.ID, 2)
	if j.Status != StatusDone || j.Cached {
		t.Fatalf("after quarantine, submission should re-mine: %+v", j)
	}
	if m := sB.Metrics(); m["cache_misses"] != 1 || m["jobs_done"] != 1 {
		t.Fatalf("re-mine metrics: %+v", m)
	}
}

// TestStoreOpenFailure pins that an unusable store directory fails New with
// an error instead of silently serving without durability.
func TestStoreOpenFailure(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(Config{StoreDir: filepath.Join(file, "store"), Logger: quietLogger()})
	if err == nil {
		t.Fatal("New accepted a store dir under a regular file")
	}
}
