package dnf

import (
	"fmt"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// This file makes the paper's Theorem 3.1 executable: counting satisfying
// assignments of a monotone DNF formula (#MDNF, #P-complete) reduces to
// computing the closed probability of an itemset in an uncertain
// transaction database. It is both a regression test for the possible-world
// oracle and a demonstration binary (examples/dnfcount).

// Monotone is a monotone DNF formula over variables 0..NumVars-1. Each
// clause is a set of variable indices (a conjunction); the formula is the
// disjunction of its clauses. No negations appear.
type Monotone struct {
	NumVars int
	Clauses [][]int
}

// Validate checks variable indices and clause shapes.
func (f Monotone) Validate() error {
	if f.NumVars <= 0 {
		return fmt.Errorf("mdnf: formula needs at least one variable")
	}
	if len(f.Clauses) == 0 {
		return fmt.Errorf("mdnf: formula needs at least one clause")
	}
	for ci, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("mdnf: clause %d is empty", ci)
		}
		seen := map[int]bool{}
		for _, v := range c {
			if v < 0 || v >= f.NumVars {
				return fmt.Errorf("mdnf: clause %d references variable %d outside [0,%d)", ci, v, f.NumVars)
			}
			if seen[v] {
				return fmt.Errorf("mdnf: clause %d repeats variable %d", ci, v)
			}
			seen[v] = true
		}
	}
	return nil
}

// Eval evaluates the formula under an assignment.
func (f Monotone) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := true
		for _, v := range c {
			if !assign[v] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// CountBruteForce counts satisfying assignments by enumerating all 2^m
// assignments (m ≤ 30).
func (f Monotone) CountBruteForce() (int64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if f.NumVars > 30 {
		return 0, fmt.Errorf("mdnf: %d variables exceed brute-force limit 30", f.NumVars)
	}
	assign := make([]bool, f.NumVars)
	var count int64
	for mask := 0; mask < 1<<uint(f.NumVars); mask++ {
		for v := 0; v < f.NumVars; v++ {
			assign[v] = mask&(1<<uint(v)) != 0
		}
		if f.Eval(assign) {
			count++
		}
	}
	return count, nil
}

// ReductionTarget is the item whose closed probability encodes the count.
const ReductionTarget itemset.Item = 0

// ReductionDB builds the uncertain transaction database of Theorem 3.1:
// one transaction T_j (probability ½) per variable v_j containing the
// target item X plus e_i for every clause C_i that v_j does NOT appear in
// (clause item e_i is item i+1). The count of satisfying assignments is
// then (1 − Pr_C(X)) · 2^m.
func ReductionDB(f Monotone) (*uncertain.DB, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	inClause := make([]map[int]bool, len(f.Clauses))
	for ci, c := range f.Clauses {
		inClause[ci] = map[int]bool{}
		for _, v := range c {
			inClause[ci][v] = true
		}
	}
	trans := make([]uncertain.Transaction, f.NumVars)
	for j := 0; j < f.NumVars; j++ {
		items := itemset.Itemset{ReductionTarget}
		for ci := range f.Clauses {
			if !inClause[ci][j] {
				items = append(items, itemset.Item(ci+1))
			}
		}
		trans[j] = uncertain.Transaction{Items: itemset.New(items...), Prob: 0.5}
	}
	return uncertain.NewDB(trans)
}

// CountFromClosedProb inverts the reduction: given Pr_C(X) over the
// reduction database, return the number of satisfying assignments
// N = (1 − Pr_C) · 2^m rounded to the nearest integer.
func CountFromClosedProb(f Monotone, closedProb float64) int64 {
	worlds := float64(int64(1) << uint(f.NumVars))
	n := (1 - closedProb) * worlds
	return int64(n + 0.5)
}
