// Package poibin implements the Poisson binomial distribution — the
// distribution of sup(X) when each transaction containing X exists
// independently with its own probability. It provides the exact dynamic-
// programming tail used for frequent probabilities (Definition 3.4), the
// Chernoff/Hoeffding tail upper bounds behind Lemma 4.1, a normal
// approximation (the accelerated model of related work [23]), and
// conditional sampling of the underlying Bernoulli vector given
// "sum ≥ k", which the ApproxFCP Monte-Carlo estimator requires.
package poibin

import (
	"math"
)

// Mean returns E[S] = Σ p_i, the expected support.
func Mean(probs []float64) float64 {
	s := 0.0
	for _, p := range probs {
		s += p
	}
	return s
}

// Variance returns Var[S] = Σ p_i (1 − p_i).
func Variance(probs []float64) float64 {
	s := 0.0
	for _, p := range probs {
		s += p * (1 - p)
	}
	return s
}

// Tail returns Pr[S ≥ k] exactly, where S = Σ Bernoulli(p_i). Below the
// ConvCrossoverN crossover this is dynamic programming over counts truncated
// at k (time O(n·min(k, n+1)), space O(min(k, n+1))); at or above it, the
// divide-and-conquer convolution tree of kernel.go. The dispatch is a fixed
// function of len(probs), so every caller resolves a given vector with the
// same kernel (see the kernel.go package comment for why that matters).
//
// This is the paper's "dynamic programming approach [22]" for computing the
// frequent probability Pr{sup(X) ≥ min_sup}. Callers on a hot path should
// hold a Scratch and use Scratch.Tail, which reuses the DP buffer.
func Tail(probs []float64, k int) float64 {
	var s Scratch
	return s.TailKernel(probs, k, KernelAuto)
}

// TailAll returns Pr[S ≥ k] for every k in 0..n in one O(n²) pass.
func TailAll(probs []float64) []float64 {
	pmf := PMF(probs)
	n := len(probs)
	tails := make([]float64, n+2)
	for k := n; k >= 0; k-- {
		tails[k] = tails[k+1] + pmf[k]
		if tails[k] > 1 {
			tails[k] = 1
		}
	}
	return tails[:n+1]
}

// PMF returns the full probability mass function Pr[S = c] for c in 0..n by
// the standard O(n²) convolution DP.
func PMF(probs []float64) []float64 {
	n := len(probs)
	pmf := make([]float64, n+1)
	pmf[0] = 1
	for i, p := range probs {
		q := 1 - p
		for c := i + 1; c >= 1; c-- {
			pmf[c] = pmf[c]*q + pmf[c-1]*p
		}
		pmf[0] *= q
	}
	return pmf
}

// HoeffdingUpper returns the Hoeffding upper bound on Pr[S ≥ k]:
// exp(−2 t² / n) with t = k − μ, valid whenever k > μ; otherwise 1.
func HoeffdingUpper(probs []float64, k int) float64 {
	n := len(probs)
	if n == 0 {
		if k <= 0 {
			return 1
		}
		return 0
	}
	mu := Mean(probs)
	t := float64(k) - mu
	if t <= 0 {
		return 1
	}
	return math.Exp(-2 * t * t / float64(n))
}

// ChernoffUpper returns the multiplicative Chernoff upper bound on
// Pr[S ≥ k] = Pr[S ≥ (1+δ)μ]: exp(−δ²μ / (2+δ)), valid for k > μ;
// otherwise 1. This is the Chernoff-Hoeffding-style bound Lemma 4.1 prunes
// with.
func ChernoffUpper(probs []float64, k int) float64 {
	mu := Mean(probs)
	if mu <= 0 {
		if k <= 0 {
			return 1
		}
		return 0
	}
	d := (float64(k) - mu) / mu
	if d <= 0 {
		return 1
	}
	return math.Exp(-d * d * mu / (2 + d))
}

// TailUpperBound returns the tightest of the implemented analytic upper
// bounds on Pr[S ≥ k]. It is always ≥ Tail(probs, k), so pruning an itemset
// whenever TailUpperBound ≤ pfct is sound.
func TailUpperBound(probs []float64, k int) float64 {
	if k > len(probs) {
		return 0
	}
	h := HoeffdingUpper(probs, k)
	c := ChernoffUpper(probs, k)
	if c < h {
		return c
	}
	return h
}

// TailLowerBound returns an analytic lower bound on Pr[S ≥ k]: by Hoeffding
// on the complement, Pr[S ≤ k−1] ≤ exp(−2(μ−k+1)²/n) whenever μ > k−1, so
// Pr[S ≥ k] ≥ 1 − exp(−2(μ−k+1)²/n); otherwise the trivial bound 0. It is
// always ≤ Tail(probs, k), so accepting an itemset as probabilistically
// frequent whenever TailLowerBound > pft is sound — the acceptance
// counterpart of Lemma 4.1's rejection, in the spirit of the
// approximation-accelerated exact mining of related work [23].
func TailLowerBound(probs []float64, k int) float64 {
	n := len(probs)
	if k <= 0 {
		return 1
	}
	if k > n || n == 0 {
		return 0
	}
	t := Mean(probs) - float64(k-1)
	if t <= 0 {
		return 0
	}
	return 1 - math.Exp(-2*t*t/float64(n))
}

// NormalTail approximates Pr[S ≥ k] with the central-limit normal
// approximation plus continuity correction, as in the Poisson-binomial
// acceleration of related work [23]. It is not used for exact answers, only
// as an optional fast filter and for the approximation-model ablation.
func NormalTail(probs []float64, k int) float64 {
	n := len(probs)
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	mu := Mean(probs)
	v := Variance(probs)
	if v == 0 {
		// Deterministic sum.
		if float64(k) <= mu+1e-12 {
			return 1
		}
		return 0
	}
	z := (float64(k) - 0.5 - mu) / math.Sqrt(v)
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
