package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// faultWorkload drives a store through a fixed operation sequence on fs,
// recording for every key the value whose Put succeeded (committed) and the
// value of the last attempt (attempted, committed or not). It stops at the
// first error — after a crash-mode fault nothing else can succeed anyway.
type faultWorkload struct {
	committed map[string][]byte // "kind/key" → last successfully written value
	attempted map[string][]byte // "kind/key" → value of the in-flight write, if any
}

func runFaultWorkload(fs FS, dir string) *faultWorkload {
	w := &faultWorkload{committed: map[string][]byte{}, attempted: map[string][]byte{}}
	s, err := OpenFS(fs, dir, true)
	if err != nil {
		return w
	}
	step := func(label string, value []byte, put func() error) bool {
		w.attempted[label] = value
		if err := put(); err != nil {
			return false
		}
		w.committed[label] = value
		delete(w.attempted, label)
		return true
	}
	ops := []struct {
		label string
		value []byte
		put   func(v []byte) error
	}{
		{"dataset/d1", []byte("2 2\n0:0.5\n1:0.25\n"), func(v []byte) error { return s.PutDataset("d1", v) }},
		{"lineage/d1", []byte(`{"versions":["d1"]}`), func(v []byte) error { return s.PutLineage("d1", v) }},
		{"result/d1\nminsup=2", []byte(`{"itemsets":[1]}`), func(v []byte) error { return s.PutResult("d1\nminsup=2", v) }},
		{"dataset/d2", []byte("1 1\n0:0.75\n"), func(v []byte) error { return s.PutDataset("d2", v) }},
		{"lineage/d1", []byte(`{"versions":["d1","d2"]}`), func(v []byte) error { return s.PutLineage("d1", v) }},
		{"result/d2\nminsup=1", []byte(`{"itemsets":[2]}`), func(v []byte) error { return s.PutResult("d2\nminsup=1", v) }},
	}
	for _, op := range ops {
		op := op
		if !step(op.label, op.value, func() error { return op.put(op.value) }) {
			return w
		}
	}
	return w
}

// readBack fetches one workload key from a recovered store.
func readBack(t *testing.T, s *Store, label string) ([]byte, bool) {
	t.Helper()
	var (
		got []byte
		ok  bool
		err error
	)
	switch {
	case len(label) > 8 && label[:8] == "dataset/":
		got, ok, err = s.GetDataset(label[8:])
	case len(label) > 8 && label[:8] == "lineage/":
		got, ok, err = s.GetLineage(label[8:])
	case len(label) > 7 && label[:7] == "result/":
		got, ok, err = s.GetResult(label[7:])
	default:
		t.Fatalf("bad workload label %q", label)
	}
	if err != nil {
		t.Fatalf("read %q from recovered store: %v", label, err)
	}
	return got, ok
}

// TestFaultInjectionAtomicity is the package's central property test: for
// every fault mode and every possible injection point N, a workload driven
// into the fault and then recovered must show each entry either fully
// applied (byte-identical to a value that was written for it) or cleanly
// absent — never a third state — and crash-protocol faults must leave
// nothing to quarantine.
func TestFaultInjectionAtomicity(t *testing.T) {
	modes := []struct {
		name string
		mode FaultMode
	}{
		{"error", FaultError},
		{"crash", FaultCrash},
		{"short-write", FaultShortWrite},
		{"torn-rename", FaultTornRename},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			for n := 1; ; n++ {
				dir := t.TempDir()
				ffs := NewFaultFS(OS(), m.mode, n)
				w := runFaultWorkload(ffs, dir)
				if !ffs.Fired() {
					// The workload finished before op N: every later N is a
					// clean run too, so the space is exhausted.
					if n < 10 {
						t.Fatalf("workload used only %d mutating ops — too few to be a real test", n-1)
					}
					break
				}

				rec, err := Recover(dir)
				if err != nil {
					t.Fatalf("n=%d: Recover after fault: %v", n, err)
				}

				// Properties 1+2: every entry is fully applied or cleanly
				// absent. A present value must be byte-identical to a value
				// that was actually written for that key — never a splice.
				// Absence is legal only when nothing was committed, with one
				// carve-out: a torn rename may destroy the destination of the
				// one in-flight overwrite (no write protocol survives a
				// non-atomic rename damaging its target); the damaged file
				// must then be quarantined, which the reads below prove by
				// the entry reading back absent rather than corrupt.
				labels := map[string]bool{}
				for l := range w.committed {
					labels[l] = true
				}
				for l := range w.attempted {
					labels[l] = true
				}
				for label := range labels {
					got, ok := readBack(t, rec, label)
					prev, hadPrev := w.committed[label]
					want, inFlight := w.attempted[label]
					if ok {
						if (hadPrev && bytes.Equal(got, prev)) || (inFlight && bytes.Equal(got, want)) {
							continue // fully applied (old or new value)
						}
						t.Fatalf("n=%d: %q holds %q — neither committed %q nor attempted %q",
							n, label, got, prev, want)
					}
					if hadPrev && !(m.mode == FaultTornRename && inFlight) {
						t.Fatalf("n=%d: committed %q lost after recovery", n, label)
					}
				}
				// Property 3: the atomic protocol never leaves damage for the
				// crash and error modes; a torn rename may damage at most the
				// one in-flight destination, and that file is quarantined,
				// never served (the reads above already proved non-serving).
				q := rec.Quarantined()
				if m.mode == FaultTornRename {
					if len(q) > 1 {
						t.Fatalf("n=%d: torn rename quarantined %d files: %v", n, len(q), q)
					}
				} else if len(q) != 0 {
					t.Fatalf("n=%d: %s fault left corrupt files: %v", n, m.name, q)
				}

				// Property 4: after recovery the store is strictly valid again
				// (quarantine moved any damage out of the data directories).
				if _, err := Open(dir); err != nil {
					t.Fatalf("n=%d: strict Open after recovery: %v", n, err)
				}
			}
		})
	}
}

// TestFaultErrorIsTransient pins FaultError semantics: the failed write
// surfaces ErrInjected, and the store keeps working afterwards.
func TestFaultErrorIsTransient(t *testing.T) {
	dir := t.TempDir()
	clean, err := Open(dir) // initialize with a clean FS
	if err != nil {
		t.Fatal(err)
	}
	_ = clean
	// Open consumes 4 MkdirAll ops on an initialized dir; arm op 5 so
	// the fault hits the first write of PutResult.
	ffs := NewFaultFS(OS(), FaultError, 5)
	s, err := OpenFS(ffs, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutResult("k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("PutResult under fault: %v, want ErrInjected", err)
	}
	if err := s.PutResult("k", []byte("v")); err != nil {
		t.Fatalf("retry after transient fault: %v", err)
	}
	got, ok, err := s.GetResult("k")
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("after retry: (%q, %v, %v)", got, ok, err)
	}
}

// TestFaultCrashLatches pins crash semantics: once tripped, every later
// mutating op fails too.
func TestFaultCrashLatches(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS(), FaultCrash, 5) // past the 4 MkdirAll ops of open
	s, err := OpenFS(ffs, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.PutResult(fmt.Sprintf("k%d", i), []byte("v")); !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d after crash: %v, want ErrInjected", i, err)
		}
	}
}
