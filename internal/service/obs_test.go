package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/uncertain"
)

// syncBuffer is a mutex-guarded buffer safe for the concurrent slog writes
// of the daemon's worker pool.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// getWithAccept fetches url with the given Accept header.
func getWithAccept(t *testing.T, url, accept string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestMetricsContentNegotiation: /metrics serves the historical JSON by
// default and the Prometheus text exposition when the client asks for
// text/plain; an explicit application/json preference wins.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())
	job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8},
	}))
	waitJob(t, ts.URL, job.ID)

	resp, body := getWithAccept(t, ts.URL+"/metrics", "")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("default view content type = %q, want JSON", ct)
	}
	if !strings.Contains(body, `"jobs_done"`) {
		t.Errorf("JSON view missing jobs_done: %s", body)
	}

	resp, body = getWithAccept(t, ts.URL+"/metrics", "text/plain;version=0.0.4")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus view content type = %q, want text/plain", ct)
	}
	for _, want := range []string{
		"# TYPE pfcimd_jobs_done_total counter",
		"# TYPE pfcimd_jobs_running gauge",
		"# TYPE pfcimd_job_wall_seconds histogram",
		`pfcimd_job_wall_seconds_bucket{le="+Inf"} 1`,
		"pfcimd_job_queue_wait_seconds_count 1",
		"pfcimd_nodes_visited_total",
		"pfcimd_tasks_spawned_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	if _, body = getWithAccept(t, ts.URL+"/metrics", "application/json, text/plain"); !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("explicit application/json preference must win, got: %.80s", body)
	}
}

// TestPrometheusExpositionSyntax: every sample line must parse as
// `name{labels} value` with a preceding # TYPE, and counters must carry the
// _total suffix — the contract the CI smoke check scrapes for. The server
// runs as a coordinator so the distributed-path series — the shard RPC
// histogram, the retry counter, and the labeled per-worker up gauge — are
// in the scrape and subject to the same grammar.
func TestPrometheusExpositionSyntax(t *testing.T) {
	urls, _ := startShardWorkers(t, 2)
	_, ts := testServer(t, Config{Workers: 1, Shards: 2, ShardWorkers: urls,
		ShardHealthInterval: 50 * time.Millisecond})
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())
	job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8},
	}))
	waitJob(t, ts.URL, job.ID)
	// A watched job populates the labeled per-stream round series, putting
	// them under the same grammar check.
	// Distinct options so the submit misses the cache entry the pinned job
	// just created — a cache-served watched job runs no round.
	watched := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID + "@latest",
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.7},
	}))
	waitJob(t, ts.URL, watched.ID)

	// The worker_up gauge appears once the startup health probe lands.
	var body string
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body = getWithAccept(t, ts.URL+"/metrics", "text/plain")
		if strings.Contains(body, "pfcimd_shard_worker_up{worker=") || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{
		"# TYPE pfcimd_shard_rpc_seconds histogram",
		"pfcimd_shard_retries_total",
		"pfcimd_shard_tail_evaluations_total",
		"pfcimd_shard_placements_total 1",
		`pfcimd_shard_worker_up{worker="` + urls[0] + `"} 1`,
		`pfcimd_shard_worker_up{worker="` + urls[1] + `"} 1`,
		`pfcimd_shard_worker_last_probe_age_seconds{worker="` + urls[0] + `"}`,
		"# TYPE pfcimd_watch_rounds_total counter",
		"pfcimd_watch_round_seconds_bucket",
		"pfcimd_watch_reuse_ratio_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	typed := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			t.Fatalf("sample %q has unparseable value %q", m[1], m[3])
		}
		name := m[1]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if typed[strings.TrimSuffix(name, suf)] == "histogram" {
				base = strings.TrimSuffix(name, suf)
			}
		}
		kind, ok := typed[base]
		if !ok {
			t.Errorf("sample %q has no preceding # TYPE", name)
			continue
		}
		if kind == "counter" && !strings.HasSuffix(base, "_total") {
			t.Errorf("counter %q lacks the _total suffix", base)
		}
		if kind == "counter" || kind == "histogram" {
			if v, err := strconv.ParseFloat(m[3], 64); err != nil || v < 0 {
				t.Errorf("monotonic metric %q has value %q", name, m[3])
			}
		}
	}
	if typed["pfcimd_jobs_done_total"] != "counter" {
		t.Errorf("pfcimd_jobs_done_total typed %q, want counter", typed["pfcimd_jobs_done_total"])
	}
}

// TestFullStatsExported: every core.Stats field accumulated by a finished
// job must be visible in the metrics snapshot — the addStats regression
// this PR fixes (it used to export 5 of 17 counters).
func TestFullStatsExported(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	db := hardDB(t)
	ds := uploadDB(t, ts.URL, db)
	job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: core.AbsoluteMinSup(db.N(), 0.4), PFCT: 0.3, Parallelism: 2},
	}))
	info := waitJob(t, ts.URL, job.ID)
	if info.Status != StatusDone {
		t.Fatalf("job = %+v, want done", info)
	}
	snap := s.Metrics()
	stats := info.Result.Stats
	want := map[string]int{
		"nodes_visited":    stats.NodesVisited,
		"candidate_items":  stats.CandidateItems,
		"ch_pruned":        stats.CHPruned,
		"freq_pruned":      stats.FreqPruned,
		"superset_pruned":  stats.SupersetPruned,
		"subset_pruned":    stats.SubsetPruned,
		"bound_rejected":   stats.BoundRejected,
		"bound_accepted":   stats.BoundAccepted,
		"exact_unions":     stats.ExactUnions,
		"sampled":          stats.Sampled,
		"samples_drawn":    stats.SamplesDrawn,
		"evaluated":        stats.Evaluated,
		"tail_evaluations": stats.TailEvaluations,
		"tail_memo_hits":   stats.TailMemoHits,
		"clause_evaluated": stats.ClauseEvaluated,
		"tasks_spawned":    stats.TasksSpawned,
		"tasks_stolen":     stats.TasksStolen,
	}
	for name, v := range want {
		got, ok := snap[name]
		if !ok {
			t.Errorf("metric %q missing from snapshot", name)
			continue
		}
		if got != int64(v) {
			t.Errorf("metric %q = %d, want %d (the job's stat)", name, got, v)
		}
	}
	if snap["nodes_visited"] == 0 || snap["evaluated"] == 0 {
		t.Error("workload produced no mining work; test is vacuous")
	}
}

// TestJobTraceEndpoint: a finished job serves its phase profile; queued or
// cache-hit jobs do not.
func TestJobTraceEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())
	job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8},
	}))
	info := waitJob(t, ts.URL, job.ID)
	if info.Status != StatusDone {
		t.Fatalf("job = %+v, want done", info)
	}
	if info.QueueWaitMillis < 0 {
		t.Errorf("queue_wait_ms = %d, want >= 0", info.QueueWaitMillis)
	}

	resp, body := getWithAccept(t, ts.URL+"/v1/jobs/"+job.ID+"/trace", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d, body %s", resp.StatusCode, body)
	}
	var p obs.Profile
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("trace body is not a profile: %v\n%s", err, body)
	}
	if p.TotalNS <= 0 {
		t.Errorf("profile total_ns = %d, want > 0", p.TotalNS)
	}
	if p.PhaseWallNS("expand") == 0 && p.PhaseWallNS("bound-check") == 0 {
		t.Errorf("profile attributes no phase time: %+v", p.Phases)
	}

	// A cache hit never ran the miner: no trace.
	hit := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8},
	}))
	if !hit.Cached {
		t.Fatalf("second submission should hit the cache: %+v", hit)
	}
	if resp, _ := getWithAccept(t, ts.URL+"/v1/jobs/"+hit.ID+"/trace", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cache-hit trace status = %d, want 404", resp.StatusCode)
	}

	if resp, _ := getWithAccept(t, ts.URL+"/v1/jobs/nope/trace", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace status = %d, want 404", resp.StatusCode)
	}
}

// TestJobTracingDisabled: with DisableJobTracing the trace endpoint reports
// 404 and jobs still complete normally.
func TestJobTracingDisabled(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, DisableJobTracing: true})
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())
	job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8},
	}))
	info := waitJob(t, ts.URL, job.ID)
	if info.Status != StatusDone {
		t.Fatalf("job = %+v, want done", info)
	}
	if resp, _ := getWithAccept(t, ts.URL+"/v1/jobs/"+job.ID+"/trace", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace status = %d, want 404 when tracing is disabled", resp.StatusCode)
	}
}

// TestSlowJobWarning: a job slower than the threshold logs a warning and
// bumps the slow_jobs counter.
func TestSlowJobWarning(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	s, ts := testServer(t, Config{Workers: 1, SlowJobThreshold: time.Nanosecond, Logger: logger})
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())
	job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8},
	}))
	waitJob(t, ts.URL, job.ID)
	if got := s.Metrics()["slow_jobs"]; got != 1 {
		t.Errorf("slow_jobs = %d, want 1", got)
	}
	if !strings.Contains(logBuf.String(), "slow job") {
		t.Errorf("no slow-job warning logged:\n%s", logBuf.String())
	}
}

// TestMetricsConcurrent hammers the histograms, the per-job tracers, and
// the /metrics renderers from parallel jobs and scrapers; run with -race
// this is the data-race gate for the observability layer.
func TestMetricsConcurrent(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 4, QueueDepth: 256, CacheSize: -1})
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())

	const submitters, jobsEach = 4, 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers race the jobs: both views plus job traces.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				getWithAccept(t, ts.URL+"/metrics", "text/plain")
				getWithAccept(t, ts.URL+"/metrics", "")
			}
		}()
	}
	ids := make(chan string, submitters*jobsEach)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < jobsEach; i++ {
				job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
					Dataset: ds.ID,
					// Distinct seeds defeat the canonical key so every job mines.
					Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8, Seed: int64(g*jobsEach + i + 1), Parallelism: 2},
				}))
				ids <- job.ID
			}
		}(g)
	}
	for n := 0; n < submitters*jobsEach; n++ {
		id := <-ids
		info := waitJob(t, ts.URL, id)
		if info.Status != StatusDone {
			t.Errorf("job %s = %s (%s)", id, info.Status, info.Error)
		}
		if resp, body := getWithAccept(t, ts.URL+"/v1/jobs/"+id+"/trace", ""); resp.StatusCode != http.StatusOK {
			t.Errorf("trace %s status = %d: %s", id, resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()

	_, body := getWithAccept(t, ts.URL+"/metrics", "text/plain")
	want := fmt.Sprintf("pfcimd_job_wall_seconds_count %d", submitters*jobsEach)
	if !strings.Contains(body, want) {
		t.Errorf("exposition missing %q after %d jobs", want, submitters*jobsEach)
	}
}
