package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

// evalMemoEntries bounds the per-shard PMF memo. Each entry holds a
// truncated coefficient vector of ≤ min_sup+1 floats; beyond the cap,
// vectors are still computed but no longer cached. The memo only ever
// serves values that are bit-identical to recomputation, so the cap is a
// pure memory knob.
const evalMemoEntries = 1 << 14

// Evaluator is the per-shard state of one (dataset, shard) pair: the slice
// database, its vertical index, a reusable Poisson-binomial scratch, and a
// shard-local memo of truncated PMFs keyed by (itemset, extension, k).
// An Evaluator is not safe for concurrent use; Worker and LocalKernel
// serialize access per slot.
type Evaluator struct {
	Shard int
	Lo    int // global tid of local tid 0

	db    *uncertain.DB
	idx   *uncertain.Index
	probs []float64

	scratch poibin.Scratch
	pmfMemo map[string][]float64

	// Evals and MemoHits count tail-PMF computations and memo hits; the
	// worker reports per-call deltas so a coordinator can aggregate exact
	// totals across shards.
	Evals    int64
	MemoHits int64
}

// NewEvaluator builds shard i's evaluator by slicing db with the layout.
func NewEvaluator(db *uncertain.DB, l Layout, i int) (*Evaluator, error) {
	if err := CheckLayout(l, db.N()); err != nil {
		return nil, err
	}
	sub, err := uncertain.NewDB(Slice(db, l, i))
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", i, err)
	}
	return newEvaluator(sub, l, i), nil
}

// NewEvaluatorFromSlice builds an evaluator directly from a worker's
// received transaction slice.
func NewEvaluatorFromSlice(trans []uncertain.Transaction, l Layout, i int) (*Evaluator, error) {
	lo, hi := l.Bounds(i)
	if len(trans) != hi-lo {
		return nil, fmt.Errorf("shard %d: got %d transactions, layout says %d", i, len(trans), hi-lo)
	}
	sub, err := uncertain.NewDB(trans)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", i, err)
	}
	return newEvaluator(sub, l, i), nil
}

func newEvaluator(sub *uncertain.DB, l Layout, i int) *Evaluator {
	lo, _ := l.Bounds(i)
	return &Evaluator{
		Shard:   i,
		Lo:      lo,
		db:      sub,
		idx:     sub.Index(),
		probs:   sub.Probs(),
		pmfMemo: map[string][]float64{},
	}
}

// Trans returns the number of transactions in the slice.
func (e *Evaluator) Trans() int { return e.db.N() }

// TailPMF returns the truncated-at-k PMF of sup(X) restricted to this
// shard, where X is x plus ext when ext ≥ 0. The returned vector is owned
// by the evaluator (possibly memoized) and must be treated as read-only.
func (e *Evaluator) TailPMF(x itemset.Itemset, ext itemset.Item, k int) []float64 {
	key := pmfKey(x, ext, k)
	if v, ok := e.pmfMemo[key]; ok {
		e.MemoHits++
		return v
	}
	e.Evals++
	probs := e.idx.ProbsOf(e.tidsetOf(x, ext))
	v := e.scratch.PMFTrunc(probs, k)
	out := append([]float64(nil), v...)
	e.scratch.ReleasePMF(v)
	if len(e.pmfMemo) < evalMemoEntries {
		e.pmfMemo[key] = out
	}
	return out
}

// ClauseFactor returns this shard's partial of the Lemma 4.4 clause absence
// product Π_{T ∈ tids(X)\tids(X+ext)} (1−p_T), scanned in ascending tid
// order with the same sub-eps early exit as core's absentFactor. A returned
// value below NegligibleEps therefore means the scan early-exited — exactly
// the per-shard negligibility signal FoldFactors keys on.
func (e *Evaluator) ClauseFactor(x itemset.Itemset, ext itemset.Item) float64 {
	tids := e.tidsetOf(x, -1)
	sub := e.tidsetOf(x, ext)
	f := 1.0
	bitset.ForEachDiff(tids, sub, func(tid int) bool {
		f *= 1 - e.probs[tid]
		return f >= NegligibleEps
	})
	return f
}

// tidsetOf resolves the local tidset of x (plus ext when ext ≥ 0).
func (e *Evaluator) tidsetOf(x itemset.Itemset, ext itemset.Item) *bitset.Bitset {
	if ext >= 0 {
		x = x.Add(ext)
	}
	return e.idx.TidsetOf(x)
}

func pmfKey(x itemset.Itemset, ext itemset.Item, k int) string {
	var sb strings.Builder
	sb.WriteString(x.Key())
	sb.WriteByte('+')
	sb.WriteString(strconv.Itoa(int(ext)))
	sb.WriteByte('@')
	sb.WriteString(strconv.Itoa(k))
	return sb.String()
}

// RenderSlice serializes a transaction slice to the uncertain text format
// and content-hashes the rendering. Both sides of the placement RPC use it
// — the coordinator to ship and fingerprint a slice, the worker to
// acknowledge what it stored — so hash equality proves the worker holds
// exactly the transactions (and bit-exact probabilities: %g round-trips
// float64) the coordinator partitioned.
func RenderSlice(trans []uncertain.Transaction) (text, hash string, err error) {
	db, err := uncertain.NewDB(trans)
	if err != nil {
		return "", "", err
	}
	var sb strings.Builder
	if err := uncertain.Write(&sb, db); err != nil {
		return "", "", err
	}
	text = sb.String()
	sum := sha256.Sum256([]byte(text))
	return text, hex.EncodeToString(sum[:])[:16], nil
}

// HashSlice content-hashes a transaction slice in the uncertain text
// format, so a coordinator can verify a worker holds exactly the slice it
// was sent.
func HashSlice(trans []uncertain.Transaction) (string, error) {
	_, hash, err := RenderSlice(trans)
	return hash, err
}
