package experiments

import (
	"fmt"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/pfim"
)

// Extra runs the supplementary experiments that go beyond the paper's
// evaluation: parallel scaling of the DFS framework and a head-to-head of
// the two Monte-Carlo estimators (the Karp–Luby clause-coverage sampler
// inside ApproxFCP vs the naive whole-world sampler of §IV.B.4). These
// back the engineering claims DESIGN.md makes about the extensions.
func (s *Suite) Extra() error {
	if err := s.ExtraParallel(); err != nil {
		return err
	}
	return s.ExtraEstimators()
}

// ExtraParallel measures wall-clock speedup of Options.Parallelism on the
// Quest workload (whose first-level subtrees are numerous and balanced
// enough to parallelize).
func (s *Suite) ExtraParallel() error {
	ds := s.Quest
	rel := ds.DefaultMinSup
	fmt.Fprintf(s.Cfg.Out, "\nExtra A (%s): parallel DFS scaling at min_sup=%.2f\n", ds.Name, rel)
	t := newTable(s.Cfg.Out)
	t.row("parallelism", "time", "speedup")
	var base time.Duration
	for _, par := range []int{1, 2, 4, 8} {
		opts := s.baseOptions(ds.DB, rel)
		opts.Parallelism = par
		d, _, _, err := timedRun(ds.DB, opts)
		if err != nil {
			return err
		}
		if par == 1 {
			base = d
		}
		t.row(fmt.Sprintf("%d", par), formatDuration(d), fmt.Sprintf("%.2fx", float64(base)/float64(d)))
	}
	t.flush()
	return nil
}

// ExtraEstimators compares the two frequent-closed-probability estimators
// on the sampler-active itemsets of the Mushroom-like workload at matched
// (ε, δ) targets: per-itemset time and mean absolute error against the
// exact inclusion–exclusion value.
func (s *Suite) ExtraEstimators() error {
	ds := s.Mushroom
	minSup := core.AbsoluteMinSup(ds.DB.N(), ds.SamplerMinSup)

	// Collect the evaluation targets.
	pfis := pfim.Mine(ds.DB, pfim.Options{MinSup: minSup, PFT: 0.1})
	var picked []pfim.Itemset
	var exacts []float64
	for _, p := range pfis {
		m, err := core.ClauseCount(ds.DB, p.Items, minSup)
		if err != nil {
			return err
		}
		if m < 1 {
			continue
		}
		exact, err := core.ExactFCP(ds.DB, p.Items, minSup)
		if err != nil {
			continue
		}
		picked = append(picked, p)
		exacts = append(exacts, exact)
		if len(picked) >= 32 {
			break
		}
	}
	if len(picked) == 0 {
		fmt.Fprintf(s.Cfg.Out, "\nExtra B: no sampler-active itemsets at this scale\n")
		return nil
	}

	fmt.Fprintf(s.Cfg.Out, "\nExtra B (%s): ApproxFCP (Karp–Luby) vs naive world sampling on %d itemsets (min_sup=%.2f, ε=δ=0.1)\n",
		ds.Name, len(picked), ds.SamplerMinSup)
	t := newTable(s.Cfg.Out)
	t.row("estimator", "total time", "mean |est-exact|")

	// Karp–Luby clause-coverage estimator.
	start := time.Now()
	klErr := 0.0
	for i, p := range picked {
		est, err := core.EstimateFCP(ds.DB, p.Items, minSup, s.Cfg.Epsilon, s.Cfg.Delta, s.Cfg.Seed+int64(i))
		if err != nil {
			return err
		}
		klErr += abs(est - exacts[i])
	}
	klTime := time.Since(start)

	// Naive world sampler at the Hoeffding sample size for the same target.
	ws := core.NewWorldSampler(ds.DB, s.Cfg.Seed)
	n := core.EstimateSamples(s.Cfg.Epsilon, s.Cfg.Delta)
	start = time.Now()
	wsErr := 0.0
	for i, p := range picked {
		est, err := ws.FreqClosedProb(p.Items, minSup, n)
		if err != nil {
			return err
		}
		wsErr += abs(est - exacts[i])
	}
	wsTime := time.Since(start)

	t.row("ApproxFCP (Karp–Luby)", formatDuration(klTime), fmt.Sprintf("%.4f", klErr/float64(len(picked))))
	t.row(fmt.Sprintf("world sampler (n=%d)", n), formatDuration(wsTime), fmt.Sprintf("%.4f", wsErr/float64(len(picked))))
	t.flush()
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
