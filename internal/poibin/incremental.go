package poibin

import "math"

// Incremental maintenance of truncated Poisson-binomial PMFs (DESIGN §15).
//
// A sliding window adds and evicts one transaction at a time, and the
// per-item tail Pr[S ≥ min_sup] it needs is exactly the absorbing bin of the
// truncated PMF that PMFTrunc builds. Folding one success probability in is
// the same O(k) DP step leafPMF runs per tuple (UpdatePMF below is
// bit-identical to re-running the DP with the tuple appended, pinned by
// TestUpdatePMFMatchesPMFTrunc). Removing one is polynomial deconvolution:
// the DP step is linear in the old coefficients, so it inverts to a
// forward or backward O(k) recurrence — but the inversion divides by q = 1-p
// (or by p), which amplifies rounding when the pivot is small and loses
// information entirely for p = 1 under truncation (the absorbing bin has
// forgotten how much mass sat strictly above k). Deconvolve therefore
// self-checks by re-convolving its candidate and reports ok=false when the
// roundtrip drifts, and callers fall back to a from-scratch PMFTrunc — the
// fallback is always exact, so incremental maintenance is an optimization
// that can never change what a query reads beyond the verified tolerance.
//
// Unlike the Scratch freelist vectors, these run on plain caller-owned
// slices: a maintained PMF lives for the lifetime of a window item, not a
// single evaluation.

// deconvRoundtripTol bounds the absolute per-cell drift allowed between the
// input vector and the candidate re-convolved with the removed tuple. The
// forward recurrence's error grows like (p/q)^k, so a tight absolute bound
// rejects exactly the regimes where cancellation has destroyed the
// coefficients; rejected removals rebuild from scratch.
const deconvRoundtripTol = 1e-12

// deconvAmpBudget caps the error amplification (p/q)^k the forward sweep on
// an absorbing vector may incur. The sweep is a triangular solve whose
// inverse norm grows like (p/q)^k, so ulp-level differences between the
// input vector's fold order and the remainder's fold order blow up by that
// factor — a regime the roundtrip check cannot see, because near-singular
// systems have many candidates that re-convolve to the same input. With
// machine epsilon ~2e-16, a 1e6 budget keeps accepted answers within ~1e-9
// of the from-scratch DP (TestDeconvolveFuzz pins this).
const deconvAmpBudget = 1e6

// NewPMF returns the truncated PMF of an empty product — the single cell
// Pr[S = 0] = 1 — ready to grow via UpdatePMF.
func NewPMF() []float64 { return []float64{1} }

// UpdatePMF folds one success probability into a truncated PMF in place,
// growing the vector by one cell until it reaches the absorbing length k+1.
// The result is bit-identical to leafPMF over the extended tuple sequence,
// so a PMF maintained by UpdatePMF reads the same tail a from-scratch
// PMFTrunc would. For k ≤ 0 the PMF is the single absorbing bin and the
// update is a no-op. Returns the (possibly reallocated) vector.
func UpdatePMF(v []float64, p float64, k int) []float64 {
	if k <= 0 {
		return v
	}
	q := 1 - p
	L := len(v) - 1
	if L < k {
		v = append(v, 0)
		L++
	}
	top := L
	if L == k {
		// Absorbing bin: mass at or above k stays there regardless of the
		// new tuple, plus the inflow from exactly k-1 successes.
		v[L] += v[L-1] * p
		top = L - 1
	}
	for c := top; c >= 1; c-- {
		v[c] = v[c]*q + v[c-1]*p
	}
	v[0] *= q
	return v
}

// Deconvolve removes one success probability p from a truncated PMF of n
// tuples, returning a fresh vector of length min(n-1, k)+1 and ok=true, or
// ok=false when the removal cannot be done stably (the caller rebuilds from
// scratch). n is the number of tuples folded into v — needed because an
// absorbing vector of length k+1 looks the same for every n ≥ k.
//
// Three regimes:
//   - exact vectors (n ≤ k): invertible both ways; the recurrence direction
//     follows the larger pivot (forward divides by q, backward by p), so
//     p = 1 removals are the exact backward shift and p → 0 removals are the
//     well-conditioned forward sweep. The spare cell validates the result.
//   - absorbing vectors (n > k), p ≤ 1/2: forward sweep; the absorbing bin
//     inverts without division. Validated by re-convolving.
//   - absorbing vectors (n > k), p close to 1: the truncation has lost
//     Pr[S ≥ k+1] and the forward sweep divides by a vanishing q — the
//     roundtrip check rejects what cancellation has destroyed.
func Deconvolve(v []float64, n int, p float64, k int) ([]float64, bool) {
	if n <= 0 || p <= 0 || p > 1 {
		return nil, false
	}
	if k <= 0 {
		// Single absorbing bin [1] at every n; removal keeps it.
		return []float64{1}, true
	}
	q := 1 - p
	if n <= k {
		// Exact full PMF: len(v) == n+1, output length n.
		if len(v) != n+1 {
			return nil, false
		}
		w := make([]float64, n)
		if p >= 0.5 {
			// Backward: w[n-1] = v[n]/p; v[c+1] = w[c]*p + w[c+1]*q.
			w[n-1] = v[n] / p
			for c := n - 2; c >= 0; c-- {
				w[c] = (v[c+1] - w[c+1]*q) / p
			}
			if !plausiblePMF(w) || !closeAbs(v[0], w[0]*q) {
				return nil, false
			}
		} else {
			// Forward: w[0] = v[0]/q; v[c] = w[c]*q + w[c-1]*p.
			w[0] = v[0] / q
			for c := 1; c < n; c++ {
				w[c] = (v[c] - w[c-1]*p) / q
			}
			if !plausiblePMF(w) || !closeAbs(v[n], w[n-1]*p) {
				return nil, false
			}
		}
		clampCells(w)
		return w, true
	}
	// Absorbing vector: len(v) == k+1 and the output keeps that length
	// (n-1 ≥ k). Only the forward sweep applies — the absorbing top is not
	// an exact coefficient, so there is nothing sound to seed a backward
	// recurrence with.
	if len(v) != k+1 {
		return nil, false
	}
	if q < 1e-12 {
		// p = 1: the absorbing bin merged Pr[S = k] with Pr[S ≥ k+1] and the
		// split is unrecoverable from the truncated vector.
		return nil, false
	}
	if p > q && float64(k)*math.Log(p/q) > math.Log(deconvAmpBudget) {
		// Ill-conditioned: the solve would amplify rounding beyond the
		// advertised tolerance even though the roundtrip would close.
		return nil, false
	}
	w := make([]float64, k+1)
	w[0] = v[0] / q
	for c := 1; c < k; c++ {
		w[c] = (v[c] - w[c-1]*p) / q
	}
	// Absorbing bin inverse of UpdatePMF's v[k] += v[k-1]*p.
	w[k] = v[k] - w[k-1]*p
	if !plausiblePMF(w) {
		return nil, false
	}
	// Self-check: re-folding the removed tuple must reproduce the input.
	// This is what turns "forward sweep might have cancelled" into a sound
	// answer: either the roundtrip closes and w is within tolerance of the
	// true remainder, or we refuse and the caller rebuilds exactly.
	if !roundtripCloses(w, v, p, k) {
		return nil, false
	}
	clampCells(w)
	return w, true
}

// plausiblePMF rejects vectors with NaN/Inf cells or cells outside [0,1]
// beyond rounding slack — the unambiguous signature of a cancelled sweep.
func plausiblePMF(w []float64) bool {
	for _, c := range w {
		if !(c >= -deconvRoundtripTol && c <= 1+deconvRoundtripTol) {
			return false // also catches NaN
		}
	}
	return true
}

// clampCells snaps rounding residue back into [0,1].
func clampCells(w []float64) {
	for i, c := range w {
		if c < 0 {
			w[i] = 0
		} else if c > 1 {
			w[i] = 1
		}
	}
}

func closeAbs(a, b float64) bool {
	d := a - b
	return d >= -deconvRoundtripTol && d <= deconvRoundtripTol
}

// roundtripCloses re-applies the removed tuple to the candidate remainder
// and compares against the original absorbing vector cell by cell.
func roundtripCloses(w, v []float64, p float64, k int) bool {
	q := 1 - p
	// Mirror UpdatePMF on an absorbing-length vector without mutating w.
	prev := w[0] * q
	if !closeAbs(prev, v[0]) {
		return false
	}
	for c := 1; c < k; c++ {
		if !closeAbs(w[c]*q+w[c-1]*p, v[c]) {
			return false
		}
	}
	return closeAbs(w[k]+w[k-1]*p, v[k])
}
