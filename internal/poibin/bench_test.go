package poibin

import (
	"math/rand"
	"testing"
)

func benchProbs(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = rng.Float64()
	}
	return ps
}

// The exact DP tail is the miner's hottest numeric kernel; the analytic
// bounds and the normal approximation are its cheap stand-ins. These
// benchmarks quantify the gap that makes Chernoff-Hoeffding pruning
// (Lemma 4.1) worthwhile.

func BenchmarkTailExactN1000K300(b *testing.B) {
	probs := benchProbs(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tail(probs, 300)
	}
}

func BenchmarkTailExactN1000K10(b *testing.B) {
	probs := benchProbs(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tail(probs, 10)
	}
}

func BenchmarkTailUpperBoundN1000(b *testing.B) {
	probs := benchProbs(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TailUpperBound(probs, 600)
	}
}

func BenchmarkNormalTailN1000(b *testing.B) {
	probs := benchProbs(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NormalTail(probs, 600)
	}
}

func BenchmarkCondSamplerBuildN500K150(b *testing.B) {
	probs := benchProbs(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCondSampler(probs, 150); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCondSamplerDrawN500K150(b *testing.B) {
	probs := benchProbs(500)
	cs, err := NewCondSampler(probs, 150)
	if err != nil {
		b.Fatal(err)
	}
	rng := NewSM64(2)
	dst := make([]bool, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Sample(rng, dst)
	}
}
