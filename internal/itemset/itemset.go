// Package itemset defines the Item and Itemset value types shared by every
// miner in this repository, together with the small algebra the algorithms
// need: ordered insertion, subset tests, unions, prefix comparisons and a
// canonical string form usable as a map key.
//
// An Itemset is always kept sorted in ascending item order with no
// duplicates; every constructor and operation preserves that invariant.
// The "alphabetic order" of the paper is this item order.
package itemset

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Item identifies a distinct item of the universe I = {i_1, …, i_n}.
type Item int32

// Itemset is a sorted, duplicate-free set of items. The zero value is the
// empty itemset.
type Itemset []Item

// New returns an Itemset holding the given items, sorted and deduplicated.
func New(items ...Item) Itemset {
	if len(items) == 0 {
		return nil
	}
	s := make(Itemset, len(items))
	copy(s, items)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, it := range s[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return out
}

// FromInts converts a slice of ints; convenient for tests and generators.
func FromInts(items ...int) Itemset {
	s := make([]Item, len(items))
	for i, v := range items {
		s[i] = Item(v)
	}
	return New(s...)
}

// Len returns the number of items (the paper's |X|, so X is an l-itemset
// when Len() == l).
func (s Itemset) Len() int { return len(s) }

// Empty reports whether the itemset has no items.
func (s Itemset) Empty() bool { return len(s) == 0 }

// Contains reports whether item x is a member.
func (s Itemset) Contains(x Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// Last returns the greatest item. It panics on the empty set.
func (s Itemset) Last() Item {
	if len(s) == 0 {
		panic("itemset: Last of empty set")
	}
	return s[len(s)-1]
}

// Extend returns a new itemset s ∪ {x} where x must be greater than every
// item of s (the DFS prefix-extension step). It panics otherwise, because
// silently reordering would break the enumeration invariants.
func (s Itemset) Extend(x Item) Itemset {
	if len(s) > 0 && x <= s.Last() {
		panic(fmt.Sprintf("itemset: Extend(%d) not greater than last item %d", x, s.Last()))
	}
	out := make(Itemset, len(s)+1)
	copy(out, s)
	out[len(s)] = x
	return out
}

// Add returns s ∪ {x} regardless of order.
func (s Itemset) Add(x Item) Itemset {
	if s.Contains(x) {
		return s.Clone()
	}
	out := append(s.Clone(), x)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Remove returns s \ {x}.
func (s Itemset) Remove(x Item) Itemset {
	out := make(Itemset, 0, len(s))
	for _, it := range s {
		if it != x {
			out = append(out, it)
		}
	}
	return out
}

// Clone returns an independent copy.
func (s Itemset) Clone() Itemset {
	if s == nil {
		return nil
	}
	out := make(Itemset, len(s))
	copy(out, s)
	return out
}

// Union returns s ∪ t.
func Union(s, t Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns s ∩ t.
func Intersect(s, t Itemset) Itemset {
	var out Itemset
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Diff returns s \ t.
func Diff(s, t Itemset) Itemset {
	var out Itemset
	j := 0
	for _, it := range s {
		for j < len(t) && t[j] < it {
			j++
		}
		if j >= len(t) || t[j] != it {
			out = append(out, it)
		}
	}
	return out
}

// IsSubset reports whether every item of s appears in t (s ⊆ t).
func IsSubset(s, t Itemset) bool {
	if len(s) > len(t) {
		return false
	}
	j := 0
	for _, it := range s {
		for j < len(t) && t[j] < it {
			j++
		}
		if j >= len(t) || t[j] != it {
			return false
		}
		j++
	}
	return true
}

// IsProperSubset reports s ⊂ t.
func IsProperSubset(s, t Itemset) bool {
	return len(s) < len(t) && IsSubset(s, t)
}

// Equal reports whether s and t contain exactly the same items.
func Equal(s, t Itemset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Compare orders itemsets lexicographically by item sequence; shorter
// prefixes sort first. It returns -1, 0 or +1.
func Compare(s, t Itemset) int {
	for i := 0; i < len(s) && i < len(t); i++ {
		switch {
		case s[i] < t[i]:
			return -1
		case s[i] > t[i]:
			return 1
		}
	}
	switch {
	case len(s) < len(t):
		return -1
	case len(s) > len(t):
		return 1
	}
	return 0
}

// HasPrefix reports whether p is a prefix of s in the item order — the
// paper's "superset with X as prefix" relation.
func HasPrefix(s, p Itemset) bool {
	if len(p) > len(s) {
		return false
	}
	for i := range p {
		if s[i] != p[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string usable as a map key ("1 5 9").
func (s Itemset) Key() string {
	if len(s) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, it := range s {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(int(it)))
	}
	return sb.String()
}

// ParseKey inverts Key.
func ParseKey(key string) (Itemset, error) {
	if key == "" {
		return nil, nil
	}
	fields := strings.Fields(key)
	items := make([]Item, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("itemset: parse key %q: %w", key, err)
		}
		items[i] = Item(v)
	}
	return New(items...), nil
}

// String renders the itemset as {a b c} using letters for small items
// (0→a … 25→z) and numbers beyond, which makes test output match the
// paper's running example.
func (s Itemset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, it := range s {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if it >= 0 && it < 26 {
			sb.WriteByte(byte('a' + it))
		} else {
			sb.WriteString(strconv.Itoa(int(it)))
		}
	}
	sb.WriteByte('}')
	return sb.String()
}
