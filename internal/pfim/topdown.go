package pfim

import (
	"sort"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

// MineTopDown returns the same result set as Mine using the top-down
// strategy of the TODIS algorithm [22]: because the frequent probability
// is anti-monotone, the probabilistic frequent itemsets are exactly the
// non-empty subsets of the *maximal* probabilistic frequent itemsets. The
// miner first discovers the maximal PFIs with a depth-first search (the
// bottom-up pass), then derives every subset top-down, deduplicates, and
// fills in the exact frequent probabilities.
//
// Its purpose in this repository is twofold: it is the second of the two
// strategies of [22] the paper cites ("two efficient algorithms, the
// bottom-up and the top-down"), and it cross-checks Mine in the tests.
func MineTopDown(db *uncertain.DB, opts Options) []Itemset {
	if opts.MinSup < 1 {
		opts.MinSup = 1
	}
	idx := db.Index()
	probs := db.Probs()

	probsOf := func(b *bitset.Bitset) []float64 {
		ps := make([]float64, 0, b.Count())
		b.ForEach(func(tid int) bool {
			ps = append(ps, probs[tid])
			return true
		})
		return ps
	}
	isPF := func(b *bitset.Bitset) bool {
		if b.Count() < opts.MinSup {
			return false
		}
		ps := probsOf(b)
		if !opts.DisableCH && poibin.TailUpperBound(ps, opts.MinSup) <= opts.PFT {
			return false
		}
		return poibin.Tail(ps, opts.MinSup) > opts.PFT
	}

	type cand struct {
		item itemset.Item
		tids *bitset.Bitset
	}
	var cands []cand
	for _, it := range idx.Items {
		if isPF(idx.Tidsets[it]) {
			cands = append(cands, cand{item: it, tids: idx.Tidsets[it]})
		}
	}

	// Phase 1: maximal PFIs. An enumeration node is maximal iff no
	// extension — by any other candidate item, not just tail items — keeps
	// it probabilistically frequent, and it is not already covered by a
	// previously found maximal itemset.
	var maximal []itemset.Itemset
	covered := func(x itemset.Itemset) bool {
		for _, m := range maximal {
			if itemset.IsSubset(x, m) {
				return true
			}
		}
		return false
	}
	var rec func(x itemset.Itemset, tids *bitset.Bitset, startPos int)
	rec = func(x itemset.Itemset, tids *bitset.Bitset, startPos int) {
		extended := false
		for pos := startPos; pos < len(cands); pos++ {
			child := bitset.And(tids, cands[pos].tids)
			if isPF(child) {
				extended = true
				rec(x.Extend(cands[pos].item), child, pos+1)
			}
		}
		if extended {
			return
		}
		// No tail extension survives. Candidate items greater than the last
		// item of x were all covered by the loop above; items smaller than
		// it must still be checked before declaring maximality — an itemset
		// extendable by an earlier item is handled by the branch that
		// includes that item.
		for _, c := range cands {
			if c.item >= x.Last() {
				break
			}
			if x.Contains(c.item) {
				continue
			}
			if isPF(bitset.And(tids, c.tids)) {
				return
			}
		}
		if !covered(x) {
			maximal = append(maximal, x.Clone())
		}
	}
	for pos, c := range cands {
		rec(itemset.Itemset{c.item}, c.tids.Clone(), pos+1)
	}

	// Phase 2: derive all subsets of the maximal itemsets.
	seen := map[string]itemset.Itemset{}
	var addSubsets func(x itemset.Itemset)
	addSubsets = func(x itemset.Itemset) {
		if len(x) == 0 {
			return
		}
		key := x.Key()
		if _, ok := seen[key]; ok {
			return
		}
		seen[key] = x.Clone()
		for _, drop := range x {
			addSubsets(x.Remove(drop))
		}
	}
	for _, m := range maximal {
		addSubsets(m)
	}

	// Phase 3: exact frequent probabilities for the output.
	out := make([]Itemset, 0, len(seen))
	for _, x := range seen {
		tids := idx.TidsetOf(x)
		ps := probsOf(tids)
		exp := 0.0
		for _, p := range ps {
			exp += p
		}
		out = append(out, Itemset{
			Items:           x,
			FreqProb:        poibin.Tail(ps, opts.MinSup),
			Count:           tids.Count(),
			ExpectedSupport: exp,
		})
	}
	sort.Slice(out, func(i, j int) bool { return itemset.Compare(out[i].Items, out[j].Items) < 0 })
	return out
}

// MaximalFrequent returns only the maximal probabilistic frequent itemsets
// — the compact border representation the top-down strategy is built on.
func MaximalFrequent(db *uncertain.DB, opts Options) []itemset.Itemset {
	full := MineTopDown(db, opts)
	keys := map[string]bool{}
	for _, p := range full {
		keys[p.Items.Key()] = true
	}
	items := db.Items()
	var out []itemset.Itemset
	for _, p := range full {
		isMax := true
		for _, e := range items {
			if p.Items.Contains(e) {
				continue
			}
			if keys[p.Items.Add(e).Key()] {
				isMax = false
				break
			}
		}
		if isMax {
			out = append(out, p.Items)
		}
	}
	return out
}
