package stream

import (
	"context"
	"fmt"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/uncertain"
)

// Delta engine (DESIGN §15): incremental MPFCI over a live window. The
// Miner wraps a Window and a core.ReuseCache; pushes record which
// transactions changed since the last mine, and each MineContext
// re-evaluates only the enumeration subtrees at least one changed
// transaction participates in — an itemset X is invalidated iff some added
// or evicted transaction contains X, because only then does the set of
// window transactions holding X (and with it anything the subtree computes)
// change. Everything else is spliced from the previous round's recording,
// and the full result is byte-identical to a from-scratch core.Mine of the
// window snapshot (the crosscheck StreamEquivalence invariant pins this).

// Miner mines probabilistic frequent closed itemsets incrementally over a
// live window. Construct with NewMiner; not safe for concurrent use.
type Miner struct {
	w     *Window
	opts  core.Options
	cache *core.ReuseCache

	// pending holds the item sets of every transaction added to or evicted
	// from the window since the last successful mine.
	pending []itemset.Itemset
	last    *core.Result
	rounds  int

	// onRound, when set, receives every successful round's telemetry after
	// the round's state (Last, Rounds, the reuse cache) has been updated.
	onRound func(RoundInfo)
}

// RoundInfo is one successful incremental round's telemetry: what the
// round cost, what changed against the previous round, and how much of the
// result was spliced from the reuse cache instead of re-mined.
type RoundInfo struct {
	Round   int           // 1-based index of the round just completed
	Wall    time.Duration // wall time of the incremental mine
	Results int           // itemsets in the round's full result
	Diff    Diff
	Stats   core.Stats
}

// ReuseRatio is the share of the round's result items replayed from the
// reuse cache, in [0, 1]; 0 when the round produced nothing.
func (ri RoundInfo) ReuseRatio() float64 {
	if ri.Results == 0 {
		return 0
	}
	return float64(ri.Stats.SplicedResults) / float64(ri.Results)
}

// SetOnRound installs the per-round telemetry hook (nil disables). The
// service layer uses it to feed the watched-stream metrics; the hook runs
// synchronously on the mining goroutine, so it must be cheap.
func (m *Miner) SetOnRound(fn func(RoundInfo)) { m.onRound = fn }

// NewMiner wraps a window for incremental mining with the given options.
// Options are validated eagerly; BFS search is rejected (incremental runs
// force the serial DFS path — an execution detail that never changes
// results, DESIGN §8.3).
func NewMiner(w *Window, opts core.Options) (*Miner, error) {
	if w == nil {
		return nil, fmt.Errorf("stream: nil window")
	}
	if opts.Search == core.BFS {
		return nil, fmt.Errorf("stream: incremental mining requires DFS search")
	}
	if _, err := opts.Canonical(); err != nil {
		return nil, err
	}
	return &Miner{w: w, opts: opts, cache: core.NewReuseCache()}, nil
}

// Window returns the underlying window. Push through the miner, not the
// window, so invalidation tracking stays sound; queries are fine either
// way.
func (m *Miner) Window() *Window { return m.w }

// Last returns the result of the last successful mine, nil before the
// first.
func (m *Miner) Last() *core.Result { return m.last }

// Rounds returns the number of successful mines.
func (m *Miner) Rounds() int { return m.rounds }

// Push appends a transaction to the window (evicting the oldest once a
// bounded window is full) and records both sides of the change for subtree
// invalidation at the next mine.
func (m *Miner) Push(t uncertain.Transaction) error {
	evicted, didEvict, err := m.w.Push(t)
	if err != nil {
		return err
	}
	m.pending = append(m.pending, t.Items.Clone())
	if didEvict {
		// The window no longer references the evicted transaction's items;
		// safe to retain without cloning.
		m.pending = append(m.pending, evicted.Items)
	}
	return nil
}

// affected reports whether some changed transaction contains x.
func (m *Miner) affected(x itemset.Itemset) bool {
	for _, t := range m.pending {
		if itemset.IsSubset(x, t) {
			return true
		}
	}
	return false
}

// MineContext mines the current window incrementally: subtrees untouched by
// the transactions pushed since the last mine are replayed from the reuse
// cache, the rest are re-mined, and the result is byte-identical to a
// from-scratch core.Mine of Window.Snapshot(). The returned Diff compares
// against the previous round (everything Added on the first). On error —
// including cancellation — the reuse cache resets and the next round mines
// from scratch; the Diff baseline is unaffected.
func (m *Miner) MineContext(ctx context.Context) (*core.Result, Diff, error) {
	db, err := m.w.Snapshot()
	if err != nil {
		return nil, Diff{}, err
	}
	start := time.Now()
	res, err := core.MineIncremental(ctx, db, m.opts, m.cache, m.affected)
	if err != nil {
		// MineIncremental already Reset the cache; the pending set is now
		// meaningless (there is no recorded round to diff against), so
		// clear it too.
		m.pending = m.pending[:0]
		return nil, Diff{}, err
	}
	diff := computeDiff(m.last, res)
	m.last = res
	m.rounds++
	m.pending = m.pending[:0]
	if m.onRound != nil {
		m.onRound(RoundInfo{
			Round:   m.rounds,
			Wall:    time.Since(start),
			Results: len(res.Itemsets),
			Diff:    diff,
			Stats:   res.Stats,
		})
	}
	return res, diff, nil
}

// MineTraced runs one incremental round with tr attached as the round's
// tracer, restoring the miner's configured tracer afterwards. The tracer
// never influences mining (it is excluded from the canonical option key and
// the kernels only write to it), so a traced round stays byte-identical to
// an untraced one — this is how a watched job's per-round phase spans land
// in the owning job's trace.
func (m *Miner) MineTraced(ctx context.Context, tr *obs.Tracer) (*core.Result, Diff, error) {
	prev := m.opts.Tracer
	m.opts.Tracer = tr
	defer func() { m.opts.Tracer = prev }()
	return m.MineContext(ctx)
}

// Diff is the change set between two consecutive mining rounds over the
// same lineage: closed itemsets that appeared, disappeared, or kept their
// identity but changed any reported number (Pr_FC, bounds, Pr_F, or the
// resolution method). Changed carries the new values.
type Diff struct {
	Added     []core.ResultItem
	Removed   []core.ResultItem
	Changed   []core.ResultItem
	Unchanged int
}

// Empty reports whether the rounds were identical.
func (d Diff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}

// computeDiff merge-walks two lexicographically sorted result sets.
// prev == nil (first round) yields everything Added.
func computeDiff(prev, cur *core.Result) Diff {
	var d Diff
	var old []core.ResultItem
	if prev != nil {
		old = prev.Itemsets
	}
	i, j := 0, 0
	for i < len(old) && j < len(cur.Itemsets) {
		switch c := itemset.Compare(old[i].Items, cur.Itemsets[j].Items); {
		case c < 0:
			d.Removed = append(d.Removed, old[i])
			i++
		case c > 0:
			d.Added = append(d.Added, cur.Itemsets[j])
			j++
		default:
			if sameValues(old[i], cur.Itemsets[j]) {
				d.Unchanged++
			} else {
				d.Changed = append(d.Changed, cur.Itemsets[j])
			}
			i++
			j++
		}
	}
	d.Removed = append(d.Removed, old[i:]...)
	d.Added = append(d.Added, cur.Itemsets[j:]...)
	return d
}

// sameValues compares every reported number of one itemset across rounds.
// Mining is deterministic per (content, canonical options), so exact float
// equality is the right test: an unchanged subtree replays bit-identically.
func sameValues(a, b core.ResultItem) bool {
	return a.Prob == b.Prob && a.Lower == b.Lower && a.Upper == b.Upper &&
		a.FreqProb == b.FreqProb && a.Method == b.Method
}

// DiffJSON is the wire form of a Diff.
type DiffJSON struct {
	Added     []core.ResultItemJSON `json:"added,omitempty"`
	Removed   []core.ResultItemJSON `json:"removed,omitempty"`
	Changed   []core.ResultItemJSON `json:"changed,omitempty"`
	Unchanged int                   `json:"unchanged"`
}

// JSON converts the diff to its wire form.
func (d Diff) JSON() DiffJSON {
	conv := func(items []core.ResultItem) []core.ResultItemJSON {
		if len(items) == 0 {
			return nil
		}
		out := make([]core.ResultItemJSON, len(items))
		for i, ri := range items {
			out[i] = ri.JSON()
		}
		return out
	}
	return DiffJSON{
		Added:     conv(d.Added),
		Removed:   conv(d.Removed),
		Changed:   conv(d.Changed),
		Unchanged: d.Unchanged,
	}
}
