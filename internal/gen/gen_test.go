package gen

import (
	"math"
	"math/rand"
	"testing"

	"github.com/probdata/pfcim/internal/exact"
	"github.com/probdata/pfcim/internal/itemset"
)

func TestQuestShape(t *testing.T) {
	cfg := QuestT20I10D30KP40(0.01, 7) // 300 transactions
	data := Quest(cfg)
	if len(data) != 300 {
		t.Fatalf("generated %d transactions, want 300", len(data))
	}
	totalLen := 0
	maxItem := itemset.Item(0)
	for _, tr := range data {
		if len(tr) == 0 {
			t.Fatal("empty transaction generated")
		}
		totalLen += len(tr)
		for i := 1; i < len(tr); i++ {
			if tr[i-1] >= tr[i] {
				t.Fatal("transaction not sorted/deduplicated")
			}
		}
		if last := tr.Last(); last > maxItem {
			maxItem = last
		}
	}
	avg := float64(totalLen) / float64(len(data))
	if avg < 12 || avg > 28 {
		t.Errorf("average transaction length %.1f too far from T=20", avg)
	}
	if int(maxItem) >= cfg.NumItems {
		t.Errorf("item %d outside universe of %d", maxItem, cfg.NumItems)
	}
}

func TestQuestDeterminism(t *testing.T) {
	a := Quest(QuestT20I10D30KP40(0.01, 5))
	b := Quest(QuestT20I10D30KP40(0.01, 5))
	if len(a) != len(b) {
		t.Fatal("same seed, different sizes")
	}
	for i := range a {
		if !itemset.Equal(a[i], b[i]) {
			t.Fatalf("same seed, different transaction %d", i)
		}
	}
	c := Quest(QuestT20I10D30KP40(0.01, 6))
	same := true
	for i := range a {
		if !itemset.Equal(a[i], c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestQuestScaleFloor(t *testing.T) {
	cfg := QuestT20I10D30KP40(0, 1)
	if cfg.NumTrans != 1 {
		t.Errorf("zero scale should floor to 1 transaction, got %d", cfg.NumTrans)
	}
}

func TestMushroomShape(t *testing.T) {
	cfg := MushroomConfig{NumTrans: 500, Seed: 11}.withDefaults()
	data := Mushroom(cfg)
	if len(data) != 500 {
		t.Fatalf("generated %d transactions, want 500", len(data))
	}
	for _, tr := range data {
		if len(tr) != cfg.NumAttributes {
			t.Fatalf("transaction length %d, want exactly %d (one item per attribute)", len(tr), cfg.NumAttributes)
		}
	}
	// Attribute ranges are disjoint: every transaction has exactly one item
	// per attribute range, so the universe ≈ Σ valueCounts but each
	// transaction never repeats a range.
	universe := map[itemset.Item]bool{}
	for _, tr := range data {
		for _, it := range tr {
			universe[it] = true
		}
	}
	if len(universe) < 40 {
		t.Errorf("only %d distinct items; generator should give ≈119", len(universe))
	}
}

func TestMushroomConstantsAndMirrors(t *testing.T) {
	data := MushroomLike(0.05, 13) // 406 transactions
	d := exact.Dataset(data)
	// Constant attributes: at least one item must appear in every
	// transaction.
	counts := map[itemset.Item]int{}
	for _, tr := range data {
		for _, it := range tr {
			counts[it]++
		}
	}
	constant := 0
	for _, c := range counts {
		if c == len(data) {
			constant++
		}
	}
	if constant < 2 {
		t.Errorf("found %d constant items, want ≥ 2", constant)
	}
	// Compression: closed itemsets must be strictly fewer than frequent
	// itemsets at a moderate threshold — the property Fig. 10 depends on.
	minSup := len(data) * 3 / 10
	fi := exact.FPGrowth(d, minSup)
	fci := exact.MineClosed(d, minSup)
	if len(fci) == 0 || len(fi) <= len(fci) {
		t.Errorf("no compression: FI=%d FCI=%d", len(fi), len(fci))
	}
	if ratio := float64(len(fi)) / float64(len(fci)); ratio < 2 {
		t.Errorf("compression ratio %.1f too weak for a Mushroom-like dataset", ratio)
	}
}

func TestMushroomDeterminism(t *testing.T) {
	a := MushroomLike(0.02, 3)
	b := MushroomLike(0.02, 3)
	for i := range a {
		if !itemset.Equal(a[i], b[i]) {
			t.Fatalf("same seed, different transaction %d", i)
		}
	}
}

func TestAssignGaussian(t *testing.T) {
	data := MushroomLike(0.05, 1)
	db := AssignGaussian(data, 0.8, 0.01, 2)
	if db.N() != len(data) {
		t.Fatalf("db has %d tuples, want %d", db.N(), len(data))
	}
	sum := 0.0
	for i := 0; i < db.N(); i++ {
		p := db.Prob(i)
		if p < 0.01 || p > 1 {
			t.Fatalf("probability %v outside (0,1]", p)
		}
		sum += p
	}
	mean := sum / float64(db.N())
	if math.Abs(mean-0.8) > 0.05 {
		t.Errorf("mean probability %.3f, want ≈ 0.8", mean)
	}
	// High-variance regime must clamp, not fail.
	db = AssignGaussian(data, 0.5, 0.5, 3)
	for i := 0; i < db.N(); i++ {
		if p := db.Prob(i); p < 0.01 || p > 1 {
			t.Fatalf("clamped probability %v outside (0,1]", p)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	rng := newTestRand(9)
	n := 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, 10)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-10) > 0.3 {
		t.Errorf("poisson mean %.2f, want ≈ 10", mean)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestWeightedPick(t *testing.T) {
	rng := newTestRand(10)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[weightedPick(rng, weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio %.2f, want ≈ 3", ratio)
	}
}

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
