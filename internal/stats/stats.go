// Package stats holds the small statistical helpers the experiment harness
// needs: precision/recall of result sets and summary statistics.
package stats

import (
	"math"
	"sort"

	"github.com/probdata/pfcim/internal/itemset"
)

// PrecisionRecall compares a found result set FR against the true set TI by
// itemset identity: precision = |FR ∩ TI| / |FR|, recall = |FR ∩ TI| / |TI|
// (Fig. 11's metrics). Empty denominators yield 1, matching the convention
// that an empty answer to an empty truth is perfect.
func PrecisionRecall(found, truth []itemset.Itemset) (precision, recall float64) {
	truthSet := make(map[string]bool, len(truth))
	for _, t := range truth {
		truthSet[t.Key()] = true
	}
	hit := 0
	for _, f := range found {
		if truthSet[f.Key()] {
			hit++
		}
	}
	if len(found) == 0 {
		precision = 1
	} else {
		precision = float64(hit) / float64(len(found))
	}
	if len(truth) == 0 {
		recall = 1
	} else {
		recall = float64(hit) / float64(len(truth))
	}
	return precision, recall
}

// F1 combines precision and recall.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
}

// Summarize computes a Summary; an empty sample yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}
