package poibin

// SM64 is a splitmix64-backed uniform generator used on the Karp–Luby
// sampling hot path. It produces the exact uniform stream that
// rand.New(src).Float64() produces over a Source64 whose Uint64 is the
// SplitMix64 finalizer and whose Int63 is Uint64 >> 1 — the miner's
// per-node source — but as a concrete type: every draw inlines into the
// caller instead of crossing three math/rand wrapper layers with interface
// dispatch, which profiling showed cost ~30% of a sampling-bound mine.
//
// Any change to Float64 must preserve the stream bit for bit; the miner's
// byte-identical-results guarantee (DESIGN §7) depends on it, and
// TestSM64MatchesMathRand pins it against math/rand directly.
type SM64 struct{ state uint64 }

// NewSM64 returns a generator seeded with the given raw state. Callers
// that derive seeds from structured data (e.g. itemsets) should mix them
// first; SplitMix64's increment-then-finalize step decorrelates nearby
// states on its own, so a raw counter or hash is an acceptable seed.
func NewSM64(seed uint64) *SM64 { return &SM64{state: seed} }

// Uint64 advances the state by the golden-ratio increment and applies the
// SplitMix64 finalizer.
func (s *SM64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 matches rand.Rand's Int63 over a Source64: the top 63 bits of
// Uint64.
func (s *SM64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Float64 returns a uniform draw in [0, 1), replicating math/rand's
// rejection loop exactly: divide Int63 by 2⁶³ and retry on a result that
// rounds up to 1.
func (s *SM64) Float64() float64 {
again:
	f := float64(s.Int63()) / (1 << 63)
	if f == 1 {
		goto again
	}
	return f
}
