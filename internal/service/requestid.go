package service

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"github.com/probdata/pfcim/internal/shard"
)

// Correlated logging (DESIGN §16): every daemon request gets a minted
// request ID that (a) is echoed in the X-Request-Id response header, (b)
// tags every log line the handler emits through the request-scoped logger,
// and (c) rides outgoing shard RPCs as the X-Pfcim-Trace header until a job
// installs its own trace ID — so one grep connects a client call, the
// daemon's handling, and the worker-side evaluations it caused.

type reqLogKey struct{}
type reqIDKey struct{}

// withRequestID wraps the daemon mux: mints the request ID, installs the
// request-scoped logger and shard trace ID into the context, and logs one
// access line per request.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := "r" + strconv.FormatInt(s.reqSeq.Add(1), 10)
		rl := s.log.With("request_id", id)
		w.Header().Set("X-Request-Id", id)
		ctx := context.WithValue(r.Context(), reqIDKey{}, id)
		ctx = context.WithValue(ctx, reqLogKey{}, rl)
		ctx = shard.WithTraceID(ctx, id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		rl.Debug("request handled", "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "duration_ms", time.Since(start).Milliseconds())
	})
}

// rlog returns the request-scoped logger (the server logger outside a
// request).
func (s *Server) rlog(r *http.Request) *slog.Logger {
	if l, ok := r.Context().Value(reqLogKey{}).(*slog.Logger); ok {
		return l
	}
	return s.log
}

// requestIDFrom returns the minted request ID ("" outside the middleware).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
