package service

import (
	"bytes"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

func extraBatch() []uncertain.Transaction {
	return []uncertain.Transaction{
		{Items: itemset.FromInts(0, 1, 2, 3), Prob: 0.9},
	}
}

func TestRegistryVersioning(t *testing.T) {
	r := NewRegistry()
	root, fresh, err := r.Register(uncertain.PaperExample(), false)
	if err != nil || !fresh {
		t.Fatalf("register: fresh=%v err=%v", fresh, err)
	}
	if root.Lineage != root.ID || root.Version != 1 {
		t.Fatalf("root lineage/version: %+v", root)
	}

	v2, fresh, err := r.Append(root.ID, extraBatch())
	if err != nil || !fresh {
		t.Fatalf("append: fresh=%v err=%v", fresh, err)
	}
	if v2.Lineage != root.ID || v2.Version != 2 {
		t.Fatalf("appended version: lineage=%s version=%d", v2.Lineage, v2.Version)
	}
	if v2.DB().N() != root.DB().N()+1 {
		t.Fatalf("appended DB has %d transactions, want %d", v2.DB().N(), root.DB().N()+1)
	}
	if v2.ID == root.ID {
		t.Fatal("appended version shares the root's content hash")
	}

	// Appending the same batch to the same latest version is idempotent.
	again, fresh, err := r.Append(root.ID, extraBatch())
	if err != nil || fresh || again.ID != v2.ID {
		t.Fatalf("re-append: fresh=%v id=%s err=%v", fresh, again.ID, err)
	}

	// Every reference shape resolves.
	for ref, want := range map[string]string{
		root.ID:             root.ID,
		v2.ID:               v2.ID,
		root.ID + "@latest": v2.ID, // follows the lineage
		v2.ID + "@latest":   v2.ID, // navigable from any version
		root.ID + "@1":      root.ID,
		root.ID + "@2":      v2.ID,
		v2.ID + "@1":        root.ID,
	} {
		got, err := r.Resolve(ref)
		if err != nil {
			t.Fatalf("resolve %q: %v", ref, err)
		}
		if got.ID != want {
			t.Fatalf("resolve %q = %s, want %s", ref, got.ID, want)
		}
	}
	for _, bad := range []string{"ffff000011112222", root.ID + "@3", root.ID + "@0", root.ID + "@x"} {
		if _, err := r.Resolve(bad); err == nil {
			t.Fatalf("resolve %q must fail", bad)
		}
	}
	if got := r.LatestVersion(root.ID); got != 2 {
		t.Fatalf("LatestVersion = %d, want 2", got)
	}
	if !IsLatestRef(root.ID+"@latest") || IsLatestRef(root.ID+"@2") || IsLatestRef(root.ID) {
		t.Fatal("IsLatestRef misclassifies")
	}
}

func TestRegistryAppendImmutable(t *testing.T) {
	r := NewRegistry()
	root, _, err := r.Register(uncertain.PaperExample(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !root.Immutable {
		t.Fatal("root not marked immutable")
	}
	if _, _, err := r.Append(root.ID, extraBatch()); err == nil {
		t.Fatal("append to immutable lineage must fail")
	} else if !strings.Contains(err.Error(), "immutable") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestVersionedHTTPFlow drives the full live-data sequence over the wire:
// register → watched @latest job → append → second watched job with a
// populated diff → pinned re-submission served from the per-version cache.
func TestVersionedHTTPFlow(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})

	root := uploadDB(t, ts.URL, uncertain.PaperExample())
	if root.Version != 1 || root.LatestVersion != 1 || root.Lineage != root.ID {
		t.Fatalf("fresh dataset version fields: %+v", root)
	}

	// First watched job: everything is Added.
	sub := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"dataset": root.ID + "@latest",
		"options": map[string]any{"min_sup": 2, "pfct": 0.8},
	})
	if sub.StatusCode != http.StatusAccepted {
		t.Fatalf("submit @latest: status %d", sub.StatusCode)
	}
	j1 := waitJob(t, ts.URL, decode[JobInfo](t, sub).ID)
	if j1.Status != StatusDone {
		t.Fatalf("watched job 1: %+v", j1)
	}
	if j1.Diff == nil || len(j1.Diff.Added) != len(j1.Result.Itemsets) || j1.Diff.Unchanged != 0 {
		t.Fatalf("first watched diff must be all-added: %+v", j1.Diff)
	}
	if j1.Dataset != root.ID {
		t.Fatalf("watched job resolved to %s, want %s", j1.Dataset, root.ID)
	}

	// Append one transaction; a new addressable version appears.
	resp, err := http.Post(ts.URL+"/v1/datasets/"+root.ID+"/append", "text/plain",
		bytes.NewReader([]byte("0 1 2 3 : 0.9\n")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("append: status %d", resp.StatusCode)
	}
	v2 := decode[DatasetInfo](t, resp)
	if v2.Version != 2 || v2.Lineage != root.ID || v2.ID == root.ID {
		t.Fatalf("appended version info: %+v", v2)
	}

	// The root's info now reports the newer latest version.
	gotRoot := decode[DatasetInfo](t, mustGet(t, ts.URL+"/v1/datasets/"+root.ID))
	if gotRoot.LatestVersion != 2 || gotRoot.Version != 1 {
		t.Fatalf("root info after append: %+v", gotRoot)
	}
	// @latest resolves to the new version over the wire too.
	gotLatest := decode[DatasetInfo](t, mustGet(t, ts.URL+"/v1/datasets/"+root.ID+"@latest"))
	if gotLatest.ID != v2.ID {
		t.Fatalf("GET @latest = %s, want %s", gotLatest.ID, v2.ID)
	}

	// Second watched job: incremental, diff vs round 1, byte-identical to a
	// from-scratch mine of version 2.
	sub = postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"dataset": root.ID + "@latest",
		"options": map[string]any{"min_sup": 2, "pfct": 0.8},
	})
	j2 := waitJob(t, ts.URL, decode[JobInfo](t, sub).ID)
	if j2.Status != StatusDone || j2.Dataset != v2.ID {
		t.Fatalf("watched job 2: %+v", j2)
	}
	if j2.Diff == nil || j2.Diff.Unchanged == len(j2.Result.Itemsets) {
		t.Fatalf("appending a transaction must change some itemset: %+v", j2.Diff)
	}
	v2db, err := uncertain.NewDB(append(uncertain.PaperExample().Transactions(), extraBatch()...))
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.Mine(v2db, core.Options{MinSup: 2, PFCT: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j2.Result.Itemsets, full.JSON().Itemsets) {
		t.Fatalf("watched result diverged from from-scratch mine of v2\n got: %+v\nwant: %+v",
			j2.Result.Itemsets, full.JSON().Itemsets)
	}

	// Pinned submissions hit the per-version cache entries the watched mines
	// populated — both versions, no recompute.
	for _, pin := range []string{root.ID, v2.ID} {
		sub := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
			"dataset": pin,
			"options": map[string]any{"min_sup": 2, "pfct": 0.8},
		})
		if sub.StatusCode != http.StatusOK {
			t.Fatalf("pinned %s: status %d, want 200 cache hit", pin, sub.StatusCode)
		}
		info := decode[JobInfo](t, sub)
		if !info.Cached {
			t.Fatalf("pinned %s not served from cache: %+v", pin, info)
		}
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return resp
}

// TestAppendHTTPErrors pins the structured error surface of the append
// endpoint: 404 unknown lineage, 409 immutable, 400 unknown JSON field with
// the offending field named, 400 bad payload.
func TestAppendHTTPErrors(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})

	resp, err := http.Post(ts.URL+"/v1/datasets/deadbeef00000000/append", "text/plain",
		bytes.NewReader([]byte("0 1 : 0.5\n")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("append to unknown dataset: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Immutable lineage: 409.
	var buf bytes.Buffer
	if err := uncertain.Write(&buf, uncertain.PaperExample()); err != nil {
		t.Fatal(err)
	}
	reg, err := http.Post(ts.URL+"/v1/datasets?immutable=true", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	frozen := decode[DatasetInfo](t, reg)
	if !frozen.Immutable {
		t.Fatalf("registered dataset not immutable: %+v", frozen)
	}
	resp, err = http.Post(ts.URL+"/v1/datasets/"+frozen.ID+"/append", "text/plain",
		bytes.NewReader([]byte("0 1 : 0.5\n")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("append to immutable dataset: status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown field in the JSON form is a structured 400 naming the field.
	resp = postJSON(t, ts.URL+"/v1/datasets/"+frozen.ID+"/append", map[string]any{"pathh": "/x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown append field: status %d, want 400", resp.StatusCode)
	}
	if e := decode[errorResponse](t, resp); e.Field != "pathh" {
		t.Fatalf("unknown-field response must name the field: %+v", e)
	}

	// Malformed transaction text is a 400.
	resp, err = http.Post(ts.URL+"/v1/datasets/"+frozen.ID+"/append", "text/plain",
		bytes.NewReader([]byte("not a transaction\n")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed append body: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestWatchedJobRejectsBFS pins eager validation: @latest jobs mine
// incrementally, which forces the serial DFS path.
func TestWatchedJobRejectsBFS(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	root := uploadDB(t, ts.URL, uncertain.PaperExample())
	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"dataset": root.ID + "@latest",
		"options": map[string]any{"min_sup": 2, "pfct": 0.8, "search": "BFS"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("BFS @latest job: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}
