package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

// miner carries the run state shared by the DFS and BFS frameworks.
type miner struct {
	opts     Options
	db       *uncertain.DB
	probs    []float64 // tuple existence probabilities by tid
	allItems itemset.Itemset
	itemTids map[itemset.Item]*bitset.Bitset
	cands    []candidate // probabilistic frequent single-item candidates
	rng      *rand.Rand
	stats    Stats
	results  []ResultItem
	ctx      context.Context

	// Reusable scratch, one owner per miner (parallel sub-miners get their
	// own): depthBufs[d] holds the child tidset being probed at recursion
	// depth d, and probsBuf backs probsOf. Both are safe because tidsets
	// are never mutated once built and every probsOf result is consumed
	// before the next call.
	depthBufs []*bitset.Bitset
	probsBuf  []float64
	freeBufs  []*bitset.Bitset
}

// getBuf returns a tidset-sized scratch bitset from the miner's freelist.
func (m *miner) getBuf() *bitset.Bitset {
	if n := len(m.freeBufs); n > 0 {
		b := m.freeBufs[n-1]
		m.freeBufs = m.freeBufs[:n-1]
		return b
	}
	return bitset.New(m.db.N())
}

// putBuf returns scratch bitsets to the freelist.
func (m *miner) putBuf(bufs ...*bitset.Bitset) {
	m.freeBufs = append(m.freeBufs, bufs...)
}

// childBuf returns the scratch tidset for recursion depth d.
func (m *miner) childBuf(d int) *bitset.Bitset {
	for len(m.depthBufs) <= d {
		m.depthBufs = append(m.depthBufs, bitset.New(m.db.N()))
	}
	return m.depthBufs[d]
}

// candidate is a single item that survived the candidate phase, with its
// tidset, count and exact frequent probability.
type candidate struct {
	item itemset.Item
	tids *bitset.Bitset
	cnt  int
	prF  float64
}

// Mine runs MPFCI (or the configured variant) over db and returns every
// probabilistic frequent closed itemset, sorted lexicographically.
func Mine(db *uncertain.DB, opts Options) (*Result, error) {
	return MineContext(context.Background(), db, opts)
}

// MineContext is Mine with cancellation: the run aborts with ctx.Err() at
// the next enumeration-tree node once ctx is done. Long mining runs at low
// support thresholds can take minutes; this is the production off-switch.
func MineContext(ctx context.Context, db *uncertain.DB, opts Options) (*Result, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	idx := db.Index()
	m := &miner{
		opts:     opts,
		db:       db,
		probs:    db.Probs(),
		allItems: idx.Items,
		itemTids: idx.Tidsets,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		ctx:      ctx,
	}
	m.buildCandidates()

	switch opts.Search {
	case BFS:
		err = m.mineBFS()
	default:
		err = m.mineDFS()
	}
	if err != nil {
		return nil, err
	}
	sort.Slice(m.results, func(i, j int) bool {
		return itemset.Compare(m.results[i].Items, m.results[j].Items) < 0
	})
	return &Result{Itemsets: m.results, Stats: m.stats, Options: opts}, nil
}

// buildCandidates is the first phase of Fig. 1: construct the single-item
// candidate set with Chernoff-Hoeffding pruning (Lemma 4.1) and the exact
// frequent-probability test. Items whose frequent probability cannot exceed
// pfct cannot occur in any probabilistic frequent closed itemset because
// Pr_F is anti-monotone and Pr_FC(X) ≤ Pr_F(X).
func (m *miner) buildCandidates() {
	for _, e := range m.allItems {
		tids := m.itemTids[e]
		cnt := tids.Count()
		if cnt < m.opts.MinSup {
			continue
		}
		probs := m.probsOf(tids)
		if !m.opts.DisableCH {
			if poibin.TailUpperBound(probs, m.opts.MinSup) <= m.opts.PFCT {
				m.stats.CHPruned++
				continue
			}
		}
		m.stats.TailEvaluations++
		prF := poibin.Tail(probs, m.opts.MinSup)
		if prF <= m.opts.PFCT {
			m.stats.FreqPruned++
			continue
		}
		m.cands = append(m.cands, candidate{item: e, tids: tids, cnt: cnt, prF: prF})
	}
	m.stats.CandidateItems = len(m.cands)
}

// trace logs one enumeration event when tracing is enabled.
func (m *miner) trace(format string, args ...interface{}) {
	if m.opts.Trace != nil {
		fmt.Fprintf(m.opts.Trace, format+"\n", args...)
	}
}

// mineDFS drives the ProbFC recursion of Fig. 3 from the root.
func (m *miner) mineDFS() error {
	if m.opts.Parallelism > 1 && m.opts.Trace == nil {
		return m.mineDFSParallel()
	}
	for pos := 0; pos < len(m.cands); pos++ {
		c := m.cands[pos]
		if err := m.probFC(itemset.Itemset{c.item}, c.tids.Clone(), c.cnt, c.prF, pos+1); err != nil {
			return err
		}
	}
	return nil
}

// mineDFSParallel distributes the first-level subtrees over a worker pool.
// Each worker owns an independent sub-miner (own stats, results and RNG);
// the RNG seed depends only on Options.Seed and the subtree position, so
// estimates do not depend on goroutine scheduling.
func (m *miner) mineDFSParallel() error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, m.opts.Parallelism)
	for pos := range m.cands {
		wg.Add(1)
		sem <- struct{}{}
		go func(pos int) {
			defer wg.Done()
			defer func() { <-sem }()
			c := m.cands[pos]
			sub := &miner{
				opts:     m.opts,
				db:       m.db,
				probs:    m.probs,
				allItems: m.allItems,
				itemTids: m.itemTids,
				cands:    m.cands,
				rng:      rand.New(rand.NewSource(m.opts.Seed + int64(pos)*1000003)),
				ctx:      m.ctx,
			}
			err := sub.probFC(itemset.Itemset{c.item}, c.tids.Clone(), c.cnt, c.prF, pos+1)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			m.results = append(m.results, sub.results...)
			m.stats.add(sub.stats)
		}(pos)
	}
	wg.Wait()
	return firstErr
}

// probFC is one node of the depth-first enumeration: X with tidset tids,
// count = |tids|, exact frequent probability prF; extensions come from
// candidate positions ≥ startPos.
func (m *miner) probFC(x itemset.Itemset, tids *bitset.Bitset, count int, prF float64, startPos int) error {
	if m.ctx != nil {
		if err := m.ctx.Err(); err != nil {
			return err
		}
	}
	m.stats.NodesVisited++
	m.trace("visit %v (count=%d, PrF=%.4f)", x, count, prF)

	// Superset pruning (Lemma 4.2): if some item e smaller than the last
	// item of X (so X is not a prefix of X+e) and not in X satisfies
	// count(X+e) = count(X), then X and every superset with X as prefix
	// have zero frequent closed probability — abandon the subtree.
	if !m.opts.DisableSuperset {
		last := x.Last()
		for _, c := range m.cands {
			if c.item >= last {
				break
			}
			if x.Contains(c.item) {
				continue
			}
			if bitset.AndCount(tids, c.tids) == count {
				m.stats.SupersetPruned++
				m.trace("  superset-prune %v: count(%v+%v) = count — subtree dead (Lemma 4.2)", x, x, itemset.Itemset{c.item})
				return nil
			}
		}
	}

	selfDead := false
	for pos := startPos; pos < len(m.cands); pos++ {
		c := m.cands[pos]
		// Depth-indexed scratch: the buffer is reused for the next sibling
		// only after the recursive call into this child has returned, and
		// no callee ever mutates its tids argument.
		child := m.childBuf(len(x))
		cc := bitset.AndInto(child, tids, c.tids)
		if cc < m.opts.MinSup {
			continue
		}
		childProbs := m.probsOf(child)
		// Chernoff-Hoeffding pruning of the extension (Lemma 4.1).
		if !m.opts.DisableCH {
			if poibin.TailUpperBound(childProbs, m.opts.MinSup) <= m.opts.PFCT {
				m.stats.CHPruned++
				m.trace("  ch-prune %v (Lemma 4.1 bound ≤ pfct)", x.Extend(c.item))
				continue
			}
		}
		m.stats.TailEvaluations++
		childPrF := poibin.Tail(childProbs, m.opts.MinSup)
		if childPrF <= m.opts.PFCT {
			// Pr_F is anti-monotone, so the whole X+e subtree is out.
			m.stats.FreqPruned++
			m.trace("  freq-prune %v (PrF=%.4f ≤ pfct)", x.Extend(c.item), childPrF)
			continue
		}
		if !m.opts.DisableSubset && cc == count {
			m.trace("  subset-absorb %v into %v: later siblings skipped (Lemma 4.3)", x, x.Extend(c.item))
			// Subset pruning (Lemma 4.3): X+e always co-occurs with X, so
			// X is never closed, and every later sibling X+f (f > e) and
			// its descendants avoid e and are therefore never closed
			// either. Only the X+e subtree can contain closed itemsets.
			selfDead = true
			m.stats.SubsetPruned++
			if err := m.probFC(x.Extend(c.item), child, cc, childPrF, pos+1); err != nil {
				return err
			}
			break
		}
		if err := m.probFC(x.Extend(c.item), child, cc, childPrF, pos+1); err != nil {
			return err
		}
	}

	if selfDead {
		return nil
	}
	ev, err := m.evaluate(x, tids, count, prF)
	if err != nil {
		return err
	}
	m.trace("  evaluate %v: PrFC≈%.4f in [%.4f, %.4f] via %v → accepted=%v",
		x, ev.prob, ev.lower, ev.upper, ev.method, ev.accepted)
	if ev.accepted {
		m.results = append(m.results, ResultItem{
			Items:    x.Clone(),
			Prob:     ev.prob,
			Lower:    ev.lower,
			Upper:    ev.upper,
			FreqProb: prF,
			Method:   ev.method,
		})
	}
	return nil
}
