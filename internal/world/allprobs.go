package world

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// MaxItems bounds the itemset universe of the all-itemsets oracles; beyond
// this the 2^|I| itemset loop is hopeless.
const MaxItems = 20

// ProbTable holds the exact frequent, closed, and frequent closed
// probability of every non-empty itemset over db's item universe, computed
// by a single enumeration of the 2ⁿ possible worlds. It is the bulk form of
// FreqProb/ClosedProb/FreqClosedProb: the differential harness
// (internal/crosscheck) needs all three maps for every itemset of a random
// database, and calling the per-itemset functions re-enumerates the worlds
// 3·2^|I| times where one pass suffices.
type ProbTable struct {
	// Items is the sorted item universe; itemset masks index into it.
	Items itemset.Itemset
	// MinSup is the support threshold the frequent probabilities use.
	MinSup int

	freq       []float64 // Pr_F by item-mask (index 0, the empty set, unused)
	closed     []float64 // Pr_C by item-mask
	freqClosed []float64 // Pr_FC by item-mask
}

// AllProbs computes the exact Pr_F, Pr_C and Pr_FC of every non-empty
// itemset over db's item universe in one pass over the 2ⁿ possible worlds.
// db must fit both MaxTransactions and MaxItems.
func AllProbs(db *uncertain.DB, minSup int) (*ProbTable, error) {
	items := db.Items()
	if len(items) > MaxItems {
		return nil, fmt.Errorf("world: %d items exceed enumeration limit %d", len(items), MaxItems)
	}
	if minSup < 1 {
		return nil, fmt.Errorf("world: minSup must be ≥ 1, got %d", minSup)
	}
	nMasks := 1 << uint(len(items))
	t := &ProbTable{
		Items:      items,
		MinSup:     minSup,
		freq:       make([]float64, nMasks),
		closed:     make([]float64, nMasks),
		freqClosed: make([]float64, nMasks),
	}

	// contains[mask] is the tid-bitmask of transactions whose itemset
	// contains the itemset encoded by mask, so sup_w(mask) is one popcount.
	pos := make(map[itemset.Item]int, len(items))
	for i, it := range items {
		pos[it] = i
	}
	transMask := make([]uint32, db.N())
	for tid := 0; tid < db.N(); tid++ {
		var m uint32
		for _, it := range db.Transaction(tid).Items {
			m |= 1 << uint(pos[it])
		}
		transMask[tid] = m
	}
	contains := make([]uint32, nMasks)
	for mask := 0; mask < nMasks; mask++ {
		var tm uint32
		for tid, im := range transMask {
			if uint32(mask)&^im == 0 {
				tm |= 1 << uint(tid)
			}
		}
		contains[mask] = tm
	}

	err := Enumerate(db, func(w World) {
		for mask := 1; mask < nMasks; mask++ {
			sup := bits.OnesCount32(contains[mask] & w.Mask)
			if sup == 0 {
				continue
			}
			frequent := sup >= minSup
			if frequent {
				t.freq[mask] += w.Prob
			}
			// Single-item extensions suffice for the closedness test, as in
			// IsClosedIn.
			isClosed := true
			for e := 0; e < len(items); e++ {
				ext := mask | 1<<uint(e)
				if ext == mask {
					continue
				}
				if bits.OnesCount32(contains[ext]&w.Mask) == sup {
					isClosed = false
					break
				}
			}
			if isClosed {
				t.closed[mask] += w.Prob
				if frequent {
					t.freqClosed[mask] += w.Prob
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// maskOf encodes x as an index into the table; ok is false when x contains
// an item outside the universe (all its probabilities are then zero).
func (t *ProbTable) maskOf(x itemset.Itemset) (int, bool) {
	mask := 0
	for _, it := range x {
		i := sort.Search(len(t.Items), func(i int) bool { return t.Items[i] >= it })
		if i >= len(t.Items) || t.Items[i] != it {
			return 0, false
		}
		mask |= 1 << uint(i)
	}
	return mask, true
}

// Freq returns the exact frequent probability Pr_F(x).
func (t *ProbTable) Freq(x itemset.Itemset) float64 {
	if mask, ok := t.maskOf(x); ok {
		return t.freq[mask]
	}
	return 0
}

// Closed returns the exact closed probability Pr_C(x).
func (t *ProbTable) Closed(x itemset.Itemset) float64 {
	if mask, ok := t.maskOf(x); ok {
		return t.closed[mask]
	}
	return 0
}

// FreqClosed returns the exact frequent closed probability Pr_FC(x).
func (t *ProbTable) FreqClosed(x itemset.Itemset) float64 {
	if mask, ok := t.maskOf(x); ok {
		return t.freqClosed[mask]
	}
	return 0
}

// ForEach calls fn for every non-empty itemset of the universe with its
// three exact probabilities, in ascending mask order.
func (t *ProbTable) ForEach(fn func(x itemset.Itemset, prF, prC, prFC float64)) {
	for mask := 1; mask < len(t.freq); mask++ {
		var x itemset.Itemset
		for i, it := range t.Items {
			if mask&(1<<uint(i)) != 0 {
				x = append(x, it)
			}
		}
		fn(x, t.freq[mask], t.closed[mask], t.freqClosed[mask])
	}
}

// FrequentClosed returns every itemset with Pr_FC > pfct, sorted
// lexicographically — exactly MineExact's result set, served from the
// precomputed table.
func (t *ProbTable) FrequentClosed(pfct float64) []Result {
	var out []Result
	t.ForEach(func(x itemset.Itemset, _, _, prFC float64) {
		if prFC > pfct {
			out = append(out, Result{Items: x.Clone(), Prob: prFC})
		}
	})
	sort.Slice(out, func(i, j int) bool { return itemset.Compare(out[i].Items, out[j].Items) < 0 })
	return out
}
