package crosscheck

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"reflect"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/dnf"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/shard"
	"github.com/probdata/pfcim/internal/stream"
	"github.com/probdata/pfcim/internal/sweep"
	"github.com/probdata/pfcim/internal/uncertain"
	"github.com/probdata/pfcim/internal/world"
)

// tieEps is the borderline band around pfct: an itemset whose exact Pr_FC
// lies within tieEps of the threshold may flip either way under float
// rounding (the oracle and the miner accumulate the same quantities in
// different orders), so differential checks exclude it. Everything farther
// from the threshold must match exactly.
const tieEps = 1e-9

// Default case sizes. Differential cases must fit the 2ⁿ world oracle;
// invariant cases go well beyond it to exercise the paths (sampling, deep
// enumeration, parallel splitting) that tiny databases never reach.
const (
	DiffMaxTrans      = 8
	DiffMaxItems      = 6
	InvariantMaxTrans = 36
	InvariantMaxItems = 10
	// Representation cases for the sparsewide shape go to sizes where the
	// auto tidset policy actually mixes dense and compressed sets (n ≥
	// 1024) and frequent-item tails exceed the convolution leaf (512).
	RepMaxTrans = 2048
	RepMaxItems = 18
)

// forcedTidsets lets CI force the tidset representation for every case the
// harness builds (CROSSCHECK_TIDSETS=dense|compressed). Tidsets is a pure
// execution knob, so a forced run must reproduce the unforced suite
// verbatim — any divergence fails the normal assertions.
var forcedTidsets = func() core.TidsetMode {
	switch os.Getenv("CROSSCHECK_TIDSETS") {
	case "dense":
		return core.TidsetsDense
	case "compressed":
		return core.TidsetsCompressed
	}
	return core.TidsetsAuto
}()

// diffItemLimit bounds the item universe a differential case may have: the
// exact inclusion–exclusion forced by Differential is 2^clauses and the
// clause count is bounded by the universe size.
const diffItemLimit = 12

// Case is one reproducible cross-check: a database shape and a seed. The
// seed drives both the generated database and the derived thresholds, so a
// failure report of (shape, seed) reproduces the whole scenario.
type Case struct {
	Shape Shape
	Seed  int64
	// MaxTrans and MaxItems bound the generated database; zero means the
	// differential defaults.
	MaxTrans, MaxItems int
}

func (c Case) String() string {
	return fmt.Sprintf("shape=%s seed=%d", c.Shape, c.Seed)
}

func (c Case) withDefaults() Case {
	if c.MaxTrans == 0 {
		c.MaxTrans = DiffMaxTrans
	}
	if c.MaxItems == 0 {
		c.MaxItems = DiffMaxItems
	}
	return c
}

// Build generates the case's database and mining options. The pfct palette
// deliberately includes near-0 and near-1 thresholds: certain tuples give
// step-function tails, and a bound that has been loosened by as little as
// 1e-3 mis-prunes exactly there.
func (c Case) Build() (*uncertain.DB, core.Options) {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	db := GenDB(c.Shape, rng, c.MaxTrans, c.MaxItems)
	minSup := 1 + rng.Intn(3)
	if minSup > db.N() {
		minSup = db.N()
	}
	var pfct float64
	switch rng.Intn(10) {
	case 0:
		pfct = 0.0005
	case 1:
		pfct = 0.9995
	case 2:
		pfct = 0.02 + rng.Float64()*0.96
	default:
		pfct = []float64{0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95}[rng.Intn(7)]
	}
	return db, core.Options{MinSup: minSup, PFCT: pfct, Seed: c.Seed, Tidsets: forcedTidsets}
}

// variants are the miner configurations the differential suite rotates
// through; every one must match the oracle on every case.
var variants = []struct {
	Name   string
	Modify func(*core.Options)
}{
	{"mpfci", func(*core.Options) {}},
	{"nobound", func(o *core.Options) { o.DisableBounds = true }},
	{"noch", func(o *core.Options) { o.DisableCH = true }},
	{"nosuper", func(o *core.Options) { o.DisableSuperset = true }},
	{"nosub", func(o *core.Options) { o.DisableSubset = true }},
	{"bfs", func(o *core.Options) { o.Search = core.BFS }},
	{"alloff", func(o *core.Options) {
		o.DisableCH = true
		o.DisableSuperset = true
		o.DisableSubset = true
		o.DisableBounds = true
	}},
	// Sharded tails regroup IEEE sums by a few ulps — far inside the tieEps
	// band — so the sharded paths must still match the exact oracle on every
	// differential case.
	{"shards2", func(o *core.Options) { o.Shards = 2 }},
	{"shards4", func(o *core.Options) { o.Shards = 4 }},
}

// RunDifferential builds the case and cross-checks the full miner output
// against exact possible-world enumeration: the plain MPFCI configuration,
// its bound-free twin (isolating Lemma 4.4), and one further seed-chosen
// variant. Any error embeds the case so it reproduces from (shape, seed).
func RunDifferential(c Case) error {
	db, opts := c.Build()
	tab, err := world.AllProbs(db, opts.MinSup)
	if err != nil {
		return fmt.Errorf("crosscheck: %v: oracle: %w", c, err)
	}
	extra := 2 + int(uint64(c.Seed)%uint64(len(variants)-2))
	for _, vi := range []int{0, 1, extra} {
		v := variants[vi]
		o := opts
		v.Modify(&o)
		if err := differential(db, o, tab); err != nil {
			return fmt.Errorf("crosscheck: %v variant=%s: %w", c, v.Name, err)
		}
	}
	return nil
}

// Differential mines db at opts with the checking phase forced exact and
// asserts the result set equals the oracle's {X : Pr_FC(X) > pfct}, with
// exact probabilities, exact Pr_F, and a Lemma 4.4 sandwich that contains
// the true value. Only itemsets whose exact Pr_FC is within tieEps of the
// threshold are allowed to differ.
func Differential(db *uncertain.DB, opts core.Options) error {
	tab, err := world.AllProbs(db, opts.MinSup)
	if err != nil {
		return fmt.Errorf("crosscheck: oracle: %w", err)
	}
	return differential(db, opts, tab)
}

func differential(db *uncertain.DB, opts core.Options, tab *world.ProbTable) error {
	if db.N() > world.MaxTransactions {
		return fmt.Errorf("crosscheck: %d transactions exceed the differential oracle limit %d", db.N(), world.MaxTransactions)
	}
	if n := len(db.Items()); n > diffItemLimit {
		return fmt.Errorf("crosscheck: %d items exceed the differential limit %d", n, diffItemLimit)
	}
	// Force exact inclusion–exclusion: sampled estimates carry (ε, δ)
	// guarantees, not equality, and every clause system here is small.
	opts.MaxExactClauses = dnf.ExactUnionLimit
	res, err := core.Mine(db, opts)
	if err != nil {
		return fmt.Errorf("crosscheck: mine: %w", err)
	}
	got := make(map[string]core.ResultItem, len(res.Itemsets))
	for _, ri := range res.Itemsets {
		got[ri.Items.Key()] = ri
	}
	var fail error
	tab.ForEach(func(x itemset.Itemset, prF, _, prFC float64) {
		if fail != nil {
			return
		}
		ri, mined := got[x.Key()]
		switch {
		case prFC > opts.PFCT+tieEps && !mined:
			fail = fmt.Errorf("missing itemset %v: exact Pr_FC=%.12g > pfct=%g (minSup=%d)", x, prFC, opts.PFCT, opts.MinSup)
		case prFC <= opts.PFCT-tieEps && mined:
			fail = fmt.Errorf("spurious itemset %v: exact Pr_FC=%.12g ≤ pfct=%g (minSup=%d, method=%v)", x, prFC, opts.PFCT, opts.MinSup, ri.Method)
		}
		if fail != nil || !mined {
			return
		}
		if ri.Lower > prFC+tieEps || ri.Upper < prFC-tieEps {
			fail = fmt.Errorf("itemset %v: exact Pr_FC=%.12g outside reported sandwich [%.12g, %.12g] (method=%v)",
				x, prFC, ri.Lower, ri.Upper, ri.Method)
			return
		}
		if d := ri.FreqProb - prF; d > tieEps || d < -tieEps {
			fail = fmt.Errorf("itemset %v: reported Pr_F=%.12g, exact %.12g", x, ri.FreqProb, prF)
			return
		}
		if ri.Method == core.MethodExact || ri.Method == core.MethodNoClauses {
			if d := ri.Prob - prFC; d > tieEps || d < -tieEps {
				fail = fmt.Errorf("itemset %v: reported Pr_FC=%.12g, exact %.12g (method=%v)", x, ri.Prob, prFC, ri.Method)
				return
			}
		}
	})
	return fail
}

// RunInvariants builds the case at invariant sizes (beyond the oracle) and
// checks every metamorphic property.
func RunInvariants(c Case) error {
	if c.MaxTrans == 0 {
		c.MaxTrans = InvariantMaxTrans
	}
	if c.MaxItems == 0 {
		c.MaxItems = InvariantMaxItems
	}
	db, opts := c.Build()
	if err := Invariants(db, opts); err != nil {
		return fmt.Errorf("crosscheck: %v: %w", c, err)
	}
	return nil
}

// Invariants checks the oracle-free metamorphic properties of a mining run
// at opts: result well-formedness and the Lemma 4.4 sandwich, threshold
// monotonicity in pfct and MinSup, byte-identical determinism across every
// execution knob (parallelism, split depth, tail memo, tracer), DFS/BFS
// agreement, and sweep-derived vs independently-mined byte-identity. These
// hold on databases of any size.
func Invariants(db *uncertain.DB, opts core.Options) error {
	base, err := core.Mine(db, opts)
	if err != nil {
		return fmt.Errorf("mine: %w", err)
	}
	if err := wellFormed(base); err != nil {
		return err
	}

	// Monotonicity in pfct: raising the threshold can only shrink the
	// result set. Deterministic per-node seeding makes this exact even for
	// sampled resolutions — the union estimate of an itemset is a function
	// of (Seed, itemset), never of the threshold.
	hi := opts
	hi.PFCT = opts.PFCT + (1-opts.PFCT)*0.4
	if hi.PFCT < 1 && hi.PFCT > opts.PFCT {
		resHi, err := core.Mine(db, hi)
		if err != nil {
			return fmt.Errorf("mine at pfct=%g: %w", hi.PFCT, err)
		}
		baseKeys := keySet(base.Itemsets)
		for _, ri := range resHi.Itemsets {
			if !baseKeys[ri.Items.Key()] {
				return fmt.Errorf("pfct monotonicity violated: %v accepted at pfct=%g but not at pfct=%g",
					ri.Items, hi.PFCT, opts.PFCT)
			}
		}
	}

	// Monotonicity in MinSup: Pr_FC is pointwise non-increasing in the
	// support threshold, so raising it shrinks the accepted set. Checked
	// with the union forced exact (sampled estimates at different MinSup
	// are different random variables), borderline band excluded.
	ex := opts
	ex.MaxExactClauses = dnf.ExactUnionLimit
	if ex.MinSup < db.N() {
		exBase, err := core.Mine(db, ex)
		if err != nil {
			return fmt.Errorf("mine exact: %w", err)
		}
		ms := ex
		ms.MinSup++
		resMs, err := core.Mine(db, ms)
		if err != nil {
			return fmt.Errorf("mine at minSup=%d: %w", ms.MinSup, err)
		}
		baseKeys := keySet(exBase.Itemsets)
		for _, ri := range resMs.Itemsets {
			if !baseKeys[ri.Items.Key()] && ri.Prob > opts.PFCT+tieEps && ri.Method != core.MethodBoundAccepted {
				return fmt.Errorf("minSup monotonicity violated: %v (Pr_FC=%.12g) accepted at minSup=%d but not at minSup=%d",
					ri.Items, ri.Prob, ms.MinSup, ex.MinSup)
			}
		}
	}

	// Determinism: results and scheduling-independent stats are
	// byte-identical across every execution knob.
	for _, k := range []struct {
		name   string
		modify func(*core.Options)
	}{
		{"parallel4", func(o *core.Options) { o.Parallelism = 4 }},
		{"parallel3/split1/nomemo", func(o *core.Options) { o.Parallelism = 3; o.SplitDepth = 1; o.TailMemoEntries = -1 }},
		{"tracer", func(o *core.Options) { o.Tracer = obs.New() }},
	} {
		alt := opts
		k.modify(&alt)
		resAlt, err := core.Mine(db, alt)
		if err != nil {
			return fmt.Errorf("mine %s: %w", k.name, err)
		}
		if !sameResults(resAlt.Itemsets, base.Itemsets) {
			return fmt.Errorf("determinism violated: %s run differs from serial run (%d vs %d itemsets)",
				k.name, len(resAlt.Itemsets), len(base.Itemsets))
		}
		if a, b := schedIndependent(resAlt.Stats), schedIndependent(base.Stats); a != b {
			return fmt.Errorf("determinism violated: %s stats %+v differ from serial %+v", k.name, a, b)
		}
	}

	// DFS/BFS agreement on the accepted set (exact-forced: the frameworks
	// share the checking cascade but visit nodes in different orders, so
	// only the verdicts are comparable, and only when they are exact).
	if ex.MinSup <= db.N() {
		exBase, err := core.Mine(db, ex)
		if err != nil {
			return fmt.Errorf("mine exact: %w", err)
		}
		bfs := ex
		bfs.Search = core.BFS
		resBFS, err := core.Mine(db, bfs)
		if err != nil {
			return fmt.Errorf("mine bfs: %w", err)
		}
		if !sameKeys(exBase.Itemsets, resBFS.Itemsets) {
			return fmt.Errorf("DFS/BFS disagree: DFS %d itemsets, BFS %d", len(exBase.Itemsets), len(resBFS.Itemsets))
		}
	}

	// Sweep-derived points are byte-identical to independent mining — the
	// bound-replay shortcut must be invisible.
	if hi.PFCT < 1 && hi.PFCT > opts.PFCT {
		points := []sweep.Point{{PFCT: hi.PFCT}, {PFCT: opts.PFCT}}
		sres, err := sweep.Mine(context.Background(), db, points, opts)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		for i, pr := range sres.Points {
			ind, err := core.Mine(db, pr.Point.Apply(opts))
			if err != nil {
				return fmt.Errorf("sweep point %d independent mine: %w", i, err)
			}
			if !sameResults(pr.Itemsets, ind.Itemsets) {
				return fmt.Errorf("sweep point %d (pfct=%g, derived=%t) differs from independent mine (%d vs %d itemsets)",
					i, pr.Point.PFCT, pr.Derived, len(pr.Itemsets), len(ind.Itemsets))
			}
		}
	}
	return nil
}

// RunRepresentation builds the case at representation sizes and checks
// RepresentationEquivalence. The sparsewide shape goes to RepMaxTrans so
// the compressed containers and the divide-and-conquer tail kernel are
// genuinely exercised; the other shapes run at invariant sizes.
func RunRepresentation(c Case) error {
	if c.MaxTrans == 0 {
		if c.Shape == ShapeSparseWide {
			c.MaxTrans = RepMaxTrans
		} else {
			c.MaxTrans = InvariantMaxTrans
		}
	}
	if c.MaxItems == 0 {
		if c.Shape == ShapeSparseWide {
			c.MaxItems = RepMaxItems
		} else {
			c.MaxItems = InvariantMaxItems
		}
	}
	db, opts := c.Build()
	if err := RepresentationEquivalence(db, opts); err != nil {
		return fmt.Errorf("crosscheck: %v: %w", c, err)
	}
	return nil
}

// kernelEps tolerates the accumulated-rounding disagreement between the
// dynamic-programming and divide-and-conquer tail kernels: both sum the
// same products in different associations, so per-itemset probabilities
// must agree to far better than this, and only itemsets within the band of
// the threshold may appear under one kernel and not the other.
const kernelEps = 1e-6

// RepresentationEquivalence asserts the execution-representation contract
// of DESIGN §13: forcing dense or compressed tidsets — at any parallelism,
// in any mixture — yields byte-identical results and scheduling-independent
// stats; the forced DP kernel reproduces the auto kernel bitwise below the
// crossover; and the forced convolution kernel agrees to kernelEps.
func RepresentationEquivalence(db *uncertain.DB, opts core.Options) error {
	den := opts
	den.Tidsets = core.TidsetsDense
	base, err := core.Mine(db, den)
	if err != nil {
		return fmt.Errorf("mine dense: %w", err)
	}
	for _, k := range []struct {
		name   string
		modify func(*core.Options)
	}{
		{"compressed", func(o *core.Options) { o.Tidsets = core.TidsetsCompressed }},
		{"compressed/parallel4", func(o *core.Options) { o.Tidsets = core.TidsetsCompressed; o.Parallelism = 4 }},
		{"dense/parallel4", func(o *core.Options) { o.Tidsets = core.TidsetsDense; o.Parallelism = 4 }},
		{"auto", func(o *core.Options) { o.Tidsets = core.TidsetsAuto }},
		{"dp-kernel", func(o *core.Options) { o.Tidsets = core.TidsetsAuto; o.TailKernel = poibin.KernelDP }},
	} {
		alt := opts
		k.modify(&alt)
		res, err := core.Mine(db, alt)
		if err != nil {
			return fmt.Errorf("mine %s: %w", k.name, err)
		}
		if !sameResults(res.Itemsets, base.Itemsets) {
			return fmt.Errorf("representation equivalence violated: %s run differs from dense serial (%d vs %d itemsets)",
				k.name, len(res.Itemsets), len(base.Itemsets))
		}
		if a, b := schedIndependent(res.Stats), schedIndependent(base.Stats); a != b {
			return fmt.Errorf("representation equivalence violated: %s stats %+v differ from dense %+v", k.name, a, b)
		}
	}
	conv := opts
	conv.TailKernel = poibin.KernelConv
	resConv, err := core.Mine(db, conv)
	if err != nil {
		return fmt.Errorf("mine conv-kernel: %w", err)
	}
	if err := kernelConsistent(base.Itemsets, resConv.Itemsets, opts.PFCT); err != nil {
		return fmt.Errorf("dp vs conv kernel: %w", err)
	}
	return nil
}

// kernelConsistent compares the result sets mined under the two tail
// kernels: shared itemsets must agree on Pr_FC and Pr_F within kernelEps,
// and an itemset accepted under only one kernel must sit within kernelEps
// of the threshold.
func kernelConsistent(a, b []core.ResultItem, pfct float64) error {
	am := make(map[string]core.ResultItem, len(a))
	for _, ri := range a {
		am[ri.Items.Key()] = ri
	}
	bm := make(map[string]core.ResultItem, len(b))
	for _, ri := range b {
		bm[ri.Items.Key()] = ri
	}
	for key, ri := range am {
		rj, ok := bm[key]
		if !ok {
			if ri.Prob > pfct+kernelEps {
				return fmt.Errorf("itemset %v accepted only under DP with Pr_FC=%.12g, pfct=%g", ri.Items, ri.Prob, pfct)
			}
			continue
		}
		if d := ri.Prob - rj.Prob; d > kernelEps || d < -kernelEps {
			return fmt.Errorf("itemset %v: Pr_FC %.12g (dp) vs %.12g (conv)", ri.Items, ri.Prob, rj.Prob)
		}
		if d := ri.FreqProb - rj.FreqProb; d > kernelEps || d < -kernelEps {
			return fmt.Errorf("itemset %v: Pr_F %.12g (dp) vs %.12g (conv)", ri.Items, ri.FreqProb, rj.FreqProb)
		}
	}
	for key, rj := range bm {
		if _, ok := am[key]; !ok && rj.Prob > pfct+kernelEps {
			return fmt.Errorf("itemset %v accepted only under conv with Pr_FC=%.12g, pfct=%g", rj.Items, rj.Prob, pfct)
		}
	}
	return nil
}

// wellFormed checks the per-result invariants every mining run must
// satisfy: lexicographic order without duplicates, probabilities in [0,1],
// the Lemma 4.4 sandwich Lower ≤ Prob ≤ Upper, Pr_FC ≤ Pr_F, and strict
// threshold acceptance.
func wellFormed(res *core.Result) error {
	for i, ri := range res.Itemsets {
		if i > 0 && itemset.Compare(res.Itemsets[i-1].Items, ri.Items) >= 0 {
			return fmt.Errorf("result not strictly lex-sorted at %d: %v then %v", i, res.Itemsets[i-1].Items, ri.Items)
		}
		if ri.Lower < 0 || ri.Upper > 1 || ri.Lower > ri.Prob || ri.Prob > ri.Upper {
			return fmt.Errorf("itemset %v: sandwich violated: Lower=%.12g Prob=%.12g Upper=%.12g (method=%v)",
				ri.Items, ri.Lower, ri.Prob, ri.Upper, ri.Method)
		}
		if ri.Prob > ri.FreqProb+tieEps {
			return fmt.Errorf("itemset %v: Pr_FC=%.12g exceeds Pr_F=%.12g", ri.Items, ri.Prob, ri.FreqProb)
		}
		if ri.Prob <= res.Options.PFCT {
			return fmt.Errorf("itemset %v: accepted with Pr_FC=%.12g ≤ pfct=%g", ri.Items, ri.Prob, res.Options.PFCT)
		}
	}
	return nil
}

// schedIndependent zeroes the scheduling-dependent Stats fields (and folds
// the memo hit/miss split into its invariant sum) so runs at different
// parallelism compare equal.
func schedIndependent(s core.Stats) core.Stats {
	s.TasksSpawned, s.TasksStolen = 0, 0
	s.TailEvaluations, s.TailMemoHits = s.TailEvaluations+s.TailMemoHits, 0
	return s
}

func keySet(items []core.ResultItem) map[string]bool {
	out := make(map[string]bool, len(items))
	for _, ri := range items {
		out[ri.Items.Key()] = true
	}
	return out
}

// sameResults is byte-identity over result slices, with the one concession
// that a nil and an empty slice are the same empty result.
func sameResults(a, b []core.ResultItem) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || reflect.DeepEqual(a, b)
}

func sameKeys(a, b []core.ResultItem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Items.Key() != b[i].Items.Key() {
			return false
		}
	}
	return true
}

// ShardEquivalence asserts the shard-composability contract of DESIGN §14:
// Shards = 1 reproduces the unsharded run byte-for-byte; for N ∈ {2, 4} the
// inline sharded path and an in-process shard.LocalKernel are byte-identical
// to each other (the distributed path is pinned to the same arithmetic by
// the core and service suites), every sharded result is well-formed, and the
// sharded results agree with the single-node run under the same comparator
// the DP-vs-convolution kernel ablation uses — sharding regroups the exact
// same IEEE sums a forced convolution tree does.
func ShardEquivalence(db *uncertain.DB, opts core.Options) error {
	base, err := core.Mine(db, opts)
	if err != nil {
		return fmt.Errorf("mine unsharded: %w", err)
	}
	one := opts
	one.Shards = 1
	resOne, err := core.Mine(db, one)
	if err != nil {
		return fmt.Errorf("mine shards=1: %w", err)
	}
	if !sameResults(resOne.Itemsets, base.Itemsets) {
		return fmt.Errorf("shard equivalence violated: shards=1 differs from unsharded (%d vs %d itemsets)",
			len(resOne.Itemsets), len(base.Itemsets))
	}
	if a, b := schedIndependent(resOne.Stats), schedIndependent(base.Stats); a != b {
		return fmt.Errorf("shard equivalence violated: shards=1 stats %+v differ from unsharded %+v", a, b)
	}
	for _, n := range []int{2, 4} {
		sh := opts
		sh.Shards = n
		inline, err := core.Mine(db, sh)
		if err != nil {
			return fmt.Errorf("mine shards=%d: %w", n, err)
		}
		if err := wellFormed(inline); err != nil {
			return fmt.Errorf("shards=%d: %w", n, err)
		}
		kern, err := shard.NewLocalKernel(db, n)
		if err != nil {
			return fmt.Errorf("shards=%d kernel: %w", n, err)
		}
		lk := sh
		lk.ShardKernel = kern
		viaKern, err := core.Mine(db, lk)
		if err != nil {
			return fmt.Errorf("mine shards=%d via kernel: %w", n, err)
		}
		if !sameResults(inline.Itemsets, viaKern.Itemsets) {
			return fmt.Errorf("shard equivalence violated: shards=%d kernel run differs from inline (%d vs %d itemsets)",
				n, len(viaKern.Itemsets), len(inline.Itemsets))
		}
		if a, b := schedIndependent(viaKern.Stats), schedIndependent(inline.Stats); a != b {
			return fmt.Errorf("shard equivalence violated: shards=%d kernel stats %+v differ from inline %+v", n, a, b)
		}
		if err := kernelConsistent(base.Itemsets, inline.Itemsets, opts.PFCT); err != nil {
			return fmt.Errorf("unsharded vs shards=%d: %w", n, err)
		}
	}
	return nil
}

// StreamEquivalence asserts the delta-engine contract of DESIGN §15: across
// a random push sequence through a bounded window (sized so evictions
// genuinely occur), every incremental mining round must be byte-identical —
// itemsets, probabilities, bounds, methods — to a from-scratch core.Mine of
// the window snapshot, and the per-round diff must account for every
// result. The push schedule is derived from opts.Seed, so (shape, seed)
// reproduces the whole sequence.
func StreamEquivalence(db *uncertain.DB, opts core.Options) error {
	opts.Search = core.DFS // incremental rounds force the serial DFS path
	trans := db.Transactions()
	size := len(trans) / 2
	if size < 2 {
		size = 2
	}
	w, err := stream.NewWindow(size)
	if err != nil {
		return fmt.Errorf("window: %w", err)
	}
	m, err := stream.NewMiner(w, opts)
	if err != nil {
		return fmt.Errorf("miner: %w", err)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var prev *core.Result
	for i := 0; i < len(trans); {
		for b := 1 + rng.Intn(3); b > 0 && i < len(trans); b-- {
			if err := m.Push(trans[i]); err != nil {
				return fmt.Errorf("push %d: %w", i, err)
			}
			i++
		}
		if w.Len() < opts.MinSup {
			continue // snapshot too small for this round's threshold
		}
		res, diff, err := m.MineContext(context.Background())
		if err != nil {
			return fmt.Errorf("incremental mine after %d pushes: %w", i, err)
		}
		snap, err := w.Snapshot()
		if err != nil {
			return fmt.Errorf("snapshot after %d pushes: %w", i, err)
		}
		full, err := core.Mine(snap, opts)
		if err != nil {
			return fmt.Errorf("from-scratch mine after %d pushes: %w", i, err)
		}
		if !reflect.DeepEqual(res.Itemsets, full.Itemsets) {
			return fmt.Errorf("stream equivalence violated after %d pushes: delta-mined %d itemsets, from-scratch %d (or values differ)",
				i, len(res.Itemsets), len(full.Itemsets))
		}
		if err := wellFormed(res); err != nil {
			return fmt.Errorf("after %d pushes: %w", i, err)
		}
		if got := len(diff.Added) + len(diff.Changed) + diff.Unchanged; got != len(res.Itemsets) {
			return fmt.Errorf("after %d pushes: diff accounts for %d itemsets, result has %d", i, got, len(res.Itemsets))
		}
		if prev == nil && (len(diff.Removed) != 0 || len(diff.Changed) != 0 || diff.Unchanged != 0) {
			return fmt.Errorf("first round diff must be all-added: +%d -%d ~%d =%d",
				len(diff.Added), len(diff.Removed), len(diff.Changed), diff.Unchanged)
		}
		prev = res
	}
	if prev == nil {
		return nil // threshold above everything the window ever held
	}
	// One final no-change round: full splice, empty diff.
	res, diff, err := m.MineContext(context.Background())
	if err != nil {
		return fmt.Errorf("no-change round: %w", err)
	}
	if !diff.Empty() || diff.Unchanged != len(prev.Itemsets) {
		return fmt.Errorf("no-change round diff not empty: +%d -%d ~%d =%d (want =%d)",
			len(diff.Added), len(diff.Removed), len(diff.Changed), diff.Unchanged, len(prev.Itemsets))
	}
	if res.Stats.NodesVisited != 0 {
		return fmt.Errorf("no-change round visited %d nodes, want full reuse", res.Stats.NodesVisited)
	}
	return nil
}

// RunStreamEquivalence builds the case at invariant sizes (oracle-free, so
// the window can slide through a few dozen transactions) and checks
// StreamEquivalence.
func RunStreamEquivalence(c Case) error {
	if c.MaxTrans == 0 {
		c.MaxTrans = InvariantMaxTrans
	}
	if c.MaxItems == 0 {
		c.MaxItems = InvariantMaxItems
	}
	db, opts := c.Build()
	if err := StreamEquivalence(db, opts); err != nil {
		return fmt.Errorf("crosscheck: %v: %w", c, err)
	}
	return nil
}

// RunShardEquivalence builds the case at invariant sizes (large enough to
// make every shard non-trivial) and checks ShardEquivalence.
func RunShardEquivalence(c Case) error {
	if c.MaxTrans == 0 {
		c.MaxTrans = InvariantMaxTrans
	}
	if c.MaxItems == 0 {
		c.MaxItems = InvariantMaxItems
	}
	db, opts := c.Build()
	if err := ShardEquivalence(db, opts); err != nil {
		return fmt.Errorf("crosscheck: %v: %w", c, err)
	}
	return nil
}
