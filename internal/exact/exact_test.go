package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// frequentBruteForce enumerates every itemset over the universe and keeps
// the frequent ones — the reference the real miners are compared against.
func frequentBruteForce(d Dataset, minSup int) []Pattern {
	items := d.Items()
	if len(items) > 16 {
		panic("frequentBruteForce limited to 16 items")
	}
	var out []Pattern
	for mask := 1; mask < 1<<uint(len(items)); mask++ {
		var x itemset.Itemset
		for i, it := range items {
			if mask&(1<<uint(i)) != 0 {
				x = append(x, it)
			}
		}
		if sup := d.Support(x); sup >= minSup {
			out = append(out, Pattern{Items: x.Clone(), Support: sup})
		}
	}
	SortPatterns(out)
	return out
}

func randomDataset(rng *rand.Rand, maxTrans, maxItems int) Dataset {
	n := rng.Intn(maxTrans) + 1
	d := make(Dataset, 0, n)
	for i := 0; i < n; i++ {
		var items []itemset.Item
		for j := 0; j < maxItems; j++ {
			if rng.Float64() < 0.45 {
				items = append(items, itemset.Item(j))
			}
		}
		if len(items) == 0 {
			items = []itemset.Item{itemset.Item(rng.Intn(maxItems))}
		}
		d = append(d, itemset.New(items...))
	}
	return d
}

func TestAprioriAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDataset(rng, 15, 7)
		minSup := rng.Intn(len(d)) + 1
		return PatternsEqual(Apriori(d, minSup), frequentBruteForce(d, minSup))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestFPGrowthAgainstApriori(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDataset(rng, 25, 9)
		minSup := rng.Intn(len(d)) + 1
		return PatternsEqual(FPGrowth(d, minSup), Apriori(d, minSup))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMineClosedAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDataset(rng, 15, 7)
		minSup := rng.Intn(len(d)) + 1
		return PatternsEqual(MineClosed(d, minSup), ClosedBruteForce(d, minSup))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestClosedAreClosedAndFrequent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		d := randomDataset(rng, 20, 8)
		minSup := rng.Intn(len(d)) + 1
		for _, p := range MineClosed(d, minSup) {
			if p.Support < minSup {
				t.Fatalf("closed pattern %v has support %d < %d", p.Items, p.Support, minSup)
			}
			if d.Support(p.Items) != p.Support {
				t.Fatalf("pattern %v support mismatch", p.Items)
			}
			if !IsClosed(d, p.Items) {
				t.Fatalf("pattern %v is not closed", p.Items)
			}
		}
	}
}

// TestClosedSupportsCoverFrequent: every frequent itemset's support equals
// the max support of a closed superset — the defining property that makes
// the closed set a lossless compression.
func TestClosedSupportsCoverFrequent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		d := randomDataset(rng, 15, 6)
		minSup := rng.Intn(len(d)) + 1
		closed := MineClosed(d, minSup)
		for _, fp := range FPGrowth(d, minSup) {
			found := false
			for _, cp := range closed {
				if itemset.IsSubset(fp.Items, cp.Items) && cp.Support == fp.Support {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("frequent %v (sup %d) has no closed superset of equal support", fp.Items, fp.Support)
			}
		}
	}
}

func TestKnownSmallDataset(t *testing.T) {
	// The exact version of the paper's Table II data: supports are
	// sup(abc)=4, sup(abcd)=2.
	d := FromUncertain(uncertain.PaperExample())
	closed := MineClosed(d, 2)
	if len(closed) != 2 {
		t.Fatalf("closed = %v, want exactly {abc}:4 and {abcd}:2", closed)
	}
	if !itemset.Equal(closed[0].Items, itemset.FromInts(0, 1, 2)) || closed[0].Support != 4 {
		t.Errorf("first closed = %+v", closed[0])
	}
	if !itemset.Equal(closed[1].Items, itemset.FromInts(0, 1, 2, 3)) || closed[1].Support != 2 {
		t.Errorf("second closed = %+v", closed[1])
	}
	// All 15 subsets of abcd are frequent at min_sup 2.
	if fi := FPGrowth(d, 2); len(fi) != 15 {
		t.Errorf("FI count = %d, want 15", len(fi))
	}
}

func TestMinSupFloor(t *testing.T) {
	d := Dataset{itemset.FromInts(1)}
	if got := FPGrowth(d, 0); len(got) != 1 {
		t.Errorf("minSup 0 should be clamped to 1, got %v", got)
	}
	if got := Apriori(d, -5); len(got) != 1 {
		t.Errorf("negative minSup should be clamped, got %v", got)
	}
	if got := MineClosed(d, 0); len(got) != 1 {
		t.Errorf("MineClosed minSup 0 should be clamped, got %v", got)
	}
}

func TestEmptyResults(t *testing.T) {
	d := Dataset{itemset.FromInts(1), itemset.FromInts(2)}
	if got := FPGrowth(d, 3); len(got) != 0 {
		t.Errorf("unreachable minSup should give empty result, got %v", got)
	}
	if got := MineClosed(d, 3); len(got) != 0 {
		t.Errorf("unreachable minSup should give empty closed result, got %v", got)
	}
}

func TestDatasetHelpers(t *testing.T) {
	d := Dataset{itemset.FromInts(1, 2), itemset.FromInts(2, 3)}
	if got := d.Items(); !itemset.Equal(got, itemset.FromInts(1, 2, 3)) {
		t.Errorf("Items = %v", got)
	}
	if got := d.Support(itemset.FromInts(2)); got != 2 {
		t.Errorf("Support(2) = %d", got)
	}
	ts := d.Tidsets()
	if got := ts[2].Indices(); len(got) != 2 {
		t.Errorf("tidset(2) = %v", got)
	}
}

func TestHMineAgainstFPGrowth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDataset(rng, 25, 9)
		minSup := rng.Intn(len(d)) + 1
		return PatternsEqual(HMine(d, minSup), FPGrowth(d, minSup))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestHMineEdgeCases(t *testing.T) {
	d := Dataset{itemset.FromInts(1)}
	if got := HMine(d, 0); len(got) != 1 {
		t.Errorf("minSup 0 should clamp to 1, got %v", got)
	}
	if got := HMine(Dataset{itemset.FromInts(1), itemset.FromInts(2)}, 3); len(got) != 0 {
		t.Errorf("unreachable minSup should give empty result, got %v", got)
	}
}
