// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section V) at a configurable scale.
//
// Usage:
//
//	experiments [-exp all|example1|table7|table8|fig5..fig12|extra|profile]
//	            [-mushroom-scale 0.1] [-quest-scale 0.02]
//	            [-pfct 0.8] [-eps 0.1] [-delta 0.1]
//	            [-seed 42] [-budget 60s]
//	experiments -bench-json BENCH.json
//
// Each experiment prints the same rows/series the paper's figure plots;
// EXPERIMENTS.md records a reference run and the paper-vs-measured
// comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"github.com/probdata/pfcim/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run: all, example1, table7, table8, fig5..fig12, extra, profile")
		mushScale  = flag.Float64("mushroom-scale", 0.1, "Mushroom-like dataset scale (1 = 8124 transactions)")
		questScale = flag.Float64("quest-scale", 0.02, "T20I10D30KP40 scale (1 = 30000 transactions)")
		pfct       = flag.Float64("pfct", 0.8, "probabilistic frequent closed threshold")
		eps        = flag.Float64("eps", 0.1, "ApproxFCP relative tolerance error")
		delta      = flag.Float64("delta", 0.1, "ApproxFCP confidence parameter")
		seed       = flag.Int64("seed", 42, "generator and sampler seed")
		budget     = flag.Duration("budget", 60*time.Second, "per-point time budget; a series exceeding it skips its remaining points")
		quick      = flag.Bool("quick", false, "trim every sweep to a few representative points")
		benchJSON  = flag.String("bench-json", "", "run the benchmark suite and write the points to this JSON file, then exit")
		benchLarge = flag.Bool("bench-large", false, "include the million-transaction quest-1m point in the benchmark suite")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.Config{
		MushroomScale: *mushScale,
		QuestScale:    *questScale,
		PFCT:          *pfct,
		Epsilon:       *eps,
		Delta:         *delta,
		Seed:          *seed,
		Budget:        *budget,
		Quick:         *quick,
		BenchLarge:    *benchLarge,
		Out:           os.Stdout,
	}
	suite := experiments.NewSuite(cfg)
	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		err = suite.RunBench(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if err := suite.Run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
