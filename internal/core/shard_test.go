package core

import (
	"context"
	"math"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/shard"
	"github.com/probdata/pfcim/internal/uncertain"
)

// TestShardsOneCollapses: Shards = 1 is the whole-range partition, which is
// definitionally the unsharded computation — it must normalize away, share
// the unsharded canonical key, and return the byte-identical result.
func TestShardsOneCollapses(t *testing.T) {
	db := uncertain.PaperExample()
	base, err := Mine(db, Options{MinSup: 2, PFCT: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Mine(db, Options{MinSup: 2, PFCT: 0.8, Seed: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Itemsets, one.Itemsets) || !reflect.DeepEqual(base.Stats, one.Stats) {
		t.Fatalf("Shards=1 differs from unsharded:\nbase=%+v\none=%+v", base, one)
	}
	k0, err := Options{MinSup: 2, PFCT: 0.8, Seed: 1}.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	k1, err := Options{MinSup: 2, PFCT: 0.8, Seed: 1, Shards: 1}.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if k0 != k1 {
		t.Fatalf("canonical keys differ: %q vs %q", k0, k1)
	}
	k2, _ := (Options{MinSup: 2, PFCT: 0.8, Seed: 1, Shards: 2}).CanonicalKey()
	if k2 == k0 {
		t.Fatal("Shards=2 must have a distinct canonical key")
	}
	if _, err := Mine(db, Options{MinSup: 2, PFCT: 0.8, Shards: -1}); err == nil {
		t.Fatal("negative Shards must be rejected")
	}
}

// TestShardedThreeWayByteIdentity pins the tentpole equivalence: for a fixed
// shard count, mining with the inline partition arithmetic, with an
// in-process LocalKernel, and with real HTTP workers produces byte-identical
// itemsets and stats — the same float sequences flow through the same
// PMFTrunc/ConvolvePMF fold on all three paths, and JSON round-trips float64
// exactly.
func TestShardedThreeWayByteIdentity(t *testing.T) {
	for _, db := range []*uncertain.DB{uncertain.PaperExample(), shardTestDB(t)} {
		for _, n := range []int{2, 4} {
			opts := Options{MinSup: 2, PFCT: 0.5, Seed: 3, Shards: n}
			inline, err := Mine(db, opts)
			if err != nil {
				t.Fatal(err)
			}

			kern, err := shard.NewLocalKernel(db, n)
			if err != nil {
				t.Fatal(err)
			}
			local := opts
			local.ShardKernel = kern
			viaLocal, err := Mine(db, local)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(inline.Itemsets, viaLocal.Itemsets) {
				t.Fatalf("n=%d: LocalKernel itemsets differ from inline:\n%+v\n%+v",
					n, inline.Itemsets, viaLocal.Itemsets)
			}
			if !reflect.DeepEqual(inline.Stats, viaLocal.Stats) {
				t.Fatalf("n=%d: LocalKernel stats differ from inline:\n%+v\n%+v",
					n, inline.Stats, viaLocal.Stats)
			}

			srv := httptest.NewServer(shard.NewWorker(nil))
			client, err := shard.NewClient([]string{srv.URL}, time.Second, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := client.Place(context.Background(), "tw", db, n); err != nil {
				t.Fatal(err)
			}
			sess, err := client.Kernel(context.Background(), nil, "tw")
			if err != nil {
				t.Fatal(err)
			}
			remote := opts
			remote.ShardKernel = sess
			viaHTTP, err := Mine(db, remote)
			if err != nil {
				srv.Close()
				t.Fatal(err)
			}
			if !reflect.DeepEqual(inline.Itemsets, viaHTTP.Itemsets) {
				t.Fatalf("n=%d: HTTP itemsets differ from inline:\n%+v\n%+v",
					n, inline.Itemsets, viaHTTP.Itemsets)
			}
			if !reflect.DeepEqual(inline.Stats, viaHTTP.Stats) {
				t.Fatalf("n=%d: HTTP stats differ from inline:\n%+v\n%+v",
					n, inline.Stats, viaHTTP.Stats)
			}

			// Tracing must be pure observation on every path: the same
			// itemsets and stats with a tracer installed, over the inline
			// arithmetic, the remote session (whose workers now ship span
			// batches back), and the parallel scheduler.
			traced := opts
			traced.Tracer = obs.New()
			viaTraced, err := Mine(db, traced)
			if err != nil {
				srv.Close()
				t.Fatal(err)
			}
			if !reflect.DeepEqual(inline.Itemsets, viaTraced.Itemsets) ||
				!reflect.DeepEqual(inline.Stats, viaTraced.Stats) {
				t.Fatalf("n=%d: tracer changed the inline result", n)
			}

			tracedRemote := opts
			tracedRemote.Tracer = obs.New()
			tracedRemote.ShardKernel = sess
			sess.SetTracer(tracedRemote.Tracer)
			viaTracedHTTP, err := Mine(db, tracedRemote)
			sess.SetTracer(nil)
			srv.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(inline.Itemsets, viaTracedHTTP.Itemsets) ||
				!reflect.DeepEqual(inline.Stats, viaTracedHTTP.Stats) {
				t.Fatalf("n=%d: tracer changed the HTTP-sharded result", n)
			}
			if wp := tracedRemote.Tracer.Profile().RemoteWorker(srv.URL); wp == nil || wp.Spans == 0 {
				t.Fatalf("n=%d: traced HTTP mine imported no worker spans", n)
			}

			tracedPar := opts
			tracedPar.Parallelism = 4
			tracedPar.Tracer = obs.New()
			viaTracedPar, err := Mine(db, tracedPar)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(inline.Itemsets, viaTracedPar.Itemsets) {
				t.Fatalf("n=%d: tracer changed the parallel sharded result", n)
			}
		}
	}
}

// TestShardedVsUnshardedTolerance: sharded mining regroups IEEE sums, so it
// is compared to the single-node result the way the conv-kernel ablation is
// — same itemsets, probabilities within numerical tolerance.
func TestShardedVsUnshardedTolerance(t *testing.T) {
	const eps = 1e-6
	for _, db := range []*uncertain.DB{uncertain.PaperExample(), shardTestDB(t)} {
		base, err := Mine(db, Options{MinSup: 2, PFCT: 0.5, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 3, 4} {
			got, err := Mine(db, Options{MinSup: 2, PFCT: 0.5, Seed: 3, Shards: n})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Itemsets) != len(base.Itemsets) {
				t.Fatalf("n=%d: %d itemsets, unsharded %d", n, len(got.Itemsets), len(base.Itemsets))
			}
			for i := range base.Itemsets {
				b, g := base.Itemsets[i], got.Itemsets[i]
				if !itemset.Equal(b.Items, g.Items) {
					t.Fatalf("n=%d item %d: %v vs %v", n, i, b.Items, g.Items)
				}
				if math.Abs(b.Prob-g.Prob) > eps || math.Abs(b.FreqProb-g.FreqProb) > eps {
					t.Errorf("n=%d %v: prob %v vs %v, freq %v vs %v",
						n, b.Items, b.Prob, g.Prob, b.FreqProb, g.FreqProb)
				}
			}
		}
	}
}

// TestShardedPaperExample: the Table II numbers survive sharding.
func TestShardedPaperExample(t *testing.T) {
	db := uncertain.PaperExample()
	for _, n := range []int{2, 4} {
		res, err := Mine(db, Options{MinSup: 2, PFCT: 0.8, Seed: 1, Shards: n})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Itemsets) != 2 {
			t.Fatalf("n=%d: got %d results, want 2", n, len(res.Itemsets))
		}
		if got := res.Itemsets[0].Prob; math.Abs(got-0.8754) > 1e-9 {
			t.Errorf("n=%d: Pr_FC(abc) = %v, want 0.8754", n, got)
		}
		if got := res.Itemsets[1].Prob; math.Abs(got-0.81) > 1e-9 {
			t.Errorf("n=%d: Pr_FC(abcd) = %v, want 0.81", n, got)
		}
	}
}

// TestShardedParallelMatchesSerial: the work-stealing scheduler composes
// with sharding — results and scheduling-independent stats are unchanged.
func TestShardedParallelMatchesSerial(t *testing.T) {
	db := shardTestDB(t)
	serial, err := Mine(db, Options{MinSup: 2, PFCT: 0.5, Seed: 3, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Mine(db, Options{MinSup: 2, PFCT: 0.5, Seed: 3, Shards: 2, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Itemsets, par.Itemsets) {
		t.Fatalf("parallel sharded results differ:\n%+v\n%+v", serial.Itemsets, par.Itemsets)
	}
}

// shardTestDB is a 12-transaction mixed-density database that splits
// unevenly at 2, 3 and 4 shards.
func shardTestDB(t *testing.T) *uncertain.DB {
	t.Helper()
	trans := []uncertain.Transaction{
		{Items: itemset.FromInts(0, 1, 2), Prob: 0.9},
		{Items: itemset.FromInts(0, 1), Prob: 0.75},
		{Items: itemset.FromInts(1, 2, 3), Prob: 0.6},
		{Items: itemset.FromInts(0, 2, 3), Prob: 0.85},
		{Items: itemset.FromInts(3), Prob: 0.4},
		{Items: itemset.FromInts(0, 1, 2, 3), Prob: 0.55},
		{Items: itemset.FromInts(1, 3), Prob: 0.95},
		{Items: itemset.FromInts(0, 2), Prob: 0.65},
		{Items: itemset.FromInts(2, 3), Prob: 0.5},
		{Items: itemset.FromInts(0, 1, 3), Prob: 0.7},
		{Items: itemset.FromInts(1, 2), Prob: 0.8},
		{Items: itemset.FromInts(0, 3), Prob: 0.45},
	}
	db, err := uncertain.NewDB(trans)
	if err != nil {
		t.Fatal(err)
	}
	return db
}
