// Dnfcount makes the paper's #P-hardness proof (Theorem 3.1) executable:
// it counts the satisfying assignments of a monotone DNF formula by
// building the reduction's uncertain transaction database and reading the
// answer off the closed probability of the target itemset, then checks the
// count by brute force.
package main

import (
	"fmt"
	"log"

	"github.com/probdata/pfcim/internal/dnf"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/world"
)

func main() {
	// The formula from the paper's proof sketch:
	//   F = (v1 ∧ v2 ∧ v3) ∨ (v1 ∧ v2 ∧ v4) ∨ (v2 ∧ v3 ∧ v4)
	f := dnf.Monotone{
		NumVars: 4,
		Clauses: [][]int{{0, 1, 2}, {0, 1, 3}, {1, 2, 3}},
	}

	db, err := dnf.ReductionDB(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reduction database (each tuple has probability 1/2):")
	for i := 0; i < db.N(); i++ {
		fmt.Printf("  T%d: %v\n", i+1, db.Transaction(i).Items)
	}

	closedProb, err := world.ClosedProb(db, itemset.Itemset{dnf.ReductionTarget})
	if err != nil {
		log.Fatal(err)
	}
	viaReduction := dnf.CountFromClosedProb(f, closedProb)
	direct, err := f.CountBruteForce()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nPr_C(X) over the reduction database = %.6f\n", closedProb)
	fmt.Printf("satisfying assignments via reduction  = %d\n", viaReduction)
	fmt.Printf("satisfying assignments by brute force = %d\n", direct)
	if viaReduction != direct {
		log.Fatal("reduction disagrees with brute force — Theorem 3.1 violated!")
	}
	fmt.Println("\nTheorem 3.1 verified: #MDNF reduces to computing a closed probability,")
	fmt.Println("so computing Pr_C (and hence Pr_FC) is #P-hard.")
}
