package poibin

import (
	"fmt"
	"math"
)

// CondSampler draws Bernoulli vectors x ∈ {0,1}ⁿ with x_i ~ Bernoulli(p_i)
// independently, conditioned on Σ x_i ≥ k. ApproxFCP uses it to sample
// possible worlds that satisfy a clause C_i (whose support part requires
// sup(X+e_i) ≥ min_sup).
//
// Construction costs O(n·k) time and memory for the suffix-tail table
//
//	tail[i][r] = Pr[ x_i + … + x_{n-1} ≥ r ]
//
// and the conditional success table
//
//	pone[i][r] = Pr[ x_i = 1 | x_i + … + x_{n-1} ≥ r ]
//	           = p_i · tail[i+1][r−1] / tail[i][r]
//
// after which each Sample costs O(n) with one table load and one uniform
// draw per step — no division on the sampling path. Build the sampler once
// per clause and reuse it across that clause's samples; the construction
// amortizes after a handful of draws.
type CondSampler struct {
	probs []float64
	k     int
	// tail is an (n+1)×(k+1) table in row-major order.
	tail []float64
	// pone is an n×(k+1) table stored transposed (entry [i][r] at r·n+i, the
	// access order of the sampling walk); entry [i][r] is NaN when
	// tail[i][r] underflowed to 0, marking the numerically impossible
	// branch where only the forced-success path remains.
	pone []float64
	n    int
}

// NewCondSampler builds a sampler for the constraint Σ x_i ≥ k. It returns
// an error if the constraint is unsatisfiable (k > n) or has probability
// zero.
func NewCondSampler(probs []float64, k int) (*CondSampler, error) {
	n := len(probs)
	if k < 0 {
		k = 0
	}
	if k > n {
		return nil, fmt.Errorf("poibin: constraint sum ≥ %d unsatisfiable with %d variables", k, n)
	}
	cs := &CondSampler{probs: append([]float64(nil), probs...), k: k, n: n}
	cs.tail = make([]float64, (n+1)*(k+1))
	// Base row i = n: tail ≥ 0 is certain, ≥ r>0 impossible.
	cs.tail[n*(k+1)+0] = 1
	for i := n - 1; i >= 0; i-- {
		p := probs[i]
		row := cs.tail[i*(k+1) : (i+1)*(k+1)]
		next := cs.tail[(i+1)*(k+1) : (i+2)*(k+1)]
		row[0] = 1
		for r := 1; r <= k; r++ {
			succ := next[r-1]
			row[r] = p*succ + (1-p)*next[r]
		}
	}
	if cs.tail[k] <= 0 {
		return nil, fmt.Errorf("poibin: constraint sum ≥ %d has probability 0", k)
	}
	// pone is stored transposed — entry [i][r] lives at r·n + i — so the
	// sampling walk (i advances every step, r only on success) touches
	// consecutive memory instead of one cache line per step. One padding
	// element lets SampleWords preload the fail-path candidate of the next
	// step unconditionally, even from the table's last live cell.
	cs.pone = make([]float64, n*(k+1)+1)
	for i := 0; i < n; i++ {
		row := cs.tail[i*(k+1) : (i+1)*(k+1)]
		next := cs.tail[(i+1)*(k+1) : (i+2)*(k+1)]
		for r := 1; r <= k; r++ {
			if denom := row[r]; denom > 0 {
				cs.pone[r*n+i] = probs[i] * next[r-1] / denom
			} else {
				cs.pone[r*n+i] = math.NaN()
			}
		}
	}
	return cs, nil
}

// Prob returns Pr[Σ x_i ≥ k] for the unconditioned vector — the
// normalizing constant of the sampler.
func (cs *CondSampler) Prob() float64 { return cs.tail[cs.k] }

// Sample fills dst (length n) with one conditioned draw. It panics if dst
// has the wrong length.
func (cs *CondSampler) Sample(rng *SM64, dst []bool) {
	if len(dst) != cs.n {
		panic(fmt.Sprintf("poibin: Sample dst length %d, want %d", len(dst), cs.n))
	}
	r := cs.k
	for i := 0; i < cs.n; i++ {
		if r == 0 {
			// Constraint met; the rest is unconditioned.
			dst[i] = rng.Float64() < cs.probs[i]
			continue
		}
		// Pr[x_i = 1 | suffix from i ≥ r], precomputed; NaN flags the
		// numerically impossible branch where the success path is forced.
		pOne := cs.pone[r*cs.n+i]
		if pOne != pOne {
			dst[i] = true
			r--
			continue
		}
		if rng.Float64() < pOne {
			dst[i] = true
			r--
		} else {
			dst[i] = false
		}
	}
}

// SampleWords draws one conditioned world directly into the dense bit
// words of a caller-cleared present-set: bit tids[i] is set iff x_i = 1
// (bit t lives at words[t/64], mask 1<<(t%64)). The uniform-draw stream
// and the resulting assignment are identical to Sample's; fusing the draw
// with the bit write is what removes the per-bit bounds-checked Set calls
// from the Karp–Luby inner loop.
func (cs *CondSampler) SampleWords(rng *SM64, tids []int, words []uint64) {
	if len(tids) != cs.n {
		panic(fmt.Sprintf("poibin: SampleWords got %d tids, want %d", len(tids), cs.n))
	}
	n := cs.n
	r := cs.k
	pone := cs.pone
	i := 0
	// Walk the transposed pone table with a running index: step i advances
	// one element (+1) and a success drops one row (−n), so the staircase
	// is a near-sequential scan that never recomputes r·n+i. The walk is
	// written to keep the table loads off the loop's critical path: both
	// candidate cells for the next step — fail at idx+1 (the padding
	// element makes that load safe everywhere), success at idx+1−n, which
	// is ≥ 1 whenever r > 0 — are fetched before the draw resolves, so the
	// memory latency overlaps the compare instead of serializing behind it.
	if r > 0 && i < n {
		idx := r * n
		cur := pone[idx]
		for ; i < n && r > 0; i++ {
			var cand [2]float64
			cand[0] = pone[idx+1]
			cand[1] = pone[idx+1-n]
			if cur != cur {
				// Numerically forced success: no draw is consumed.
				t := uint(tids[i])
				words[t/64] |= 1 << (t % 64)
				r--
				idx += 1 - n
				cur = cand[1]
				continue
			}
			// Branchless success: the comparison becomes a 0/1 flag, the
			// bit write is unconditional (OR of zero is a no-op), and the
			// cursor moves by a flag-adjusted stride. A draw succeeds with
			// roughly the tuple's own probability, so a conditional here is
			// an unpredictable branch in the hottest loop of the miner —
			// the mispredict stalls cost more than the occasional wasted OR.
			s := 0
			if rng.Float64() < cur {
				s = 1
			}
			t := uint(tids[i])
			words[t/64] |= uint64(s) << (t % 64)
			r -= s
			idx += 1 - s*n
			cur = cand[s]
		}
	}
	// Constraint met; the rest is unconditioned. The [:n] re-slice hands
	// the prover len(probs) = n, eliminating the per-step bounds checks.
	probs := cs.probs[:n]
	for ; i < n; i++ {
		s := uint64(0)
		if rng.Float64() < probs[i] {
			s = 1
		}
		t := uint(tids[i])
		words[t/64] |= s << (t % 64)
	}
}
