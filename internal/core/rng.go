package core

import (
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
)

// Monte-Carlo determinism: every enumeration node that needs sampling
// derives its RNG from (Options.Seed, the node's canonical prefix) — never
// from goroutine scheduling, work-stealing decisions, or the order nodes
// happen to be evaluated in. This is what makes Mine return byte-identical
// results for every Parallelism setting, and lets the scheduler split
// subtrees anywhere without touching the sampled estimates.

// splitmix64 is the SplitMix64 finalizer: a cheap bijective mixer whose
// output passes BigCrush when used as a stream, and which decorrelates
// structurally similar inputs (e.g. prefixes sharing all but one item).
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// nodeSeed hashes the run seed and a node's items into the node's sampler
// seed.
func nodeSeed(seed int64, x itemset.Itemset) uint64 {
	h := splitmix64(uint64(seed))
	for _, it := range x {
		h = splitmix64(h ^ uint64(uint32(it)))
	}
	return h
}

// nodeRNG returns the deterministic sampler RNG of node x: a concrete
// poibin.SM64 over the splitmix64 stream. Unlike the default math/rand
// source (a ~5 KB lagged-Fibonacci state with an expensive re-seed), it
// costs one word per node, so constructing a fresh RNG per evaluated node
// is free — and its Float64 emits the same bits a *rand.Rand over the same
// stream would, so swapping the wrapper for the concrete type changed no
// sampled estimate (poibin.TestSM64MatchesMathRand pins this).
func (m *miner) nodeRNG(x itemset.Itemset) *poibin.SM64 {
	return poibin.NewSM64(nodeSeed(m.opts.Seed, x))
}
