package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildBinary(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping binary build in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "crosscheck")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSoakSmoke runs a short soak for every shape flag form and checks the
// success banner; a 2-second budget still covers hundreds of cases.
func TestSoakSmoke(t *testing.T) {
	bin := buildBinary(t)
	for _, args := range [][]string{
		{"-seconds", "2", "-seed", "7"},
		{"-seconds", "1", "-shape", "degenerate"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("crosscheck %v: %v\n%s", args, err, out)
		}
		if !strings.Contains(string(out), "crosscheck: OK") {
			t.Errorf("crosscheck %v: missing OK banner:\n%s", args, out)
		}
	}
}

// TestBadShapeFlag pins the usage error path.
func TestBadShapeFlag(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-seconds", "1", "-shape", "bogus").CombinedOutput()
	if err == nil {
		t.Fatalf("crosscheck -shape bogus should exit non-zero, got:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown shape") {
		t.Errorf("expected unknown-shape error, got:\n%s", out)
	}
}
