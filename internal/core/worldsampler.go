package core

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// This file implements the "naïve sampling method" of the paper's §IV.B.4:
// estimate an itemset's frequent closed probability by sampling whole
// possible worlds and counting the fraction in which the itemset is a
// frequent closed itemset. Unlike the Karp–Luby coverage sampler
// (ApproxFCP), this estimator has no a-priori sample bound relative to the
// quantity being estimated — exactly the shortcoming the paper points out
// ("we cannot know the exact number of samplings that we need to run") —
// but it is simple and unbiased, and serves as an independent check on the
// fast path in the tests and as an ablation benchmark.

// WorldSampler estimates frequent closed probabilities by direct possible-
// world simulation over one database.
type WorldSampler struct {
	db    *uncertain.DB
	idx   *uncertain.Index
	probs []float64
	rng   *rand.Rand
}

// NewWorldSampler prepares a sampler with the given seed.
func NewWorldSampler(db *uncertain.DB, seed int64) *WorldSampler {
	return &WorldSampler{
		db:    db,
		idx:   db.Index(),
		probs: db.Probs(),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// FreqClosedProb estimates Pr_FC(x) from n sampled worlds. The standard
// error is √(p(1−p)/n); use EstimateSamples to size n for a target
// additive error.
func (ws *WorldSampler) FreqClosedProb(x itemset.Itemset, minSup, n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("core: world sampler needs n > 0 samples, got %d", n)
	}
	if minSup < 1 {
		return 0, fmt.Errorf("core: world sampler needs minSup ≥ 1, got %d", minSup)
	}
	xTids := ws.idx.TidsetOf(x)

	// Precompute the tidsets of all single-item extensions once.
	type ext struct {
		tids *bitset.Bitset
	}
	var exts []ext
	for _, e := range ws.idx.Items {
		if x.Contains(e) {
			continue
		}
		exts = append(exts, ext{tids: bitset.And(xTids, ws.idx.Tidsets[e])})
	}

	present := bitset.New(ws.db.N())
	hits := 0
	for s := 0; s < n; s++ {
		// Sample the world restricted to the transactions containing x —
		// transactions outside tids(x) affect neither sup(x) nor the
		// support of any superset of x.
		present.Reset()
		sup := 0
		xTids.ForEach(func(tid int) bool {
			if ws.rng.Float64() < ws.probs[tid] {
				present.Set(tid)
				sup++
			}
			return true
		})
		if sup < minSup {
			continue
		}
		closed := true
		for _, e := range exts {
			// x is non-closed via e when every present x-transaction also
			// contains e.
			if bitset.IsSubset(present, e.tids) {
				closed = false
				break
			}
		}
		if closed {
			hits++
		}
	}
	return float64(hits) / float64(n), nil
}

// EstimateSamples returns the number of world samples needed for an
// additive error ε with confidence 1−δ by the Hoeffding bound:
// n = ⌈ln(2/δ) / (2ε²)⌉.
func EstimateSamples(eps, delta float64) int {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return 0
	}
	n := int(math.Log(2/delta)/(2*eps*eps)) + 1
	return n
}
