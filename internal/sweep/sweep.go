// Package sweep is the shared-computation parameter-sweep engine: it mines
// one dataset at a grid of (MinSup, PFCT, Epsilon, Delta) operating points
// while paying for as few full enumerations as possible.
//
// The planner groups grid points that share every result-affecting option
// except pfct (in particular MinSup — the paper's Fig. 6 axis — starts a
// new group, because support pruning reshapes the enumeration tree). Each
// group runs ONE full core.Mine at the group's minimum pfct: MPFCI's
// pruning is threshold-monotone — lowering pfct only weakens the
// Chernoff-Hoeffding (Lemma 4.1) and Pr_FC-bound (Lemma 4.4) prunes, and
// the structural prunes (Lemmas 4.2/4.3) only ever remove itemsets whose
// frequent closed probability is exactly zero at every threshold — so the
// base run's accepted set is a superset of every tighter point's result
// set (DESIGN §10). Each tighter point is then derived by bound-aware
// filtering through core.Evaluator: candidates whose cached Lemma 4.4
// lower bound clears the tighter threshold are accepted outright,
// candidates whose upper bound cannot reach it are rejected outright, and
// only the straddlers re-run the exact/sampled ApproxFCP union — whose
// per-node deterministic seeding makes every derived point byte-identical
// to an independent Mine at that point.
package sweep

import (
	"context"
	"fmt"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/uncertain"
)

// Point is one grid point of a sweep. Zero-valued fields inherit from the
// sweep's base options, so a pure pfct sweep lists only PFCT values.
type Point struct {
	MinSup  int
	PFCT    float64
	Epsilon float64
	Delta   float64
}

// Apply overlays the point on the base options, producing the effective
// options of this grid point. Execution knobs (Parallelism, Trace, …) are
// always the base's — a sweep varies result-affecting thresholds only.
func (p Point) Apply(base core.Options) core.Options {
	o := base
	if p.MinSup != 0 {
		o.MinSup = p.MinSup
	}
	if p.PFCT != 0 {
		o.PFCT = p.PFCT
	}
	if p.Epsilon != 0 {
		o.Epsilon = p.Epsilon
	}
	if p.Delta != 0 {
		o.Delta = p.Delta
	}
	return o
}

// PointResult is the mining outcome at one grid point.
type PointResult struct {
	// Point echoes the requested grid point.
	Point Point
	// Options is the point's effective options in canonical form — the
	// identity under which the result is cacheable (DESIGN §8.3).
	Options core.Options
	// Itemsets is exactly what core.Mine at Options would return.
	Itemsets []core.ResultItem
	// Derived reports whether the point was derived from its group's base
	// enumeration (true) or is the base enumeration itself (false).
	Derived bool
	// Stats is the mining work attributable to this point: the full run's
	// statistics for a base point, the re-evaluation delta for a derived
	// point (NodesVisited is 0 there — no enumeration happened).
	Stats core.Stats
	// Wall is the wall-clock time attributed to this point.
	Wall time.Duration
}

// Stats summarizes the engine's work across the whole sweep.
type Stats struct {
	Points            int // grid points requested
	Groups            int // point groups (one per distinct non-pfct option set)
	FullEnumerations  int // full core.Mine runs performed — equals Groups
	DerivedPoints     int // points answered by filtering, without enumeration
	CandidatesChecked int // candidate × derived-point re-evaluations
	Reestimated       int // re-evaluations that re-ran an exact/sampled union
}

// Result is the outcome of a sweep: one PointResult per requested point, in
// request order, plus engine statistics.
type Result struct {
	Points []PointResult
	Stats  Stats
}

// groupPFCTSentinel replaces pfct when computing a point's group key, so
// points differing only in pfct share a group. Any fixed valid value works;
// it never reaches a miner.
const groupPFCTSentinel = 0.5

// resolved is one grid point with its effective and canonical options.
type resolved struct {
	point Point
	eff   core.Options // effective options (base exec knobs retained)
	canon core.Options // canonical form: the point's result identity
}

// group collects the points that share one base enumeration.
type group struct {
	minPFCT float64
	members []int // indices into the request order
}

// plan validates every point and groups them by their pfct-masked canonical
// key, preserving first-appearance order.
func plan(points []Point, base core.Options) ([]resolved, []*group, error) {
	res := make([]resolved, len(points))
	var order []*group
	byKey := make(map[string]*group)
	for i, p := range points {
		eff := p.Apply(base)
		canon, err := eff.Canonical()
		if err != nil {
			return nil, nil, fmt.Errorf("sweep: point %d (%+v): %w", i, p, err)
		}
		res[i] = resolved{point: p, eff: eff, canon: canon}
		masked := canon
		masked.PFCT = groupPFCTSentinel
		key, err := masked.CanonicalKey()
		if err != nil {
			return nil, nil, fmt.Errorf("sweep: point %d (%+v): %w", i, p, err)
		}
		g, ok := byKey[key]
		if !ok {
			g = &group{minPFCT: canon.PFCT}
			byKey[key] = g
			order = append(order, g)
		}
		if canon.PFCT < g.minPFCT {
			g.minPFCT = canon.PFCT
		}
		g.members = append(g.members, i)
	}
	return res, order, nil
}

// Groups reports the planner's partition of the grid without mining: each
// inner slice lists the indices (into points) that share one base
// enumeration, in first-appearance order. Callers that budget or meter
// sweeps per enumeration (cmd/experiments) use this to slice a grid into
// independently runnable sub-sweeps.
func Groups(points []Point, base core.Options) ([][]int, error) {
	_, order, err := plan(points, base)
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(order))
	for i, g := range order {
		out[i] = append([]int(nil), g.members...)
	}
	return out, nil
}

// Mine executes the sweep over db. Every point is validated up front (an
// invalid point fails the whole sweep with an error naming it); the engine
// then runs one full enumeration per group and derives the rest.
func Mine(ctx context.Context, db *uncertain.DB, points []Point, base core.Options) (*Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: no grid points")
	}
	res, order, err := plan(points, base)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Points: make([]PointResult, len(points)),
		Stats:  Stats{Points: len(points), Groups: len(order)},
	}
	for _, g := range order {
		if err := runGroup(ctx, db, g, res, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runGroup mines one group's base enumeration at the group's minimum pfct
// and fills in every member point — points at the minimum directly, tighter
// points by bound-aware filtering through the Evaluator.
func runGroup(ctx context.Context, db *uncertain.DB, g *group, res []resolved, out *Result) error {
	runOpts := res[g.members[0]].eff
	runOpts.PFCT = g.minPFCT

	start := time.Now()
	base, ev, err := core.MineEvaluated(ctx, db, runOpts)
	if err != nil {
		return err
	}
	baseWall := time.Since(start)
	out.Stats.FullEnumerations++

	baseAttributed := false
	for _, i := range g.members {
		r := res[i]
		pr := PointResult{Point: r.point, Options: r.canon}
		if r.canon.PFCT == g.minPFCT {
			pr.Itemsets = base.Itemsets
			pr.Stats = base.Stats
			if !baseAttributed {
				pr.Wall = baseWall
				baseAttributed = true
			}
			out.Points[i] = pr
			continue
		}
		prev := ev.Stats()
		pointStart := time.Now()
		items := make([]core.ResultItem, 0, len(base.Itemsets))
		for _, cand := range base.Itemsets {
			if err := ctx.Err(); err != nil {
				return err
			}
			ri, ok, err := ev.Evaluate(cand.Items, r.canon.PFCT)
			if err != nil {
				return err
			}
			if ok {
				items = append(items, ri)
			}
		}
		cur := ev.Stats()
		delta := cur.Delta(prev)
		pr.Itemsets = items
		pr.Derived = true
		pr.Stats = delta
		pr.Wall = time.Since(pointStart)
		out.Stats.DerivedPoints++
		out.Stats.CandidatesChecked += len(base.Itemsets)
		out.Stats.Reestimated += delta.ExactUnions + delta.Sampled
		out.Points[i] = pr
	}
	return nil
}
