// Package bitset provides a fixed-capacity bit set used throughout the
// miner as a transaction-id set (tidset). Operations that dominate the
// mining inner loops — intersection, population count, and iteration — are
// implemented over 64-bit words with math/bits intrinsics.
//
// A set has two physical representations behind one logical contract
// (DESIGN §13): the dense form stores ceil(n/64) words; the sparse form
// stores the sorted member ids as uint32s, roaring-style, which wins once a
// tidset occupies less than one bit per word (< n/64 members) — exactly the
// regime of high-n, low-support workloads where the dense form wastes
// memory bandwidth streaming empty words. Every operation accepts any
// combination of forms and produces identical logical results; Hash and
// Equal are canonical across forms, so representation choice can never leak
// into memo keys or mining output.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a set of non-negative integers in [0, Len()). The zero value is
// an empty set of capacity zero; use New to create one with room for n bits.
// Exactly one representation is live, per the sparse flag; the other's
// storage is retained (contents undefined) so pooled sets can flip forms
// without reallocating.
type Bitset struct {
	words  []uint64 // dense storage, live when !sparse
	ids    []uint32 // sparse storage (sorted, unique), live when sparse
	n      int
	sparse bool
}

// New returns a dense Bitset able to hold bits 0..n-1, all clear.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a Bitset of capacity n with the given bits set.
func FromIndices(n int, idx ...int) *Bitset {
	b := New(n)
	for _, i := range idx {
		b.Set(i)
	}
	return b
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// DenseWords exposes the dense word storage for callers that fill many
// bits in tight loops (bit i lives at word i/64, mask 1<<(i%64)). It
// returns nil for a sparse bitset; mutations through the slice are
// mutations of the bitset. Callers guarantee their indices are in range.
func (b *Bitset) DenseWords() []uint64 {
	if b.sparse {
		return nil
	}
	return b.words
}

// Set sets bit i.
func (b *Bitset) Set(i int) {
	b.check(i)
	if b.sparse {
		b.sparseSet(uint32(i))
		return
	}
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (b *Bitset) Clear(i int) {
	b.check(i)
	if b.sparse {
		b.sparseClear(uint32(i))
		return
	}
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set.
func (b *Bitset) Test(i int) bool {
	b.check(i)
	if b.sparse {
		return b.sparseTest(uint32(i))
	}
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.n))
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	if b.sparse {
		return len(b.ids)
	}
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (b *Bitset) Any() bool {
	if b.sparse {
		return len(b.ids) > 0
	}
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of b, preserving its representation.
func (b *Bitset) Clone() *Bitset {
	if b.sparse {
		ids := make([]uint32, len(b.ids))
		copy(ids, b.ids)
		return &Bitset{ids: ids, n: b.n, sparse: true}
	}
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// CopyFrom overwrites b with the contents (and representation) of src. The
// two sets must have the same capacity.
func (b *Bitset) CopyFrom(src *Bitset) {
	if b.n != src.n {
		panic("bitset: CopyFrom capacity mismatch")
	}
	if src.sparse {
		b.ids = append(b.ids[:0], src.ids...)
		b.sparse = true
		return
	}
	b.ensureWords(len(src.words))
	copy(b.words, src.words)
	b.sparse = false
}

// ensureWords makes the dense storage exactly l words long, reusing
// capacity when possible. Contents are undefined afterwards.
func (b *Bitset) ensureWords(l int) {
	if cap(b.words) < l {
		b.words = make([]uint64, l)
		return
	}
	b.words = b.words[:l]
}

// AndInto stores x ∩ y into dst and returns the resulting population count.
// All three sets must share the same capacity; dst may alias x or y. A
// dense∩dense intersection yields a dense result; if either operand is
// sparse the result is sparse (it is contained in the sparse operand).
func AndInto(dst, x, y *Bitset) int {
	if dst.n != x.n || x.n != y.n {
		panic("bitset: AndInto capacity mismatch")
	}
	if !x.sparse && !y.sparse {
		dst.ensureWords(len(x.words))
		dst.sparse = false
		c := 0
		for i := range dst.words {
			w := x.words[i] & y.words[i]
			dst.words[i] = w
			c += bits.OnesCount64(w)
		}
		return c
	}
	return andIntoSparse(dst, x, y)
}

// AndCountAtLeast reports whether |x ∩ y| ≥ k without materializing the
// intersection, scanning only until the verdict is certain: it returns true
// as soon as the running count reaches k, and false as soon as the bits
// remaining cannot close the gap. For the special case k = Count(x) — "does
// y cover x?", the miner's superset-pruning and closure tests — IsSubset is
// strictly better (it exits on the first uncovered word); use
// AndCountAtLeast for thresholds below a full cover, e.g. minimum-support
// checks that don't need the intersection itself.
func AndCountAtLeast(x, y *Bitset, k int) bool {
	if x.n != y.n {
		panic("bitset: AndCountAtLeast capacity mismatch")
	}
	if k <= 0 {
		return true
	}
	if x.sparse || y.sparse {
		return andCountAtLeastSparse(x, y, k)
	}
	c := 0
	remaining := len(x.words) * wordBits
	for i := range x.words {
		remaining -= wordBits
		c += bits.OnesCount64(x.words[i] & y.words[i])
		if c >= k {
			return true
		}
		if c+remaining < k {
			return false
		}
	}
	return false
}

// And returns a new set x ∩ y.
func And(x, y *Bitset) *Bitset {
	dst := New(x.n)
	AndInto(dst, x, y)
	return dst
}

// AndCount returns |x ∩ y| without allocating.
func AndCount(x, y *Bitset) int {
	if x.n != y.n {
		panic("bitset: AndCount capacity mismatch")
	}
	if x.sparse || y.sparse {
		return andCountSparse(x, y)
	}
	c := 0
	for i := range x.words {
		c += bits.OnesCount64(x.words[i] & y.words[i])
	}
	return c
}

// Or returns a new (dense) set x ∪ y.
func Or(x, y *Bitset) *Bitset {
	if x.n != y.n {
		panic("bitset: Or capacity mismatch")
	}
	dst := New(x.n)
	x.writeWordsTo(dst.words)
	if y.sparse {
		for _, id := range y.ids {
			dst.words[id/wordBits] |= 1 << (id % wordBits)
		}
		return dst
	}
	for i := range dst.words {
		dst.words[i] |= y.words[i]
	}
	return dst
}

// AndNot returns a new set x \ y (sparse when x is sparse).
func AndNot(x, y *Bitset) *Bitset {
	if x.n != y.n {
		panic("bitset: AndNot capacity mismatch")
	}
	if x.sparse || y.sparse {
		return andNotSparse(x, y)
	}
	dst := New(x.n)
	for i := range dst.words {
		dst.words[i] = x.words[i] &^ y.words[i]
	}
	return dst
}

// IsSubset reports whether every bit of x is also set in y.
func IsSubset(x, y *Bitset) bool {
	if x.n != y.n {
		panic("bitset: IsSubset capacity mismatch")
	}
	if x.sparse || y.sparse {
		return isSubsetSparse(x, y)
	}
	for i := range x.words {
		if x.words[i]&^y.words[i] != 0 {
			return false
		}
	}
	return true
}

// Hash returns a 64-bit FNV-1a digest of the set's contents. Two sets with
// equal contents (and capacity) hash identically regardless of
// representation; use Equal to confirm a match. The miner keys its
// Poisson-binomial memo on this.
func (b *Bitset) Hash() uint64 {
	if b.sparse {
		return b.sparseHash()
	}
	h := uint64(fnvOffset64)
	for _, w := range b.words {
		h = (h ^ w) * fnvPrime64
	}
	return h
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Equal reports whether x and y contain exactly the same bits, in any
// combination of representations.
func Equal(x, y *Bitset) bool {
	if x.n != y.n {
		return false
	}
	if x.sparse || y.sparse {
		return equalSparse(x, y)
	}
	for i := range x.words {
		if x.words[i] != y.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order. Iteration stops
// early if fn returns false.
func (b *Bitset) ForEach(fn func(i int) bool) {
	if b.sparse {
		for _, id := range b.ids {
			if !fn(int(id)) {
				return
			}
		}
		return
	}
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the set bits in ascending order.
func (b *Bitset) Indices() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// SetAll sets every bit in [0, Len()), leaving the set dense.
func (b *Bitset) SetAll() {
	if b.sparse {
		b.sparse = false
		b.ensureWords((b.n + wordBits - 1) / wordBits)
	}
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// Reset clears every bit, preserving the representation.
func (b *Bitset) Reset() {
	if b.sparse {
		b.ids = b.ids[:0]
		return
	}
	for i := range b.words {
		b.words[i] = 0
	}
}

// trim clears the unused high bits of the final word so that Count and
// word-level comparisons stay correct.
func (b *Bitset) trim() {
	if r := b.n % wordBits; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(r)) - 1
	}
}

// String renders the set as {i1, i2, …} for debugging.
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(i int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
