package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/exact"
	"github.com/probdata/pfcim/internal/gen"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/pfim"
	"github.com/probdata/pfcim/internal/stats"
	"github.com/probdata/pfcim/internal/sweep"
)

// minSupSweep is the paper's Fig. 5/6/12 x-axis: min_sup from 0.2 to 0.6.
func (s *Suite) minSupSweep() []float64 {
	if s.Cfg.Quick {
		return []float64{0.5, 0.3}
	}
	return []float64{0.6, 0.5, 0.4, 0.3, 0.2}
}

// pfctSweep is the Fig. 7 x-axis.
func (s *Suite) pfctSweep() []float64 {
	if s.Cfg.Quick {
		return []float64{0.8, 0.6}
	}
	return []float64{0.5, 0.6, 0.7, 0.8, 0.9}
}

// epsSweep is the Fig. 8/11(a) x-axis: ε from 0.05 to 0.3.
func (s *Suite) epsSweep() []float64 {
	if s.Cfg.Quick {
		return []float64{0.3, 0.1}
	}
	return []float64{0.3, 0.25, 0.2, 0.15, 0.1, 0.05}
}

// deltaSweep is the Fig. 9/11(b) x-axis.
func (s *Suite) deltaSweep() []float64 {
	return s.epsSweep()
}

// ablationSeries are the five algorithms of Fig. 6–9.
var ablationSeries = []string{"MPFCI", "MPFCI-NoCH", "MPFCI-NoSuper", "MPFCI-NoSub", "MPFCI-NoBound"}

// Fig5 compares MPFCI against the Naive baseline (enumerate probabilistic
// frequent itemsets, then estimate each frequent closed probability with
// the sampler) while min_sup varies — Fig. 5(a) Mushroom, 5(b) Quest.
func (s *Suite) Fig5() error {
	for _, ds := range s.Datasets() {
		fmt.Fprintf(s.Cfg.Out, "\nFig 5 (%s): running time vs min_sup, MPFCI vs Naive\n", ds.Name)
		t := newTable(s.Cfg.Out)
		t.row("min_sup", "MPFCI", "Naive", "#PFCI")
		sr := newSeriesRunner(s.Cfg.Budget)
		for _, rel := range s.minSupSweep() {
			opts := s.baseOptions(ds.DB, rel)
			var nRes int
			mpfciCell, err := sr.run("mpfci", func() (time.Duration, error) {
				d, n, _, err := timedRun(ds.DB, opts)
				nRes = n
				return d, err
			})
			if err != nil {
				return err
			}
			naiveCell, err := sr.run("naive", func() (time.Duration, error) {
				start := time.Now()
				_, err := core.NaiveMine(ds.DB, opts)
				return time.Since(start), err
			})
			if err != nil {
				return err
			}
			t.row(f2(rel), mpfciCell, naiveCell, d2(nRes))
		}
		t.flush()
	}
	return nil
}

// Fig6 plots the running time of the five pruning-ablation variants while
// min_sup varies — Fig. 6(a) Mushroom, 6(b) Quest.
func (s *Suite) Fig6() error {
	return s.ablationSweep("Fig 6", "min_sup", s.minSupSweep(), func(ds Dataset, x float64) core.Options {
		return s.baseOptions(ds.DB, x)
	})
}

// Fig7 plots the variants' running time while pfct varies, min_sup fixed
// to the dataset default — Fig. 7(a)/(b).
func (s *Suite) Fig7() error {
	return s.ablationSweep("Fig 7", "pfct", s.pfctSweep(), func(ds Dataset, x float64) core.Options {
		o := s.baseOptions(ds.DB, ds.DefaultMinSup)
		o.PFCT = x
		return o
	})
}

// Fig8 plots the variants' running time while the sampler tolerance ε
// varies — Fig. 8(a)/(b). Only MPFCI-NoBound is expected to react (its
// cost is O(1/ε²) per candidate); the bound-pruning variants rarely sample.
func (s *Suite) Fig8() error {
	return s.ablationSweep("Fig 8", "epsilon", s.epsSweep(), func(ds Dataset, x float64) core.Options {
		o := s.baseOptions(ds.DB, ds.SamplerMinSup)
		o.Epsilon = x
		return o
	})
}

// Fig9 plots the variants' running time while the confidence parameter δ
// varies — Fig. 9(a)/(b). The sampler cost grows only as ln(2/δ), so the
// effect is milder than ε's, as the paper observes.
func (s *Suite) Fig9() error {
	return s.ablationSweep("Fig 9", "delta", s.deltaSweep(), func(ds Dataset, x float64) core.Options {
		o := s.baseOptions(ds.DB, ds.SamplerMinSup)
		o.Delta = x
		return o
	})
}

// ablationSweep renders one Fig. 6–9 panel per dataset. The series run
// through the parameter-sweep engine: each variant's grid is planned into
// groups (sweep.Groups), each group pays one full enumeration and derives
// its remaining points by Evaluator filtering, so the Fig. 7 pfct sweep
// mines each variant once for all thresholds while the min_sup/ε/δ sweeps
// degenerate to one enumeration per point as before. Derived cells carry a
// trailing '*'; the per-series budget applies per group.
func (s *Suite) ablationSweep(fig, xname string, xs []float64, mkOpts func(Dataset, float64) core.Options) error {
	ctx := context.Background()
	for _, ds := range s.Datasets() {
		fmt.Fprintf(s.Cfg.Out, "\n%s (%s): running time vs %s\n", fig, ds.Name, xname)
		t := newTable(s.Cfg.Out)
		t.row(append([]string{xname}, ablationSeries...)...)
		sr := newSeriesRunner(s.Cfg.Budget)
		cols := make(map[string][]string, len(ablationSeries))
		enums, derived := 0, 0
		for _, name := range ablationSeries {
			base := variant(mkOpts(ds, xs[0]), name)
			grid := make([]sweep.Point, len(xs))
			for i, x := range xs {
				o := variant(mkOpts(ds, x), name)
				grid[i] = sweep.Point{MinSup: o.MinSup, PFCT: o.PFCT, Epsilon: o.Epsilon, Delta: o.Delta}
			}
			groups, err := sweep.Groups(grid, base)
			if err != nil {
				return err
			}
			col := make([]string, len(xs))
			for _, members := range groups {
				sub := make([]sweep.Point, len(members))
				for k, i := range members {
					sub[k] = grid[i]
				}
				cell, err := sr.run(name, func() (time.Duration, error) {
					res, err := sweep.Mine(ctx, ds.DB, sub, base)
					if err != nil {
						return 0, err
					}
					enums += res.Stats.FullEnumerations
					derived += res.Stats.DerivedPoints
					var total time.Duration
					for k, i := range members {
						pr := res.Points[k]
						col[i] = formatDuration(pr.Wall)
						if pr.Derived {
							col[i] += "*"
						}
						total += pr.Wall
					}
					return total, nil
				})
				if err != nil {
					return err
				}
				if cell == ">budget" {
					for _, i := range members {
						col[i] = cell
					}
				}
			}
			cols[name] = col
		}
		for i, x := range xs {
			cells := []string{f2(x)}
			for _, name := range ablationSeries {
				cells = append(cells, cols[name][i])
			}
			t.row(cells...)
		}
		t.flush()
		fmt.Fprintf(s.Cfg.Out, "sweep engine: %d full enumerations, %d derived points (* = derived, no re-enumeration)\n",
			enums, derived)
	}
	return nil
}

// Fig10 reports the compression quality: the number of frequent itemsets
// (FI), frequent closed itemsets (FCI) on the exact data, and probabilistic
// frequent itemsets (PFI) and probabilistic frequent closed itemsets (PFCI)
// on the uncertain data, as min_sup decreases. Fig. 10(a) uses Gaussian
// (mean .8, var .1), Fig. 10(b) Gaussian (mean .5, var .5), both over the
// Mushroom-like dataset.
func (s *Suite) Fig10() error {
	grid := []float64{0.3, 0.25, 0.2, 0.15, 0.1}
	if s.Cfg.Quick {
		grid = []float64{0.3, 0.2}
	}
	regimes := []struct {
		label    string
		mean, vr float64
	}{
		{"mean=0.8 var=0.1", 0.8, 0.1},
		{"mean=0.5 var=0.5", 0.5, 0.5},
	}
	d := exact.Dataset(s.Mushroom.Exact)
	for ri, rg := range regimes {
		db := gen.AssignGaussian(s.Mushroom.Exact, rg.mean, rg.vr, s.Cfg.Seed+10)
		fmt.Fprintf(s.Cfg.Out, "\nFig 10(%c) (Mushroom-like, %s): itemset counts vs min_sup\n", 'a'+ri, rg.label)
		t := newTable(s.Cfg.Out)
		t.row("min_sup", "FI", "FCI", "PFI", "PFCI", "FCI/FI", "PFCI/PFI")
		sr := newSeriesRunner(s.Cfg.Budget)
		for _, rel := range grid {
			ms := core.AbsoluteMinSup(len(d), rel)
			var nFI, nFCI, nPFI, nPFCI int
			fiCell, err := sr.run("fi", func() (time.Duration, error) {
				start := time.Now()
				nFI = len(exact.FPGrowth(d, ms))
				return time.Since(start), nil
			})
			if err != nil {
				return err
			}
			if _, err := sr.run("fci", func() (time.Duration, error) {
				start := time.Now()
				nFCI = len(exact.MineClosed(d, ms))
				return time.Since(start), nil
			}); err != nil {
				return err
			}
			if _, err := sr.run("pfi", func() (time.Duration, error) {
				start := time.Now()
				nPFI = len(pfim.Mine(db, pfim.Options{MinSup: ms, PFT: s.Cfg.PFCT}))
				return time.Since(start), nil
			}); err != nil {
				return err
			}
			if _, err := sr.run("pfci", func() (time.Duration, error) {
				opts := s.baseOptions(db, rel)
				start := time.Now()
				res, err := core.Mine(db, opts)
				if err == nil {
					nPFCI = len(res.Itemsets)
				}
				return time.Since(start), err
			}); err != nil {
				return err
			}
			_ = fiCell
			ratio := func(a, b int) string {
				if b == 0 {
					return "-"
				}
				return fmt.Sprintf("%.3f", float64(a)/float64(b))
			}
			t.row(f2(rel), d2(nFI), d2(nFCI), d2(nPFI), d2(nPFCI), ratio(nFCI, nFI), ratio(nPFCI, nPFI))
		}
		t.flush()
	}
	return nil
}

// Fig11 evaluates the approximation quality: precision and recall of the
// sampled result set against the high-accuracy reference (ε = δ = 0.01, the
// paper's stand-in for ground truth), varying ε with δ = 0.1 (Fig. 11a) and
// δ with ε = 0.1 (Fig. 11b), over the default uncertain Mushroom-like
// dataset.
func (s *Suite) Fig11() error {
	ds := s.Mushroom
	rel := ds.SamplerMinSup
	minSup := core.AbsoluteMinSup(ds.DB.N(), rel)

	// Evaluation set: the probabilistic frequent itemsets on which the
	// estimator performs actual Monte-Carlo work (those with at least one
	// non-negligible extension event). On the others, ApproxFCP is exact by
	// construction and contributes nothing to an error measurement.
	pfis := pfim.Mine(ds.DB, pfim.Options{MinSup: minSup, PFT: 0.1})
	type target struct {
		items itemset.Itemset
		exact float64
	}
	var targets []target
	for _, p := range pfis {
		active, err := core.SamplerActiveItemset(ds.DB, p.Items, minSup)
		if err != nil {
			return err
		}
		if !active {
			continue
		}
		exact, err := core.ExactFCP(ds.DB, p.Items, minSup)
		if err != nil {
			// More extension events than exact inclusion–exclusion can
			// handle: skip rather than bias the measurement.
			continue
		}
		targets = append(targets, target{items: p.Items, exact: exact})
		if len(targets) >= 64 {
			break
		}
	}
	if len(targets) == 0 {
		fmt.Fprintf(s.Cfg.Out, "\nFig 11: no sampler-active itemsets at this scale; nothing to measure\n")
		return nil
	}
	// The decision threshold is the median exact Pr_FC of the evaluation
	// set, so roughly half the decisions sit near the boundary where
	// sampling error is observable.
	exacts := make([]float64, len(targets))
	truth := make([]itemset.Itemset, 0, len(targets))
	for i, tg := range targets {
		exacts[i] = tg.exact
	}
	pfct := stats.Summarize(exacts).Median
	if pfct <= 0 {
		pfct = 0.5
	}
	for _, tg := range targets {
		if tg.exact > pfct {
			truth = append(truth, tg.items)
		}
	}

	run := func(eps, delta float64, seed int64) (p, r, mae float64, err error) {
		var found []itemset.Itemset
		sum := 0.0
		for i, tg := range targets {
			est, err := core.EstimateFCP(ds.DB, tg.items, minSup, eps, delta, seed+int64(i))
			if err != nil {
				return 0, 0, 0, err
			}
			d := est - tg.exact
			if d < 0 {
				d = -d
			}
			sum += d
			if est > pfct {
				found = append(found, tg.items)
			}
		}
		p, r = stats.PrecisionRecall(found, truth)
		return p, r, sum / float64(len(targets)), nil
	}

	fmt.Fprintf(s.Cfg.Out, "\nFig 11(a) (Mushroom-like): ApproxFCP quality vs epsilon (delta=0.1, min_sup=%.2f, %d sampler-active itemsets, pfct=median=%.3f)\n",
		rel, len(targets), pfct)
	t := newTable(s.Cfg.Out)
	t.row("epsilon", "precision", "recall", "mean|est-exact|")
	for _, eps := range s.epsSweep() {
		p, r, mae, err := run(eps, 0.1, s.Cfg.Seed)
		if err != nil {
			return err
		}
		t.row(f2(eps), f3(p), f3(r), fmt.Sprintf("%.4f", mae))
	}
	t.flush()

	fmt.Fprintf(s.Cfg.Out, "\nFig 11(b) (Mushroom-like): ApproxFCP quality vs delta (epsilon=0.1)\n")
	t = newTable(s.Cfg.Out)
	t.row("delta", "precision", "recall", "mean|est-exact|")
	for _, delta := range s.deltaSweep() {
		p, r, mae, err := run(0.1, delta, s.Cfg.Seed+1000)
		if err != nil {
			return err
		}
		t.row(f2(delta), f3(p), f3(r), fmt.Sprintf("%.4f", mae))
	}
	t.flush()
	return nil
}

// Fig12 compares the depth-first and breadth-first frameworks while
// min_sup varies — Fig. 12(a)/(b).
func (s *Suite) Fig12() error {
	for _, ds := range s.Datasets() {
		fmt.Fprintf(s.Cfg.Out, "\nFig 12 (%s): running time vs min_sup, DFS vs BFS\n", ds.Name)
		t := newTable(s.Cfg.Out)
		t.row("min_sup", "MPFCI (DFS)", "MPFCI-BFS")
		sr := newSeriesRunner(s.Cfg.Budget)
		for _, rel := range s.minSupSweep() {
			opts := s.baseOptions(ds.DB, rel)
			dfsCell, err := sr.run("dfs", func() (time.Duration, error) {
				d, _, _, err := timedRun(ds.DB, opts)
				return d, err
			})
			if err != nil {
				return err
			}
			bfsOpts := variant(opts, "MPFCI-BFS")
			bfsCell, err := sr.run("bfs", func() (time.Duration, error) {
				d, _, _, err := timedRun(ds.DB, bfsOpts)
				return d, err
			})
			if err != nil {
				return err
			}
			t.row(f2(rel), dfsCell, bfsCell)
		}
		t.flush()
	}
	return nil
}

func resultItemsets(res *core.Result) []itemset.Itemset {
	out := make([]itemset.Itemset, len(res.Itemsets))
	for i, r := range res.Itemsets {
		out[i] = r.Items
	}
	return out
}
