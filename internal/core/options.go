// Package core implements MPFCI, the paper's depth-first
// Bounding–Pruning–Checking miner for probabilistic threshold-based
// frequent closed itemsets, together with the breadth-first variant and the
// ablation switches of Table VII.
package core

import (
	"fmt"
	"io"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/poibin"
)

// Search selects the enumeration framework (Table VII's last column).
type Search int

const (
	// DFS is the depth-first ProbFC enumeration of Fig. 3.
	DFS Search = iota
	// BFS is the level-wise MPFCI-BFS variant. It cannot apply superset or
	// subset pruning (those conditions never arise in level-wise
	// enumeration), matching the paper's experimental setup.
	BFS
)

func (s Search) String() string {
	if s == BFS {
		return "BFS"
	}
	return "DFS"
}

// TidsetMode selects the tidset representation a run works on.
type TidsetMode int

const (
	// TidsetsAuto keeps each per-item tidset in the representation the
	// index chose by density (bitset.ShouldCompact): compressed sorted-id
	// lists for rare items on large databases, dense words otherwise.
	TidsetsAuto TidsetMode = iota
	// TidsetsDense forces every tidset to dense words.
	TidsetsDense
	// TidsetsCompressed forces every tidset to the compressed form.
	TidsetsCompressed
)

func (t TidsetMode) String() string {
	switch t {
	case TidsetsDense:
		return "dense"
	case TidsetsCompressed:
		return "compressed"
	}
	return "auto"
}

// ShardKernel abstracts where per-shard tail PMFs and clause factors are
// computed when Options.Shards ≥ 2. The miner asks the kernel for all N
// per-shard quantities of one logical evaluation at once; the kernel returns
// them in shard order. Implementations (shard.LocalKernel in-process,
// shard.Client sessions over RPC) must compute the canonical per-shard
// arithmetic — poibin.PMFTrunc over the shard's probability slice, and the
// ascending-tid clause-absence partial product with the shard.NegligibleEps
// early exit — so that delegating never changes results. x is the base
// itemset and e an extension item: the target itemset is x plus e when
// e ≥ 0, x alone when e < 0 (x may be nil only with e ≥ 0, meaning the
// single-item set {e}). Returning ok = false declines the call; the miner
// then computes the quantity locally, bit-identically. Implementations must
// be safe for concurrent use by parallel miner workers.
type ShardKernel interface {
	// TailPMFs returns each shard's truncated-at-k support PMF of the
	// target itemset, in shard order.
	TailPMFs(x itemset.Itemset, e itemset.Item, k int) ([][]float64, bool)
	// ClauseFactors returns each shard's partial of the Lemma 4.4 clause
	// absence product Π (1−p_T) over tids(x)\tids(x+e), in shard order.
	ClauseFactors(x itemset.Itemset, e itemset.Item) ([]float64, bool)
}

// Options configures a mining run. MinSup and PFCT are required; the
// remaining fields have sensible defaults applied by normalize.
type Options struct {
	// MinSup is the absolute minimum support threshold (the paper's
	// min_sup; the experiments quote it as a fraction of |UTD| — use
	// AbsoluteMinSup to convert).
	MinSup int
	// PFCT is the probabilistic frequent closed threshold in (0, 1).
	PFCT float64

	// Epsilon is the relative tolerance error ε of ApproxFCP. Default 0.1.
	Epsilon float64
	// Delta is the failure probability δ of ApproxFCP (the paper's
	// probabilistic confidence degree is 1−δ). Default 0.1.
	Delta float64
	// Seed makes the Monte-Carlo estimator deterministic.
	Seed int64

	// Ablation switches (Table VII). All false = full MPFCI.
	DisableCH       bool // drop Chernoff-Hoeffding bound pruning (MPFCI-NoCH)
	DisableSuperset bool // drop superset pruning, Lemma 4.2 (MPFCI-NoSuper)
	DisableSubset   bool // drop subset pruning, Lemma 4.3 (MPFCI-NoSub)
	DisableBounds   bool // drop Pr_FC bound pruning, Lemma 4.4 (MPFCI-NoBound)

	// Search selects DFS (default) or BFS.
	Search Search

	// MaxExactClauses: when a surviving candidate has at most this many
	// non-trivial clauses, the frequent non-closed probability is computed
	// exactly by inclusion–exclusion instead of sampling. 0 means use the
	// default (6); set negative to always sample. The ablation benchmarks
	// in bench_test.go show the crossover: each of the 2^m inclusion-
	// exclusion terms costs a Poisson-binomial tail over the intersected
	// tidset, so exact checking wins only for small clause systems.
	MaxExactClauses int

	// MaxPairClauses caps how many clauses (the most probable ones)
	// participate in the pairwise de Caen/Kwerel bound computation; the
	// bounds remain sound for the full clause set. 0 means default (16).
	MaxPairClauses int

	// Parallelism is the number of worker goroutines of the work-stealing
	// scheduler that distributes enumeration subtrees (DFS framework only;
	// BFS ignores it). 0 or 1 runs serially. Results and all
	// scheduling-independent Stats are byte-identical to a serial run:
	// every node derives its Monte-Carlo sampler seed from (Seed, the
	// node's itemset), never from scheduling order.
	Parallelism int

	// SplitDepth bounds how deep in the enumeration tree a node may still
	// hand children to idle workers: a child is spawned as a task only when
	// its parent has fewer than SplitDepth items and some worker is
	// starving. Deeper nodes always recurse inline, so the common case pays
	// no synchronization. 0 means default (4); negative is an error. Only
	// consulted when Parallelism > 1.
	SplitDepth int

	// TailMemoEntries bounds the per-miner Poisson-binomial tail memo (each
	// entry holds a cloned tidset plus a float, ≈ N/8 + 24 bytes at N
	// transactions; parallel runs keep one memo per worker). 0 means the
	// default (65536); negative disables memoization entirely. The memo
	// trades memory for time — dense data reuses most tails (Fig. 5
	// Mushroom serves ~57 % of lookups from it), so shrinking the cap slows
	// mining but caps resident memory, which is what a memory-constrained
	// daemon worker running many concurrent jobs wants. Values served from
	// the memo are bit-identical to recomputation, so this knob never
	// changes results — it is excluded from CanonicalKey.
	TailMemoEntries int

	// Tidsets forces the tidset representation of the run: dense words,
	// compressed sorted-id lists, or (default) the density-driven choice
	// the index already made. Every bitset operation is representation-
	// independent by contract, so results are byte-identical across modes —
	// this is a pure execution knob (cleared by Canonical), kept for the
	// crosscheck representation-equivalence suite and memory experiments.
	Tidsets TidsetMode

	// TailKernel selects the Poisson-binomial tail algorithm. KernelAuto
	// (default) runs the O(nk) DP below poibin.ConvCrossoverN probabilities
	// and the divide-and-conquer convolution tree above it. Forcing
	// KernelConv on inputs above the leaf size changes results within
	// numerical tolerance (the merge order differs from the DP), so unlike
	// Tidsets this knob participates in CanonicalKey.
	TailKernel poibin.Kernel

	// Shards partitions the transaction space into that many contiguous
	// ranges (shard.Layout) and evaluates every Poisson-binomial tail as
	// per-shard truncated coefficient vectors merged by convolution, and
	// every Lemma 4.4 clause absence product as per-shard partials folded in
	// shard order — the arithmetic the distributed coordinator/worker mode
	// runs over RPC, available in-process so tests and benches need no
	// cluster. 0 or 1 is the unsharded single-node path (bit-for-bit
	// untouched). Values ≥ 2 regroup the IEEE sums exactly like forcing the
	// convolution tail kernel does, so results agree with unsharded mining
	// within numerical tolerance but are not bitwise equal; like TailKernel,
	// Shards is therefore result-affecting and participates in CanonicalKey
	// (the canonical key's shard-layout field). For any fixed N ≥ 2, results
	// are byte-identical across the inline path, a shard.LocalKernel, and
	// the distributed HTTP path — the equivalence the crosscheck shard suite
	// pins.
	Shards int

	// ShardKernel, when non-nil and Shards ≥ 2, delegates per-shard tail
	// and clause computation (the service layer installs the RPC-backed
	// shard.Client session here; shard.LocalKernel is the in-process
	// implementation). The kernel performs the same canonical arithmetic the
	// inline sharded path performs, so installing one never changes results
	// — it is a pure execution knob, cleared by Canonical. A kernel may
	// decline a call (ok = false), in which case the miner computes the
	// quantity locally, bit-identically.
	ShardKernel ShardKernel

	// Trace, when non-nil, receives a line-per-event log of the DFS
	// enumeration — node visits, every pruning decision, and every
	// evaluation verdict — the walk-through the paper's Fig. 4 depicts.
	// Tracing forces serial DFS (Parallelism is ignored).
	Trace io.Writer

	// Tracer, when non-nil, records phase-level wall-time spans of the run
	// — candidate construction, per-node DFS expansion (with depth and
	// worker id), and the checking cascade split into bound check, exact
	// inclusion–exclusion, and Monte-Carlo sampling. The aggregated Profile
	// is attached to Result, and Tracer.WriteChromeTrace exports the
	// detailed spans for chrome://tracing. Unlike Trace it composes with
	// parallelism (each worker records into its own lock-free buffer) and
	// never changes results: it only reads the monotonic clock, so output
	// is byte-identical with the tracer on or off (DESIGN §11). Like the
	// other execution knobs it is cleared by Canonical.
	Tracer *obs.Tracer
}

const (
	defaultEpsilon         = 0.1
	defaultDelta           = 0.1
	defaultMaxExactClauses = 6
	defaultMaxPairClauses  = 16
	defaultSplitDepth      = 4

	// zeroClauseEps: clauses whose probability falls below this are dropped
	// from the union computation and accounted as slack; the slack is
	// orders of magnitude below every ε the estimator supports.
	zeroClauseEps = 1e-15
)

func (o Options) normalize() (Options, error) {
	if o.MinSup < 1 {
		return o, fmt.Errorf("core: MinSup must be ≥ 1, got %d", o.MinSup)
	}
	if o.PFCT <= 0 || o.PFCT >= 1 {
		return o, fmt.Errorf("core: PFCT must be in (0,1), got %v", o.PFCT)
	}
	if o.Epsilon == 0 {
		o.Epsilon = defaultEpsilon
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return o, fmt.Errorf("core: Epsilon must be in (0,1), got %v", o.Epsilon)
	}
	if o.Delta == 0 {
		o.Delta = defaultDelta
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		return o, fmt.Errorf("core: Delta must be in (0,1), got %v", o.Delta)
	}
	if o.MaxExactClauses == 0 {
		o.MaxExactClauses = defaultMaxExactClauses
	}
	if o.MaxPairClauses == 0 {
		o.MaxPairClauses = defaultMaxPairClauses
	}
	if o.SplitDepth < 0 {
		return o, fmt.Errorf("core: SplitDepth must be ≥ 0, got %d", o.SplitDepth)
	}
	if o.SplitDepth == 0 {
		o.SplitDepth = defaultSplitDepth
	}
	if o.TailMemoEntries == 0 {
		o.TailMemoEntries = defaultTailMemoEntries
	}
	if o.Tidsets < TidsetsAuto || o.Tidsets > TidsetsCompressed {
		return o, fmt.Errorf("core: unknown TidsetMode %d", o.Tidsets)
	}
	if o.TailKernel < poibin.KernelAuto || o.TailKernel > poibin.KernelConv {
		return o, fmt.Errorf("core: unknown TailKernel %d", o.TailKernel)
	}
	if o.Shards < 0 {
		return o, fmt.Errorf("core: Shards must be ≥ 0, got %d", o.Shards)
	}
	if o.Shards == 1 {
		// One shard covers the whole transaction range, which is exactly the
		// unsharded computation; collapse so both spellings share a canonical
		// key and the trivially-bitwise single-node path.
		o.Shards = 0
	}
	return o, nil
}

// AbsoluteMinSup converts a relative support threshold (fraction of the
// database size, as the paper's experiments quote it) to the absolute count
// used by Options.MinSup.
func AbsoluteMinSup(n int, rel float64) int {
	ms := int(rel*float64(n) + 0.5)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Method records how a result's frequent closed probability was resolved.
type Method int

const (
	// MethodExact means inclusion–exclusion produced the exact value.
	MethodExact Method = iota
	// MethodSampled means the Karp–Luby ApproxFCP estimate was used.
	MethodSampled
	// MethodBoundAccepted means the Lemma 4.4 lower bound already exceeded
	// pfct, so the value reported is the bound midpoint.
	MethodBoundAccepted
	// MethodNoClauses means no extension event had positive probability, so
	// Pr_FC(X) = Pr_F(X) exactly.
	MethodNoClauses
	// MethodBoundRejected means the Lemma 4.4 upper bound already ruled the
	// candidate out, so the value reported is the bound midpoint. Rejected
	// evaluations only surface through traces and ablation tooling — Result
	// holds accepted itemsets only.
	MethodBoundRejected
)

func (m Method) String() string {
	switch m {
	case MethodExact:
		return "exact"
	case MethodSampled:
		return "sampled"
	case MethodBoundAccepted:
		return "bound-accepted"
	case MethodNoClauses:
		return "no-clauses"
	case MethodBoundRejected:
		return "bound-rejected"
	}
	return "unknown"
}

// ResultItem is one probabilistic frequent closed itemset.
type ResultItem struct {
	Items itemset.Itemset
	// Prob is the (estimated) frequent closed probability Pr_FC.
	Prob float64
	// Lower and Upper bracket Pr_FC when bounds were computed; for sampled
	// results they are the analytic Lemma 4.4 sandwich.
	Lower, Upper float64
	// FreqProb is the exact frequent probability Pr_F (an upper bound on
	// Prob by definition).
	FreqProb float64
	Method   Method
}

// Result is the full outcome of a mining run.
type Result struct {
	Itemsets []ResultItem
	Stats    Stats
	Options  Options
	// Profile is the phase-level wall-time attribution of the run; non-nil
	// only when Options.Tracer was set. It is observability metadata, not
	// part of the mined result: ResultJSON excludes it, and byte-identity
	// guarantees (caching, determinism tests) are stated over Itemsets,
	// Stats, and Options.
	Profile *obs.Profile
}

// Stats counts the work the pruning rules saved; the ablation experiments
// (Fig. 6–9) read these.
type Stats struct {
	NodesVisited    int // enumeration-tree nodes expanded
	CandidateItems  int // single items surviving the candidate phase
	CHPruned        int // extensions cut by Chernoff-Hoeffding bound (Lemma 4.1)
	FreqPruned      int // extensions cut by exact Pr_F ≤ pfct
	SupersetPruned  int // subtrees cut by superset pruning (Lemma 4.2)
	SubsetPruned    int // sibling groups cut by subset pruning (Lemma 4.3)
	BoundRejected   int // candidates rejected by the Pr_FC upper bound (Lemma 4.4)
	BoundAccepted   int // candidates accepted by the Pr_FC lower bound
	ExactUnions     int // candidates resolved by inclusion-exclusion
	Sampled         int // candidates resolved by ApproxFCP sampling
	SamplesDrawn    int // total Monte-Carlo samples drawn
	Evaluated       int // candidates whose Pr_FC was evaluated at all
	TailEvaluations int // Poisson-binomial tails computed (memo misses)
	TailMemoHits    int // Poisson-binomial tails served from the memo
	ClauseEvaluated int // clause probabilities computed

	// Incremental-run counters (MineIncremental; always zero otherwise):
	// subtrees spliced from the reuse cache instead of re-mined, and result
	// items replayed from those splices. Work counters above cover only the
	// nodes actually re-mined, which is the point — the incremental saving
	// is directly readable as the drop in TailEvaluations/NodesVisited.
	SubtreesReused int // enumeration subtrees replayed from the reuse cache
	SplicedResults int // result items emitted by cache replay

	// Scheduling-dependent counters. Results and all other Stats are
	// byte-identical for every Parallelism setting, but these may vary
	// between runs: TasksSpawned/TasksStolen count work-stealing decisions
	// (which depend on which workers happened to be idle), and the
	// TailEvaluations/TailMemoHits split shifts with the per-worker memo
	// partition (their sum, total tail lookups, is invariant).
	TasksSpawned int // subtrees handed to the work-stealing pool
	TasksStolen  int // tasks taken from another worker's deque
}

// Delta returns the field-wise difference s − prev. Callers that share one
// accumulating Stats across phases (the sweep engine's Evaluator) snapshot
// before and after a phase and attribute the delta to it.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		NodesVisited:    s.NodesVisited - prev.NodesVisited,
		CandidateItems:  s.CandidateItems - prev.CandidateItems,
		CHPruned:        s.CHPruned - prev.CHPruned,
		FreqPruned:      s.FreqPruned - prev.FreqPruned,
		SupersetPruned:  s.SupersetPruned - prev.SupersetPruned,
		SubsetPruned:    s.SubsetPruned - prev.SubsetPruned,
		BoundRejected:   s.BoundRejected - prev.BoundRejected,
		BoundAccepted:   s.BoundAccepted - prev.BoundAccepted,
		ExactUnions:     s.ExactUnions - prev.ExactUnions,
		Sampled:         s.Sampled - prev.Sampled,
		SamplesDrawn:    s.SamplesDrawn - prev.SamplesDrawn,
		Evaluated:       s.Evaluated - prev.Evaluated,
		TailEvaluations: s.TailEvaluations - prev.TailEvaluations,
		TailMemoHits:    s.TailMemoHits - prev.TailMemoHits,
		ClauseEvaluated: s.ClauseEvaluated - prev.ClauseEvaluated,
		SubtreesReused:  s.SubtreesReused - prev.SubtreesReused,
		SplicedResults:  s.SplicedResults - prev.SplicedResults,
		TasksSpawned:    s.TasksSpawned - prev.TasksSpawned,
		TasksStolen:     s.TasksStolen - prev.TasksStolen,
	}
}

// add accumulates another Stats into s (used when merging parallel
// sub-miners).
func (s *Stats) add(o Stats) {
	s.NodesVisited += o.NodesVisited
	s.CandidateItems += o.CandidateItems
	s.CHPruned += o.CHPruned
	s.FreqPruned += o.FreqPruned
	s.SupersetPruned += o.SupersetPruned
	s.SubsetPruned += o.SubsetPruned
	s.BoundRejected += o.BoundRejected
	s.BoundAccepted += o.BoundAccepted
	s.ExactUnions += o.ExactUnions
	s.Sampled += o.Sampled
	s.SamplesDrawn += o.SamplesDrawn
	s.Evaluated += o.Evaluated
	s.TailEvaluations += o.TailEvaluations
	s.TailMemoHits += o.TailMemoHits
	s.ClauseEvaluated += o.ClauseEvaluated
	s.SubtreesReused += o.SubtreesReused
	s.SplicedResults += o.SplicedResults
	s.TasksSpawned += o.TasksSpawned
	s.TasksStolen += o.TasksStolen
}
