package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/probdata/pfcim/internal/itemset"
)

// TestDequeOrdering pins the work-stealing discipline: the owner pops the
// newest task (depth-first, cache-warm), a thief takes the oldest (the
// shallowest, hence largest, subtree).
func TestDequeOrdering(t *testing.T) {
	s := newScheduler(2)
	w, thief := s.workers[0], s.workers[1]
	for i := 1; i <= 3; i++ {
		w.push(task{startPos: i})
	}
	if got, ok := thief.stealFrom(w); !ok || got.startPos != 1 {
		t.Fatalf("steal got startPos=%d ok=%v, want oldest (1)", got.startPos, ok)
	}
	if got, ok := w.pop(); !ok || got.startPos != 3 {
		t.Fatalf("pop got startPos=%d ok=%v, want newest (3)", got.startPos, ok)
	}
	if got, ok := w.pop(); !ok || got.startPos != 2 {
		t.Fatalf("pop got startPos=%d ok=%v, want 2", got.startPos, ok)
	}
	if _, ok := w.pop(); ok {
		t.Fatal("pop from empty deque succeeded")
	}
	if _, ok := thief.stealFrom(w); ok {
		t.Fatal("steal from empty deque succeeded")
	}
}

// TestSchedulerAbortKeepsFirstError: concurrent failures must surface the
// first error and flip the pool into drain mode.
func TestSchedulerAbortKeepsFirstError(t *testing.T) {
	s := newScheduler(1)
	first, second := errors.New("first"), errors.New("second")
	s.abort(first)
	s.abort(second)
	if s.firstErr != first {
		t.Fatalf("firstErr = %v, want %v", s.firstErr, first)
	}
}

// TestParallelSpawnsTasks: a parallel run seeds the pool with every
// first-level subtree, so TasksSpawned covers at least the candidate items.
func TestParallelSpawnsTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := randomDB(rng, 18, 8)
	res, err := Mine(db, Options{MinSup: 2, PFCT: 0.3, Seed: 3, Parallelism: 4, SplitDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TasksSpawned < res.Stats.CandidateItems {
		t.Fatalf("TasksSpawned = %d < CandidateItems = %d", res.Stats.TasksSpawned, res.Stats.CandidateItems)
	}
}

func TestSplitDepthValidation(t *testing.T) {
	if _, err := (Options{MinSup: 1, PFCT: 0.5, SplitDepth: -1}).normalize(); err == nil {
		t.Error("negative SplitDepth accepted")
	}
	o, err := (Options{MinSup: 1, PFCT: 0.5}).normalize()
	if err != nil {
		t.Fatal(err)
	}
	if o.SplitDepth != defaultSplitDepth {
		t.Errorf("SplitDepth default = %d, want %d", o.SplitDepth, defaultSplitDepth)
	}
}

// TestNodeSeedStability: the per-node sampler seed is a pure function of
// (run seed, itemset) and separates both inputs.
func TestNodeSeedStability(t *testing.T) {
	a := itemset.Itemset{1, 5, 9}
	if nodeSeed(7, a) != nodeSeed(7, itemset.Itemset{1, 5, 9}) {
		t.Error("nodeSeed not deterministic")
	}
	if nodeSeed(7, a) == nodeSeed(8, a) {
		t.Error("nodeSeed ignores the run seed")
	}
	if nodeSeed(7, a) == nodeSeed(7, itemset.Itemset{1, 5}) {
		t.Error("nodeSeed ignores the itemset suffix")
	}
	if nodeSeed(7, itemset.Itemset{1, 2}) == nodeSeed(7, itemset.Itemset{2, 1}) {
		// Itemsets are canonically sorted, so this collision could only be
		// hit through a bug in the enumeration; keep the property anyway.
		t.Error("nodeSeed is order-insensitive")
	}
}
