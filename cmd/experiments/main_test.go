package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestExperimentsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "experiments")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build failed: %v\n%s", err, out)
	}
	out, err := exec.Command(bin,
		"-exp", "example1",
		"-mushroom-scale", "0.005", "-quest-scale", "0.002", "-quick",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("experiments failed: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"Table II", "Table III", "0.8754", "0.8100"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if err := exec.Command(bin, "-exp", "nonsense").Run(); err == nil {
		t.Error("unknown experiment should exit non-zero")
	}
}
