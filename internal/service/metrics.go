package service

import (
	"encoding/json"
	"expvar"
	"net/http"

	"github.com/probdata/pfcim/internal/core"
)

// metrics is the daemon's counter set, served by /metrics. The counters are
// expvar vars created per Server rather than published to the global expvar
// registry, so multiple servers (tests, embedding) never collide on
// registration; the /metrics handler renders them in expvar's JSON shape.
type metrics struct {
	JobsQueued   expvar.Int // jobs accepted into the queue
	JobsRunning  expvar.Int // jobs currently executing (gauge)
	JobsDone     expvar.Int // jobs finished successfully (cache hits included)
	JobsFailed   expvar.Int // jobs finished with an error, timeout, or panic
	JobsCanceled expvar.Int // jobs canceled by DELETE

	CacheHits   expvar.Int // submissions served from the result cache
	CacheMisses expvar.Int // submissions that had to mine

	SweepsDone          expvar.Int // sweep jobs finished successfully
	SweepPointsCached   expvar.Int // sweep grid points answered from the cache at submit
	SweepPointsComputed expvar.Int // sweep grid points the engine had to produce
	SweepEnumerations   expvar.Int // full enumerations sweep jobs actually ran

	DatasetsRegistered expvar.Int // distinct datasets ever registered

	MineWallMillis expvar.Int // cumulative wall time spent mining

	// Cumulative core.Stats counters across every finished job — the
	// daemon-level view of Fig. 6–9's per-run statistics.
	NodesVisited    expvar.Int
	TailEvaluations expvar.Int
	TailMemoHits    expvar.Int
	SamplesDrawn    expvar.Int
	Evaluated       expvar.Int
}

// addStats accumulates one finished job's mining statistics.
func (m *metrics) addStats(s core.Stats) {
	m.NodesVisited.Add(int64(s.NodesVisited))
	m.TailEvaluations.Add(int64(s.TailEvaluations))
	m.TailMemoHits.Add(int64(s.TailMemoHits))
	m.SamplesDrawn.Add(int64(s.SamplesDrawn))
	m.Evaluated.Add(int64(s.Evaluated))
}

// vars lists every counter with its exported name, in serving order.
func (m *metrics) vars() []struct {
	Name string
	Var  *expvar.Int
} {
	return []struct {
		Name string
		Var  *expvar.Int
	}{
		{"jobs_queued", &m.JobsQueued},
		{"jobs_running", &m.JobsRunning},
		{"jobs_done", &m.JobsDone},
		{"jobs_failed", &m.JobsFailed},
		{"jobs_canceled", &m.JobsCanceled},
		{"cache_hits", &m.CacheHits},
		{"cache_misses", &m.CacheMisses},
		{"sweeps_done", &m.SweepsDone},
		{"sweep_points_cached", &m.SweepPointsCached},
		{"sweep_points_computed", &m.SweepPointsComputed},
		{"sweep_enumerations", &m.SweepEnumerations},
		{"datasets_registered", &m.DatasetsRegistered},
		{"mine_wall_ms", &m.MineWallMillis},
		{"nodes_visited", &m.NodesVisited},
		{"tail_evaluations", &m.TailEvaluations},
		{"tail_memo_hits", &m.TailMemoHits},
		{"samples_drawn", &m.SamplesDrawn},
		{"evaluated", &m.Evaluated},
	}
}

// snapshot returns the current counter values by name.
func (m *metrics) snapshot() map[string]int64 {
	out := make(map[string]int64)
	for _, v := range m.vars() {
		out[v.Name] = v.Var.Value()
	}
	return out
}

// serveHTTP renders the counters as a flat JSON object, the same shape
// expvar serves, under the daemon's own names.
func (m *metrics) serveHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m.snapshot())
}
