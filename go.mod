module github.com/probdata/pfcim

go 1.22
