// Models contrasts the four uncertainty-aware mining semantics this
// repository implements, on the paper's Table IV database (the running
// example plus two low-confidence tuples):
//
//  1. expected-support frequent itemsets (U-Apriori / UF-growth),
//  2. probabilistic frequent itemsets (Definition 3.5),
//  3. "probabilistic frequent closed" itemsets under the competing
//     probabilistic-support definition of related work, and
//  4. probabilistic frequent closed itemsets (this paper).
//
// It reproduces the paper's §II argument: the competing definition's
// result set changes when the threshold moves from 0.9 to 0.8 even though
// the underlying frequent probabilities satisfy both, while the
// Pr_FC-based result stays {a b c}, {a b c d} with stable probabilities.
package main

import (
	"fmt"
	"log"

	pfcim "github.com/probdata/pfcim"
)

func main() {
	db := pfcim.PaperExampleExtended()
	const minSup = 2

	fmt.Println("Table IV database:")
	for i, tr := range db.Transactions() {
		fmt.Printf("  T%d: %-12v p=%.1f\n", i+1, tr.Items, tr.Prob)
	}

	fmt.Printf("\n(1) expected-support model, minExpSup = %d:\n", minSup)
	for _, p := range pfcim.UFGrowth(db, minSup) {
		fmt.Printf("  %-12v expSup=%.2f\n", p.Items, p.ExpectedSupport)
	}

	fmt.Printf("\n(2) probabilistic frequent model, min_sup=%d, pft=0.8: ", minSup)
	pfis, err := pfcim.MineFrequent(db, pfcim.FrequentOptions{MinSup: minSup, PFT: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d itemsets (every subset shows up — no compression)\n", len(pfis))

	fmt.Println("\n(3) competing probabilistic-support closed model:")
	for _, pft := range []float64{0.9, 0.8} {
		res := pfcim.MineProbSupportClosed(db, minSup, pft)
		fmt.Printf("  pft=%.1f:", pft)
		for _, r := range res {
			fmt.Printf("  %v(psup=%d)", r.Items, r.PSup)
		}
		fmt.Println()
	}
	fmt.Println("  → the result set shifts with the threshold, and its extra members")
	fmt.Println("    have low true frequent closed probability:")
	for _, key := range [][]int{{0}, {0, 1}} {
		x := pfcim.NewItemset(key...)
		p, err := pfcim.FreqClosedProb(db, x, minSup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    Pr_FC(%v) = %.3f\n", x, p)
	}

	fmt.Println("\n(4) this paper's probabilistic frequent closed model:")
	for _, pfct := range []float64{0.8, 0.7, 0.6} {
		res, err := pfcim.Mine(db, pfcim.Options{MinSup: minSup, PFCT: pfct, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  pfct=%.1f:", pfct)
		for _, r := range res.Itemsets {
			fmt.Printf("  %v(Pr_FC=%.3f)", r.Items, r.Prob)
		}
		fmt.Println()
	}
	fmt.Println("  → the same two itemsets at every threshold, with exact semantics.")
}
