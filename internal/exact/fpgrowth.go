package exact

import (
	"sort"

	"github.com/probdata/pfcim/internal/itemset"
)

// fpNode is one node of an FP-tree.
type fpNode struct {
	item     itemset.Item
	count    int
	parent   *fpNode
	children map[itemset.Item]*fpNode
	next     *fpNode // header-table chain
}

// fpTree is the prefix-tree of Han et al.'s FP-growth, with a header table
// threading all nodes of each item.
type fpTree struct {
	root   *fpNode
	heads  map[itemset.Item]*fpNode
	counts map[itemset.Item]int
	order  []itemset.Item // items by descending frequency (insertion order)
}

func newFPTree() *fpTree {
	return &fpTree{
		root:   &fpNode{children: map[itemset.Item]*fpNode{}},
		heads:  map[itemset.Item]*fpNode{},
		counts: map[itemset.Item]int{},
	}
}

// insert adds one (ordered) transaction with the given count.
func (t *fpTree) insert(items []itemset.Item, count int) {
	node := t.root
	for _, it := range items {
		child, ok := node.children[it]
		if !ok {
			child = &fpNode{item: it, parent: node, children: map[itemset.Item]*fpNode{}}
			child.next = t.heads[it]
			t.heads[it] = child
			node.children[it] = child
		}
		child.count += count
		node = child
	}
	for _, it := range items {
		t.counts[it] += count
	}
}

// weightedTrans is a transaction with a multiplicity, used for conditional
// pattern bases.
type weightedTrans struct {
	items []itemset.Item
	count int
}

// buildFPTree constructs a tree over the weighted transactions, keeping
// only items with support ≥ minSup and ordering each transaction by
// descending global frequency (ties by item id) — the canonical FP-tree
// construction.
func buildFPTree(trans []weightedTrans, minSup int) *fpTree {
	counts := map[itemset.Item]int{}
	for _, wt := range trans {
		for _, it := range wt.items {
			counts[it] += wt.count
		}
	}
	var keep []itemset.Item
	for it, c := range counts {
		if c >= minSup {
			keep = append(keep, it)
		}
	}
	sort.Slice(keep, func(i, j int) bool {
		if counts[keep[i]] != counts[keep[j]] {
			return counts[keep[i]] > counts[keep[j]]
		}
		return keep[i] < keep[j]
	})
	rank := map[itemset.Item]int{}
	for i, it := range keep {
		rank[it] = i
	}
	tree := newFPTree()
	tree.order = keep
	buf := make([]itemset.Item, 0, 32)
	for _, wt := range trans {
		buf = buf[:0]
		for _, it := range wt.items {
			if _, ok := rank[it]; ok {
				buf = append(buf, it)
			}
		}
		sort.Slice(buf, func(i, j int) bool { return rank[buf[i]] < rank[buf[j]] })
		if len(buf) > 0 {
			tree.insert(buf, wt.count)
		}
	}
	return tree
}

// FPGrowth mines all frequent itemsets with support ≥ minSup using the
// FP-growth algorithm [13]. Its output is identical to Apriori's.
func FPGrowth(d Dataset, minSup int) []Pattern {
	if minSup < 1 {
		minSup = 1
	}
	trans := make([]weightedTrans, len(d))
	for i, t := range d {
		trans[i] = weightedTrans{items: t, count: 1}
	}
	var out []Pattern
	fpMine(buildFPTree(trans, minSup), nil, minSup, &out)
	SortPatterns(out)
	return out
}

// fpMine recursively mines tree with the given suffix.
func fpMine(tree *fpTree, suffix itemset.Itemset, minSup int, out *[]Pattern) {
	// Process items in reverse frequency order (least frequent first), the
	// standard FP-growth recursion order.
	for i := len(tree.order) - 1; i >= 0; i-- {
		it := tree.order[i]
		sup := tree.counts[it]
		if sup < minSup {
			continue
		}
		pattern := suffix.Add(it)
		*out = append(*out, Pattern{Items: pattern, Support: sup})
		// Conditional pattern base: prefix paths of every node of it.
		var base []weightedTrans
		for node := tree.heads[it]; node != nil; node = node.next {
			var path []itemset.Item
			for p := node.parent; p != nil && p.parent != nil; p = p.parent {
				path = append(path, p.item)
			}
			if len(path) > 0 {
				base = append(base, weightedTrans{items: path, count: node.count})
			}
		}
		if len(base) > 0 {
			cond := buildFPTree(base, minSup)
			if len(cond.order) > 0 {
				fpMine(cond, pattern, minSup, out)
			}
		}
	}
}
