// Package service implements pfcimd, the long-lived mining daemon: a
// content-hashed, versioned dataset registry, an async job queue running
// the MPFCI miner on a bounded worker pool, a result cache keyed by
// (dataset version hash, canonical options), and an observability surface
// (/healthz, /metrics, structured logs). See DESIGN.md §9 for the
// architecture and the determinism argument that makes the cache sound,
// and §15 for the versioned-lineage model behind live data.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/probdata/pfcim/internal/uncertain"
)

// Registry errors the HTTP layer maps to status codes.
var (
	ErrNoSuchDataset = errors.New("service: no such dataset")
	ErrNoSuchVersion = errors.New("service: no such dataset version")
	// ErrImmutable rejects appends to a dataset registered as immutable
	// (mapped to 409 Conflict on the wire).
	ErrImmutable = errors.New("service: dataset is immutable")
)

// Dataset is one registered uncertain database — a single immutable version
// within a lineage. ID is derived from the content hash, so registering the
// same data twice (regardless of source — upload, path, or append) yields
// the same Dataset.
type Dataset struct {
	// ID is the first 16 hex digits of the SHA-256 of the canonical text
	// serialization — enough that a collision needs ~2^32 distinct datasets
	// in one daemon, far beyond any registry this process can hold.
	ID string
	// Lineage is the ID of the lineage root (version 1). A freshly
	// registered dataset roots its own lineage, so Lineage == ID there;
	// appended versions share their root's Lineage.
	Lineage string
	// Version is the 1-based position within the lineage. Versions are
	// append-only: version N+1 is exactly version N's transactions followed
	// by the appended batch.
	Version int
	// Immutable marks the lineage as closed to appends (a property of the
	// root registration, inherited by the whole lineage).
	Immutable bool
	// Stats are the Table VIII-style characteristics, computed once at
	// registration and reported to clients.
	Stats uncertain.Stats
	// RegisteredAt is the first registration time of this version.
	RegisteredAt time.Time

	db *uncertain.DB
}

// DB returns the registered database. The registry retains ownership; the
// database is immutable after construction, so concurrent mining jobs share
// it without copying — that sharing is the point of the daemon.
func (d *Dataset) DB() *uncertain.DB { return d.db }

// lineage tracks one append-only version chain. versions is ascending by
// Version; versions[0] is the root.
type lineage struct {
	root      string
	immutable bool
	versions  []*Dataset
}

// Registry is the thread-safe dataset store. Every version is directly
// addressable by its content hash; lineages tie versions into append-only
// chains addressed by the root hash plus a version selector ("id@latest",
// "id@3").
type Registry struct {
	mu       sync.RWMutex
	byID     map[string]*Dataset
	lineages map[string]*lineage // keyed by root ID
	// persist, when set, write-throughs every mutation to the durable store
	// before acknowledging it; a failed write rolls the mutation back so the
	// registry never claims state the disk does not hold.
	persist *persister
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:     make(map[string]*Dataset),
		lineages: make(map[string]*lineage),
	}
}

// hashDB content-hashes a database via its canonical text serialization
// (sorted items, %g probabilities — see uncertain.Write), so equal
// databases hash equal regardless of how they were delivered.
func hashDB(db *uncertain.DB) (string, error) {
	h := sha256.New()
	if err := uncertain.Write(h, db); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil))[:16], nil
}

// Register adds db under its content hash as the root of a fresh lineage
// and returns the Dataset plus whether it was newly added (false: the same
// content was already registered — as a root or as an appended version —
// and the existing record is returned unchanged, immutability included).
func (r *Registry) Register(db *uncertain.DB, immutable bool) (*Dataset, bool, error) {
	id, err := hashDB(db)
	if err != nil {
		return nil, false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.byID[id]; ok {
		return d, false, nil
	}
	d := &Dataset{
		ID:           id,
		Lineage:      id,
		Version:      1,
		Immutable:    immutable,
		Stats:        db.Stats(),
		RegisteredAt: time.Now(),
		db:           db,
	}
	lin := &lineage{root: id, immutable: immutable, versions: []*Dataset{d}}
	if r.persist != nil {
		if err := r.persist.saveDataset(d, lin); err != nil {
			return nil, false, fmt.Errorf("service: durable store rejected registration: %w", err)
		}
	}
	r.byID[id] = d
	r.lineages[id] = lin
	return d, true, nil
}

// RegisterText parses the text interchange format from rd and registers the
// result.
func (r *Registry) RegisterText(rd io.Reader, immutable bool) (*Dataset, bool, error) {
	db, err := uncertain.Read(rd)
	if err != nil {
		return nil, false, err
	}
	return r.Register(db, immutable)
}

// RegisterPath loads the text interchange format from a local file and
// registers the result. The HTTP layer only routes here when the daemon was
// started with path loading enabled.
func (r *Registry) RegisterPath(path string, immutable bool) (*Dataset, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("service: load dataset: %w", err)
	}
	defer f.Close()
	return r.RegisterText(f, immutable)
}

// Append creates the next version of the lineage ref resolves into: the
// latest version's transactions followed by extra, content-hashed and
// registered like any dataset. Appending the same batch to the same latest
// version is idempotent (the existing version returns with fresh=false);
// appending to an immutable lineage fails with ErrImmutable. The new
// version becomes the lineage's @latest.
func (r *Registry) Append(ref string, extra []uncertain.Transaction) (*Dataset, bool, error) {
	if len(extra) == 0 {
		return nil, false, fmt.Errorf("service: append requires at least one transaction")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	base, err := r.resolveLocked(ref)
	if err != nil {
		return nil, false, err
	}
	lin := r.lineages[base.Lineage]
	if lin == nil { // cannot happen: every dataset's lineage is recorded
		return nil, false, ErrNoSuchDataset
	}
	if lin.immutable {
		return nil, false, fmt.Errorf("%w: %s", ErrImmutable, lin.root)
	}
	latest := lin.versions[len(lin.versions)-1]
	// Retry idempotency: if the latest version is exactly the previous one
	// plus this batch, the append already committed (the client lost the
	// response and resent) — return the existing version instead of growing
	// the lineage by a duplicate batch.
	if latest.Version > 1 {
		prev := lin.versions[latest.Version-2]
		if prev.DB().N()+len(extra) == latest.DB().N() {
			if db, err := uncertain.NewDB(append(prev.DB().Transactions(), extra...)); err == nil {
				if id, err := hashDB(db); err == nil && id == latest.ID {
					return latest, false, nil
				}
			}
		}
	}
	trans := append(latest.DB().Transactions(), extra...)
	db, err := uncertain.NewDB(trans)
	if err != nil {
		return nil, false, err
	}
	id, err := hashDB(db)
	if err != nil {
		return nil, false, err
	}
	if d, ok := r.byID[id]; ok {
		if d.Lineage == lin.root {
			return d, false, nil // same batch appended twice
		}
		// A cross-lineage content collision: the appended content is already
		// registered as (a version of) a different dataset. A Dataset belongs
		// to exactly one lineage, so this cannot become a new version here.
		return nil, false, fmt.Errorf("service: appended content is already registered as dataset %s of a different lineage", d.ID)
	}
	d := &Dataset{
		ID:           id,
		Lineage:      lin.root,
		Version:      latest.Version + 1,
		Stats:        db.Stats(),
		RegisteredAt: time.Now(),
		db:           db,
	}
	lin.versions = append(lin.versions, d)
	if r.persist != nil {
		if err := r.persist.saveDataset(d, lin); err != nil {
			lin.versions = lin.versions[:len(lin.versions)-1]
			return nil, false, fmt.Errorf("service: durable store rejected append: %w", err)
		}
	}
	r.byID[id] = d
	return d, true, nil
}

// AppendText parses the text interchange format from rd and appends the
// transactions to the lineage ref resolves into.
func (r *Registry) AppendText(ref string, rd io.Reader) (*Dataset, bool, error) {
	db, err := uncertain.Read(rd)
	if err != nil {
		return nil, false, err
	}
	return r.Append(ref, db.Transactions())
}

// AppendPath loads transactions from a local file and appends them. The
// HTTP layer only routes here when path loading is enabled.
func (r *Registry) AppendPath(ref, path string) (*Dataset, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("service: load dataset: %w", err)
	}
	defer f.Close()
	return r.AppendText(ref, f)
}

// Resolve parses a dataset reference and returns the version it denotes:
//
//	"id"        — the exact version with that content hash
//	"id@latest" — the newest version of the lineage containing id
//	"id@N"      — version N (1-based) of the lineage containing id
//
// The base id may be any version's hash, not just the root's, so clients
// can navigate a lineage from whichever version they hold.
func (r *Registry) Resolve(ref string) (*Dataset, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.resolveLocked(ref)
}

func (r *Registry) resolveLocked(ref string) (*Dataset, error) {
	base, sel, hasSel := strings.Cut(ref, "@")
	d, ok := r.byID[base]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDataset, ref)
	}
	if !hasSel {
		return d, nil
	}
	lin := r.lineages[d.Lineage]
	if lin == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDataset, ref)
	}
	if sel == "latest" {
		return lin.versions[len(lin.versions)-1], nil
	}
	n, err := strconv.Atoi(sel)
	if err != nil {
		return nil, fmt.Errorf("service: bad version selector %q (want \"latest\" or a version number)", sel)
	}
	if n < 1 || n > len(lin.versions) {
		return nil, fmt.Errorf("%w: %q has versions 1..%d", ErrNoSuchVersion, base, len(lin.versions))
	}
	return lin.versions[n-1], nil
}

// IsLatestRef reports whether ref follows its lineage rather than pinning a
// version.
func IsLatestRef(ref string) bool { return strings.HasSuffix(ref, "@latest") }

// LatestVersion returns the newest version number of the lineage containing
// id (0 when id is unknown).
func (r *Registry) LatestVersion(id string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byID[id]
	if !ok {
		return 0
	}
	lin := r.lineages[d.Lineage]
	if lin == nil {
		return 0
	}
	return lin.versions[len(lin.versions)-1].Version
}

// Get returns the dataset version with the given exact id.
func (r *Registry) Get(id string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byID[id]
	return d, ok
}

// List returns every registered dataset version, ordered by id.
func (r *Registry) List() []*Dataset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Dataset, 0, len(r.byID))
	for _, d := range r.byID {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered dataset versions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}
