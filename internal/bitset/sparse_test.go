package bitset

import (
	"math/rand"
	"testing"
)

// randSet returns a random dense bitset plus the same contents compacted.
func randSet(rng *rand.Rand, n int, rate float64) (*Bitset, *Bitset) {
	d := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < rate {
			d.Set(i)
		}
	}
	return d, d.Compacted()
}

// forms returns the four dense/sparse operand pairings of (x, y).
func forms(xd, xs, yd, ys *Bitset) [][2]*Bitset {
	return [][2]*Bitset{{xd, yd}, {xd, ys}, {xs, yd}, {xs, ys}}
}

// TestCrossFormOps: every binary operation must agree across all four
// representation pairings, using the dense×dense result as oracle.
func TestCrossFormOps(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		xd, xs := randSet(rng, n, rng.Float64())
		yd, ys := randSet(rng, n, rng.Float64())
		wantAnd := And(xd, yd)
		wantCnt := wantAnd.Count()
		wantSub := IsSubset(xd, yd)
		wantEq := Equal(xd, yd)
		wantNotIdx := AndNot(xd, yd).Indices()
		wantOr := Or(xd, yd)
		for fi, pair := range forms(xd, xs, yd, ys) {
			x, y := pair[0], pair[1]
			got := And(x, y)
			if !Equal(got, wantAnd) {
				t.Fatalf("trial %d form %d: And mismatch: %v vs %v", trial, fi, got, wantAnd)
			}
			if c := AndCount(x, y); c != wantCnt {
				t.Fatalf("trial %d form %d: AndCount=%d want %d", trial, fi, c, wantCnt)
			}
			for _, k := range []int{0, 1, wantCnt, wantCnt + 1, n} {
				if got, want := AndCountAtLeast(x, y, k), wantCnt >= k || k <= 0; got != want {
					t.Fatalf("trial %d form %d: AndCountAtLeast(k=%d)=%v want %v", trial, fi, k, got, want)
				}
			}
			if s := IsSubset(x, y); s != wantSub {
				t.Fatalf("trial %d form %d: IsSubset=%v want %v", trial, fi, s, wantSub)
			}
			if e := Equal(x, y); e != wantEq {
				t.Fatalf("trial %d form %d: Equal=%v want %v", trial, fi, e, wantEq)
			}
			var diff []int
			ForEachDiff(x, y, func(i int) bool { diff = append(diff, i); return true })
			if len(diff) != len(wantNotIdx) {
				t.Fatalf("trial %d form %d: ForEachDiff len %d want %d", trial, fi, len(diff), len(wantNotIdx))
			}
			for i := range diff {
				if diff[i] != wantNotIdx[i] {
					t.Fatalf("trial %d form %d: ForEachDiff[%d]=%d want %d", trial, fi, i, diff[i], wantNotIdx[i])
				}
			}
			gotNot := AndNot(x, y)
			if gotNot.Count() != len(wantNotIdx) || !Equal(gotNot, AndNot(xd, yd)) {
				t.Fatalf("trial %d form %d: AndNot mismatch", trial, fi)
			}
			if !Equal(Or(x, y), wantOr) {
				t.Fatalf("trial %d form %d: Or mismatch", trial, fi)
			}
		}
	}
}

// TestCrossFormAndInto covers AndInto's aliasing and representation-switch
// matrix: dst fresh, dst==x, dst==y, for every operand form pairing.
func TestCrossFormAndInto(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(300)
		xd, xs := randSet(rng, n, rng.Float64())
		yd, ys := randSet(rng, n, rng.Float64())
		want := And(xd, yd)
		wantCnt := want.Count()
		for fi, pair := range forms(xd, xs, yd, ys) {
			// dst fresh (dense-born and sparse-born).
			for _, dst := range []*Bitset{New(n), New(n).Compacted()} {
				if c := AndInto(dst, pair[0], pair[1]); c != wantCnt || !Equal(dst, want) {
					t.Fatalf("trial %d form %d: fresh-dst AndInto c=%d want %d", trial, fi, c, wantCnt)
				}
			}
			// dst aliases x.
			x := pair[0].Clone()
			if c := AndInto(x, x, pair[1]); c != wantCnt || !Equal(x, want) {
				t.Fatalf("trial %d form %d: dst==x AndInto mismatch (c=%d)", trial, fi, c)
			}
			// dst aliases y.
			y := pair[1].Clone()
			if c := AndInto(y, pair[0], y); c != wantCnt || !Equal(y, want) {
				t.Fatalf("trial %d form %d: dst==y AndInto mismatch (c=%d)", trial, fi, c)
			}
		}
	}
}

// TestHashCanonicalAcrossForms: the memo key must not depend on the
// representation.
func TestHashCanonicalAcrossForms(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(2000)
		d, s := randSet(rng, n, rng.Float64()*0.2)
		if d.Hash() != s.Hash() {
			t.Fatalf("trial %d: dense hash %x != sparse hash %x (n=%d count=%d)", trial, d.Hash(), s.Hash(), n, d.Count())
		}
	}
	// Empty and full sets, including capacities not divisible by 64.
	for _, n := range []int{0, 1, 63, 64, 65, 500} {
		d := New(n)
		if d.Hash() != d.Compacted().Hash() {
			t.Fatalf("empty n=%d: hash differs across forms", n)
		}
		d.SetAll()
		if d.Hash() != d.Compacted().Hash() {
			t.Fatalf("full n=%d: hash differs across forms", n)
		}
	}
}

// TestSparseMutators: Set/Clear/Test/Reset on the sparse form.
func TestSparseMutators(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := 500
	d := New(n)
	s := New(n).Compacted()
	for op := 0; op < 2000; op++ {
		i := rng.Intn(n)
		if rng.Intn(2) == 0 {
			d.Set(i)
			s.Set(i)
		} else {
			d.Clear(i)
			s.Clear(i)
		}
		if d.Test(i) != s.Test(i) {
			t.Fatalf("op %d: Test(%d) differs", op, i)
		}
	}
	if !Equal(d, s) || d.Count() != s.Count() {
		t.Fatalf("mutator drift: %v vs %v", d, s)
	}
	s.Reset()
	if s.Any() || s.Count() != 0 || !s.IsSparse() {
		t.Fatalf("Reset broke sparse set: %v", s)
	}
	s.SetAll()
	if s.Count() != n || s.IsSparse() {
		t.Fatalf("SetAll: count=%d sparse=%v", s.Count(), s.IsSparse())
	}
}

// TestCopyFromAcrossForms: CopyFrom must adopt the source representation
// and reuse destination storage.
func TestCopyFromAcrossForms(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	n := 400
	d, s := randSet(rng, n, 0.3)
	for _, dst := range []*Bitset{New(n), New(n).Compacted()} {
		dst.CopyFrom(d)
		if !Equal(dst, d) || dst.IsSparse() {
			t.Fatalf("CopyFrom dense: mismatch")
		}
		dst.CopyFrom(s)
		if !Equal(dst, s) || !dst.IsSparse() {
			t.Fatalf("CopyFrom sparse: mismatch")
		}
	}
}

// TestAndBatchMatchesAndInto: the column sweep must agree with individual
// intersections for dense operands, and the fallback must handle sparse
// mixes.
func TestAndBatchMatchesAndInto(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(500)
		parentD, parentS := randSet(rng, n, rng.Float64())
		m := 1 + rng.Intn(20)
		var srcs []*Bitset
		for i := 0; i < m; i++ {
			sd, ss := randSet(rng, n, rng.Float64())
			if rng.Intn(3) == 0 {
				srcs = append(srcs, ss)
			} else {
				srcs = append(srcs, sd)
			}
		}
		for _, parent := range []*Bitset{parentD, parentS} {
			dsts := make([]*Bitset, m)
			counts := make([]int, m)
			for i := range dsts {
				dsts[i] = New(n)
			}
			AndBatch(dsts, counts, parent, srcs)
			for i := range srcs {
				want := New(n)
				wc := AndInto(want, parent, srcs[i])
				if counts[i] != wc || !Equal(dsts[i], want) {
					t.Fatalf("trial %d src %d: batch (%d) vs AndInto (%d) mismatch", trial, i, counts[i], wc)
				}
			}
		}
	}
}

// TestPoolReuse: the pool must recycle sets and carve structs/words from
// slabs; steady-state Get/Put with intersections must not allocate.
func TestPoolReuse(t *testing.T) {
	n := 1000
	p := NewPool(n)
	x := New(n)
	y := New(n)
	for i := 0; i < n; i += 3 {
		x.Set(i)
	}
	for i := 0; i < n; i += 2 {
		y.Set(i)
	}
	var held []*Bitset
	for i := 0; i < 200; i++ {
		b := p.Get()
		if b.Len() != n {
			t.Fatalf("pool set has capacity %d, want %d", b.Len(), n)
		}
		AndInto(b, x, y)
		held = append(held, b)
	}
	for _, b := range held {
		p.Put(b)
	}
	allocs := testing.AllocsPerRun(100, func() {
		b := p.Get()
		AndInto(b, x, y)
		p.Put(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state pool Get/AndInto/Put allocated %v times per run, want 0", allocs)
	}
	// Foreign capacities are dropped, not pooled.
	p.Put(New(n + 1))
	p.Put(nil)
}

// TestShouldCompact pins the density threshold contract.
func TestShouldCompact(t *testing.T) {
	if ShouldCompact(10, 512) {
		t.Fatal("small capacities must stay dense")
	}
	if !ShouldCompact(10, 4096) {
		t.Fatal("10/4096 is sparse territory")
	}
	if ShouldCompact(4096/wordBits, 4096) {
		t.Fatal("threshold must be strict")
	}
}

// TestNewSparseValidation: malformed id slices must panic.
func TestNewSparseValidation(t *testing.T) {
	for _, ids := range [][]uint32{{5, 5}, {7, 3}, {999}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSparse(%v) did not panic", ids)
				}
			}()
			NewSparse(100, ids)
		}()
	}
	b := NewSparse(100, []uint32{1, 50, 99})
	if b.Count() != 3 || !b.Test(50) || b.Test(2) {
		t.Fatalf("NewSparse contents wrong: %v", b)
	}
}
