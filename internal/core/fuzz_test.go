package core

import (
	"encoding/json"
	"testing"
)

// FuzzOptionsJSON feeds hostile wire forms through the OptionsJSON →
// Options → Canonical pipeline and pins the serialization contracts: no
// panic on any input, Canonical is idempotent, CanonicalKey is a pure
// function of the canonical form, and the JSON round trip preserves it.
// These are exactly the properties pfcimd's result cache keys rely on.
//
// Reproduce a failing input with
//
//	go test ./internal/core -run FuzzOptionsJSON/<hash>
func FuzzOptionsJSON(f *testing.F) {
	f.Add([]byte(`{"min_sup": 2, "pfct": 0.8}`))
	f.Add([]byte(`{"min_sup": 1, "pfct": 0.5, "search": "BFS", "seed": 42}`))
	f.Add([]byte(`{"min_sup": 3, "pfct": 0.1, "epsilon": 0.05, "delta": 0.01, "max_exact_clauses": -1}`))
	f.Add([]byte(`{"min_sup": 2, "pfct": 0.8, "parallelism": 8, "split_depth": 2, "tail_memo_entries": -1}`))
	f.Add([]byte(`{"pfct": 1e308, "min_sup": -5, "search": "dfs"}`))
	f.Add([]byte(`{"search": "sideways"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var oj OptionsJSON
		if err := json.Unmarshal(data, &oj); err != nil {
			return
		}
		o, err := oj.Options()
		if err != nil {
			return // invalid Search string: rejected, not panicked
		}
		c, err := o.Canonical()
		if err != nil {
			return // invalid thresholds: rejected by normalization
		}
		key, err := o.CanonicalKey()
		if err != nil {
			t.Fatalf("CanonicalKey failed after Canonical succeeded: %v", err)
		}

		// Idempotence: canonicalizing a canonical form is the identity.
		c2, err := c.Canonical()
		if err != nil {
			t.Fatalf("Canonical not closed: %v", err)
		}
		if c2 != c {
			t.Fatalf("Canonical not idempotent:\n first %+v\nsecond %+v", c, c2)
		}
		cKey, err := c.CanonicalKey()
		if err != nil || cKey != key {
			t.Fatalf("CanonicalKey differs across canonicalization: %q vs %q (err=%v)", key, cKey, err)
		}

		// Wire round trip: JSON() → Options() lands on the same canonical
		// form, so a cache keyed on CanonicalKey is stable across the wire.
		rt, err := c.JSON().Options()
		if err != nil {
			t.Fatalf("round trip rejected canonical options: %v", err)
		}
		rtKey, err := rt.CanonicalKey()
		if err != nil || rtKey != key {
			t.Fatalf("round trip changed the canonical key: %q vs %q (err=%v)", key, rtKey, err)
		}
	})
}
