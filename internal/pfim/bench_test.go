package pfim

import (
	"testing"

	"github.com/probdata/pfcim/internal/gen"
	"github.com/probdata/pfcim/internal/uncertain"
)

// Strategy comparison: the bottom-up DFS miner, the TODIS-style top-down
// miner, and the two expected-support algorithms.

func benchDB() *uncertain.DB {
	data := gen.MushroomLike(0.08, 9)
	return gen.AssignGaussian(data, 0.8, 0.1, 10)
}

func BenchmarkMineBottomUp(b *testing.B) {
	db := benchDB()
	opts := Options{MinSup: db.N() * 3 / 10, PFT: 0.8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Mine(db, opts); len(got) == 0 {
			b.Fatal("no itemsets")
		}
	}
}

func BenchmarkMineTopDown(b *testing.B) {
	db := benchDB()
	opts := Options{MinSup: db.N() * 3 / 10, PFT: 0.8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := MineTopDown(db, opts); len(got) == 0 {
			b.Fatal("no itemsets")
		}
	}
}

func BenchmarkExpectedSupportTidsets(b *testing.B) {
	db := benchDB()
	minExp := float64(db.N()) * 0.25
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ExpectedSupportMine(db, minExp); len(got) == 0 {
			b.Fatal("no itemsets")
		}
	}
}

func BenchmarkExpectedSupportUFGrowth(b *testing.B) {
	db := benchDB()
	minExp := float64(db.N()) * 0.25
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := UFGrowth(db, minExp); len(got) == 0 {
			b.Fatal("no itemsets")
		}
	}
}
