package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
	"github.com/probdata/pfcim/internal/world"
)

// topKOracle ranks every itemset by exact Pr_FC.
func topKOracle(t *testing.T, db *uncertain.DB, minSup, k int) []world.Result {
	t.Helper()
	all, err := world.MineExact(db, minSup, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Prob != all[j].Prob {
			return all[i].Prob > all[j].Prob
		}
		return itemset.Compare(all[i].Items, all[j].Items) < 0
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

func TestMineTopKPaperExample(t *testing.T) {
	db := uncertain.PaperExample()
	got, err := MineTopK(db, 2, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !itemset.Equal(got[0].Items, itemset.FromInts(0, 1, 2)) {
		t.Fatalf("top-1 = %v, want {a b c}", got)
	}
	if math.Abs(got[0].Prob-0.8754) > 1e-6 {
		t.Errorf("top-1 prob = %v", got[0].Prob)
	}
	got, err = MineTopK(db, 2, 5, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Only two itemsets have non-zero Pr_FC.
	if len(got) != 2 {
		t.Fatalf("top-5 returned %d itemsets, want 2: %v", len(got), got)
	}
}

func TestMineTopKAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		db := randomDB(rng, 8, 5)
		minSup := rng.Intn(2) + 1
		k := rng.Intn(4) + 1
		want := topKOracle(t, db, minSup, k)
		got, err := MineTopK(db, minSup, k, Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, oracle %d\ngot=%v\nwant=%v",
				trial, len(got), len(want), got, want)
		}
		// Compare the probability profile rather than the identity of
		// tied/overlapping itemsets: the estimated probabilities may break
		// ties differently than the exact ones.
		for i := range got {
			// Bound-accepted results guarantee only their interval; other
			// methods must be close to the oracle value.
			inBounds := want[i].Prob >= got[i].Lower-1e-6 && want[i].Prob <= got[i].Upper+1e-6
			if math.Abs(got[i].Prob-want[i].Prob) > 0.05 && !inBounds {
				t.Fatalf("trial %d rank %d: prob %v [%v,%v] vs oracle %v (got %v, want %v)",
					trial, i, got[i].Prob, got[i].Lower, got[i].Upper, want[i].Prob, got[i].Items, want[i].Items)
			}
		}
	}
}

func TestMineTopKDegenerate(t *testing.T) {
	db := uncertain.PaperExample()
	if got, err := MineTopK(db, 2, 0, Options{Seed: 1}); err != nil || got != nil {
		t.Errorf("k=0 should return nothing: %v, %v", got, err)
	}
	// minSup beyond the database: empty result.
	got, err := MineTopK(db, 10, 3, Options{Seed: 1})
	if err != nil || len(got) != 0 {
		t.Errorf("unsatisfiable minSup: %v, %v", got, err)
	}
	// Results must be sorted by descending probability.
	got, err = MineTopK(db, 1, 10, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Prob > got[i-1].Prob+1e-12 {
			t.Fatalf("top-k not sorted: %v", got)
		}
	}
}
