package main

// Smoke test of the real daemon binary: start pfcimd on a free port,
// register the paper's Table II dataset over HTTP, mine Example 1.2, and
// assert Pr_FC(abcd) = 0.81 — the same oracle the CI smoke step uses —
// then check graceful shutdown on SIGTERM.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pfcimd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build failed: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary on port 0 and scans its structured log
// for the listen address.
func startDaemon(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	return startDaemonBin(t, buildBinary(t), args...)
}

// startDaemonBin is startDaemon with a pre-built binary, so kill-restart
// tests reuse one build across daemon generations.
func startDaemonBin(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			var entry struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if err := json.Unmarshal(sc.Bytes(), &entry); err == nil && entry.Msg == "pfcimd listening" {
				addrCh <- entry.Addr
			}
			// Keep draining so the daemon never blocks on a full pipe.
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never reported its listen address")
		return nil, ""
	}
}

const tableII = "0 1 2 3 : 0.9\n0 1 2 : 0.6\n0 1 2 : 0.7\n0 1 2 3 : 0.9\n"

func TestDaemonSmokePaperExample(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon smoke test skipped in -short mode")
	}
	cmd, base := startDaemon(t)

	// Register Table II.
	resp, err := http.Post(base+"/v1/datasets", "text/plain", strings.NewReader(tableII))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("dataset registration: status %d", resp.StatusCode)
	}
	var ds struct {
		ID              string `json:"id"`
		NumTransactions int    `json:"num_transactions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ds.NumTransactions != 4 {
		t.Fatalf("dataset = %+v, want Table II's 4 transactions", ds)
	}

	// Mine Example 1.2 (min_sup 2, pfct 0.8) through the job API.
	submit := func() (status int, job map[string]any) {
		body := fmt.Sprintf(`{"dataset":%q,"options":{"min_sup":2,"pfct":0.8}}`, ds.ID)
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, job
	}
	status, job := submit()
	if status != http.StatusAccepted {
		t.Fatalf("job submit: status %d, want 202", status)
	}

	// Poll to completion.
	id, _ := job["id"].(string)
	var final map[string]any
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		final = nil
		if err := json.NewDecoder(r.Body).Decode(&final); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if s, _ := final["status"].(string); s == "done" || s == "failed" || s == "canceled" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s, _ := final["status"].(string); s != "done" {
		t.Fatalf("job = %v, want done", final)
	}

	// Example 1.2's oracle: results are {abc: 0.8754, abcd: 0.81}.
	result := final["result"].(map[string]any)
	itemsets := result["itemsets"].([]any)
	if len(itemsets) != 2 {
		t.Fatalf("got %d itemsets, want 2", len(itemsets))
	}
	abcd := itemsets[1].(map[string]any)
	if prob := abcd["prob"].(float64); math.Abs(prob-0.81) > 1e-9 {
		t.Errorf("Pr_FC(abcd) = %v, want 0.81", prob)
	}

	// Repeat submission is a cache hit served terminal at submit time.
	status, job = submit()
	if status != http.StatusOK {
		t.Errorf("repeat submit: status %d, want 200 (cache hit)", status)
	}
	if cached, _ := job["cached"].(bool); !cached {
		t.Errorf("repeat submit not served from cache: %v", job)
	}

	// Observability endpoints.
	for _, path := range []string{"/healthz", "/metrics"} {
		r, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, r.StatusCode)
		}
		r.Body.Close()
	}

	// Graceful shutdown: SIGTERM → clean exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon exit after SIGTERM: %v, want clean exit", err)
		}
	case <-time.After(30 * time.Second):
		t.Error("daemon did not exit within the grace period")
	}
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon smoke test skipped in -short mode")
	}
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-log-level", "nonsense").CombinedOutput()
	if err == nil {
		t.Fatalf("bad -log-level should fail, got:\n%s", out)
	}
}
