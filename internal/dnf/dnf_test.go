package dnf

import (
	"math"
	"math/rand"

	"github.com/probdata/pfcim/internal/poibin"
	"testing"
	"testing/quick"

	"github.com/probdata/pfcim/internal/bitset"
)

// randomSystem builds a random clause system over ≤ maxN tuples.
func randomSystem(rng *rand.Rand, maxN, maxM int) *System {
	n := rng.Intn(maxN) + 2
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = rng.Float64()*0.9 + 0.05
	}
	base := bitset.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.8 {
			base.Set(i)
		}
	}
	if !base.Any() {
		base.Set(0)
	}
	m := rng.Intn(maxM) + 1
	clauses := make([]*bitset.Bitset, m)
	for ci := range clauses {
		b := bitset.New(n)
		base.ForEach(func(tid int) bool {
			if rng.Float64() < 0.6 {
				b.Set(tid)
			}
			return true
		})
		clauses[ci] = b
	}
	minSup := rng.Intn(base.Count()) + 1
	sys, err := NewSystem(base, probs, minSup, clauses)
	if err != nil {
		panic(err)
	}
	return sys
}

// unionByEnumeration computes Pr(∪C_i) by enumerating every world over the
// base tuples.
func unionByEnumeration(s *System) float64 {
	tids := s.Base.Indices()
	total := 0.0
	for mask := 0; mask < 1<<uint(len(tids)); mask++ {
		p := 1.0
		present := bitset.New(s.Base.Len())
		for bi, tid := range tids {
			if mask&(1<<uint(bi)) != 0 {
				p *= s.Probs[tid]
				present.Set(tid)
			} else {
				p *= 1 - s.Probs[tid]
			}
		}
		satisfied := false
		for _, b := range s.Clauses {
			if bitset.IsSubset(present, b) && bitset.AndCount(present, b) >= s.MinSup {
				satisfied = true
				break
			}
		}
		if satisfied {
			total += p
		}
	}
	return total
}

func TestClauseProbAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		s := randomSystem(rng, 8, 1)
		got := s.ClauseProb(0)
		want := unionByEnumeration(s)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: ClauseProb = %v, enumeration = %v", trial, got, want)
		}
	}
}

func TestExactUnionAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		s := randomSystem(rng, 8, 5)
		got, err := s.ExactUnion()
		if err != nil {
			t.Fatal(err)
		}
		want := unionByEnumeration(s)
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("trial %d: ExactUnion = %v, enumeration = %v", trial, got, want)
		}
	}
}

func TestExactUnionLimits(t *testing.T) {
	s := randomSystem(rand.New(rand.NewSource(3)), 5, 2)
	s.Clauses = make([]*bitset.Bitset, ExactUnionLimit+1)
	for i := range s.Clauses {
		s.Clauses[i] = s.Base.Clone()
	}
	if _, err := s.ExactUnion(); err == nil {
		t.Error("ExactUnion beyond the clause limit should fail")
	}
	s.Clauses = nil
	u, err := s.ExactUnion()
	if err != nil || u != 0 {
		t.Errorf("ExactUnion of empty system = %v, %v", u, err)
	}
}

func TestPairProbSymmetricAndDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randomSystem(rng, 8, 4)
	m := s.M()
	for i := 0; i < m; i++ {
		if got, want := s.PairProb(i, i), s.ClauseProb(i); math.Abs(got-want) > 1e-15 {
			t.Errorf("PairProb(%d,%d) = %v, want clause prob %v", i, i, got, want)
		}
		for j := i + 1; j < m; j++ {
			if a, b := s.PairProb(i, j), s.PairProb(j, i); math.Abs(a-b) > 1e-15 {
				t.Errorf("PairProb not symmetric: %v vs %v", a, b)
			}
			// Pr(C_i ∩ C_j) ≤ min(Pr(C_i), Pr(C_j)).
			if p := s.PairProb(i, j); p > s.ClauseProb(i)+1e-12 || p > s.ClauseProb(j)+1e-12 {
				t.Errorf("pair prob exceeds clause prob")
			}
		}
	}
}

func TestBoundsSandwichExactUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSystem(rng, 9, 6)
		exact, err := s.ExactUnion()
		if err != nil {
			return false
		}
		sums := s.ComputeSums()
		lo, hi := UnionBounds(sums)
		return lo <= exact+1e-9 && exact <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDeCaenKwerelIndividually(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		s := randomSystem(rng, 8, 5)
		exact, err := s.ExactUnion()
		if err != nil {
			t.Fatal(err)
		}
		sums := s.ComputeSums()
		if lo := DeCaenLower(sums); lo > exact+1e-9 {
			t.Fatalf("de Caen lower bound %v exceeds exact union %v", lo, exact)
		}
		if hi := KwerelUpper(sums); hi < exact-1e-9 {
			t.Fatalf("Kwerel upper bound %v below exact union %v", hi, exact)
		}
	}
}

func TestKarpLubyAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		s := randomSystem(rng, 10, 6)
		exact, err := s.ExactUnion()
		if err != nil {
			t.Fatal(err)
		}
		sums := s.ComputeSums()
		n := SampleSize(s.M(), 0.05, 0.05)
		est, err := s.KarpLuby(poibin.NewSM64(uint64(trial)), sums.Clause, n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-exact) > 0.05 {
			t.Errorf("trial %d: KarpLuby = %v, exact = %v (n=%d)", trial, est, exact, n)
		}
	}
}

func TestKarpLubyDegenerate(t *testing.T) {
	s := randomSystem(rand.New(rand.NewSource(7)), 6, 3)
	rng := poibin.NewSM64(8)
	// Zero samples / zero clauses.
	if est, err := s.KarpLuby(rng, make([]float64, s.M()), 100); err != nil || est != 0 {
		t.Errorf("all-zero clause probs should estimate 0, got %v, %v", est, err)
	}
	if _, err := s.KarpLuby(rng, []float64{1}, 10); s.M() != 1 && err == nil {
		t.Error("mismatched clause prob vector should fail")
	}
}

func TestSampleSize(t *testing.T) {
	if SampleSize(0, 0.1, 0.1) != 0 {
		t.Error("no clauses should need no samples")
	}
	n1 := SampleSize(10, 0.1, 0.1)
	n2 := SampleSize(10, 0.05, 0.1)
	if n2 <= n1 {
		t.Error("halving epsilon must increase the sample size")
	}
	// 1/ε² scaling.
	if ratio := float64(n2) / float64(n1); math.Abs(ratio-4) > 0.01 {
		t.Errorf("sample size ratio for ε/2 = %v, want 4", ratio)
	}
	n3 := SampleSize(10, 0.1, 0.05)
	if n3 <= n1 {
		t.Error("lowering delta must increase the sample size")
	}
}
