package experiments

import (
	"fmt"
	"sort"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/uncertain"
	"github.com/probdata/pfcim/internal/world"
)

// Table7 prints the algorithm feature matrix of the paper's Table VII:
// which pruning rules each experimental variant uses and which framework
// it runs on.
func (s *Suite) Table7() error {
	fmt.Fprintf(s.Cfg.Out, "\nTable VII: individual features of the compared algorithms\n")
	t := newTable(s.Cfg.Out)
	t.row("Algorithm", "CH", "Super", "Sub", "PB", "Framework")
	rows := []struct {
		name string
		opts core.Options
	}{
		{"MPFCI", core.Options{}},
		{"MPFCI-NoCH", core.Options{DisableCH: true}},
		{"MPFCI-NoBound", core.Options{DisableBounds: true}},
		{"MPFCI-NoSuper", core.Options{DisableSuperset: true}},
		{"MPFCI-NoSub", core.Options{DisableSubset: true}},
		{"MPFCI-BFS", core.Options{Search: core.BFS, DisableSuperset: true, DisableSubset: true}},
	}
	mark := func(disabled bool) string {
		if disabled {
			return "-"
		}
		return "yes"
	}
	for _, r := range rows {
		super := r.opts.DisableSuperset || r.opts.Search == core.BFS
		sub := r.opts.DisableSubset || r.opts.Search == core.BFS
		t.row(r.name, mark(r.opts.DisableCH), mark(super), mark(sub), mark(r.opts.DisableBounds), r.opts.Search.String())
	}
	t.flush()
	return nil
}

// Table8 prints the dataset characteristics (the paper's Table VIII) for
// the generated workloads at the configured scale.
func (s *Suite) Table8() error {
	fmt.Fprintf(s.Cfg.Out, "\nTable VIII: characteristics of datasets\n")
	t := newTable(s.Cfg.Out)
	t.row("Dataset", "NumTrans", "NumItems", "AvgLen", "MaxLen", "MeanProb")
	for _, ds := range s.Datasets() {
		st := ds.DB.Stats()
		t.row(ds.Name, d2(st.NumTransactions), d2(st.NumItems),
			f2(st.AvgLength), d2(st.MaxLength), f2(st.MeanProb))
	}
	t.flush()
	return nil
}

// Example1 reproduces the running example end to end: Table II's database,
// the possible worlds of Table III with their frequent closed itemsets,
// and the Example 1.2 / 4.3 result set.
func (s *Suite) Example1() error {
	db := uncertain.PaperExample()
	const minSup = 2

	fmt.Fprintf(s.Cfg.Out, "\nTable II: the running-example uncertain database\n")
	t := newTable(s.Cfg.Out)
	t.row("TID", "Transaction", "Prob")
	for i := 0; i < db.N(); i++ {
		tr := db.Transaction(i)
		t.row(fmt.Sprintf("T%d", i+1), tr.Items.String(), f2(tr.Prob))
	}
	t.flush()

	fmt.Fprintf(s.Cfg.Out, "\nTable III: possible worlds, probabilities and frequent closed itemsets (min_sup=%d)\n", minSup)
	t = newTable(s.Cfg.Out)
	t.row("World", "Transactions", "Prob", "Frequent closed itemsets")
	type row struct {
		mask  uint32
		prob  float64
		items string
		fcis  string
	}
	var rows []row
	if err := world.Enumerate(db, func(w world.World) {
		var trs string
		for i := 0; i < db.N(); i++ {
			if w.Mask&(1<<uint(i)) != 0 {
				if trs != "" {
					trs += ","
				}
				trs += fmt.Sprintf("T%d", i+1)
			}
		}
		fcis, err := world.FrequentClosedIn(db, w, minSup)
		if err != nil {
			return
		}
		var fstr string
		for _, f := range fcis {
			if fstr != "" {
				fstr += " "
			}
			fstr += f.String()
		}
		if fstr == "" {
			fstr = "{}"
		}
		rows = append(rows, row{mask: w.Mask, prob: w.Prob, items: trs, fcis: fstr})
	}); err != nil {
		return err
	}
	// Present fuller worlds first, as the paper's Table III does.
	sort.Slice(rows, func(i, j int) bool { return rows[i].mask > rows[j].mask })
	for i, r := range rows {
		if r.items == "" {
			r.items = "(empty)"
		}
		t.row(fmt.Sprintf("PW%d", i+1), r.items, fmt.Sprintf("%.4f", r.prob), r.fcis)
	}
	t.flush()

	res, err := core.Mine(db, core.Options{MinSup: minSup, PFCT: s.Cfg.PFCT, Seed: s.Cfg.Seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(s.Cfg.Out, "\nExample 1.2 result (min_sup=%d, pfct=%.1f):\n", minSup, s.Cfg.PFCT)
	t = newTable(s.Cfg.Out)
	t.row("Itemset", "Pr_FC", "Pr_F", "Method")
	for _, r := range res.Itemsets {
		t.row(r.Items.String(), fmt.Sprintf("%.4f", r.Prob), fmt.Sprintf("%.4f", r.FreqProb), r.Method.String())
	}
	t.flush()
	return nil
}

// Fig4 reproduces the paper's Fig. 4: the depth-first enumeration trace of
// the running example, with every pruning decision annotated.
func (s *Suite) Fig4() error {
	db := uncertain.PaperExample()
	fmt.Fprintf(s.Cfg.Out, "\nFig 4: ProbFC enumeration trace on the Table II database (min_sup=2, pfct=%.1f)\n", s.Cfg.PFCT)
	opts := core.Options{MinSup: 2, PFCT: s.Cfg.PFCT, Seed: s.Cfg.Seed, Trace: s.Cfg.Out}
	res, err := core.Mine(db, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.Cfg.Out, "result:")
	for _, r := range res.Itemsets {
		fmt.Fprintf(s.Cfg.Out, " {%v fcp: %.4f}", r.Items, r.Prob)
	}
	fmt.Fprintln(s.Cfg.Out)
	return nil
}

// All runs every experiment in paper order.
func (s *Suite) All() error {
	steps := []struct {
		name string
		fn   func() error
	}{
		{"example1", s.Example1},
		{"table7", s.Table7},
		{"table8", s.Table8},
		{"fig4", s.Fig4},
		{"fig5", s.Fig5},
		{"fig6", s.Fig6},
		{"fig7", s.Fig7},
		{"fig8", s.Fig8},
		{"fig9", s.Fig9},
		{"fig10", s.Fig10},
		{"fig11", s.Fig11},
		{"fig12", s.Fig12},
	}
	for _, st := range steps {
		if err := st.fn(); err != nil {
			return fmt.Errorf("%s: %w", st.name, err)
		}
	}
	return nil
}

// Run dispatches one experiment by name ("all", "example1", "table7",
// "table8", "fig5" … "fig12", "extra", "profile").
func (s *Suite) Run(name string) error {
	switch name {
	case "all", "":
		return s.All()
	case "example1":
		return s.Example1()
	case "table7":
		return s.Table7()
	case "table8":
		return s.Table8()
	case "fig4":
		return s.Fig4()
	case "fig5":
		return s.Fig5()
	case "fig6":
		return s.Fig6()
	case "fig7":
		return s.Fig7()
	case "fig8":
		return s.Fig8()
	case "fig9":
		return s.Fig9()
	case "fig10":
		return s.Fig10()
	case "fig11":
		return s.Fig11()
	case "fig12":
		return s.Fig12()
	case "extra":
		return s.Extra()
	case "profile":
		return s.Profile()
	}
	return fmt.Errorf("experiments: unknown experiment %q", name)
}
