package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
	"github.com/probdata/pfcim/internal/world"
)

// TestPaperExample reproduces Example 1.2 / Example 4.3: on the Table II
// database with min_sup = 2 and pfct = 0.8 the only probabilistic frequent
// closed itemsets are {a b c} (Pr_FC = 0.8754) and {a b c d} (Pr_FC = 0.81).
func TestPaperExample(t *testing.T) {
	db := uncertain.PaperExample()
	res, err := Mine(db, Options{MinSup: 2, PFCT: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Itemsets) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(res.Itemsets), res.Itemsets)
	}
	abc := itemset.FromInts(0, 1, 2)
	abcd := itemset.FromInts(0, 1, 2, 3)
	if !itemset.Equal(res.Itemsets[0].Items, abc) {
		t.Errorf("first result = %v, want %v", res.Itemsets[0].Items, abc)
	}
	if !itemset.Equal(res.Itemsets[1].Items, abcd) {
		t.Errorf("second result = %v, want %v", res.Itemsets[1].Items, abcd)
	}
	if got := res.Itemsets[0].Prob; math.Abs(got-0.8754) > 1e-9 {
		t.Errorf("Pr_FC(abc) = %v, want 0.8754", got)
	}
	if got := res.Itemsets[1].Prob; math.Abs(got-0.81) > 1e-9 {
		t.Errorf("Pr_FC(abcd) = %v, want 0.81", got)
	}
}

// TestAgainstOracle cross-checks the full miner against exhaustive
// possible-world enumeration on the paper example for several thresholds.
func TestAgainstOracle(t *testing.T) {
	db := uncertain.PaperExample()
	for _, ms := range []int{1, 2, 3, 4} {
		for _, pfct := range []float64{0.1, 0.5, 0.8, 0.95} {
			want, err := world.MineExact(db, ms, pfct)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Mine(db, Options{MinSup: ms, PFCT: pfct, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Itemsets) != len(want) {
				t.Fatalf("ms=%d pfct=%v: got %d results, oracle %d\ngot=%v\nwant=%v",
					ms, pfct, len(got.Itemsets), len(want), got.Itemsets, want)
			}
			for i := range want {
				if !itemset.Equal(got.Itemsets[i].Items, want[i].Items) {
					t.Errorf("ms=%d pfct=%v result %d: got %v want %v", ms, pfct, i, got.Itemsets[i].Items, want[i].Items)
					continue
				}
				if math.Abs(got.Itemsets[i].Prob-want[i].Prob) > 0.02 {
					t.Errorf("ms=%d pfct=%v %v: prob %v, oracle %v", ms, pfct, want[i].Items, got.Itemsets[i].Prob, want[i].Prob)
				}
			}
		}
	}
}

// TestExample43Trace reproduces the paper's Example 4.3 / Fig. 4: the
// enumeration absorbs {a}→{a b}→{a b c} by subset pruning, kills the
// {b}, {c}, {d} subtrees by superset pruning, and evaluates exactly the
// two surviving nodes.
func TestExample43Trace(t *testing.T) {
	db := uncertain.PaperExample()
	var buf bytes.Buffer
	res, err := Mine(db, Options{MinSup: 2, PFCT: 0.8, Seed: 1, Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Itemsets) != 2 {
		t.Fatalf("trace run found %d itemsets", len(res.Itemsets))
	}
	trace := buf.String()
	for _, want := range []string{
		"subset-absorb {a} into {a b}",
		"subset-absorb {a b} into {a b c}",
		"superset-prune {b}",
		"superset-prune {c}",
		"superset-prune {d}",
		"evaluate {a b c d}",
		"evaluate {a b c}",
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q:\n%s", want, trace)
		}
	}
	// Exactly 7 nodes are visited: a, ab, abc, abcd, b, c, d.
	if got := strings.Count(trace, "visit "); got != 7 {
		t.Errorf("trace visits %d nodes, want 7:\n%s", got, trace)
	}
}
