package uncertain

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that the text-format parser never panics and that
// everything it accepts round-trips losslessly.
func FuzzRead(f *testing.F) {
	f.Add("1 2 3 : 0.5\n7\n")
	f.Add("# comment\n\n4 4 4 : 1\n")
	f.Add(": 0.5")
	f.Add("1 : 2")
	f.Add("-1")
	f.Add("1 2 : 0.5 : 0.7")
	f.Add("999999999999999999999999")
	f.Fuzz(func(t *testing.T, input string) {
		db, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, db); err != nil {
			t.Fatalf("Write of parsed db failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-parse of written db failed: %v\noriginal: %q\nwritten: %q", err, input, buf.String())
		}
		if back.N() != db.N() {
			t.Fatalf("roundtrip changed size: %d vs %d", back.N(), db.N())
		}
		for i := 0; i < db.N(); i++ {
			a, b := db.Transaction(i), back.Transaction(i)
			if a.Prob != b.Prob || len(a.Items) != len(b.Items) {
				t.Fatalf("roundtrip changed tuple %d: %v/%v vs %v/%v", i, a.Items, a.Prob, b.Items, b.Prob)
			}
		}
	})
}
