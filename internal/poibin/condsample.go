package poibin

import (
	"fmt"
	"math/rand"
)

// CondSampler draws Bernoulli vectors x ∈ {0,1}ⁿ with x_i ~ Bernoulli(p_i)
// independently, conditioned on Σ x_i ≥ k. ApproxFCP uses it to sample
// possible worlds that satisfy a clause C_i (whose support part requires
// sup(X+e_i) ≥ min_sup).
//
// Construction costs O(n·k) time and memory for the suffix-tail table
//
//	tail[i][r] = Pr[ x_i + … + x_{n-1} ≥ r ]
//
// after which each Sample costs O(n). Build the sampler once per clause and
// reuse it across that clause's samples.
type CondSampler struct {
	probs []float64
	k     int
	// tail is an (n+1)×(k+1) table in row-major order.
	tail []float64
	n    int
}

// NewCondSampler builds a sampler for the constraint Σ x_i ≥ k. It returns
// an error if the constraint is unsatisfiable (k > n) or has probability
// zero.
func NewCondSampler(probs []float64, k int) (*CondSampler, error) {
	n := len(probs)
	if k < 0 {
		k = 0
	}
	if k > n {
		return nil, fmt.Errorf("poibin: constraint sum ≥ %d unsatisfiable with %d variables", k, n)
	}
	cs := &CondSampler{probs: append([]float64(nil), probs...), k: k, n: n}
	cs.tail = make([]float64, (n+1)*(k+1))
	// Base row i = n: tail ≥ 0 is certain, ≥ r>0 impossible.
	cs.tail[n*(k+1)+0] = 1
	for i := n - 1; i >= 0; i-- {
		p := probs[i]
		row := cs.tail[i*(k+1) : (i+1)*(k+1)]
		next := cs.tail[(i+1)*(k+1) : (i+2)*(k+1)]
		row[0] = 1
		for r := 1; r <= k; r++ {
			succ := next[r-1]
			row[r] = p*succ + (1-p)*next[r]
		}
	}
	if cs.tail[k] <= 0 {
		return nil, fmt.Errorf("poibin: constraint sum ≥ %d has probability 0", k)
	}
	return cs, nil
}

// Prob returns Pr[Σ x_i ≥ k] for the unconditioned vector — the
// normalizing constant of the sampler.
func (cs *CondSampler) Prob() float64 { return cs.tail[cs.k] }

// Sample fills dst (length n) with one conditioned draw. It panics if dst
// has the wrong length.
func (cs *CondSampler) Sample(rng *rand.Rand, dst []bool) {
	if len(dst) != cs.n {
		panic(fmt.Sprintf("poibin: Sample dst length %d, want %d", len(dst), cs.n))
	}
	r := cs.k
	for i := 0; i < cs.n; i++ {
		if r == 0 {
			// Constraint met; the rest is unconditioned.
			dst[i] = rng.Float64() < cs.probs[i]
			continue
		}
		row := cs.tail[i*(cs.k+1) : (i+1)*(cs.k+1)]
		next := cs.tail[(i+1)*(cs.k+1) : (i+2)*(cs.k+1)]
		// Pr[x_i = 1 | suffix from i ≥ r] = p_i · Pr[suffix from i+1 ≥ r−1] / Pr[suffix from i ≥ r].
		denom := row[r]
		if denom <= 0 {
			// Numerically impossible branch: force the success path, which
			// is the only way to still satisfy the constraint.
			dst[i] = true
			r--
			continue
		}
		pOne := cs.probs[i] * next[r-1] / denom
		if rng.Float64() < pOne {
			dst[i] = true
			r--
		} else {
			dst[i] = false
		}
	}
}
