// Command stream consumes an uncertain transaction stream from stdin (one
// transaction per line, "item item … : prob") through a sliding window and
// periodically reports the probabilistically frequent items — the
// continuous-monitoring deployment of the miner. With -pfct set it also
// mines the probabilistic frequent closed itemsets of each reporting round
// incrementally (only subtrees touched by the transactions that slid in or
// out are re-evaluated) and prints the change set between rounds.
//
// Usage:
//
//	gendata -kind quest -scale 0.02 | stream -window 200 -minsup 0.3 -pft 0.8 -report 500
//	gendata -kind quest -scale 0.02 | stream -window 200 -minsup 0.3 -pft 0.8 -pfct 0.6 -report 500
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	pfcim "github.com/probdata/pfcim"
)

func main() {
	var (
		window    = flag.Int("window", 1000, "sliding window size (transactions)")
		minsupRel = flag.Float64("minsup", 0.3, "relative minimum support within the window")
		pft       = flag.Float64("pft", 0.8, "probabilistic frequent threshold")
		pfct      = flag.Float64("pfct", 0, "when > 0, also mine frequent closed itemsets incrementally at this threshold")
		report    = flag.Int("report", 1000, "report every N transactions")
		topK      = flag.Int("top", 10, "report at most this many items")
		track     = flag.Bool("track", true, "maintain per-item tails incrementally once the window fills")
	)
	flag.Parse()

	// Validate every flag up front: -report feeds a modulus (0 would panic
	// with a divide by zero on the first push), and the thresholds are
	// silently useless outside their domains.
	if *report < 1 {
		fatal(fmt.Errorf("-report must be ≥ 1, got %d", *report))
	}
	if *window < 1 {
		fatal(fmt.Errorf("-window must be ≥ 1, got %d", *window))
	}
	if *minsupRel <= 0 || *minsupRel > 1 {
		fatal(fmt.Errorf("-minsup must be in (0,1], got %v", *minsupRel))
	}
	if *pft <= 0 || *pft >= 1 {
		fatal(fmt.Errorf("-pft must be in (0,1), got %v", *pft))
	}
	if *pfct < 0 || *pfct >= 1 {
		fatal(fmt.Errorf("-pfct must be in [0,1), got %v", *pfct))
	}
	if *topK < 0 {
		fatal(fmt.Errorf("-top must be ≥ 0, got %d", *topK))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	w, err := pfcim.NewWindow(*window)
	if err != nil {
		fatal(err)
	}
	// The miner's absolute MinSup is fixed at the full window's threshold;
	// until the window fills, rounds mine the partial content at that same
	// (conservative) support.
	fullMinSup := pfcim.AbsoluteMinSup(*window, *minsupRel)
	var miner *pfcim.WindowMiner
	if *pfct > 0 {
		miner, err = pfcim.NewWindowMiner(w, pfcim.Options{MinSup: fullMinSup, PFCT: *pfct})
		if err != nil {
			fatal(err)
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		if ctx.Err() != nil {
			break
		}
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		db, err := pfcim.ReadDatabase(strings.NewReader(line))
		if err != nil {
			fmt.Fprintf(os.Stderr, "stream: line %d skipped: %v\n", lineNo, err)
			continue
		}
		if err := push(w, miner, db.Transaction(0)); err != nil {
			fmt.Fprintf(os.Stderr, "stream: line %d skipped: %v\n", lineNo, err)
			continue
		}
		// Maintained tails make each report O(1) per item instead of one
		// dynamic program per item; only worthwhile once the per-report
		// threshold stops moving (i.e. the window is full).
		if *track && w.TrackedMinSup() == 0 && w.Len() == *window {
			if err := w.TrackTails(fullMinSup); err != nil {
				fatal(err)
			}
		}
		if w.Pushes()%*report == 0 {
			emit(ctx, w, miner, *minsupRel, *pft, *topK)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	// Final report, unless the last push already triggered one.
	if ctx.Err() == nil && w.Len() > 0 && w.Pushes()%*report != 0 {
		emit(ctx, w, miner, *minsupRel, *pft, *topK)
	}
}

// push routes the transaction through the miner when incremental mining is
// on (so subtree invalidation sees every change) and straight into the
// window otherwise.
func push(w *pfcim.Window, miner *pfcim.WindowMiner, t pfcim.Transaction) error {
	if miner != nil {
		return miner.Push(t)
	}
	_, _, err := w.Push(t)
	return err
}

func emit(ctx context.Context, w *pfcim.Window, miner *pfcim.WindowMiner, minsupRel, pft float64, topK int) {
	minSup := pfcim.AbsoluteMinSup(w.Len(), minsupRel)
	items, err := w.FrequentItemsContext(ctx, pfcim.StreamOptions{MinSup: minSup, PFT: pft})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("after %d transactions (window %d, min_sup %d): %d frequent items:",
		w.Pushes(), w.Len(), minSup, len(items))
	for i, it := range items {
		if i >= topK {
			fmt.Printf(" …")
			break
		}
		fmt.Printf(" %d(%.2f)", it.Item, it.FreqProb)
	}
	fmt.Println()
	if miner == nil {
		return
	}
	res, diff, err := pfcim.MineWindowContext(ctx, miner)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  closed itemsets: %d (+%d -%d ~%d, %d unchanged; %d subtrees reused)\n",
		len(res.Itemsets), len(diff.Added), len(diff.Removed), len(diff.Changed),
		diff.Unchanged, res.Stats.SubtreesReused)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stream:", err)
	os.Exit(1)
}
