package core

import (
	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
)

// bfsNode is one itemset of the current level in the breadth-first
// framework.
type bfsNode struct {
	items itemset.Itemset
	tids  *bitset.Bitset
	cnt   int
	prF   float64
	pos   int // candidate position of the last item (for prefix extension)
}

// mineBFS is the level-wise MPFCI-BFS framework: every probabilistically
// frequent itemset of level k is fully evaluated before level k+1 is
// generated. Superset and subset pruning do not apply — their triggering
// conditions relate a node to its DFS prefix path, which level-wise
// enumeration never materializes — so only Chernoff-Hoeffding pruning and
// the Lemma 4.4 bounds are available, exactly as in the paper's
// experimental comparison (Fig. 12).
//
// Like the DFS framework, each node probes its candidate extensions once,
// records the intersected tidsets and exact frequent probabilities, and
// hands the records to evaluate; surviving extensions then take ownership
// of their tidset as next-level nodes.
func (m *miner) mineBFS() error {
	level := make([]bfsNode, 0, len(m.cands))
	for pos, c := range m.cands {
		level = append(level, bfsNode{
			items: itemset.Itemset{c.item},
			tids:  c.tids.Clone(),
			cnt:   c.cnt,
			prF:   c.prF,
			pos:   pos,
		})
	}
	for len(level) > 0 {
		var next []bfsNode
		for _, node := range level {
			if m.ctx != nil {
				if err := m.ctx.Err(); err != nil {
					return err
				}
			}
			m.stats.NodesVisited++
			depth := len(node.items)
			// Level-wise nodes have no inline children, so the node's self
			// time is simply everything outside evaluate (which records the
			// checking-cascade spans itself).
			nodeStart := m.rec.Now()
			exts := m.extBuf(depth)
			// Sibling intersections run through the batched column-sweep
			// kernel, chunked exactly like the DFS extension loop. BFS has
			// no early break (no subset pruning), so every batch buffer is
			// consumed.
			startPos := node.pos + 1
			nc := len(m.cands) - startPos
			var dsts, srcs []*bitset.Bitset
			var counts []int
			if nc > 0 {
				dsts, srcs, counts = m.batchBufs(depth, nc)
			}
			batched := 0
			for pos := startPos; pos < len(m.cands); pos++ {
				i := pos - startPos
				if i >= batched {
					hi := batched + batchChunk
					if hi > nc {
						hi = nc
					}
					for j := batched; j < hi; j++ {
						srcs[j] = m.cands[startPos+j].tids
						dsts[j] = m.getBuf()
					}
					bitset.AndBatch(dsts[batched:hi], counts[batched:hi], node.tids, srcs[batched:hi])
					batched = hi
				}
				c := m.cands[pos]
				buf, cc := dsts[i], counts[i]
				if cc < m.opts.MinSup {
					m.putBuf(buf)
					exts = append(exts, extension{item: c.item, cnt: cc})
					continue
				}
				rec := extension{item: c.item, tids: buf, cnt: cc}
				probs := m.probsOf(buf)
				if !m.opts.DisableCH {
					if poibin.TailUpperBound(probs, m.opts.MinSup) <= m.opts.PFCT {
						m.stats.CHPruned++
						exts = append(exts, rec)
						continue
					}
				}
				rec.prF, rec.hasPrF = m.tailOf(buf, probs, node.items, c.item), true
				if rec.prF <= m.opts.PFCT {
					m.stats.FreqPruned++
				}
				exts = append(exts, rec)
			}
			selfNS := m.rec.Now() - nodeStart
			ev, err := m.evaluate(node.items, node.tids, node.cnt, node.prF, exts)
			if err != nil {
				m.releaseExts(depth, exts)
				m.rec.Node(depth, nodeStart, selfNS)
				return err
			}
			if ev.accepted {
				m.results = append(m.results, ResultItem{
					Items:    node.items.Clone(),
					Prob:     ev.prob,
					Lower:    ev.lower,
					Upper:    ev.upper,
					FreqProb: node.prF,
					Method:   ev.method,
				})
			}
			for i := range exts {
				rec := &exts[i]
				if !rec.hasPrF || rec.prF <= m.opts.PFCT {
					continue
				}
				next = append(next, bfsNode{
					items: node.items.Extend(rec.item),
					tids:  rec.tids,
					cnt:   rec.cnt,
					prF:   rec.prF,
					pos:   node.pos + 1 + i,
				})
				rec.tids = nil // ownership moved to the next level
			}
			m.releaseExts(depth, exts)
			m.putBuf(node.tids)
			m.rec.Node(depth, nodeStart, selfNS)
		}
		level = next
	}
	return nil
}
