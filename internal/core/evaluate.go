package core

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/dnf"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/poibin"
)

// evaluation is the verdict on one candidate itemset.
type evaluation struct {
	accepted     bool
	prob         float64 // estimated Pr_FC
	lower, upper float64 // Pr_FC sandwich (equal to prob when exact)
	method       Method
}

// clause is one extension event C_i, prepared for the union machinery.
type clause struct {
	item  itemset.Item
	b     *bitset.Bitset // tidset of X + e_i (within tids of X)
	prob  float64        // Pr(C_i)
	owned bool           // b came from the arena and must return there;
	// borrowed clauses point into the caller's extension records
}

// clauseSorter orders clauses by descending probability. It is sorted
// through a pointer receiver held on the miner so sort.Sort boxes a plain
// pointer instead of copying a slice header to the heap per evaluation.
type clauseSorter []clause

func (s *clauseSorter) Len() int           { return len(*s) }
func (s *clauseSorter) Less(i, j int) bool { return (*s)[i].prob > (*s)[j].prob }
func (s *clauseSorter) Swap(i, j int)      { (*s)[i], (*s)[j] = (*s)[j], (*s)[i] }

// sortClauses sorts clauses in place by descending probability — the order
// the pairwise bound budget and the Karp–Luby min-index check rely on.
// evaluate and the Evaluator's profile construction must use the same
// routine: bit-identity of the replay depends on equal-probability clauses
// tieing the same way.
func (m *miner) sortClauses(clauses []clause) {
	m.clauseSort = clauses
	sort.Sort(&m.clauseSort)
}

// evaluate decides whether X (with tidset tids, |tids| = count and exact
// frequent probability prF) is a probabilistic frequent closed itemset.
// It follows §IV.B: clause probabilities, Lemma 4.4 bound pruning, then
// exact inclusion–exclusion or the ApproxFCP sampler for the survivors.
// exts, when non-nil, holds the extension records the enumeration loop
// already computed for candidate positions ≥ startPos; their tidsets and
// exact frequent probabilities are reused instead of recomputed.
func (m *miner) evaluate(x itemset.Itemset, tids *bitset.Bitset, count int, prF float64, exts []extension) (evaluation, error) {
	m.stats.Evaluated++

	// The bound-check span covers the cascade up to the Lemma 4.4 verdict:
	// clause construction, the clause system, and both bound levels. The
	// exact/sampling resolutions that follow record their own spans.
	depth := len(x)
	boundStart := m.rec.Now()

	clauses, slack, dead := m.buildClauses(x, tids, count, exts)
	defer func() {
		// Freelist-owned clause tidsets are dead once the verdict is in;
		// borrowed ones are released by the owner of the extension records.
		for _, c := range clauses {
			if c.owned {
				m.putBuf(c.b)
			}
		}
	}()
	if dead {
		// Some extension always co-occurs with X: Pr_FC(X) = 0.
		m.rec.Span(obs.PhaseBoundCheck, depth, boundStart)
		return evaluation{accepted: false, method: MethodExact}, nil
	}
	if len(clauses) == 0 && slack == 0 {
		// No extension event is possible: X is closed whenever frequent.
		m.rec.Span(obs.PhaseBoundCheck, depth, boundStart)
		ev := evaluation{prob: prF, lower: prF, upper: prF, method: MethodNoClauses}
		ev.accepted = ev.prob > m.opts.PFCT
		return ev, nil
	}

	// Sort by descending clause probability so that the pairwise bound
	// budget and the Karp–Luby min-index check concentrate on the clauses
	// that matter.
	m.sortClauses(clauses)

	sys, probs, err := m.clauseSystem(tids, clauses)
	if err != nil {
		return evaluation{}, err
	}

	// First-order bounds are free: union ≥ max Pr(C_i), union ≤ min(1, ΣPr(C_i)).
	s1, maxClause := 0.0, 0.0
	for _, p := range probs {
		s1 += p
		if p > maxClause {
			maxClause = p
		}
	}
	unionLower := maxClause
	unionUpper := s1 + slack
	if unionUpper > 1 {
		unionUpper = 1
	}

	if !m.opts.DisableBounds {
		if ev, done := m.decideByBounds(prF, unionLower, unionUpper, m.opts.PFCT); done {
			m.rec.Span(obs.PhaseBoundCheck, depth, boundStart)
			return ev, nil
		}
		// Second-order (Lemma 4.4) bounds over the most probable clauses.
		lo, hi := m.pairwiseBounds(sys, probs, slack)
		if lo > unionLower {
			unionLower = lo
		}
		if hi < unionUpper {
			unionUpper = hi
		}
		unionLower, unionUpper = reconcileBounds(unionLower, unionUpper)
		if ev, done := m.decideByBounds(prF, unionLower, unionUpper, m.opts.PFCT); done {
			m.rec.Span(obs.PhaseBoundCheck, depth, boundStart)
			return ev, nil
		}
	}
	m.rec.Span(obs.PhaseBoundCheck, depth, boundStart)

	// Checking phase: exact inclusion–exclusion when the clause system is
	// small, the FPRAS sampler otherwise.
	var union float64
	method := MethodExact
	if m.opts.MaxExactClauses >= 0 && len(clauses) <= m.opts.MaxExactClauses {
		union, err = m.exactUnion(sys, depth)
		if err != nil {
			return evaluation{}, err
		}
	} else {
		union, err = m.sampleUnion(sys, m.nodeRNG(x), probs, len(clauses), depth)
		if err != nil {
			return evaluation{}, err
		}
		method = MethodSampled
	}
	union += slack / 2 // dropped-clause slack, ≤ len(clauses)·1e-15
	// Keep the estimate inside the analytic sandwich.
	if union < unionLower {
		union = unionLower
	}
	if union > unionUpper {
		union = unionUpper
	}
	ev := evaluation{
		prob:   clamp01(prF - union),
		lower:  clamp01(prF - unionUpper),
		upper:  clamp01(prF - unionLower),
		method: method,
	}
	ev.accepted = ev.prob > m.opts.PFCT
	return ev, nil
}

// exactUnion resolves the extension-event union by inclusion–exclusion
// under an exact-union span. Shared by evaluate, the sweep Evaluator's
// replay path, and the standalone FCP helpers so every caller's checking
// time lands in the same phase bucket.
func (m *miner) exactUnion(sys *dnf.System, depth int) (float64, error) {
	t := m.rec.Now()
	union, err := sys.ExactUnion()
	m.rec.Span(obs.PhaseExactUnion, depth, t)
	if err != nil {
		return 0, err
	}
	m.stats.ExactUnions++
	return union, nil
}

// sampleUnion estimates the union with the Karp–Luby FPRAS at the
// (ε, δ)-derived sample size for nClauses clauses.
func (m *miner) sampleUnion(sys *dnf.System, rng *poibin.SM64, probs []float64, nClauses, depth int) (float64, error) {
	n := dnf.SampleSize(nClauses, m.opts.Epsilon, m.opts.Delta)
	return m.karpLuby(sys, rng, probs, n, depth)
}

// karpLuby runs the sampler for exactly n draws under a sampling span; the
// standalone EstimateFCP entry point calls it directly with its own sample
// size.
func (m *miner) karpLuby(sys *dnf.System, rng *poibin.SM64, probs []float64, n, depth int) (float64, error) {
	t := m.rec.Now()
	union, err := sys.KarpLuby(rng, probs, n)
	m.rec.Span(obs.PhaseSample, depth, t)
	if err != nil {
		return 0, err
	}
	m.stats.Sampled++
	m.stats.SamplesDrawn += n
	return union, nil
}

// decideByBounds applies the Lemma 4.4 pruning rules at the given
// threshold: reject when the upper bound on Pr_FC cannot exceed pfct,
// accept when the lower bound already does, and report "not done"
// otherwise. The threshold is a parameter (rather than read from opts)
// because the sweep Evaluator replays the same bounds against tighter
// thresholds than the base run's.
// reconcileBounds intersects the first-order and pairwise union intervals.
// Both contain the true union analytically, so an empty intersection can
// only be float rounding noise of a few ulps (the de Caen lower bound and
// the Kwerel upper bound evaluate the same moments in different orders);
// collapse it to the midpoint so the Lemma 4.4 sandwich stays ordered.
func reconcileBounds(lo, hi float64) (float64, float64) {
	if hi < lo {
		mid := (lo + hi) / 2
		return mid, mid
	}
	return lo, hi
}

func (m *miner) decideByBounds(prF, unionLower, unionUpper, pfct float64) (evaluation, bool) {
	fcLower := clamp01(prF - unionUpper)
	fcUpper := clamp01(prF - unionLower)
	if fcUpper <= pfct {
		m.stats.BoundRejected++
		return evaluation{accepted: false, lower: fcLower, upper: fcUpper, prob: (fcLower + fcUpper) / 2, method: MethodBoundRejected}, true
	}
	if fcLower > pfct {
		m.stats.BoundAccepted++
		return evaluation{accepted: true, lower: fcLower, upper: fcUpper, prob: (fcLower + fcUpper) / 2, method: MethodBoundAccepted}, true
	}
	return evaluation{}, false
}

// buildClauses computes the extension events of Definition 4.1 for every
// item not in X. It returns the clauses with non-negligible probability,
// the total probability mass of dropped clauses (slack), and dead = true
// when some extension provably always co-occurs with X (count equality), in
// which case Pr_FC(X) = 0.
//
// exts, when non-nil, are the enumeration loop's extension records in
// ascending item order; items covered by a record reuse its intersected
// tidset and (when present) its exact frequent probability, so only items
// the enumeration never probed — candidate positions below startPos and
// non-candidate items — pay for an intersection and a Poisson-binomial
// tail here.
// clauseChunk is how many uncovered items are intersected per AndBatch
// call inside buildClauses. Lazy chunking bounds the intersections wasted
// when an early item proves the candidate dead.
const clauseChunk = 32

func (m *miner) buildClauses(x itemset.Itemset, tids *bitset.Bitset, count int, exts []extension) (clauses []clause, slack float64, dead bool) {
	// The clause records live in a per-miner scratch slice; evaluate is
	// never reentered on one miner, and callers that outlive the next
	// evaluation (the Evaluator's profiles) clone what they retain.
	clauses = m.clausesBuf[:0]

	// Collect the items with no extension record up front, so their
	// intersections can run through the batched sibling kernel; the main
	// loop below still examines every item in ascending order, consuming
	// batch results as it reaches them.
	uncov := m.uncovBuf[:0]
	j := 0
	for _, e := range m.allItems {
		for j < len(exts) && exts[j].item < e {
			j++
		}
		if j < len(exts) && exts[j].item == e {
			j++
			continue
		}
		if !x.Contains(e) {
			uncov = append(uncov, e)
		}
	}
	m.uncovBuf = uncov
	dsts, srcs, ucounts := m.uncovBufs(len(uncov))
	ui, batched := 0, 0

	release := func() {
		for _, c := range clauses {
			if c.owned {
				m.putBuf(c.b)
			}
		}
		for i := ui; i < batched; i++ {
			m.putBuf(dsts[i])
		}
		m.clausesBuf = clauses[:0]
	}
	j = 0
	for _, e := range m.allItems {
		for j < len(exts) && exts[j].item < e {
			j++
		}
		if j < len(exts) && exts[j].item == e {
			rec := &exts[j]
			j++
			if rec.cnt == count {
				// tids(X) ⊆ tids(e): X and X+e always appear together.
				release()
				return nil, 0, true
			}
			if rec.cnt < m.opts.MinSup {
				// Pr_F(X+e) = 0, hence Pr(C_e) = 0.
				continue
			}
			absent, negligible := m.absentFactor(tids, rec.tids, x, e)
			if negligible {
				slack += zeroClauseEps // conservative cap on the dropped mass
				continue
			}
			p := rec.prF
			if !rec.hasPrF {
				// The extension was Chernoff-Hoeffding-pruned, so its exact
				// tail was never computed; pay for it now.
				p = m.tailOf(rec.tids, nil, x, e)
			}
			p *= absent
			m.stats.ClauseEvaluated++
			if p < zeroClauseEps {
				slack += p
				continue
			}
			clauses = append(clauses, clause{item: e, b: rec.tids, prob: p})
			continue
		}
		if x.Contains(e) {
			continue
		}
		if ui >= batched {
			hi := batched + clauseChunk
			if hi > len(uncov) {
				hi = len(uncov)
			}
			for i := batched; i < hi; i++ {
				srcs[i] = m.itemTids[uncov[i]]
				dsts[i] = m.getBuf()
			}
			bitset.AndBatch(dsts[batched:hi], ucounts[batched:hi], tids, srcs[batched:hi])
			batched = hi
		}
		b, bc := dsts[ui], ucounts[ui]
		ui++
		if bc == count {
			// tids(X) ⊆ tids(e): X and X+e always appear together. Release
			// everything collected so far; the caller sees dead = true.
			m.putBuf(b)
			release()
			return nil, 0, true
		}
		if bc < m.opts.MinSup {
			// Pr_F(X+e) = 0, hence Pr(C_e) = 0.
			m.putBuf(b)
			continue
		}
		absent, negligible := m.absentFactor(tids, b, x, e)
		if negligible {
			slack += zeroClauseEps // conservative cap on the dropped mass
			m.putBuf(b)
			continue
		}
		p := absent * m.tailOf(b, nil, x, e)
		m.stats.ClauseEvaluated++
		if p < zeroClauseEps {
			slack += p
			m.putBuf(b)
			continue
		}
		clauses = append(clauses, clause{item: e, b: b, prob: p, owned: true})
	}
	m.clausesBuf = clauses
	return clauses, slack, false
}

// uncovBufs returns the uncovered-item batch buffers with room for nc
// intersections.
func (m *miner) uncovBufs(nc int) (dsts, srcs []*bitset.Bitset, counts []int) {
	if cap(m.ubDsts) < nc {
		m.ubDsts = make([]*bitset.Bitset, nc)
		m.ubSrcs = make([]*bitset.Bitset, nc)
		m.ubCounts = make([]int, nc)
	}
	return m.ubDsts[:nc], m.ubSrcs[:nc], m.ubCounts[:nc]
}

// absentFactor returns Pr(C_e)'s tuple-absence product
// Π_{T ∈ tids\b}(1−p_T), flagging it as negligible once it falls below
// zeroClauseEps (the clause is then dropped and accounted as slack). x and e
// identify the clause (base itemset, extension item) for sharded runs, which
// fold the product per shard instead (shard.go); unsharded runs ignore them.
func (m *miner) absentFactor(tids, b *bitset.Bitset, x itemset.Itemset, e itemset.Item) (absent float64, negligible bool) {
	if m.sharded() {
		return m.shardAbsentFactor(tids, b, x, e)
	}
	absent = 1.0
	bitset.ForEachDiff(tids, b, func(tid int) bool {
		absent *= 1 - m.probs[tid]
		if absent < zeroClauseEps {
			negligible = true
			return false
		}
		return true
	})
	return absent, negligible
}

// clauseSystem wraps the kept clauses in the miner's reusable dnf.System
// plus the probability vector aligned with it. The system, the clause
// slice, and the probability vector are scratch — valid until the next
// clauseSystem call on this miner; callers that retain them (the
// Evaluator's profiles, the FCP helpers) use clauseSystemOwned. The
// subset validation of dnf.NewSystem is skipped: every clause tidset here
// is an AndInto/AndBatch intersection with tids, a subset by construction.
func (m *miner) clauseSystem(tids *bitset.Bitset, clauses []clause) (*dnf.System, []float64, error) {
	bs := m.sysBs[:0]
	probs := m.sysProbs[:0]
	for _, c := range clauses {
		bs = append(bs, c.b)
		probs = append(probs, c.prob)
	}
	m.sysBs, m.sysProbs = bs, probs
	m.sysBuf.Reuse(tids, m.probs, m.opts.MinSup, bs)
	m.sysBuf.TailFn = m.dnfTailFn()
	return &m.sysBuf, probs, nil
}

// clauseSystemOwned is clauseSystem with caller-owned storage and the full
// dnf.NewSystem validation, for callers whose clause system outlives the
// next evaluation.
func (m *miner) clauseSystemOwned(tids *bitset.Bitset, clauses []clause) (*dnf.System, []float64, error) {
	bs := make([]*bitset.Bitset, len(clauses))
	probs := make([]float64, len(clauses))
	for i, c := range clauses {
		bs[i] = c.b
		probs[i] = c.prob
	}
	sys, err := dnf.NewSystem(tids, m.probs, m.opts.MinSup, bs)
	if err != nil {
		return nil, nil, fmt.Errorf("core: building clause system: %w", err)
	}
	sys.TailFn = m.dnfTailFn()
	return sys, probs, nil
}

// pairwiseBounds computes the de Caen / Kwerel sandwich of Lemma 4.4 over
// the top MaxPairClauses clauses (sorted by descending probability) and
// extends it soundly to the full clause set: the partial de Caen bound is a
// valid lower bound on the full union, and the remaining clauses join the
// upper bound additively.
func (m *miner) pairwiseBounds(sys *dnf.System, probs []float64, slack float64) (lo, hi float64) {
	k := len(probs)
	if k > m.opts.MaxPairClauses {
		k = m.opts.MaxPairClauses
	}
	// The top-k prefix view lives in a second reusable System so its
	// intersection and probability scratch persists across evaluations.
	m.subBuf.Reuse(sys.Base, sys.Probs, sys.MinSup, sys.Clauses[:k])
	m.subBuf.TailFn = sys.TailFn
	sums := m.subBuf.ComputeSumsReuse()
	m.stats.ClauseEvaluated += k * (k - 1) / 2
	lo, hi = dnf.UnionBounds(sums)
	rest := slack
	for _, p := range probs[k:] {
		rest += p
	}
	hi += rest
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// probsOf collects the existence probabilities of the tids in b into a
// buffer owned by the miner. Every caller consumes the slice (via a
// Poisson-binomial computation, which never retains it) before calling
// probsOf again, so one buffer per miner suffices.
func (m *miner) probsOf(b *bitset.Bitset) []float64 {
	m.probsBuf = m.probsBuf[:0]
	// Gather over the dense words directly: this runs once per tail
	// evaluation and per clause build, and the per-bit closure call of
	// ForEach is measurable there.
	if words := b.DenseWords(); words != nil {
		buf := m.probsBuf
		probs := m.probs
		for wi, w := range words {
			base := wi * 64
			for w != 0 {
				buf = append(buf, probs[base+bits.TrailingZeros64(w)])
				w &= w - 1
			}
		}
		m.probsBuf = buf
		return buf
	}
	b.ForEach(func(tid int) bool {
		m.probsBuf = append(m.probsBuf, m.probs[tid])
		return true
	})
	return m.probsBuf
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
