package poibin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomProbs(rng *rand.Rand, n int) []float64 {
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = rng.Float64()
	}
	return ps
}

// tailByEnumeration computes Pr[S ≥ k] by brute-force enumeration of all
// 2^n outcomes (n ≤ 16).
func tailByEnumeration(probs []float64, k int) float64 {
	n := len(probs)
	total := 0.0
	for mask := 0; mask < 1<<uint(n); mask++ {
		p := 1.0
		c := 0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				p *= probs[i]
				c++
			} else {
				p *= 1 - probs[i]
			}
		}
		if c >= k {
			total += p
		}
	}
	return total
}

func TestTailAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(10) + 1
		probs := randomProbs(rng, n)
		for k := 0; k <= n+1; k++ {
			got := Tail(probs, k)
			want := tailByEnumeration(probs, k)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("Tail(%v, %d) = %v, want %v", probs, k, got, want)
			}
		}
	}
}

func TestTailEdgeCases(t *testing.T) {
	probs := []float64{0.5, 0.5}
	if Tail(probs, 0) != 1 {
		t.Error("Tail(k=0) must be 1")
	}
	if Tail(probs, -3) != 1 {
		t.Error("Tail(k<0) must be 1")
	}
	if Tail(probs, 3) != 0 {
		t.Error("Tail(k>n) must be 0")
	}
	if Tail(nil, 0) != 1 || Tail(nil, 1) != 0 {
		t.Error("Tail of empty distribution wrong")
	}
	// Deterministic tuples.
	if got := Tail([]float64{1, 1, 1}, 3); math.Abs(got-1) > 1e-15 {
		t.Errorf("Tail(all 1s, 3) = %v", got)
	}
	if got := Tail([]float64{1, 1, 0.5}, 3); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("Tail([1,1,.5], 3) = %v", got)
	}
}

func TestPMFSumsToOne(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%20 + 1
		rng := rand.New(rand.NewSource(seed))
		probs := randomProbs(rng, n)
		pmf := PMF(probs)
		sum := 0.0
		mean := 0.0
		for c, p := range pmf {
			if p < -1e-15 {
				return false
			}
			sum += p
			mean += float64(c) * p
		}
		return math.Abs(sum-1) < 1e-9 && math.Abs(mean-Mean(probs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTailAllMatchesTail(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	probs := randomProbs(rng, 30)
	tails := TailAll(probs)
	for k := 0; k <= 30; k++ {
		if math.Abs(tails[k]-Tail(probs, k)) > 1e-9 {
			t.Fatalf("TailAll[%d] = %v, Tail = %v", k, tails[k], Tail(probs, k))
		}
	}
	// Monotone non-increasing.
	for k := 1; k <= 30; k++ {
		if tails[k] > tails[k-1]+1e-12 {
			t.Fatalf("TailAll not monotone at %d", k)
		}
	}
}

func TestBoundsDominateExactTail(t *testing.T) {
	f := func(seed int64, sz uint8, kk uint8) bool {
		n := int(sz)%25 + 1
		rng := rand.New(rand.NewSource(seed))
		probs := randomProbs(rng, n)
		k := int(kk) % (n + 2)
		exact := Tail(probs, k)
		for _, bound := range []float64{
			HoeffdingUpper(probs, k),
			ChernoffUpper(probs, k),
			TailUpperBound(probs, k),
		} {
			if bound < exact-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsNontrivial(t *testing.T) {
	// Far above the mean, the bounds must actually prune (be ≪ 1).
	probs := make([]float64, 100)
	for i := range probs {
		probs[i] = 0.3
	}
	if b := TailUpperBound(probs, 70); b > 0.01 {
		t.Errorf("TailUpperBound at 70 with mean 30 = %v, want tiny", b)
	}
	if b := TailUpperBound(probs, 20); b != 1 {
		t.Errorf("TailUpperBound below the mean = %v, want 1", b)
	}
}

func TestNormalTail(t *testing.T) {
	probs := make([]float64, 200)
	for i := range probs {
		probs[i] = 0.5
	}
	for _, k := range []int{80, 100, 120} {
		exact := Tail(probs, k)
		approx := NormalTail(probs, k)
		if math.Abs(exact-approx) > 0.02 {
			t.Errorf("NormalTail(k=%d) = %v, exact %v", k, approx, exact)
		}
	}
	if NormalTail(probs, 0) != 1 || NormalTail(probs, 201) != 0 {
		t.Error("NormalTail edge cases wrong")
	}
	// Degenerate: all probabilities 1.
	ones := []float64{1, 1, 1}
	if NormalTail(ones, 3) != 1 || NormalTail(ones, 4) != 0 {
		t.Error("NormalTail deterministic case wrong")
	}
}

func TestMeanVariance(t *testing.T) {
	probs := []float64{0.25, 0.5, 1}
	if got := Mean(probs); math.Abs(got-1.75) > 1e-15 {
		t.Errorf("Mean = %v", got)
	}
	want := 0.25*0.75 + 0.5*0.5
	if got := Variance(probs); math.Abs(got-want) > 1e-15 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestTailLowerBound(t *testing.T) {
	f := func(seed int64, sz uint8, kk uint8) bool {
		n := int(sz)%25 + 1
		rng := rand.New(rand.NewSource(seed))
		probs := randomProbs(rng, n)
		k := int(kk) % (n + 2)
		return TailLowerBound(probs, k) <= Tail(probs, k)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Far below the mean, the lower bound should be close to 1.
	probs := make([]float64, 100)
	for i := range probs {
		probs[i] = 0.8
	}
	if b := TailLowerBound(probs, 40); b < 0.9 {
		t.Errorf("TailLowerBound at 40 with mean 80 = %v, want near 1", b)
	}
	if TailLowerBound(probs, 0) != 1 || TailLowerBound(probs, 101) != 0 {
		t.Error("TailLowerBound edge cases wrong")
	}
	if TailLowerBound(nil, 1) != 0 {
		t.Error("TailLowerBound on empty distribution")
	}
}

// TestTailClampedFuzzSeed158 is the minimized regression for a crosscheck
// FuzzMine counterexample (degenerate shape, seed 158): with certain tuples
// in the vector, the absorbing DP sum landed one ulp above 1, and the miner
// then reported an itemset with Pr_F > 1 and a crossed Lemma 4.4 sandwich.
// Tail and TailAll must never exceed 1.
func TestTailClampedFuzzSeed158(t *testing.T) {
	probs := []float64{1.6339363439570932e-07, 0.8950463782409095, 0.2225405058074865, 1, 1}
	if got := Tail(probs, 2); got > 1 {
		t.Errorf("Tail(probs, 2) = %b, exceeds 1", got)
	}
	for k, got := range TailAll(probs) {
		if got > 1 {
			t.Errorf("TailAll(probs)[%d] = %b, exceeds 1", k, got)
		}
	}
}
