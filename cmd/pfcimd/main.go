// Command pfcimd is the mining service daemon: a long-lived HTTP/JSON
// process that amortizes dataset loading across requests, runs MPFCI jobs
// asynchronously on a bounded worker pool, and serves repeated parameter-
// sweep points from a result cache (sound because mining is deterministic
// per (dataset, canonical options) — DESIGN.md §9).
//
// Usage:
//
//	pfcimd -addr :8080 -workers 4 -cache-size 256 -max-job-time 5m
//
// Endpoints:
//
//	POST   /v1/datasets       register a dataset (text format body, or
//	                          {"path": …} JSON with -allow-path-load)
//	GET    /v1/datasets       list registered datasets
//	GET    /v1/datasets/{id}  one dataset's stats
//	POST   /v1/jobs           submit a mining job {dataset, options, timeout_ms}
//	POST   /v1/sweeps         submit a parameter sweep {dataset, options,
//	                          points: [{min_sup, pfct, epsilon, delta}, …]};
//	                          one enumeration per min_sup group, per-point
//	                          results shared with the single-job cache
//	GET    /v1/jobs           list jobs (sweeps included)
//	GET    /v1/jobs/{id}      job status + result (wall_ms, queue_wait_ms)
//	GET    /v1/jobs/{id}/trace  finished job's phase profile (per-phase and
//	                          per-depth wall time, per-worker busy time)
//	DELETE /v1/jobs/{id}      cancel a job
//	GET    /healthz           liveness + load snapshot
//	GET    /metrics           daemon counters — Prometheus text exposition
//	                          with Accept: text/plain, expvar-style JSON
//	                          otherwise
//	/debug/pprof/             net/http/pprof (only with -pprof)
//
// Distributed mining (README.md "Distributed quickstart"):
//
//	pfcimd -role=worker -addr :9101                      shard worker: holds
//	                          range slices of registered datasets and
//	                          answers per-shard tail/clause RPCs under
//	                          /shard/v1/ (plus GET /healthz)
//	pfcimd -role=coordinator -shard-workers :9101,:9102 -shards 4
//	                          coordinator: the daemon above, with datasets
//	                          range-partitioned onto the workers at
//	                          registration and sharded jobs evaluated over
//	                          RPC
//	pfcimd -shards 4          single-process sharded mode: the same shard-
//	                          composable arithmetic, evaluated in-memory
//
// See README.md "Serving" for a curl walkthrough.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/probdata/pfcim/internal/service"
	"github.com/probdata/pfcim/internal/shard"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr          = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers       = flag.Int("workers", 0, "mining worker pool size (0 = GOMAXPROCS)")
		queueDepth    = flag.Int("queue-depth", 64, "maximum queued jobs before submissions are shed with 429")
		cacheSize     = flag.Int("cache-size", 128, "result cache entries (-1 disables caching)")
		maxJobTime    = flag.Duration("max-job-time", 0, "per-job wall-time cap (0 = unlimited)")
		tailMemo      = flag.Int("tail-memo-entries", 0, "default Options.TailMemoEntries for jobs that leave it unset (0 = library default, negative disables)")
		maxUpload     = flag.Int64("max-upload-bytes", 256<<20, "dataset upload size limit")
		allowPathLoad = flag.Bool("allow-path-load", false, "allow clients to register datasets from server-local paths (trusted setups only)")
		preload       = flag.String("preload", "", "comma-separated dataset files to register at startup")
		grace         = flag.Duration("shutdown-grace", 30*time.Second, "how long shutdown waits for running jobs before canceling them")
		logLevel      = flag.String("log-level", "info", "log level: debug, info, warn, error")
		slowJob       = flag.Duration("slow-job-threshold", 0, "log a warning for jobs slower than this (0 disables)")
		noJobTrace    = flag.Bool("no-job-trace", false, "disable the per-job phase tracer (GET /v1/jobs/{id}/trace returns 404)")
		enablePprof   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		role          = flag.String("role", "", `process role: "" (standalone), "coordinator", or "worker"`)
		shardWorkers  = flag.String("shard-workers", "", "comma-separated shard worker addresses (coordinator role)")
		shards        = flag.Int("shards", 0, "default shard count for jobs that leave options.shards unset (≥ 2 partitions tail computation)")
		shardTimeout  = flag.Duration("shard-rpc-timeout", 5*time.Second, "per-attempt shard RPC timeout")
		shardHealth   = flag.Duration("shard-health-interval", 10*time.Second, "shard worker health probe period")
		storeDir      = flag.String("store-dir", "", "durable store directory: lineages and results persist across restarts (empty = in-memory only)")
		quota         = flag.Float64("quota", 0, "per-tenant job/sweep submissions per second, shed with 429 beyond it (0 = unlimited)")
		quotaBurst    = flag.Int("quota-burst", 0, "per-tenant token-bucket burst behind -quota (0 derives one second's worth)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "pfcimd: bad -log-level %q: %v\n", *logLevel, err)
		return 2
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var workerAddrs []string
	for _, a := range strings.Split(*shardWorkers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			workerAddrs = append(workerAddrs, a)
		}
	}
	switch *role {
	case "", "coordinator":
		if *role == "coordinator" && len(workerAddrs) == 0 {
			fmt.Fprintln(os.Stderr, "pfcimd: -role=coordinator requires -shard-workers")
			return 2
		}
	case "worker":
		return runWorker(*addr, logger, *grace)
	default:
		fmt.Fprintf(os.Stderr, "pfcimd: bad -role %q (want \"\", coordinator, or worker)\n", *role)
		return 2
	}

	srv, err := service.New(service.Config{
		Workers:             *workers,
		QueueDepth:          *queueDepth,
		CacheSize:           *cacheSize,
		MaxJobTime:          *maxJobTime,
		TailMemoEntries:     *tailMemo,
		MaxUploadBytes:      *maxUpload,
		AllowPathLoad:       *allowPathLoad,
		SlowJobThreshold:    *slowJob,
		DisableJobTracing:   *noJobTrace,
		EnablePprof:         *enablePprof,
		Shards:              *shards,
		ShardWorkers:        workerAddrs,
		ShardRPCTimeout:     *shardTimeout,
		ShardHealthInterval: *shardHealth,
		StoreDir:            *storeDir,
		QuotaRate:           *quota,
		QuotaBurst:          *quotaBurst,
		Logger:              logger,
	})
	if err != nil {
		logger.Error("daemon init failed", "error", err)
		return 1
	}

	for _, path := range strings.Split(*preload, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		ds, err := srv.PreloadPath(path)
		if err != nil {
			logger.Error("preload failed", "path", path, "error", err)
			return 1
		}
		logger.Info("dataset preloaded", "path", path, "dataset", ds.ID,
			"transactions", ds.NumTransactions)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err)
		return 1
	}
	logger.Info("pfcimd listening", "addr", ln.Addr().String(),
		"workers", *workers, "cache_size", *cacheSize)

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		logger.Error("server failed", "error", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain the pool —
	// running jobs finish (up to the grace period), queued jobs cancel.
	logger.Info("shutdown signal received, draining", "grace", (*grace).String())
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(graceCtx); err != nil {
		logger.Warn("http shutdown incomplete", "error", err)
	}
	if err := srv.Drain(graceCtx); err != nil {
		logger.Warn("job drain incomplete, running jobs were canceled", "error", err)
	} else {
		logger.Info("drained cleanly")
	}
	return 0
}

// runWorker serves the shard worker protocol: it holds range slices of the
// datasets a coordinator places on it and answers per-shard tail and
// clause-factor RPCs. Workers keep no job state, so shutdown only waits for
// in-flight requests.
func runWorker(addr string, logger *slog.Logger, grace time.Duration) int {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Error("listen failed", "addr", addr, "error", err)
		return 1
	}
	logger.Info("pfcimd listening", "addr", ln.Addr().String(), "role", "worker")

	hs := &http.Server{Handler: shard.NewWorker(logger)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		logger.Error("server failed", "error", err)
		return 1
	case <-ctx.Done():
	}
	logger.Info("shutdown signal received", "grace", grace.String())
	graceCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(graceCtx); err != nil {
		logger.Warn("http shutdown incomplete", "error", err)
	}
	return 0
}
