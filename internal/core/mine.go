package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

// miner carries the run state shared by the DFS and BFS frameworks.
type miner struct {
	opts     Options
	db       *uncertain.DB
	probs    []float64 // tuple existence probabilities by tid
	allItems itemset.Itemset
	itemTids map[itemset.Item]*bitset.Bitset
	cands    []candidate // probabilistic frequent single-item candidates
	stats    Stats
	results  []ResultItem
	ctx      context.Context
	worker   *worker // non-nil when mining inside the work-stealing pool

	// rec receives phase-level wall-time spans when Options.Tracer is set;
	// nil otherwise (every method is a nil-safe no-op, so the untraced hot
	// path pays one nil check per call site). Parallel sub-miners each hold
	// their own worker's recorder, so recording is lock-free.
	rec *obs.Recorder

	// Reusable scratch, one owner per miner (parallel sub-miners get their
	// own): freeBufs is a freelist of tidset-sized bitsets, extBufs[d] backs
	// the extension records of the node at recursion depth d, and probsBuf
	// backs probsOf. All are safe because tidsets are never mutated once
	// built and every probsOf result is consumed before the next call.
	probsBuf []float64
	freeBufs []*bitset.Bitset
	extBufs  [][]extension

	// tailMemo caches exact Poisson-binomial tails by tidset content: dense
	// data makes distinct enumeration nodes produce identical intersections
	// (e.g. a clause tidset at one node equal to a child tidset probed
	// elsewhere), and Tail is a pure function of the tidset once probs and
	// MinSup are fixed, so a hit returns a bit-identical value. Keys are
	// cloned tidsets, verified with Equal on hash match; the memo stops
	// growing at maxTailMemoEntries.
	tailMemo     map[uint64][]tailEntry
	tailMemoSize int
}

// tailEntry is one memoized Poisson-binomial tail.
type tailEntry struct {
	tids *bitset.Bitset
	prF  float64
}

// defaultTailMemoEntries bounds the tail memo's footprint per miner when
// Options.TailMemoEntries is zero; beyond the cap, tails are still served
// from the memo but no longer added.
const defaultTailMemoEntries = 1 << 16

// tailOf returns Pr_F of the itemset with tidset b — the Poisson-binomial
// tail Pr[support ≥ MinSup] over b's tuple probabilities — consulting the
// memo first. probs, when non-nil, must be probsOf(b) (callers that already
// materialized it for the Chernoff-Hoeffding check pass it to avoid a
// second scan on a miss).
func (m *miner) tailOf(b *bitset.Bitset, probs []float64) float64 {
	if m.opts.TailMemoEntries < 0 {
		if probs == nil {
			probs = m.probsOf(b)
		}
		m.stats.TailEvaluations++
		return poibin.Tail(probs, m.opts.MinSup)
	}
	h := b.Hash()
	for _, e := range m.tailMemo[h] {
		if bitset.Equal(e.tids, b) {
			m.stats.TailMemoHits++
			return e.prF
		}
	}
	if probs == nil {
		probs = m.probsOf(b)
	}
	m.stats.TailEvaluations++
	prF := poibin.Tail(probs, m.opts.MinSup)
	if m.opts.TailMemoEntries > 0 && m.tailMemoSize < m.opts.TailMemoEntries {
		if m.tailMemo == nil {
			m.tailMemo = make(map[uint64][]tailEntry)
		}
		m.tailMemo[h] = append(m.tailMemo[h], tailEntry{tids: b.Clone(), prF: prF})
		m.tailMemoSize++
	}
	return prF
}

// getBuf returns a tidset-sized scratch bitset from the miner's freelist.
func (m *miner) getBuf() *bitset.Bitset {
	if n := len(m.freeBufs); n > 0 {
		b := m.freeBufs[n-1]
		m.freeBufs = m.freeBufs[:n-1]
		return b
	}
	return bitset.New(m.db.N())
}

// putBuf returns scratch bitsets to the freelist.
func (m *miner) putBuf(bufs ...*bitset.Bitset) {
	m.freeBufs = append(m.freeBufs, bufs...)
}

// extBuf returns the (empty) extension-record slice for recursion depth d;
// the backing array is reused across the siblings at that depth.
func (m *miner) extBuf(d int) []extension {
	for len(m.extBufs) <= d {
		m.extBufs = append(m.extBufs, nil)
	}
	return m.extBufs[d][:0]
}

// releaseExts returns every retained extension tidset to the freelist and
// parks the record slice for reuse at depth d.
func (m *miner) releaseExts(d int, exts []extension) {
	for i := range exts {
		if exts[i].tids != nil {
			m.putBuf(exts[i].tids)
			exts[i].tids = nil
		}
	}
	m.extBufs[d] = exts[:0]
}

// candidate is a single item that survived the candidate phase, with its
// tidset, count and exact frequent probability.
type candidate struct {
	item itemset.Item
	tids *bitset.Bitset
	cnt  int
	prF  float64
}

// extension records one probed child of an enumeration node: the
// intersected tidset, its count, and — when the extension survived
// Chernoff-Hoeffding pruning — the exact frequent probability already
// computed in the extension loop. evaluate consumes these records, so the
// checking phase never recomputes a Poisson-binomial tail or re-intersects
// a tidset the enumeration has already paid for. exts[i] always
// corresponds to candidate position startPos+i.
type extension struct {
	item   itemset.Item
	tids   *bitset.Bitset // nil when cnt < MinSup (tidset not retained)
	cnt    int
	prF    float64 // exact Pr_F(X+e), valid only when hasPrF
	hasPrF bool
}

// Mine runs MPFCI (or the configured variant) over db and returns every
// probabilistic frequent closed itemset, sorted lexicographically.
func Mine(db *uncertain.DB, opts Options) (*Result, error) {
	return MineContext(context.Background(), db, opts)
}

// MineContext is Mine with cancellation: the run aborts with ctx.Err() at
// the next enumeration-tree node once ctx is done. Long mining runs at low
// support thresholds can take minutes; this is the production off-switch.
func MineContext(ctx context.Context, db *uncertain.DB, opts Options) (*Result, error) {
	res, _, err := mineWithMiner(ctx, db, opts)
	return res, err
}

// mineWithMiner runs a full mining pass and additionally returns the miner
// so MineEvaluated can wrap its state (index, bitset freelist, tail memo)
// in an Evaluator.
func mineWithMiner(ctx context.Context, db *uncertain.DB, opts Options) (*Result, *miner, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	idx := db.Index()
	m := &miner{
		opts:     opts,
		db:       db,
		probs:    db.Probs(),
		allItems: idx.Items,
		itemTids: idx.Tidsets,
		ctx:      ctx,
		rec:      opts.Tracer.Recorder(0),
	}
	candStart := m.rec.Now()
	m.buildCandidates()
	m.rec.Span(obs.PhaseCandidates, 0, candStart)

	switch opts.Search {
	case BFS:
		err = m.mineBFS()
	default:
		err = m.mineDFS()
	}
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(m.results, func(i, j int) bool {
		return itemset.Compare(m.results[i].Items, m.results[j].Items) < 0
	})
	res := &Result{Itemsets: m.results, Stats: m.stats, Options: opts}
	if opts.Tracer != nil {
		opts.Tracer.AddMineWall(time.Since(start).Nanoseconds())
		res.Profile = opts.Tracer.Profile()
	}
	return res, m, nil
}

// buildCandidates is the first phase of Fig. 1: construct the single-item
// candidate set with Chernoff-Hoeffding pruning (Lemma 4.1) and the exact
// frequent-probability test. Items whose frequent probability cannot exceed
// pfct cannot occur in any probabilistic frequent closed itemset because
// Pr_F is anti-monotone and Pr_FC(X) ≤ Pr_F(X).
func (m *miner) buildCandidates() {
	for _, e := range m.allItems {
		tids := m.itemTids[e]
		cnt := tids.Count()
		if cnt < m.opts.MinSup {
			continue
		}
		probs := m.probsOf(tids)
		if !m.opts.DisableCH {
			if poibin.TailUpperBound(probs, m.opts.MinSup) <= m.opts.PFCT {
				m.stats.CHPruned++
				continue
			}
		}
		prF := m.tailOf(tids, probs)
		if prF <= m.opts.PFCT {
			m.stats.FreqPruned++
			continue
		}
		m.cands = append(m.cands, candidate{item: e, tids: tids, cnt: cnt, prF: prF})
	}
	m.stats.CandidateItems = len(m.cands)
}

// trace logs one enumeration event when tracing is enabled.
func (m *miner) trace(format string, args ...interface{}) {
	if m.opts.Trace != nil {
		fmt.Fprintf(m.opts.Trace, format+"\n", args...)
	}
}

// mineDFS drives the ProbFC recursion of Fig. 3 from the root.
func (m *miner) mineDFS() error {
	if m.opts.Parallelism > 1 && m.opts.Trace == nil {
		return m.mineDFSParallel()
	}
	for pos := 0; pos < len(m.cands); pos++ {
		c := m.cands[pos]
		if err := m.probFC(itemset.Itemset{c.item}, c.tids.Clone(), c.cnt, c.prF, pos+1); err != nil {
			return err
		}
	}
	return nil
}

// probFC is one node of the depth-first enumeration: X with tidset tids,
// count = |tids|, exact frequent probability prF; extensions come from
// candidate positions ≥ startPos.
func (m *miner) probFC(x itemset.Itemset, tids *bitset.Bitset, count int, prF float64, startPos int) error {
	if m.ctx != nil {
		if err := m.ctx.Err(); err != nil {
			return err
		}
	}
	m.stats.NodesVisited++
	m.trace("visit %v (count=%d, PrF=%.4f)", x, count, prF)

	// Span bookkeeping (no-ops when untraced): the detailed span covers the
	// whole subtree [nodeStart, record time], while the expand-phase
	// aggregate receives only this node's self time — wall time net of
	// inline child recursion (childNS) and of the checking cascade, which
	// records its own spans inside evaluate — so phase totals stay additive.
	nodeStart := m.rec.Now()
	var childNS int64

	// Superset pruning (Lemma 4.2): if some item e smaller than the last
	// item of X (so X is not a prefix of X+e) and not in X satisfies
	// count(X+e) = count(X), then X and every superset with X as prefix
	// have zero frequent closed probability — abandon the subtree. Because
	// the child tidset is a subset of tids, count equality is exactly
	// tids ⊆ tids(e), so the word loop bails out at the first uncovered
	// word instead of finishing a full popcount.
	if !m.opts.DisableSuperset {
		last := x.Last()
		for _, c := range m.cands {
			if c.item >= last {
				break
			}
			if x.Contains(c.item) {
				continue
			}
			if bitset.IsSubset(tids, c.tids) {
				m.stats.SupersetPruned++
				m.trace("  superset-prune %v: count(%v+%v) = count — subtree dead (Lemma 4.2)", x, x, itemset.Itemset{c.item})
				m.rec.Node(len(x), nodeStart, m.rec.Now()-nodeStart)
				return nil
			}
		}
	}

	depth := len(x)
	exts := m.extBuf(depth)
	selfDead := false
	var err error
	for pos := startPos; pos < len(m.cands); pos++ {
		c := m.cands[pos]
		buf := m.getBuf()
		cc := bitset.AndInto(buf, tids, c.tids)
		if cc < m.opts.MinSup {
			// Pr_F(X+e) = 0: no subtree, and later no extension event.
			m.putBuf(buf)
			exts = append(exts, extension{item: c.item, cnt: cc})
			continue
		}
		rec := extension{item: c.item, tids: buf, cnt: cc}
		childProbs := m.probsOf(buf)
		// Chernoff-Hoeffding pruning of the extension (Lemma 4.1).
		if !m.opts.DisableCH {
			if poibin.TailUpperBound(childProbs, m.opts.MinSup) <= m.opts.PFCT {
				m.stats.CHPruned++
				m.trace("  ch-prune %v (Lemma 4.1 bound ≤ pfct)", x.Extend(c.item))
				exts = append(exts, rec)
				continue
			}
		}
		childPrF := m.tailOf(buf, childProbs)
		rec.prF, rec.hasPrF = childPrF, true
		exts = append(exts, rec)
		if childPrF <= m.opts.PFCT {
			// Pr_F is anti-monotone, so the whole X+e subtree is out.
			m.stats.FreqPruned++
			m.trace("  freq-prune %v (PrF=%.4f ≤ pfct)", x.Extend(c.item), childPrF)
			continue
		}
		if !m.opts.DisableSubset && cc == count {
			m.trace("  subset-absorb %v into %v: later siblings skipped (Lemma 4.3)", x, x.Extend(c.item))
			// Subset pruning (Lemma 4.3): X+e always co-occurs with X, so
			// X is never closed, and every later sibling X+f (f > e) and
			// its descendants avoid e and are therefore never closed
			// either. Only the X+e subtree can contain closed itemsets.
			selfDead = true
			m.stats.SubsetPruned++
			t := m.rec.Now()
			err = m.descend(x, c.item, buf, cc, childPrF, pos+1)
			childNS += m.rec.Now() - t
			break
		}
		t := m.rec.Now()
		err = m.descend(x, c.item, buf, cc, childPrF, pos+1)
		childNS += m.rec.Now() - t
		if err != nil {
			break
		}
	}

	if err != nil || selfDead {
		m.releaseExts(depth, exts)
		m.rec.Node(depth, nodeStart, m.rec.Now()-nodeStart-childNS)
		return err
	}
	selfNS := m.rec.Now() - nodeStart - childNS
	ev, err := m.evaluate(x, tids, count, prF, exts)
	m.releaseExts(depth, exts)
	m.rec.Node(depth, nodeStart, selfNS)
	if err != nil {
		return err
	}
	m.trace("  evaluate %v: PrFC≈%.4f in [%.4f, %.4f] via %v → accepted=%v",
		x, ev.prob, ev.lower, ev.upper, ev.method, ev.accepted)
	if ev.accepted {
		m.results = append(m.results, ResultItem{
			Items:    x.Clone(),
			Prob:     ev.prob,
			Lower:    ev.lower,
			Upper:    ev.upper,
			FreqProb: prF,
			Method:   ev.method,
		})
	}
	return nil
}

// descend recurses into the child X+e — inline in the common case, or as a
// task on the work-stealing pool when the node is shallow enough and some
// worker is starving. A spawned task owns a clone of the child tidset; the
// caller's extension record keeps the original for its own evaluation.
func (m *miner) descend(x itemset.Itemset, e itemset.Item, tids *bitset.Bitset, count int, prF float64, startPos int) error {
	child := x.Extend(e)
	if m.spawnable(len(x)) {
		m.stats.TasksSpawned++
		m.worker.push(task{items: child, tids: tids.Clone(), count: count, prF: prF, startPos: startPos})
		return nil
	}
	return m.probFC(child, tids, count, prF, startPos)
}
