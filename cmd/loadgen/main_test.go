package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/probdata/pfcim/internal/service"
	"github.com/probdata/pfcim/internal/shard"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestRunLoadAgainstCoordinator drives a short load against an in-process
// coordinator+2-worker deployment — the acceptance deployment shape — and
// checks the report's form: every endpoint class present with sane
// percentiles, no errors, and a summary line that adds up.
func TestRunLoadAgainstCoordinator(t *testing.T) {
	urls := make([]string, 2)
	for i := range urls {
		srv := httptest.NewServer(shard.NewWorker(quietLogger()))
		urls[i] = srv.URL
		defer srv.Close()
	}
	s, err := service.New(service.Config{
		Workers:         2,
		Logger:          quietLogger(),
		Shards:          2,
		ShardWorkers:    urls,
		ShardRPCTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()

	report, err := runLoad(loadConfig{
		Target:      ts.URL,
		Duration:    2 * time.Second,
		Concurrency: 2,
		Seed:        7,
		JobTimeout:  20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report) < 2 {
		t.Fatalf("report has %d points, want classes + summary", len(report))
	}

	classes := map[string]ReportPoint{}
	var total ReportPoint
	for _, pt := range report {
		if pt.Name == "loadgen-total" {
			total = pt
			continue
		}
		classes[pt.Class] = pt
	}
	// The mix visits all mutation classes quickly; scrape-only classes may
	// be rarer but submits/watched/appends dominate the weights.
	for _, want := range []string{classSubmit, classWatched, classStatus} {
		pt, ok := classes[want]
		if !ok {
			t.Errorf("report missing class %q (got %v)", want, classes)
			continue
		}
		if pt.Requests == 0 {
			t.Errorf("class %q has 0 requests", want)
		}
		if pt.Errors != 0 {
			t.Errorf("class %q saw %d errors", want, pt.Errors)
		}
		if pt.P50Millis <= 0 || pt.P99Millis < pt.P50Millis {
			t.Errorf("class %q percentiles implausible: p50=%v p99=%v", want, pt.P50Millis, pt.P99Millis)
		}
	}
	var sum int64
	for _, pt := range classes {
		sum += pt.Requests
		if pt.Errors != 0 {
			t.Errorf("class %q saw %d errors", pt.Class, pt.Errors)
		}
	}
	if total.Requests != sum {
		t.Errorf("summary requests = %d, want the class sum %d", total.Requests, sum)
	}
	if total.JobsDone == 0 {
		t.Error("no jobs completed during the load")
	}
	if total.JobsFailed != 0 {
		t.Errorf("%d jobs failed during the load", total.JobsFailed)
	}
	if total.Seed != 7 || total.Concurrency != 2 || total.DurationSec <= 0 {
		t.Errorf("summary misses run parameters: %+v", total)
	}

	// The report must round-trip as BENCH-form JSON (array of named points).
	blob, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var back []map[string]any
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("report is not an array of points: %v", err)
	}
	for _, pt := range back {
		if _, ok := pt["name"]; !ok {
			t.Errorf("point without name: %v", pt)
		}
	}
}

// TestRunLoadRestartScenarioPlumbing runs the restart scenario with a no-op
// restart command against an in-process daemon: the phase machinery must
// fire (outage measured, epoch bumped), the summary must carry an explicit
// post_recovery_errors — zero, since nothing actually died — and the post-
// recovery traffic must all succeed. The real kill-restart run is CI's
// BENCH_8.json step against the built binary.
func TestRunLoadRestartScenarioPlumbing(t *testing.T) {
	s, err := service.New(service.Config{Workers: 2, Logger: quietLogger()})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()

	report, err := runLoad(loadConfig{
		Target:       ts.URL,
		Duration:     2 * time.Second,
		Concurrency:  2,
		Seed:         3,
		JobTimeout:   20 * time.Second,
		RestartCmd:   "true",
		RestartAfter: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := report[len(report)-1]
	if total.Name != "loadgen-total" {
		t.Fatalf("last point is %q, want the summary", total.Name)
	}
	if total.PostRecoveryErrors == nil {
		t.Fatal("restart run summary lacks post_recovery_errors")
	}
	if *total.PostRecoveryErrors != 0 {
		t.Fatalf("post_recovery_errors = %d, want 0 (nothing was killed)", *total.PostRecoveryErrors)
	}
	if total.OutageMillis <= 0 {
		t.Fatalf("outage_ms = %v, want > 0 (healthz round-trip at least)", total.OutageMillis)
	}
	if total.Errors != 0 {
		t.Fatalf("no-op restart produced %d errors", total.Errors)
	}
	// The summary must round-trip with the explicit zero present.
	blob, err := json.Marshal(total)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if v, ok := back["post_recovery_errors"]; !ok || v != float64(0) {
		t.Fatalf("summary JSON lacks explicit post_recovery_errors: %s", blob)
	}
}

func TestRunLoadRestartCommandFailure(t *testing.T) {
	s, err := service.New(service.Config{Workers: 1, Logger: quietLogger()})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	_, err = runLoad(loadConfig{
		Target:       ts.URL,
		Duration:     1 * time.Second,
		Concurrency:  1,
		Seed:         4,
		RestartCmd:   "exit 7",
		RestartAfter: 100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("failing restart command should fail the run")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	lats := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{{0.50, 5}, {0.90, 9}, {0.95, 10}, {0.99, 10}, {1.0, 10}} {
		if got := percentile(lats, tc.p); got != tc.want {
			t.Errorf("percentile(%.2f) = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %d, want 0", got)
	}
}
