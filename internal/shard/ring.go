package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is how many virtual nodes each worker contributes to the
// consistent-hash ring. More vnodes smooth the shard distribution across
// heterogeneous worker counts.
const ringVnodes = 64

// Ring is a consistent-hash ring over worker addresses. Placement of
// (dataset, shard) pairs is deterministic given the worker list, so a
// coordinator restarted with the same -shard-workers flag re-derives the
// identical placement without any stored state.
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	addr string
}

// NewRing builds the ring; the worker list must be non-empty.
func NewRing(workers []string) (*Ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one worker")
	}
	r := &Ring{points: make([]ringPoint, 0, len(workers)*ringVnodes)}
	for _, w := range workers {
		for i := 0; i < ringVnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", w, i)), addr: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].addr < r.points[j].addr
	})
	return r, nil
}

// Pick returns the worker owning shard i of the dataset: the first virtual
// node clockwise of hash(dataset/shard).
func (r *Ring) Pick(dataset string, shard int) string {
	h := hash64(fmt.Sprintf("%s/%d", dataset, shard))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].addr
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// Raw FNV-1a of short, similar keys ("w1:8081#0", "w1:8081#1", …)
	// clusters in narrow arcs — every vnode of a worker lands consecutively
	// and every shard key falls into the same gap, defeating the ring. The
	// 64-bit avalanche finalizer spreads them uniformly.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
