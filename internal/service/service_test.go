package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/gen"
	"github.com/probdata/pfcim/internal/uncertain"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

// hardDB is a workload whose default mine takes seconds — long enough that
// tests can observe and cancel a running job.
func hardDB(t *testing.T) *uncertain.DB {
	t.Helper()
	return gen.AssignGaussian(gen.MushroomLike(0.03, 42), 0.5, 0.5, 43)
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return v
}

func uploadDB(t *testing.T, baseURL string, db *uncertain.DB) DatasetInfo {
	t.Helper()
	var buf bytes.Buffer
	if err := uncertain.Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/datasets", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("dataset upload: status %d", resp.StatusCode)
	}
	return decode[DatasetInfo](t, resp)
}

// waitJob polls until the job reaches a terminal status.
func waitJob(t *testing.T, baseURL, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		info := decode[JobInfo](t, resp)
		if info.Status.Terminal() {
			return info
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobInfo{}
}

func TestRegistryContentHash(t *testing.T) {
	r := NewRegistry()
	d1, fresh, err := r.Register(uncertain.PaperExample(), false)
	if err != nil || !fresh {
		t.Fatalf("first registration: fresh=%v err=%v", fresh, err)
	}
	d2, fresh, err := r.Register(uncertain.PaperExample(), false)
	if err != nil || fresh {
		t.Fatalf("re-registration should dedupe: fresh=%v err=%v", fresh, err)
	}
	if d1.ID != d2.ID || d1 != d2 {
		t.Errorf("same content must map to the same dataset: %q vs %q", d1.ID, d2.ID)
	}
	d3, _, err := r.Register(uncertain.PaperExampleExtended(), false)
	if err != nil {
		t.Fatal(err)
	}
	if d3.ID == d1.ID {
		t.Error("different content must map to different ids")
	}
	if got := r.Len(); got != 2 {
		t.Errorf("registry has %d datasets, want 2", got)
	}
	if d1.Stats.NumTransactions != 4 || d1.Stats.NumItems != 4 {
		t.Errorf("Table II stats wrong: %+v", d1.Stats)
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	mk := func(n int) core.ResultJSON {
		return core.ResultJSON{Itemsets: make([]core.ResultItemJSON, n)}
	}
	c.put("a", mk(1))
	c.put("b", mk(2))
	if _, ok := c.get("a"); !ok { // promotes a
		t.Fatal("a should be cached")
	}
	c.put("c", mk(3)) // evicts b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if got, ok := c.get("a"); !ok || len(got.Itemsets) != 1 {
		t.Error("a should have survived eviction")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be cached")
	}
	disabled := newResultCache(-1)
	disabled.put("x", mk(1))
	if _, ok := disabled.get("x"); ok {
		t.Error("disabled cache should never store")
	}
}

func TestDatasetAndJobLifecycle(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())
	if ds.NumTransactions != 4 || ds.NumItems != 4 {
		t.Fatalf("Table II stats wrong: %+v", ds)
	}

	// Re-upload is idempotent: 200, same id.
	var buf bytes.Buffer
	if err := uncertain.Write(&buf, uncertain.PaperExample()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload status %d, want 200", resp.StatusCode)
	}
	if got := decode[DatasetInfo](t, resp); got.ID != ds.ID {
		t.Fatalf("re-upload id %q, want %q", got.ID, ds.ID)
	}

	// Mine Example 1.2: min_sup 2, pfct 0.8 → {abc: 0.8754, abcd: 0.81}.
	resp = postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	job := decode[JobInfo](t, resp)
	info := waitJob(t, ts.URL, job.ID)
	if info.Status != StatusDone {
		t.Fatalf("job = %+v, want done", info)
	}
	if info.Cached {
		t.Error("first job cannot be a cache hit")
	}
	if n := len(info.Result.Itemsets); n != 2 {
		t.Fatalf("got %d itemsets, want 2", n)
	}
	if got := info.Result.Itemsets[1].Prob; math.Abs(got-0.81) > 1e-9 {
		t.Errorf("Pr_FC(abcd) = %v, want 0.81", got)
	}

	// Same sweep point again: served from cache, already terminal at submit.
	resp = postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8, Parallelism: 4}, // execution knob: same cache key
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit status %d, want 200", resp.StatusCode)
	}
	hit := decode[JobInfo](t, resp)
	if !hit.Cached || hit.Status != StatusDone {
		t.Fatalf("expected a cache hit, got %+v", hit)
	}
	if !bytes.Equal(mustJSON(t, hit.Result.Itemsets), mustJSON(t, info.Result.Itemsets)) {
		t.Error("cached result differs from the mined result")
	}
	m := s.Metrics()
	if m["cache_hits"] != 1 || m["cache_misses"] != 1 {
		t.Errorf("cache counters = hits %d misses %d, want 1/1", m["cache_hits"], m["cache_misses"])
	}
	if m["jobs_done"] != 2 {
		t.Errorf("jobs_done = %d, want 2", m["jobs_done"])
	}

	// Listings include both jobs, without result payloads.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[[]JobInfo](t, resp)
	if len(list) != 2 {
		t.Fatalf("job list has %d entries, want 2", len(list))
	}
	for _, j := range list {
		if j.Result != nil {
			t.Error("job listing should elide results")
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestSubmitValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	// Unknown dataset.
	resp := postJSON(t, ts.URL+"/v1/jobs", jobRequest{Dataset: "nope", Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())
	// Invalid options (PFCT out of range) are rejected at submit.
	resp = postJSON(t, ts.URL+"/v1/jobs", jobRequest{Dataset: ds.ID, Options: core.OptionsJSON{MinSup: 2, PFCT: 1.5}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad options: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	// Malformed dataset upload.
	r2, err := http.Post(ts.URL+"/v1/datasets", "text/plain", strings.NewReader("1 2 : 7.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad dataset: status %d, want 400", r2.StatusCode)
	}
	r2.Body.Close()
	// Path loading is disabled by default.
	r3 := postJSON(t, ts.URL+"/v1/datasets", map[string]string{"path": "/etc/hostname"})
	if r3.StatusCode != http.StatusForbidden {
		t.Errorf("path load: status %d, want 403", r3.StatusCode)
	}
	r3.Body.Close()
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	ds := uploadDB(t, ts.URL, hardDB(t))
	resp := postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 4, PFCT: 0.5},
	})
	job := decode[JobInfo](t, resp)

	// Wait for the worker to pick it up, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(ts.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if decode[JobInfo](t, r).Status == StatusRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	info := waitJob(t, ts.URL, job.ID)
	if info.Status != StatusCanceled {
		t.Fatalf("job = %+v, want canceled", info)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v; MineContext should abort at the next node", elapsed)
	}
	if !strings.Contains(info.Error, "context canceled") {
		t.Errorf("canceled job error = %q, want a context error", info.Error)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 8})
	hard := uploadDB(t, ts.URL, hardDB(t))
	// Occupy the single worker, then queue a second job and cancel it
	// before it can start.
	blocker := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: hard.ID, Options: core.OptionsJSON{MinSup: 4, PFCT: 0.5},
	}))
	queued := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: hard.ID, Options: core.OptionsJSON{MinSup: 5, PFCT: 0.5},
	}))
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	info := decode[JobInfo](t, r)
	if info.Status != StatusCanceled {
		t.Fatalf("queued job = %+v, want canceled immediately", info)
	}
	// Cancel the blocker too so cleanup drains fast.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.ID, nil)
	if r, err := http.DefaultClient.Do(req); err == nil {
		r.Body.Close()
	}
	waitJob(t, ts.URL, blocker.ID)
	if got := s.Metrics()["jobs_canceled"]; got < 1 {
		t.Errorf("jobs_canceled = %d, want ≥ 1", got)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})
	hard := uploadDB(t, ts.URL, hardDB(t))
	submit := func(minSup int) *http.Response {
		return postJSON(t, ts.URL+"/v1/jobs", jobRequest{
			Dataset: hard.ID, Options: core.OptionsJSON{MinSup: minSup, PFCT: 0.5},
		})
	}
	var ids []string
	sawFull := false
	// One job occupies the worker, one fills the queue; a submission after
	// that must be shed with a structured 429. The worker may dequeue
	// between our submissions, so allow a few attempts.
	for minSup := 4; minSup < 10 && !sawFull; minSup++ {
		resp := submit(minSup)
		switch resp.StatusCode {
		case http.StatusAccepted:
			ids = append(ids, decode[JobInfo](t, resp).ID)
		case http.StatusTooManyRequests:
			sawFull = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("queue-full 429 lacks Retry-After")
			}
			er := decode[errorResponse](t, resp)
			if er.Reason != "queue_full" {
				t.Errorf("queue-full reason = %q, want queue_full", er.Reason)
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if !sawFull {
		t.Error("queue never reported full")
	}
	if s.Metrics()["jobs_shed_queue_full"] < 1 {
		t.Error("jobs_shed_queue_full not counted")
	}
	for _, id := range ids { // drain fast
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if r, err := http.DefaultClient.Do(req); err == nil {
			r.Body.Close()
		}
	}
}

func TestJobTimeout(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	hard := uploadDB(t, ts.URL, hardDB(t))
	job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset:   hard.ID,
		Options:   core.OptionsJSON{MinSup: 4, PFCT: 0.5},
		TimeoutMS: 50,
	}))
	info := waitJob(t, ts.URL, job.ID)
	if info.Status != StatusFailed {
		t.Fatalf("job = %+v, want failed (deadline)", info)
	}
	if !strings.Contains(info.Error, "deadline") {
		t.Errorf("error = %q, want deadline exceeded", info.Error)
	}
}

// TestPanicIsolation feeds the manager a job that panics inside the miner
// (nil database) and checks the worker survives it and the job fails with
// the panic recorded.
func TestPanicIsolation(t *testing.T) {
	mtr := newMetrics()
	m := newManager(Config{Workers: 1, QueueDepth: 4}, newResultCache(4), mtr, quietLogger(), nil)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Drain(ctx)
	}()
	j := &job{
		id: "boom", dataset: "none", db: nil,
		opts:   core.Options{MinSup: 2, PFCT: 0.8},
		status: StatusQueued, submitted: time.Now(),
	}
	m.mu.Lock()
	m.addLocked(j)
	m.mu.Unlock()
	m.run(j)
	info, err := m.Get("boom")
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusFailed || !strings.Contains(info.Error, "panicked") {
		t.Fatalf("job = %+v, want failed with panic recorded", info)
	}
	if mtr.JobsFailed.Value() != 1 {
		t.Errorf("jobs_failed = %d, want 1", mtr.JobsFailed.Value())
	}

	// The pool is still alive: a real job still runs to completion.
	ds, _, err := NewRegistry().Register(uncertain.PaperExample(), false)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := m.Submit(ds, ds.ID, core.OptionsJSON{MinSup: 2, PFCT: 0.8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info, err := m.Get(ok.ID)
		if err != nil {
			t.Fatal(err)
		}
		if info.Status.Terminal() {
			if info.Status != StatusDone {
				t.Fatalf("post-panic job = %+v, want done", info)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("post-panic job never finished")
}

func TestDrainCancelsQueuedAndStopsIntake(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 4})
	hard := uploadDB(t, ts.URL, hardDB(t))
	running := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: hard.ID, Options: core.OptionsJSON{MinSup: 4, PFCT: 0.5},
	}))
	queued := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: hard.ID, Options: core.OptionsJSON{MinSup: 5, PFCT: 0.5},
	}))

	// Drain with a tight deadline: the running job is context-canceled
	// rather than awaited, the queued job never starts.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want deadline exceeded (running job was yanked)", err)
	}
	q, err := s.Jobs().Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if q.Status != StatusCanceled {
		t.Errorf("queued job after drain = %+v, want canceled", q)
	}
	r, err := s.Jobs().Get(running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Status.Terminal() {
		t.Errorf("running job after drain = %+v, want terminal", r)
	}
	// Intake is closed.
	if _, err := s.Jobs().Submit(mustDataset(t, s), "x", core.OptionsJSON{MinSup: 2, PFCT: 0.8}, 0); err != ErrShuttingDown {
		t.Errorf("post-drain submit error = %v, want ErrShuttingDown", err)
	}
	// Second drain is a no-op and returns promptly.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Errorf("second Drain = %v, want nil", err)
	}
}

func mustDataset(t *testing.T, s *Server) *Dataset {
	t.Helper()
	ds, _, err := s.Registry().Register(uncertain.PaperExample(), false)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" {
		t.Errorf("healthz status = %q, want ok", h.Status)
	}
}

func TestPathLoadWhenEnabled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table2.txt")
	var buf bytes.Buffer
	if err := uncertain.Write(&buf, uncertain.PaperExample()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{Workers: 1, AllowPathLoad: true})
	resp := postJSON(t, ts.URL+"/v1/datasets", map[string]string{"path": path})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("path load status %d, want 201", resp.StatusCode)
	}
	ds := decode[DatasetInfo](t, resp)
	if ds.NumTransactions != 4 {
		t.Errorf("loaded dataset stats wrong: %+v", ds)
	}
}
