package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
	"github.com/probdata/pfcim/internal/world"
)

func TestWorldSamplerPaperExample(t *testing.T) {
	db := uncertain.PaperExample()
	ws := NewWorldSampler(db, 7)
	abc := itemset.FromInts(0, 1, 2)
	got, err := ws.FreqClosedProb(abc, 2, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8754) > 0.01 {
		t.Errorf("sampled Pr_FC(abc) = %v, want ≈ 0.8754", got)
	}
	abcd := itemset.FromInts(0, 1, 2, 3)
	got, err = ws.FreqClosedProb(abcd, 2, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.81) > 0.01 {
		t.Errorf("sampled Pr_FC(abcd) = %v, want ≈ 0.81", got)
	}
}

func TestWorldSamplerRandomAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		db := randomDB(rng, 8, 5)
		items := db.Items()
		x := itemset.Itemset{items[rng.Intn(len(items))]}
		minSup := rng.Intn(2) + 1
		exact, err := world.FreqClosedProb(db, x, minSup)
		if err != nil {
			t.Fatal(err)
		}
		ws := NewWorldSampler(db, int64(trial))
		got, err := ws.FreqClosedProb(x, minSup, 60000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-exact) > 0.02 {
			t.Errorf("trial %d: sampled %v, exact %v for %v", trial, got, exact, x)
		}
	}
}

func TestWorldSamplerValidation(t *testing.T) {
	ws := NewWorldSampler(uncertain.PaperExample(), 1)
	if _, err := ws.FreqClosedProb(itemset.FromInts(0), 2, 0); err == nil {
		t.Error("n = 0 should fail")
	}
	if _, err := ws.FreqClosedProb(itemset.FromInts(0), 0, 10); err == nil {
		t.Error("minSup = 0 should fail")
	}
}

func TestWorldSamplerAbsentItemset(t *testing.T) {
	db := uncertain.PaperExample()
	ws := NewWorldSampler(db, 1)
	// d alone appears in only 2 transactions; at minSup 3 the probability
	// is exactly 0.
	got, err := ws.FreqClosedProb(itemset.FromInts(3), 3, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("impossible event sampled at %v", got)
	}
}

func TestEstimateSamples(t *testing.T) {
	n := EstimateSamples(0.01, 0.05)
	// ln(40)/0.0002 ≈ 18445.
	if n < 18000 || n > 19000 {
		t.Errorf("EstimateSamples(0.01, 0.05) = %d", n)
	}
	if EstimateSamples(0, 0.1) != 0 || EstimateSamples(0.1, 1) != 0 {
		t.Error("invalid parameters should give 0")
	}
	// Halving ε quadruples the count.
	a, b := EstimateSamples(0.1, 0.1), EstimateSamples(0.05, 0.1)
	if ratio := float64(b) / float64(a); math.Abs(ratio-4) > 0.05 {
		t.Errorf("sample scaling = %v, want 4", ratio)
	}
}
