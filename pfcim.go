// Package pfcim discovers threshold-based probabilistic frequent closed
// itemsets over uncertain (probabilistic) transaction data, implementing
// the MPFCI algorithm of Tong, Chen & Ding (ICDE 2012) together with the
// substrates its evaluation depends on: exact frequent/closed itemset
// miners, a probabilistic frequent itemset miner, possible-world oracles,
// and synthetic uncertain-data generators.
//
// # Model
//
// A Database is a set of transactions under the tuple-uncertainty model:
// transaction i carries an itemset and an existence probability p_i, and
// transactions exist independently. The database thus induces a
// distribution over exponentially many possible worlds, each an ordinary
// exact database. An itemset X is a probabilistic frequent closed itemset
// when the total probability of the worlds in which X is a frequent closed
// itemset — its frequent closed probability Pr_FC(X) — exceeds a
// user-supplied threshold pfct. Computing Pr_FC(X) is #P-hard, so the
// miner combines exact dynamic programming, analytic probability bounds
// and an FPRAS Monte-Carlo estimator.
//
// # Quick start
//
//	db := pfcim.MustNewDatabase([]pfcim.Transaction{
//		{Items: pfcim.NewItemset(0, 1, 2), Prob: 0.9},
//		{Items: pfcim.NewItemset(0, 1), Prob: 0.6},
//	})
//	res, err := pfcim.Mine(db, pfcim.Options{MinSup: 1, PFCT: 0.5})
//	for _, r := range res.Itemsets {
//		fmt.Println(r.Items, r.Prob)
//	}
//
// # Context-first convention
//
// Every mining entry point that can run long has a context-first form —
// MineContext, MineTopKContext, MineSweep — that aborts with ctx.Err() at
// the next enumeration-tree node once ctx is done. The context-free names
// (Mine, MineTopK) are thin wrappers over their context-first counterparts
// with context.Background(), kept for convenience; new code that may need
// cancellation or deadlines should call the context-first forms directly.
//
// # Parameter sweeps
//
// Threshold tuning rarely needs one mining run: it needs a grid. MineSweep
// mines one database at many (MinSup, PFCT, Epsilon, Delta) operating
// points while running only one full enumeration per MinSup group — points
// differing only in pfct are derived from the loosest run by bound-aware
// filtering, byte-identical to independent Mine calls at those points (see
// DESIGN §10).
//
// # Options validation
//
// All option structs (Options, FrequentOptions, RuleOptions) validate the
// same way: a Canonical method checks ranges, applies the defaults the
// miner would, and clears execution-only knobs, so equal canonical forms
// guarantee identical result sets. Mining entry points reject invalid
// options with an error naming the offending field.
//
// See the examples directory for complete programs and DESIGN.md for the
// algorithm inventory.
package pfcim

import (
	"context"
	"io"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/exact"
	"github.com/probdata/pfcim/internal/gen"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/pfim"
	"github.com/probdata/pfcim/internal/rules"
	"github.com/probdata/pfcim/internal/stream"
	"github.com/probdata/pfcim/internal/sweep"
	"github.com/probdata/pfcim/internal/uncertain"
	"github.com/probdata/pfcim/internal/world"
)

// Item identifies a distinct item.
type Item = itemset.Item

// Itemset is a sorted, duplicate-free set of items.
type Itemset = itemset.Itemset

// NewItemset builds an itemset from item ids (any order, duplicates
// removed).
func NewItemset(items ...int) Itemset { return itemset.FromInts(items...) }

// Transaction is one uncertain tuple: an itemset plus its existence
// probability in (0, 1].
type Transaction = uncertain.Transaction

// Database is an uncertain transaction database under tuple uncertainty.
type Database = uncertain.DB

// DatabaseStats summarizes a database (size, item count, lengths).
type DatabaseStats = uncertain.Stats

// NewDatabase validates and builds a Database.
func NewDatabase(trans []Transaction) (*Database, error) { return uncertain.NewDB(trans) }

// MustNewDatabase is NewDatabase that panics on invalid input.
func MustNewDatabase(trans []Transaction) *Database { return uncertain.MustNewDB(trans) }

// ReadDatabase parses the text interchange format: one transaction per
// line, "item item … : probability"; a missing probability means 1.
func ReadDatabase(r io.Reader) (*Database, error) { return uncertain.Read(r) }

// WriteDatabase serializes a Database in the text interchange format.
func WriteDatabase(w io.Writer, db *Database) error { return uncertain.Write(w, db) }

// Options configures a mining run. MinSup (absolute) and PFCT are
// required; see AbsoluteMinSup to convert a relative threshold.
type Options = core.Options

// Search selects the DFS (default) or BFS enumeration framework.
type Search = core.Search

// Enumeration frameworks.
const (
	DFS = core.DFS
	BFS = core.BFS
)

// Result is a mining outcome: the probabilistic frequent closed itemsets
// plus pruning statistics.
type Result = core.Result

// ResultItem is one mined itemset with its (estimated) frequent closed
// probability and bounds.
type ResultItem = core.ResultItem

// MineStats counts the work each pruning rule saved during a run.
type MineStats = core.Stats

// Tracer records phase-level wall-time spans during a mining run without
// perturbing its result: set Options.Tracer to a NewTracer() value and read
// Result.Profile (or Tracer.Profile) afterwards. Unlike the Trace log
// writer, a Tracer composes with Parallelism — each pool worker records
// into its own lock-free ring. Export the detailed spans with
// Tracer.WriteChromeTrace for chrome://tracing / Perfetto.
type Tracer = obs.Tracer

// Profile is the merged wall-time attribution of a traced run: per-phase
// totals (candidates, expand, bound-check, exact-union, sampling),
// per-depth expansion cost, and per-worker busy time.
type Profile = obs.Profile

// NewTracer returns a Tracer with the default per-worker span-ring
// capacity.
func NewTracer() *Tracer { return obs.New() }

// OptionsJSON is the wire (JSON) form of Options: every field except the
// Trace writer, with the search framework as a string. The zero value of
// each field means "use the default", so a client needs to send only
// min_sup and pfct. Convert with Options.JSON and OptionsJSON.Options.
type OptionsJSON = core.OptionsJSON

// ResultJSON is the wire (JSON) form of a mining Result, produced by
// Result.JSON; itemsets appear in lexicographic order, so the form is
// deterministic per (database, canonical options).
type ResultJSON = core.ResultJSON

// ResultItemJSON is the wire form of one mined itemset.
type ResultItemJSON = core.ResultItemJSON

// CanonicalOptions validates o, applies the defaults Mine would, and clears
// every field that cannot change the mined result (Trace and the execution
// knobs Parallelism, SplitDepth, TailMemoEntries). Two option structs with
// equal canonical forms produce byte-identical result sets.
func CanonicalOptions(o Options) (Options, error) { return o.Canonical() }

// OptionsKey renders the canonical form of o as a deterministic string.
// Because mining is deterministic per (database, canonical options) — see
// DESIGN §8.3 — (dataset content hash, OptionsKey) is a sound cache key
// for mining results; pfcimd's result cache uses exactly that.
func OptionsKey(o Options) (string, error) { return o.CanonicalKey() }

// MineContext runs the MPFCI miner (or the variant selected by opts) and
// returns every probabilistic frequent closed itemset of db; once ctx is
// done the run aborts with ctx.Err() at the next enumeration-tree node.
func MineContext(ctx context.Context, db *Database, opts Options) (*Result, error) {
	return core.MineContext(ctx, db, opts)
}

// Mine is MineContext with context.Background().
func Mine(db *Database, opts Options) (*Result, error) {
	return MineContext(context.Background(), db, opts)
}

// MineTopKContext returns the k itemsets with the highest frequent closed
// probability at the given minimum support; no pfct is needed — the
// acceptance threshold rises to the running k-th best, so the pruning
// machinery keeps working. Results are sorted by descending probability.
// Once ctx is done the run aborts with ctx.Err().
func MineTopKContext(ctx context.Context, db *Database, minSup, k int, opts Options) ([]ResultItem, error) {
	return core.MineTopKContext(ctx, db, minSup, k, opts)
}

// MineTopK is MineTopKContext with context.Background().
func MineTopK(db *Database, minSup, k int, opts Options) ([]ResultItem, error) {
	return MineTopKContext(context.Background(), db, minSup, k, opts)
}

// SweepPoint is one grid point of a parameter sweep; zero-valued fields
// inherit from the sweep's base Options.
type SweepPoint = sweep.Point

// SweepPointResult is the mining outcome at one grid point.
type SweepPointResult = sweep.PointResult

// SweepResult is a full sweep outcome: one SweepPointResult per requested
// point, in request order, plus engine statistics.
type SweepResult = sweep.Result

// SweepStats summarizes the sweep engine's work — in particular
// FullEnumerations, the number of full mining runs the grid cost.
type SweepStats = sweep.Stats

// MineSweep mines db at every grid point, sharing computation across
// points: one full enumeration per group of points that differ only in
// pfct, with tighter points derived by bound-aware filtering. Each point's
// Itemsets are byte-identical to what MineContext at that point's options
// would return (DESIGN §10).
func MineSweep(ctx context.Context, db *Database, points []SweepPoint, opts Options) (*SweepResult, error) {
	return sweep.Mine(ctx, db, points, opts)
}

// MineNaive is the baseline that first enumerates all probabilistic
// frequent itemsets and then estimates each one's frequent closed
// probability with the Monte-Carlo sampler, with no bounding or pruning.
func MineNaive(db *Database, opts Options) (*Result, error) { return core.NaiveMine(db, opts) }

// AbsoluteMinSup converts a relative minimum support (fraction of the
// database size) into the absolute count Options.MinSup expects.
func AbsoluteMinSup(n int, rel float64) int { return core.AbsoluteMinSup(n, rel) }

// FrequentItemset is a probabilistic frequent itemset (Definition 3.5 of
// the paper) with its exact frequent probability.
type FrequentItemset = pfim.Itemset

// FrequentOptions configures MineFrequent. Like Options it validates and
// defaults through a Canonical method; the MineFrequent family rejects
// invalid thresholds with an error.
type FrequentOptions = pfim.Options

// CanonicalFrequentOptions validates o, applies the defaults MineFrequent
// would, and clears the execution-only DisableCH knob — the FrequentOptions
// counterpart of CanonicalOptions.
func CanonicalFrequentOptions(o FrequentOptions) (FrequentOptions, error) { return o.Canonical() }

// validFrequent validates opts for the MineFrequent family, keeping the
// execution knobs (DisableCH) Canonical would clear.
func validFrequent(opts FrequentOptions) (FrequentOptions, error) {
	c, err := opts.Canonical()
	if err != nil {
		return opts, err
	}
	opts.MinSup = c.MinSup
	return opts, nil
}

// MineFrequent returns every probabilistic frequent itemset of db: the
// itemsets X with Pr{sup(X) ≥ MinSup} > PFT.
func MineFrequent(db *Database, opts FrequentOptions) ([]FrequentItemset, error) {
	opts, err := validFrequent(opts)
	if err != nil {
		return nil, err
	}
	return pfim.Mine(db, opts), nil
}

// MineExpectedSupport returns all itemsets whose expected support reaches
// minExpSup — the expected-support uncertainty model (U-Apriori).
func MineExpectedSupport(db *Database, minExpSup float64) []FrequentItemset {
	return pfim.ExpectedSupportMine(db, minExpSup)
}

// MineFrequentTopDown returns the same set as MineFrequent using the
// top-down strategy of the TODIS algorithm: discover the maximal
// probabilistic frequent itemsets, then derive every subset.
func MineFrequentTopDown(db *Database, opts FrequentOptions) ([]FrequentItemset, error) {
	opts, err := validFrequent(opts)
	if err != nil {
		return nil, err
	}
	return pfim.MineTopDown(db, opts), nil
}

// MaximalFrequent returns only the maximal probabilistic frequent itemsets
// — the border representation the top-down strategy is built on.
func MaximalFrequent(db *Database, opts FrequentOptions) ([]Itemset, error) {
	opts, err := validFrequent(opts)
	if err != nil {
		return nil, err
	}
	return pfim.MaximalFrequent(db, opts), nil
}

// UFGrowth mines all itemsets whose expected support reaches minExpSup
// with the UF-growth prefix-tree algorithm; its output is identical to
// MineExpectedSupport.
func UFGrowth(db *Database, minExpSup float64) []FrequentItemset {
	return pfim.UFGrowth(db, minExpSup)
}

// ItemDatabase is an uncertain database under *attribute-level*
// uncertainty: each item of each transaction exists with its own
// probability, independently — the native model of the expected-support
// literature (U-Apriori, UF-growth).
type ItemDatabase = uncertain.ItemDB

// ItemTransaction is one transaction with individually uncertain items.
type ItemTransaction = uncertain.ItemTransaction

// ProbItem is an item occurrence with its existence probability.
type ProbItem = uncertain.ProbItem

// NewItemDatabase validates and builds an attribute-level uncertain
// database.
func NewItemDatabase(trans []ItemTransaction) (*ItemDatabase, error) {
	return uncertain.NewItemDB(trans)
}

// MineExpectedSupportItems mines all itemsets whose expected support in
// the attribute-level model reaches minExpSup.
func MineExpectedSupportItems(db *ItemDatabase, minExpSup float64) []FrequentItemset {
	return pfim.ItemLevelExpectedSupportMine(db, minExpSup)
}

// MineFrequentItems mines all probabilistic frequent itemsets of the
// attribute-level model.
func MineFrequentItems(db *ItemDatabase, opts FrequentOptions) ([]FrequentItemset, error) {
	opts, err := validFrequent(opts)
	if err != nil {
		return nil, err
	}
	return pfim.ItemLevelMine(db, opts), nil
}

// ProbabilisticSupport returns max{s : Pr[sup(X) ≥ s] ≥ pft} — the
// competing "probabilistic support" definition of related work, provided
// for comparison with the frequent-closed-probability semantics this
// library mines (see the package tests for the instability the paper's
// §II describes).
func ProbabilisticSupport(db *Database, x Itemset, pft float64) int {
	return pfim.ProbabilisticSupport(db, x, pft)
}

// ProbSupportItemset is one result of the probabilistic-support model.
type ProbSupportItemset = pfim.ProbSupportItemset

// MineProbSupportClosed mines the "probabilistic frequent closed itemsets"
// of the competing probabilistic-support definition: psup(X) ≥ minSup and
// every proper superset has strictly smaller psup. Provided to reproduce
// the semantic comparison of the paper's §II.
func MineProbSupportClosed(db *Database, minSup int, pft float64) []ProbSupportItemset {
	return pfim.MineProbSupportClosed(db, minSup, pft)
}

// PaperExampleExtended returns the paper's Table IV database: the running
// example plus two low-probability tuples, used to contrast the competing
// probabilistic-support semantics with this library's.
func PaperExampleExtended() *Database { return uncertain.PaperExampleExtended() }

// WorldSampler estimates frequent closed probabilities by direct
// possible-world simulation — the paper's naïve sampling baseline. Unlike
// the Karp–Luby estimator inside Mine, it has no a-priori accuracy bound
// tied to the estimated quantity, but it is simple, unbiased, and useful
// for cross-checking.
type WorldSampler = core.WorldSampler

// NewWorldSampler prepares a world-simulation estimator over db.
func NewWorldSampler(db *Database, seed int64) *WorldSampler {
	return core.NewWorldSampler(db, seed)
}

// ExactDataset is an ordinary (certain) transaction database.
type ExactDataset = exact.Dataset

// ExactPattern is a mined itemset with its exact support.
type ExactPattern = exact.Pattern

// ExactData strips probabilities from an uncertain database.
func ExactData(db *Database) ExactDataset { return exact.FromUncertain(db) }

// MineFrequentExact mines all frequent itemsets of exact data (FP-growth).
func MineFrequentExact(d ExactDataset, minSup int) []ExactPattern {
	return exact.FPGrowth(d, minSup)
}

// MineClosedExact mines all frequent closed itemsets of exact data.
func MineClosedExact(d ExactDataset, minSup int) []ExactPattern {
	return exact.MineClosed(d, minSup)
}

// HMine mines all frequent itemsets of exact data with the H-mine
// hyper-structure algorithm; output identical to MineFrequentExact.
func HMine(d ExactDataset, minSup int) []ExactPattern {
	return exact.HMine(d, minSup)
}

// UHMine mines all itemsets with expected support ≥ minExpSup using the
// UH-mine hyper-structure algorithm; output identical to
// MineExpectedSupport and UFGrowth.
func UHMine(db *Database, minExpSup float64) []FrequentItemset {
	return pfim.UHMine(db, minExpSup)
}

// FreqProb returns the exact frequent probability Pr_F(X) by possible-world
// enumeration; db must have at most 26 transactions. Intended for
// validation and small examples; the miner itself uses dynamic programming.
func FreqProb(db *Database, x Itemset, minSup int) (float64, error) {
	return world.FreqProb(db, x, minSup)
}

// FreqClosedProb returns the exact frequent closed probability Pr_FC(X) by
// possible-world enumeration; db must have at most 26 transactions.
func FreqClosedProb(db *Database, x Itemset, minSup int) (float64, error) {
	return world.FreqClosedProb(db, x, minSup)
}

// ExactFreqClosedProb computes Pr_FC(x) exactly by inclusion–exclusion over
// x's extension events. Unlike FreqClosedProb it scales to databases of any
// size, but requires x to have at most 20 non-trivial extension events.
func ExactFreqClosedProb(db *Database, x Itemset, minSup int) (float64, error) {
	return core.ExactFCP(db, x, minSup)
}

// EstimateFreqClosedProb runs the ApproxFCP Monte-Carlo estimator on a
// single itemset: an (ε, δ)-approximation of Pr_FC(x) in fully polynomial
// time (the paper's Fig. 2).
func EstimateFreqClosedProb(db *Database, x Itemset, minSup int, eps, delta float64, seed int64) (float64, error) {
	return core.EstimateFCP(db, x, minSup, eps, delta, seed)
}

// CountFrequent returns the number of probabilistic frequent itemsets
// without materializing them; analytic tail bounds settle most membership
// decisions without the exact dynamic program. The count is exact.
func CountFrequent(db *Database, opts FrequentOptions) (int, error) {
	opts, err := validFrequent(opts)
	if err != nil {
		return 0, err
	}
	return pfim.Count(db, opts), nil
}

// PaperExample returns the uncertain database of the paper's Table II — the
// running example used throughout the documentation and tests.
func PaperExample() *Database { return uncertain.PaperExample() }

// Window maintains a live view over an uncertain transaction stream:
// bounded (the most recent size transactions, NewWindow) or unbounded
// (append-only history, NewUnboundedWindow). Expected supports are
// maintained incrementally; per-item frequent-probability tails can be
// maintained too (TrackTails), making FrequentItemsContext O(1) per item.
type Window = stream.Window

// StreamWindow is the window type under its original facade name.
//
// Deprecated: use Window — the two names alias the same type.
type StreamWindow = stream.Window

// StreamItem is one probabilistically frequent item of a window query.
type StreamItem = stream.ItemResult

// StreamOptions configures a Window frequent-items query; it is
// validated through the same Canonical() convention as Options.
type StreamOptions = stream.Options

// NewStreamWindow creates a sliding window over the most recent size
// transactions. It is stream-facade shorthand for NewWindow.
func NewStreamWindow(size int) (*StreamWindow, error) { return stream.NewWindow(size) }

// NewWindow creates a sliding window over the most recent size
// transactions.
func NewWindow(size int) (*Window, error) { return stream.NewWindow(size) }

// NewUnboundedWindow creates an append-only window that never evicts — the
// shape of a versioned dataset lineage that only ever grows.
func NewUnboundedWindow() *Window { return stream.NewUnboundedWindow() }

// WindowMiner mines probabilistic frequent closed itemsets incrementally
// over a live Window: each mining round re-evaluates only the enumeration
// subtrees touched by transactions pushed (or evicted) since the previous
// round and splices everything else from the recorded previous round, with
// results byte-identical to a from-scratch Mine of the window snapshot.
type WindowMiner = stream.Miner

// StreamDiff is the change set between two consecutive WindowMiner rounds:
// closed itemsets added, removed, changed (any reported number differs),
// and the count left untouched.
type StreamDiff = stream.Diff

// NewWindowMiner wraps a window for incremental mining. Options are
// validated eagerly; BFS search is rejected (incremental rounds force the
// serial DFS path, an execution detail that never changes results).
func NewWindowMiner(w *Window, opts Options) (*WindowMiner, error) {
	return stream.NewMiner(w, opts)
}

// MineWindowContext runs one incremental mining round over the miner's
// window, returning the full (byte-identical to from-scratch) result and
// the diff against the previous round. It is the context-first form per
// the package convention; cancellation aborts at the next enumeration node
// and resets the miner's reuse state, so the next round mines from
// scratch.
func MineWindowContext(ctx context.Context, m *WindowMiner) (*Result, StreamDiff, error) {
	return m.MineContext(ctx)
}

// Rule is an association rule derived from mined itemsets.
type Rule = rules.Rule

// RuleOptions bounds rule generation.
type RuleOptions = rules.Options

// GenerateRules derives association rules from source itemsets (typically
// a mining result's itemsets), filtered by expected confidence.
func GenerateRules(db *Database, sources []Itemset, opts RuleOptions) ([]Rule, error) {
	return rules.Generate(db, sources, opts)
}

// RuleConfidenceProb estimates Pr[conf(X ⇒ Y) ≥ minConf] across possible
// worlds by sampling n worlds.
func RuleConfidenceProb(db *Database, x, y Itemset, minConf float64, n int, seed int64) (float64, error) {
	return rules.ConfidenceProb(db, x, y, minConf, n, seed)
}

// GenerateQuest produces an exact dataset with the IBM-Quest synthetic
// generator; see gen.QuestConfig for the parameters.
func GenerateQuest(cfg QuestConfig) []Itemset { return gen.Quest(cfg) }

// QuestConfig parameterizes GenerateQuest.
type QuestConfig = gen.QuestConfig

// QuestT20I10D30KP40 returns the configuration of the paper's synthetic
// dataset, optionally scaled down.
func QuestT20I10D30KP40(scale float64, seed int64) QuestConfig {
	return gen.QuestT20I10D30KP40(scale, seed)
}

// QuestT10I4D1MP2K returns the sparse million-transaction stress
// configuration (2000 items, average transaction length 10), optionally
// scaled down.
func QuestT10I4D1MP2K(scale float64, seed int64) QuestConfig {
	return gen.QuestT10I4D1MP2K(scale, seed)
}

// GenerateMushroomLike produces a dense categorical dataset with the
// structural properties of the UCI Mushroom dataset (scale 1 ≈ 8124
// transactions of length 23 over ≈119 items).
func GenerateMushroomLike(scale float64, seed int64) []Itemset {
	return gen.MushroomLike(scale, seed)
}

// AssignGaussian attaches Gaussian-distributed existence probabilities
// (clamped into (0,1]) to exact transactions, producing an uncertain
// database — the paper's uncertainty-injection method.
func AssignGaussian(data []Itemset, mean, variance float64, seed int64) *Database {
	return gen.AssignGaussian(data, mean, variance, seed)
}
