package core

import (
	"container/heap"
	"math/rand"
	"sort"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

// MineTopK returns the k itemsets with the highest frequent closed
// probability at the given minimum support, without a user-supplied pfct:
// the threshold rises dynamically to the current k-th best probability, so
// all of MPFCI's prunings keep their bite once the heap fills. Results are
// sorted by descending probability (ties lexicographically).
//
// Ranking uses each itemset's estimated Pr_FC; candidates resolved by the
// Lemma 4.4 bounds carry the bound midpoint, so orderings between itemsets
// whose probability intervals overlap are best-effort (exact for the
// common case of well-separated probabilities).
func MineTopK(db *uncertain.DB, minSup, k int, opts Options) ([]ResultItem, error) {
	opts.MinSup = minSup
	// Seed threshold: accept anything with non-trivial probability until k
	// results exist.
	const floor = 1e-9
	opts.PFCT = floor
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, nil
	}
	idx := db.Index()
	m := &miner{
		opts:     opts,
		db:       db,
		probs:    db.Probs(),
		allItems: idx.Items,
		itemTids: idx.Tidsets,
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
	m.buildCandidates()

	h := &resultHeap{}
	heap.Init(h)
	threshold := func() float64 {
		if h.Len() < k {
			return floor
		}
		return (*h)[0].Prob
	}

	var rec func(x itemset.Itemset, tids *bitset.Bitset, count int, prF float64, startPos int) error
	rec = func(x itemset.Itemset, tids *bitset.Bitset, count int, prF float64, startPos int) error {
		m.stats.NodesVisited++
		// Superset pruning is threshold-independent.
		if !m.opts.DisableSuperset {
			last := x.Last()
			for _, c := range m.cands {
				if c.item >= last {
					break
				}
				if x.Contains(c.item) {
					continue
				}
				if bitset.AndCount(tids, c.tids) == count {
					m.stats.SupersetPruned++
					return nil
				}
			}
		}
		selfDead := false
		for pos := startPos; pos < len(m.cands); pos++ {
			c := m.cands[pos]
			child := m.childBuf(len(x))
			cc := bitset.AndInto(child, tids, c.tids)
			if cc < m.opts.MinSup {
				continue
			}
			childProbs := m.probsOf(child)
			// Anything that cannot beat the current k-th best is out:
			// Pr_FC ≤ Pr_F, and the threshold only rises.
			if poibin.TailUpperBound(childProbs, m.opts.MinSup) <= threshold() {
				m.stats.CHPruned++
				continue
			}
			childPrF := poibin.Tail(childProbs, m.opts.MinSup)
			if childPrF <= threshold() {
				m.stats.FreqPruned++
				continue
			}
			if !m.opts.DisableSubset && cc == count {
				selfDead = true
				m.stats.SubsetPruned++
				if err := rec(x.Extend(c.item), child, cc, childPrF, pos+1); err != nil {
					return err
				}
				break
			}
			if err := rec(x.Extend(c.item), child, cc, childPrF, pos+1); err != nil {
				return err
			}
		}
		if selfDead {
			return nil
		}
		// Evaluate against the current threshold.
		m.opts.PFCT = threshold()
		ev, err := m.evaluate(x, tids, count, prF)
		if err != nil {
			return err
		}
		if ev.accepted {
			heap.Push(h, ResultItem{
				Items:    x.Clone(),
				Prob:     ev.prob,
				Lower:    ev.lower,
				Upper:    ev.upper,
				FreqProb: prF,
				Method:   ev.method,
			})
			if h.Len() > k {
				heap.Pop(h)
			}
		}
		return nil
	}
	for pos := 0; pos < len(m.cands); pos++ {
		c := m.cands[pos]
		if c.prF <= threshold() {
			continue
		}
		if err := rec(itemset.Itemset{c.item}, c.tids.Clone(), c.cnt, c.prF, pos+1); err != nil {
			return nil, err
		}
	}

	out := make([]ResultItem, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(ResultItem)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return itemset.Compare(out[i].Items, out[j].Items) < 0
	})
	return out, nil
}

// resultHeap is a min-heap on Prob, so the root is the k-th best.
type resultHeap []ResultItem

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Prob < h[j].Prob }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(ResultItem)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
