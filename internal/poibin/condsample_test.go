package poibin

import (
	"math"
	"math/rand"
	"testing"
)

func TestCondSamplerUnsatisfiable(t *testing.T) {
	if _, err := NewCondSampler([]float64{0.5, 0.5}, 3); err == nil {
		t.Error("k > n should fail")
	}
	if _, err := NewCondSampler([]float64{0, 0}, 1); err == nil {
		t.Error("zero-probability constraint should fail")
	}
}

func TestCondSamplerProb(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(8) + 1
		probs := randomProbs(rng, n)
		k := rng.Intn(n + 1)
		cs, err := NewCondSampler(probs, k)
		if err != nil {
			// Possible only if Tail == 0, which randomProbs makes
			// vanishingly unlikely; regenerate.
			continue
		}
		if got, want := cs.Prob(), Tail(probs, k); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Prob() = %v, want Tail = %v", got, want)
		}
	}
}

// TestCondSamplerDistribution verifies that the sampler reproduces the true
// conditional distribution Pr[x | Σx ≥ k] on a small instance, comparing
// empirical outcome frequencies with exact conditional probabilities.
func TestCondSamplerDistribution(t *testing.T) {
	probs := []float64{0.9, 0.3, 0.6, 0.5}
	const k = 2
	n := len(probs)

	// Exact conditional distribution over the 2^4 outcomes.
	tail := Tail(probs, k)
	exact := map[int]float64{}
	for mask := 0; mask < 1<<uint(n); mask++ {
		p := 1.0
		c := 0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				p *= probs[i]
				c++
			} else {
				p *= 1 - probs[i]
			}
		}
		if c >= k {
			exact[mask] = p / tail
		}
	}

	cs, err := NewCondSampler(probs, k)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewSM64(42)
	const samples = 200000
	counts := map[int]int{}
	draw := make([]bool, n)
	for s := 0; s < samples; s++ {
		cs.Sample(rng, draw)
		mask := 0
		c := 0
		for i, on := range draw {
			if on {
				mask |= 1 << uint(i)
				c++
			}
		}
		if c < k {
			t.Fatalf("sample violates constraint: %v", draw)
		}
		counts[mask]++
	}
	for mask, want := range exact {
		got := float64(counts[mask]) / samples
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %04b: empirical %.4f, exact %.4f", mask, got, want)
		}
	}
	for mask := range counts {
		if _, ok := exact[mask]; !ok {
			t.Errorf("sampled impossible outcome %04b", mask)
		}
	}
}

func TestCondSamplerUnconstrained(t *testing.T) {
	// k = 0 must reduce to independent sampling.
	probs := []float64{0.2, 0.8}
	cs, err := NewCondSampler(probs, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewSM64(5)
	const samples = 100000
	ones := make([]int, len(probs))
	draw := make([]bool, len(probs))
	for s := 0; s < samples; s++ {
		cs.Sample(rng, draw)
		for i, on := range draw {
			if on {
				ones[i]++
			}
		}
	}
	for i, p := range probs {
		got := float64(ones[i]) / samples
		if math.Abs(got-p) > 0.01 {
			t.Errorf("var %d: empirical %.3f, want %.3f", i, got, p)
		}
	}
}

func TestCondSamplerWrongLengthPanics(t *testing.T) {
	cs, err := NewCondSampler([]float64{0.5, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Sample with wrong dst length should panic")
		}
	}()
	cs.Sample(NewSM64(1), make([]bool, 3))
}

func TestCondSamplerTightConstraint(t *testing.T) {
	// k = n forces the all-ones vector.
	probs := []float64{0.9, 0.1, 0.5}
	cs, err := NewCondSampler(probs, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewSM64(6)
	draw := make([]bool, 3)
	for s := 0; s < 100; s++ {
		cs.Sample(rng, draw)
		for i, on := range draw {
			if !on {
				t.Fatalf("k=n sample has a zero at %d", i)
			}
		}
	}
}
