package service

// Durable tier wiring (DESIGN §17): when the daemon starts with a store
// directory, every registry mutation is written through to disk before it
// is acknowledged, finished mining results are snapshotted on write, and
// restart restores both — lineages resume at their recorded version and
// prior results are served as cache hits without re-mining. Persisting
// results is sound for the same reason the in-memory cache is: mining is
// byte-identical per (dataset content hash, canonical options key), see
// DESIGN §8.3.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/store"
	"github.com/probdata/pfcim/internal/uncertain"
)

// persister owns the daemon's store handle plus the observability around
// it. Methods are safe for concurrent use (the store serializes internally).
type persister struct {
	st  *store.Store
	log *slog.Logger
	mtr *metrics
}

// lineageRecord is the on-disk form of one version chain. The record is the
// commit point of registration and append: a dataset segment not referenced
// by any record is invisible to restore, so the two-step write (dataset
// first, record second) is all-or-nothing across a crash.
type lineageRecord struct {
	Root      string           `json:"root"`
	Immutable bool             `json:"immutable,omitempty"`
	Versions  []lineageVersion `json:"versions"`
}

type lineageVersion struct {
	ID           string    `json:"id"`
	RegisteredAt time.Time `json:"registered_at"`
}

// saveDataset writes one freshly registered version and its lineage's
// updated record. Called by the registry while it holds its write lock, so
// records never interleave out of order; the fsync cost rides on the
// (rare) registration path, never on job submission.
func (p *persister) saveDataset(d *Dataset, lin *lineage) error {
	var buf bytes.Buffer
	if err := uncertain.Write(&buf, d.db); err != nil {
		return fmt.Errorf("service: serialize dataset %s: %w", d.ID, err)
	}
	if err := p.st.PutDataset(d.ID, buf.Bytes()); err != nil {
		p.mtr.StoreErrors.Add(1)
		return err
	}
	p.mtr.StoreDatasetsPersisted.Add(1)
	rec := lineageRecord{Root: lin.root, Immutable: lin.immutable}
	for _, v := range lin.versions {
		rec.Versions = append(rec.Versions, lineageVersion{ID: v.ID, RegisteredAt: v.RegisteredAt})
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := p.st.PutLineage(lin.root, data); err != nil {
		p.mtr.StoreErrors.Add(1)
		return err
	}
	p.mtr.StoreLineagesPersisted.Add(1)
	return nil
}

// saveResult snapshots one finished result. Failures degrade durability,
// not serving: the result is already in memory and correct, so they are
// logged and counted rather than failing the job.
func (p *persister) saveResult(key string, res core.ResultJSON) {
	data, err := json.Marshal(res)
	if err == nil {
		err = p.st.PutResult(key, data)
	}
	if err != nil {
		p.mtr.StoreErrors.Add(1)
		p.log.Error("result snapshot failed", "error", err)
		return
	}
	p.mtr.StoreResultsPersisted.Add(1)
}

// loadResult is the cache's read-through: a result the LRU dropped (or a
// restarted process never had) is served from disk and promoted.
func (p *persister) loadResult(key string) (core.ResultJSON, bool) {
	data, ok, err := p.st.GetResult(key)
	if err != nil {
		p.mtr.StoreErrors.Add(1)
		p.log.Error("stored result unreadable", "error", err)
		return core.ResultJSON{}, false
	}
	if !ok {
		return core.ResultJSON{}, false
	}
	var res core.ResultJSON
	if err := json.Unmarshal(data, &res); err != nil {
		p.mtr.StoreErrors.Add(1)
		p.log.Error("stored result undecodable", "key", key, "error", err)
		return core.ResultJSON{}, false
	}
	p.mtr.StoreRestoredResults.Add(1)
	return res, true
}

// restore rebuilds the registry from the store's lineage records: every
// version is re-read, re-parsed, and re-hashed — a dataset whose content no
// longer matches its id is never served. A lineage restores as the longest
// intact prefix of its recorded versions (version N+1 embeds version N, so
// a damaged tail truncates the lineage rather than poisoning it); the
// daemon keeps serving either way.
func (r *Registry) restore(p *persister) (int, error) {
	records, err := p.st.Lineages()
	if err != nil {
		return 0, err
	}
	roots := make([]string, 0, len(records))
	for root := range records {
		roots = append(roots, root)
	}
	sort.Strings(roots)

	restored := 0
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, root := range roots {
		var rec lineageRecord
		if err := json.Unmarshal(records[root], &rec); err != nil {
			p.mtr.StoreErrors.Add(1)
			p.log.Error("lineage record undecodable; skipping", "lineage", root, "error", err)
			continue
		}
		lin := &lineage{root: rec.Root, immutable: rec.Immutable}
		for i, v := range rec.Versions {
			data, ok, err := p.st.GetDataset(v.ID)
			if err != nil || !ok {
				p.mtr.StoreErrors.Add(1)
				p.log.Error("recorded dataset version missing from store; truncating lineage",
					"lineage", root, "version", i+1, "dataset", v.ID, "error", err)
				break
			}
			db, err := uncertain.Read(bytes.NewReader(data))
			if err != nil {
				p.mtr.StoreErrors.Add(1)
				p.log.Error("stored dataset unparseable; truncating lineage",
					"lineage", root, "dataset", v.ID, "error", err)
				break
			}
			id, err := hashDB(db)
			if err != nil || id != v.ID {
				p.mtr.StoreErrors.Add(1)
				p.log.Error("stored dataset fails its content hash; truncating lineage",
					"lineage", root, "dataset", v.ID, "rehashed", id)
				break
			}
			d := &Dataset{
				ID:           v.ID,
				Lineage:      rec.Root,
				Version:      i + 1,
				Immutable:    rec.Immutable && i == 0, // mirror Register: the flag lives on the root
				Stats:        db.Stats(),
				RegisteredAt: v.RegisteredAt,
				db:           db,
			}
			r.byID[d.ID] = d
			lin.versions = append(lin.versions, d)
			restored++
		}
		if len(lin.versions) > 0 {
			r.lineages[lin.root] = lin
		}
	}
	p.mtr.StoreRestoredDatasets.Add(int64(restored))
	return restored, nil
}
