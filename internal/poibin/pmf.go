package poibin

// Exported truncated-PMF surface for shard-composable tail evaluation
// (DESIGN §14). A shard worker summarizes its slice of a tidset's
// probability vector as the absorbing-truncated PMF of Σ Bernoulli(probs) —
// the same coefficient vector the convolution-tree kernel builds per leaf —
// and a coordinator merges per-shard vectors by truncated convolution in
// shard order. Because the tuples are independent, the merged vector is the
// exact truncated PMF of the full vector; only the IEEE summation order
// differs from the sequential DP, exactly as it does between the DP and
// convolution kernels above.
//
// The vectors come from the Scratch freelist; callers release what they own
// with ReleasePMF. ConvolvePMF never mutates or releases its inputs, so
// memoized vectors can participate in merges safely.

// PMFTrunc returns the PMF of Σ Bernoulli(probs) truncated at k: a vector v
// of length min(len(probs), k)+1 with v[c] = Pr[S = c] for c below the top
// index, and — when len(probs) ≥ k — v[k] absorbing all mass at or above k.
// Shorter vectors carry their exact full PMF (nothing to absorb). A single
// full-length vector's v[k] is bit-identical to the sequential DP's tail
// (TestPMFTruncMatchesDP pins this). The vector comes from the scratch
// freelist; release it with ReleasePMF when done.
func (s *Scratch) PMFTrunc(probs []float64, k int) []float64 {
	if k <= 0 {
		// Everything at or above 0 successes is absorbed: the PMF is the
		// single absorbing bin, and TailOfPMF reads Pr[S ≥ 0] = 1 off it.
		v := s.getBuf(1)[:1]
		v[0] = 1
		return v
	}
	L := len(probs)
	if L > k {
		L = k
	}
	v := s.getBuf(L + 1)[:L+1]
	leafPMF(v, probs, k)
	return v
}

// ConvolvePMF convolves two truncated PMFs into a fresh freelist vector of
// length min(la+lb, k)+1 (indices counted from zero), lumping mass at or
// above k into index k when reachable. It is the same i-ascending,
// j-ascending merge the convolution-tree kernel uses, so folding per-shard
// PMFTrunc vectors left-to-right is deterministic. The inputs are read-only
// and remain owned by the caller.
func (s *Scratch) ConvolvePMF(a, b []float64, k int) []float64 {
	lo := len(a) + len(b) - 2
	if lo > k {
		lo = k
	}
	out := s.getBuf(lo + 1)[:lo+1]
	convMerge(out, a, b, k)
	return out
}

// TailOfPMF reads Pr[S ≥ k] off a truncated PMF: the absorbing bin when the
// vector reaches index k, zero otherwise (fewer than k tuples can never
// reach the threshold). The absorbing sum of rounded products can land an
// ulp above 1, exactly as in the DP; clamp so a probability never exceeds 1.
func TailOfPMF(v []float64, k int) float64 {
	if len(v)-1 < k {
		return 0
	}
	t := v[k]
	if t > 1 {
		return 1
	}
	if t < 0 {
		return 0
	}
	return t
}

// ReleasePMF parks a PMFTrunc/ConvolvePMF vector back on the freelist.
func (s *Scratch) ReleasePMF(v []float64) {
	s.putBuf(v)
}
