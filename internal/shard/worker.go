package shard

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/uncertain"
)

// TraceHeader carries the coordinator's trace/job ID on every shard RPC so
// worker logs correlate with the coordinator's job records.
const TraceHeader = "X-Pfcim-Trace"

// workerTraceRing bounds the per-request tracer on the worker: each eval
// RPC records exactly one span, so a small ring suffices.
const workerTraceRing = 8

// Worker is the HTTP surface of a shard worker: it accepts range-partition
// slices at placement time and serves per-shard tail PMFs and clause
// factors to the coordinator. One Worker can hold slices of many datasets
// (keyed dataset/shard); evaluation on one slot is serialized, different
// slots evaluate concurrently.
type Worker struct {
	log   *slog.Logger
	mux   *http.ServeMux
	mu    sync.Mutex
	slots map[string]*workerSlot
}

type workerSlot struct {
	mu   sync.Mutex
	eval *Evaluator
	hash string
}

// NewWorker builds a worker; log may be nil.
func NewWorker(log *slog.Logger) *Worker {
	if log == nil {
		log = slog.Default()
	}
	w := &Worker{log: log, slots: map[string]*workerSlot{}, mux: http.NewServeMux()}
	w.mux.HandleFunc("POST /shard/v1/datasets", w.handlePlace)
	w.mux.HandleFunc("POST /shard/v1/eval", w.handleEval)
	w.mux.HandleFunc("GET /healthz", w.handleHealthz)
	return w
}

func (w *Worker) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	w.mux.ServeHTTP(rw, req)
}

// Slots returns the number of (dataset, shard) slices held.
func (w *Worker) Slots() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.slots)
}

func slotKey(dataset string, shard int) string {
	return fmt.Sprintf("%s/%d", dataset, shard)
}

func (w *Worker) handlePlace(rw http.ResponseWriter, req *http.Request) {
	var pr PlaceRequest
	if err := json.NewDecoder(req.Body).Decode(&pr); err != nil {
		writeShardError(rw, http.StatusBadRequest, fmt.Errorf("decoding placement: %w", err))
		return
	}
	if pr.Shards < 1 || pr.Shard < 0 || pr.Shard >= pr.Shards {
		writeShardError(rw, http.StatusBadRequest, fmt.Errorf("shard %d of %d out of range", pr.Shard, pr.Shards))
		return
	}
	db, err := uncertain.Read(strings.NewReader(pr.Text))
	if err != nil {
		writeShardError(rw, http.StatusBadRequest, err)
		return
	}
	trans := db.Transactions()
	l := Layout{N: pr.Shards, Total: pr.Total}
	eval, err := NewEvaluatorFromSlice(trans, l, pr.Shard)
	if err != nil {
		writeShardError(rw, http.StatusBadRequest, err)
		return
	}
	hash, err := HashSlice(trans)
	if err != nil {
		writeShardError(rw, http.StatusInternalServerError, err)
		return
	}
	w.mu.Lock()
	w.slots[slotKey(pr.Dataset, pr.Shard)] = &workerSlot{eval: eval, hash: hash}
	w.mu.Unlock()
	w.log.Info("shard placed", "dataset", pr.Dataset, "shard", pr.Shard,
		"trans", eval.Trans(), "trace", req.Header.Get(TraceHeader))
	writeShardJSON(rw, http.StatusCreated, PlaceResponse{
		Dataset: pr.Dataset, Shard: pr.Shard, Trans: eval.Trans(), Hash: hash,
	})
}

func (w *Worker) handleEval(rw http.ResponseWriter, req *http.Request) {
	var er EvalRequest
	if err := json.NewDecoder(req.Body).Decode(&er); err != nil {
		writeShardError(rw, http.StatusBadRequest, fmt.Errorf("decoding eval: %w", err))
		return
	}
	w.mu.Lock()
	slot, ok := w.slots[slotKey(er.Dataset, er.Shard)]
	w.mu.Unlock()
	if !ok {
		writeShardError(rw, http.StatusNotFound, fmt.Errorf("no slice for dataset %s shard %d", er.Dataset, er.Shard))
		return
	}
	x := itemset.FromInts(er.Items...)
	ext := itemset.Item(er.Ext)

	// When the coordinator asks for a trace, the evaluation runs under a
	// short-lived per-request tracer whose spans ship back in the response.
	// Both eval ops are shard-side halves of the coordinator's bound check,
	// so they carry PhaseBoundCheck at the itemset's enumeration depth —
	// mirroring how the inline kernel attributes the same work.
	var tr *obs.Tracer
	var rec *obs.Recorder
	if er.Trace {
		tr = obs.NewWithCapacity(workerTraceRing)
		rec = tr.Recorder(0)
		if tid := req.Header.Get(TraceHeader); tid != "" {
			w.log.Debug("shard eval traced", "trace", tid, "op", er.Op,
				"dataset", er.Dataset, "shard", er.Shard, "depth", len(er.Items))
		}
	}

	slot.mu.Lock()
	evals0, hits0 := slot.eval.Evals, slot.eval.MemoHits
	var resp EvalResponse
	start := rec.Now()
	switch er.Op {
	case OpPMF:
		resp.PMF = slot.eval.TailPMF(x, ext, er.K)
	case OpFactor:
		resp.Factor = slot.eval.ClauseFactor(x, ext)
	default:
		slot.mu.Unlock()
		writeShardError(rw, http.StatusBadRequest, fmt.Errorf("unknown op %q", er.Op))
		return
	}
	rec.Span(obs.PhaseBoundCheck, len(er.Items), start)
	resp.Evals = slot.eval.Evals - evals0
	resp.MemoHits = slot.eval.MemoHits - hits0
	slot.mu.Unlock()
	if tr != nil {
		b := tr.WireSpans()
		resp.BusyNS, resp.Spans = b.BusyNS, b.Spans
	}
	writeShardJSON(rw, http.StatusOK, resp)
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, req *http.Request) {
	writeShardJSON(rw, http.StatusOK, HealthResponse{Status: "ok", Slots: w.Slots()})
}

func writeShardJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(v)
}

func writeShardError(rw http.ResponseWriter, code int, err error) {
	writeShardJSON(rw, code, errorResponse{Error: err.Error()})
}
