package uncertain

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/probdata/pfcim/internal/itemset"
)

// The text interchange format is one transaction per line:
//
//	item item item ... : probability
//
// Items are non-negative integers. Blank lines and lines starting with '#'
// are ignored. The probability part may be omitted, in which case the tuple
// is certain (p = 1), so ordinary market-basket files load unchanged.

// Write serializes db in the text format.
func Write(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < db.N(); i++ {
		t := db.Transaction(i)
		for j, it := range t.Items {
			if j > 0 {
				if _, err := bw.WriteString(" "); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(it))); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, " : %g\n", t.Prob); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text format into a database.
func Read(r io.Reader) (*DB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var trans []Transaction
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("uncertain: line %d: %w", lineNo, err)
		}
		trans = append(trans, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewDB(trans)
}

func parseLine(line string) (Transaction, error) {
	prob := 1.0
	itemsPart := line
	if i := strings.LastIndex(line, ":"); i >= 0 {
		p, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
		if err != nil {
			return Transaction{}, fmt.Errorf("bad probability %q: %w", line[i+1:], err)
		}
		prob = p
		itemsPart = line[:i]
	}
	fields := strings.Fields(itemsPart)
	if len(fields) == 0 {
		return Transaction{}, fmt.Errorf("no items")
	}
	items := make([]itemset.Item, len(fields))
	for j, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return Transaction{}, fmt.Errorf("bad item %q: %w", f, err)
		}
		if v < 0 || v > math.MaxInt32 {
			return Transaction{}, fmt.Errorf("item %d outside the valid id range [0, %d]", v, math.MaxInt32)
		}
		items[j] = itemset.Item(v)
	}
	return Transaction{Items: itemset.New(items...), Prob: prob}, nil
}
