package pfcim_test

// One testing.B benchmark per table/figure of the paper's evaluation. Each
// benchmark runs one representative configuration of the corresponding
// experiment; the full sweeps (all x-axis points, all series) are produced
// by cmd/experiments. Run with:
//
//	go test -bench=. -benchmem
//
// Dataset sizes here are the same reproduction scale the experiment
// harness defaults to (Mushroom-like 0.1 → 812 rows, Quest 0.02 → 600
// rows); EXPERIMENTS.md records a full reference run.

import (
	"runtime"
	"sync"
	"testing"

	pfcim "github.com/probdata/pfcim"
)

// benchData lazily builds and caches the two benchmark workloads.
var benchData struct {
	once     sync.Once
	mushroom *pfcim.Database // Gaussian(0.5, 0.5), the paper's Mushroom regime
	mush81   *pfcim.Database // Gaussian(0.8, 0.1), the Fig. 10(a) regime
	mushRaw  []pfcim.Itemset
	quest    *pfcim.Database // Gaussian(0.8, 0.1), the paper's Quest regime
}

func load(b *testing.B) {
	benchData.once.Do(func() {
		benchData.mushRaw = pfcim.GenerateMushroomLike(0.1, 42)
		benchData.mushroom = pfcim.AssignGaussian(benchData.mushRaw, 0.5, 0.5, 43)
		benchData.mush81 = pfcim.AssignGaussian(benchData.mushRaw, 0.8, 0.1, 44)
		quest := pfcim.GenerateQuest(pfcim.QuestT20I10D30KP40(0.02, 45))
		benchData.quest = pfcim.AssignGaussian(quest, 0.8, 0.1, 46)
	})
	b.ReportAllocs()
}

// mineOpts is the paper-faithful configuration: final checking always via
// the ApproxFCP sampler (as the paper's cost model), defaults ε = δ = 0.1,
// pfct = 0.8.
func mineOpts(db *pfcim.Database, rel float64) pfcim.Options {
	return pfcim.Options{
		MinSup:          pfcim.AbsoluteMinSup(db.N(), rel),
		PFCT:            0.8,
		Seed:            1,
		MaxExactClauses: -1,
	}
}

func mustMine(b *testing.B, db *pfcim.Database, o pfcim.Options) *pfcim.Result {
	res, err := pfcim.Mine(db, o)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// --- Table VIII: dataset characteristics (generation + stats cost) -------

func BenchmarkTable8DatasetStats(b *testing.B) {
	load(b)
	for i := 0; i < b.N; i++ {
		_ = benchData.mushroom.Stats()
		_ = benchData.quest.Stats()
	}
}

// --- Fig. 5: MPFCI vs Naive ----------------------------------------------

func BenchmarkFig5MushroomMPFCI(b *testing.B) {
	load(b)
	o := mineOpts(benchData.mushroom, 0.2)
	for i := 0; i < b.N; i++ {
		mustMine(b, benchData.mushroom, o)
	}
}

// BenchmarkFig5MushroomMPFCIParallel runs the same workload on the
// work-stealing scheduler with one worker per available CPU. Results are
// byte-identical to the serial run; on a single-CPU host this measures the
// scheduler's overhead rather than a speedup.
func BenchmarkFig5MushroomMPFCIParallel(b *testing.B) {
	load(b)
	o := mineOpts(benchData.mushroom, 0.2)
	o.Parallelism = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		mustMine(b, benchData.mushroom, o)
	}
}

func BenchmarkFig5MushroomNaive(b *testing.B) {
	load(b)
	o := mineOpts(benchData.mushroom, 0.2)
	for i := 0; i < b.N; i++ {
		if _, err := pfcim.MineNaive(benchData.mushroom, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5QuestMPFCI(b *testing.B) {
	load(b)
	o := mineOpts(benchData.quest, 0.4)
	for i := 0; i < b.N; i++ {
		mustMine(b, benchData.quest, o)
	}
}

func BenchmarkFig5QuestNaive(b *testing.B) {
	load(b)
	o := mineOpts(benchData.quest, 0.4)
	for i := 0; i < b.N; i++ {
		if _, err := pfcim.MineNaive(benchData.quest, o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 6: pruning ablations vs min_sup --------------------------------

func benchVariant(b *testing.B, db *pfcim.Database, rel float64, mod func(*pfcim.Options)) {
	load(b)
	o := mineOpts(db, rel)
	mod(&o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustMine(b, db, o)
	}
}

func BenchmarkFig6MushroomMPFCI(b *testing.B) {
	benchVariant(b, mushroomDB(b), 0.3, func(*pfcim.Options) {})
}

func BenchmarkFig6MushroomNoCH(b *testing.B) {
	benchVariant(b, mushroomDB(b), 0.3, func(o *pfcim.Options) { o.DisableCH = true })
}

func BenchmarkFig6MushroomNoSuper(b *testing.B) {
	benchVariant(b, mushroomDB(b), 0.3, func(o *pfcim.Options) { o.DisableSuperset = true })
}

func BenchmarkFig6MushroomNoSub(b *testing.B) {
	benchVariant(b, mushroomDB(b), 0.3, func(o *pfcim.Options) { o.DisableSubset = true })
}

func BenchmarkFig6MushroomNoBound(b *testing.B) {
	benchVariant(b, mushroomDB(b), 0.3, func(o *pfcim.Options) { o.DisableBounds = true })
}

func BenchmarkFig6QuestMPFCI(b *testing.B) {
	benchVariant(b, questDB(b), 0.4, func(*pfcim.Options) {})
}

func BenchmarkFig6QuestNoBound(b *testing.B) {
	benchVariant(b, questDB(b), 0.4, func(o *pfcim.Options) { o.DisableBounds = true })
}

// mushroomDB and questDB give the variant benchmarks access to the
// lazily-loaded databases.
func mushroomDB(b *testing.B) *pfcim.Database {
	load(b)
	return benchData.mushroom
}

func questDB(b *testing.B) *pfcim.Database {
	load(b)
	return benchData.quest
}

// --- Fig. 7: effect of pfct ----------------------------------------------

func BenchmarkFig7MushroomPfct05(b *testing.B) {
	benchVariant(b, mushroomDB(b), 0.4, func(o *pfcim.Options) { o.PFCT = 0.5 })
}

func BenchmarkFig7MushroomPfct09(b *testing.B) {
	benchVariant(b, mushroomDB(b), 0.4, func(o *pfcim.Options) { o.PFCT = 0.9 })
}

// --- Fig. 8: effect of ε (NoBound samples; its cost is O(1/ε²)) ----------

func BenchmarkFig8NoBoundEps030(b *testing.B) {
	benchVariant(b, mushroomDB(b), 0.2, func(o *pfcim.Options) {
		o.DisableBounds = true
		o.Epsilon = 0.30
	})
}

func BenchmarkFig8NoBoundEps010(b *testing.B) {
	benchVariant(b, mushroomDB(b), 0.2, func(o *pfcim.Options) {
		o.DisableBounds = true
		o.Epsilon = 0.10
	})
}

// --- Fig. 9: effect of δ (cost grows as ln(2/δ)) --------------------------

func BenchmarkFig9NoBoundDelta030(b *testing.B) {
	benchVariant(b, mushroomDB(b), 0.2, func(o *pfcim.Options) {
		o.DisableBounds = true
		o.Delta = 0.30
	})
}

func BenchmarkFig9NoBoundDelta005(b *testing.B) {
	benchVariant(b, mushroomDB(b), 0.2, func(o *pfcim.Options) {
		o.DisableBounds = true
		o.Delta = 0.05
	})
}

// --- Fig. 10: compression quality (the four result-set sizes) ------------

func BenchmarkFig10FrequentExact(b *testing.B) {
	load(b)
	d := pfcim.ExactDataset(benchData.mushRaw)
	ms := pfcim.AbsoluteMinSup(len(d), 0.2)
	for i := 0; i < b.N; i++ {
		if got := pfcim.MineFrequentExact(d, ms); len(got) == 0 {
			b.Fatal("no frequent itemsets")
		}
	}
}

func BenchmarkFig10ClosedExact(b *testing.B) {
	load(b)
	d := pfcim.ExactDataset(benchData.mushRaw)
	ms := pfcim.AbsoluteMinSup(len(d), 0.2)
	for i := 0; i < b.N; i++ {
		if got := pfcim.MineClosedExact(d, ms); len(got) == 0 {
			b.Fatal("no closed itemsets")
		}
	}
}

func BenchmarkFig10ProbabilisticFrequent(b *testing.B) {
	load(b)
	ms := pfcim.AbsoluteMinSup(benchData.mush81.N(), 0.2)
	for i := 0; i < b.N; i++ {
		if got, err := pfcim.MineFrequent(benchData.mush81, pfcim.FrequentOptions{MinSup: ms, PFT: 0.8}); err != nil || len(got) == 0 {
			b.Fatalf("no probabilistic frequent itemsets (err %v)", err)
		}
	}
}

func BenchmarkFig10ProbabilisticClosed(b *testing.B) {
	load(b)
	o := mineOpts(benchData.mush81, 0.2)
	for i := 0; i < b.N; i++ {
		if got := mustMine(b, benchData.mush81, o); len(got.Itemsets) == 0 {
			b.Fatal("no probabilistic frequent closed itemsets")
		}
	}
}

// --- Fig. 11: approximation quality (raw estimator run) ------------------

func BenchmarkFig11SamplerRun(b *testing.B) {
	load(b)
	o := mineOpts(benchData.mushroom, 0.2)
	o.DisableBounds = true
	for i := 0; i < b.N; i++ {
		mustMine(b, benchData.mushroom, o)
	}
}

// --- Fig. 12: DFS vs BFS frameworks --------------------------------------

func BenchmarkFig12MushroomDFS(b *testing.B) {
	benchVariant(b, mushroomDB(b), 0.3, func(*pfcim.Options) {})
}

func BenchmarkFig12MushroomBFS(b *testing.B) {
	benchVariant(b, mushroomDB(b), 0.3, func(o *pfcim.Options) { o.Search = pfcim.BFS })
}

func BenchmarkFig12QuestDFS(b *testing.B) {
	benchVariant(b, questDB(b), 0.4, func(*pfcim.Options) {})
}

func BenchmarkFig12QuestBFS(b *testing.B) {
	benchVariant(b, questDB(b), 0.4, func(o *pfcim.Options) { o.Search = pfcim.BFS })
}

// --- Tables I–III / Example 1.2: the running example end to end ----------

func BenchmarkExample12PaperExample(b *testing.B) {
	load(b)
	db := pfcim.PaperExample()
	o := pfcim.Options{MinSup: 2, PFCT: 0.8, Seed: 1}
	for i := 0; i < b.N; i++ {
		res := mustMine(b, db, o)
		if len(res.Itemsets) != 2 {
			b.Fatalf("paper example result drifted: %d itemsets", len(res.Itemsets))
		}
	}
}
