package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreOpen pins the strict-open contract against arbitrary on-disk
// bytes: two fuzz-controlled files are planted in a store (one posing as a
// result segment, one as a dataset segment) next to a valid manifest, and
// Open must either succeed — in which case every indexed entry must read
// back and re-encode byte-identically, i.e. only genuinely valid segments
// are ever served — or fail with a structured *CorruptError/*VersionError.
// It must never panic and never serve bytes that fail the checksum.
func FuzzStoreOpen(f *testing.F) {
	// Seed the interesting shapes: valid segments of each kind, the empty
	// file, bare magic, truncations, bit flips, a future version, trailing
	// garbage, oversized length fields, and a kind/directory mismatch.
	valid := encodeSegment(KindResult, "abc\nminsup=2 tau=0.9", []byte(`{"itemsets":[[1,2]]}`))
	validDS := encodeSegment(KindDataset, "abc", []byte("2 2\n0:0.5 1:0.7\n1:1\n"))
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x01
	future := append([]byte(nil), valid...)
	future[7] = 2
	badKind := append([]byte(nil), valid...)
	badKind[8] = 0xee
	f.Add(valid, validDS)
	f.Add(validDS, valid) // kinds swapped into the wrong directories
	f.Add([]byte{}, []byte{})
	f.Add([]byte(segMagic), []byte("not a segment at all"))
	f.Add(valid[:len(valid)/3], validDS[:10])
	f.Add(flip, future)
	f.Add(badKind, append(valid, 0xaa))
	f.Add(encodeSegment(KindManifest, manifestKey, []byte(`{"schema":1}`)), []byte{})

	f.Fuzz(func(t *testing.T, resultBytes, datasetBytes []byte) {
		dir := t.TempDir()
		if _, err := Open(dir); err != nil { // lay down a valid manifest + layout
			t.Fatalf("init: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, dirResults, "fuzz.seg"), resultBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, dirDatasets, "fuzz.seg"), datasetBytes, 0o644); err != nil {
			t.Fatal(err)
		}

		s, err := Open(dir)
		if err != nil {
			var ce *CorruptError
			var ve *VersionError
			if !errors.As(err, &ce) && !errors.As(err, &ve) {
				t.Fatalf("unstructured rejection: %v", err)
			}
			return
		}
		// Open accepted the files: they must be exactly valid segments —
		// every served payload re-reads and re-encodes to the planted bytes.
		for _, key := range s.ResultKeys() {
			payload, ok, err := s.GetResult(key)
			if err != nil || !ok {
				t.Fatalf("indexed result %q unreadable: (%v, %v)", key, ok, err)
			}
			if !bytes.Equal(encodeSegment(KindResult, key, payload), resultBytes) {
				t.Fatalf("served result is not the canonical encoding of the file")
			}
		}
		for _, id := range s.DatasetIDs() {
			payload, ok, err := s.GetDataset(id)
			if err != nil || !ok {
				t.Fatalf("indexed dataset %q unreadable: (%v, %v)", id, ok, err)
			}
			if !bytes.Equal(encodeSegment(KindDataset, id, payload), datasetBytes) {
				t.Fatalf("served dataset is not the canonical encoding of the file")
			}
		}

		// Recover on the same bytes must also hold the line: anything it
		// keeps must be servable, anything else quarantined, never both.
		rec, err := Recover(dir)
		if err != nil {
			t.Fatalf("Recover after accepting Open: %v", err)
		}
		if len(rec.Quarantined()) != 0 {
			t.Fatalf("Recover quarantined files strict Open accepted: %v", rec.Quarantined())
		}
	})
}
