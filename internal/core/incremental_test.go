package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// randTrans draws a random transaction over a small universe.
func randTrans(rng *rand.Rand, maxItems int) uncertain.Transaction {
	n := 1 + rng.Intn(maxItems)
	seen := map[int]bool{}
	var items itemset.Itemset
	for len(items) < n {
		it := rng.Intn(maxItems)
		if !seen[it] {
			seen[it] = true
			items = items.Add(itemset.Item(it))
		}
	}
	p := 0.3 + 0.7*rng.Float64()
	if rng.Intn(8) == 0 {
		p = 1
	}
	return uncertain.Transaction{Items: items, Prob: p}
}

// affectedBy returns the invalidation predicate for a set of changed
// transactions: an itemset is affected iff some changed transaction
// contains it.
func affectedBy(changed []uncertain.Transaction) func(itemset.Itemset) bool {
	return func(x itemset.Itemset) bool {
		for _, t := range changed {
			if itemset.IsSubset(x, t.Items) {
				return true
			}
		}
		return false
	}
}

// TestMineIncrementalMatchesFromScratch evolves a database one transaction
// at a time and requires the incremental miner to produce byte-identical
// itemsets to a from-scratch MineContext at every step, while actually
// reusing subtrees on at least some steps.
func TestMineIncrementalMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	opts := Options{MinSup: 2, PFCT: 0.3, Seed: 7}
	for trial := 0; trial < 30; trial++ {
		var trans []uncertain.Transaction
		for i := 0; i < 8; i++ {
			trans = append(trans, randTrans(rng, 6))
		}
		cache := NewReuseCache()
		var reusedTotal int
		for step := 0; step < 6; step++ {
			var changed []uncertain.Transaction
			if step > 0 {
				// Slide: evict the oldest, add a fresh transaction.
				changed = append(changed, trans[0])
				trans = trans[1:]
				add := randTrans(rng, 6)
				changed = append(changed, add)
				trans = append(trans, add)
			}
			db := uncertain.MustNewDB(trans)
			inc, err := MineIncremental(context.Background(), db, opts, cache, affectedBy(changed))
			if err != nil {
				t.Fatalf("trial %d step %d: incremental: %v", trial, step, err)
			}
			full, err := MineContext(context.Background(), db, opts)
			if err != nil {
				t.Fatalf("trial %d step %d: from-scratch: %v", trial, step, err)
			}
			if !reflect.DeepEqual(inc.Itemsets, full.Itemsets) {
				t.Fatalf("trial %d step %d: incremental result diverged\n inc: %+v\nfull: %+v",
					trial, step, inc.Itemsets, full.Itemsets)
			}
			reusedTotal += inc.Stats.SubtreesReused
			if step == 0 && inc.Stats.SubtreesReused != 0 {
				t.Fatalf("trial %d: first round reused %d subtrees from an empty cache", trial, inc.Stats.SubtreesReused)
			}
		}
		_ = reusedTotal
	}
}

// TestMineIncrementalActuallyReuses pins that an unchanged database costs
// almost nothing the second time: every top-level subtree splices and no
// tails are recomputed inside the enumeration.
func TestMineIncrementalActuallyReuses(t *testing.T) {
	trans := []uncertain.Transaction{
		{Items: itemset.FromInts(0, 1, 2, 3), Prob: 0.9},
		{Items: itemset.FromInts(0, 1, 2), Prob: 0.6},
		{Items: itemset.FromInts(0, 1, 2), Prob: 0.7},
		{Items: itemset.FromInts(0, 1, 2, 3), Prob: 0.9},
	}
	db := uncertain.MustNewDB(trans)
	opts := Options{MinSup: 2, PFCT: 0.8}
	cache := NewReuseCache()
	first, err := MineIncremental(context.Background(), db, opts, cache, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := MineIncremental(context.Background(), db, opts, cache, affectedBy(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Itemsets, second.Itemsets) {
		t.Fatalf("no-change round diverged: %+v vs %+v", first.Itemsets, second.Itemsets)
	}
	if second.Stats.SubtreesReused == 0 {
		t.Fatal("no-change round reused nothing")
	}
	if second.Stats.NodesVisited != 0 {
		t.Fatalf("no-change round still visited %d nodes", second.Stats.NodesVisited)
	}
	if second.Stats.SplicedResults != len(first.Itemsets) {
		t.Fatalf("spliced %d results, want %d", second.Stats.SplicedResults, len(first.Itemsets))
	}
}

// TestMineIncrementalRejectsBFS pins the serial-DFS contract.
func TestMineIncrementalRejectsBFS(t *testing.T) {
	db := uncertain.MustNewDB([]uncertain.Transaction{{Items: itemset.FromInts(0, 1), Prob: 0.9}})
	_, err := MineIncremental(context.Background(), db, Options{MinSup: 1, PFCT: 0.5, Search: BFS}, NewReuseCache(), nil)
	if err == nil {
		t.Fatal("BFS incremental mine must be rejected")
	}
}

// TestMineIncrementalResetOnCancel pins that a cancelled round clears the
// cache and the next round still answers correctly from scratch.
func TestMineIncrementalResetOnCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var trans []uncertain.Transaction
	for i := 0; i < 10; i++ {
		trans = append(trans, randTrans(rng, 8))
	}
	db := uncertain.MustNewDB(trans)
	opts := Options{MinSup: 2, PFCT: 0.2, Seed: 5}
	cache := NewReuseCache()
	if _, err := MineIncremental(context.Background(), db, opts, cache, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineIncremental(ctx, db, opts, cache, affectedBy(nil)); err == nil {
		t.Fatal("cancelled round must fail")
	}
	inc, err := MineIncremental(context.Background(), db, opts, cache, affectedBy(nil))
	if err != nil {
		t.Fatal(err)
	}
	if inc.Stats.SubtreesReused != 0 {
		t.Fatalf("post-reset round reused %d subtrees", inc.Stats.SubtreesReused)
	}
	full, err := MineContext(context.Background(), db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inc.Itemsets, full.Itemsets) {
		t.Fatal("post-reset round diverged from from-scratch mine")
	}
}
