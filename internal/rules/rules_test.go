package rules

import (
	"math"
	"math/rand"
	"testing"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

func TestGeneratePaperExample(t *testing.T) {
	db := uncertain.PaperExample()
	sources := []itemset.Itemset{
		itemset.FromInts(0, 1, 2),    // {a b c}, expSup 3.1
		itemset.FromInts(0, 1, 2, 3), // {a b c d}, expSup 1.8
	}
	rules, err := Generate(db, sources, Options{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules generated")
	}
	// Every rule from {a b c}: both sides within abc, expSup(any subset)=3.1
	// so conf = 1 for those; rules from abcd mixing in d have conf 1.8/3.1.
	for _, r := range rules {
		u := itemset.Union(r.Antecedent, r.Consequent)
		wantConf := db.ExpectedSupport(u) / db.ExpectedSupport(r.Antecedent)
		if math.Abs(r.ExpConfidence-wantConf) > 1e-12 {
			t.Errorf("%v: conf %v, want %v", r, r.ExpConfidence, wantConf)
		}
		if r.ExpConfidence < 0.5 {
			t.Errorf("%v below MinConfidence", r)
		}
		if itemset.Intersect(r.Antecedent, r.Consequent).Len() != 0 {
			t.Errorf("%v: sides overlap", r)
		}
	}
	// Sorted by descending confidence.
	for i := 1; i < len(rules); i++ {
		if rules[i].ExpConfidence > rules[i-1].ExpConfidence+1e-12 {
			t.Fatal("rules not sorted by confidence")
		}
	}
	// The fully-confident rules within {a b c} (conf exactly 1) exist.
	found := false
	for _, r := range rules {
		if itemset.Equal(r.Antecedent, itemset.FromInts(0)) &&
			itemset.Equal(r.Consequent, itemset.FromInts(1, 2)) {
			found = true
			if math.Abs(r.ExpConfidence-1) > 1e-12 {
				t.Errorf("a => bc should have confidence 1, got %v", r.ExpConfidence)
			}
		}
	}
	if !found {
		t.Error("rule {a} => {b c} missing")
	}
}

func TestGenerateThresholdAndDedup(t *testing.T) {
	db := uncertain.PaperExample()
	sources := []itemset.Itemset{
		itemset.FromInts(0, 1, 2, 3),
		itemset.FromInts(0, 1, 2, 3), // duplicate source must not duplicate rules
	}
	loose, err := Generate(db, sources, Options{MinConfidence: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Generate(db, sources, Options{MinConfidence: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if len(tight) >= len(loose) {
		t.Errorf("tighter confidence should give fewer rules: %d vs %d", len(tight), len(loose))
	}
	seen := map[string]bool{}
	for _, r := range loose {
		key := r.Antecedent.Key() + ">" + r.Consequent.Key()
		if seen[key] {
			t.Fatalf("duplicate rule %v", r)
		}
		seen[key] = true
	}
	// A 4-itemset yields 2^4 − 2 = 14 antecedent choices.
	if len(loose) != 14 {
		t.Errorf("got %d rules from abcd, want 14", len(loose))
	}
}

func TestGenerateValidation(t *testing.T) {
	db := uncertain.PaperExample()
	if _, err := Generate(db, nil, Options{MinConfidence: 0}); err == nil {
		t.Error("zero MinConfidence should fail")
	}
	if _, err := Generate(db, nil, Options{MinConfidence: 1.5}); err == nil {
		t.Error("MinConfidence > 1 should fail")
	}
	// Oversized sources are skipped, not errors.
	big := make(itemset.Itemset, 20)
	for i := range big {
		big[i] = itemset.Item(i)
	}
	rules, err := Generate(db, []itemset.Itemset{big}, Options{MinConfidence: 0.5, MaxItems: 12})
	if err != nil || len(rules) != 0 {
		t.Errorf("oversized source should be skipped: %v, %v", rules, err)
	}
}

func TestConfidenceProbAgainstExact(t *testing.T) {
	db := uncertain.PaperExample()
	x := itemset.FromInts(0, 1, 2)
	y := itemset.FromInts(3)
	for _, minConf := range []float64{0.3, 0.5, 0.9} {
		exact, err := ExactConfidenceProb(db, x, y, minConf)
		if err != nil {
			t.Fatal(err)
		}
		est, err := ConfidenceProb(db, x, y, minConf, 200000, 7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-exact) > 0.01 {
			t.Errorf("minConf=%v: sampled %v, exact %v", minConf, est, exact)
		}
	}
}

func TestConfidenceProbRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		db := randomDB(rng, 7, 4)
		items := db.Items()
		if len(items) < 2 {
			continue
		}
		x := itemset.Itemset{items[0]}
		y := itemset.Itemset{items[1]}
		exact, err := ExactConfidenceProb(db, x, y, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		est, err := ConfidenceProb(db, x, y, 0.5, 60000, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-exact) > 0.02 {
			t.Errorf("trial %d: sampled %v, exact %v", trial, est, exact)
		}
	}
}

func TestRuleValidation(t *testing.T) {
	db := uncertain.PaperExample()
	a, b := itemset.FromInts(0), itemset.FromInts(0, 1)
	if _, err := ConfidenceProb(db, a, b, 0.5, 100, 1); err == nil {
		t.Error("overlapping rule sides should fail")
	}
	if _, err := ConfidenceProb(db, nil, b, 0.5, 100, 1); err == nil {
		t.Error("empty antecedent should fail")
	}
	if _, err := ConfidenceProb(db, a, itemset.FromInts(2), 0.5, 0, 1); err == nil {
		t.Error("zero samples should fail")
	}
	if _, err := ExactConfidenceProb(db, a, b, 0.5); err == nil {
		t.Error("overlapping rule sides should fail exactly too")
	}
}

func randomDB(rng *rand.Rand, maxN, maxItems int) *uncertain.DB {
	n := rng.Intn(maxN) + 1
	trans := make([]uncertain.Transaction, 0, n)
	for i := 0; i < n; i++ {
		var items []itemset.Item
		for j := 0; j < maxItems; j++ {
			if rng.Float64() < 0.6 {
				items = append(items, itemset.Item(j))
			}
		}
		if len(items) == 0 {
			items = []itemset.Item{itemset.Item(rng.Intn(maxItems))}
		}
		trans = append(trans, uncertain.Transaction{
			Items: itemset.New(items...),
			Prob:  rng.Float64()*0.98 + 0.01,
		})
	}
	return uncertain.MustNewDB(trans)
}
