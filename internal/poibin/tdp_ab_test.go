package poibin

import (
	"math/rand"
	"testing"
)

// refWindowDP is the textbook absorbing-truncated DP, kept as the reference
// implementation: full k+1 window every round, O(k) copy for p = 1 tuples.
// The production tailDP must reproduce it bit for bit — its window offset,
// rising floor, and early absorb-exit are all arguments about IEEE
// exactness, and this test is where those arguments meet the hardware.
func refWindowDP(dist []float64, probs []float64, k int) float64 {
	for i := range dist {
		dist[i] = 0
	}
	dist[0] = 1
	hi := 0
	for _, p := range probs {
		if hi < k {
			hi++
		}
		top := hi
		if top > k-1 {
			top = k - 1
		}
		if p == 1 {
			if hi == k {
				dist[k] += dist[k-1]
			}
			copy(dist[1:top+1], dist[:top])
			dist[0] = 0
			continue
		}
		q := 1 - p
		if hi == k {
			dist[k] += dist[k-1] * p
		}
		for c := top; c >= 1; c-- {
			dist[c] = dist[c]*q + dist[c-1]*p
		}
		dist[0] *= q
	}
	if dist[k] > 1 {
		return 1
	}
	return dist[k]
}

// TestTailDPMatchesReference fuzzes the windowed tailDP against the
// reference DP and requires exact (==, not ≈) agreement, across vectors
// mixing certain tuples, near-zero clamps, and generic probabilities, at
// every threshold.
func TestTailDPMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20000; trial++ {
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(n)
		probs := make([]float64, n)
		for i := range probs {
			switch rng.Intn(5) {
			case 0:
				probs[i] = 1
			case 1:
				probs[i] = 0.01
			default:
				probs[i] = rng.Float64()
			}
		}
		d1 := make([]float64, k+1)
		d2 := make([]float64, k+1)
		a := refWindowDP(d1, probs, k)
		b := tailDP(d2, probs, k)
		if a != b {
			t.Fatalf("trial %d n=%d k=%d: ref=%v got=%v diff=%g\nprobs=%v", trial, n, k, a, b, a-b, probs)
		}
	}
	// Long vectors with a high certain-tuple rate: the early absorb-exit
	// (off ≥ k) and deep floor both engage.
	for trial := 0; trial < 200; trial++ {
		n := 200 + rng.Intn(400)
		k := 1 + rng.Intn(n)
		probs := make([]float64, n)
		for i := range probs {
			if rng.Float64() < 0.3 {
				probs[i] = 1
			} else {
				probs[i] = rng.Float64()
			}
		}
		d1 := make([]float64, k+1)
		d2 := make([]float64, k+1)
		a := refWindowDP(d1, probs, k)
		b := tailDP(d2, probs, k)
		if a != b {
			t.Fatalf("long trial %d n=%d k=%d: ref=%v got=%v", trial, n, k, a, b)
		}
	}
}
