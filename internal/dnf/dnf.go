// Package dnf computes and bounds the probability of the DNF event
// C_1 ∨ … ∨ C_m that makes an itemset frequent-but-non-closed
// (Definition 4.1). In the MPFCI setting every clause has the same shape:
//
//	C_i  =  "all transactions containing X but not e_i are absent"
//	        AND "sup(X + e_i) ≥ min_sup"
//
// so a clause is fully described by the tidset B_i of X+e_i inside the base
// tidset of X. Any conjunction of clauses then collapses to the same shape
// over the intersection ∩B_i, which makes exact single and pairwise
// probabilities cheap (Lemma 4.4's ingredients), inclusion–exclusion exact
// for small m, and Karp–Luby coverage sampling (the ApproxFCP estimator of
// Fig. 2) straightforward.
package dnf

import (
	"fmt"
	"math"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/poibin"
)

// System is the clause system attached to one candidate itemset X.
type System struct {
	// Base is the tidset of X: transactions that possibly contain X.
	Base *bitset.Bitset
	// Probs are the tuple existence probabilities indexed by tid; only tids
	// in Base are ever consulted.
	Probs []float64
	// MinSup is the support threshold of the mining task.
	MinSup int
	// Clauses holds B_i ⊆ Base for every extension item e_i.
	Clauses []*bitset.Bitset
	// TailFn, when non-nil, computes the Poisson-binomial tail
	// Pr[Σ Bernoulli(probs) ≥ MinSup] for the event tidset b, where probs
	// is exactly the probability vector of b's members in ascending tid
	// order. The miner injects its memoized tail evaluator here so clause
	// evaluations share the mining run's memo (repeated intersections hit
	// constantly on dense data); nil falls back to poibin.Tail. Any
	// implementation must return values bit-identical to poibin.Tail.
	TailFn func(b *bitset.Bitset, probs []float64) float64

	probsBuf   []float64      // scratch for probsOf
	interBuf   *bitset.Bitset // scratch for PairProb intersections
	sumsClause []float64      // scratch for ComputeSumsReuse
	sumsPair   [][]float64
	sumsFlat   []float64
}

// Reuse repoints s at a new clause system while keeping its internal
// scratch buffers (and TailFn); the miner calls it once per evaluated
// node so the hot path allocates no per-node System state. Callers are
// responsible for the NewSystem invariants (clauses ⊆ base).
func (s *System) Reuse(base *bitset.Bitset, probs []float64, minSup int, clauses []*bitset.Bitset) {
	s.Base, s.Probs, s.MinSup, s.Clauses = base, probs, minSup, clauses
}

// NewSystem validates the clause shapes.
func NewSystem(base *bitset.Bitset, probs []float64, minSup int, clauses []*bitset.Bitset) (*System, error) {
	if base.Len() != len(probs) {
		return nil, fmt.Errorf("dnf: base capacity %d != len(probs) %d", base.Len(), len(probs))
	}
	for i, c := range clauses {
		if !bitset.IsSubset(c, base) {
			return nil, fmt.Errorf("dnf: clause %d is not a subset of the base tidset", i)
		}
	}
	return &System{Base: base, Probs: probs, MinSup: minSup, Clauses: clauses}, nil
}

// M returns the number of clauses.
func (s *System) M() int { return len(s.Clauses) }

// eventProb returns the probability of the canonical event "every tid in
// Base\B is absent AND at least MinSup tids of B are present". The
// ascending-tid iteration order of both the absence product and the
// probability vector matches the dense word order exactly, keeping results
// bit-identical across tidset representations.
func (s *System) eventProb(b *bitset.Bitset) float64 {
	absent := 1.0
	bitset.ForEachDiff(s.Base, b, func(tid int) bool {
		absent *= 1 - s.Probs[tid]
		return true
	})
	if absent == 0 {
		return 0
	}
	probs := s.probsOf(b)
	if s.TailFn != nil {
		return absent * s.TailFn(b, probs)
	}
	return absent * poibin.Tail(probs, s.MinSup)
}

// probsOf collects b's probabilities into a scratch buffer valid until the
// next probsOf call; callers must not retain it.
func (s *System) probsOf(b *bitset.Bitset) []float64 {
	out := s.probsBuf[:0]
	b.ForEach(func(tid int) bool {
		out = append(out, s.Probs[tid])
		return true
	})
	s.probsBuf = out
	return out
}

// ClauseProb returns Pr(C_i) = Π_{T ⊇ X, e_i ∉ T}(1 − p_T) · Pr_F(X+e_i).
func (s *System) ClauseProb(i int) float64 {
	return s.eventProb(s.Clauses[i])
}

// PairProb returns Pr(C_i ∩ C_j), which collapses to the canonical event
// over B_i ∩ B_j.
func (s *System) PairProb(i, j int) float64 {
	if i == j {
		return s.ClauseProb(i)
	}
	if s.interBuf == nil {
		s.interBuf = bitset.New(s.Base.Len())
	}
	bitset.AndInto(s.interBuf, s.Clauses[i], s.Clauses[j])
	return s.eventProb(s.interBuf)
}

// Prefix returns a view over the first k clauses, sharing the base, the
// probability vector, and the tail hook. The view shares scratch state with
// s, so use them serially, never concurrently.
func (s *System) Prefix(k int) *System {
	return &System{
		Base:    s.Base,
		Probs:   s.Probs,
		MinSup:  s.MinSup,
		Clauses: s.Clauses[:k],
		TailFn:  s.TailFn,
	}
}

// ExactUnionLimit bounds the inclusion–exclusion fallback.
const ExactUnionLimit = 20

// ExactUnion returns Pr(C_1 ∪ … ∪ C_m) by inclusion–exclusion. Cost is
// O(2^m) clause-intersection evaluations, so it is rejected above
// ExactUnionLimit clauses.
func (s *System) ExactUnion() (float64, error) {
	m := len(s.Clauses)
	if m == 0 {
		return 0, nil
	}
	if m > ExactUnionLimit {
		return 0, fmt.Errorf("dnf: %d clauses exceed exact inclusion-exclusion limit %d", m, ExactUnionLimit)
	}
	total := 0.0
	if s.interBuf == nil {
		s.interBuf = bitset.New(s.Base.Len())
	}
	inter := s.interBuf
	for mask := 1; mask < 1<<uint(m); mask++ {
		inter.CopyFrom(s.Base)
		bits := 0
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				bitset.AndInto(inter, inter, s.Clauses[i])
				bits++
			}
		}
		p := s.eventProb(inter)
		if bits%2 == 1 {
			total += p
		} else {
			total -= p
		}
	}
	// Clamp tiny negative drift from float cancellation.
	if total < 0 {
		total = 0
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// Sums holds the first- and second-order clause probability sums that the
// Lemma 4.4 bounds are built from.
type Sums struct {
	Clause []float64   // Pr(C_i)
	Pair   [][]float64 // Pr(C_i ∩ C_j), symmetric, diagonal = Pr(C_i)
}

// ComputeSums evaluates all single and pairwise clause probabilities:
// O(m²) canonical-event evaluations.
func (s *System) ComputeSums() Sums {
	m := len(s.Clauses)
	sums := Sums{Clause: make([]float64, m), Pair: make([][]float64, m)}
	for i := 0; i < m; i++ {
		sums.Pair[i] = make([]float64, m)
	}
	s.fillSums(&sums)
	return sums
}

// ComputeSumsReuse is ComputeSums over scratch buffers held on s: the
// returned Sums is valid until the next ComputeSums(Reuse) call on this
// system. Values are identical to ComputeSums.
func (s *System) ComputeSumsReuse() Sums {
	m := len(s.Clauses)
	if cap(s.sumsClause) < m {
		s.sumsClause = make([]float64, m)
		s.sumsPair = make([][]float64, m)
		s.sumsFlat = make([]float64, m*m)
	}
	sums := Sums{Clause: s.sumsClause[:m], Pair: s.sumsPair[:m]}
	flat := s.sumsFlat[: m*m : m*m]
	for i := 0; i < m; i++ {
		sums.Pair[i] = flat[i*m : (i+1)*m]
	}
	s.fillSums(&sums)
	return sums
}

func (s *System) fillSums(sums *Sums) {
	m := len(s.Clauses)
	for i := 0; i < m; i++ {
		sums.Clause[i] = s.ClauseProb(i)
		sums.Pair[i][i] = sums.Clause[i]
		for j := i + 1; j < m; j++ {
			p := s.PairProb(i, j)
			sums.Pair[i][j] = p
			sums.Pair[j][i] = p
		}
	}
}

// DeCaenLower returns de Caen's lower bound on Pr(∪C_i):
//
//	Σ_i  Pr(C_i)² / Σ_j Pr(C_i ∩ C_j)
//
// (the j-sum includes j = i). Clauses with zero probability contribute 0.
func DeCaenLower(sums Sums) float64 {
	total := 0.0
	for i, pi := range sums.Clause {
		if pi <= 0 {
			continue
		}
		den := 0.0
		for _, pij := range sums.Pair[i] {
			den += pij
		}
		if den > 0 {
			total += pi * pi / den
		}
	}
	if total > 1 {
		total = 1
	}
	return total
}

// KwerelUpper returns Kwerel's upper bound on Pr(∪C_i):
//
//	min{ S1 − 2·S2/m , 1 }
//
// with S1 = Σ Pr(C_i) and S2 = Σ_{i<j} Pr(C_i ∩ C_j).
func KwerelUpper(sums Sums) float64 {
	m := len(sums.Clause)
	if m == 0 {
		return 0
	}
	s1, s2 := 0.0, 0.0
	for i, pi := range sums.Clause {
		s1 += pi
		for j := i + 1; j < m; j++ {
			s2 += sums.Pair[i][j]
		}
	}
	ub := s1 - 2*s2/float64(m)
	if ub > 1 {
		ub = 1
	}
	if ub < 0 {
		ub = 0
	}
	return ub
}

// UnionBounds returns the best available analytic sandwich
// lower ≤ Pr(∪C_i) ≤ upper, combining de Caen/Kwerel with the trivial
// max-clause and Boole bounds.
func UnionBounds(sums Sums) (lower, upper float64) {
	lower = DeCaenLower(sums)
	maxClause, s1 := 0.0, 0.0
	for _, p := range sums.Clause {
		s1 += p
		if p > maxClause {
			maxClause = p
		}
	}
	if maxClause > lower {
		lower = maxClause
	}
	upper = KwerelUpper(sums)
	if s1 < upper {
		upper = s1
	}
	if upper > 1 {
		upper = 1
	}
	if upper < lower {
		// Numerical drift; collapse to a consistent point.
		mid := (upper + lower) / 2
		lower, upper = mid, mid
	}
	return lower, upper
}

// SampleSize returns the Karp–Luby sample count N = ⌈4·m·ln(2/δ)/ε²⌉
// guaranteeing Pr(|est − Pr(∪C)| ≥ ε) ≤ δ, the FPRAS size quoted in the
// paper's complexity analysis of ApproxFCP.
func SampleSize(m int, eps, delta float64) int {
	if m == 0 {
		return 0
	}
	n := math.Ceil(4 * float64(m) * math.Log(2/delta) / (eps * eps))
	if n < 1 {
		n = 1
	}
	return int(n)
}
