package pfim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

func randomItemDB(rng *rand.Rand, maxN, maxItems int) *uncertain.ItemDB {
	n := rng.Intn(maxN) + 1
	trans := make([]uncertain.ItemTransaction, 0, n)
	for i := 0; i < n; i++ {
		var items []uncertain.ProbItem
		for j := 0; j < maxItems; j++ {
			if rng.Float64() < 0.6 {
				items = append(items, uncertain.ProbItem{
					Item: itemset.Item(j),
					Prob: rng.Float64()*0.98 + 0.01,
				})
			}
		}
		if len(items) == 0 {
			items = []uncertain.ProbItem{{Item: itemset.Item(rng.Intn(maxItems)), Prob: 0.5}}
		}
		trans = append(trans, uncertain.ItemTransaction{Items: items})
	}
	return uncertain.MustNewItemDB(trans)
}

// expectedSupportBruteForce enumerates every itemset and thresholds its
// expected support directly from the definition.
func expectedSupportBruteForce(db *uncertain.ItemDB, minExp float64) []Itemset {
	items := db.Items()
	var out []Itemset
	for mask := 1; mask < 1<<uint(len(items)); mask++ {
		var x itemset.Itemset
		for i, it := range items {
			if mask&(1<<uint(i)) != 0 {
				x = append(x, it)
			}
		}
		if exp := db.ExpectedSupport(x); exp >= minExp {
			out = append(out, Itemset{Items: x.Clone(), ExpectedSupport: exp})
		}
	}
	return out
}

func TestItemLevelExpectedSupportAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomItemDB(rng, 8, 5)
		minExp := rng.Float64()*2 + 0.2
		got := ItemLevelExpectedSupportMine(db, minExp)
		want := expectedSupportBruteForce(db, minExp)
		if len(got) != len(want) {
			return false
		}
		gotKeys := map[string]float64{}
		for _, p := range got {
			gotKeys[p.Items.Key()] = p.ExpectedSupport
		}
		for _, w := range want {
			g, ok := gotKeys[w.Items.Key()]
			if !ok || math.Abs(g-w.ExpectedSupport) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestItemLevelMineAgainstDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		db := randomItemDB(rng, 8, 4)
		minSup := rng.Intn(2) + 1
		const pft = 0.4
		got := ItemLevelMine(db, Options{MinSup: minSup, PFT: pft})
		gotKeys := map[string]float64{}
		for _, p := range got {
			gotKeys[p.Items.Key()] = p.FreqProb
		}
		items := db.Items()
		for mask := 1; mask < 1<<uint(len(items)); mask++ {
			var x itemset.Itemset
			for i, it := range items {
				if mask&(1<<uint(i)) != 0 {
					x = append(x, it)
				}
			}
			var probs []float64
			for _, p := range db.ContainProbs(x) {
				if p > 0 {
					probs = append(probs, p)
				}
			}
			prF := poibin.Tail(probs, minSup)
			g, found := gotKeys[x.Key()]
			if (prF > pft) != found {
				t.Fatalf("trial %d: %v has Pr_F=%v, in result=%v", trial, x, prF, found)
			}
			if found && math.Abs(g-prF) > 1e-9 {
				t.Fatalf("trial %d: %v Pr_F mismatch %v vs %v", trial, x, g, prF)
			}
		}
	}
}

func TestItemLevelCertainDataDegenerates(t *testing.T) {
	// With all item probabilities 1, the item-level expected support equals
	// the exact support, so mining must match the tuple-level result on the
	// same certain data.
	data := []itemset.Itemset{
		itemset.FromInts(0, 1, 2),
		itemset.FromInts(0, 1),
		itemset.FromInts(1, 2),
	}
	idb := uncertain.CertainItemDB(data)
	got := ItemLevelExpectedSupportMine(idb, 2)
	if len(got) != 5 {
		t.Fatalf("got %d itemsets, want 5: %v", len(got), got)
	}
	for _, p := range got {
		if math.Abs(p.ExpectedSupport-float64(p.Count)) > 1e-12 {
			t.Errorf("%v: expected support %v != count %d on certain data", p.Items, p.ExpectedSupport, p.Count)
		}
	}
}

func TestItemDBValidation(t *testing.T) {
	bad := [][]uncertain.ItemTransaction{
		{{Items: nil}},
		{{Items: []uncertain.ProbItem{{Item: 1, Prob: 0}}}},
		{{Items: []uncertain.ProbItem{{Item: 1, Prob: 1.5}}}},
		{{Items: []uncertain.ProbItem{{Item: 1, Prob: 0.5}, {Item: 1, Prob: 0.6}}}},
	}
	for i, trans := range bad {
		if _, err := uncertain.NewItemDB(trans); err == nil {
			t.Errorf("case %d: invalid item-level db accepted", i)
		}
	}
	db := uncertain.MustNewItemDB([]uncertain.ItemTransaction{
		{Items: []uncertain.ProbItem{{Item: 2, Prob: 0.5}, {Item: 1, Prob: 0.25}}},
	})
	if got := db.ItemProb(0, 1); got != 0.25 {
		t.Errorf("ItemProb = %v", got)
	}
	if got := db.ItemProb(0, 9); got != 0 {
		t.Errorf("missing item prob = %v", got)
	}
	if got := db.ContainProb(0, itemset.FromInts(1, 2)); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("ContainProb = %v", got)
	}
	if got := db.ExpectedSupport(itemset.FromInts(1)); got != 0.25 {
		t.Errorf("ExpectedSupport = %v", got)
	}
}

func TestItemDBToTupleLevel(t *testing.T) {
	db := uncertain.MustNewItemDB([]uncertain.ItemTransaction{
		{Items: []uncertain.ProbItem{{Item: 0, Prob: 0.5}, {Item: 1, Prob: 0.8}}},
	})
	tdb, err := db.ToTupleLevel()
	if err != nil {
		t.Fatal(err)
	}
	if tdb.N() != 1 {
		t.Fatalf("tuple db has %d transactions", tdb.N())
	}
	if got := tdb.Prob(0); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("collapsed probability = %v, want 0.4", got)
	}
}
