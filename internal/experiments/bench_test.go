package experiments

import (
	"testing"

	"github.com/probdata/pfcim/internal/core"
)

// benchMine mines one named bench configuration per iteration — the same
// workload RunBench measures, exposed as a go-test benchmark so the mining
// points can be profiled in isolation:
//
//	go test ./internal/experiments -run '^$' -bench 'BenchmarkMine/fig5-quest' -cpuprofile cpu.prof
func benchMine(b *testing.B, name string) {
	s := NewSuite(Config{Seed: 42})
	for _, cfg := range s.benchConfigs() {
		if cfg.Name != name {
			continue
		}
		ds := s.Mushroom
		if cfg.Dataset == s.Quest.Name {
			ds = s.Quest
		}
		opts := s.baseOptions(ds.DB, cfg.RelMinSup)
		opts.PFCT = cfg.PFCT
		opts.Parallelism = cfg.Parallelism
		opts.Shards = cfg.Shards
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Mine(ds.DB, opts); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("unknown bench configuration %q", name)
}

func BenchmarkMine(b *testing.B) {
	for _, name := range []string{"fig5-mushroom", "fig5-quest"} {
		b.Run(name, func(b *testing.B) { benchMine(b, name) })
	}
}
