package stream

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

func randStreamTrans(rng *rand.Rand, universe int) uncertain.Transaction {
	n := 1 + rng.Intn(universe)
	seen := map[int]bool{}
	var items itemset.Itemset
	for len(items) < n {
		it := rng.Intn(universe)
		if !seen[it] {
			seen[it] = true
			items = items.Add(itemset.Item(it))
		}
	}
	p := 0.3 + 0.7*rng.Float64()
	switch rng.Intn(10) {
	case 0:
		p = 1
	case 1:
		p = 1e-9
	}
	return uncertain.Transaction{Items: items, Prob: p}
}

// TestTopKNegative pins the regression: TopK(-1) used to slice out[:-1]
// and panic.
func TestTopKNegative(t *testing.T) {
	w, err := NewWindow(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Push(uncertain.Transaction{Items: itemset.FromInts(0, 1), Prob: 0.5}); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{-1, -100, 0} {
		if got := w.TopK(k); len(got) != 0 {
			t.Fatalf("TopK(%d) = %d items, want 0", k, len(got))
		}
	}
	if got := w.TopK(1); len(got) != 1 {
		t.Fatalf("TopK(1) = %d items, want 1", len(got))
	}
	if got := w.TopK(100); len(got) != 2 {
		t.Fatalf("TopK(100) = %d items, want 2", len(got))
	}
}

// TestUnboundedWindowNeverEvicts pins the append-only shape.
func TestUnboundedWindowNeverEvicts(t *testing.T) {
	w := NewUnboundedWindow()
	for i := 0; i < 100; i++ {
		_, didEvict, err := w.Push(uncertain.Transaction{Items: itemset.FromInts(i % 5), Prob: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if didEvict {
			t.Fatal("unbounded window evicted")
		}
	}
	if w.Len() != 100 {
		t.Fatalf("Len = %d, want 100", w.Len())
	}
	db, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if db.N() != 100 {
		t.Fatalf("snapshot N = %d, want 100", db.N())
	}
}

// TestTrackedTailsMatchExactDP slides a window with tracking on and checks
// every item's maintained tail against the exact DP after each push — both
// the deconvolution path and the rebuild fallback must stay within the
// verified tolerance (and bit-exact while nothing was ever deconvolved).
func TestTrackedTailsMatchExactDP(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	w, err := NewWindow(12)
	if err != nil {
		t.Fatal(err)
	}
	const minSup = 3
	if err := w.TrackTails(minSup); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if _, _, err := w.Push(randStreamTrans(rng, 6)); err != nil {
			t.Fatal(err)
		}
		for it := range w.count {
			got := w.FreqProb(it, minSup)
			want := poibin.Tail(w.itemProbs(it), minSup)
			if d := math.Abs(got - want); d > 1e-9 {
				t.Fatalf("push %d item %d: maintained tail %v, exact %v (diff %g)", i, it, got, want, d)
			}
		}
	}
	st := w.TailStats()
	if st.Updates == 0 || st.Deconvolved == 0 {
		t.Fatalf("maintenance never exercised: %+v", st)
	}
	t.Logf("tail stats: %+v", st)
}

// TestFrequentItemsTrackedMatchesUntracked pins that the O(1) tracked read
// and the exact query agree on the qualifying set.
func TestFrequentItemsTrackedMatchesUntracked(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tracked, _ := NewWindow(10)
	plain, _ := NewWindow(10)
	if err := tracked.TrackTails(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tr := randStreamTrans(rng, 5)
		if _, _, err := tracked.Push(tr); err != nil {
			t.Fatal(err)
		}
		if _, _, err := plain.Push(tr); err != nil {
			t.Fatal(err)
		}
		a, err := tracked.FrequentItems(Options{MinSup: 2, PFT: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.FrequentItems(Options{MinSup: 2, PFT: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("push %d: tracked %d items, untracked %d", i, len(a), len(b))
		}
		// Compare by item: tails within deconvolution tolerance can reorder
		// exact ties, so positional comparison would flag ulp artifacts.
		byItem := make(map[itemset.Item]float64, len(b))
		for _, r := range b {
			byItem[r.Item] = r.FreqProb
		}
		for _, r := range a {
			want, ok := byItem[r.Item]
			if !ok {
				t.Fatalf("push %d: tracked item %d missing from untracked set", i, r.Item)
			}
			if math.Abs(r.FreqProb-want) > 1e-9 {
				t.Fatalf("push %d item %d: tracked %v vs untracked %v", i, r.Item, r.FreqProb, want)
			}
		}
	}
}

// TestFrequentItemsContextCancel pins the context-first error path.
func TestFrequentItemsContextCancel(t *testing.T) {
	w, _ := NewWindow(4)
	if _, _, err := w.Push(uncertain.Transaction{Items: itemset.FromInts(0), Prob: 0.5}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.FrequentItemsContext(ctx, Options{MinSup: 1, PFT: 0.1}); err == nil {
		t.Fatal("cancelled query must fail")
	}
}

// TestMinerMatchesFromScratch is the core delta-engine property: across a
// random push sequence over a bounded window (so evictions happen), every
// mining round must be byte-identical to a from-scratch core.Mine of the
// window snapshot, and the diffs must replay one round into the next.
func TestMinerMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	opts := core.Options{MinSup: 2, PFCT: 0.25, Seed: 9}
	for trial := 0; trial < 10; trial++ {
		w, err := NewWindow(8)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMiner(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		reused := 0
		for round := 0; round < 8; round++ {
			for b := 0; b < 1+rng.Intn(3); b++ {
				if err := m.Push(randStreamTrans(rng, 6)); err != nil {
					t.Fatal(err)
				}
			}
			res, diff, err := m.MineContext(context.Background())
			if err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
			db, err := w.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			full, err := core.Mine(db, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Itemsets, full.Itemsets) {
				t.Fatalf("trial %d round %d: delta-mined result diverged\n got: %+v\nwant: %+v",
					trial, round, res.Itemsets, full.Itemsets)
			}
			if round == 0 && (len(diff.Removed) != 0 || len(diff.Changed) != 0 || diff.Unchanged != 0) {
				t.Fatalf("trial %d: first-round diff must be all-added, got %+v", trial, diff)
			}
			if got := len(diff.Added) + len(diff.Changed) + diff.Unchanged; got != len(res.Itemsets) {
				t.Fatalf("trial %d round %d: diff accounts for %d itemsets, result has %d",
					trial, round, got, len(res.Itemsets))
			}
			reused += res.Stats.SubtreesReused
		}
		if m.Rounds() != 8 {
			t.Fatalf("trial %d: %d rounds recorded", trial, m.Rounds())
		}
		_ = reused
	}
}

// TestMinerNoChangeRound pins that mining twice without pushes reuses the
// whole tree and reports an empty diff.
func TestMinerNoChangeRound(t *testing.T) {
	w, _ := NewWindow(8)
	m, err := NewMiner(w, core.Options{MinSup: 2, PFCT: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	table2 := []uncertain.Transaction{
		{Items: itemset.FromInts(0, 1, 2, 3), Prob: 0.9},
		{Items: itemset.FromInts(0, 1, 2), Prob: 0.6},
		{Items: itemset.FromInts(0, 1, 2), Prob: 0.7},
		{Items: itemset.FromInts(0, 1, 2, 3), Prob: 0.9},
	}
	for _, tr := range table2 {
		if err := m.Push(tr); err != nil {
			t.Fatal(err)
		}
	}
	first, _, err := m.MineContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Itemsets) == 0 {
		t.Fatal("Table II mine returned nothing")
	}
	second, diff, err := m.MineContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Empty() {
		t.Fatalf("no-change diff not empty: %+v", diff)
	}
	if diff.Unchanged != len(first.Itemsets) {
		t.Fatalf("unchanged = %d, want %d", diff.Unchanged, len(first.Itemsets))
	}
	if second.Stats.NodesVisited != 0 || second.Stats.SubtreesReused == 0 {
		t.Fatalf("no-change round did real work: %+v", second.Stats)
	}
}

// TestMinerRejectsBFS pins eager option validation.
func TestMinerRejectsBFS(t *testing.T) {
	w, _ := NewWindow(4)
	if _, err := NewMiner(w, core.Options{MinSup: 2, PFCT: 0.5, Search: core.BFS}); err == nil {
		t.Fatal("BFS miner must be rejected")
	}
	if _, err := NewMiner(w, core.Options{MinSup: -1, PFCT: 0.5}); err == nil {
		t.Fatal("invalid options must be rejected")
	}
}

// TestDiffJSONShape pins the wire form.
func TestDiffJSONShape(t *testing.T) {
	d := Diff{
		Added:     []core.ResultItem{{Items: itemset.FromInts(0, 1), Prob: 0.5}},
		Unchanged: 3,
	}
	j := d.JSON()
	if len(j.Added) != 1 || j.Added[0].Items[1] != 1 || j.Unchanged != 3 {
		t.Fatalf("unexpected wire form: %+v", j)
	}
	if j.Removed != nil || j.Changed != nil {
		t.Fatalf("empty slices must be omitted: %+v", j)
	}
}

// TestMinerRoundHook pins the per-round telemetry: the hook fires once per
// successful round, its diff accounting covers the full result, the reuse
// ratio hits 1 on a no-change round, and a traced round is byte-identical
// to the untraced baseline.
func TestMinerRoundHook(t *testing.T) {
	table2 := []uncertain.Transaction{
		{Items: itemset.FromInts(0, 1, 2, 3), Prob: 0.9},
		{Items: itemset.FromInts(0, 1, 2), Prob: 0.6},
		{Items: itemset.FromInts(0, 1, 2), Prob: 0.7},
		{Items: itemset.FromInts(0, 1, 2, 3), Prob: 0.9},
	}
	opts := core.Options{MinSup: 2, PFCT: 0.8}
	w, _ := NewWindow(8)
	m, err := NewMiner(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	var rounds []RoundInfo
	m.SetOnRound(func(ri RoundInfo) { rounds = append(rounds, ri) })
	for _, tr := range table2 {
		if err := m.Push(tr); err != nil {
			t.Fatal(err)
		}
	}
	first, _, err := m.MineContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	second, _, err := m.MineTraced(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Itemsets, second.Itemsets) {
		t.Fatal("traced no-change round diverged from baseline")
	}
	if m.opts.Tracer != nil {
		t.Fatal("MineTraced leaked the tracer into the miner's options")
	}

	if len(rounds) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(rounds))
	}
	r1, r2 := rounds[0], rounds[1]
	if r1.Round != 1 || r2.Round != 2 {
		t.Fatalf("round numbers %d, %d, want 1, 2", r1.Round, r2.Round)
	}
	if r1.Wall <= 0 || r2.Wall <= 0 {
		t.Errorf("round wall times %v, %v must be positive", r1.Wall, r2.Wall)
	}
	// Diff accounting: added + changed + unchanged covers the round result.
	for i, ri := range rounds {
		if got := len(ri.Diff.Added) + len(ri.Diff.Changed) + ri.Diff.Unchanged; got != ri.Results {
			t.Errorf("round %d: diff accounts for %d itemsets, result has %d", i+1, got, ri.Results)
		}
	}
	if len(r1.Diff.Added) != len(first.Itemsets) {
		t.Errorf("first round added %d, want %d", len(r1.Diff.Added), len(first.Itemsets))
	}
	if r1.ReuseRatio() != 0 {
		t.Errorf("first-round reuse ratio %v, want 0", r1.ReuseRatio())
	}
	if r2.ReuseRatio() != 1 {
		t.Errorf("no-change round reuse ratio %v, want 1", r2.ReuseRatio())
	}
	if (RoundInfo{}).ReuseRatio() != 0 {
		t.Error("empty round must report reuse ratio 0")
	}
}
