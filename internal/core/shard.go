package core

// Sharded tail and clause evaluation (DESIGN §14). When Options.Shards ≥ 2
// the transaction space is split into contiguous ranges by shard.Layout and
// every Poisson-binomial tail becomes a fold of per-range truncated PMFs
// (poibin.PMFTrunc merged by poibin.ConvolvePMF in shard order), while every
// Lemma 4.4 clause absence product becomes a fold of per-range partial
// products (shard.FoldFactors semantics). The miner runs this arithmetic
// inline; when Options.ShardKernel is installed, per-shard quantities for
// calls that carry an itemset identity are delegated to it instead. Both
// sides compute the identical float sequences — the same probability
// subsequences through the same PMFTrunc, the same ascending-tid partial
// products with the same early exit — so inline, LocalKernel, and
// RPC-delegated mining are byte-identical for a fixed shard count.

import (
	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/shard"
)

// sharded reports whether this run partitions its tail/clause arithmetic.
func (m *miner) sharded() bool { return m.opts.Shards >= 2 }

// shardLayout derives the run's range partition. The layout is a pure
// function of (Shards, |UTD|), so every execution path — inline, local
// kernel, distributed placement — partitions identically.
func (m *miner) shardLayout() shard.Layout {
	return shard.Layout{N: m.opts.Shards, Total: m.db.N()}
}

// shardTail computes Pr[sup ≥ MinSup] of the itemset with tidset b by the
// canonical sharded fold. Calls that carry an itemset identity (target is
// x+e when e ≥ 0, x alone when e < 0) may be delegated to the shard kernel;
// identity-free calls (DNF clause tails over intersected tidsets) and
// declined delegations compute locally from b — bit-identically, since both
// sides run PMFTrunc over the same per-range probability subsequences.
func (m *miner) shardTail(b *bitset.Bitset, probs []float64, x itemset.Itemset, e itemset.Item) float64 {
	if kern := m.opts.ShardKernel; kern != nil && (x != nil || e >= 0) {
		if parts, ok := kern.TailPMFs(x, e, m.opts.MinSup); ok {
			return shard.TailParts(&m.tail, parts, m.opts.MinSup)
		}
	}
	return m.shardTailLocal(b, probs)
}

// shardTailLocal splits b's gathered probability vector at the layout
// boundaries — the gathered vector is ascending in tid, so each shard's
// tuples form one contiguous run — and folds the per-range truncated PMFs.
// probs, when non-nil, must be probsOf(b).
func (m *miner) shardTailLocal(b *bitset.Bitset, probs []float64) float64 {
	if probs == nil {
		probs = m.probsOf(b)
	}
	l := m.shardLayout()
	n := l.N
	if cap(m.shardCounts) < n {
		m.shardCounts = make([]int, n)
		m.shardParts = make([][]float64, n)
	}
	counts := m.shardCounts[:n]
	for i := range counts {
		counts[i] = 0
	}
	s, hi := 0, l.End(0)
	b.ForEach(func(tid int) bool {
		for tid >= hi {
			s++
			hi = l.End(s)
		}
		counts[s]++
		return true
	})
	parts := m.shardParts[:n]
	off := 0
	for i := 0; i < n; i++ {
		parts[i] = m.tail.PMFTrunc(probs[off:off+counts[i]], m.opts.MinSup)
		off += counts[i]
	}
	t := shard.TailParts(&m.tail, parts, m.opts.MinSup)
	for i := range parts {
		m.tail.ReleasePMF(parts[i])
		parts[i] = nil
	}
	return t
}

// shardAbsentFactor computes the clause absence product Π (1−p_T) over
// tids\b as per-shard partial products folded in shard order — exactly
// shard.FoldFactors over what per-shard evaluators would return: within a
// shard the partial accumulates in ascending tid order and the scan stops
// once the partial drops below shard.NegligibleEps; at each boundary the
// completed partial folds into the running product, which going negligible
// ends the fold. Trailing shards with no differing tids contribute an exact
// 1.0 and are skipped.
func (m *miner) shardAbsentFactor(tids, b *bitset.Bitset, x itemset.Itemset, e itemset.Item) (absent float64, negligible bool) {
	if kern := m.opts.ShardKernel; kern != nil && x != nil && e >= 0 {
		if factors, ok := kern.ClauseFactors(x, e); ok {
			return shard.FoldFactors(factors)
		}
	}
	l := m.shardLayout()
	absent = 1.0
	f := 1.0
	s, hi := 0, l.End(0)
	bitset.ForEachDiff(tids, b, func(tid int) bool {
		for tid >= hi {
			absent *= f
			f = 1
			if absent < shard.NegligibleEps {
				negligible = true
				return false
			}
			s++
			hi = l.End(s)
		}
		f *= 1 - m.probs[tid]
		return f >= shard.NegligibleEps
	})
	if negligible {
		return absent, true
	}
	absent *= f
	if absent < shard.NegligibleEps {
		return absent, true
	}
	return absent, false
}
