package pfim

import (
	"sort"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

// This file implements the *probabilistic support* model of the related
// work the paper contrasts itself with in §II ([34]): given a probabilistic
// frequent threshold pft, the probabilistic support of an itemset is the
// largest support value it reaches with probability at least pft. Under
// that model an itemset is a "probabilistic frequent closed itemset" when
// its probabilistic support meets min_sup and strictly exceeds the
// probabilistic support of every proper superset.
//
// The paper's §II argues this definition is unstable: the result set can
// change as pft moves even when the underlying frequent probabilities
// don't, and its members can have near-zero true frequent closed
// probability. The tests reproduce that argument on the paper's Table IV
// database.

// ProbabilisticSupport returns max{s ≥ 0 : Pr[sup(X) ≥ s] ≥ pft}. Since
// Pr[sup ≥ 0] = 1 ≥ pft for any pft ≤ 1, the result is well defined.
func ProbabilisticSupport(db *uncertain.DB, x itemset.Itemset, pft float64) int {
	var probs []float64
	for i := 0; i < db.N(); i++ {
		if itemset.IsSubset(x, db.Transaction(i).Items) {
			probs = append(probs, db.Prob(i))
		}
	}
	return probSupportOf(probs, pft)
}

func probSupportOf(probs []float64, pft float64) int {
	tails := poibin.TailAll(probs)
	// tails is non-increasing; find the largest s with tails[s] ≥ pft.
	s := 0
	for k := 1; k < len(tails); k++ {
		if tails[k] >= pft {
			s = k
		} else {
			break
		}
	}
	return s
}

// ProbSupportItemset is one result of the probabilistic-support model.
type ProbSupportItemset struct {
	Items itemset.Itemset
	// PSup is the probabilistic support at the queried pft.
	PSup int
}

// MineProbSupportClosed mines the "probabilistic frequent closed itemsets"
// of the related-work definition: psup(X) ≥ minSup and psup(Y) < psup(X)
// for every proper superset Y. It enumerates the itemsets with
// psup ≥ minSup (psup is anti-monotone, so DFS subtree pruning applies)
// and then filters by the superset condition, which only needs single-item
// extensions: psup is monotone under ⊆, so if any superset ties, a
// single-item extension ties.
func MineProbSupportClosed(db *uncertain.DB, minSup int, pft float64) []ProbSupportItemset {
	idx := db.Index()
	probs := db.Probs()

	psupOf := func(b *bitset.Bitset) int {
		ps := make([]float64, 0, b.Count())
		b.ForEach(func(tid int) bool {
			ps = append(ps, probs[tid])
			return true
		})
		return probSupportOf(ps, pft)
	}

	type cand struct {
		item itemset.Item
		tids *bitset.Bitset
	}
	var cands []cand
	for _, it := range idx.Items {
		if psupOf(idx.Tidsets[it]) >= minSup {
			cands = append(cands, cand{item: it, tids: idx.Tidsets[it]})
		}
	}

	type node struct {
		items itemset.Itemset
		tids  *bitset.Bitset
		psup  int
	}
	var all []node
	var rec func(x itemset.Itemset, tids *bitset.Bitset, psup, startPos int)
	rec = func(x itemset.Itemset, tids *bitset.Bitset, psup, startPos int) {
		all = append(all, node{items: x.Clone(), tids: tids, psup: psup})
		for pos := startPos; pos < len(cands); pos++ {
			child := bitset.And(tids, cands[pos].tids)
			if p := psupOf(child); p >= minSup {
				rec(x.Extend(cands[pos].item), child, p, pos+1)
			}
		}
	}
	for pos, c := range cands {
		tids := c.tids.Clone()
		rec(itemset.Itemset{c.item}, tids, psupOf(tids), pos+1)
	}

	var out []ProbSupportItemset
	for _, n := range all {
		closed := true
		for _, e := range idx.Items {
			if n.items.Contains(e) {
				continue
			}
			super := bitset.And(n.tids, idx.Tidsets[e])
			if psupOf(super) >= n.psup {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, ProbSupportItemset{Items: n.items, PSup: n.psup})
		}
	}
	sort.Slice(out, func(i, j int) bool { return itemset.Compare(out[i].Items, out[j].Items) < 0 })
	return out
}
