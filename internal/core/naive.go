package core

import (
	"sort"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/pfim"
	"github.com/probdata/pfcim/internal/uncertain"
)

// NaiveMine is the Fig. 5 baseline: first enumerate every probabilistic
// frequent itemset (the TODIS-equivalent result set of pfim.Mine), then
// run the ApproxFCP Monte-Carlo estimator on each one, with no bounding or
// pruning. Pr_FC(X) ≤ Pr_F(X), so restricting to probabilistic frequent
// itemsets at threshold pfct loses no results.
func NaiveMine(db *uncertain.DB, opts Options) (*Result, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	// Force the naive configuration: every candidate is resolved by the
	// sampler; no bound short-circuits.
	opts.DisableBounds = true
	opts.MaxExactClauses = -1

	pfis := pfim.Mine(db, pfim.Options{MinSup: opts.MinSup, PFT: opts.PFCT})

	idx := db.Index()
	m := &miner{
		opts:     opts,
		db:       db,
		probs:    db.Probs(),
		allItems: idx.Items,
		itemTids: idx.Tidsets,
	}
	for _, pfi := range pfis {
		m.stats.NodesVisited++
		tids := idx.TidsetOf(pfi.Items)
		ev, err := m.evaluate(pfi.Items, tids, tids.Count(), pfi.FreqProb, nil)
		if err != nil {
			return nil, err
		}
		if ev.accepted {
			m.results = append(m.results, ResultItem{
				Items:    pfi.Items.Clone(),
				Prob:     ev.prob,
				Lower:    ev.lower,
				Upper:    ev.upper,
				FreqProb: pfi.FreqProb,
				Method:   ev.method,
			})
		}
	}
	sort.Slice(m.results, func(i, j int) bool {
		return itemset.Compare(m.results[i].Items, m.results[j].Items) < 0
	})
	return &Result{Itemsets: m.results, Stats: m.stats, Options: opts}, nil
}
