package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/shard"
	"github.com/probdata/pfcim/internal/stream"
	"github.com/probdata/pfcim/internal/sweep"
	"github.com/probdata/pfcim/internal/uncertain"
)

// JobKind distinguishes single mining jobs from parameter sweeps; both
// share the job table, worker pool, and lifecycle.
type JobKind string

const (
	JobKindMine  JobKind = "" // single mining run (the default, elided on the wire)
	JobKindSweep JobKind = "sweep"
)

// JobStatus is the lifecycle state of a mining job.
type JobStatus string

const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Submission errors the HTTP layer maps to status codes.
var (
	ErrQueueFull    = errors.New("service: job queue is full")
	ErrShuttingDown = errors.New("service: daemon is shutting down")
	ErrNoSuchJob    = errors.New("service: no such job")
)

// job is the manager's internal record; every field after the immutable
// header is guarded by the manager's mutex.
type job struct {
	id       string
	kind     JobKind
	dataset  string // resolved version id
	ref      string // as submitted (may carry a @latest / @N selector)
	watched  bool   // ref follows the lineage: mine via the shared watcher
	lineage  string
	db       *uncertain.DB
	options  core.OptionsJSON // as submitted, echoed back to clients
	opts     core.Options     // parsed, with daemon defaults applied
	optKey   string           // canonical options key (second cache-key half)
	cacheKey string
	traceID  string      // minted at submit when tracing is on; rides every shard RPC of the job
	slots    []sweepSlot // sweep jobs: one per grid point
	timeout  time.Duration

	status       JobStatus
	cached       bool
	errMsg       string
	result       *core.ResultJSON
	diff         *stream.DiffJSON // watched jobs: change set vs the previous watched round
	sweepRes     *sweep.ResultJSON
	submitted    time.Time
	started      time.Time
	finished     time.Time
	wallMillis   int64
	queueWaitMS  int64
	tracer       *obs.Tracer  // per-job span recorder (nil when tracing is off)
	profile      *obs.Profile // merged at completion, served by /v1/jobs/{id}/trace
	cancel       context.CancelFunc
	userCanceled bool
}

// JobInfo is an immutable snapshot of a job, safe to serialize.
type JobInfo struct {
	ID string `json:"id"`
	// TraceID correlates the job across processes: it tags the daemon's log
	// lines and rides every shard RPC of the job as the X-Pfcim-Trace
	// header, so worker logs join on it. Empty when tracing is disabled.
	TraceID     string           `json:"trace_id,omitempty"`
	Kind        JobKind          `json:"kind,omitempty"`
	Dataset     string           `json:"dataset"`
	Status      JobStatus        `json:"status"`
	Cached      bool             `json:"cached,omitempty"`
	Error       string           `json:"error,omitempty"`
	Options     core.OptionsJSON `json:"options"`
	SubmittedAt time.Time        `json:"submitted_at"`
	StartedAt   *time.Time       `json:"started_at,omitempty"`
	FinishedAt  *time.Time       `json:"finished_at,omitempty"`
	// WallMillis is the mining duration (start to completion); QueueWaitMillis
	// the time spent queued before a worker picked the job up.
	WallMillis      int64            `json:"wall_ms,omitempty"`
	QueueWaitMillis int64            `json:"queue_wait_ms,omitempty"`
	Result          *core.ResultJSON `json:"result,omitempty"`
	// Diff is set on watched (@latest) jobs: the closed itemsets that were
	// added, removed, or changed relative to the lineage's previous watched
	// mine under the same canonical options (all-added on the first).
	Diff  *stream.DiffJSON  `json:"diff,omitempty"`
	Sweep *sweep.ResultJSON `json:"sweep,omitempty"`
}

func (j *job) snapshot() JobInfo {
	info := JobInfo{
		ID:              j.id,
		TraceID:         j.traceID,
		Kind:            j.kind,
		Dataset:         j.dataset,
		Status:          j.status,
		Cached:          j.cached,
		Error:           j.errMsg,
		Options:         j.options,
		SubmittedAt:     j.submitted,
		WallMillis:      j.wallMillis,
		QueueWaitMillis: j.queueWaitMS,
		Result:          j.result,
		Diff:            j.diff,
		Sweep:           j.sweepRes,
	}
	if !j.started.IsZero() {
		t := j.started
		info.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.FinishedAt = &t
	}
	return info
}

// Manager owns the job table and the bounded worker pool. Submissions that
// hit the result cache complete synchronously without touching the pool;
// everything else queues and is mined by one of Workers goroutines under a
// per-job context.
type Manager struct {
	cache      *resultCache
	metrics    *metrics
	log        *slog.Logger
	maxJobTime time.Duration
	tailMemo   int           // default Options.TailMemoEntries for jobs that leave it 0
	slowJob    time.Duration // wall-time threshold for slow-job warnings (0 = off)
	traceJobs  bool          // attach a per-job obs.Tracer to every mined job
	shards     int           // default Options.Shards for jobs that leave it 0
	shardRPC   *shard.Client // nil unless the daemon coordinates shard workers
	watch      *watchSet     // per-(lineage, options) incremental miners for @latest jobs

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	queue      chan *job

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	seq    int
	closed bool
}

// newManager builds the job manager from the daemon Config (which New has
// already defaulted) and starts the worker pool.
func newManager(cfg Config, cache *resultCache, mtr *metrics, log *slog.Logger, sc *shard.Client) *Manager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cache:      cache,
		metrics:    mtr,
		log:        log,
		maxJobTime: cfg.MaxJobTime,
		tailMemo:   cfg.TailMemoEntries,
		slowJob:    cfg.SlowJobThreshold,
		traceJobs:  !cfg.DisableJobTracing,
		shards:     cfg.Shards,
		shardRPC:   sc,
		watch: newWatchSet(func(label string, ri stream.RoundInfo) {
			mtr.observeWatchRound(label, watchRoundObs{
				Wall:       ri.Wall,
				Added:      int64(len(ri.Diff.Added)),
				Removed:    int64(len(ri.Diff.Removed)),
				Changed:    int64(len(ri.Diff.Changed)),
				Unchanged:  int64(ri.Diff.Unchanged),
				ReuseRatio: ri.ReuseRatio(),
			})
		}),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		jobs:       make(map[string]*job),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit validates the request, consults the result cache, and either
// completes the job immediately (cache hit) or enqueues it. timeout 0 means
// the daemon's MaxJobTime; a positive request is capped by it. ref is the
// dataset reference as submitted; when it follows the lineage (@latest) the
// job mines through the lineage's shared incremental watcher and reports a
// diff — the result is byte-identical to a pinned mine of the resolved
// version, so it shares that version's cache entry either way.
func (m *Manager) Submit(ds *Dataset, ref string, oj core.OptionsJSON, timeout time.Duration) (JobInfo, error) {
	opts, err := oj.Options()
	if err != nil {
		return JobInfo{}, err
	}
	if err := m.applyShards(&opts); err != nil {
		return JobInfo{}, err
	}
	optKey, err := opts.CanonicalKey()
	if err != nil {
		return JobInfo{}, err
	}
	if opts.TailMemoEntries == 0 {
		opts.TailMemoEntries = m.tailMemo
	}
	if timeout <= 0 || (m.maxJobTime > 0 && timeout > m.maxJobTime) {
		timeout = m.maxJobTime
	}

	watched := IsLatestRef(ref)
	if watched && opts.Search == core.BFS {
		return JobInfo{}, fmt.Errorf("service: @latest jobs mine incrementally and require DFS search")
	}
	j := &job{
		dataset:   ds.ID,
		ref:       ref,
		watched:   watched,
		lineage:   ds.Lineage,
		db:        ds.DB(),
		options:   oj,
		opts:      opts,
		optKey:    optKey,
		cacheKey:  cacheKey(ds.ID, optKey),
		timeout:   timeout,
		submitted: time.Now(),
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobInfo{}, ErrShuttingDown
	}
	m.seq++
	j.id = fmt.Sprintf("j%d", m.seq)
	if m.traceJobs {
		// The job id doubles as the distributed trace id: it is unique per
		// daemon, tags every log line, and rides every shard RPC of the job.
		j.traceID = j.id
	}

	lookupStart := time.Now()
	res, ok := m.cache.get(j.cacheKey)
	m.metrics.cacheGet.Observe(time.Since(lookupStart))
	if ok {
		j.status = StatusDone
		j.cached = true
		j.result = &res
		j.finished = time.Now()
		m.metrics.CacheHits.Add(1)
		m.metrics.JobsDone.Add(1)
		m.addLocked(j)
		m.log.Info("job served from cache", "job", j.id, "dataset", j.dataset)
		return j.snapshot(), nil
	}
	m.metrics.CacheMisses.Add(1)

	j.status = StatusQueued
	select {
	case m.queue <- j:
	default:
		return JobInfo{}, ErrQueueFull
	}
	m.metrics.JobsQueued.Add(1)
	m.addLocked(j)
	m.log.Info("job queued", "job", j.id, "dataset", j.dataset)
	return j.snapshot(), nil
}

// applyShards folds the daemon's default shard count into a submission's
// options BEFORE the canonical key is computed, so the cache is keyed by
// the layout that is actually mined. On a coordinator (shard workers
// configured), an explicit shard count that differs from the placement
// layout is rejected: the workers hold slices of exactly Config.Shards
// ranges, so no other layout can be evaluated remotely.
func (m *Manager) applyShards(opts *core.Options) error {
	if opts.Shards == 0 {
		opts.Shards = m.shards
		return nil
	}
	if m.shardRPC != nil && opts.Shards != m.shards {
		return fmt.Errorf("service: options request %d shards but this daemon places datasets at %d; omit the shards field or match the daemon's -shards",
			opts.Shards, m.shards)
	}
	return nil
}

func (m *Manager) addLocked(j *job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
}

// Get returns a snapshot of the job with the given id.
func (m *Manager) Get(id string) (JobInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobInfo{}, ErrNoSuchJob
	}
	return j.snapshot(), nil
}

// Trace errors the HTTP layer maps to status codes.
var (
	ErrTracingDisabled = errors.New("service: job tracing is disabled (daemon started with -no-job-trace)")
	ErrJobNotFinished  = errors.New("service: job has not finished; trace is available once it is terminal")
	ErrNoTrace         = errors.New("service: job has no trace (served from cache or canceled before start)")
)

// Trace returns the finished job's phase profile. A cache-hit job never ran
// the miner and has no profile.
func (m *Manager) Trace(id string) (*obs.Profile, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNoSuchJob
	}
	if !m.traceJobs {
		return nil, ErrTracingDisabled
	}
	if !j.status.Terminal() {
		return nil, ErrJobNotFinished
	}
	if j.profile == nil {
		return nil, ErrNoTrace
	}
	return j.profile, nil
}

// List returns snapshots of every job in submission order.
func (m *Manager) List() []JobInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobInfo, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].snapshot())
	}
	return out
}

// Cancel aborts the job: a queued job is marked canceled and skipped by the
// pool; a running job has its context canceled and transitions when the
// miner returns (MineContext aborts at the next enumeration node).
// Canceling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (JobInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobInfo{}, ErrNoSuchJob
	}
	switch j.status {
	case StatusQueued:
		j.status = StatusCanceled
		j.errMsg = "canceled before start"
		j.finished = time.Now()
		m.metrics.JobsCanceled.Add(1)
		m.log.Info("job canceled while queued", "job", j.id)
	case StatusRunning:
		j.userCanceled = true
		j.cancel()
		m.log.Info("job cancellation requested", "job", j.id)
	}
	return j.snapshot(), nil
}

// Running returns the number of jobs currently executing.
func (m *Manager) Running() int64 { return m.metrics.JobsRunning.Value() }

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

func (m *Manager) run(j *job) {
	m.mu.Lock()
	if j.status != StatusQueued { // canceled while queued
		m.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	queueWait := j.started.Sub(j.submitted)
	j.queueWaitMS = queueWait.Milliseconds()
	if m.traceJobs {
		// One tracer per job: every enumeration of the job (a sweep job runs
		// several) records into it, and the merged profile is served by
		// GET /v1/jobs/{id}/trace. The canonical cache key clears the field,
		// so tracing never splits the result cache.
		j.tracer = obs.New()
		j.opts.Tracer = j.tracer
	}
	var parent context.Context
	if j.timeout > 0 {
		parent, j.cancel = context.WithTimeout(m.baseCtx, j.timeout)
	} else {
		parent, j.cancel = context.WithCancel(m.baseCtx)
	}
	// The job context carries a cancellation cause: when a shard RPC
	// ultimately fails, the session cancels the job with the structured
	// RPCError, so the job fails promptly with "which worker, which shard"
	// instead of hanging or reporting a bare context error.
	ctx, fail := context.WithCancelCause(parent)
	if j.traceID != "" {
		// Every shard RPC of the job carries the trace id, so worker logs
		// correlate with this job's records and trace.
		ctx = shard.WithTraceID(ctx, j.traceID)
	}
	// Watched jobs mine through the shared incremental watcher and never
	// attach the RPC kernel: the inline partition arithmetic is byte-
	// identical (DESIGN §8.3), so results stay exchangeable with pinned
	// distributed jobs on the same version.
	if m.shardRPC != nil && j.kind != JobKindSweep && !j.watched && j.opts.Shards >= 2 {
		if sess, err := m.shardRPC.Kernel(ctx, fail, j.dataset); err == nil {
			// The session merges worker-side span batches into the job's
			// tracer, attributed per worker address (nil tracer: no-op).
			sess.SetTracer(j.tracer)
			j.opts.ShardKernel = sess
		} else {
			// No placement (e.g. the dataset is smaller than the shard
			// count): mine in-process — the inline sharded arithmetic is
			// byte-identical, so the cached result is still exchangeable.
			m.log.Warn("mining locally without shard workers", "job", j.id,
				"dataset", j.dataset, "error", err)
		}
	}
	cancel := j.cancel
	ds, opts := j.dataset, j.opts
	m.mu.Unlock()
	defer cancel()
	defer fail(nil)

	m.metrics.JobsRunning.Add(1)
	m.metrics.queueWait.Observe(queueWait)
	m.log.Info("job started", "job", j.id, "trace", j.traceID, "kind", string(j.kind), "dataset", ds,
		"queue_wait_ms", queueWait.Milliseconds(), "min_sup", opts.MinSup, "pfct", opts.PFCT)
	res, sres, diff, err := m.mine(ctx, j)
	if err != nil {
		// Surface the structured shard failure the session installed as the
		// cancellation cause, not the miner's bare "context canceled".
		var rpcErr *shard.RPCError
		if errors.As(context.Cause(ctx), &rpcErr) {
			err = fmt.Errorf("service: distributed evaluation failed: %w", rpcErr)
		}
	}
	m.metrics.JobsRunning.Add(-1)
	now := time.Now()

	m.mu.Lock()
	defer m.mu.Unlock()
	j.finished = now
	wall := now.Sub(j.started)
	j.wallMillis = wall.Milliseconds()
	m.metrics.jobWall.Observe(wall)
	if j.tracer != nil {
		// The pool has joined and the job is terminal: every recorder is
		// quiescent, so the merge is race-free.
		j.profile = j.tracer.Profile()
	}
	if m.slowJob > 0 && wall > m.slowJob {
		m.metrics.SlowJobs.Add(1)
		m.log.Warn("slow job", "job", j.id, "kind", string(j.kind), "dataset", j.dataset,
			"wall_ms", j.wallMillis, "threshold_ms", m.slowJob.Milliseconds(),
			"min_sup", j.opts.MinSup, "pfct", j.opts.PFCT)
	}
	switch {
	case err == nil && j.kind == JobKindSweep:
		j.sweepRes = m.assembleSweep(j, sres)
		j.status = StatusDone
		m.metrics.JobsDone.Add(1)
		m.metrics.SweepsDone.Add(1)
		m.metrics.SweepPointsComputed.Add(int64(sres.Stats.Points))
		m.metrics.SweepEnumerations.Add(int64(sres.Stats.FullEnumerations))
		m.metrics.MineWallMillis.Add(j.wallMillis)
		for _, pr := range sres.Points {
			m.metrics.addStats(pr.Stats)
		}
		m.log.Info("sweep done", "job", j.id, "wall_ms", j.wallMillis,
			"points", len(j.slots), "enumerations", sres.Stats.FullEnumerations)
	case err == nil:
		rj := res.JSON()
		j.result = &rj
		j.diff = diff
		j.status = StatusDone
		m.cache.put(j.cacheKey, rj)
		m.metrics.JobsDone.Add(1)
		if j.watched {
			m.metrics.WatchedMines.Add(1)
		}
		m.metrics.MineWallMillis.Add(j.wallMillis)
		m.metrics.addStats(res.Stats)
		m.log.Info("job done", "job", j.id, "wall_ms", j.wallMillis,
			"itemsets", len(rj.Itemsets), "nodes", res.Stats.NodesVisited,
			"watched", j.watched, "subtrees_reused", res.Stats.SubtreesReused)
	case j.userCanceled:
		j.status = StatusCanceled
		j.errMsg = err.Error()
		m.metrics.JobsCanceled.Add(1)
		m.log.Info("job canceled", "job", j.id, "wall_ms", j.wallMillis)
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
		m.metrics.JobsFailed.Add(1)
		m.log.Error("job failed", "job", j.id, "wall_ms", j.wallMillis, "error", j.errMsg)
	}
}

// mine runs the miner (for a sweep job, the sweep engine over the points
// the cache missed; for a watched job, the lineage's incremental watcher)
// with panic isolation: a panicking job fails with the recovered value and
// stack instead of killing the daemon's worker.
func (m *Manager) mine(ctx context.Context, j *job) (res *core.Result, sres *sweep.Result, diff *stream.DiffJSON, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if j.kind == JobKindSweep {
		sres, err = sweep.Mine(ctx, j.db, missingPoints(j), j.opts)
		return nil, sres, nil, err
	}
	if j.watched {
		w, werr := m.watch.get(j.lineage, j.optKey, j.opts)
		if werr != nil {
			return nil, nil, nil, werr
		}
		res, diff, err = w.mine(ctx, j.db, j.opts, j.tracer)
		return res, nil, diff, err
	}
	res, err = core.MineContext(ctx, j.db, j.opts)
	return res, nil, nil, err
}

// Drain stops intake, cancels jobs still queued, and waits for running jobs
// to finish. If ctx expires first, the running jobs' contexts are canceled
// and Drain keeps waiting for the (now prompt) returns, so workers never
// leak. Safe to call more than once.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
		for _, j := range m.jobs {
			if j.status == StatusQueued {
				j.status = StatusCanceled
				j.errMsg = "canceled: daemon shutting down"
				j.finished = time.Now()
				m.metrics.JobsCanceled.Add(1)
			}
		}
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-done
		return ctx.Err()
	}
}
