package pfim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
	"github.com/probdata/pfcim/internal/world"
)

// mineBruteForce enumerates every itemset and computes its frequent
// probability by possible-world enumeration.
func mineBruteForce(db *uncertain.DB, minSup int, pft float64) []Itemset {
	items := db.Items()
	var out []Itemset
	for mask := 1; mask < 1<<uint(len(items)); mask++ {
		var x itemset.Itemset
		for i, it := range items {
			if mask&(1<<uint(i)) != 0 {
				x = append(x, it)
			}
		}
		prF, err := world.FreqProb(db, x, minSup)
		if err != nil {
			panic(err)
		}
		if prF > pft {
			out = append(out, Itemset{Items: x.Clone(), FreqProb: prF})
		}
	}
	sort.Slice(out, func(i, j int) bool { return itemset.Compare(out[i].Items, out[j].Items) < 0 })
	return out
}

func randomDB(rng *rand.Rand, maxN, maxItems int) *uncertain.DB {
	n := rng.Intn(maxN) + 1
	trans := make([]uncertain.Transaction, 0, n)
	for i := 0; i < n; i++ {
		var items []itemset.Item
		for j := 0; j < maxItems; j++ {
			if rng.Float64() < 0.5 {
				items = append(items, itemset.Item(j))
			}
		}
		if len(items) == 0 {
			items = []itemset.Item{itemset.Item(rng.Intn(maxItems))}
		}
		trans = append(trans, uncertain.Transaction{
			Items: itemset.New(items...),
			Prob:  rng.Float64()*0.98 + 0.01,
		})
	}
	return uncertain.MustNewDB(trans)
}

func TestMineAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 8, 5)
		minSup := rng.Intn(3) + 1
		pft := []float64{0.3, 0.5, 0.8}[rng.Intn(3)]
		got := Mine(db, Options{MinSup: minSup, PFT: pft})
		want := mineBruteForce(db, minSup, pft)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if !itemset.Equal(got[i].Items, want[i].Items) {
				return false
			}
			if math.Abs(got[i].FreqProb-want[i].FreqProb) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMinePaperExample(t *testing.T) {
	// The paper's Example 1.1: 15 probabilistic frequent itemsets at
	// min_sup = 2, pft = 0.8; seven with Pr_F ≈ 0.9726, eight with 0.81.
	db := uncertain.PaperExample()
	got := Mine(db, Options{MinSup: 2, PFT: 0.8})
	if len(got) != 15 {
		t.Fatalf("got %d PFIs, want 15", len(got))
	}
	hi, lo := 0, 0
	for _, p := range got {
		switch {
		case math.Abs(p.FreqProb-0.9726) < 1e-9:
			hi++
		case math.Abs(p.FreqProb-0.81) < 1e-9:
			lo++
		default:
			t.Errorf("%v has unexpected Pr_F %v", p.Items, p.FreqProb)
		}
	}
	if hi != 7 || lo != 8 {
		t.Errorf("got %d itemsets at 0.9726 and %d at 0.81, want 7 and 8", hi, lo)
	}
}

func TestMineCHConsistency(t *testing.T) {
	// Disabling the Chernoff-Hoeffding filter must not change the result.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		db := randomDB(rng, 10, 6)
		minSup := rng.Intn(3) + 1
		a := Mine(db, Options{MinSup: minSup, PFT: 0.6})
		b := Mine(db, Options{MinSup: minSup, PFT: 0.6, DisableCH: true})
		if len(a) != len(b) {
			t.Fatalf("CH filter changed the result: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if !itemset.Equal(a[i].Items, b[i].Items) {
				t.Fatalf("CH filter changed itemset %d", i)
			}
		}
	}
}

func TestAntiMonotonicity(t *testing.T) {
	// Every subset of a returned itemset must also be returned (frequent
	// probability is anti-monotone).
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		db := randomDB(rng, 10, 5)
		res := Mine(db, Options{MinSup: 2, PFT: 0.5})
		keys := map[string]bool{}
		for _, p := range res {
			keys[p.Items.Key()] = true
		}
		for _, p := range res {
			for _, drop := range p.Items {
				sub := p.Items.Remove(drop)
				if sub.Len() > 0 && !keys[sub.Key()] {
					t.Fatalf("subset %v of result %v missing", sub, p.Items)
				}
			}
		}
	}
}

func TestExpectedSupportMine(t *testing.T) {
	db := uncertain.PaperExample()
	// Expected supports: a,b,c → 3.1; d → 1.8.
	res := ExpectedSupportMine(db, 2.0)
	for _, p := range res {
		if p.Items.Contains(3) {
			t.Errorf("%v (exp sup %v) should be below the 2.0 threshold", p.Items, p.ExpectedSupport)
		}
	}
	if len(res) != 7 {
		t.Errorf("got %d expected-support frequent itemsets, want 7 (non-empty subsets of abc)", len(res))
	}
	// Lower threshold admits d.
	res = ExpectedSupportMine(db, 1.5)
	if len(res) != 15 {
		t.Errorf("got %d, want all 15 subsets", len(res))
	}
	// Anti-monotonicity of expected support.
	keys := map[string]bool{}
	for _, p := range res {
		keys[p.Items.Key()] = true
	}
	for _, p := range res {
		for _, drop := range p.Items {
			sub := p.Items.Remove(drop)
			if sub.Len() > 0 && !keys[sub.Key()] {
				t.Fatalf("expected-support subset %v missing", sub)
			}
		}
	}
}

func TestMineMinSupClamp(t *testing.T) {
	db := uncertain.PaperExample()
	a := Mine(db, Options{MinSup: 0, PFT: 0.5})
	b := Mine(db, Options{MinSup: 1, PFT: 0.5})
	if len(a) != len(b) {
		t.Errorf("minSup 0 should clamp to 1: %d vs %d", len(a), len(b))
	}
}

func TestCountMatchesMine(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, 12, 6)
		minSup := rng.Intn(3) + 1
		pft := []float64{0.3, 0.6, 0.8}[rng.Intn(3)]
		opts := Options{MinSup: minSup, PFT: pft}
		want := len(Mine(db, opts))
		if got := Count(db, opts); got != want {
			t.Fatalf("trial %d: Count = %d, Mine found %d", trial, got, want)
		}
	}
}
