package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

func tr(prob float64, items ...int) uncertain.Transaction {
	return uncertain.Transaction{Items: itemset.FromInts(items...), Prob: prob}
}

func TestWindowValidation(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Error("size 0 should fail")
	}
	w, err := NewWindow(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Push(tr(0, 1)); err == nil {
		t.Error("zero probability should fail")
	}
	if _, _, err := w.Push(uncertain.Transaction{Prob: 0.5}); err == nil {
		t.Error("empty transaction should fail")
	}
}

func TestWindowEviction(t *testing.T) {
	w, _ := NewWindow(2)
	if _, evicted, _ := w.Push(tr(0.5, 1)); evicted {
		t.Error("no eviction expected on first push")
	}
	w.Push(tr(0.6, 2))
	ev, evicted, err := w.Push(tr(0.7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !evicted || ev.Prob != 0.5 {
		t.Errorf("expected the first transaction evicted, got %v/%v", ev, evicted)
	}
	if w.Len() != 2 || w.Pushes() != 3 {
		t.Errorf("Len=%d Pushes=%d", w.Len(), w.Pushes())
	}
	// Item 1 must have left the aggregates entirely.
	if w.Count(1) != 0 || w.ExpectedSupport(1) != 0 {
		t.Errorf("evicted item still tracked: count=%d exp=%v", w.Count(1), w.ExpectedSupport(1))
	}
}

// TestWindowAgainstBatch: after any stream of pushes, every window query
// must agree with recomputing from the window's snapshot.
func TestWindowAgainstBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(8) + 1
		w, err := NewWindow(size)
		if err != nil {
			return false
		}
		pushes := rng.Intn(25) + 1
		for p := 0; p < pushes; p++ {
			var items []itemset.Item
			for j := 0; j < 5; j++ {
				if rng.Float64() < 0.5 {
					items = append(items, itemset.Item(j))
				}
			}
			if len(items) == 0 {
				items = []itemset.Item{itemset.Item(rng.Intn(5))}
			}
			if _, _, err := w.Push(uncertain.Transaction{
				Items: itemset.New(items...),
				Prob:  rng.Float64()*0.98 + 0.01,
			}); err != nil {
				return false
			}
		}
		db, err := w.Snapshot()
		if err != nil {
			return false
		}
		if db.N() != w.Len() {
			return false
		}
		minSup := rng.Intn(size) + 1
		for j := 0; j < 5; j++ {
			it := itemset.Item(j)
			x := itemset.Itemset{it}
			if math.Abs(w.ExpectedSupport(it)-db.ExpectedSupport(x)) > 1e-9 {
				return false
			}
			if w.Count(it) != db.Count(x) {
				return false
			}
			var probs []float64
			for i := 0; i < db.N(); i++ {
				if db.Transaction(i).Items.Contains(it) {
					probs = append(probs, db.Prob(i))
				}
			}
			if math.Abs(w.FreqProb(it, minSup)-poibin.Tail(probs, minSup)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestFrequentItems(t *testing.T) {
	w, _ := NewWindow(4)
	w.Push(tr(0.9, 1, 2))
	w.Push(tr(0.9, 1))
	w.Push(tr(0.9, 1, 2))
	w.Push(tr(0.2, 3))
	res, err := w.FrequentItems(Options{MinSup: 2, PFT: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("FrequentItems = %v, want items 1 and 2", res)
	}
	if res[0].Item != 1 {
		t.Errorf("item 1 should rank first: %v", res)
	}
	// Item 1: probs {.9,.9,.9}, Pr[≥2] = 3·.81·.1 + .729 = 0.972.
	if math.Abs(res[0].FreqProb-0.972) > 1e-9 {
		t.Errorf("Pr_F(item 1) = %v, want 0.972", res[0].FreqProb)
	}
	// Item 3 has count 1 < minSup.
	for _, r := range res {
		if r.Item == 3 {
			t.Error("item 3 should not be frequent")
		}
	}
	// Tighter threshold excludes item 2 (probs {.9,.9}, Pr[≥2]=0.81).
	res, err = w.FrequentItems(Options{MinSup: 2, PFT: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Item != 1 {
		t.Errorf("at pft=0.9 only item 1 qualifies: %v", res)
	}
}

// TestOptionsCanonical pins the uniform validation path: the same
// Canonical() contract as core/pfim/rules — defaults applied, domains
// enforced, bad thresholds surfaced as errors rather than empty results.
func TestOptionsCanonical(t *testing.T) {
	c, err := Options{}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c.MinSup != 1 {
		t.Errorf("zero MinSup should default to 1, got %d", c.MinSup)
	}
	for _, bad := range []Options{
		{MinSup: -1, PFT: 0.5},
		{MinSup: 2, PFT: -0.1},
		{MinSup: 2, PFT: 1},
		{MinSup: 2, PFT: 1.5},
	} {
		if _, err := bad.Canonical(); err == nil {
			t.Errorf("Canonical(%+v) should fail", bad)
		}
	}

	// The query path must reject the same options and return no result.
	w, _ := NewWindow(2)
	w.Push(tr(0.9, 1))
	if res, err := w.FrequentItems(Options{MinSup: 1, PFT: 1}); err == nil {
		t.Errorf("FrequentItems with PFT=1 should fail, got %v", res)
	}
	if res, err := w.FrequentItems(Options{MinSup: -3, PFT: 0.5}); err == nil {
		t.Errorf("FrequentItems with MinSup=-3 should fail, got %v", res)
	}
	// Defaulted MinSup=0 behaves as MinSup=1.
	got, err := w.FrequentItems(Options{PFT: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.FrequentItems(Options{MinSup: 1, PFT: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 1 || got[0].Item != 1 {
		t.Errorf("defaulted query = %v, explicit = %v", got, want)
	}
}

func TestTopK(t *testing.T) {
	w, _ := NewWindow(3)
	w.Push(tr(0.9, 1, 2))
	w.Push(tr(0.8, 1))
	w.Push(tr(0.3, 2, 3))
	top := w.TopK(2)
	if len(top) != 2 || top[0].Item != 1 || top[1].Item != 2 {
		t.Errorf("TopK = %v", top)
	}
	if got := w.TopK(99); len(got) != 3 {
		t.Errorf("TopK(99) should return all items, got %v", got)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	w, _ := NewWindow(3)
	if _, err := w.Snapshot(); err == nil {
		t.Error("empty window snapshot should fail")
	}
}

// TestSlidingSemantics: the window must behave like "the last W
// transactions" at every step of a long stream.
func TestSlidingSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const size = 5
	w, _ := NewWindow(size)
	var history []uncertain.Transaction
	for step := 0; step < 40; step++ {
		next := tr(rng.Float64()*0.9+0.05, rng.Intn(4), 4+rng.Intn(2))
		history = append(history, next)
		w.Push(next)
		lo := len(history) - size
		if lo < 0 {
			lo = 0
		}
		live := history[lo:]
		for j := itemset.Item(0); j < 6; j++ {
			exp := 0.0
			for _, h := range live {
				if h.Items.Contains(j) {
					exp += h.Prob
				}
			}
			if math.Abs(w.ExpectedSupport(j)-exp) > 1e-9 {
				t.Fatalf("step %d item %d: window exp %v, reference %v", step, j, w.ExpectedSupport(j), exp)
			}
		}
	}
}
