package uncertain

import (
	"fmt"
	"sort"

	"github.com/probdata/pfcim/internal/itemset"
)

// This file implements the *attribute-level* (item-level) uncertainty
// model: each item occurs in a transaction with its own probability,
// independently of the other items. This is the native model of the
// expected-support literature the paper cites (U-Apriori [9],
// UF-growth [15]); the paper's own algorithms use the tuple-level model of
// DB, and the two coexist here so the cited baselines can be run in their
// original setting.

// ProbItem is one item occurrence with its existence probability.
type ProbItem struct {
	Item itemset.Item
	Prob float64
}

// ItemTransaction is a transaction whose items are individually uncertain.
type ItemTransaction struct {
	Items []ProbItem
}

// ItemDB is an attribute-level uncertain transaction database.
type ItemDB struct {
	trans []ItemTransaction
	items itemset.Itemset
}

// NewItemDB validates probabilities (each in (0, 1]) and normalizes each
// transaction: items sorted, duplicates rejected.
func NewItemDB(trans []ItemTransaction) (*ItemDB, error) {
	universe := map[itemset.Item]struct{}{}
	cp := make([]ItemTransaction, len(trans))
	for ti, t := range trans {
		if len(t.Items) == 0 {
			return nil, fmt.Errorf("uncertain: item-level transaction %d is empty", ti)
		}
		items := make([]ProbItem, len(t.Items))
		copy(items, t.Items)
		sort.Slice(items, func(i, j int) bool { return items[i].Item < items[j].Item })
		for i, pi := range items {
			if pi.Prob <= 0 || pi.Prob > 1 {
				return nil, fmt.Errorf("uncertain: transaction %d item %d has probability %v outside (0,1]", ti, pi.Item, pi.Prob)
			}
			if i > 0 && items[i-1].Item == pi.Item {
				return nil, fmt.Errorf("uncertain: transaction %d repeats item %d", ti, pi.Item)
			}
			universe[pi.Item] = struct{}{}
		}
		cp[ti] = ItemTransaction{Items: items}
	}
	items := make(itemset.Itemset, 0, len(universe))
	for it := range universe {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	return &ItemDB{trans: cp, items: items}, nil
}

// MustNewItemDB is NewItemDB that panics on error.
func MustNewItemDB(trans []ItemTransaction) *ItemDB {
	db, err := NewItemDB(trans)
	if err != nil {
		panic(err)
	}
	return db
}

// N returns the number of transactions.
func (db *ItemDB) N() int { return len(db.trans) }

// Items returns the sorted item universe.
func (db *ItemDB) Items() itemset.Itemset { return db.items.Clone() }

// Transaction returns transaction i.
func (db *ItemDB) Transaction(i int) ItemTransaction { return db.trans[i] }

// ItemProb returns the probability that transaction i contains item x
// (0 when the item does not occur at all).
func (db *ItemDB) ItemProb(i int, x itemset.Item) float64 {
	items := db.trans[i].Items
	lo := sort.Search(len(items), func(j int) bool { return items[j].Item >= x })
	if lo < len(items) && items[lo].Item == x {
		return items[lo].Prob
	}
	return 0
}

// ContainProb returns Pr[X ⊆ T_i] = Π_{x ∈ X} p_i(x) under item
// independence.
func (db *ItemDB) ContainProb(i int, x itemset.Itemset) float64 {
	p := 1.0
	for _, it := range x {
		pi := db.ItemProb(i, it)
		if pi == 0 {
			return 0
		}
		p *= pi
	}
	return p
}

// ExpectedSupport returns Σ_i Pr[X ⊆ T_i], the expected support of X in
// the attribute-level model (the quantity U-Apriori thresholds on).
func (db *ItemDB) ExpectedSupport(x itemset.Itemset) float64 {
	s := 0.0
	for i := range db.trans {
		s += db.ContainProb(i, x)
	}
	return s
}

// ContainProbs returns Pr[X ⊆ T_i] for every transaction — the Poisson-
// binomial parameter vector of sup(X), from which frequent probabilities
// in the attribute-level model follow.
func (db *ItemDB) ContainProbs(x itemset.Itemset) []float64 {
	out := make([]float64, len(db.trans))
	for i := range db.trans {
		out[i] = db.ContainProb(i, x)
	}
	return out
}

// ToTupleLevel collapses the item-level database into the tuple-level
// model by treating each transaction's full itemset as certain content
// with the transaction existing with probability equal to the product of
// its item probabilities. This is a lossy approximation (it correlates the
// items completely); it exists for interoperability, not equivalence.
func (db *ItemDB) ToTupleLevel() (*DB, error) {
	trans := make([]Transaction, len(db.trans))
	for i, t := range db.trans {
		items := make(itemset.Itemset, len(t.Items))
		p := 1.0
		for j, pi := range t.Items {
			items[j] = pi.Item
			p *= pi.Prob
		}
		if p < 1e-300 {
			p = 1e-300
		}
		trans[i] = Transaction{Items: items, Prob: p}
	}
	return NewDB(trans)
}

// CertainItemDB lifts an exact dataset into the item-level model with all
// probabilities 1.
func CertainItemDB(data []itemset.Itemset) *ItemDB {
	trans := make([]ItemTransaction, len(data))
	for i, t := range data {
		items := make([]ProbItem, len(t))
		for j, it := range t {
			items[j] = ProbItem{Item: it, Prob: 1}
		}
		trans[i] = ItemTransaction{Items: items}
	}
	return MustNewItemDB(trans)
}
