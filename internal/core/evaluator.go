package core

// Evaluator is the per-candidate re-evaluation hook the sweep engine
// (internal/sweep) is built on: it decides "is X a probabilistic frequent
// closed itemset at threshold pfct?" for caller-chosen itemsets and
// thresholds, reusing the dataset index, the bitset arena, and the
// Poisson-binomial tail memo of the miner it wraps.
//
// The replay is sound and byte-identical because every quantity the
// checking cascade of §IV.B computes — the exact frequent probability, the
// clause system, the first-order and Lemma 4.4 pairwise bounds, and the
// exact or sampled union (seeded per node from (Options.Seed, itemset),
// DESIGN §8.3) — is independent of pfct. The threshold only selects the
// stage at which the cascade stops, so replaying the cached stage values
// against a different pfct reproduces exactly what an independent Mine at
// that pfct would have computed for the same itemset. Each stage is
// evaluated lazily and at most once per itemset: candidates settled by the
// cached bounds never pay for union re-estimation.
//
// An Evaluator is not safe for concurrent use (it shares the miner's
// scratch buffers).

import (
	"context"
	"fmt"

	"github.com/probdata/pfcim/internal/dnf"
	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/uncertain"
)

// Evaluator re-evaluates single itemsets at arbitrary pfct thresholds.
// Build one with NewEvaluator, or get one wrapping a full run's state from
// MineEvaluated.
type Evaluator struct {
	m        *miner
	idx      *uncertain.Index
	profiles map[string]*evalProfile
}

// evalProfile caches the pfct-independent checking-cascade state of one
// itemset. Stages fill lazily: construction computes the frequent
// probability, the clause system, and the free first-order bounds; the
// pairwise Lemma 4.4 bounds and the exact/sampled union are only computed
// when some Evaluate call's threshold needs them.
type evalProfile struct {
	x     itemset.Itemset
	count int
	prF   float64 // exact frequent probability Pr_F(x)

	dead      bool // some extension always co-occurs: Pr_FC = 0
	noClauses bool // no extension event possible: Pr_FC = Pr_F

	slack      float64
	clauses    []clause // sorted by descending probability; nil once released
	sys        *dnf.System
	probs      []float64
	foLo, foHi float64 // first-order union bounds

	pwDone     bool
	pwLo, pwHi float64 // pairwise (Lemma 4.4) union bounds

	unionDone bool
	union     float64 // raw exact/sampled union, before slack and clamping
	method    Method
}

// NewEvaluator builds a standalone Evaluator over db. opts must carry the
// MinSup, Epsilon, Delta and Seed the evaluations should use; opts.PFCT
// participates only in validation (each Evaluate call names its own
// threshold).
func NewEvaluator(db *uncertain.DB, opts Options) (*Evaluator, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	idx := db.Index()
	m := &miner{
		opts:     opts,
		db:       db,
		probs:    db.Probs(),
		allItems: idx.Items,
		itemTids: tidsetsFor(idx, opts.Tidsets),
		rec:      opts.Tracer.Recorder(0),
	}
	return &Evaluator{m: m, idx: idx, profiles: make(map[string]*evalProfile)}, nil
}

// MineEvaluated is MineContext plus the per-candidate re-evaluation hook:
// the returned Evaluator wraps the finished run's miner, so follow-up
// Evaluate calls reuse its index, arena, and tail memo. This is the
// entry point the sweep engine uses — one full enumeration at the loosest
// threshold, then per-candidate replay at the tighter ones.
func MineEvaluated(ctx context.Context, db *uncertain.DB, opts Options) (*Result, *Evaluator, error) {
	res, m, err := mineWithMiner(ctx, db, opts)
	if err != nil {
		return nil, nil, err
	}
	idx := db.Index()
	return res, &Evaluator{m: m, idx: idx, profiles: make(map[string]*evalProfile)}, nil
}

// Stats returns the cumulative work counters of the wrapped miner,
// including the base run (for MineEvaluated) and every Evaluate call so
// far. Callers attributing work to phases snapshot before and after and
// take Stats.Delta.
func (e *Evaluator) Stats() Stats { return e.m.stats }

// Evaluate decides whether x is a probabilistic frequent closed itemset at
// threshold pfct, returning its ResultItem exactly as a full Mine at pfct
// would report it. The boolean is the acceptance verdict; the ResultItem is
// meaningful whenever the itemset is probabilistically frequent (its fields
// mirror the stage of the cascade that settled the decision).
func (e *Evaluator) Evaluate(x itemset.Itemset, pfct float64) (ResultItem, bool, error) {
	if pfct <= 0 || pfct >= 1 {
		return ResultItem{}, false, fmt.Errorf("core: pfct must be in (0,1), got %v", pfct)
	}
	p, err := e.profile(x)
	if err != nil {
		return ResultItem{}, false, err
	}
	if p.count < e.m.opts.MinSup || p.dead {
		return ResultItem{}, false, nil
	}
	if p.noClauses {
		ri := ResultItem{Items: p.x, Prob: p.prF, Lower: p.prF, Upper: p.prF, FreqProb: p.prF, Method: MethodNoClauses}
		return ri, ri.Prob > pfct, nil
	}

	lo, hi := p.foLo, p.foHi
	if !e.m.opts.DisableBounds {
		if ev, done := e.m.decideByBounds(p.prF, lo, hi, pfct); done {
			return p.item(ev), ev.accepted, nil
		}
		e.ensurePairwise(p)
		if p.pwLo > lo {
			lo = p.pwLo
		}
		if p.pwHi < hi {
			hi = p.pwHi
		}
		lo, hi = reconcileBounds(lo, hi)
		if ev, done := e.m.decideByBounds(p.prF, lo, hi, pfct); done {
			return p.item(ev), ev.accepted, nil
		}
	}
	if err := e.ensureUnion(p); err != nil {
		return ResultItem{}, false, err
	}
	union := p.union + p.slack/2
	if union < lo {
		union = lo
	}
	if union > hi {
		union = hi
	}
	ri := ResultItem{
		Items:    p.x,
		Prob:     clamp01(p.prF - union),
		Lower:    clamp01(p.prF - hi),
		Upper:    clamp01(p.prF - lo),
		FreqProb: p.prF,
		Method:   p.method,
	}
	return ri, ri.Prob > pfct, nil
}

// item renders a bound-settled evaluation as the ResultItem a full Mine
// would emit.
func (p *evalProfile) item(ev evaluation) ResultItem {
	return ResultItem{
		Items:    p.x,
		Prob:     ev.prob,
		Lower:    ev.lower,
		Upper:    ev.upper,
		FreqProb: p.prF,
		Method:   ev.method,
	}
}

// profile returns x's cached cascade state, constructing the eager stages
// (tidset, frequent probability, clause system, first-order bounds) on
// first sight.
func (e *Evaluator) profile(x itemset.Itemset) (*evalProfile, error) {
	key := x.Key()
	if p, ok := e.profiles[key]; ok {
		return p, nil
	}
	m := e.m
	tids := e.idx.TidsetOf(x)
	p := &evalProfile{x: x.Clone(), count: tids.Count()}
	e.profiles[key] = p
	if p.count < m.opts.MinSup {
		return p, nil
	}
	p.prF = m.tailOf(tids, nil, x, -1)
	m.stats.Evaluated++

	// The eager cascade stages — clause construction through the free
	// first-order bounds — are bound-check work, same as in evaluate.
	boundStart := m.rec.Now()
	defer func() { m.rec.Span(obs.PhaseBoundCheck, len(x), boundStart) }()

	clauses, slack, dead := m.buildClauses(x, tids, p.count, nil)
	p.slack, p.dead = slack, dead
	if dead {
		return p, nil
	}
	if len(clauses) == 0 && slack == 0 {
		p.noClauses = true
		return p, nil
	}
	// buildClauses returns the miner's scratch slice; the profile outlives
	// the next evaluation, so it keeps its own copy. (The clause tidsets
	// themselves are arena sets the profile owns until ensureUnion.)
	clauses = append([]clause(nil), clauses...)
	// Mirror evaluate: sort by descending clause probability, then compute
	// the free first-order bounds in sorted order (the summation order
	// matters for bit-identity with a direct run).
	m.sortClauses(clauses)
	sys, probs, err := m.clauseSystemOwned(tids, clauses)
	if err != nil {
		delete(e.profiles, key)
		return nil, err
	}
	s1, maxClause := 0.0, 0.0
	for _, pr := range probs {
		s1 += pr
		if pr > maxClause {
			maxClause = pr
		}
	}
	p.clauses, p.sys, p.probs = clauses, sys, probs
	p.foLo = maxClause
	p.foHi = s1 + slack
	if p.foHi > 1 {
		p.foHi = 1
	}
	return p, nil
}

// ensurePairwise computes the Lemma 4.4 pairwise bounds once per profile.
func (e *Evaluator) ensurePairwise(p *evalProfile) {
	if p.pwDone {
		return
	}
	t := e.m.rec.Now()
	p.pwLo, p.pwHi = e.m.pairwiseBounds(p.sys, p.probs, p.slack)
	e.m.rec.Span(obs.PhaseBoundCheck, len(p.x), t)
	p.pwDone = true
}

// ensureUnion resolves the extension-event union once per profile — exact
// inclusion–exclusion for small clause systems, the Karp–Luby ApproxFCP
// estimator otherwise, with the node's deterministic sampler seed — then
// releases the clause bitsets back to the miner arena.
func (e *Evaluator) ensureUnion(p *evalProfile) error {
	if p.unionDone {
		return nil
	}
	m := e.m
	if m.opts.MaxExactClauses >= 0 && len(p.clauses) <= m.opts.MaxExactClauses {
		u, err := m.exactUnion(p.sys, len(p.x))
		if err != nil {
			return err
		}
		p.union = u
		p.method = MethodExact
	} else {
		u, err := m.sampleUnion(p.sys, m.nodeRNG(p.x), p.probs, len(p.clauses), len(p.x))
		if err != nil {
			return err
		}
		p.union = u
		p.method = MethodSampled
	}
	p.unionDone = true
	for _, c := range p.clauses {
		if c.owned {
			m.putBuf(c.b)
		}
	}
	p.clauses, p.sys, p.probs = nil, nil, nil
	return nil
}
