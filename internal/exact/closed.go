package exact

import (
	"sort"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
)

// MineClosed returns all frequent closed itemsets (support ≥ minSup and no
// proper superset with equal support) using a depth-first tidset-based
// enumeration in the style of DCI-Closed / CHARM: closure extension along
// the search path plus a duplicate check against pre-order items. It is the
// exact-data counterpart of MPFCI's superset/subset pruning and stands in
// for Closet+ in the Fig. 10 comparison.
func MineClosed(d Dataset, minSup int) []Pattern {
	if minSup < 1 {
		minSup = 1
	}
	tidsets := d.Tidsets()
	items := d.Items()
	type cand struct {
		item itemset.Item
		tids *bitset.Bitset
		cnt  int
	}
	var cands []cand
	for _, it := range items {
		ts := tidsets[it]
		if c := ts.Count(); c >= minSup {
			cands = append(cands, cand{item: it, tids: ts, cnt: c})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].item < cands[j].item })

	var out []Pattern
	var rec func(x itemset.Itemset, tids *bitset.Bitset, count, startPos int)
	rec = func(x itemset.Itemset, tids *bitset.Bitset, count, startPos int) {
		// Pre-order duplicate check: if some earlier item not in X covers
		// tids(X) entirely, this branch re-derives an itemset already found
		// with that item included — skip it (the analogue of Lemma 4.2).
		last := x.Last()
		for _, c := range cands {
			if c.item >= last {
				break
			}
			if x.Contains(c.item) {
				continue
			}
			if bitset.AndCount(tids, c.tids) == count {
				return
			}
		}
		selfClosed := true
		for pos := startPos; pos < len(cands); pos++ {
			c := cands[pos]
			child := bitset.And(tids, c.tids)
			cc := child.Count()
			if cc < minSup {
				if cc == count {
					// Cannot happen when count ≥ minSup; kept for clarity.
					selfClosed = false
				}
				continue
			}
			if cc == count {
				// Closure extension: c.item belongs to the closure of X
				// (analogue of Lemma 4.3). X itself is not closed; the only
				// live branch absorbs the item.
				selfClosed = false
				rec(x.Extend(c.item), child, cc, pos+1)
				break
			}
			rec(x.Extend(c.item), child, cc, pos+1)
		}
		if selfClosed {
			out = append(out, Pattern{Items: x.Clone(), Support: count})
		}
	}
	for pos, c := range cands {
		rec(itemset.Itemset{c.item}, c.tids.Clone(), c.cnt, pos+1)
	}
	SortPatterns(out)
	return out
}

// IsClosed reports whether x is closed in d: it appears and no single-item
// extension has the same support. Used by the property tests.
func IsClosed(d Dataset, x itemset.Itemset) bool {
	sup := d.Support(x)
	if sup == 0 {
		return false
	}
	for _, e := range d.Items() {
		if x.Contains(e) {
			continue
		}
		if d.Support(x.Add(e)) == sup {
			return false
		}
	}
	return true
}

// ClosedBruteForce mines frequent closed itemsets by enumerating every
// subset of the item universe; a test oracle for small datasets.
func ClosedBruteForce(d Dataset, minSup int) []Pattern {
	items := d.Items()
	if len(items) > 20 {
		panic("exact: ClosedBruteForce limited to 20 items")
	}
	var out []Pattern
	for mask := 1; mask < 1<<uint(len(items)); mask++ {
		var x itemset.Itemset
		for i, it := range items {
			if mask&(1<<uint(i)) != 0 {
				x = append(x, it)
			}
		}
		sup := d.Support(x)
		if sup >= minSup && IsClosed(d, x) {
			out = append(out, Pattern{Items: x.Clone(), Support: sup})
		}
	}
	SortPatterns(out)
	return out
}
