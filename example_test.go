package pfcim_test

import (
	"fmt"
	"log"

	pfcim "github.com/probdata/pfcim"
)

// ExampleGenerateRules derives association rules from the mined closed
// itemsets of the paper's running example.
func ExampleGenerateRules() {
	db := pfcim.PaperExample()
	res, err := pfcim.Mine(db, pfcim.Options{MinSup: 2, PFCT: 0.8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sources := make([]pfcim.Itemset, len(res.Itemsets))
	for i, r := range res.Itemsets {
		sources[i] = r.Items
	}
	rules, err := pfcim.GenerateRules(db, sources, pfcim.RuleOptions{MinConfidence: 0.99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(rules), "rules with expected confidence ≥ 0.99; first:", rules[0])
	// Output:
	// 13 rules with expected confidence ≥ 0.99; first: {a} => {b c} (conf 1.000)
}

// ExampleNewStreamWindow maintains probabilistic frequent items over a
// sliding window.
func ExampleNewStreamWindow() {
	w, err := pfcim.NewStreamWindow(3)
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range []pfcim.Transaction{
		{Items: pfcim.NewItemset(1, 2), Prob: 0.9},
		{Items: pfcim.NewItemset(1), Prob: 0.9},
		{Items: pfcim.NewItemset(1, 2), Prob: 0.9},
	} {
		if _, _, err := w.Push(tr); err != nil {
			log.Fatal(err)
		}
	}
	items, err := w.FrequentItems(pfcim.StreamOptions{MinSup: 2, PFT: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	for _, item := range items {
		fmt.Printf("item %d: Pr_F=%.3f\n", item.Item, item.FreqProb)
	}
	// Output:
	// item 1: Pr_F=0.972
	// item 2: Pr_F=0.810
}

// ExampleExactFreqClosedProb computes an exact frequent closed probability
// without enumerating possible worlds.
func ExampleExactFreqClosedProb() {
	db := pfcim.PaperExample()
	p, err := pfcim.ExactFreqClosedProb(db, pfcim.NewItemset(0, 1, 2), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr_FC({a b c}) = %.4f\n", p)
	// Output:
	// Pr_FC({a b c}) = 0.8754
}

// ExampleMaximalFrequent shows the border representation the top-down
// strategy mines.
func ExampleMaximalFrequent() {
	db := pfcim.PaperExample()
	maxes, err := pfcim.MaximalFrequent(db, pfcim.FrequentOptions{MinSup: 2, PFT: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(maxes)
	// Output:
	// [{a b c d}]
}

// ExampleProbabilisticSupport evaluates the competing probabilistic-support
// definition of related work.
func ExampleProbabilisticSupport() {
	db := pfcim.PaperExample()
	// Pr[sup(abc) ≥ 2] = 0.9726 ≥ 0.8 but Pr[sup ≥ 3] = 0.7884 < 0.8.
	fmt.Println(pfcim.ProbabilisticSupport(db, pfcim.NewItemset(0, 1, 2), 0.8))
	// Output:
	// 2
}

// ExampleMineTopK asks for the single most probably frequent-closed
// itemset without choosing a threshold.
func ExampleMineTopK() {
	db := pfcim.PaperExample()
	top, err := pfcim.MineTopK(db, 2, 1, pfcim.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v Pr_FC=%.4f\n", top[0].Items, top[0].Prob)
	// Output:
	// {a b c} Pr_FC=0.8754
}
