// Package crosscheck is the differential and metamorphic verification
// harness for the whole MPFCI stack. It pairs a seeded generator of shaped
// random uncertain databases with two kinds of oracle checks:
//
//   - Differential: on databases small enough for internal/world's 2ⁿ
//     possible-world enumeration, the miner's full result set must equal
//     the exact Pr_FC > pfct set, probabilities and Lemma 4.4 sandwiches
//     included (Theorem 3.1 quantities are #P-hard, so this is the only
//     ground truth there is).
//   - Invariants: metamorphic properties that hold even on databases far
//     beyond the oracle — the Lemma 4.4 sandwich, threshold monotonicity,
//     byte-identical determinism across execution knobs, and sweep-derived
//     vs independently mined byte-identity.
//
// Every entry point is driven by a (Shape, Seed) pair so any failure
// reproduces from two small integers; errors embed them. The package backs
// the go test property suite, the FuzzMine fuzz target, and the
// cmd/crosscheck soak binary.
package crosscheck

import (
	"fmt"
	"math/rand"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// Shape selects a family of random databases. The families are chosen to
// stress different miner paths: dense data exercises subset/superset
// pruning and the tail memo, sparse data the candidate phase and
// Chernoff-Hoeffding pruning, correlated data the clause system and union
// machinery (patterns make extension events probable), and degenerate data
// the boundary cases — certain tuples (p = 1), near-impossible tuples,
// duplicate transactions, and single-item tails.
type Shape string

const (
	ShapeDense      Shape = "dense"
	ShapeSparse     Shape = "sparse"
	ShapeCorrelated Shape = "correlated"
	ShapeDegenerate Shape = "degenerate"
	// ShapeSparseWide models the million-transaction regime at crosscheck
	// scale: a handful of high-frequency items over a wide universe of rare
	// ones, so at representation sizes per-item tidsets mix the dense and
	// compressed forms and frequent-item tails exceed the convolution
	// kernel's leaf size. Its transaction count is drawn from the upper
	// half of the bound so large cases actually reach those paths.
	ShapeSparseWide Shape = "sparsewide"
)

// Shapes lists every shape, in the order the soak binary and property
// suite iterate them.
var Shapes = []Shape{ShapeDense, ShapeSparse, ShapeCorrelated, ShapeDegenerate, ShapeSparseWide}

// ParseShape validates a shape name (the cmd/crosscheck -shape flag).
func ParseShape(s string) (Shape, error) {
	for _, sh := range Shapes {
		if string(sh) == s {
			return sh, nil
		}
	}
	return "", fmt.Errorf("crosscheck: unknown shape %q (want dense, sparse, correlated, degenerate, or sparsewide)", s)
}

// GenDB generates a random uncertain database of the given shape with at
// most maxTrans transactions over at most maxItems items, deterministically
// from rng. Both bounds must be ≥ 1; every returned database is non-empty.
func GenDB(shape Shape, rng *rand.Rand, maxTrans, maxItems int) *uncertain.DB {
	if maxTrans < 1 || maxItems < 1 {
		panic(fmt.Sprintf("crosscheck: GenDB bounds must be ≥ 1, got maxTrans=%d maxItems=%d", maxTrans, maxItems))
	}
	n := rng.Intn(maxTrans) + 1
	var trans []uncertain.Transaction
	switch shape {
	case ShapeSparse:
		trans = genIndependent(rng, n, maxItems, 0.25, func() float64 { return 0.01 + rng.Float64()*0.98 })
	case ShapeCorrelated:
		trans = genCorrelated(rng, n, maxItems)
	case ShapeDegenerate:
		trans = genDegenerate(rng, n, maxItems)
	case ShapeSparseWide:
		n = maxTrans/2 + rng.Intn(maxTrans-maxTrans/2) + 1
		if n > maxTrans {
			n = maxTrans
		}
		trans = genSparseWide(rng, n, maxItems)
	default: // ShapeDense
		trans = genIndependent(rng, n, maxItems, 0.7, func() float64 { return 0.3 + rng.Float64()*0.7 })
	}
	return uncertain.MustNewDB(trans)
}

// genIndependent draws each item independently with the given inclusion
// rate and tuple probabilities from probFn.
func genIndependent(rng *rand.Rand, n, maxItems int, rate float64, probFn func() float64) []uncertain.Transaction {
	trans := make([]uncertain.Transaction, 0, n)
	for i := 0; i < n; i++ {
		var items []itemset.Item
		for j := 0; j < maxItems; j++ {
			if rng.Float64() < rate {
				items = append(items, itemset.Item(j))
			}
		}
		if len(items) == 0 {
			items = []itemset.Item{itemset.Item(rng.Intn(maxItems))}
		}
		trans = append(trans, uncertain.Transaction{Items: itemset.New(items...), Prob: probFn()})
	}
	return trans
}

// genSparseWide draws a few always-available high-frequency items at rate
// 0.6 and the rest of the universe at a rate targeting ~12 occurrences per
// rare item regardless of n. At n ≥ 1024 the rare tidsets fall under the
// ShouldCompact density threshold while the common ones stay dense, and
// the common items' supports exceed the convolution kernel's 512-leaf.
func genSparseWide(rng *rand.Rand, n, maxItems int) []uncertain.Transaction {
	nCommon := 3
	if nCommon > maxItems {
		nCommon = maxItems
	}
	rare := 12.0 / float64(n)
	if rare > 0.5 {
		rare = 0.5
	}
	trans := make([]uncertain.Transaction, 0, n)
	for i := 0; i < n; i++ {
		var items []itemset.Item
		for j := 0; j < nCommon; j++ {
			if rng.Float64() < 0.6 {
				items = append(items, itemset.Item(j))
			}
		}
		for j := nCommon; j < maxItems; j++ {
			if rng.Float64() < rare {
				items = append(items, itemset.Item(j))
			}
		}
		if len(items) == 0 {
			items = []itemset.Item{itemset.Item(rng.Intn(maxItems))}
		}
		trans = append(trans, uncertain.Transaction{Items: itemset.New(items...), Prob: 0.05 + rng.Float64()*0.95})
	}
	return trans
}

// genCorrelated plants 1–3 pattern itemsets; each transaction is a pattern
// plus independent noise, so extension events between pattern items are
// likely and the clause-union machinery (bounds, inclusion–exclusion,
// sampling) sees non-trivial systems.
func genCorrelated(rng *rand.Rand, n, maxItems int) []uncertain.Transaction {
	nPatterns := rng.Intn(3) + 1
	patterns := make([]itemset.Itemset, nPatterns)
	for p := range patterns {
		size := rng.Intn(maxItems) + 1
		var items []itemset.Item
		for j := 0; j < size; j++ {
			items = append(items, itemset.Item(rng.Intn(maxItems)))
		}
		patterns[p] = itemset.New(items...)
	}
	trans := make([]uncertain.Transaction, 0, n)
	for i := 0; i < n; i++ {
		items := patterns[rng.Intn(nPatterns)].Clone()
		for j := 0; j < maxItems; j++ {
			if rng.Float64() < 0.15 {
				items = items.Add(itemset.Item(j))
			}
		}
		trans = append(trans, uncertain.Transaction{Items: items, Prob: 0.05 + rng.Float64()*0.95})
	}
	return trans
}

// genDegenerate mixes the boundary cases the miner's guards exist for:
// certain tuples (p = 1 exactly, so worlds collapse), near-impossible
// tuples (p → 0, exercising the zero-clause slack accounting), exact
// duplicates of earlier transactions (closedness ties), single-item tail
// transactions, and — one draw in eight — a database that is one
// transaction repeated verbatim.
func genDegenerate(rng *rand.Rand, n, maxItems int) []uncertain.Transaction {
	degProb := func() float64 {
		switch rng.Intn(4) {
		case 0:
			return 1 // certain tuple
		case 1:
			return 1e-9 + rng.Float64()*1e-6 // nearly impossible tuple
		default:
			return 0.01 + rng.Float64()*0.98
		}
	}
	if rng.Intn(8) == 0 {
		// The whole database is one transaction repeated.
		var items []itemset.Item
		for j := 0; j < maxItems; j++ {
			if rng.Float64() < 0.6 {
				items = append(items, itemset.Item(j))
			}
		}
		if len(items) == 0 {
			items = []itemset.Item{0}
		}
		base := itemset.New(items...)
		trans := make([]uncertain.Transaction, n)
		for i := range trans {
			trans[i] = uncertain.Transaction{Items: base.Clone(), Prob: degProb()}
		}
		return trans
	}
	trans := make([]uncertain.Transaction, 0, n)
	for i := 0; i < n; i++ {
		if len(trans) > 0 && rng.Float64() < 0.3 {
			// Duplicate an earlier transaction (fresh probability).
			dup := trans[rng.Intn(len(trans))]
			trans = append(trans, uncertain.Transaction{Items: dup.Items.Clone(), Prob: degProb()})
			continue
		}
		if rng.Float64() < 0.25 {
			// Single-item tail.
			trans = append(trans, uncertain.Transaction{
				Items: itemset.New(itemset.Item(rng.Intn(maxItems))),
				Prob:  degProb(),
			})
			continue
		}
		var items []itemset.Item
		for j := 0; j < maxItems; j++ {
			if rng.Float64() < 0.55 {
				items = append(items, itemset.Item(j))
			}
		}
		if len(items) == 0 {
			items = []itemset.Item{itemset.Item(rng.Intn(maxItems))}
		}
		trans = append(trans, uncertain.Transaction{Items: itemset.New(items...), Prob: degProb()})
	}
	return trans
}
