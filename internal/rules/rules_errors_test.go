package rules

import (
	"testing"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// TestErrorPaths pins the thin edges of the rules API: negative option
// fields, non-positive sample budgets, empty rule sides, and the exact
// estimator's own validation — all rejected with errors, never panics.
func TestErrorPaths(t *testing.T) {
	db := uncertain.PaperExample()
	x, y := itemset.FromInts(0), itemset.FromInts(1)

	if _, err := Generate(db, nil, Options{MinConfidence: -0.5}); err == nil {
		t.Error("negative MinConfidence should fail")
	}
	if _, err := Generate(db, nil, Options{MinConfidence: 0.5, MaxItems: -1}); err == nil {
		t.Error("negative MaxItems should fail")
	}

	// MinConfidence = 1 is the closed upper edge of the domain: valid.
	if _, err := Generate(db, []itemset.Itemset{itemset.FromInts(0, 1)}, Options{MinConfidence: 1}); err != nil {
		t.Errorf("MinConfidence=1 should be accepted: %v", err)
	}

	for _, n := range []int{0, -10} {
		if _, err := ConfidenceProb(db, x, y, 0.5, n, 1); err == nil {
			t.Errorf("n=%d samples should fail", n)
		}
	}
	if _, err := ConfidenceProb(db, nil, y, 0.5, 100, 1); err == nil {
		t.Error("empty antecedent should fail")
	}
	if _, err := ConfidenceProb(db, x, nil, 0.5, 100, 1); err == nil {
		t.Error("empty consequent should fail")
	}
	if _, err := ExactConfidenceProb(db, nil, y, 0.5); err == nil {
		t.Error("ExactConfidenceProb with empty antecedent should fail")
	}
	if _, err := ExactConfidenceProb(db, x, x, 0.5); err == nil {
		t.Error("ExactConfidenceProb with overlapping sides should fail")
	}

	// An empty database is valid input: no rules, no confidence mass.
	empty, err := uncertain.NewDB(nil)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Generate(empty, []itemset.Itemset{itemset.FromInts(0, 1)}, Options{MinConfidence: 0.5})
	if err != nil || len(rules) != 0 {
		t.Errorf("empty database: got %v, %v; want no rules, nil", rules, err)
	}
	p, err := ConfidenceProb(empty, x, y, 0.5, 100, 1)
	if err != nil || p != 0 {
		t.Errorf("empty database confidence: got %v, %v; want 0, nil", p, err)
	}
}
