package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/probdata/pfcim/internal/gen"
	"github.com/probdata/pfcim/internal/obs"
)

// tracedWorkload is a Mushroom-like run dense enough to exercise every
// phase: candidate pruning, deep expansion, bound verdicts, exact unions,
// and Karp-Luby sampling.
func tracedWorkload(t *testing.T) (dbOpts struct{}, run func(opts Options) *Result, base Options) {
	t.Helper()
	raw := gen.MushroomLike(0.03, 42)
	db := gen.AssignGaussian(raw, 0.5, 0.5, 43)
	base = Options{
		MinSup: AbsoluteMinSup(db.N(), 0.2),
		PFCT:   0.3,
		Seed:   7,
	}
	run = func(opts Options) *Result {
		t.Helper()
		res, err := Mine(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	return
}

// normalizeScheduling zeroes the counters that legitimately depend on the
// scheduler interleaving (task accounting and the tail-memo hit split),
// mirroring TestParallelismInvariantResults.
func normalizeScheduling(s Stats) Stats {
	s.TasksSpawned, s.TasksStolen = 0, 0
	s.TailEvaluations, s.TailMemoHits = s.TailEvaluations+s.TailMemoHits, 0
	return s
}

// TestTracerDoesNotPerturbResults: attaching a Tracer must leave the wire
// form of the result byte-identical — itemsets, probabilities, methods, and
// every deterministic stat — including under the work-stealing parallel
// scheduler. This is the "observability is read-only" contract of
// DESIGN.md §11.
func TestTracerDoesNotPerturbResults(t *testing.T) {
	_, run, base := tracedWorkload(t)
	for _, par := range []int{1, 4} {
		plain := base
		plain.Parallelism = par
		traced := plain
		traced.Tracer = obs.New()

		a := run(plain)
		b := run(traced)
		if a.Profile != nil {
			t.Fatalf("par=%d: untraced run carries a profile", par)
		}
		if b.Profile == nil {
			t.Fatalf("par=%d: traced run is missing its profile", par)
		}

		aj, bj := a.JSON(), b.JSON()
		aj.Stats = normalizeScheduling(aj.Stats)
		bj.Stats = normalizeScheduling(bj.Stats)
		ab, err := json.Marshal(aj)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := json.Marshal(bj)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Fatalf("par=%d: traced result differs from untraced:\n traced %s\nuntraced %s", par, bb, ab)
		}
	}
}

// TestTracerPhaseSums: the per-phase self times must partition the run —
// in a serial run their sum approaches the total mine wall time (the
// uninstrumented remainder is loop glue, sorting, and the profile merge).
// The tight 5%% acceptance bound is checked by the benchmark harness on the
// Fig. 5 workload; here a generous corridor keeps the unit test robust on
// loaded CI machines.
func TestTracerPhaseSums(t *testing.T) {
	_, run, base := tracedWorkload(t)
	opts := base
	opts.Tracer = obs.New()
	res := run(opts)
	p := res.Profile
	if p == nil || p.TotalNS <= 0 {
		t.Fatalf("profile missing or empty: %+v", p)
	}
	var sum int64
	for _, ph := range p.Phases {
		if ph.WallNS < 0 {
			t.Fatalf("negative wall time in phase %s: %d", ph.Phase, ph.WallNS)
		}
		sum += ph.WallNS
	}
	if sum > p.TotalNS*21/20 {
		t.Errorf("phase sum %d exceeds total %d by more than 5%%", sum, p.TotalNS)
	}
	if sum < p.TotalNS/2 {
		t.Errorf("phase sum %d attributes less than half of total %d", sum, p.TotalNS)
	}
	if p.PhaseWallNS("expand") == 0 {
		t.Error("no expand time attributed")
	}
	if p.PhaseWallNS("bound-check") == 0 {
		t.Error("no bound-check time attributed")
	}
	if len(p.Depths) == 0 {
		t.Error("no per-depth profile")
	}
	if res.Stats.Sampled > 0 && p.PhaseWallNS("sampling") == 0 {
		t.Error("run sampled but no sampling time attributed")
	}
	if res.Stats.ExactUnions > 0 && p.PhaseWallNS("exact-union") == 0 {
		t.Error("run used exact unions but no exact-union time attributed")
	}
}

// TestTracerParallelWorkers: at Parallelism=4 the profile must show the
// pool workers' recorders (ids 1..4) alongside the coordinator (id 0), so
// work-stealing imbalance is visible per worker.
func TestTracerParallelWorkers(t *testing.T) {
	_, run, base := tracedWorkload(t)
	opts := base
	opts.Parallelism = 4
	opts.Tracer = obs.New()
	res := run(opts)
	p := res.Profile
	if p == nil {
		t.Fatal("missing profile")
	}
	if len(p.Workers) != 5 {
		t.Fatalf("got %d worker profiles, want 5 (coordinator + 4 pool workers)", len(p.Workers))
	}
	var poolBusy int64
	for _, w := range p.Workers[1:] {
		poolBusy += w.BusyNS
	}
	if poolBusy == 0 {
		t.Error("pool workers recorded no busy time")
	}
}

// TestTracerBFS: the level-wise framework must attribute time through the
// same taxonomy.
func TestTracerBFS(t *testing.T) {
	_, run, base := tracedWorkload(t)
	opts := base
	opts.Search = BFS
	opts.Tracer = obs.New()
	res := run(opts)
	p := res.Profile
	if p == nil {
		t.Fatal("missing profile")
	}
	if p.PhaseWallNS("expand") == 0 || p.PhaseWallNS("bound-check") == 0 {
		t.Errorf("BFS run left phases unattributed: %+v", p.Phases)
	}
}

// TestTracerChromeExport: the traced run must export parseable Chrome
// trace-event JSON with spans from every recorded phase that occurred.
func TestTracerChromeExport(t *testing.T) {
	_, run, base := tracedWorkload(t)
	opts := base
	opts.Tracer = obs.New()
	run(opts)
	var buf bytes.Buffer
	if err := opts.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome trace is empty")
	}
	names := map[string]bool{}
	for _, ev := range events {
		names[ev["name"].(string)] = true
	}
	for _, want := range []string{"candidates", "expand", "bound-check"} {
		if !names[want] {
			t.Errorf("chrome trace has no %q spans", want)
		}
	}
}
