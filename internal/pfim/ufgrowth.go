package pfim

import (
	"sort"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// This file implements UF-growth [15]: expected-support frequent itemset
// mining with an FP-growth-style prefix tree whose node counts are sums of
// tuple probabilities rather than integers. Under the paper's
// tuple-uncertainty model the expected support of X is Σ_{T ⊇ X} p_T, so
// the tree stores one weight per path and the usual conditional-pattern-
// base recursion applies unchanged. The result set is identical to
// ExpectedSupportMine; UF-growth exists here as the cited related-work
// algorithm and as an independent implementation the tests cross-check.

// ufNode is one node of the weighted prefix tree.
type ufNode struct {
	item     itemset.Item
	weight   float64
	parent   *ufNode
	children map[itemset.Item]*ufNode
	next     *ufNode
}

type ufTree struct {
	root    *ufNode
	heads   map[itemset.Item]*ufNode
	weights map[itemset.Item]float64
	order   []itemset.Item
}

type ufTrans struct {
	items  []itemset.Item
	weight float64
}

func buildUFTree(trans []ufTrans, minExpSup float64) *ufTree {
	weights := map[itemset.Item]float64{}
	for _, tr := range trans {
		for _, it := range tr.items {
			weights[it] += tr.weight
		}
	}
	var keep []itemset.Item
	for it, w := range weights {
		if w >= minExpSup {
			keep = append(keep, it)
		}
	}
	sort.Slice(keep, func(i, j int) bool {
		if weights[keep[i]] != weights[keep[j]] {
			return weights[keep[i]] > weights[keep[j]]
		}
		return keep[i] < keep[j]
	})
	rank := map[itemset.Item]int{}
	for i, it := range keep {
		rank[it] = i
	}
	t := &ufTree{
		root:    &ufNode{children: map[itemset.Item]*ufNode{}},
		heads:   map[itemset.Item]*ufNode{},
		weights: map[itemset.Item]float64{},
		order:   keep,
	}
	buf := make([]itemset.Item, 0, 32)
	for _, tr := range trans {
		buf = buf[:0]
		for _, it := range tr.items {
			if _, ok := rank[it]; ok {
				buf = append(buf, it)
			}
		}
		if len(buf) == 0 {
			continue
		}
		sort.Slice(buf, func(i, j int) bool { return rank[buf[i]] < rank[buf[j]] })
		node := t.root
		for _, it := range buf {
			child, ok := node.children[it]
			if !ok {
				child = &ufNode{item: it, parent: node, children: map[itemset.Item]*ufNode{}}
				child.next = t.heads[it]
				t.heads[it] = child
				node.children[it] = child
			}
			child.weight += tr.weight
			t.weights[it] += tr.weight
			node = child
		}
	}
	return t
}

// UFGrowth mines all itemsets whose expected support reaches minExpSup.
func UFGrowth(db *uncertain.DB, minExpSup float64) []Itemset {
	trans := make([]ufTrans, db.N())
	for i := 0; i < db.N(); i++ {
		tr := db.Transaction(i)
		trans[i] = ufTrans{items: tr.Items, weight: tr.Prob}
	}
	var out []Itemset
	ufMine(buildUFTree(trans, minExpSup), nil, minExpSup, &out)
	// Counts are not tracked by the tree; fill them from the database for
	// output parity with the other miners.
	for i := range out {
		out[i].Count = db.Count(out[i].Items)
	}
	sort.Slice(out, func(i, j int) bool { return itemset.Compare(out[i].Items, out[j].Items) < 0 })
	return out
}

func ufMine(tree *ufTree, suffix itemset.Itemset, minExpSup float64, out *[]Itemset) {
	for i := len(tree.order) - 1; i >= 0; i-- {
		it := tree.order[i]
		w := tree.weights[it]
		if w < minExpSup {
			continue
		}
		pattern := suffix.Add(it)
		*out = append(*out, Itemset{Items: pattern, ExpectedSupport: w})
		var base []ufTrans
		for node := tree.heads[it]; node != nil; node = node.next {
			var path []itemset.Item
			for p := node.parent; p != nil && p.parent != nil; p = p.parent {
				path = append(path, p.item)
			}
			if len(path) > 0 {
				base = append(base, ufTrans{items: path, weight: node.weight})
			}
		}
		if len(base) > 0 {
			cond := buildUFTree(base, minExpSup)
			if len(cond.order) > 0 {
				ufMine(cond, pattern, minExpSup, out)
			}
		}
	}
}
