package dnf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/world"
)

func TestMonotoneValidate(t *testing.T) {
	cases := []struct {
		f  Monotone
		ok bool
	}{
		{Monotone{NumVars: 2, Clauses: [][]int{{0}}}, true},
		{Monotone{NumVars: 0, Clauses: [][]int{{0}}}, false},
		{Monotone{NumVars: 2, Clauses: nil}, false},
		{Monotone{NumVars: 2, Clauses: [][]int{{}}}, false},
		{Monotone{NumVars: 2, Clauses: [][]int{{2}}}, false},
		{Monotone{NumVars: 2, Clauses: [][]int{{0, 0}}}, false},
	}
	for i, tc := range cases {
		if err := tc.f.Validate(); (err == nil) != tc.ok {
			t.Errorf("case %d: Validate() err=%v, want ok=%v", i, err, tc.ok)
		}
	}
}

func TestCountBruteForceKnown(t *testing.T) {
	// F = v0 ∨ v1 over 2 vars: 3 satisfying assignments.
	f := Monotone{NumVars: 2, Clauses: [][]int{{0}, {1}}}
	n, err := f.CountBruteForce()
	if err != nil || n != 3 {
		t.Errorf("count = %d, %v; want 3", n, err)
	}
	// F = v0 ∧ v1: 1 satisfying assignment.
	f = Monotone{NumVars: 2, Clauses: [][]int{{0, 1}}}
	if n, _ := f.CountBruteForce(); n != 1 {
		t.Errorf("count = %d, want 1", n)
	}
}

// TestReductionTheorem31 is the executable form of the paper's #P-hardness
// proof: for random monotone DNF formulas, the satisfying-assignment count
// recovered from the closed probability of the reduction database equals
// the brute-force count.
func TestReductionTheorem31(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numVars := rng.Intn(6) + 2
		numClauses := rng.Intn(4) + 1
		formula := Monotone{NumVars: numVars}
		for c := 0; c < numClauses; c++ {
			size := rng.Intn(numVars) + 1
			perm := rng.Perm(numVars)
			formula.Clauses = append(formula.Clauses, perm[:size])
		}
		db, err := ReductionDB(formula)
		if err != nil {
			return false
		}
		closedProb, err := world.ClosedProb(db, itemset.Itemset{ReductionTarget})
		if err != nil {
			return false
		}
		viaReduction := CountFromClosedProb(formula, closedProb)
		direct, err := formula.CountBruteForce()
		if err != nil {
			return false
		}
		return viaReduction == direct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestReductionPaperInstance checks the exact database of the paper's
// Table VI: F = (v1∧v2∧v3) ∨ (v1∧v2∧v4) ∨ (v2∧v3∧v4).
func TestReductionPaperInstance(t *testing.T) {
	f := Monotone{NumVars: 4, Clauses: [][]int{{0, 1, 2}, {0, 1, 3}, {1, 2, 3}}}
	db, err := ReductionDB(f)
	if err != nil {
		t.Fatal(err)
	}
	// Expected transactions (X=0, e1=1, e2=2, e3=3):
	//   T1 (v1): in clauses 1,2 → items {X, e3}        = {0,3}
	//   T2 (v2): in all clauses → items {X}            = {0}
	//   T3 (v3): in clauses 1,3 → items {X, e2}        = {0,2}
	//   T4 (v4): in clauses 2,3 → items {X, e1}        = {0,1}
	want := []itemset.Itemset{
		itemset.FromInts(0, 3),
		itemset.FromInts(0),
		itemset.FromInts(0, 2),
		itemset.FromInts(0, 1),
	}
	if db.N() != len(want) {
		t.Fatalf("reduction has %d tuples, want %d", db.N(), len(want))
	}
	for i, w := range want {
		tr := db.Transaction(i)
		if !itemset.Equal(tr.Items, w) {
			t.Errorf("T%d = %v, want %v", i+1, tr.Items, w)
		}
		if tr.Prob != 0.5 {
			t.Errorf("T%d prob = %v, want 0.5", i+1, tr.Prob)
		}
	}
	cp, err := world.ClosedProb(db, itemset.Itemset{ReductionTarget})
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := f.CountBruteForce()
	if got := CountFromClosedProb(f, cp); got != direct {
		t.Errorf("reduction count = %d, brute force = %d", got, direct)
	}
}
