package core

import (
	"sync"
	"sync/atomic"

	"github.com/probdata/pfcim/internal/bitset"
	"github.com/probdata/pfcim/internal/itemset"
)

// Work-stealing parallel DFS.
//
// The enumeration tree of MPFCI is heavily skewed: a handful of first-level
// subtrees (the most frequent items) hold almost all of the work, so the
// old first-level-only fan-out left most workers idle once their small
// subtrees drained. Here every worker owns a deque of subtree tasks; it
// pops from the back (LIFO — depth-first order, cache-warm) and steals from
// the front of a victim's deque (FIFO — the shallowest, i.e. largest,
// subtree available). Splitting is demand-driven: a node only turns a child
// into a task when it is shallow enough (Options.SplitDepth) and some
// worker is currently starving, so the common case stays a plain recursive
// call with zero synchronization.
//
// Determinism: the set of nodes visited, every pruning decision, and every
// evaluation verdict depend only on the data and the options — sampling
// seeds derive from (Options.Seed, node prefix), see rng.go — so results
// and all Stats counters except TasksSpawned/TasksStolen are byte-identical
// for every Parallelism setting and every scheduling interleaving.

// task is one enumeration subtree handed to the pool: the root node's
// itemset, its tidset (owned by the task), count, exact frequent
// probability, and the first candidate position of its extensions.
type task struct {
	items    itemset.Itemset
	tids     *bitset.Bitset
	count    int
	prF      float64
	startPos int
}

// scheduler coordinates the worker pool of one parallel mining run.
type scheduler struct {
	workers []*worker

	pending int64 // atomic: tasks queued or running
	idle    int32 // atomic: workers currently out of local work
	stop    int32 // atomic: set on the first error; queued tasks drain unrun

	mu       sync.Mutex
	cond     *sync.Cond
	seq      int64 // bumped on every state change workers may wait for
	firstErr error
}

func newScheduler(n int) *scheduler {
	s := &scheduler{}
	s.cond = sync.NewCond(&s.mu)
	s.workers = make([]*worker, n)
	for i := range s.workers {
		s.workers[i] = &worker{sched: s}
	}
	return s
}

// bump wakes every parked worker after a state change (new task, pool
// drained, abort).
func (s *scheduler) bump() {
	s.mu.Lock()
	s.seq++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// snapshot returns the current change counter; waitChange blocks until it
// moves past the snapshot, so a wake between snapshot and wait is never
// lost.
func (s *scheduler) snapshot() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

func (s *scheduler) waitChange(seen int64) {
	s.mu.Lock()
	for s.seq == seen {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// abort records the first error and flips the pool into drain mode.
func (s *scheduler) abort(err error) {
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.mu.Unlock()
	atomic.StoreInt32(&s.stop, 1)
	s.bump()
}

func (s *scheduler) idleWorkers() int32 { return atomic.LoadInt32(&s.idle) }

// worker is one pool member: a shared-nothing sub-miner (own results,
// stats, scratch freelists) plus a mutex-guarded deque.
type worker struct {
	sched *scheduler
	sub   *miner
	mu    sync.Mutex
	deque []task
}

// push enqueues a task at the back of the worker's own deque. pending is
// incremented before the task becomes visible so the pool can never look
// drained while work is in flight.
func (w *worker) push(t task) {
	atomic.AddInt64(&w.sched.pending, 1)
	w.mu.Lock()
	w.deque = append(w.deque, t)
	w.mu.Unlock()
	w.sched.bump()
}

// pop takes the newest task from the worker's own deque (LIFO).
func (w *worker) pop() (task, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.deque); n > 0 {
		t := w.deque[n-1]
		w.deque[n-1] = task{}
		w.deque = w.deque[:n-1]
		return t, true
	}
	return task{}, false
}

// stealFrom takes the oldest task from a victim's deque (FIFO): the
// shallowest node, hence the biggest subtree.
func (w *worker) stealFrom(v *worker) (task, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.deque) > 0 {
		t := v.deque[0]
		copy(v.deque, v.deque[1:])
		v.deque[len(v.deque)-1] = task{}
		v.deque = v.deque[:len(v.deque)-1]
		return t, true
	}
	return task{}, false
}

// run is the worker loop: drain own deque, then hunt (steal or park) until
// the pool is empty.
func (w *worker) run() {
	for {
		t, ok := w.pop()
		if !ok {
			t, ok = w.hunt()
			if !ok {
				return
			}
		}
		w.execute(t)
	}
}

// hunt looks for work on other deques, parking between attempts. It
// returns false once the pool has no queued or running tasks left — at
// that point no new task can ever appear.
func (w *worker) hunt() (task, bool) {
	s := w.sched
	atomic.AddInt32(&s.idle, 1)
	defer atomic.AddInt32(&s.idle, -1)
	for {
		seen := s.snapshot()
		for _, v := range s.workers {
			if v == w {
				continue
			}
			if t, ok := w.stealFrom(v); ok {
				w.sub.stats.TasksStolen++
				return t, true
			}
		}
		if atomic.LoadInt64(&s.pending) == 0 {
			return task{}, false
		}
		s.waitChange(seen)
	}
}

// execute runs one subtree to completion on this worker's sub-miner.
func (w *worker) execute(t task) {
	s := w.sched
	if atomic.LoadInt32(&s.stop) == 0 {
		if err := w.sub.probFC(t.items, t.tids, t.count, t.prF, t.startPos); err != nil {
			s.abort(err)
		}
	}
	if atomic.AddInt64(&s.pending, -1) == 0 {
		s.bump()
	}
}

// spawnable reports whether a child at the given parent depth should be
// handed to the pool instead of descended into inline.
func (m *miner) spawnable(parentDepth int) bool {
	w := m.worker
	return w != nil && parentDepth < m.opts.SplitDepth && w.sched.idleWorkers() > 0
}

// mineDFSParallel distributes the enumeration tree over the work-stealing
// pool. Each worker owns an independent sub-miner; results and stats merge
// after the pool drains. The result set, probabilities and deterministic
// stats are byte-identical to a serial run (see rng.go).
func (m *miner) mineDFSParallel() error {
	s := newScheduler(m.opts.Parallelism)
	for i, w := range s.workers {
		sub := &miner{
			opts:     m.opts,
			db:       m.db,
			probs:    m.probs,
			allItems: m.allItems,
			itemTids: m.itemTids,
			cands:    m.cands,
			ctx:      m.ctx,
			// Pool worker i records as tracer worker i+1; recorder 0 stays
			// with the coordinating miner (candidate phase). Per-worker
			// recorders are single-writer, so tracing composes with
			// work-stealing without locks.
			rec: m.opts.Tracer.Recorder(i + 1),
		}
		sub.worker = w
		w.sub = sub
	}
	// Seed the deques with the first-level subtrees, round-robin so every
	// worker starts with local work; stealing and splitting rebalance the
	// skew from there.
	for pos, c := range m.cands {
		s.workers[pos%len(s.workers)].push(task{
			items:    itemset.Itemset{c.item},
			tids:     c.tids.Clone(),
			count:    c.cnt,
			prF:      c.prF,
			startPos: pos + 1,
		})
		s.workers[pos%len(s.workers)].sub.stats.TasksSpawned++
	}
	var wg sync.WaitGroup
	for _, w := range s.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run()
		}(w)
	}
	wg.Wait()
	for _, w := range s.workers {
		m.results = append(m.results, w.sub.results...)
		m.stats.add(w.sub.stats)
	}
	return s.firstErr
}
