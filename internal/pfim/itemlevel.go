package pfim

import (
	"sort"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/poibin"
	"github.com/probdata/pfcim/internal/uncertain"
)

// This file runs the cited expected-support and probabilistic-frequent
// algorithms in their native *attribute-level* uncertainty model
// (uncertain.ItemDB): U-Apriori's expected support is Σ_T Π_{x∈X} p_T(x),
// and sup(X) is Poisson-binomial over the per-transaction containment
// probabilities.

// ItemLevelExpectedSupportMine returns all itemsets whose expected support
// in the attribute-level model reaches minExpSup. Expected support remains
// anti-monotone (adding an item multiplies each containment probability by
// a factor ≤ 1), so the depth-first enumeration prunes subtrees soundly.
func ItemLevelExpectedSupportMine(db *uncertain.ItemDB, minExpSup float64) []Itemset {
	items := db.Items()
	n := db.N()

	// weights[i] = Pr[X ⊆ T_i] for the current prefix X; extensions
	// multiply elementwise by the item's per-transaction probability.
	var out []Itemset
	var rec func(x itemset.Itemset, weights []float64, exp float64, startPos int)
	rec = func(x itemset.Itemset, weights []float64, exp float64, startPos int) {
		cnt := 0
		for _, w := range weights {
			if w > 0 {
				cnt++
			}
		}
		out = append(out, Itemset{Items: x.Clone(), ExpectedSupport: exp, Count: cnt})
		for pos := startPos; pos < len(items); pos++ {
			e := items[pos]
			child := make([]float64, n)
			childExp := 0.0
			for i := range weights {
				if weights[i] == 0 {
					continue
				}
				w := weights[i] * db.ItemProb(i, e)
				child[i] = w
				childExp += w
			}
			if childExp >= minExpSup {
				rec(x.Extend(e), child, childExp, pos+1)
			}
		}
	}
	for pos, e := range items {
		weights := make([]float64, n)
		exp := 0.0
		for i := 0; i < n; i++ {
			weights[i] = db.ItemProb(i, e)
			exp += weights[i]
		}
		if exp >= minExpSup {
			rec(itemset.Itemset{e}, weights, exp, pos+1)
		}
	}
	sort.Slice(out, func(i, j int) bool { return itemset.Compare(out[i].Items, out[j].Items) < 0 })
	return out
}

// ItemLevelMine returns all probabilistic frequent itemsets of the
// attribute-level model: Pr[sup(X) ≥ minSup] > pft with sup(X) the
// Poisson-binomial sum of per-transaction containment probabilities. The
// frequent probability is anti-monotone in this model too (containment
// probabilities only shrink as X grows), so subtree pruning applies.
func ItemLevelMine(db *uncertain.ItemDB, opts Options) []Itemset {
	if opts.MinSup < 1 {
		opts.MinSup = 1
	}
	items := db.Items()
	n := db.N()

	check := func(weights []float64) (float64, bool) {
		probs := make([]float64, 0, n)
		for _, w := range weights {
			if w > 0 {
				probs = append(probs, w)
			}
		}
		if len(probs) < opts.MinSup {
			return 0, false
		}
		if !opts.DisableCH && poibin.TailUpperBound(probs, opts.MinSup) <= opts.PFT {
			return 0, false
		}
		prF := poibin.Tail(probs, opts.MinSup)
		return prF, prF > opts.PFT
	}

	var out []Itemset
	var rec func(x itemset.Itemset, weights []float64, prF float64, startPos int)
	rec = func(x itemset.Itemset, weights []float64, prF float64, startPos int) {
		exp, cnt := 0.0, 0
		for _, w := range weights {
			exp += w
			if w > 0 {
				cnt++
			}
		}
		out = append(out, Itemset{Items: x.Clone(), FreqProb: prF, ExpectedSupport: exp, Count: cnt})
		for pos := startPos; pos < len(items); pos++ {
			e := items[pos]
			child := make([]float64, n)
			for i := range weights {
				if weights[i] > 0 {
					child[i] = weights[i] * db.ItemProb(i, e)
				}
			}
			if childPrF, ok := check(child); ok {
				rec(x.Extend(e), child, childPrF, pos+1)
			}
		}
	}
	for pos, e := range items {
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			weights[i] = db.ItemProb(i, e)
		}
		if prF, ok := check(weights); ok {
			rec(itemset.Itemset{e}, weights, prF, pos+1)
		}
	}
	sort.Slice(out, func(i, j int) bool { return itemset.Compare(out[i].Items, out[j].Items) < 0 })
	return out
}
