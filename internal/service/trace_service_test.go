package service

// Distributed-tracing and round-telemetry tests: worker-attributed spans in
// job traces, the request-ID correlation chain, Accept negotiation, worker
// gauge retirement, and the watched-stream metric accounting.

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/probdata/pfcim/internal/core"
	"github.com/probdata/pfcim/internal/obs"
	"github.com/probdata/pfcim/internal/shard"
	"github.com/probdata/pfcim/internal/uncertain"
)

// startWorkersWithHandles is startShardWorkers plus access to the worker
// structs, so tests can ask which workers actually hold slices.
func startWorkersWithHandles(t *testing.T, n int) ([]string, []*shard.Worker) {
	t.Helper()
	urls := make([]string, n)
	workers := make([]*shard.Worker, n)
	for i := range workers {
		workers[i] = shard.NewWorker(quietLogger())
		srv := httptest.NewServer(workers[i])
		urls[i] = srv.URL
		t.Cleanup(srv.Close)
	}
	return urls, workers
}

// TestDistributedTraceAttributesWorkers is the PR's acceptance test: a
// sharded job's trace must contain spans from every worker that holds a
// slice of the dataset, attributed per worker address and mapped to the
// paper's bound-check phase.
func TestDistributedTraceAttributesWorkers(t *testing.T) {
	urls, workers := startWorkersWithHandles(t, 2)
	_, ts := testServer(t, Config{
		Workers:         1,
		Shards:          2,
		ShardWorkers:    urls,
		ShardRPCTimeout: 2 * time.Second,
	})
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())

	job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8},
	}))
	if job.TraceID == "" {
		t.Error("submitted job carries no trace_id")
	}
	info := waitJob(t, ts.URL, job.ID)
	if info.Status != StatusDone {
		t.Fatalf("job = %+v, want done", info)
	}

	resp, body := getWithAccept(t, ts.URL+"/v1/jobs/"+job.ID+"/trace", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d: %s", resp.StatusCode, body)
	}
	var p obs.Profile
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("trace body: %v", err)
	}

	remote := map[string]obs.WorkerProfile{}
	for _, w := range p.Workers {
		if w.Label == "" {
			continue
		}
		remote[w.Label] = w
		if w.Worker != -1 {
			t.Errorf("remote worker %s has Worker=%d, want -1", w.Label, w.Worker)
		}
		if w.Spans == 0 || w.BusyNS <= 0 {
			t.Errorf("remote worker %s: spans=%d busy=%d, want both > 0", w.Label, w.Spans, w.BusyNS)
		}
		for _, ph := range w.Phases {
			if ph.Phase != "bound-check" {
				t.Errorf("remote worker %s attributed phase %q, want bound-check", w.Label, ph.Phase)
			}
		}
	}
	// Every worker holding a slice served evals, so each must appear.
	for i, w := range workers {
		if w.Slots() == 0 {
			continue
		}
		if _, ok := remote[urls[i]]; !ok {
			t.Errorf("worker %s holds %d slots but has no spans in the trace (remote: %v)",
				urls[i], w.Slots(), remote)
		}
	}
	if len(remote) == 0 {
		t.Fatal("trace contains no worker-attributed spans")
	}
}

// TestDistributedTraceConcurrentAndNoLeak hammers a coordinator with
// sharded traced jobs while scraping /metrics and the trace endpoints, then
// checks the goroutine count settles back — the -race gate for the merged
// worker tracers and the leak gate for the RPC fan-out.
func TestDistributedTraceConcurrentAndNoLeak(t *testing.T) {
	urls, _ := startWorkersWithHandles(t, 2)
	_, ts := testServer(t, Config{
		Workers:         2,
		QueueDepth:      64,
		CacheSize:       -1,
		Shards:          2,
		ShardWorkers:    urls,
		ShardRPCTimeout: 2 * time.Second,
	})
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())
	base := runtime.NumGoroutine()

	const jobs = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	ids := make([]string, jobs)
	for i := range ids {
		ids[i] = decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
			Dataset: ds.ID,
			Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8, Seed: int64(i + 1)},
		})).ID
	}
	// Scrapers race the running jobs: trace fetches answer 409 while a job
	// runs and 200 after — either way they read the job table and profile
	// concurrently with the RPC goroutines importing span batches.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range ids {
					getWithAccept(t, ts.URL+"/v1/jobs/"+id+"/trace", "")
				}
				getWithAccept(t, ts.URL+"/metrics", "text/plain")
			}
		}()
	}
	for _, id := range ids {
		if info := waitJob(t, ts.URL, id); info.Status != StatusDone {
			t.Errorf("job %s = %s (%s)", id, info.Status, info.Error)
		}
	}
	close(stop)
	wg.Wait()

	for _, id := range ids {
		resp, body := getWithAccept(t, ts.URL+"/v1/jobs/"+id+"/trace", "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("trace %s = %d: %s", id, resp.StatusCode, body)
			continue
		}
		if !strings.Contains(body, `"label"`) {
			t.Errorf("trace %s has no worker-attributed spans", id)
		}
	}

	// The fan-out goroutines and per-job contexts must all be gone once the
	// jobs are terminal; allow the HTTP keep-alive pool a moment to drain.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+5 || time.Now().After(deadline) {
			if n > base+5 {
				t.Errorf("goroutines grew from %d to %d after jobs finished", base, n)
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAcceptNegotiationTable pins the /metrics content negotiation: q-value
// weighting, the text/* and */* wildcards, q=0 exclusion, and the legacy
// order tiebreak.
func TestAcceptNegotiationTable(t *testing.T) {
	for _, tc := range []struct {
		accept string
		prom   bool
	}{
		{"", false},
		{"text/plain", true},
		{"text/plain;version=0.0.4", true},
		{"application/openmetrics-text;version=1.0.0", true},
		{"application/json", false},
		{"application/json, text/plain", false},      // equal q, equal specificity: first wins
		{"text/plain, application/json", true},       // and symmetrically
		{"application/json;q=0.5, text/plain", true}, // higher q wins regardless of order
		{"text/plain;q=0.2, application/json;q=0.9", false},
		{"text/plain;q=0", false}, // q=0 excludes the range
		{"text/*", true},          // wildcard text family
		{"text/*;q=0.9, application/json;q=0.5", true},
		{"text/*, application/json", false}, // specific beats wildcard at equal q
		{"*/*", false},                      // full wildcard keeps the JSON default
		{"*/*;q=0.1, text/plain;q=0.05", false},
		{"text/html", false}, // unrelated types are ignored
		{"text/plain; q=0.8, text/html", true},
		{"garbage;;q=,", false},
	} {
		if got := wantsPrometheus(tc.accept); got != tc.prom {
			t.Errorf("wantsPrometheus(%q) = %v, want %v", tc.accept, got, tc.prom)
		}
	}
}

// TestWorkerRemovalRetiresSeries: removing a worker deletes its worker_up
// and last-probe-age series instead of leaving a stale 1, and the age gauge
// is exposed for live workers.
func TestWorkerRemovalRetiresSeries(t *testing.T) {
	m := newMetrics()
	m.WorkerUp("w1:9101", true)
	m.WorkerUp("w2:9102", false)

	scrape := func() string {
		rec := httptest.NewRecorder()
		m.servePrometheus(rec)
		return rec.Body.String()
	}
	body := scrape()
	for _, want := range []string{
		`pfcimd_shard_worker_up{worker="w1:9101"} 1`,
		`pfcimd_shard_worker_up{worker="w2:9102"} 0`,
		`pfcimd_shard_worker_last_probe_age_seconds{worker="w1:9101"}`,
		`pfcimd_shard_worker_last_probe_age_seconds{worker="w2:9102"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}

	m.WorkerRemoved("w1:9101")
	body = scrape()
	if strings.Contains(body, "w1:9101") {
		t.Errorf("removed worker still exposed:\n%s", body)
	}
	if !strings.Contains(body, `pfcimd_shard_worker_up{worker="w2:9102"} 0`) {
		t.Errorf("surviving worker series lost:\n%s", body)
	}

	// End-to-end: the client notifies the daemon metrics on removal.
	c, err := shard.NewClient([]string{"a:1", "b:2"}, time.Second, m)
	if err != nil {
		t.Fatal(err)
	}
	m.WorkerUp("a:1", true)
	if err := c.RemoveWorker("a:1"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(scrape(), `worker="a:1"`) {
		t.Error("client removal did not retire the series")
	}
}

// TestWatchMetricsAccounting: the per-stream diff counters must sum to the
// per-round result totals — added + changed + unchanged across rounds
// equals the sum of each round's result size — and the round histograms
// must count one observation per round.
func TestWatchMetricsAccounting(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	ds := uploadDB(t, ts.URL, uncertain.PaperExample())
	opts := core.OptionsJSON{MinSup: 2, PFCT: 0.8}

	submitWatched := func() JobInfo {
		t.Helper()
		job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
			Dataset: ds.ID + "@latest", Options: opts,
		}))
		info := waitJob(t, ts.URL, job.ID)
		if info.Status != StatusDone {
			t.Fatalf("watched job = %+v, want done", info)
		}
		return info
	}
	first := submitWatched()

	// Append one transaction so the second round has a real diff.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets/"+ds.ID+"/append",
		strings.NewReader("1 2 3 : 0.9\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("append status = %d", resp.StatusCode)
	}
	second := submitWatched()

	_, body := getWithAccept(t, ts.URL+"/metrics", "text/plain")
	series := func(name string) int64 {
		re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `\{watch="[^"]*"[^}]*\} (\d+)$`)
		ms := re.FindAllStringSubmatch(body, -1)
		if len(ms) != 1 {
			t.Fatalf("want exactly one %s series, got %d:\n%s", name, len(ms), body)
		}
		v, err := strconv.ParseInt(ms[0][1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := series("pfcimd_watch_rounds_total"); got != 2 {
		t.Errorf("rounds_total = %d, want 2", got)
	}
	added := series("pfcimd_watch_diff_added_total")
	changed := series("pfcimd_watch_diff_changed_total")
	unchanged := series("pfcimd_watch_diff_unchanged_total")
	wantTotal := int64(len(first.Result.Itemsets) + len(second.Result.Itemsets))
	if got := added + changed + unchanged; got != wantTotal {
		t.Errorf("added(%d)+changed(%d)+unchanged(%d) = %d, want the summed round results %d",
			added, changed, unchanged, got, wantTotal)
	}
	if added < int64(len(first.Result.Itemsets)) {
		t.Errorf("added = %d, want ≥ the first round's %d (first round is all-added)",
			added, len(first.Result.Itemsets))
	}
	// One histogram observation per round, for both wall time and reuse.
	label := regexp.MustCompile(`pfcimd_watch_rounds_total\{watch="([^"]*)"\}`).FindStringSubmatch(body)
	if label == nil {
		t.Fatal("no watch label found")
	}
	for _, h := range []string{"pfcimd_watch_round_seconds", "pfcimd_watch_reuse_ratio"} {
		want := fmt.Sprintf(`%s_count{watch="%s"} 2`, h, label[1])
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The diff reported by the second job matches the counters' delta.
	if second.Diff == nil {
		t.Fatal("second watched job reported no diff")
	}
}

// TestRequestIDCorrelation: every response carries X-Request-Id, and the
// submit handler logs the request_id ↔ job ↔ trace correlation line.
func TestRequestIDCorrelation(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	_, ts := testServer(t, Config{Workers: 1, Logger: logger})

	resp, _ := getWithAccept(t, ts.URL+"/healthz", "")
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("healthz response missing X-Request-Id")
	}

	ds := uploadDB(t, ts.URL, uncertain.PaperExample())
	job := decode[JobInfo](t, postJSON(t, ts.URL+"/v1/jobs", jobRequest{
		Dataset: ds.ID,
		Options: core.OptionsJSON{MinSup: 2, PFCT: 0.8},
	}))
	if job.TraceID != job.ID {
		t.Errorf("trace_id = %q, want the job id %q", job.TraceID, job.ID)
	}
	waitJob(t, ts.URL, job.ID)

	logs := logBuf.String()
	var correlated bool
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "job submitted") &&
			strings.Contains(line, "request_id=") &&
			strings.Contains(line, "job="+job.ID) &&
			strings.Contains(line, "trace="+job.TraceID) {
			correlated = true
		}
	}
	if !correlated {
		t.Errorf("no request_id ↔ job ↔ trace correlation line in logs:\n%s", logs)
	}
}
