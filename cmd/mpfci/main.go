// Command mpfci mines probabilistic frequent closed itemsets from an
// uncertain transaction file.
//
// Usage:
//
//	mpfci -minsup 0.4 -pfct 0.8 [flags] data.txt
//
// The input format is one transaction per line: "item item … : prob";
// a missing ": prob" means the tuple is certain. Results are printed one
// itemset per line with the estimated frequent closed probability.
//
// Flags select the algorithm variant (Table VII of the paper), the sampler
// accuracy, and the baseline comparisons:
//
//	-algo mpfci|bfs|naive    mining algorithm (default mpfci)
//	-no-ch -no-super -no-sub -no-bound   disable individual prunings
//	-frequent                also print probabilistic frequent itemsets
//	-stats                   print pruning statistics
//	-trace out.json          record phase spans: prints a phase/depth summary
//	                         table and writes a Chrome trace-event file
//	-parallel N              mine with N work-stealing workers
//	-split-depth D           hand subtrees above depth D to idle workers
//	-shards N                partition the tail arithmetic into N range shards
//	-shard-workers a,b       evaluate shards on live workers over RPC; with
//	                         -trace, their spans merge into the export
//	-cpuprofile f.pb.gz      write a pprof CPU profile of the run
//	-memprofile f.pb.gz      write a pprof heap profile after the run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	pfcim "github.com/probdata/pfcim"
	"github.com/probdata/pfcim/internal/shard"
)

func main() {
	var (
		minsupRel  = flag.Float64("minsup", 0.4, "relative minimum support in (0,1], fraction of transactions")
		minsupAbs  = flag.Int("minsup-abs", 0, "absolute minimum support (overrides -minsup when > 0)")
		pfct       = flag.Float64("pfct", 0.8, "probabilistic frequent closed threshold")
		eps        = flag.Float64("eps", 0.1, "ApproxFCP relative tolerance error")
		delta      = flag.Float64("delta", 0.1, "ApproxFCP confidence parameter")
		seed       = flag.Int64("seed", 1, "sampler seed")
		algo       = flag.String("algo", "mpfci", "algorithm: mpfci, bfs, naive")
		noCH       = flag.Bool("no-ch", false, "disable Chernoff-Hoeffding pruning")
		noSuper    = flag.Bool("no-super", false, "disable superset pruning")
		noSub      = flag.Bool("no-sub", false, "disable subset pruning")
		noBound    = flag.Bool("no-bound", false, "disable frequent-closed-probability bound pruning")
		frequent   = flag.Bool("frequent", false, "also print probabilistic frequent itemsets (the pre-compression set)")
		maximal    = flag.Bool("maximal", false, "also print the maximal probabilistic frequent itemsets (top-down border)")
		expSup     = flag.Float64("exp-sup", 0, "when > 0, also print itemsets with expected support ≥ this value (UF-growth)")
		parallel   = flag.Int("parallel", 0, "number of work-stealing mining workers (0 = serial)")
		splitDepth = flag.Int("split-depth", 0, "max enumeration depth at which subtrees are handed to idle workers (0 = default)")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON instead of text")
		showStats  = flag.Bool("stats", false, "print pruning statistics")
		traceOut   = flag.String("trace", "", "record phase spans and write a Chrome trace-event JSON file (view in chrome://tracing or Perfetto)")
		shards     = flag.Int("shards", 0, "partition the tail arithmetic into N transaction-range shards (0 = unsharded)")
		shardAddrs = flag.String("shard-workers", "", "comma-separated shard worker addresses; places the dataset and evaluates shards over RPC (default: in-process)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the mining run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (taken after mining) to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mpfci [flags] data.txt")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	db, err := pfcim.ReadDatabase(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	ms := *minsupAbs
	if ms <= 0 {
		ms = pfcim.AbsoluteMinSup(db.N(), *minsupRel)
	}
	opts := pfcim.Options{
		MinSup:          ms,
		PFCT:            *pfct,
		Epsilon:         *eps,
		Delta:           *delta,
		Seed:            *seed,
		DisableCH:       *noCH,
		DisableSuperset: *noSuper,
		DisableSubset:   *noSub,
		DisableBounds:   *noBound,
		Parallelism:     *parallel,
		SplitDepth:      *splitDepth,
	}
	if *traceOut != "" {
		opts.Tracer = pfcim.NewTracer()
	}
	opts.Shards = *shards
	if *shardAddrs != "" {
		// Distributed run: place the dataset on the workers and evaluate
		// the per-shard tails over RPC. With -trace, the workers' span
		// batches come back in the responses and land in the summary table
		// and the Chrome export as labeled worker threads (DESIGN §16).
		list := strings.Split(*shardAddrs, ",")
		if opts.Shards < 2 {
			opts.Shards = max(2, len(list))
		}
		client, err := shard.NewClient(list, 0, nil)
		if err != nil {
			fatal(err)
		}
		ctx := context.Background()
		if err := client.Place(ctx, "mpfci", db, opts.Shards); err != nil {
			fatal(err)
		}
		sess, err := client.Kernel(ctx, nil, "mpfci")
		if err != nil {
			fatal(err)
		}
		sess.SetTracer(opts.Tracer)
		opts.ShardKernel = sess
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		// fatal exits through os.Exit, which skips defers, so register the
		// profile flush where fatal can run it too.
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer flushProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpfci:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the post-run live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mpfci:", err)
			}
		}()
	}

	st := db.Stats()
	fmt.Printf("# %d transactions, %d items, avg length %.2f; min_sup=%d, pfct=%g\n",
		st.NumTransactions, st.NumItems, st.AvgLength, ms, *pfct)

	if *frequent {
		pfis, err := pfcim.MineFrequent(db, pfcim.FrequentOptions{MinSup: ms, PFT: *pfct})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# %d probabilistic frequent itemsets\n", len(pfis))
		for _, p := range pfis {
			fmt.Printf("PFI %s\tPr_F=%.4f\texp_sup=%.2f\n", p.Items, p.FreqProb, p.ExpectedSupport)
		}
	}
	if *maximal {
		maxes, err := pfcim.MaximalFrequent(db, pfcim.FrequentOptions{MinSup: ms, PFT: *pfct})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# %d maximal probabilistic frequent itemsets\n", len(maxes))
		for _, m := range maxes {
			fmt.Printf("MaxPFI %s\n", m)
		}
	}
	if *expSup > 0 {
		esis := pfcim.UFGrowth(db, *expSup)
		fmt.Printf("# %d itemsets with expected support >= %g\n", len(esis), *expSup)
		for _, p := range esis {
			fmt.Printf("ESI %s\texp_sup=%.2f\n", p.Items, p.ExpectedSupport)
		}
	}

	var res *pfcim.Result
	switch *algo {
	case "mpfci":
		res, err = pfcim.Mine(db, opts)
	case "bfs":
		opts.Search = pfcim.BFS
		res, err = pfcim.Mine(db, opts)
	case "naive":
		res, err = pfcim.MineNaive(db, opts)
	default:
		fatal(fmt.Errorf("unknown -algo %q", *algo))
	}
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, res); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("# %d probabilistic frequent closed itemsets\n", len(res.Itemsets))
		for _, r := range res.Itemsets {
			fmt.Printf("PFCI %s\tPr_FC=%.4f\tPr_F=%.4f\t[%.4f,%.4f]\t%s\n",
				r.Items, r.Prob, r.FreqProb, r.Lower, r.Upper, r.Method)
		}
	}
	if *showStats {
		s := res.Stats
		fmt.Printf("# stats: nodes=%d candidates=%d ch-pruned=%d freq-pruned=%d super-pruned=%d sub-pruned=%d bound-rejected=%d bound-accepted=%d exact-unions=%d sampled=%d samples=%d\n",
			s.NodesVisited, s.CandidateItems, s.CHPruned, s.FreqPruned, s.SupersetPruned,
			s.SubsetPruned, s.BoundRejected, s.BoundAccepted, s.ExactUnions, s.Sampled, s.SamplesDrawn)
	}
	if *traceOut != "" {
		printProfile(res.Profile)
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := opts.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("# trace written to %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *traceOut)
	}
}

// printProfile renders the phase profile as a summary table: where the
// run's wall time went, phase by phase and depth by depth.
func printProfile(p *pfcim.Profile) {
	if p == nil {
		return
	}
	total := float64(p.TotalNS)
	fmt.Printf("# profile: total %.3fs\n", total/1e9)
	fmt.Printf("# %-12s %10s %8s %10s\n", "phase", "wall", "share", "count")
	for _, ph := range p.Phases {
		if ph.Count == 0 {
			continue
		}
		fmt.Printf("# %-12s %9.3fs %7.1f%% %10d\n",
			ph.Phase, float64(ph.WallNS)/1e9, 100*float64(ph.WallNS)/total, ph.Count)
	}
	for _, d := range p.Depths {
		fmt.Printf("# depth %-6d %9.3fs %7.1f%% %10d nodes\n",
			d.Depth, float64(d.WallNS)/1e9, 100*float64(d.WallNS)/total, d.Nodes)
	}
	if len(p.Workers) > 1 {
		for _, w := range p.Workers {
			if w.Label != "" {
				fmt.Printf("# remote %-12s %9.3fs busy, %d spans\n", w.Label, float64(w.BusyNS)/1e9, w.Spans)
				continue
			}
			fmt.Printf("# worker %-5d %9.3fs busy, %d spans\n", w.Worker, float64(w.BusyNS)/1e9, w.Spans)
		}
	}
	if p.SpansDropped > 0 {
		fmt.Printf("# %d detailed spans dropped from the ring (aggregates are exact)\n", p.SpansDropped)
	}
}

// jsonItem is the machine-readable form of one result.
type jsonItem struct {
	Items    []int   `json:"items"`
	Prob     float64 `json:"freq_closed_prob"`
	Lower    float64 `json:"lower"`
	Upper    float64 `json:"upper"`
	FreqProb float64 `json:"freq_prob"`
	Method   string  `json:"method"`
}

func writeJSON(w io.Writer, res *pfcim.Result) error {
	out := struct {
		Count    int        `json:"count"`
		Itemsets []jsonItem `json:"itemsets"`
	}{Count: len(res.Itemsets)}
	for _, r := range res.Itemsets {
		items := make([]int, len(r.Items))
		for i, it := range r.Items {
			items[i] = int(it)
		}
		out.Itemsets = append(out.Itemsets, jsonItem{
			Items:    items,
			Prob:     r.Prob,
			Lower:    r.Lower,
			Upper:    r.Upper,
			FreqProb: r.FreqProb,
			Method:   r.Method.String(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// stopProfile flushes the running CPU profile, if any; fatal calls it
// because os.Exit does not run defers.
var stopProfile func()

func flushProfile() {
	if stopProfile != nil {
		stopProfile()
		stopProfile = nil
	}
}

func fatal(err error) {
	flushProfile()
	fmt.Fprintln(os.Stderr, "mpfci:", err)
	os.Exit(1)
}
