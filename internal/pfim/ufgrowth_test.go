package pfim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/probdata/pfcim/internal/itemset"
	"github.com/probdata/pfcim/internal/uncertain"
)

// TestUFGrowthEqualsExpectedSupportMine: the prefix-tree miner and the
// tidset miner implement the same model and must agree exactly.
func TestUFGrowthEqualsExpectedSupportMine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 12, 6)
		minExp := rng.Float64()*3 + 0.5
		a := UFGrowth(db, minExp)
		b := ExpectedSupportMine(db, minExp)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !itemset.Equal(a[i].Items, b[i].Items) {
				return false
			}
			if math.Abs(a[i].ExpectedSupport-b[i].ExpectedSupport) > 1e-9 {
				return false
			}
			if a[i].Count != b[i].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestUFGrowthPaperExample(t *testing.T) {
	db := uncertain.PaperExample()
	res := UFGrowth(db, 2.0)
	// Expected supports: subsets of {a,b,c} have 3.1; anything with d has
	// 1.8 — so exactly the 7 non-empty subsets of abc qualify.
	if len(res) != 7 {
		t.Fatalf("UF-growth found %d itemsets, want 7: %v", len(res), res)
	}
	for _, p := range res {
		if math.Abs(p.ExpectedSupport-3.1) > 1e-9 {
			t.Errorf("%v expected support %v, want 3.1", p.Items, p.ExpectedSupport)
		}
	}
}

func TestUFGrowthEmptyResult(t *testing.T) {
	db := uncertain.PaperExample()
	if res := UFGrowth(db, 100); len(res) != 0 {
		t.Errorf("unreachable threshold should yield nothing, got %v", res)
	}
}

func TestUFGrowthCertainDataMatchesExactCounts(t *testing.T) {
	// With all probabilities 1, expected support equals exact support, so
	// UF-growth must reproduce exact frequent itemset counts.
	trans := []uncertain.Transaction{
		{Items: itemset.FromInts(0, 1, 2), Prob: 1},
		{Items: itemset.FromInts(0, 1), Prob: 1},
		{Items: itemset.FromInts(1, 2), Prob: 1},
	}
	db := uncertain.MustNewDB(trans)
	res := UFGrowth(db, 2)
	want := map[string]float64{"1": 3, "0": 2, "2": 2, "0 1": 2, "1 2": 2}
	if len(res) != len(want) {
		t.Fatalf("got %d itemsets %v, want %d", len(res), res, len(want))
	}
	for _, p := range res {
		if w, ok := want[p.Items.Key()]; !ok || math.Abs(p.ExpectedSupport-w) > 1e-12 {
			t.Errorf("unexpected result %v (%v)", p.Items, p.ExpectedSupport)
		}
	}
}

func TestUHMineEqualsExpectedSupportMine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 12, 6)
		minExp := rng.Float64()*3 + 0.5
		a := UHMine(db, minExp)
		b := ExpectedSupportMine(db, minExp)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !itemset.Equal(a[i].Items, b[i].Items) {
				return false
			}
			if math.Abs(a[i].ExpectedSupport-b[i].ExpectedSupport) > 1e-9 {
				return false
			}
			if a[i].Count != b[i].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestUHMinePaperExample(t *testing.T) {
	db := uncertain.PaperExample()
	res := UHMine(db, 2.0)
	if len(res) != 7 {
		t.Fatalf("UH-mine found %d itemsets, want 7", len(res))
	}
}
